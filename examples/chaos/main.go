// Chaos walkthrough: watch a remote-memory lease survive its donor.
// Three scenes:
//
//  1. kill the donor mid-stream and follow the recovery timeline —
//     heartbeat-timeout detection, donor re-election, lease
//     re-placement, and in-flight replay, with every read accounted
//     for;
//  2. crash-and-reboot *inside* the heartbeat timeout: missed beats
//     never accumulate, but the incarnation number on the returning
//     heartbeats betrays the reboot and the lease still moves;
//  3. rolling churn at two rates, read off the serving scenario as
//     goodput, SLO misses, and unavailability.
package main

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/serving"
	"repro/internal/sim"
)

// newChurnCluster builds the fast-detection cluster the scenes share:
// 8-node mesh, MN on node 0 (excluded from donation), 100 µs beats,
// 500 µs death timeout, 250 µs recovery sweep.
func newChurnCluster() *core.Cluster {
	topo := fabric.Mesh3D(2, 2, 2)
	cl := core.NewCluster(core.Config{
		Topology:          &topo,
		StartAgents:       true,
		StartRecovery:     true,
		HeartbeatInterval: 100 * sim.Microsecond,
		HeartbeatTimeout:  500 * sim.Microsecond,
		SweepInterval:     250 * sim.Microsecond,
		Seed:              7,
	})
	if err := cl.Node(0).MemMgr.Reserve(cl.Node(0).MemMgr.Idle()); err != nil {
		panic(err)
	}
	return cl
}

func scene1() {
	fmt.Println("— scene 1: kill the donor, watch the lease move —")
	cl := newChurnCluster()
	defer cl.Close()
	cl.RunFor(20 * sim.Millisecond)

	inj := chaos.New(cl.Eng, cl.Net, cl.Agents)
	tenant := cl.Node(4)
	done := tenant.Run("tenant", func(p *sim.Proc) {
		lease, err := cl.Acquire(p, core.NewRequest(core.Memory, tenant, 8<<20))
		if err != nil {
			panic(err)
		}
		ml := lease.(*core.MemoryLease)
		fmt.Printf("  lease: %d MiB on donor %v, window %#x\n", ml.Size>>20, ml.Donor(), ml.WindowBase)

		crashAt := p.Now().Add(1 * sim.Millisecond)
		cl.Eng.At(crashAt, func() {
			fmt.Printf("  t+%v: donor %v crashes\n", sim.Dur(0)+1*sim.Millisecond, ml.Donor())
			inj.KillNode(ml.Donor())
		})

		rng := sim.NewRNG(1)
		var worst sim.Dur
		for i := 0; i < 200; i++ {
			off := rng.Uint64n(ml.Size-2048) &^ 63
			t0 := p.Now()
			tenant.EP.CRMA.Fill(p, ml.WindowBase+off, 2048)
			if d := p.Now().Sub(t0); d > worst {
				worst = d
			}
			p.Sleep(20 * sim.Microsecond)
		}
		a, _ := cl.MN.Allocation(0)
		fmt.Printf("  200/200 reads completed; worst stall %v (detection + one hot-plug)\n", worst)
		fmt.Printf("  lease now on donor %v; MN replaced=%d, agent replayed in-flight ops=%d\n",
			a.Donor, cl.MN.Stats.Get("recover.replaced"), cl.Agents[4].Stats.Get("relocate.replayed"))
	})
	for !done.Done() && cl.Eng.Step() {
	}
}

func scene2() {
	fmt.Println("\n— scene 2: reboot faster than the timeout; incarnation gives it away —")
	cl := newChurnCluster()
	defer cl.Close()
	cl.RunFor(20 * sim.Millisecond)

	inj := chaos.New(cl.Eng, cl.Net, cl.Agents)
	tenant := cl.Node(4)
	done := tenant.Run("tenant", func(p *sim.Proc) {
		lease, err := cl.Acquire(p, core.NewRequest(core.Memory, tenant, 8<<20))
		if err != nil {
			panic(err)
		}
		donor := lease.Donor()
		fmt.Printf("  lease on donor %v; crash+reboot outage of 300µs (timeout is 500µs)\n", donor)
		cl.Eng.Schedule(1*sim.Millisecond, func() { inj.KillNode(donor) })
		cl.Eng.Schedule(1*sim.Millisecond+300*sim.Microsecond, func() { inj.RestartNode(donor) })
		p.Sleep(10 * sim.Millisecond)
		a, _ := cl.MN.Allocation(0)
		fmt.Printf("  missed-beat deaths: %d (outage too short), reboots seen via incarnation: %d\n",
			cl.MN.Stats.Get("recover.deaths"), cl.MN.Stats.Get("recover.reboots_seen"))
		fmt.Printf("  lease moved anyway: donor %v -> %v (a rebooted donor's memory is gone)\n", donor, a.Donor)
	})
	for !done.Done() && cl.Eng.Step() {
	}
}

func scene3() {
	fmt.Println("\n— scene 3: rolling churn as a serving scenario —")
	for _, fault := range []serving.FaultRate{serving.FaultNone, serving.FaultSlow, serving.FaultFast} {
		r, err := serving.RunChurn(serving.ChurnConfig{
			Nodes: 8, Util: 0.7, Requests: 1200, Fault: fault, Seed: 5,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  fault=%-5s goodput %6.0f/%6.0f rps  SLO misses %4.1f%%  unavail %6.2fms  crashes %d  recoveries %d (mean %.2fms)  p99 %v\n",
			fault, r.GoodputRPS, r.OfferedRPS, 100*float64(r.Failed)/1200,
			float64(r.UnavailNS)/1e6, r.Crashes, r.Recoveries, r.RecoverMeanNS/1e6,
			sim.Dur(r.Lat.Quantile(99)))
	}
	fmt.Println("\nevery request completes — churn costs SLO misses and tail, never losses.")
	fmt.Println("sweep mesh × fault-rate × policy with: go run ./cmd/venice-bench -run serving-churn")
}

func main() {
	scene1()
	scene2()
	scene3()
}
