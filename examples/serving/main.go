// Serving walkthrough: put the Venice mesh under open-loop request
// traffic and read the latency distribution off the tail — what the
// closed-loop figures can't show. Three scenes:
//
//  1. the replicated key-value tier at moderate vs near-saturation
//     load (queueing fattens the tail long before the median moves),
//  2. scale-out: the same utilization on a 2-node vs 8-node mesh,
//  3. the cache tier with co-located tenants leasing and hammering
//     remote memory through the Monitor Node's sharing policy — the
//     resource-sharing pressure that moves p99.
package main

import (
	"fmt"

	"repro/internal/serving"
	"repro/internal/sim"
)

func show(label string, r *serving.Result) {
	fmt.Printf("%-28s offered %6.0f rps  achieved %6.0f rps  p50 %-10v p99 %-10v p999 %v\n",
		label, r.OfferedRPS, r.AchievedRPS,
		sim.Dur(r.Lat.Quantile(50)), sim.Dur(r.Lat.Quantile(99)), sim.Dur(r.Lat.Quantile(99.9)))
}

func run(cfg serving.Config) *serving.Result {
	r, err := serving.Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

func main() {
	fmt.Println("— scene 1: load and the tail (4-node kv tier, Poisson arrivals) —")
	for _, util := range []float64{0.5, 0.95} {
		r := run(serving.Config{Workload: serving.KV, Nodes: 4, Util: util, Requests: 400, Seed: 1})
		show(fmt.Sprintf("kv util %.2f", util), r)
	}
	r := run(serving.Config{Workload: serving.KV, Nodes: 4, Util: 0.95, Requests: 400, Seed: 1,
		Arrivals: serving.ArrivalSpec{Kind: serving.MMPP}})
	show("kv util 0.95, bursty (MMPP)", r)

	fmt.Println("\n— scene 2: scale-out at fixed per-server utilization —")
	for _, nodes := range []int{2, 8} {
		r := run(serving.Config{Workload: serving.KV, Nodes: nodes, Util: 0.8, Requests: 400, Seed: 2})
		show(fmt.Sprintf("kv %d-node mesh", nodes), r)
	}

	fmt.Println("\n— scene 3: co-located tenants vs the cache tier's tail —")
	for _, tenants := range []int{0, 3} {
		r := run(serving.Config{Workload: serving.Tier, Nodes: 8, Util: 0.9, Requests: 300,
			Tenants: tenants, Policy: "distance", Seed: 3})
		show(fmt.Sprintf("tier, %d tenants", tenants), r)
	}
	fmt.Println("\nthe open-loop tail is the sharing story: same median, different p99.")
	fmt.Println("sweep the full load × nodes × policy grid with: go run ./cmd/venice-bench -run serving")
}
