// Remotenic: the Fig. 12 scenario — a network-bound node bonds its own
// NIC with NICs borrowed from two neighbors (IP-over-QPair front/back
// drivers plus Linux-style bonding) and measures the throughput gain
// for small and large packets.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/vnic"
	"repro/internal/workloads"
)

func main() {
	cluster := core.NewCluster(core.Config{StartAgents: true})
	defer cluster.Close()
	cluster.Agents[1].Devices[monitor.DevNIC] = 1
	cluster.Agents[2].Devices[monitor.DevNIC] = 1
	cluster.RunFor(1 * sim.Second)

	app := cluster.Node(0)
	app.Run("netapp", func(p *sim.Proc) {
		local := vnic.NewNIC(cluster.Eng, cluster.P, "eth0")
		slaves := []vnic.Slave{&vnic.LocalSlave{NIC: local}}

		for i := 0; i < 2; i++ {
			lease, err := cluster.Acquire(p, core.NewRequest(core.NIC, app, 0))
			if err != nil {
				panic(err)
			}
			nic := lease.(*core.NICLease)
			fmt.Printf("attached remote NIC on %v\n", nic.Donor())
			slaves = append(slaves, nic.VNIC)
		}

		for _, size := range []int{4, 256, 1400} {
			solo := vnic.NewBond(cluster.P, slaves[:1]...)
			rep := workloads.IperfBond(p, solo, size, 2000)
			bonded := vnic.NewBond(cluster.P, slaves...)
			rep3 := workloads.IperfBond(p, bonded, size, 2000)
			fmt.Printf("%5dB packets: local NIC %8.1f MB/s, bonded x3 %8.1f MB/s (%.2fx)\n",
				size, rep.MBps(), rep3.MBps(), rep3.MBps()/rep.MBps())
		}
	})
	cluster.RunFor(600 * sim.Second)
}
