// Accelerators: the Fig. 11 scenario — an application on one node
// drives two remote FFT engines and a remote crypto engine through the
// accelerator library, with device locations hidden behind handles and
// data pipelined over the RDMA channel.
package main

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	cluster := core.NewCluster(core.Config{StartAgents: true})
	defer cluster.Close()

	// Donors: node 2 hosts two FFT engines, node 3 a crypto engine.
	fft1 := accel.New(cluster.Eng, cluster.P, accel.FFT{MBps: 180, Setup: 20 * sim.Microsecond})
	fft2 := accel.New(cluster.Eng, cluster.P, accel.FFT{MBps: 180, Setup: 20 * sim.Microsecond})
	svc2 := accel.Serve(cluster.Node(2), fft1, fft2)
	crypto := accel.New(cluster.Eng, cluster.P, accel.Crypto{MBps: 400, Setup: 5 * sim.Microsecond})
	svc3 := accel.Serve(cluster.Node(3), crypto)
	cluster.Agents[2].Devices[monitor.DevAccelerator] = 2
	cluster.Agents[3].Devices[monitor.DevAccelerator] = 1
	defer svc2.Shutdown()
	defer svc3.Shutdown()
	cluster.RunFor(1 * sim.Second)

	app := cluster.Node(0)
	client := accel.NewClient(app)
	attach := func(p *sim.Proc, opts ...core.Option) *core.AccelLease {
		l, err := cluster.Acquire(p, core.NewRequest(core.Accel, app, 0,
			append([]core.Option{core.WithClient(client)}, opts...)...))
		if err != nil {
			panic(err)
		}
		return l.(*core.AccelLease)
	}
	app.Run("app", func(p *sim.Proc) {
		// Fig. 11: the application receives two FFT and one crypto
		// accelerator; the library handles dispatch.
		fftA := attach(p, core.WithExclusive())
		fftB := attach(p, core.WithDevice(1), core.WithExclusive())
		cr := attach(p)
		fmt.Printf("attached: fft@%v fft@%v crypto@%v\n",
			fftA.Donor(), fftB.Donor(), cr.Donor())

		const data = 8 << 20
		// One device.
		t0 := p.Now()
		fftA.Handle.Run(p, "fft", data)
		one := p.Now().Sub(t0)

		// Two devices, halves in parallel.
		t1 := p.Now()
		g := sim.NewGroup(cluster.Eng)
		g.Add(2)
		cluster.Eng.Go("halfA", func(q *sim.Proc) { fftA.Handle.Run(q, "fft", data/2); g.Done() })
		cluster.Eng.Go("halfB", func(q *sim.Proc) { fftB.Handle.Run(q, "fft", data/2); g.Done() })
		g.Wait(p)
		two := p.Now().Sub(t1)
		fmt.Printf("8 MiB FFT: one remote device %v, two devices %v (%.2fx)\n",
			one, two, float64(one)/float64(two))

		// Then encrypt the result remotely.
		t2 := p.Now()
		cr.Handle.Run(p, "crypto", data)
		fmt.Printf("8 MiB crypto on %v: %v\n", cr.Donor(), p.Now().Sub(t2))

		// The math itself is real: run the CPU-side FFT for comparison.
		buf := make([]complex128, 1<<14)
		buf[1] = 1
		t3 := p.Now()
		workloads.FFTLocalCPU(p, app.Mem, 0, buf)
		app.Mem.Flush(p)
		fmt.Printf("16Ki-point FFT on the CPU instead: %v\n", p.Now().Sub(t3))
	})
	cluster.RunFor(600 * sim.Second)
}
