// Memcache: the paper's headline scenario (§3, Fig. 13/14) — an
// in-memory key/value cache outgrows its node and transparently expands
// into donor memory, cutting its miss rate and its end-to-end latency.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	cluster := core.NewCluster(core.Config{StartAgents: true})
	defer cluster.Close()
	cluster.RunFor(1 * sim.Second)

	redisNode := cluster.Node(1)
	redisNode.Run("redis", func(p *sim.Proc) {
		const keys = 2000
		const valueBytes = 4096
		cache := workloads.NewRedisCache(redisNode.Mem, valueBytes,
			workloads.NewArena(64<<20, 2<<20)) // 2 MiB local: tiny
		db := &workloads.TierDB{
			Redis:          cache,
			MySQL:          &workloads.MySQLModel{QueryTime: 20 * sim.Millisecond},
			ClientOverhead: 200 * sim.Microsecond,
		}

		measure := func(label string) {
			rng := sim.NewRNG(42)
			db.RunQueries(p, rng, keys, 500) // warm
			h0, m0 := cache.Hits, cache.Misses
			elapsed := db.RunQueries(p, rng, keys, 1000)
			miss := float64(cache.Misses-m0) / float64(cache.Hits-h0+cache.Misses-m0)
			fmt.Printf("%-28s capacity %5d entries  miss %5.1f%%  1000 queries in %v\n",
				label, cache.CapacityEntries(), miss*100, elapsed)
		}

		measure("local memory only:")

		// Grow the cache twice with borrowed memory.
		for i := 0; i < 2; i++ {
			lease, err := cluster.Acquire(p, core.NewRequest(core.Memory, redisNode, 4<<20))
			if err != nil {
				panic(err)
			}
			cache.AddArena(workloads.NewArena(lease.Window()))
			measure(fmt.Sprintf("+4 MiB from %v:", lease.Donor()))
		}
	})
	cluster.RunFor(10000 * sim.Second)
}
