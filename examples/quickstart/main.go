// Quickstart: build the prototype's eight-node Venice rack, borrow
// remote memory through the Monitor Node, and touch it with ordinary
// loads — the complete Fig. 2 flow in a dozen lines of application code.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// An 8-node 2x2x2 mesh with heartbeating agents and the MN on node 0.
	cluster := core.NewCluster(core.Config{StartAgents: true})
	defer cluster.Close()
	cluster.RunFor(1 * sim.Second) // let agents register resources

	app := cluster.Node(7)
	app.Run("quickstart", func(p *sim.Proc) {
		// Ask for 256 MiB more memory than this node has. The MN picks a
		// donor, the donor hot-removes and exports a region, and it
		// appears at lease.WindowBase in our address space.
		lease, err := cluster.BorrowMemory(p, app, 256<<20)
		if err != nil {
			panic(err)
		}
		fmt.Printf("borrowed %d MiB from %v at window %#x\n",
			lease.Size>>20, lease.Donor, lease.WindowBase)

		// The borrowed window is ordinary memory: no special API.
		t0 := p.Now()
		for i := uint64(0); i < 64; i++ {
			app.Mem.Read(p, lease.WindowBase+i*4096, 64)
		}
		app.Mem.Flush(p)
		fmt.Printf("64 random cacheline fills took %v (%v each)\n",
			p.Now().Sub(t0), p.Now().Sub(t0)/64)

		fmt.Printf("CRMA fills issued: %d, donor served: %d\n",
			app.EP.CRMA.Stats.Fills,
			cluster.Nodes[lease.Donor].EP.CRMA.Stats.Served)

		lease.Release(p)
		fmt.Println("lease released; donor memory returned")
	})
	cluster.RunFor(60 * sim.Second)

	fmt.Printf("\nRAT rows remaining: %d (should be 0)\n", len(cluster.MN.Allocations()))
	fmt.Printf("fabric delivered %d packets\n", cluster.Net.TotalLinkStats().Packets)
}
