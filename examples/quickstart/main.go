// Quickstart: build the prototype's eight-node Venice rack, borrow
// remote memory through the unified resource plane, and touch it with
// ordinary loads — the complete Fig. 2 flow in a dozen lines of
// application code. One Acquire call works for every resource kind
// (memory, swap, accelerators, NICs, direct attaches) on both flat and
// rack-scale clusters, and the plane's observer narrates each lease's
// lifecycle.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// An 8-node 2x2x2 mesh with heartbeating agents and the MN on node 0.
	cluster := core.NewCluster(core.Config{StartAgents: true})
	defer cluster.Close()
	cluster.RunFor(1 * sim.Second) // let agents register resources

	// Watch the lease lifecycle: granted / released / revoked /
	// failed-over events flow through one stream.
	cancel := cluster.Observe(func(ev core.Event) {
		fmt.Printf("event: %s %s %v->%v (%d MiB)\n",
			ev.Kind, ev.Type, ev.Donor, ev.Recipient, ev.Size>>20)
	})
	defer cancel()

	app := cluster.Node(7)
	app.Run("quickstart", func(p *sim.Proc) {
		// Ask for 256 MiB more memory than this node has. The MN picks a
		// donor, the donor hot-removes and exports a region, and it
		// appears at the lease's window in our address space.
		lease, err := cluster.Acquire(p, core.NewRequest(core.Memory, app, 256<<20))
		if err != nil {
			panic(err)
		}
		win, size := lease.Window()
		fmt.Printf("borrowed %d MiB from %v at window %#x\n",
			size>>20, lease.Donor(), win)

		// The borrowed window is ordinary memory: no special API.
		t0 := p.Now()
		for i := uint64(0); i < 64; i++ {
			app.Mem.Read(p, win+i*4096, 64)
		}
		app.Mem.Flush(p)
		fmt.Printf("64 random cacheline fills took %v (%v each)\n",
			p.Now().Sub(t0), p.Now().Sub(t0)/64)

		fmt.Printf("CRMA fills issued: %d, donor served: %d\n",
			app.EP.CRMA.Stats.Fills,
			cluster.Nodes[lease.Donor()].EP.CRMA.Stats.Served)

		lease.Release(p)
		fmt.Println("lease released; donor memory returned")
	})
	cluster.RunFor(60 * sim.Second)

	fmt.Printf("\nRAT rows remaining: %d (should be 0)\n", len(cluster.MN.Allocations()))
	fmt.Printf("fabric delivered %d packets\n", cluster.Net.TotalLinkStats().Packets)
}
