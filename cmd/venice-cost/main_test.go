package main

import "testing"

// TestMainRuns exercises the command end to end so `go test ./...`
// catches a venice-cost that builds but panics — the command has no
// flags and prints the §7.3 cost table.
func TestMainRuns(t *testing.T) {
	main()
}
