// Command venice-cost prints the §7.3 hardware cost analysis of the
// Venice substrate.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Println(experiments.CostTable().String())
}
