// Command venice-bench regenerates the paper's tables and figures from
// the simulator through the trial harness. With no arguments it runs
// every registered experiment in paper order; otherwise pass experiment
// ids positionally or via -run (see -list).
//
// Usage:
//
//	venice-bench [-list] [-run id,id] [-parallel N] [-json out.json]
//	             [-baseline base.json] [-tolerance 0.01] [id ...]
//
// Every experiment is decomposed into independent deterministic trials
// executed on a bounded worker pool, so -parallel N produces
// byte-identical tables for any N; only the wall-clock changes. That
// determinism is what makes -baseline an exact regression gate: it
// compares every trial metric of this run against a previously written
// report and exits with status 3 if anything drifts beyond -tolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

var _ = experiments.Table1 // the import's side effect is spec registration

func main() {
	list := flag.Bool("list", false, "list registered experiment ids and exit")
	runIDs := flag.String("run", "", "comma-separated experiment ids to run (combined with positional ids)")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write per-trial results and timing metadata to this file")
	baseline := flag.String("baseline", "", "compare trial metrics against this report; exit 3 on drift")
	tolerance := flag.Float64("tolerance", 0.01, "allowed relative drift per metric with -baseline")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: venice-bench [-list] [-run id,id] [-parallel N] [-json out.json] [-baseline base.json] [-tolerance f] [id ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range harness.IDs() {
			spec, _ := harness.Lookup(id)
			fmt.Printf("%-21s %s (%d trials)\n", id, spec.Title, len(spec.Trials))
		}
		return
	}

	ids := flag.Args()
	for _, id := range strings.Split(*runIDs, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = harness.IDs()
	}
	opts := harness.Options{Parallel: *parallel}
	var results []*harness.Result
	start := time.Now()
	for _, id := range ids {
		art, res, err := harness.RunID(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "venice-bench: %v\n", err)
			os.Exit(2)
		}
		results = append(results, res)
		fmt.Println(art.String())
		fmt.Printf("[%s regenerated in %v]\n\n", id, time.Duration(res.WallMS*1e6).Round(time.Millisecond))
	}
	rep := harness.NewReport(opts.Parallel, float64(time.Since(start))/1e6, results)
	if *jsonPath != "" {
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "venice-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		base, err := harness.LoadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "venice-bench: loading baseline: %v\n", err)
			os.Exit(1)
		}
		drifts := rep.CompareToBaseline(base, *tolerance)
		if len(drifts) > 0 {
			fmt.Fprintf(os.Stderr, "venice-bench: %d metric(s) drifted beyond %.2f%% of %s:\n",
				len(drifts), 100**tolerance, *baseline)
			for _, d := range drifts {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			os.Exit(3)
		}
		fmt.Printf("baseline check: %d metrics within %.2f%% of %s\n",
			rep.MetricCount(), 100**tolerance, *baseline)
	}
}
