// Command venice-bench regenerates the paper's tables and figures from
// the simulator through the trial harness. With no arguments it runs
// every registered experiment in paper order; otherwise pass experiment
// ids (see -list).
//
// Usage:
//
//	venice-bench [-list] [-parallel N] [-json out.json] [id ...]
//
// Every experiment is decomposed into independent deterministic trials
// executed on a bounded worker pool, so -parallel N produces
// byte-identical tables for any N; only the wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

var _ = experiments.Table1 // the import's side effect is spec registration

func main() {
	list := flag.Bool("list", false, "list registered experiment ids and exit")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write per-trial results and timing metadata to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: venice-bench [-list] [-parallel N] [-json out.json] [id ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range harness.IDs() {
			spec, _ := harness.Lookup(id)
			fmt.Printf("%-21s %s (%d trials)\n", id, spec.Title, len(spec.Trials))
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = harness.IDs()
	}
	opts := harness.Options{Parallel: *parallel}
	var results []*harness.Result
	start := time.Now()
	for _, id := range ids {
		art, res, err := harness.RunID(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "venice-bench: %v\n", err)
			os.Exit(2)
		}
		results = append(results, res)
		fmt.Println(art.String())
		fmt.Printf("[%s regenerated in %v]\n\n", id, time.Duration(res.WallMS*1e6).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		rep := harness.NewReport(opts.Parallel, float64(time.Since(start))/1e6, results)
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "venice-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
