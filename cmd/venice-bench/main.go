// Command venice-bench regenerates the paper's tables and figures from
// the simulator through the trial harness, plus the beyond-paper
// serving sweeps (open-loop load, churn, and the rack-scale
// serving-scale sweep over multi-rack spine fabrics) and the
// engine-smoke cell that pins the event core's exact firing order.
// With no arguments it runs every registered experiment in paper
// order; otherwise pass experiment ids positionally or via -run (see
// -list).
//
// Usage:
//
//	venice-bench [-list] [-run id,id] [-parallel N] [-json out.json]
//	             [-baseline base.json] [-tolerance 0.01]
//	             [-trial substr] [-seed N] [id ...]
//
// Every experiment is decomposed into independent deterministic trials
// executed on a bounded worker pool, so -parallel N produces
// byte-identical tables for any N; only the wall-clock changes. That
// determinism is what makes -baseline an exact regression gate: it
// compares every trial metric of this run against a previously written
// report and exits with status 3 if anything drifts beyond -tolerance.
//
// -trial and -seed isolate single trials for debugging: -trial runs only
// the trials whose id contains the substring, and -seed overrides every
// selected trial's seed, so one failing cell (say, a churn shard) can be
// replayed alone and bisected across seeds. In isolation mode the raw
// per-trial metrics print instead of the assembled table (assembly needs
// the full matrix).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/monitor"
)

var _ = experiments.Table1 // the import's side effect is spec registration

func main() {
	list := flag.Bool("list", false, "list registered experiment ids and exit")
	runIDs := flag.String("run", "", "comma-separated experiment ids to run (combined with positional ids)")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write per-trial results and timing metadata to this file")
	baseline := flag.String("baseline", "", "compare trial metrics against this report; exit 3 on drift")
	tolerance := flag.Float64("tolerance", 0.01, "allowed relative drift per metric with -baseline")
	trialFilter := flag.String("trial", "", "run only trials whose id contains this substring (prints raw metrics, skips assembly)")
	seedOverride := flag.Uint64("seed", 0, "override the seed of every selected trial (use with -trial to reproduce one cell)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (pprof format) to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (pprof format) to this file at exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: venice-bench [-list] [-run id,id] [-parallel N] [-json out.json] [-baseline base.json] [-tolerance f] [-trial substr] [-seed N] [-cpuprofile f] [-memprofile f] [id ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	if *list {
		for _, id := range harness.IDs() {
			spec, _ := harness.Lookup(id)
			fmt.Printf("%-21s %s (%d trials)\n", id, spec.Title, len(spec.Trials))
		}
		// The sharing policies the sweeps' policy axes enumerate — the
		// same registry the MN resolves request overrides against.
		fmt.Printf("\nsharing policies: %s\n", strings.Join(monitor.PolicyNames(), ", "))
		return
	}

	// Profiles flush through exit: os.Exit skips defers, so every
	// termination path below goes through it.
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "venice-bench: %v\n", err)
		os.Exit(1)
	}
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	ids := flag.Args()
	for _, id := range strings.Split(*runIDs, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = harness.IDs()
	}
	opts := harness.Options{Parallel: *parallel}
	if *trialFilter != "" || seedSet {
		// Isolation mode prints raw trial metrics and skips assembly, so
		// there is no report to write or gate; refuse the combination
		// rather than let a script mistake exit 0 for a passed gate.
		if *jsonPath != "" || *baseline != "" {
			fmt.Fprintf(os.Stderr, "venice-bench: -json/-baseline cannot be combined with -trial/-seed (isolation mode has no assembled report)\n")
			exit(2)
		}
		exit(runIsolated(ids, *trialFilter, *seedOverride, seedSet, opts))
	}
	var results []*harness.Result
	start := time.Now()
	for _, id := range ids {
		art, res, err := harness.RunID(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "venice-bench: %v\n", err)
			exit(2)
		}
		results = append(results, res)
		fmt.Println(art.String())
		fmt.Printf("[%s regenerated in %v]\n\n", id, time.Duration(res.WallMS*1e6).Round(time.Millisecond))
	}
	rep := harness.NewReport(opts.Parallel, float64(time.Since(start))/1e6, results)
	if *jsonPath != "" {
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "venice-bench: writing %s: %v\n", *jsonPath, err)
			exit(1)
		}
	}
	if *baseline != "" {
		base, err := harness.LoadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "venice-bench: loading baseline: %v\n", err)
			exit(1)
		}
		drifts := rep.CompareToBaseline(base, *tolerance)
		if len(drifts) > 0 {
			fmt.Fprintf(os.Stderr, "venice-bench: %d metric(s) drifted beyond %.2f%% of %s:\n",
				len(drifts), 100**tolerance, *baseline)
			for _, d := range drifts {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			exit(3)
		}
		fmt.Printf("baseline check: %d metrics within %.2f%% of %s\n",
			rep.MetricCount(), 100**tolerance, *baseline)
	}
	stopProfiles()
}

// startProfiles begins CPU profiling (when cpu is non-empty) and
// returns a stop that flushes it and, when mem is non-empty, writes a
// heap profile. The stop is never nil and is safe to call once on any
// exit path.
func startProfiles(cpu, mem string) (stop func(), err error) {
	var cpuF *os.File
	if cpu != "" {
		cpuF, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("creating -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "venice-bench: closing -cpuprofile: %v\n", err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "venice-bench: creating -memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "venice-bench: writing -memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "venice-bench: closing -memprofile: %v\n", err)
			}
		}
	}, nil
}

// runIsolated executes the selected trials alone — filtered by id
// substring, optionally re-seeded — and prints their raw metrics. It
// returns the process exit code: 0 on success, 1 when nothing matched,
// 2 when a trial failed.
func runIsolated(ids []string, filter string, seed uint64, seedSet bool, opts harness.Options) int {
	matched, failed := 0, 0
	for _, id := range ids {
		spec, ok := harness.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "venice-bench: unknown experiment %q\n", id)
			return 1
		}
		var trials []harness.Trial
		for _, tr := range spec.Trials {
			if filter != "" && !strings.Contains(tr.ID, filter) {
				continue
			}
			if seedSet {
				tr.Seed = seed
			}
			trials = append(trials, tr)
		}
		if len(trials) == 0 {
			continue
		}
		matched += len(trials)
		res := harness.Execute(id, harness.Spec{Title: spec.Title, Trials: trials}, opts)
		for _, tr := range res.Trials {
			fmt.Printf("%s/%s (seed %d, %.1fms)\n", id, tr.Trial, tr.Seed, tr.WallMS)
			if tr.Error != "" {
				fmt.Printf("  ERROR: %s\n", tr.Error)
				failed++
				continue
			}
			keys := make([]string, 0, len(tr.Values))
			for k := range tr.Values {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %-18s %v\n", k, tr.Values[k])
			}
		}
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "venice-bench: no trial matches -trial %q in %v\n", filter, ids)
		return 1
	}
	if failed > 0 {
		return 2
	}
	return 0
}
