// Command venice-bench regenerates the paper's tables and figures from
// the simulator. With no arguments it runs everything; otherwise pass
// experiment ids (fig3 fig5 fig6 fig14 fig15 fig16a fig16b fig17 fig18
// table1 cost validation).
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

var runners = map[string]func() string{
	"fig3":       func() string { return experiments.Fig3().Table.String() },
	"fig5":       func() string { return experiments.Fig5().Table.String() },
	"fig6":       func() string { return experiments.Fig6().Table.String() },
	"fig14":      func() string { return experiments.Fig14().Table.String() },
	"fig15":      func() string { return experiments.Fig15().Table.String() },
	"fig16a":     func() string { return experiments.Fig16a().Table.String() },
	"fig16b":     func() string { return experiments.Fig16b().Table.String() },
	"fig17":      func() string { return experiments.Fig17().Table.String() },
	"fig18":      func() string { return experiments.Fig18().Table.String() },
	"table1":     func() string { return experiments.Table1().String() },
	"cost":       func() string { return experiments.CostTable().String() },
	"validation": func() string { return experiments.Validation().Table.String() },
}

// order keeps output deterministic and paper-ordered.
var order = []string{
	"table1", "fig3", "fig5", "fig6", "fig14", "fig15",
	"fig16a", "fig16b", "fig17", "fig18", "cost", "validation",
}

func main() {
	ids := os.Args[1:]
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = order
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "venice-bench: unknown experiment %q\navailable: %v\n", id, order)
			os.Exit(2)
		}
		start := time.Now()
		out := run()
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
