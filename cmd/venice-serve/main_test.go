package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serving"
)

// get fetches a URL and returns status plus body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestServeChurnEndToEnd runs the churn scenario against a live
// venice-serve handler set and drives every endpoint: an SSE client
// must observe at least one failover event while the run is in flight,
// a deliberately stalled consumer must be dropped without stalling the
// simulation, and /metrics, /state, /trace, and /healthz must reflect
// the finished run.
func TestServeChurnEndToEnd(t *testing.T) {
	s := newServer(50 * time.Millisecond)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	// Before any scenario: healthz is up, state is 503.
	if code, body := get(t, ts.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/state"); code != http.StatusServiceUnavailable {
		t.Fatalf("/state before any run = %d, want 503", code)
	}

	// A subscriber that never drains: one buffered slot, then it stalls.
	// The broadcaster must drop it rather than let it stall the run.
	slow := s.bcast.Subscribe(1)
	_ = slow

	// Live SSE client: collect data frames until the stream closes or we
	// have what we need.
	type sseResult struct {
		failovers int
		frames    int
		err       error
	}
	sseCh := make(chan sseResult, 1)
	sseCtx, cancelSSE := context.WithCancel(context.Background())
	defer cancelSSE()
	req, _ := http.NewRequestWithContext(sseCtx, "GET", ts.URL+"/events", nil)
	sseResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events Content-Type = %q", ct)
	}
	go func() {
		var res sseResult
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			res.frames++
			var ev core.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				res.err = err
				break
			}
			if ev.Type == core.LeaseFailedOver {
				res.failovers++
			}
		}
		sseCh <- res
	}()

	// The same cell the serving tests pin: fast churn on an 8-node mesh
	// reliably produces recoveries, hence failed-over events.
	runErr := s.runChurn(context.Background(), serving.ChurnConfig{
		Nodes: 8, Util: 0.7, Requests: 1500, Fault: serving.FaultFast, Seed: 1,
	}, 5*time.Millisecond, 0)
	if runErr != nil {
		t.Fatalf("runChurn: %v", runErr)
	}

	// The stalled consumer was dropped and the run completed anyway —
	// that return above IS the no-stall assertion; the drop count makes
	// it explicit.
	if _, dropped := s.bcast.Stats(); dropped < 1 {
		t.Errorf("slow consumer was not dropped (dropped=%d)", dropped)
	}
	if _, open := <-slow.C; !open {
		// drained the one buffered frame; channel must now be closed
	} else if _, open := <-slow.C; open {
		t.Error("slow consumer's channel still open after drop")
	}

	// Close the SSE stream and check what the live client saw.
	cancelSSE()
	select {
	case res := <-sseCh:
		if res.err != nil {
			t.Fatalf("SSE frame decode: %v", res.err)
		}
		if res.frames == 0 {
			t.Fatal("SSE client saw no events during churn")
		}
		if res.failovers < 1 {
			t.Errorf("SSE client saw %d failed-over events, want >= 1", res.failovers)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE reader did not finish")
	}

	// /metrics: lease counters, scoreboard mirror, latency histogram.
	code, metrics := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`venice_lease_events_total{kind="memory",type="granted"}`,
		`venice_lease_events_total{kind="memory",type="failed-over"}`,
		`venice_mn_stats{key="recover.replaced"}`,
		"venice_request_latency_ns_count 1500",
		"venice_scenario_runs_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /state: the final snapshot parses and names donors.
	code, stateBody := get(t, ts.URL+"/state")
	if code != 200 {
		t.Fatalf("/state = %d", code)
	}
	var st struct {
		Shape  string `json:"shape"`
		Donors []any  `json:"donors"`
	}
	if err := json.Unmarshal([]byte(stateBody), &st); err != nil {
		t.Fatalf("/state not JSON: %v", err)
	}
	if st.Shape != "flat" || len(st.Donors) == 0 {
		t.Errorf("/state = shape %q, %d donors", st.Shape, len(st.Donors))
	}

	// /traces + /trace/{id}: every chain starts with a grant.
	code, tracesBody := get(t, ts.URL+"/traces")
	if code != 200 {
		t.Fatalf("/traces = %d", code)
	}
	var ids []uint64
	if err := json.Unmarshal([]byte(tracesBody), &ids); err != nil || len(ids) == 0 {
		t.Fatalf("/traces = %q (err %v), want ids", tracesBody, err)
	}
	code, traceBody := get(t, ts.URL+"/trace/"+jsonNum(ids[0]))
	if code != 200 {
		t.Fatalf("/trace/%d = %d", ids[0], code)
	}
	var chain struct {
		Spans []core.Event `json:"spans"`
	}
	if err := json.Unmarshal([]byte(traceBody), &chain); err != nil || len(chain.Spans) == 0 {
		t.Fatalf("/trace body %q (err %v)", traceBody, err)
	}
	if chain.Spans[0].Type != core.LeaseGranted {
		t.Errorf("trace chain starts with %v, want granted", chain.Spans[0].Type)
	}
	if code, _ := get(t, ts.URL+"/trace/999999999"); code != http.StatusNotFound {
		t.Errorf("/trace on unknown id = %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/trace/bogus"); code != http.StatusBadRequest {
		t.Errorf("/trace on garbage id = %d, want 400", code)
	}

	// /debug/pprof is mounted.
	if code, _ := get(t, ts.URL+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, body := get(t, ts.URL+"/healthz"); code != 200 || !strings.Contains(body, "runs=1") {
		t.Errorf("/healthz after run = %d %q, want runs=1", code, body)
	}
}

// TestSSEHeartbeat verifies idle /events connections receive keepalive
// comments.
func TestSSEHeartbeat(t *testing.T) {
	s := newServer(20 * time.Millisecond)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	beats := 0
	for sc.Scan() && beats < 2 {
		if strings.HasPrefix(sc.Text(), ": keepalive") {
			beats++
		}
	}
	if beats < 2 {
		t.Fatalf("saw %d keepalives, want >= 2", beats)
	}
}

// jsonNum formats an id the way the endpoints expect.
func jsonNum(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
