// Command venice-serve exposes a live Venice control plane over HTTP:
// it runs a simulation scenario (the serving-under-churn availability
// scenario, or an idle cluster with agents heartbeating) and serves
// the control plane's observability surfaces while virtual time
// advances —
//
//	/healthz          liveness (200 once serving)
//	/metrics          Prometheus text exposition: lease-lifecycle
//	                  counters, MN scoreboard gauges, request-latency
//	                  histograms
//	/state            JSON snapshot: donors (RRT), leases (RAT) with
//	                  trace ids, delegation table, rack health, link
//	                  telemetry, MN stats
//	/trace/{id}       one lease's span chain (acquire → grant →
//	                  failover/migrate → release) as JSON
//	/traces           live trace ids
//	/events           Server-Sent Events stream of every
//	                  lease-lifecycle event, heartbeat keepalives
//	                  included; slow consumers are dropped rather than
//	                  allowed to stall the simulation
//	/debug/pprof/*    standard Go profiling endpoints
//
// The simulation runs on one goroutine; HTTP handlers only read
// thread-safe observability structures and atomically swapped state
// snapshots, so serving traffic never perturbs virtual time — a
// paused or profiled server still produces byte-identical scenario
// results.
//
// Usage:
//
//	venice-serve [-addr :8080] [-scenario churn|idle] [-fault fast]
//	             [-requests N] [-util f] [-loop] [-interval 1s]
//	             [-pace 0] [-heartbeat 15s] [-snapshot 100ms]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serving"
	"repro/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	scenario := flag.String("scenario", "churn", "what to run: churn (serving under donor churn) or idle (agents heartbeating, no load)")
	fault := flag.String("fault", "fast", "churn fault rate: none, slow, or fast")
	requests := flag.Int("requests", 4000, "churn: measured requests per run")
	util := flag.Float64("util", 0.6, "churn: offered load as a fraction of calibrated capacity")
	loop := flag.Bool("loop", true, "rerun the scenario continuously (false: one run, then keep serving final state)")
	interval := flag.Duration("interval", time.Second, "wall-clock pause between scenario runs with -loop")
	pace := flag.Duration("pace", 0, "wall-clock sleep per 1024 engine steps (0 = run at full speed)")
	heartbeat := flag.Duration("heartbeat", 15*time.Second, "SSE keepalive period on /events")
	snapshot := flag.Duration("snapshot", 100*time.Millisecond, "minimum wall-clock interval between /state snapshots")
	flag.Parse()

	s := newServer(*heartbeat)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: s.mux}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.ListenAndServe() }()
	log.Printf("venice-serve: listening on %s (scenario %s)", *addr, *scenario)

	simDone := make(chan error, 1)
	go func() {
		defer close(simDone)
		for {
			var err error
			switch *scenario {
			case "churn":
				err = s.runChurn(ctx, serving.ChurnConfig{
					Requests: *requests,
					Util:     *util,
					Fault:    serving.FaultRate(*fault),
					Seed:     1,
				}, *snapshot, *pace)
			case "idle":
				err = s.runIdle(ctx, *snapshot)
			default:
				err = fmt.Errorf("unknown -scenario %q (want churn or idle)", *scenario)
			}
			if err != nil {
				simDone <- err
				return
			}
			if !*loop || ctx.Err() != nil {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(*interval):
			}
		}
	}()

	select {
	case err := <-simDone:
		if err != nil {
			log.Printf("venice-serve: scenario: %v", err)
			stop()
		} else {
			log.Printf("venice-serve: scenario finished; serving final state (ctrl-c to exit)")
			<-ctx.Done()
		}
	case <-ctx.Done():
	case err := <-httpDone:
		log.Fatalf("venice-serve: http: %v", err)
	}

	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Printf("venice-serve: shutdown: %v", err)
	}
	log.Printf("venice-serve: bye")
}

// server owns the observability state the handlers read: one metrics
// registry and event broadcaster for the process lifetime, a trace
// store swapped per scenario run (trace ids restart with each fresh
// cluster), and the atomically published state snapshot.
type server struct {
	mux       *http.ServeMux
	reg       *obs.Registry
	bcast     *obs.Broadcaster
	traces    atomic.Pointer[obs.TraceStore]
	cell      obs.StateCell
	heartbeat time.Duration
	runs      atomic.Int64
}

// newServer builds the handler set. heartbeat is the SSE keepalive
// period.
func newServer(heartbeat time.Duration) *server {
	s := &server{
		mux:       http.NewServeMux(),
		reg:       &obs.Registry{},
		bcast:     obs.NewBroadcaster(),
		heartbeat: heartbeat,
	}
	s.traces.Store(obs.NewTraceStore(0))

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /state", s.handleState)
	s.mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /traces", s.handleTraces)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// runChurn executes one serving-under-churn pass with the
// observability hooks wired in: the collector feeds the registry,
// trace store, and SSE broadcaster from the plane's event stream, and
// the engine-step throttle publishes state snapshots (at most one per
// snapEvery of wall clock) plus optional pacing.
func (s *server) runChurn(ctx context.Context, cfg serving.ChurnConfig, snapEvery, pace time.Duration) error {
	traces := obs.NewTraceStore(0)
	s.traces.Store(traces)
	col := &obs.Collector{Reg: s.reg, Traces: traces, Events: s.bcast}
	lat := s.reg.Histogram("venice_request_latency_ns",
		"End-to-end serving request latency (virtual nanoseconds).", nil)

	var cl *core.Cluster
	var lastSnap time.Time
	steps := 0
	snap := func() {
		st := obs.SnapshotFlat(cl)
		s.cell.Set(st)
		col.MirrorScoreboard("venice_mn_stats",
			"Monitor Node scoreboard counters (grants, recoveries, spare-pool hits, migrations).",
			&cl.MN.Stats)
		s.reg.Gauge("venice_live_leases", "Live RAT rows.", nil).Set(float64(len(st.Leases)))
		s.reg.Gauge("venice_donors", "Registered donors.", nil).Set(float64(len(st.Donors)))
	}

	cfg.OnCluster = func(c *core.Cluster) {
		cl = c
		col.Attach(c) // the cluster dies with the run; no cancel needed
		snap()
	}
	cfg.Observe = lat.ObserveDur
	cfg.Throttle = func() {
		steps++
		if pace > 0 && steps%1024 == 0 {
			time.Sleep(pace)
		}
		// ctx cancellation cannot abort RunChurn mid-run (the scenario
		// owns its engine loop); pacing just stops so shutdown is quick.
		if ctx.Err() != nil {
			pace = 0
		}
		if time.Since(lastSnap) >= snapEvery {
			lastSnap = time.Now()
			snap()
		}
	}

	s.reg.Counter("venice_scenario_runs_total", "Completed scenario runs.", nil)
	res, err := serving.RunChurn(cfg)
	if err != nil {
		return err
	}
	s.reg.Counter("venice_scenario_runs_total", "", nil).Inc()
	s.reg.Gauge("venice_last_goodput_rps", "Last run's goodput (completions within SLO per second).", nil).Set(res.GoodputRPS)
	s.reg.Gauge("venice_last_recoveries", "Last run's completed lease re-placements.", nil).Set(float64(res.Recoveries))
	s.runs.Add(1)
	return nil
}

// runIdle builds a flat cluster with agents and recovery running and
// advances virtual time in small slices paced against the wall clock,
// publishing snapshots, until ctx is cancelled. No load is offered;
// this is the "watch a healthy control plane heartbeat" mode.
func (s *server) runIdle(ctx context.Context, snapEvery time.Duration) error {
	traces := obs.NewTraceStore(0)
	s.traces.Store(traces)
	col := &obs.Collector{Reg: s.reg, Traces: traces, Events: s.bcast}

	cl := core.NewCluster(core.Config{StartAgents: true, StartRecovery: true})
	defer cl.Close()
	col.Attach(cl)

	for ctx.Err() == nil {
		cl.RunFor(10 * sim.Millisecond)
		st := obs.SnapshotFlat(cl)
		s.cell.Set(st)
		col.MirrorScoreboard("venice_mn_stats", "Monitor Node scoreboard counters.", &cl.MN.Stats)
		s.reg.Gauge("venice_donors", "Registered donors.", nil).Set(float64(len(st.Donors)))
		select {
		case <-ctx.Done():
		case <-time.After(snapEvery):
		}
	}
	s.runs.Add(1)
	return nil
}

// handleHealthz reports liveness and whether a snapshot exists yet.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok runs=%d snapshot=%v\n", s.runs.Load(), s.cell.Get() != nil)
}

// handleMetrics serves the Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		log.Printf("venice-serve: /metrics: %v", err)
	}
}

// handleState serves the latest control-plane snapshot as JSON.
func (s *server) handleState(w http.ResponseWriter, _ *http.Request) {
	st := s.cell.Get()
	if st == nil {
		http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(st); err != nil {
		log.Printf("venice-serve: /state: %v", err)
	}
}

// handleTrace serves one lease's span chain.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad trace id", http.StatusBadRequest)
		return
	}
	chain := s.traces.Load().Get(id)
	if chain == nil {
		http.Error(w, "unknown trace (never seen, or evicted)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{"trace": id, "spans": chain}); err != nil {
		log.Printf("venice-serve: /trace: %v", err)
	}
}

// handleTraces lists live trace ids.
func (s *server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.traces.Load().IDs()); err != nil {
		log.Printf("venice-serve: /traces: %v", err)
	}
}

// handleEvents streams lease-lifecycle events as Server-Sent Events.
// Each event is one `data:` frame carrying the core.Event JSON;
// comment frames keep idle connections alive. A client that stops
// reading fills its fan-out buffer and is dropped by the broadcaster
// (its channel closes and this handler returns) — publishing never
// blocks on it.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprint(w, ": venice-serve event stream\n\n")
	fl.Flush()

	sub := s.bcast.Subscribe(256)
	defer s.bcast.Unsubscribe(sub)
	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case msg, open := <-sub.C:
			if !open {
				// Dropped for falling behind; tell the client why before
				// closing.
				fmt.Fprint(w, "event: dropped\ndata: \"slow consumer\"\n\n")
				fl.Flush()
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", msg); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
