// Command venice-topo describes the prototype fabric: the 2x2x2 mesh's
// adjacency, hop counts, and the calibrated point-to-point latency for a
// range of payload sizes.
package main

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func main() {
	p := sim.Default()
	topo := fabric.Mesh3D(2, 2, 2)
	fmt.Printf("topology %s: %d nodes, %d bidirectional links\n\n",
		topo.Name, topo.N, len(topo.Edges))

	fmt.Println("adjacency:")
	for i := 0; i < topo.N; i++ {
		fmt.Printf("  %v -> %v\n", fabric.NodeID(i), topo.NeighborsOf(fabric.NodeID(i)))
	}

	fmt.Println("\nhop counts:")
	fmt.Print("     ")
	for j := 0; j < topo.N; j++ {
		fmt.Printf("n%-3d", j)
	}
	fmt.Println()
	for i := 0; i < topo.N; i++ {
		fmt.Printf("n%-3d ", i)
		for j := 0; j < topo.N; j++ {
			fmt.Printf("%-4d", topo.HopCount(fabric.NodeID(i), fabric.NodeID(j)))
		}
		fmt.Println()
	}

	fmt.Printf("\nfixed hop latency: %v (Table 1: 1.4 µs)\n", p.HopLatency())
	fmt.Println("one-way latency by payload (direct neighbors):")
	for _, size := range []int{16, 64, 256, 1024, 4096} {
		fmt.Printf("  %5d B: %v\n", size, p.HopLatency()+p.Serialize(size))
	}
	fmt.Printf("\nlink rate %.0f Gbps x %d ports per node\n", p.LinkGbps, p.LinkPorts)
}
