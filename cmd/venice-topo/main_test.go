package main

import "testing"

// TestMainRuns exercises the command end to end so `go test ./...`
// catches a venice-topo that builds but panics — the command has no
// flags and prints a fixed description of the prototype fabric.
func TestMainRuns(t *testing.T) {
	main()
}
