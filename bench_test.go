// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation, one testing.B benchmark per artifact. Each
// iteration rebuilds the full system from scratch and reruns the
// experiment; custom metrics report the headline numbers next to the
// paper's values (recorded in EXPERIMENTS.md).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/experiments"
)

// BenchmarkFig3 regenerates Fig. 3 (remote memory over commodity
// interconnects). Reported metric: the Ethernet configuration's
// normalized execution time (paper: 42x).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3()
		b.ReportMetric(r.Normalized[0], "eth-slowdown-x")
		b.ReportMetric(r.Normalized[3], "ldst-slowdown-x")
	}
}

// BenchmarkFig5 regenerates Fig. 5 (QPair/CRMA, on/off-chip, sync/async).
// Reported metrics: on-chip CRMA normalized time for both workloads
// (paper: PageRank 2.12, BerkeleyDB 2.48).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5()
		b.ReportMetric(r.PageRank[4], "pr-oncrma-x")
		b.ReportMetric(r.BerkeleyDB[4], "bdb-oncrma-x")
	}
}

// BenchmarkFig6 regenerates Fig. 6 (one-level router overhead).
// Reported metric: on-chip CRMA overhead percent (paper: ~16-23%).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6()
		b.ReportMetric(r.PageRank[4], "pr-oncrma-ovh-%")
		b.ReportMetric(r.BerkeleyDB[4], "bdb-oncrma-ovh-%")
	}
}

// BenchmarkFig14 regenerates Fig. 14 (Redis memory sweep). Reported
// metrics: end-to-end speedup across the sweep (paper: 15.7x) and the
// final miss rate (paper: ~5%).
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14()
		n := len(r.Sizes)
		b.ReportMetric(float64(r.RemoteTime[0])/float64(r.RemoteTime[n-1]), "sweep-speedup-x")
		b.ReportMetric(r.RemoteMiss[n-1]*100, "final-miss-%")
	}
}

// BenchmarkFig15 regenerates Fig. 15 (direct vs swap remote memory).
// Reported metrics: the in-memory DB's CRMA-vs-RDMA advantage (the
// random-access story) and grep's RDMA-vs-CRMA advantage (the
// contiguous-access inversion).
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15()
		b.ReportMetric(r.CRMA[0]/r.RDMA[0], "db-crma-over-rdma-x")
		b.ReportMetric(r.RDMA[2]/r.CRMA[2], "grep-rdma-over-crma-x")
	}
}

// BenchmarkFig16a regenerates Fig. 16a (remote accelerators). Reported
// metric: LA+3RA speedup for the large dataset (paper: near-linear ~4x).
func BenchmarkFig16a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16a()
		b.ReportMetric(r.Large[len(r.Large)-1], "la3ra-large-x")
		b.ReportMetric(r.Small[len(r.Small)-1], "la3ra-small-x")
	}
}

// BenchmarkFig16b regenerates Fig. 16b (remote NICs). Reported metrics:
// bond utilization with 3 remote NICs (paper: ~40% @4B, ~85% @256B).
func BenchmarkFig16b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16b()
		last := len(r.Remotes) - 1
		b.ReportMetric(100*r.Tiny[last]/4, "4B-util-%")
		b.ReportMetric(100*r.Normal[last]/4, "256B-util-%")
	}
}

// BenchmarkFig17 regenerates Fig. 17 (channel multi-modality). Reported
// metrics: the runner-up's normalized score per pattern (paper: 14.5,
// 23.7, 57.7).
func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig17()
		b.ReportMetric(r.RDMA[0], "db-rdma-norm")
		b.ReportMetric(r.CRMA[1], "cc-crma-norm")
		b.ReportMetric(r.CRMA[2], "iperf-crma-norm")
	}
}

// BenchmarkFig18 regenerates Fig. 18 (credits over CRMA). Reported
// metrics: bandwidth improvement at the extremes (paper: 51% at 4B,
// 28% at 128B).
func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig18()
		b.ReportMetric(r.Improvement[0], "4B-improvement-%")
		b.ReportMetric(r.Improvement[len(r.Improvement)-1], "128B-improvement-%")
	}
}

// BenchmarkServing regenerates the open-loop serving smoke cell (the
// bench-regression CI gate's subset). Reported metrics: the cell's
// end-to-end latency percentiles and achieved throughput.
func BenchmarkServing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ServingSmoke()
		c := &r.Cells[0]
		b.ReportMetric(float64(c.P50)/1e3, "p50-us")
		b.ReportMetric(float64(c.P90)/1e3, "p90-us")
		b.ReportMetric(float64(c.P99)/1e3, "p99-us")
		b.ReportMetric(float64(c.P999)/1e3, "p999-us")
		b.ReportMetric(c.AchievedRPS/1e3, "krps")
	}
}

// BenchmarkServingTier regenerates one pressured cache-tier cell: the
// co-located-tenant scenario whose tail the sharing policy moves.
func BenchmarkServingTier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ServingPressure()
		c := &r.Cells[0]
		b.ReportMetric(float64(c.P99)/1e3, "p99-us")
		b.ReportMetric(float64(c.P999)/1e3, "p999-us")
		b.ReportMetric(c.AchievedRPS/1e3, "krps")
	}
}

// BenchmarkServingChurn regenerates the availability-under-churn smoke
// cell: the donor crash/restart scenario the bench-regression gate
// pins. Reported metrics: goodput under faults and recovery tail.
func BenchmarkServingChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ChurnSmoke()
		c := &r.Cells[0]
		b.ReportMetric(c.GoodputRPS/1e3, "goodput-krps")
		b.ReportMetric(c.UnavailMS, "unavail-ms")
		b.ReportMetric(float64(c.P99)/1e3, "p99-us")
	}
}

// BenchmarkServingScale regenerates the rack-scale serving smoke cell
// (multi-rack spine fabric). Reported metrics: the cell's end-to-end
// tail and achieved throughput.
func BenchmarkServingScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ScaleSmoke()
		c := &r.Cells[0]
		b.ReportMetric(float64(c.P99)/1e3, "p99-us")
		b.ReportMetric(c.AchievedRPS/1e3, "krps")
	}
}

// BenchmarkCost regenerates the §7.3 hardware cost table. Reported
// metric: Venice's share of an 8-core Haswell-EP die (paper: ~2%).
func BenchmarkCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.CostTable()
		if len(t.Rows) == 0 {
			b.Fatal("empty cost table")
		}
	}
}

// BenchmarkValidation regenerates the §4.2 prototype-vs-Xeon check.
func BenchmarkValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Validation()
		b.ReportMetric(r.Ratios[0], "bdb-proto-over-xeon-x")
	}
}

// BenchmarkAblationMSHR sweeps the core's miss-level parallelism — the
// design choice that makes CRMA streaming viable at all.
func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationMSHR()
		b.ReportMetric(float64(r.Times[0])/float64(r.Times[len(r.Times)-1]), "mlp-gain-x")
	}
}

// BenchmarkAblationReadahead sweeps the swap readahead window — what
// makes RDMA-swap win the contiguous patterns of Figs. 15 and 17.
func BenchmarkAblationReadahead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationReadahead()
		b.ReportMetric(float64(r.Times[0])/float64(r.Times[len(r.Times)-1]), "readahead-gain-x")
	}
}

// BenchmarkAblationWindow sweeps the QPair credit window under both
// credit paths.
func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationWindow()
		gain := (r.CRMAMBps[0] - r.QPairMBps[0]) / r.QPairMBps[0]
		b.ReportMetric(100*gain, "smallest-window-gain-%")
	}
}

// BenchmarkAblationGranularity locates the CRMA/RDMA crossover size.
func BenchmarkAblationGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationGranularity()
		cross := float64(r.Sizes[len(r.Sizes)-1])
		for j := range r.Sizes {
			if r.RDMA[j] < r.CRMA[j] {
				cross = float64(r.Sizes[j])
				break
			}
		}
		b.ReportMetric(cross, "crossover-bytes")
	}
}
