package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsLinks is the markdown link checker CI's docs job runs: every
// relative link and image in the repository's *.md files must resolve
// to an existing file (and, for intra-document anchors, to a real
// heading). External http(s) links are not fetched — CI must not
// depend on the network — but nothing else gets a pass.
func TestDocsLinks(t *testing.T) {
	mds := findMarkdown(t, ".")
	if len(mds) < 5 {
		t.Fatalf("found only %d markdown files — the doc set went missing: %v", len(mds), mds)
	}
	linkRe := regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		anchors := headingAnchors(string(data))
		for _, m := range linkRe.FindAllStringSubmatch(stripCodeFences(string(data)), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			case strings.HasPrefix(target, "#"):
				if !anchors[strings.TrimPrefix(target, "#")] {
					t.Errorf("%s: anchor %q does not match any heading", md, target)
				}
			default:
				path, frag, _ := strings.Cut(target, "#")
				resolved := filepath.Join(filepath.Dir(md), path)
				info, err := os.Stat(resolved)
				if err != nil {
					t.Errorf("%s: link %q -> %s does not exist", md, target, resolved)
					continue
				}
				if frag != "" && !info.IsDir() && strings.HasSuffix(path, ".md") {
					other, err := os.ReadFile(resolved)
					if err != nil {
						t.Fatal(err)
					}
					if !headingAnchors(string(other))[frag] {
						t.Errorf("%s: link %q anchor #%s not found in %s", md, target, frag, resolved)
					}
				}
			}
		}
	}
}

// TestAPIFreeze is the deprecated-surface gate CI's docs job runs: the
// legacy Borrow*/Attach* wrappers were deleted outright (their
// equivalence history lives in CHANGES.md), so the unified core.Plane
// API (Acquire / AcquireAll) is the only entry point. The gate rejects
// both a surviving call site and a reintroduced definition — deleting
// dead code only sticks if nothing can quietly grow it back.
func TestAPIFreeze(t *testing.T) {
	deprecated := regexp.MustCompile(
		`\.(BorrowMemory|BorrowMemoryScoped|BorrowSwap|AttachAccelerator|AttachNIC|AttachMemoryDirect|AttachSwapDirect)\(`)
	redefined := regexp.MustCompile(
		`^func (\([^)]*\) )?(BorrowMemory|BorrowMemoryScoped|BorrowSwap|AttachAccelerator|AttachNIC|AttachMemoryDirect|AttachSwapDirect)\(`)
	for _, dir := range []string{"examples", "internal/core", "internal/serving", "internal/experiments"} {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for i, line := range strings.Split(string(data), "\n") {
				if m := deprecated.FindString(line); m != "" {
					t.Errorf("%s:%d: calls deleted entry point %q — use core.Plane's Acquire instead", path, i+1, strings.TrimSuffix(strings.TrimPrefix(m, "."), "("))
				}
				if redefined.MatchString(line) {
					t.Errorf("%s:%d: reintroduces a deleted Borrow*/Attach* wrapper: %s", path, i+1, strings.TrimSpace(line))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// findMarkdown walks the tree for *.md files, skipping VCS internals.
func findMarkdown(t *testing.T, root string) []string {
	t.Helper()
	var mds []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && (d.Name() == ".git" || d.Name() == "testdata") {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
			mds = append(mds, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return mds
}

// headingAnchors derives GitHub-style anchor slugs from markdown
// headings: lowercase, spaces to dashes, punctuation dropped.
func headingAnchors(doc string) map[string]bool {
	anchors := make(map[string]bool)
	slugRe := regexp.MustCompile(`[^a-z0-9 _-]`)
	for _, line := range strings.Split(stripCodeFences(doc), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		slug := slugRe.ReplaceAllString(strings.ToLower(text), "")
		slug = strings.ReplaceAll(slug, " ", "-")
		if anchors[slug] {
			// GitHub de-duplicates repeated headings with -1, -2, …
			for i := 1; ; i++ {
				dedup := fmt.Sprintf("%s-%d", slug, i)
				if !anchors[dedup] {
					slug = dedup
					break
				}
			}
		}
		anchors[slug] = true
	}
	return anchors
}

// stripCodeFences blanks ``` blocks so example snippets cannot
// register false links or headings.
func stripCodeFences(doc string) string {
	var out []string
	fenced := false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			out = append(out, "")
			continue
		}
		if fenced {
			out = append(out, "")
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}
