package vnic

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/node"
	"repro/internal/sim"
)

func makeNodes(t *testing.T, n int) (*sim.Engine, sim.Params, []*node.Node) {
	t.Helper()
	eng := sim.New()
	t.Cleanup(eng.Close)
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Star(n), sim.NewRNG(3))
	nodes := make([]*node.Node, n)
	for i := range nodes {
		nodes[i] = node.New(eng, &p, net, fabric.NodeID(i), 1<<30)
	}
	return eng, p, nodes
}

func TestNICFraming(t *testing.T) {
	eng, p, _ := makeNodes(t, 2)
	n := NewNIC(eng, &p, "eth0")
	// A 4B payload pads to the 46B minimum + 38B overhead = 84B at 1Gbps.
	if got, want := n.FrameTime(4), sim.Dur(84*8); got != want {
		t.Fatalf("FrameTime(4) = %v, want %v", got, want)
	}
	// 256B payload: (256+38)*8 ns.
	if got, want := n.FrameTime(256), sim.Dur(294*8); got != want {
		t.Fatalf("FrameTime(256) = %v, want %v", got, want)
	}
}

func TestNICSerializesFrames(t *testing.T) {
	eng, p, _ := makeNodes(t, 2)
	n := NewNIC(eng, &p, "eth0")
	d1 := n.Enqueue(1000)
	d2 := n.Enqueue(1000)
	if d2.Sub(d1) != n.FrameTime(1000) {
		t.Fatalf("frames not serialized: %v then %v", d1, d2)
	}
	if n.PktsTx != 2 || n.BytesTx != 2000 {
		t.Fatalf("stats: %d pkts %d bytes", n.PktsTx, n.BytesTx)
	}
}

// measure sends pkts packets of size bytes over a bond built from the
// recipient's local NIC and the given number of remote NICs, returning
// payload throughput in bytes/sec.
func measure(t *testing.T, remotes int, size, pkts int) float64 {
	t.Helper()
	eng, p, nodes := makeNodes(t, 5)
	recipient := nodes[0]
	local := NewNIC(eng, &p, "eth0")
	slaves := []Slave{&LocalSlave{NIC: local}}
	for i := 0; i < remotes; i++ {
		donor := nodes[i+1]
		dn := NewNIC(eng, &p, "eth0@"+donor.String())
		slaves = append(slaves, AttachRemote(recipient, donor, dn))
	}
	bond := NewBond(&p, slaves...)
	recipient.Run("iperf", func(pr *sim.Proc) {
		for i := 0; i < pkts; i++ {
			bond.Send(pr, size)
		}
	})
	eng.RunFor(30 * sim.Second)
	elapsed := bond.Drained()
	if elapsed == 0 {
		t.Fatal("nothing transmitted")
	}
	return float64(bond.BytesTx) / sim.Dur(elapsed).Seconds()
}

func TestRemoteNICsScaleFor256BPackets(t *testing.T) {
	base := measure(t, 0, 256, 4000)
	three := measure(t, 3, 256, 4000)
	ratio := three / base
	// Fig. 16b: ~85% of the ideal 4x for 256B packets.
	if ratio < 2.8 || ratio > 4.0 {
		t.Fatalf("LN+3RN / LN = %.2f for 256B, want within [2.8, 4.0]", ratio)
	}
}

func TestRemoteNICsUtilizationPoorForTinyPackets(t *testing.T) {
	base := measure(t, 0, 4, 4000)
	three := measure(t, 3, 4, 4000)
	ratio := three / base
	// Fig. 16b: ~40% utilization of 4 NICs for 4B packets; the gain over
	// one NIC must be visibly sublinear.
	if ratio < 1.1 || ratio > 2.6 {
		t.Fatalf("LN+3RN / LN = %.2f for 4B, want within [1.1, 2.6]", ratio)
	}
	// And tiny packets must utilize the bond worse than 256B packets do.
	big := measure(t, 3, 256, 4000) / measure(t, 0, 256, 4000)
	if ratio >= big {
		t.Fatalf("4B scaling %.2f should trail 256B scaling %.2f", ratio, big)
	}
}

func TestBondRoundRobinSpreadsLoad(t *testing.T) {
	eng, p, nodes := makeNodes(t, 3)
	recipient := nodes[0]
	local := NewNIC(eng, &p, "eth0")
	dn := NewNIC(eng, &p, "eth1")
	v := AttachRemote(recipient, nodes[1], dn)
	bond := NewBond(&p, &LocalSlave{NIC: local}, v)
	recipient.Run("send", func(pr *sim.Proc) {
		for i := 0; i < 100; i++ {
			bond.Send(pr, 128)
		}
	})
	eng.RunFor(5 * sim.Second)
	if local.PktsTx != 50 {
		t.Fatalf("local carried %d, want 50", local.PktsTx)
	}
	if v.PktsTx != 50 {
		t.Fatalf("vnic carried %d, want 50", v.PktsTx)
	}
	if dn.PktsTx != 50 {
		t.Fatalf("donor NIC transmitted %d, want 50", dn.PktsTx)
	}
}

func TestVNICFramesTraverseQPair(t *testing.T) {
	eng, p, nodes := makeNodes(t, 2)
	dn := NewNIC(eng, &p, "eth-donor")
	v := AttachRemote(nodes[0], nodes[1], dn)
	nodes[0].Run("send", func(pr *sim.Proc) {
		v.Send(pr, 512)
		v.Send(pr, 512)
	})
	eng.RunFor(1 * sim.Second)
	if v.be.PktsRx != 2 {
		t.Fatalf("backend received %d, want 2", v.be.PktsRx)
	}
	if dn.BytesTx != 1024 {
		t.Fatalf("donor NIC sent %d bytes, want 1024", dn.BytesTx)
	}
}

func TestVNICCloseStopsBackend(t *testing.T) {
	eng, p, nodes := makeNodes(t, 2)
	dn := NewNIC(eng, &p, "eth-donor")
	v := AttachRemote(nodes[0], nodes[1], dn)
	nodes[0].Run("close", func(pr *sim.Proc) {
		v.Send(pr, 64)
		v.Close(pr)
	})
	eng.Run()
	if eng.LiveProcs() != 0 {
		t.Fatalf("%d processes leaked after Close", eng.LiveProcs())
	}
}

func TestBondValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty bond accepted")
		}
	}()
	p := sim.Default()
	NewBond(&p)
}
