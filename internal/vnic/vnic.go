// Package vnic implements Venice's remote NIC sharing (§5.2.3, Fig. 12):
// a front-end driver on the recipient presents a virtual NIC whose
// frames traverse a QPair to a back-end driver on the donor, which
// bridges them onto the donor's real NIC. Linux-style bonding combines
// the local NIC and any number of VNICs into one virtual interface.
package vnic

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/transport"
)

// NIC is one conventional Ethernet NIC: a line-rate serializer with
// Ethernet framing overhead (minimum frame size, preamble/FCS/IFG).
type NIC struct {
	Eng  *sim.Engine
	P    *sim.Params
	name string

	nextFree sim.Time

	PktsTx  int64
	BytesTx int64 // payload bytes
}

// NewNIC builds a NIC at Params.NICGbps.
func NewNIC(eng *sim.Engine, p *sim.Params, name string) *NIC {
	return &NIC{Eng: eng, P: p, name: name}
}

// FrameTime reports the wire time of a frame carrying size payload bytes.
func (n *NIC) FrameTime(size int) sim.Dur {
	payload := size
	if payload < n.P.EthMinFrame {
		payload = n.P.EthMinFrame
	}
	bits := float64(payload+n.P.EthFrameOverhead) * 8
	return sim.Dur(bits/n.P.NICGbps + 0.5)
}

// Enqueue appends one frame to the TX ring and returns its drain time.
func (n *NIC) Enqueue(size int) sim.Time {
	now := n.Eng.Now()
	depart := now
	if n.nextFree > depart {
		depart = n.nextFree
	}
	n.nextFree = depart.Add(n.FrameTime(size))
	n.PktsTx++
	n.BytesTx += int64(size)
	return n.nextFree
}

// Drained reports when the last enqueued frame leaves the wire.
func (n *NIC) Drained() sim.Time { return n.nextFree }

// Name identifies the NIC.
func (n *NIC) Name() string { return n.name }

// Slave is one member of a bonded interface.
type Slave interface {
	// Send hands one packet of size payload bytes to the slave, charging
	// the calling process only for its share of sender-side software.
	Send(p *sim.Proc, size int)
	// Drained reports when the slave's last frame hits the wire.
	Drained() sim.Time
	Name() string
}

// LocalSlave transmits on the node's own NIC.
type LocalSlave struct {
	NIC *NIC
}

// Send enqueues directly; the local driver cost is inside the generic
// stack cost charged by the bond.
func (s *LocalSlave) Send(_ *sim.Proc, size int) { s.NIC.Enqueue(size) }

// Drained reports the NIC's drain time.
func (s *LocalSlave) Drained() sim.Time { return s.NIC.Drained() }

// Name identifies the slave.
func (s *LocalSlave) Name() string { return "local:" + s.NIC.Name() }

// frame is a VNIC payload on the QPair.
type frame struct {
	size  int
	close bool
}

// VNIC is the recipient-side front-end driver of a remote NIC.
type VNIC struct {
	P  *sim.Params
	qp *transport.QPair
	be *Backend

	PktsTx  int64
	BytesTx int64
}

// Send pays the front-end driver cost and ships the frame through the
// QPair hardware path (one hardware QPair services each IP-over-QPair
// connection).
func (v *VNIC) Send(p *sim.Proc, size int) {
	p.Sleep(v.P.VNICFrontPerPkt)
	v.PktsTx++
	v.BytesTx += int64(size)
	v.qp.SendHW(p, size, &frame{size: size})
}

// Drained reports when the donor NIC drains (conservatively: the
// donor-side NIC's current estimate).
func (v *VNIC) Drained() sim.Time { return v.be.NIC.Drained() }

// Name identifies the slave.
func (v *VNIC) Name() string { return "vnic->" + v.qp.Peer().String() }

// Close stops the donor's back-end loop.
func (v *VNIC) Close(p *sim.Proc) {
	v.qp.SendHW(p, 0, &frame{close: true})
}

// Backend is the donor-side half: back-end driver + software bridge +
// real NIC.
type Backend struct {
	Node *node.Node
	NIC  *NIC
	qp   *transport.QPair

	PktsRx int64
}

// AttachRemote builds the full remote-NIC path from recipient to donor:
// QPair, back-end driver loop, bridge, and the donor's real NIC.
func AttachRemote(recipient, donor *node.Node, donorNIC *NIC) *VNIC {
	front, back := transport.ConnectQPair(recipient.EP, donor.EP, transport.QPairConfig{})
	be := &Backend{Node: donor, NIC: donorNIC, qp: back}
	v := &VNIC{P: recipient.P, qp: front, be: be}
	donor.Eng.Go(fmt.Sprintf("vnic-backend@%v", donor.ID), func(p *sim.Proc) {
		for {
			m := back.Recv(p) // QPair software receive cost applies here
			f := m.Data.(*frame)
			if f.close {
				return
			}
			be.PktsRx++
			p.Sleep(donor.P.VNICBackPerPkt + donor.P.BridgePerPkt)
			donorNIC.Enqueue(f.size)
		}
	})
	return v
}

// Bond is the Linux bonding device combining slaves into one interface.
type Bond struct {
	P      *sim.Params
	slaves []Slave
	next   int

	PktsTx  int64
	BytesTx int64
}

// NewBond builds a bond over the given slaves (at least one).
func NewBond(p *sim.Params, slaves ...Slave) *Bond {
	if len(slaves) == 0 {
		panic("vnic: bond needs at least one slave")
	}
	return &Bond{P: p, slaves: slaves}
}

// Send pushes one packet through the bond: the network stack cost
// (fixed per packet plus copy/checksum per byte), then round-robin
// distribution across slaves.
func (b *Bond) Send(p *sim.Proc, size int) {
	p.Sleep(b.P.NetStackPerPkt + b.P.NetStackPerKB*sim.Dur(size)/1024)
	s := b.slaves[b.next%len(b.slaves)]
	b.next++
	b.PktsTx++
	b.BytesTx += int64(size)
	s.Send(p, size)
}

// Drained reports when every slave's traffic has left the wire.
func (b *Bond) Drained() sim.Time {
	var latest sim.Time
	for _, s := range b.slaves {
		if d := s.Drained(); d > latest {
			latest = d
		}
	}
	return latest
}

// Slaves reports the bond's member count.
func (b *Bond) Slaves() int { return len(b.slaves) }
