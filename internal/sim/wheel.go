package sim

import (
	"math/bits"
	"sort"
)

// The hierarchical timing wheel: the engine's production event queue.
//
// Virtual time is an int64 nanosecond count, split into 8-bit digits.
// Level l of the wheel has 256 slots of 256^l ns each, so the four
// levels together cover the 2^32 ns (~4.29 s) of virtual time that
// shares the current top-level window with the wheel's clock; events
// scheduled beyond that horizon wait in a (time, seq)-sorted spill
// list and are pulled into the wheel when the clock reaches their
// window.
//
// A level-0 slot spans exactly 1 ns, so within one rotation every event
// in it carries the same timestamp; buckets are append-only, pushes
// happen in ascending seq order, and cascades preserve relative order —
// which together make bucket order the (at, seq) FIFO order the engine
// requires, with no comparisons on the hot path. Insertion is O(1)
// (pick the level whose window contains the timestamp, append);
// extraction is O(1) amortized (a 4-word occupancy bitmap per level
// finds the next non-empty slot; events in higher levels cascade down
// one level at a time as the clock reaches their window).
//
// The wheel's clock (vnow) trails the engine's: it advances to each
// popped event's timestamp, or to a slot boundary during a cascade —
// never past the earliest pending event, so a later push can never be
// "in the past" relative to the wheel. When the wheel empties, the
// clock simply restarts at the next pushed event's timestamp.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 4               // horizon: 256^4 ns ≈ 4.29 s
	wheelWords  = wheelSlots / 64 // occupancy bitmap words per level
)

// bucket is one wheel slot: an append-ordered event list. head marks the
// already-popped prefix at level 0, so draining a slot is O(1) per event
// with the backing array (and its capacity) reused across rotations.
type bucket struct {
	evs  []*event
	head int
}

type wheel struct {
	vnow  Time // trails the engine clock; see the invariant above
	n     int  // events across all levels plus the spill list
	level [wheelLevels][wheelSlots]bucket
	occ   [wheelLevels][wheelWords]uint64
	spill []*event // beyond-horizon events, sorted by (at, seq)
}

func newWheel() *wheel { return &wheel{} }

func (w *wheel) len() int { return w.n }

// digit extracts the level-l slot index of t.
func digit(l int, t Time) int {
	return int(uint64(t)>>uint(l*wheelBits)) & wheelMask
}

// push inserts ev. The engine guarantees ev.at >= now >= the last
// popped timestamp (see the queue contract).
func (w *wheel) push(ev *event, now Time) {
	if w.n == 0 {
		// Empty wheel: every window is stale, so re-anchor the clock at
		// the engine's. Anchoring at now (not ev.at) keeps later pushes
		// that land earlier than this event — but never earlier than
		// now — inside valid windows, and it repairs the clock after
		// trailing canceled events dragged it past now.
		w.vnow = now
	}
	w.n++
	w.place(ev)
}

// place appends ev to the lowest wheel level whose current window
// contains ev.at, or to the spill list when ev.at is beyond the
// horizon. Shared by push, cascade, and the spill drain.
func (w *wheel) place(ev *event) {
	at, vn := uint64(ev.at), uint64(w.vnow)
	for l := 0; l < wheelLevels; l++ {
		if shift := uint((l + 1) * wheelBits); at>>shift == vn>>shift {
			slot := int(at>>uint(l*wheelBits)) & wheelMask
			b := &w.level[l][slot]
			b.evs = append(b.evs, ev)
			w.occ[l][slot>>6] |= 1 << uint(slot&63)
			return
		}
	}
	w.spillInsert(ev)
}

// pop removes and returns the minimum-(at, seq) event; nil when empty.
// With bounded true it pops only an event with at <= bound: the wheel
// may still cascade internally (cascades never advance the clock past
// bound), but the queue's firing order is untouched.
func (w *wheel) pop(bound Time, bounded bool) *event {
	if w.n == 0 {
		return nil
	}
	for {
		// The earliest pending event is always in level 0 once the
		// lower window is current: take the first occupied slot at or
		// after the clock's position.
		if slot, ok := w.scan(0, digit(0, w.vnow)); ok {
			b := &w.level[0][slot]
			ev := b.evs[b.head]
			if bounded && ev.at > bound {
				return nil
			}
			b.evs[b.head] = nil
			b.head++
			if b.head == len(b.evs) {
				b.evs = b.evs[:0]
				b.head = 0
				w.occ[0][slot>>6] &^= 1 << uint(slot&63)
			}
			w.vnow = ev.at
			w.n--
			return ev
		}
		// Level 0 exhausted: cascade the next occupied higher-level
		// slot down and retry.
		if l, slot, ok := w.scanUp(); ok {
			start := w.slotStart(l, slot)
			if bounded && start > bound {
				return nil
			}
			if start > w.vnow {
				w.vnow = start
			}
			w.cascade(l, slot)
			continue
		}
		// Whole wheel empty: jump to the spill list's window.
		if bounded && w.spill[0].at > bound {
			return nil
		}
		w.vnow = w.spill[0].at
		w.drainSpill()
	}
}

// scan returns the first occupied slot >= from at level l.
func (w *wheel) scan(l, from int) (int, bool) {
	word := from >> 6
	bs := w.occ[l][word] &^ (1<<uint(from&63) - 1)
	for {
		if bs != 0 {
			return word<<6 + bits.TrailingZeros64(bs), true
		}
		if word++; word == wheelWords {
			return 0, false
		}
		bs = w.occ[l][word]
	}
}

// scanUp finds the lowest level above 0 with an occupied slot at or
// after the clock's position.
func (w *wheel) scanUp() (l, slot int, ok bool) {
	for l = 1; l < wheelLevels; l++ {
		if slot, ok = w.scan(l, digit(l, w.vnow)); ok {
			return l, slot, true
		}
	}
	return 0, 0, false
}

// slotStart reports the first instant covered by the given slot of
// level l in the level's current rotation.
func (w *wheel) slotStart(l, slot int) Time {
	span := uint((l + 1) * wheelBits)
	base := uint64(w.vnow) >> span << span
	return Time(base | uint64(slot)<<uint(l*wheelBits))
}

// cascade redistributes one higher-level slot's events into lower
// levels. Re-placing happens strictly below l (the clock has advanced
// into the slot's window), so reusing the bucket's backing array is
// safe; relative order of equal-timestamp events is preserved, keeping
// every bucket in (at, seq) FIFO order.
func (w *wheel) cascade(l, slot int) {
	b := &w.level[l][slot]
	evs := b.evs[b.head:]
	b.evs = b.evs[:0]
	b.head = 0
	w.occ[l][slot>>6] &^= 1 << uint(slot&63)
	for i, ev := range evs {
		w.place(ev)
		evs[i] = nil
	}
}

// spillInsert adds a beyond-horizon event, keeping spill (at, seq)
// sorted. Far-future timers (chaos MTTF schedules, multi-second
// deadlines) are rare relative to hot-path events, so the O(n) insert
// is cheaper in practice than a fifth wheel level's cascades.
func (w *wheel) spillInsert(ev *event) {
	i := sort.Search(len(w.spill), func(i int) bool {
		s := w.spill[i]
		return s.at > ev.at || (s.at == ev.at && s.seq > ev.seq)
	})
	w.spill = append(w.spill, nil)
	copy(w.spill[i+1:], w.spill[i:])
	w.spill[i] = ev
}

// drainSpill moves every spill event sharing the clock's (fresh)
// top-level window into the wheel. Called only when the wheel proper is
// empty and the clock has jumped to the spill head, so at least the
// head always moves. The sorted spill keeps equal-timestamp events in
// seq order as they are placed.
func (w *wheel) drainSpill() {
	const topShift = uint(wheelLevels * wheelBits)
	blk := uint64(w.vnow) >> topShift
	i := 0
	for i < len(w.spill) && uint64(w.spill[i].at)>>topShift == blk {
		w.place(w.spill[i])
		i++
	}
	rest := copy(w.spill, w.spill[i:])
	for j := rest; j < len(w.spill); j++ {
		w.spill[j] = nil
	}
	w.spill = w.spill[:rest]
}
