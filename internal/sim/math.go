package sim

import "math"

// Thin indirections over math so rng.go stays readable; they also give
// tests a single seam should a platform ever misbehave.
func mathExp(x float64) float64 { return math.Exp(x) }
func mathLog(x float64) float64 { return math.Log(x) }
