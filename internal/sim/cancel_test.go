package sim

import "testing"

func TestEngineCancelStopsCallback(t *testing.T) {
	e := New()
	fired := false
	h := e.ScheduleCancelable(10, func() { fired = true })
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	if !e.Cancel(h) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Cancel, want 0", e.Pending())
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Now() != 0 || e.Fired() != 0 {
		t.Fatalf("canceled event advanced the engine: now=%v fired=%d", e.Now(), e.Fired())
	}
}

func TestEngineCancelIsIdempotentAndDeadAfterFire(t *testing.T) {
	e := New()
	h := e.ScheduleCancelable(5, func() {})
	if !e.Cancel(h) || e.Cancel(h) {
		t.Fatal("Cancel must succeed exactly once")
	}
	h2 := e.ScheduleCancelable(5, func() {})
	e.Run()
	if e.Cancel(h2) {
		t.Fatal("Cancel succeeded after the event fired")
	}
	if e.Cancel(Handle(0)) {
		t.Fatal("zero Handle canceled something")
	}
}

func TestEngineCancelPreservesOrderAndClock(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(10, func() { got = append(got, 1) })
	h := e.ScheduleCancelable(20, func() { got = append(got, 99) })
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Cancel(h)
	// A canceled tombstone at t=20 sits ahead of the live t=20 event;
	// RunUntil(20) must fire the live ones and stop exactly at 20.
	e.RunUntil(20)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got = %v, want [1 2]", got)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	e.Run()
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got = %v, want [1 2 3]", got)
	}
}

// TestEngineCancelThenEarlierSchedule pins the empty-wheel re-anchor:
// after trailing tombstones drag the wheel clock past the engine clock,
// a new earlier event must still fire first.
func TestEngineCancelThenEarlierSchedule(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	h := e.ScheduleCancelable(1<<33, func() {}) // far future, via spill
	e.Cancel(h)
	e.Run() // drains the live event and the tombstone
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
	fired := false
	e.Schedule(5, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 15 {
		t.Fatalf("post-cancel schedule broken: fired=%v now=%v", fired, e.Now())
	}
}

func TestEngineCancelManyInterleaved(t *testing.T) {
	e := New()
	rng := NewRNG(99)
	var fired, canceled int
	var handles []Handle
	for i := 0; i < 2000; i++ {
		d := queueDelay(rng)
		if rng.Bool(0.5) {
			handles = append(handles, e.ScheduleCancelable(d, func() { fired++ }))
		} else {
			e.Schedule(d, func() { fired++ })
		}
	}
	for i, h := range handles {
		if i%2 == 0 && e.Cancel(h) {
			canceled++
		}
	}
	want := 2000 - canceled
	if e.Pending() != want {
		t.Fatalf("Pending = %d, want %d", e.Pending(), want)
	}
	e.Run()
	if fired != want {
		t.Fatalf("fired = %d, want %d", fired, want)
	}
	if uint64(fired) != e.Fired() {
		t.Fatalf("Fired() = %d, want %d", e.Fired(), fired)
	}
}
