package sim

import "testing"

// TestEngineSteadyStateZeroAlloc is the pooling gate: once the event
// pool and wheel buckets are warm, a Schedule+Step cycle must not
// allocate. It runs in the race job too (the trace is deterministic —
// seeded RNG, fixed warm-up — so the assertion is stable under -race),
// which keeps the free list itself honest about regressions.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	e := New()
	rng := NewRNG(3)
	var fn func()
	fn = func() { e.Schedule(Dur(rng.Intn(1_000_000)), fn) }
	for i := 0; i < 512; i++ {
		e.Schedule(Dur(rng.Intn(1_000_000)), fn)
	}
	// Warm-up: grow the pool, every bucket's capacity, and the spill
	// machinery to steady state.
	for i := 0; i < 300_000; i++ {
		e.Step()
	}
	if allocs := testing.AllocsPerRun(20_000, func() { e.Step() }); allocs != 0 {
		t.Fatalf("steady-state Schedule+Step allocates %.2f/op, want 0", allocs)
	}
}

// TestProcSleepSteadyStateZeroAlloc extends the gate through the proc
// layer: a parked process waking via the cached wakeFn thunk must not
// allocate either.
func TestProcSleepSteadyStateZeroAlloc(t *testing.T) {
	e := New()
	defer e.Close()
	e.Go("sleeper", func(p *Proc) {
		for {
			p.Sleep(100)
		}
	})
	for i := 0; i < 10_000; i++ {
		e.Step()
	}
	if allocs := testing.AllocsPerRun(20_000, func() { e.Step() }); allocs != 0 {
		t.Fatalf("steady-state Sleep wakeup allocates %.2f/op, want 0", allocs)
	}
}
