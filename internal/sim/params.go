package sim

// Params is the single home of every timing constant in the simulation,
// calibrated against the paper's prototype (Table 1 and §4–§7):
// 8 × Xilinx ZC706 nodes (ARM Cortex-A9 @ 667 MHz, 1 GB SODIMM) on a 3D
// mesh with 5 Gbps × 6 links, 125 MHz parallel / 5 GHz serial clocks, and
// a measured point-to-point latency of 1.4 µs.
//
// The fixed one-way fabric latency decomposes as
//
//	PhyLatency(tx) + Propagation + PhyLatency(rx) + SwitchLatency = 1.4 µs
//
// matching the paper's observation (§4.2.2) that the PHY is "a
// significant, and sometimes dominant, component of overall transaction
// latency". Serialization time (size / bandwidth) is charged on top by
// the link model.
type Params struct {
	// CPU
	CPUGHz       float64 // core clock, GHz (prototype: 0.667)
	OpsPerCycle  float64 // sustained simple ops per cycle for workload compute
	ContextSw    Dur     // OS context switch / thread wakeup
	InterruptLat Dur     // interrupt delivery to handler start

	// Fabric: physical + datalink + network layers.
	LinkGbps    float64 // per-port serial bandwidth, Gbit/s
	LinkPorts   int     // I/O ports per node (radix-7 switch: 6 external + 1 local)
	PhyLatency  Dur     // one PHY crossing (serdes + encode/decode)
	Propagation Dur     // cable/optics flight time, per hop
	SwitchLat   Dur     // embedded on-chip switch traversal
	RouterLat   Dur     // external one-level router traversal (Fig. 6)
	RouterPhy   Dur     // router-side retimer PHY crossing (cheaper than node SerDes)
	HeaderBytes int     // per-packet header + CRC overhead on the wire
	LinkCredits int     // datalink credit buffers per link (receiver side)
	ReplayTO    Dur     // sender replay timeout after a CRC-detected drop

	// Off-chip interface logic: the extra cost of placing the fabric
	// interface across the I/O bus instead of on the processor die
	// (the off-chip configurations of Figs. 5 and 6).
	OffChipCrossing Dur

	// Transport-layer channels (§5.1.2).
	CRMALogic     Dur // RAMT lookup + capture + packetize/de-packetize, per packet
	RDMADescSW    Dur // software cost to build/post one DMA descriptor
	RDMAChunk     int // DMA engine chunk size, bytes
	RDMADoneIRQ   Dur // completion interrupt + driver bottom half
	QPairDoor     Dur // hardware queue-pair doorbell/state-machine, per message
	QPairSWSend   Dur // user-level software send path, per message
	QPairSWRecv   Dur // user-level software receive path, per message
	QPairCreditSW Dur // posting a credit control message (lighter than data)

	// Memory hierarchy.
	DRAMLat    Dur // row-hit DRAM access on the owning node
	CacheHit   Dur // cache hit service time
	CacheBytes int // unified last-level cache size modeled per node
	CacheLine  int // line size, bytes
	CacheWays  int // set associativity
	PageBytes  int // OS page size
	MSHRs      int // outstanding misses a core sustains (A9-class: 2)

	// Paging readahead: on a sequential fault the OS brings in this many
	// pages at once.
	ReadaheadPages int

	// OS paging path.
	PageFaultSW Dur // trap + swap-path software overhead per major fault
	HotplugOp   Dur // one memory hot-plug or hot-remove operation

	// Ethernet NICs and the remote-NIC (VNIC) stack (§5.2.3).
	NICGbps          float64 // line rate of one conventional NIC
	EthFrameOverhead int     // preamble+header+FCS+IFG bytes per frame
	EthMinFrame      int     // minimum payload-carrying frame size
	NetStackPerPkt   Dur     // sender TCP/IP stack cost per packet
	NetStackPerKB    Dur     // copy/checksum cost per KiB of payload
	VNICFrontPerPkt  Dur     // front-end driver cost per packet (recipient)
	VNICBackPerPkt   Dur     // back-end driver cost per packet (donor)
	BridgePerPkt     Dur     // software bridge forwarding cost (donor)

	// Accelerators (§5.2.2).
	AccelMailboxOp  Dur // mailbox write/poll by the donor kernel thread
	AccelDoorbell   Dur // direct doorbell via the exclusive mapping
	AccelChunkBytes int // pipelining granularity for offloaded data

	// Local storage (the prototype swaps to SD-class flash).
	LocalDiskLat  Dur
	LocalDiskMBps float64
}

// Default returns the parameter set calibrated to the paper's prototype
// (Table 1). Experiments derive variations (off-chip, routed, commodity)
// from this base.
func Default() Params {
	return Params{
		CPUGHz:       0.667,
		OpsPerCycle:  1.0,
		ContextSw:    8 * Microsecond,
		InterruptLat: 3 * Microsecond,

		LinkGbps:    5.0,
		LinkPorts:   6,
		PhyLatency:  550 * Nanosecond,
		Propagation: 100 * Nanosecond,
		SwitchLat:   200 * Nanosecond,
		RouterLat:   300 * Nanosecond,
		RouterPhy:   150 * Nanosecond,
		HeaderBytes: 16,
		LinkCredits: 16,
		ReplayTO:    10 * Microsecond,

		OffChipCrossing: 1 * Microsecond,

		CRMALogic:     60 * Nanosecond,
		RDMADescSW:    900 * Nanosecond,
		RDMAChunk:     4096,
		RDMADoneIRQ:   3 * Microsecond,
		QPairDoor:     150 * Nanosecond,
		QPairSWSend:   1600 * Nanosecond,
		QPairSWRecv:   1600 * Nanosecond,
		QPairCreditSW: 1200 * Nanosecond,

		DRAMLat:    80 * Nanosecond,
		CacheHit:   6 * Nanosecond,
		CacheBytes: 256 << 10,
		CacheLine:  64,
		CacheWays:  8,
		PageBytes:  4096,
		MSHRs:      2,

		ReadaheadPages: 16,

		PageFaultSW: 30 * Microsecond,
		HotplugOp:   2 * Millisecond,

		NICGbps:          1.0,
		EthFrameOverhead: 38,
		EthMinFrame:      46,
		NetStackPerPkt:   300 * Nanosecond,
		NetStackPerKB:    1200 * Nanosecond, // ≈1.2 ns per byte of copy+checksum
		VNICFrontPerPkt:  100 * Nanosecond,
		VNICBackPerPkt:   400 * Nanosecond,
		BridgePerPkt:     200 * Nanosecond,

		AccelMailboxOp:  5 * Microsecond,
		AccelDoorbell:   500 * Nanosecond,
		AccelChunkBytes: 1 << 20,

		LocalDiskLat:  800 * Microsecond,
		LocalDiskMBps: 90, // eMMC-class sequential rate; latency covers the random penalty
	}
}

// Xeon returns a parameter set approximating the Intel Xeon E5620
// reference server the paper validated its prototype against (§4.2:
// prototype wall-clock ≈ 1/16 of the target machine, within 10%). Only
// the components relevant to that validation differ: core clock, memory
// latency, and cache capacity.
func Xeon() Params {
	p := Default()
	p.CPUGHz = 2.4
	p.OpsPerCycle = 2.4 // wide OoO core vs the in-order A9
	p.DRAMLat = 65 * Nanosecond
	p.CacheHit = 4 * Nanosecond
	p.CacheBytes = 12 << 20
	p.LocalDiskLat = 120 * Microsecond // enterprise SSD vs SD card
	p.LocalDiskMBps = 250
	return p
}

// CycleTime reports the duration of one CPU cycle under p.
func (p *Params) CycleTime() Dur {
	return Dur(float64(Nanosecond) / p.CPUGHz)
}

// Compute reports the time to execute n simple operations on the core.
func (p *Params) Compute(n int64) Dur {
	if n <= 0 {
		return 0
	}
	return Dur(float64(n) / (p.CPUGHz * p.OpsPerCycle))
}

// Serialize reports the wire time for size bytes (plus per-packet header)
// at the link rate.
func (p *Params) Serialize(size int) Dur {
	return p.SerializeAt(size, p.LinkGbps)
}

// SerializeAt reports the wire time for size bytes (plus per-packet
// header) at an explicit rate — the single home of the serialization
// formula, shared by normal links and per-link bandwidth overrides.
func (p *Params) SerializeAt(size int, gbps float64) Dur {
	bits := float64(size+p.HeaderBytes) * 8
	ns := bits / gbps // Gbit/s ≡ bit/ns
	return Dur(ns + 0.5)
}

// HopLatency reports the fixed one-way latency of a direct point-to-point
// hop, excluding serialization: PHY out, flight, PHY in, plus one switch
// traversal at the receiver. With the default parameters this is 1.4 µs,
// matching Table 1.
func (p *Params) HopLatency() Dur {
	return 2*p.PhyLatency + p.Propagation + p.SwitchLat
}
