package sim

// queue is the engine's event-queue contract. Invariants the engine
// maintains for every implementation:
//
//   - push is only called with ev.at >= the timestamp of the most
//     recently popped event (virtual time never rewinds), and
//   - seq values are assigned in push order, so (at, seq) is a strict
//     total order and equal-timestamp events pop FIFO.
//
// push receives the engine clock alongside the event: an empty wheel
// re-anchors its internal clock there, which is what makes the pair of
// invariants above hold across drain/refill cycles.
//
// pop removes and returns the minimum-(at, seq) event, or nil when the
// queue is empty. With bounded true, pop removes the minimum only when
// its timestamp is <= bound and otherwise returns nil leaving the queue
// intact — that is what lets RunUntil stop exactly at its boundary
// without peeking-then-popping twice.
//
// The production implementation is the hierarchical timing wheel in
// wheel.go. The engine's original container/heap queue survives as a
// test-only reference implementation (queue_ref_test.go) that the wheel
// is property-tested against: both must produce the identical
// (time, seq) firing order for any input.
type queue interface {
	push(ev *event, now Time)
	pop(bound Time, bounded bool) *event
	len() int
}
