package sim

import "testing"

func TestQueueBlockingPop(t *testing.T) {
	e := New()
	defer e.Close()
	q := NewQueue[int](e)
	var got int
	var at Time
	e.Go("consumer", func(p *Proc) {
		got = q.Pop(p)
		at = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(40)
		q.Push(p, 7)
	})
	e.Run()
	if got != 7 || at != 40 {
		t.Fatalf("got %d at %v, want 7 at 40", got, at)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := New()
	defer e.Close()
	q := NewQueue[int](e)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Push(p, i)
		}
	})
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestBoundedQueueBlocksPusher(t *testing.T) {
	e := New()
	defer e.Close()
	q := NewBoundedQueue[int](e, 2)
	var pushedAll Time
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			q.Push(p, i)
		}
		pushedAll = p.Now()
	})
	e.Go("consumer", func(p *Proc) {
		p.Sleep(100)
		for i := 0; i < 3; i++ {
			q.Pop(p)
		}
	})
	e.Run()
	if pushedAll != 100 {
		t.Fatalf("third push completed at %v, want 100 (after a pop)", pushedAll)
	}
	if q.MaxDepth() != 2 {
		t.Fatalf("MaxDepth = %d, want 2", q.MaxDepth())
	}
}

func TestQueueTryOps(t *testing.T) {
	e := New()
	defer e.Close()
	q := NewBoundedQueue[string](e, 1)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty succeeded")
	}
	if !q.TryPush("x") {
		t.Fatal("TryPush on empty failed")
	}
	if q.TryPush("y") {
		t.Fatal("TryPush over capacity succeeded")
	}
	v, ok := q.TryPop()
	if !ok || v != "x" {
		t.Fatalf("TryPop = %q,%v", v, ok)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := New()
	defer e.Close()
	s := NewSemaphore(e, 2)
	inUse, maxInUse := 0, 0
	for i := 0; i < 5; i++ {
		e.Go("worker", func(p *Proc) {
			s.Acquire(p)
			inUse++
			if inUse > maxInUse {
				maxInUse = inUse
			}
			p.Sleep(10)
			inUse--
			s.Release()
		})
	}
	e.Run()
	if maxInUse != 2 {
		t.Fatalf("max concurrent = %d, want 2", maxInUse)
	}
	if s.Available() != 2 {
		t.Fatalf("Available = %d, want 2", s.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := New()
	defer e.Close()
	s := NewSemaphore(e, 1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with a free permit")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded with no permits")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
}

func TestGroupWait(t *testing.T) {
	e := New()
	defer e.Close()
	g := NewGroup(e)
	g.Add(3)
	for i := 1; i <= 3; i++ {
		d := Dur(i * 10)
		e.Go("w", func(p *Proc) {
			p.Sleep(d)
			g.Done()
		})
	}
	var at Time
	e.Go("waiter", func(p *Proc) {
		g.Wait(p)
		at = p.Now()
	})
	e.Run()
	if at != 30 {
		t.Fatalf("group wait released at %v, want 30", at)
	}
}

func TestGroupWaitOnZeroIsImmediate(t *testing.T) {
	e := New()
	defer e.Close()
	g := NewGroup(e)
	ran := false
	e.Go("w", func(p *Proc) {
		g.Wait(p)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("Wait on empty group blocked")
	}
}
