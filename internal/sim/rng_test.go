package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a2 := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/1000", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	prop := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(123)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		m := int(n%64) + 1
		p := NewRNG(seed).Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(1)
	f := r.Fork()
	// The fork must not replay the parent's stream.
	a, b := r.Uint64(), f.Uint64()
	if a == b {
		t.Fatal("fork replays parent stream")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(42)
	z := NewZipf(r, 1000, 0.99)
	counts := make(map[int]int)
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Head must be much hotter than the tail for a skewed distribution.
	if counts[0] < draws/100 {
		t.Fatalf("head element drawn only %d times; distribution not skewed", counts[0])
	}
}

func TestZipfUniformDegenerate(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(r, 100, 0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("theta=0 bucket %d count %d deviates from uniform", i, c)
		}
	}
}

func TestRNGShuffle(t *testing.T) {
	r := NewRNG(17)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make([]bool, len(s))
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("shuffle lost element %d: %v", i, s)
		}
	}
}
