package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of scheduling order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var trace []string
	e.Schedule(10, func() {
		trace = append(trace, "a")
		e.Schedule(5, func() { trace = append(trace, "c") })
		e.Schedule(0, func() { trace = append(trace, "b") })
	})
	e.Run()
	want := "a,b,c"
	got := trace[0] + "," + trace[1] + "," + trace[2]
	if got != want {
		t.Fatalf("trace = %s, want %s", got, want)
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired() = %d, want 3", e.Fired())
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntilStopsAtBoundary(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	e.Schedule(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.RunFor(10)
	if fired != 3 {
		t.Fatalf("fired = %d after RunFor, want 3", fired)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed uint64) []int64 {
		e := New()
		rng := NewRNG(seed)
		var trace []int64
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 4 {
				return
			}
			d := Dur(rng.Intn(100))
			e.Schedule(d, func() {
				trace = append(trace, int64(e.Now()))
				spawn(depth + 1)
				spawn(depth + 1)
			})
		}
		spawn(0)
		e.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any batch of non-negative delays, execution visits events
// in nondecreasing time order.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := New()
		var last Time = -1
		ok := true
		for _, d := range delays {
			e.Schedule(Dur(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineTimeStringFormats(t *testing.T) {
	cases := []struct {
		d    Dur
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{14 * Microsecond, "14.000µs"},
		{25 * Millisecond, "25.000ms"},
		{90 * Second, "90.000s"},
		{-3 * Microsecond, "-3000ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurScale(t *testing.T) {
	if got := (100 * Nanosecond).Scale(2.5); got != 250 {
		t.Fatalf("Scale = %v, want 250", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative scale did not panic")
		}
	}()
	Dur(1).Scale(-1)
}
