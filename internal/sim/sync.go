package sim

// Completion is a one-shot event that processes can await: the simulated
// analogue of a future. The zero value is not usable; construct with
// NewCompletion (or receive one from Engine.Go).
type Completion struct {
	eng     *Engine
	done    bool
	waiters []*Proc
	thens   []func()
}

// NewCompletion returns an incomplete Completion bound to e.
func NewCompletion(e *Engine) *Completion { return &Completion{eng: e} }

// Done reports whether Complete has been called.
func (c *Completion) Done() bool { return c.done }

// Complete marks the completion done, wakes all awaiting processes, and
// fires Then callbacks at the current instant. Completing twice is a
// no-op.
func (c *Completion) Complete() {
	if c.done {
		return
	}
	c.done = true
	for _, w := range c.waiters {
		w.unparkAfter(0)
	}
	c.waiters = nil
	for _, fn := range c.thens {
		c.eng.Schedule(0, fn)
	}
	c.thens = nil
}

// Then registers fn to run (as an engine event) when the completion
// fires; if it already has, fn runs at the current instant.
func (c *Completion) Then(fn func()) {
	if c.done {
		c.eng.Schedule(0, fn)
		return
	}
	c.thens = append(c.thens, fn)
}

// Await blocks p until the completion is done. If it is already done,
// Await returns immediately without yielding.
func (p *Proc) Await(c *Completion) {
	if c.done {
		return
	}
	c.waiters = append(c.waiters, p)
	p.park()
}

// AwaitAll blocks p until every completion in cs is done.
func (p *Proc) AwaitAll(cs ...*Completion) {
	for _, c := range cs {
		p.Await(c)
	}
}

// Group counts outstanding work, like sync.WaitGroup but for simulated
// processes. Construct with NewGroup.
type Group struct {
	eng *Engine
	n   int
	c   *Completion
}

// NewGroup returns a group with zero outstanding work.
func NewGroup(e *Engine) *Group { return &Group{eng: e, c: NewCompletion(e)} }

// Add registers delta additional units of outstanding work.
func (g *Group) Add(delta int) {
	g.n += delta
	if g.n < 0 {
		panic("sim: negative group counter")
	}
	if g.n == 0 {
		g.c.Complete()
	}
}

// Done marks one unit of work finished.
func (g *Group) Done() { g.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (g *Group) Wait(p *Proc) {
	if g.n == 0 {
		return
	}
	p.Await(g.c)
}

// Queue is a FIFO of items with blocking Pop (and blocking Push when
// bounded), used to model hardware queues, mailboxes, and sockets.
type Queue[T any] struct {
	eng      *Engine
	items    []T
	cap      int // 0 means unbounded
	poppers  []*Proc
	pushers  []*Proc
	maxDepth int
}

// NewQueue returns an unbounded queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{eng: e} }

// NewBoundedQueue returns a queue that blocks pushers when it holds
// capacity items. capacity must be positive.
func NewBoundedQueue[T any](e *Engine, capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("sim: queue capacity must be positive")
	}
	return &Queue[T]{eng: e, cap: capacity}
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// MaxDepth reports the high-water mark of the queue length.
func (q *Queue[T]) MaxDepth() int { return q.maxDepth }

// wakeOne unparks the first waiter in the given list, if any.
func wakeOne(list *[]*Proc) {
	if len(*list) == 0 {
		return
	}
	w := (*list)[0]
	*list = (*list)[1:]
	w.unparkAfter(0)
}

// Push appends v, blocking p while a bounded queue is full.
func (q *Queue[T]) Push(p *Proc, v T) {
	for q.cap > 0 && len(q.items) >= q.cap {
		q.pushers = append(q.pushers, p)
		p.park()
	}
	q.items = append(q.items, v)
	if len(q.items) > q.maxDepth {
		q.maxDepth = len(q.items)
	}
	wakeOne(&q.poppers)
}

// TryPush appends v without blocking and reports whether it fit. It may
// be called from engine context (event callbacks), not only processes.
func (q *Queue[T]) TryPush(v T) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, v)
	if len(q.items) > q.maxDepth {
		q.maxDepth = len(q.items)
	}
	wakeOne(&q.poppers)
	return true
}

// Pop removes and returns the head item, blocking p while empty.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.poppers = append(q.poppers, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	wakeOne(&q.pushers)
	return v
}

// TryPop removes the head item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	wakeOne(&q.pushers)
	return v, true
}

// Semaphore is a counted resource with FIFO queuing, used to model
// exclusive or limited hardware resources (DMA engines, accelerator
// slots, outstanding-request limits).
type Semaphore struct {
	eng     *Engine
	n       int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(e *Engine, n int) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore count")
	}
	return &Semaphore{eng: e, n: n}
}

// Acquire takes one permit, blocking p until one is free.
func (s *Semaphore) Acquire(p *Proc) {
	for s.n == 0 {
		s.waiters = append(s.waiters, p)
		p.park()
	}
	s.n--
}

// TryAcquire takes a permit without blocking and reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.n == 0 {
		return false
	}
	s.n--
	return true
}

// Release returns one permit and wakes a waiter if any.
func (s *Semaphore) Release() {
	s.n++
	wakeOne(&s.waiters)
}

// Available reports the free permit count.
func (s *Semaphore) Available() int { return s.n }
