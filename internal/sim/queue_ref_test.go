package sim

import (
	"container/heap"
	"testing"
)

// refHeap is the engine's original container/heap event queue, retired
// from the hot path but kept here as the reference implementation of
// the queue contract: pop order is (at, seq) ascending by construction
// of heap.Interface, with none of the wheel's window bookkeeping to get
// wrong. The property tests below fire identical event streams through
// both and require identical pop order.
type refHeap []*event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// heapQueue adapts refHeap to the queue interface.
type heapQueue struct{ h refHeap }

func (q *heapQueue) push(ev *event, _ Time) { heap.Push(&q.h, ev) }
func (q *heapQueue) pop(bound Time, bounded bool) *event {
	if len(q.h) == 0 || (bounded && q.h[0].at > bound) {
		return nil
	}
	return heap.Pop(&q.h).(*event)
}
func (q *heapQueue) len() int { return len(q.h) }

// queueDelay spreads timestamps across every wheel regime: same-instant
// FIFO ties, level-0 hits, multi-level cascades, and beyond-horizon
// spills (> 2^32 ns).
func queueDelay(rng *RNG) Dur {
	switch rng.Intn(6) {
	case 0:
		return 0 // same-instant tie: FIFO order must hold
	case 1:
		return Dur(rng.Intn(256)) // level 0
	case 2:
		return Dur(rng.Intn(1 << 16)) // level 1
	case 3:
		return Dur(rng.Intn(1 << 24)) // level 2
	case 4:
		return Dur(rng.Int63n(1 << 32)) // level 3
	default:
		return Dur(1<<32 + rng.Int63n(1<<34)) // spill list
	}
}

// TestWheelMatchesHeapOrder fires 10k random-timestamp events through
// the timing wheel and the reference heap, interleaving pushes with
// pops the way a simulation does (pushes never rewind behind the last
// popped instant), then drains both. Every pop must agree on (at, seq).
func TestWheelMatchesHeapOrder(t *testing.T) {
	rng := NewRNG(1234)
	w, h := newWheel(), &heapQueue{}
	var seq uint64
	var vnow Time
	push := func(at Time) {
		// vnow plays the engine clock: it trails at the last popped
		// timestamp, matching the queue contract.
		w.push(&event{at: at, seq: seq}, vnow)
		h.push(&event{at: at, seq: seq}, vnow)
		seq++
	}
	popBoth := func(bound Time, bounded bool) bool {
		we, he := w.pop(bound, bounded), h.pop(bound, bounded)
		switch {
		case we == nil && he == nil:
			// Mirror RunUntil: an exhausted bounded pop advances the
			// engine clock to the bound, so no later push is earlier.
			if bounded && bound > vnow {
				vnow = bound
			}
			return false
		case we == nil || he == nil:
			t.Fatalf("pop mismatch after %d events: wheel=%v heap=%v", seq, we, he)
		case we.at != he.at || we.seq != he.seq:
			t.Fatalf("pop order diverged: wheel=(%d,%d) heap=(%d,%d)", we.at, we.seq, he.at, he.seq)
		case we.at < vnow:
			t.Fatalf("time rewound: popped %d after %d", we.at, vnow)
		}
		vnow = we.at
		return true
	}
	const n = 10_000
	for seq < n {
		if rng.Bool(0.6) {
			push(vnow.Add(queueDelay(rng)))
		} else if rng.Bool(0.3) {
			// Bounded pop at a nearby boundary, like RunUntil.
			popBoth(vnow.Add(Dur(rng.Int63n(1<<20))), true)
		} else {
			popBoth(0, false)
		}
	}
	for popBoth(0, false) {
		// drain fully; popBoth compares each pair
	}
	if w.len() != 0 || h.len() != 0 {
		t.Fatalf("queues not drained: wheel=%d heap=%d", w.len(), h.len())
	}
}

// TestWheelBoundedPopStopsAtBoundary pins the bounded-pop contract the
// engine's RunUntil depends on: nothing beyond the bound pops, and the
// queue is undisturbed for later unbounded pops.
func TestWheelBoundedPopStopsAtBoundary(t *testing.T) {
	w := newWheel()
	for i, at := range []Time{5, 10, 10, 1 << 20, 1<<32 + 7} {
		w.push(&event{at: at, seq: uint64(i)}, 0)
	}
	var got []Time
	for {
		ev := w.pop(10, true)
		if ev == nil {
			break
		}
		got = append(got, ev.at)
	}
	if len(got) != 3 || got[0] != 5 || got[1] != 10 || got[2] != 10 {
		t.Fatalf("bounded pops = %v, want [5 10 10]", got)
	}
	if ev := w.pop(0, false); ev == nil || ev.at != 1<<20 {
		t.Fatalf("first unbounded pop after boundary = %v, want at=1<<20", ev)
	}
	if ev := w.pop(0, false); ev == nil || ev.at != 1<<32+7 {
		t.Fatalf("spill pop = %v, want at=1<<32+7", ev)
	}
	if w.len() != 0 {
		t.Fatalf("len = %d after drain, want 0", w.len())
	}
}
