package sim

import "testing"

func TestProcSleepAdvancesTime(t *testing.T) {
	e := New()
	defer e.Close()
	var woke Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(100 * Microsecond)
		woke = p.Now()
	})
	e.Run()
	if woke != Time(100*Microsecond) {
		t.Fatalf("woke at %v, want 100µs", woke)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	e := New()
	defer e.Close()
	var trace []string
	e.Go("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			trace = append(trace, "a")
			p.Sleep(10)
		}
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(5)
		for i := 0; i < 3; i++ {
			trace = append(trace, "b")
			p.Sleep(10)
		}
	})
	e.Run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcCompletionAwait(t *testing.T) {
	e := New()
	defer e.Close()
	worker := e.Go("worker", func(p *Proc) { p.Sleep(50) })
	var waitedUntil Time
	e.Go("waiter", func(p *Proc) {
		p.Await(worker)
		waitedUntil = p.Now()
	})
	e.Run()
	if waitedUntil != 50 {
		t.Fatalf("waiter resumed at %v, want 50", waitedUntil)
	}
}

func TestProcAwaitCompletedIsImmediate(t *testing.T) {
	e := New()
	defer e.Close()
	c := NewCompletion(e)
	c.Complete()
	c.Complete() // idempotent
	var at Time
	e.Go("w", func(p *Proc) {
		p.Sleep(7)
		p.Await(c)
		at = p.Now()
	})
	e.Run()
	if at != 7 {
		t.Fatalf("await of done completion moved time: %v", at)
	}
}

func TestProcYieldOrdersWithEvents(t *testing.T) {
	e := New()
	defer e.Close()
	var trace []string
	e.Go("p", func(p *Proc) {
		trace = append(trace, "p1")
		e.Schedule(0, func() { trace = append(trace, "ev") })
		p.Yield()
		trace = append(trace, "p2")
	})
	e.Run()
	if len(trace) != 3 || trace[0] != "p1" || trace[1] != "ev" || trace[2] != "p2" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestProcSpawnsProc(t *testing.T) {
	e := New()
	defer e.Close()
	var inner Time
	e.Go("outer", func(p *Proc) {
		p.Sleep(10)
		child := e.Go("inner", func(q *Proc) {
			q.Sleep(5)
			inner = q.Now()
		})
		p.Await(child)
		if p.Now() != 15 {
			t.Errorf("outer resumed at %v, want 15", p.Now())
		}
	})
	e.Run()
	if inner != 15 {
		t.Fatalf("inner finished at %v, want 15", inner)
	}
}

func TestEngineCloseReleasesParkedProcs(t *testing.T) {
	e := New()
	c := NewCompletion(e) // never completed
	e.Go("stuck", func(p *Proc) { p.Await(c) })
	e.Run()
	if e.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1 (deadlocked)", e.LiveProcs())
	}
	e.Close()
	e.Close() // safe to double-close
}

func TestProcNegativeSleepPanics(t *testing.T) {
	e := New()
	defer e.Close()
	panicked := false
	e.Go("bad", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
				// Re-enter the engine cleanly: the proc still must finish.
			}
		}()
		p.Sleep(-1)
	})
	e.Run()
	if !panicked {
		t.Fatal("negative sleep did not panic")
	}
}

func TestProcName(t *testing.T) {
	e := New()
	defer e.Close()
	e.Go("redis-server", func(p *Proc) {
		if p.Name() != "redis-server" {
			t.Errorf("Name() = %q", p.Name())
		}
	})
	e.Run()
}
