package sim

// RNG is a small, fast, deterministic random number generator
// (splitmix64). Every stochastic element of the simulation draws from an
// explicitly seeded RNG so that runs are reproducible; nothing in this
// module uses math/rand's global state.
type RNG struct {
	s uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent streams for practical purposes.
func NewRNG(seed uint64) *RNG {
	// Avoid the all-zero state producing a weak first value by mixing the
	// seed through one splitmix round up front.
	r := &RNG{s: seed + 0x9e3779b97f4a7c15}
	r.Uint64()
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using swap, mirroring
// math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator from this one, for handing a
// private stream to a subcomponent without coupling their sequences.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// Zipf draws from a bounded Zipf-like distribution over [0, n) with
// exponent theta in (0, 1), using the rejection-inversion-free
// approximation common in YCSB-style workload generators. theta == 0
// degenerates to uniform.
type Zipf struct {
	rng   *RNG
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf returns a Zipf sampler over [0, n).
func NewZipf(rng *RNG, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	if theta <= 0 {
		return z
	}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / pow(float64(i), theta)
	}
	return sum
}

// pow is a minimal x**y for positive x, avoiding a math import dependence
// being spread around callers. (math is stdlib; this simply keeps the
// sampler self-contained and branch-free for the hot path.)
func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return exp(y * ln(x))
}

// exp/ln use the stdlib; thin wrappers keep call sites short.
func exp(x float64) float64 { return mathExp(x) }
func ln(x float64) float64  { return mathLog(x) }

// Next draws the next sample in [0, n).
func (z *Zipf) Next() int {
	if z.theta <= 0 {
		return z.rng.Intn(z.n)
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * pow(z.eta*u-z.eta+1, z.alpha))
}
