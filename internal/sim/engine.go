package sim

import "fmt"

// Handle identifies a cancelable scheduled event. The zero Handle is
// never issued, so it can mark "no timer pending".
type Handle uint64

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct one with New.
//
// Events live in a hierarchical timing wheel (wheel.go) and are pooled
// (pool.go), so steady-state scheduling — one Schedule plus one
// dispatched event — performs no allocation.
type Engine struct {
	now     Time
	seq     uint64
	q       queue
	pool    eventPool
	cancels map[Handle]*event // live cancelable events, by Handle
	pending int               // queued events not yet fired or canceled
	yield   chan struct{}
	stopped chan struct{}
	closed  bool
	live    int // processes started and not yet finished
	parked  int // processes currently blocked awaiting a wakeup
	fired   uint64
}

// New returns a fresh engine with virtual time zero and an empty queue.
func New() *Engine {
	return &Engine{
		q:       newWheel(),
		yield:   make(chan struct{}),
		stopped: make(chan struct{}),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting in the queue. Canceled
// events are not counted: they are dead the moment Cancel returns.
func (e *Engine) Pending() int { return e.pending }

// Fired reports the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// LiveProcs reports the number of processes that have started and not yet
// returned. A nonzero value after Run returns indicates a deadlock in the
// simulated program.
func (e *Engine) LiveProcs() int { return e.live }

// schedule enqueues a pooled event for fn at t and returns it.
func (e *Engine) schedule(t Time, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.pool.get()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	e.pending++
	e.q.push(ev, e.now)
	return ev
}

// At schedules fn to run at the absolute virtual instant t. Scheduling in
// the past panics: virtual time never rewinds.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, fn) }

// Schedule schedules fn to run d after the current instant.
func (e *Engine) Schedule(d Dur, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.schedule(e.now.Add(d), fn)
}

// AtCancelable is At returning a Handle that Cancel accepts. Use it for
// timers that usually lose their race — RPC timeouts, watchdogs — so
// the queue is not left churning through dead callbacks.
func (e *Engine) AtCancelable(t Time, fn func()) Handle {
	ev := e.schedule(t, fn)
	ev.cancelable = true
	h := Handle(ev.seq + 1)
	if e.cancels == nil {
		e.cancels = make(map[Handle]*event)
	}
	e.cancels[h] = ev
	return h
}

// ScheduleCancelable is Schedule returning a Handle that Cancel accepts.
func (e *Engine) ScheduleCancelable(d Dur, fn func()) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.AtCancelable(e.now.Add(d), fn)
}

// Cancel revokes a cancelable event that has not fired yet, reporting
// whether it did anything. The event is tombstoned in place — the wheel
// discards it when its slot drains — so Cancel is O(1) and never
// disturbs the firing order of live events. Canceling an event that
// already fired, was already canceled, or a zero Handle returns false.
func (e *Engine) Cancel(h Handle) bool {
	ev, ok := e.cancels[h]
	if !ok {
		return false
	}
	delete(e.cancels, h)
	ev.canceled = true
	ev.fn = nil
	e.pending--
	return true
}

// step fires the earliest live event, discarding canceled tombstones in
// passing, and reports whether one ran. With bounded true only events
// with at <= bound fire.
func (e *Engine) step(bound Time, bounded bool) bool {
	for {
		ev := e.q.pop(bound, bounded)
		if ev == nil {
			return false
		}
		if ev.canceled {
			e.pool.put(ev)
			continue
		}
		if ev.cancelable {
			delete(e.cancels, Handle(ev.seq+1))
		}
		e.now = ev.at
		e.pending--
		e.fired++
		fn := ev.fn
		e.pool.put(ev) // recycle before dispatch: fn may schedule into this slot
		fn()
		return true
	}
}

// Step executes the earliest pending event and reports whether one ran.
func (e *Engine) Step() bool { return e.step(0, false) }

// Run executes events until the queue drains. If simulated processes are
// still blocked when the queue empties, they stay parked (see LiveProcs);
// Close releases them.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then sets the clock
// to t.
func (e *Engine) RunUntil(t Time) {
	for e.step(t, true) {
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Dur) { e.RunUntil(e.now.Add(d)) }

// Close terminates any parked processes so their goroutines exit. It is
// safe to call multiple times. After Close the engine must not be used.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	close(e.stopped)
	// Give killed goroutines a chance to observe the close; they need no
	// baton because park() selects on stopped.
}

// resume hands the execution baton to process p and blocks until p parks
// again or finishes. It must only be called from engine context (inside
// an event callback).
func (e *Engine) resume(p *Proc) {
	p.wake <- struct{}{}
	<-e.yield
}
