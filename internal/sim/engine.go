package sim

import (
	"container/heap"
	"fmt"
)

// event is a callback scheduled at a virtual instant. Events with equal
// timestamps fire in scheduling order (FIFO), which keeps runs
// deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct one with New.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventHeap
	yield   chan struct{}
	stopped chan struct{}
	closed  bool
	live    int // processes started and not yet finished
	parked  int // processes currently blocked awaiting a wakeup
	fired   uint64
}

// New returns a fresh engine with virtual time zero and an empty queue.
func New() *Engine {
	return &Engine{
		yield:   make(chan struct{}),
		stopped: make(chan struct{}),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.pq) }

// Fired reports the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// LiveProcs reports the number of processes that have started and not yet
// returned. A nonzero value after Run returns indicates a deadlock in the
// simulated program.
func (e *Engine) LiveProcs() int { return e.live }

// At schedules fn to run at the absolute virtual instant t. Scheduling in
// the past panics: virtual time never rewinds.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	heap.Push(&e.pq, &event{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// Schedule schedules fn to run d after the current instant.
func (e *Engine) Schedule(d Dur, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now.Add(d), fn)
}

// Step executes the earliest pending event and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue drains. If simulated processes are
// still blocked when the queue empties, they stay parked (see LiveProcs);
// Close releases them.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t and then sets the clock
// to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Dur) { e.RunUntil(e.now.Add(d)) }

// Close terminates any parked processes so their goroutines exit. It is
// safe to call multiple times. After Close the engine must not be used.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	close(e.stopped)
	// Give killed goroutines a chance to observe the close; they need no
	// baton because park() selects on stopped.
}

// resume hands the execution baton to process p and blocks until p parks
// again or finishes. It must only be called from engine context (inside
// an event callback).
func (e *Engine) resume(p *Proc) {
	p.wake <- struct{}{}
	<-e.yield
}
