package sim

import (
	"fmt"
	"math"
	"sort"
)

// RunningStat accumulates count/mean/variance/min/max in one pass
// (Welford's algorithm). The zero value is ready to use.
type RunningStat struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *RunningStat) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDur records a duration observation in nanoseconds.
func (s *RunningStat) AddDur(d Dur) { s.Add(float64(d)) }

// N reports the number of observations.
func (s *RunningStat) N() int64 { return s.n }

// Mean reports the arithmetic mean (0 with no observations).
func (s *RunningStat) Mean() float64 { return s.mean }

// Min reports the smallest observation (0 with no observations).
func (s *RunningStat) Min() float64 { return s.min }

// Max reports the largest observation (0 with no observations).
func (s *RunningStat) Max() float64 { return s.max }

// Sum reports the total of all observations.
func (s *RunningStat) Sum() float64 { return s.mean * float64(s.n) }

// StdDev reports the sample standard deviation.
func (s *RunningStat) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// String summarizes the statistic for logs.
func (s *RunningStat) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g max=%.3g sd=%.3g",
		s.n, s.mean, s.min, s.max, s.StdDev())
}

// Hist is a power-of-two bucketed histogram of non-negative integer
// observations (typically latencies in ns). Bucket i counts observations
// in [2^i, 2^(i+1)); bucket 0 also absorbs zero. The zero value is ready
// to use.
type Hist struct {
	buckets [64]int64
	stat    RunningStat
}

// Add records one observation; negative values are clamped to zero.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.stat.Add(float64(v))
	h.buckets[log2(uint64(v))]++
}

// AddDur records a duration observation.
func (h *Hist) AddDur(d Dur) { h.Add(int64(d)) }

// N reports the observation count.
func (h *Hist) N() int64 { return h.stat.N() }

// Mean reports the mean observation.
func (h *Hist) Mean() float64 { return h.stat.Mean() }

// Max reports the maximum observation.
func (h *Hist) Max() float64 { return h.stat.Max() }

// Percentile returns an upper bound for the p-th percentile (p in
// [0,100]) from bucket boundaries.
func (h *Hist) Percentile(p float64) int64 {
	total := h.stat.N()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(float64(total) * p / 100.0))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return (int64(1) << uint(i+1)) - 1
		}
	}
	return int64(h.stat.Max())
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// LatencyHist is a streaming log-linear histogram of non-negative
// integer observations (latencies in ns). Each power-of-two range is
// split into 16 linear sub-buckets (≤ 6.25% relative bucket width), so
// tail quantiles stay tight without per-sample storage. All state is
// integral — bucket counts plus exact n/sum/min/max — which makes
// Merge exact: merging shard histograms in any order yields precisely
// the histogram a single sequential recorder would have produced. The
// serving experiments rely on that to keep harness parallelism
// byte-identical. The zero value is ready to use.
type LatencyHist struct {
	n      int64
	sum    int64
	min    int64
	max    int64
	counts [latHistBuckets]int64
}

const (
	latSubBits  = 4               // sub-buckets per octave = 1<<latSubBits
	latSubCount = 1 << latSubBits // 16
	// Highest index is (62-latSubBits+1)*latSubCount + latSubCount-1 = 959
	// for the largest int64 observation; round up to a power of two.
	latHistBuckets = 1024
)

// latIndex maps a non-negative value to its bucket.
func latIndex(v int64) int {
	if v < latSubCount {
		return int(v) // exact buckets for tiny values (including zero)
	}
	exp := log2(uint64(v))
	sub := (v >> uint(exp-latSubBits)) & (latSubCount - 1)
	return (exp-latSubBits+1)*latSubCount + int(sub)
}

// latUpper reports the largest value a bucket can hold.
func latUpper(idx int) int64 {
	if idx < latSubCount {
		return int64(idx)
	}
	exp := idx>>latSubBits + latSubBits - 1
	sub := int64(idx & (latSubCount - 1))
	lower := int64(1)<<uint(exp) + sub<<uint(exp-latSubBits)
	return lower + int64(1)<<uint(exp-latSubBits) - 1
}

// Add records one observation; negative values are clamped to zero.
func (h *LatencyHist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.counts[latIndex(v)]++
}

// AddDur records a duration observation.
func (h *LatencyHist) AddDur(d Dur) { h.Add(int64(d)) }

// N reports the observation count.
func (h *LatencyHist) N() int64 { return h.n }

// Sum reports the exact total of all observations.
func (h *LatencyHist) Sum() int64 { return h.sum }

// Min reports the smallest observation (0 when empty).
func (h *LatencyHist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest observation (0 when empty).
func (h *LatencyHist) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean reports the arithmetic mean (0 when empty).
func (h *LatencyHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an upper bound for the p-th percentile (p in
// [0,100]): the upper edge of the bucket holding the rank-⌈np/100⌉
// observation, clamped to the exact observed maximum. The result
// depends only on bucket counts and min/max, so merged histograms
// report identical quantiles regardless of merge order.
func (h *LatencyHist) Quantile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(float64(h.n) * p / 100.0))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			u := latUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Merge folds o into h. Merging is exact and commutative: counts, n,
// sum, min, and max combine without loss.
func (h *LatencyHist) Merge(o *LatencyHist) {
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// LatencyBucket is one nonzero histogram bucket in serialized form.
type LatencyBucket struct {
	Index int
	Count int64
}

// BucketUpper reports the largest value the bucket at idx can hold —
// the inclusive upper edge exporters need to label serialized buckets
// (e.g. Prometheus `le` bounds). It panics on an out-of-range index,
// mirroring RestoreLatencyHist.
func BucketUpper(idx int) int64 {
	if idx < 0 || idx >= latHistBuckets {
		panic(fmt.Sprintf("sim: latency bucket index %d out of range", idx))
	}
	return latUpper(idx)
}

// Buckets returns the nonzero buckets in index order — the serialized
// form a trial exports so that assembly can rebuild and merge shard
// histograms exactly.
func (h *LatencyHist) Buckets() []LatencyBucket {
	var out []LatencyBucket
	for i, c := range h.counts {
		if c != 0 {
			out = append(out, LatencyBucket{Index: i, Count: c})
		}
	}
	return out
}

// RestoreLatencyHist rebuilds a histogram from its serialized state
// (Buckets plus the exact Sum/Min/Max). The restored histogram is
// indistinguishable from the original under every observer, so
// restore-then-merge equals merge-then-serialize.
func RestoreLatencyHist(sum, min, max int64, buckets []LatencyBucket) *LatencyHist {
	h := &LatencyHist{sum: sum, min: min, max: max}
	for _, b := range buckets {
		if b.Index < 0 || b.Index >= latHistBuckets {
			panic(fmt.Sprintf("sim: latency bucket index %d out of range", b.Index))
		}
		h.counts[b.Index] += b.Count
		h.n += b.Count
	}
	return h
}

// String summarizes the distribution for logs.
func (h *LatencyHist) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%d p90=%d p99=%d p999=%d max=%d",
		h.n, h.Mean(), h.Quantile(50), h.Quantile(90), h.Quantile(99), h.Quantile(99.9), h.Max())
}

// Counter is a named monotonically increasing count.
type Counter struct {
	v int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v }

// Scoreboard is a string-keyed set of counters used by components to
// export ad-hoc metrics without new fields. The zero value is ready to
// use.
type Scoreboard struct {
	m map[string]int64
}

// Add increments key by n.
func (s *Scoreboard) Add(key string, n int64) {
	if s.m == nil {
		s.m = make(map[string]int64)
	}
	s.m[key] += n
}

// Get reports the value for key (0 when absent).
func (s *Scoreboard) Get(key string) int64 { return s.m[key] }

// Keys reports all keys in sorted order.
func (s *Scoreboard) Keys() []string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
