package sim

import (
	"fmt"
	"math"
	"sort"
)

// RunningStat accumulates count/mean/variance/min/max in one pass
// (Welford's algorithm). The zero value is ready to use.
type RunningStat struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *RunningStat) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDur records a duration observation in nanoseconds.
func (s *RunningStat) AddDur(d Dur) { s.Add(float64(d)) }

// N reports the number of observations.
func (s *RunningStat) N() int64 { return s.n }

// Mean reports the arithmetic mean (0 with no observations).
func (s *RunningStat) Mean() float64 { return s.mean }

// Min reports the smallest observation (0 with no observations).
func (s *RunningStat) Min() float64 { return s.min }

// Max reports the largest observation (0 with no observations).
func (s *RunningStat) Max() float64 { return s.max }

// Sum reports the total of all observations.
func (s *RunningStat) Sum() float64 { return s.mean * float64(s.n) }

// StdDev reports the sample standard deviation.
func (s *RunningStat) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// String summarizes the statistic for logs.
func (s *RunningStat) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g max=%.3g sd=%.3g",
		s.n, s.mean, s.min, s.max, s.StdDev())
}

// Hist is a power-of-two bucketed histogram of non-negative integer
// observations (typically latencies in ns). Bucket i counts observations
// in [2^i, 2^(i+1)); bucket 0 also absorbs zero. The zero value is ready
// to use.
type Hist struct {
	buckets [64]int64
	stat    RunningStat
}

// Add records one observation; negative values are clamped to zero.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.stat.Add(float64(v))
	h.buckets[log2(uint64(v))]++
}

// AddDur records a duration observation.
func (h *Hist) AddDur(d Dur) { h.Add(int64(d)) }

// N reports the observation count.
func (h *Hist) N() int64 { return h.stat.N() }

// Mean reports the mean observation.
func (h *Hist) Mean() float64 { return h.stat.Mean() }

// Max reports the maximum observation.
func (h *Hist) Max() float64 { return h.stat.Max() }

// Percentile returns an upper bound for the p-th percentile (p in
// [0,100]) from bucket boundaries.
func (h *Hist) Percentile(p float64) int64 {
	total := h.stat.N()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(float64(total) * p / 100.0))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return (int64(1) << uint(i+1)) - 1
		}
	}
	return int64(h.stat.Max())
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Counter is a named monotonically increasing count.
type Counter struct {
	v int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v }

// Scoreboard is a string-keyed set of counters used by components to
// export ad-hoc metrics without new fields. The zero value is ready to
// use.
type Scoreboard struct {
	m map[string]int64
}

// Add increments key by n.
func (s *Scoreboard) Add(key string, n int64) {
	if s.m == nil {
		s.m = make(map[string]int64)
	}
	s.m[key] += n
}

// Get reports the value for key (0 when absent).
func (s *Scoreboard) Get(key string) int64 { return s.m[key] }

// Keys reports all keys in sorted order.
func (s *Scoreboard) Keys() []string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
