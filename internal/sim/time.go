// Package sim provides the deterministic discrete-event simulation engine
// that underpins the Venice reproduction: virtual time, an event queue,
// blocking simulated processes, deterministic random numbers, and the
// timing parameters calibrated against the paper's hardware prototype.
//
// The engine is strictly single-threaded from the simulation's point of
// view: although processes run on goroutines for readability, a baton is
// passed so that exactly one of (engine, some process) executes at any
// instant. Given the same seed and the same program, every run produces
// the identical event trace.
package sim

import "fmt"

// Time is an instant in virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Dur is a span of virtual time in nanoseconds.
type Dur int64

// Common durations.
const (
	Nanosecond  Dur = 1
	Microsecond Dur = 1000 * Nanosecond
	Millisecond Dur = 1000 * Microsecond
	Second      Dur = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d Dur) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Dur { return Dur(t - u) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds reports d as a floating-point number of seconds.
func (d Dur) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports d as a floating-point number of microseconds.
func (d Dur) Micros() float64 { return float64(d) / float64(Microsecond) }

// String formats a time with an adaptive unit, e.g. "1.400µs" or "2.3s".
func (t Time) String() string { return Dur(t).String() }

// String formats a duration with an adaptive unit.
func (d Dur) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < 10*Millisecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	case d < 10*Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	}
}

// DurFromSeconds converts floating-point seconds into a Dur, rounding to
// the nearest nanosecond.
func DurFromSeconds(s float64) Dur { return Dur(s*float64(Second) + 0.5) }

// Scale multiplies d by a dimensionless factor, rounding to the nearest
// nanosecond. It panics if the factor is negative.
func (d Dur) Scale(f float64) Dur {
	if f < 0 {
		panic("sim: negative duration scale")
	}
	return Dur(float64(d)*f + 0.5)
}
