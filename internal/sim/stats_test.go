package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningStatBasics(t *testing.T) {
	var s RunningStat
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-9 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample std dev of that classic dataset is sqrt(32/7).
	if math.Abs(s.StdDev()-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Fatalf("StdDev = %v", s.StdDev())
	}
	if math.Abs(s.Sum()-40) > 1e-9 {
		t.Fatalf("Sum = %v, want 40", s.Sum())
	}
}

func TestRunningStatMeanWithinBoundsProperty(t *testing.T) {
	prop := func(vals []float64) bool {
		var s RunningStat
		anyFinite := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue // avoid float overflow inside Welford's update
			}
			s.Add(v)
			anyFinite = true
		}
		if !anyFinite {
			return true
		}
		eps := 1e-9 * (1 + math.Abs(s.Min()) + math.Abs(s.Max()))
		return s.Mean() >= s.Min()-eps && s.Mean() <= s.Max()+eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistPercentiles(t *testing.T) {
	var h Hist
	for i := int64(1); i <= 1000; i++ {
		h.Add(i)
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	p50 := h.Percentile(50)
	if p50 < 500 || p50 > 1024 {
		t.Fatalf("p50 = %d, want within [500,1024]", p50)
	}
	p100 := h.Percentile(100)
	if p100 < 1000 {
		t.Fatalf("p100 = %d, want >= 1000", p100)
	}
	if h.Percentile(0) <= 0 {
		t.Fatalf("p0 = %d, want positive bucket bound", h.Percentile(0))
	}
}

func TestHistNegativeClamped(t *testing.T) {
	var h Hist
	h.Add(-5)
	if h.N() != 1 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Percentile(100) > 1 {
		t.Fatalf("negative observation landed in a high bucket")
	}
}

func TestHistEmptyPercentile(t *testing.T) {
	var h Hist
	if h.Percentile(99) != 0 {
		t.Fatal("empty histogram percentile should be 0")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestScoreboard(t *testing.T) {
	var s Scoreboard
	s.Add("b", 2)
	s.Add("a", 1)
	s.Add("b", 3)
	if s.Get("b") != 5 || s.Get("a") != 1 || s.Get("zzz") != 0 {
		t.Fatalf("values wrong: a=%d b=%d", s.Get("a"), s.Get("b"))
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1024: 10, 1 << 40: 40}
	for in, want := range cases {
		if got := log2(in); got != want {
			t.Errorf("log2(%d) = %d, want %d", in, got, want)
		}
	}
}
