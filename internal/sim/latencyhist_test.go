package sim

import "testing"

// latHistEqual compares every externally visible property of two
// histograms exactly (no tolerance: the merge contract is exactness).
func latHistEqual(t *testing.T, label string, a, b *LatencyHist) {
	t.Helper()
	if a.N() != b.N() || a.Sum() != b.Sum() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatalf("%s: moments differ: n %d/%d sum %d/%d min %d/%d max %d/%d",
			label, a.N(), b.N(), a.Sum(), b.Sum(), a.Min(), b.Min(), a.Max(), b.Max())
	}
	ab, bb := a.Buckets(), b.Buckets()
	if len(ab) != len(bb) {
		t.Fatalf("%s: bucket sets differ: %d vs %d nonzero buckets", label, len(ab), len(bb))
	}
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("%s: bucket %d differs: %+v vs %+v", label, i, ab[i], bb[i])
		}
	}
	for p := 0.0; p <= 100.0; p += 0.1 {
		if qa, qb := a.Quantile(p), b.Quantile(p); qa != qb {
			t.Fatalf("%s: Quantile(%.1f) differs: %d vs %d", label, p, qa, qb)
		}
	}
}

// latHistSample draws a value spanning many orders of magnitude,
// including zeros and tiny exact-bucket values.
func latHistSample(rng *RNG) int64 {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return int64(rng.Intn(16)) // exact sub-latSubCount buckets
	case 2:
		return rng.Int63n(1 << 40) // far tail
	default:
		return rng.Int63n(10_000_000) // typical latency range, ns
	}
}

// TestLatencyHistMergeExact is the property the serving experiments
// depend on: merging N shard histograms (in any order) is exactly the
// histogram one sequential recorder would have produced.
func TestLatencyHistMergeExact(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7, 16} {
		rng := NewRNG(uint64(1000 + shards))
		var sequential LatencyHist
		parts := make([]*LatencyHist, shards)
		for i := range parts {
			parts[i] = &LatencyHist{}
		}
		for i := 0; i < 5000; i++ {
			v := latHistSample(rng)
			sequential.Add(v)
			parts[i%shards].Add(v)
		}
		// Forward merge order.
		var fwd LatencyHist
		for _, p := range parts {
			fwd.Merge(p)
		}
		latHistEqual(t, "forward merge", &fwd, &sequential)
		// Reverse order must give the same bytes (commutativity).
		var rev LatencyHist
		for i := len(parts) - 1; i >= 0; i-- {
			rev.Merge(parts[i])
		}
		latHistEqual(t, "reverse merge", &rev, &sequential)
	}
}

// TestLatencyHistRestoreRoundTrip: serializing a histogram through
// Buckets/RestoreLatencyHist and merging restored shards is still exact
// — the path trial values take through the harness.
func TestLatencyHistRestoreRoundTrip(t *testing.T) {
	rng := NewRNG(77)
	var direct LatencyHist
	shards := []*LatencyHist{{}, {}, {}}
	for i := 0; i < 3000; i++ {
		v := latHistSample(rng)
		direct.Add(v)
		shards[i%3].Add(v)
	}
	var merged LatencyHist
	for _, s := range shards {
		restored := RestoreLatencyHist(s.Sum(), s.Min(), s.Max(), s.Buckets())
		latHistEqual(t, "single-shard round trip", restored, s)
		merged.Merge(restored)
	}
	latHistEqual(t, "restored-shard merge", &merged, &direct)
}

// TestLatencyHistQuantileMonotone: quantiles are non-decreasing in p,
// bounded by the observed extremes, and exact at the ends.
func TestLatencyHistQuantileMonotone(t *testing.T) {
	rng := NewRNG(42)
	var h LatencyHist
	for i := 0; i < 4000; i++ {
		h.Add(latHistSample(rng))
	}
	prev := int64(-1)
	for p := 0.0; p <= 100.0; p += 0.05 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile(%.2f)=%d < previous %d", p, q, prev)
		}
		if q > h.Max() {
			t.Fatalf("Quantile(%.2f)=%d exceeds max %d", p, q, h.Max())
		}
		prev = q
	}
	if got := h.Quantile(100); got != h.Max() {
		t.Fatalf("Quantile(100)=%d, want exact max %d", got, h.Max())
	}
	if h.Quantile(0) < h.Min() {
		t.Fatalf("Quantile(0)=%d below min %d", h.Quantile(0), h.Min())
	}
}

// TestLatencyHistBucketResolution: bucket upper bounds are within 6.25%
// of the value (16 sub-buckets per octave) for values past the linear
// range, so p99 error is bounded.
func TestLatencyHistBucketResolution(t *testing.T) {
	rng := NewRNG(9)
	for i := 0; i < 100000; i++ {
		v := 16 + rng.Int63n(1<<50)
		var h LatencyHist
		h.Add(v)
		q := h.Quantile(99)
		if q != v { // clamped to max: exact for single observation
			t.Fatalf("single-value quantile %d != %d", q, v)
		}
		idx := latIndex(v)
		if u := latUpper(idx); u < v || float64(u-v) > 0.0625*float64(v) {
			t.Fatalf("bucket %d upper %d too far from %d", idx, u, v)
		}
	}
}

// TestLatencyHistEmptyAndZero: the zero value and zero observations
// behave.
func TestLatencyHistEmptyAndZero(t *testing.T) {
	var h LatencyHist
	if h.Quantile(99) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Add(-5) // clamps to zero
	h.Add(0)
	if h.N() != 2 || h.Max() != 0 || h.Quantile(99.9) != 0 {
		t.Fatalf("zero clamp broken: %s", h.String())
	}
	var other LatencyHist
	other.Merge(&h)
	latHistEqual(t, "merge into empty", &other, &h)
}
