package sim

import "testing"

func TestDefaultHopLatencyMatchesTable1(t *testing.T) {
	p := Default()
	// Table 1: point-to-point latency 1.4 µs.
	if got := p.HopLatency(); got != 1400*Nanosecond {
		t.Fatalf("HopLatency = %v, want 1.4µs", got)
	}
}

func TestSerializeAtLinkRate(t *testing.T) {
	p := Default()
	// 64 B payload + 16 B header = 80 B = 640 bits at 5 Gbps -> 128 ns.
	if got := p.Serialize(64); got != 128*Nanosecond {
		t.Fatalf("Serialize(64) = %v, want 128ns", got)
	}
	if got := p.Serialize(0); got != Dur(16*8)/5*1 {
		// 16 B header alone: 128 bits / 5 Gbps = 25.6 -> 26 ns.
		if got != 26*Nanosecond {
			t.Fatalf("Serialize(0) = %v, want 26ns", got)
		}
	}
}

func TestComputeScalesWithClock(t *testing.T) {
	p := Default()
	slow := p.Compute(667)
	x := Xeon()
	fast := x.Compute(667)
	if slow <= fast {
		t.Fatalf("A9 compute %v should exceed Xeon %v", slow, fast)
	}
	// 667 ops at 0.667 GHz, 1 op/cycle = 1000 ns.
	if slow < 990*Nanosecond || slow > 1010*Nanosecond {
		t.Fatalf("Compute(667) = %v, want ~1µs", slow)
	}
	if p.Compute(0) != 0 || p.Compute(-5) != 0 {
		t.Fatal("Compute of non-positive n should be 0")
	}
}

func TestXeonIsFasterAcrossTheBoard(t *testing.T) {
	p, x := Default(), Xeon()
	if x.CPUGHz <= p.CPUGHz {
		t.Error("Xeon clock should exceed prototype clock")
	}
	if x.DRAMLat >= p.DRAMLat {
		t.Error("Xeon DRAM latency should be lower")
	}
	if x.CacheBytes <= p.CacheBytes {
		t.Error("Xeon cache should be larger")
	}
	if x.LocalDiskLat >= p.LocalDiskLat {
		t.Error("Xeon-class SSD should be faster than SD storage")
	}
}

func TestCycleTime(t *testing.T) {
	p := Default()
	ct := p.CycleTime()
	if ct < 1490 || ct > 1510 {
		// 1/0.667 GHz ≈ 1.499 ns — stored in ns so rounds to 1 or 2?
		// CycleTime returns Dur(1/0.667) = Dur(1.499...) truncated to 1ns.
		// Accept the truncation: the assertion documents the behavior.
		if ct != 1*Nanosecond {
			t.Fatalf("CycleTime = %v", ct)
		}
	}
}
