package sim

// event is a callback scheduled at a virtual instant. Events with equal
// timestamps fire in scheduling order (FIFO: ascending seq), which keeps
// runs deterministic.
//
// Events are pooled: the engine recycles fired and canceled events
// through an eventPool free list, so steady-state scheduling allocates
// nothing and the scheduler's working set stays cache-resident.
type event struct {
	at         Time
	seq        uint64
	fn         func()
	canceled   bool // tombstoned by Engine.Cancel; discarded at dispatch
	cancelable bool // registered in the engine's cancel table
}

// eventPool is a LIFO free list of event structs. The engine returns
// every popped event here after dispatch, so after warm-up the pool is
// the only source of event storage: get allocates only while the
// population of in-flight events is still growing.
type eventPool struct {
	free []*event
}

// get returns a recycled event, or a fresh one when the list is empty.
// Timing fields are overwritten by the scheduler; flag fields are
// cleared by put.
func (p *eventPool) get() *event {
	if n := len(p.free); n > 0 {
		ev := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return ev
	}
	return &event{}
}

// put recycles ev, dropping its callback so the pool never pins a dead
// closure (and whatever simulation state it captured) in memory.
func (p *eventPool) put(ev *event) {
	ev.fn = nil
	ev.canceled = false
	ev.cancelable = false
	p.free = append(p.free, ev)
}
