package sim

import "testing"

func TestCompletionThenBeforeAndAfter(t *testing.T) {
	e := New()
	defer e.Close()
	c := NewCompletion(e)
	var order []string
	c.Then(func() { order = append(order, "registered-before") })
	e.Schedule(10, func() {
		c.Complete()
		order = append(order, "completer")
	})
	e.Run()
	// Then callbacks fire as events after the completing event returns.
	if len(order) != 2 || order[0] != "completer" || order[1] != "registered-before" {
		t.Fatalf("order = %v", order)
	}
	// Registering on an already-done completion fires at the current
	// instant.
	fired := false
	c.Then(func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("Then on done completion never fired")
	}
}

func TestCompletionThenChaining(t *testing.T) {
	e := New()
	defer e.Close()
	a := NewCompletion(e)
	b := NewCompletion(e)
	var doneAt Time
	b.Then(func() { doneAt = e.Now() })
	a.Then(func() { e.Schedule(5, b.Complete) })
	e.Schedule(10, a.Complete)
	e.Run()
	if doneAt != 15 {
		t.Fatalf("chained completion at %v, want 15", doneAt)
	}
}

func TestHistPercentileMonotoneProperty(t *testing.T) {
	var h Hist
	rng := NewRNG(3)
	for i := 0; i < 5000; i++ {
		h.Add(int64(rng.Intn(1_000_000)))
	}
	last := int64(0)
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
		v := h.Percentile(p)
		if v < last {
			t.Fatalf("percentile %v = %d below previous %d", p, v, last)
		}
		last = v
	}
}

func TestEngineRunFiredCount(t *testing.T) {
	e := New()
	defer e.Close()
	for i := 0; i < 25; i++ {
		e.Schedule(Dur(i), func() {})
	}
	e.Run()
	if e.Fired() != 25 {
		t.Fatalf("Fired = %d", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}
