package sim

import (
	"fmt"
	"testing"
)

// benchDelay draws one inter-event delay from the mix a serving-scale run
// produces: mostly sub-10µs transport hops, a tail of millisecond-scale
// protocol timers, and rare multi-second chaos/MTTF timers (far enough
// out to land in the scheduler's spill list).
func benchDelay(rng *RNG) Dur {
	switch x := rng.Intn(1000); {
	case x < 900:
		return Dur(rng.Intn(10_000)) // < 10µs: packet hops, device ops
	case x < 990:
		return Dur(rng.Intn(1_000_000)) // < 1ms: timeouts, heartbeats
	case x < 999:
		return Dur(rng.Intn(100_000_000)) // < 100ms: sweeps, recovery
	default:
		return Dur(5_000_000_000 + rng.Int63n(5_000_000_000)) // 5-10s: MTTF
	}
}

// BenchmarkEngineThroughput measures sustained Schedule+Step throughput
// with a steady population of self-rescheduling events, sized to mimic
// 8/64/256 simulated nodes with ~8 in-flight events each. Every fired
// event schedules its successor, so the population is constant and each
// benchmark op is exactly one schedule plus one dispatch. Reported
// events/sec is the engine-core ceiling for the serving scenarios;
// allocs/op is the pooling gate (steady state must be zero-alloc).
func BenchmarkEngineThroughput(b *testing.B) {
	for _, nodes := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("n%d", nodes), func(b *testing.B) {
			e := New()
			rng := NewRNG(1)
			var fn func()
			fn = func() { e.Schedule(benchDelay(rng), fn) }
			for i := 0; i < nodes*8; i++ {
				e.Schedule(benchDelay(rng), fn)
			}
			// Warm the scheduler (pool, buckets) before measuring.
			for i := 0; i < 100_000; i++ {
				e.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}
