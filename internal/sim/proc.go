package sim

// Proc is a simulated process: workload code that can block on virtual
// time (Sleep), on completions, queues and semaphores, while the engine
// interleaves it deterministically with every other process.
//
// A Proc's function runs on its own goroutine, but the engine guarantees
// that at most one goroutine in the whole simulation executes at a time,
// so process code may freely touch shared simulation state without locks.
type Proc struct {
	Eng    *Engine
	name   string
	wake   chan struct{}
	wakeFn func() // cached resume thunk: one closure per proc, not per park
	dead   bool
}

// procStopped is the panic payload used to unwind a process killed by
// Engine.Close.
type procStopped struct{}

// Name reports the name the process was started with.
func (p *Proc) Name() string { return p.name }

// Now reports current virtual time; shorthand for p.Eng.Now().
func (p *Proc) Now() Time { return p.Eng.Now() }

// Go starts a new simulated process running fn. The process begins
// executing at the current virtual instant, after already-queued events
// at this instant have run. It returns a Completion that completes when
// fn returns.
func (e *Engine) Go(name string, fn func(p *Proc)) *Completion {
	done := NewCompletion(e)
	p := &Proc{Eng: e, name: name, wake: make(chan struct{})}
	p.wakeFn = func() { e.resume(p) }
	e.live++
	e.Schedule(0, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(procStopped); ok {
						return // engine shut down; exit silently
					}
					panic(r)
				}
			}()
			p.waitBaton()
			fn(p)
			p.finish(done)
		}()
		e.resume(p)
	})
	return done
}

// waitBaton blocks until the engine hands this process the baton.
func (p *Proc) waitBaton() {
	select {
	case <-p.wake:
	case <-p.Eng.stopped:
		panic(procStopped{})
	}
}

// park returns the baton to the engine and blocks until resumed. Process
// code calls this (via Sleep/Await/...) after arranging for a wakeup.
func (p *Proc) park() {
	e := p.Eng
	e.parked++
	select {
	case e.yield <- struct{}{}:
	case <-e.stopped:
		e.parked--
		panic(procStopped{})
	}
	p.waitBaton()
	e.parked--
}

// unparkAfter schedules this process to resume d from now. The cached
// wakeFn keeps every park/unpark cycle (Sleep, Await, queue and
// semaphore waits) allocation-free.
func (p *Proc) unparkAfter(d Dur) {
	e := p.Eng
	e.At(e.now.Add(d), p.wakeFn)
}

// finish marks the process done and returns the baton for the last time.
func (p *Proc) finish(done *Completion) {
	e := p.Eng
	p.dead = true
	e.live--
	done.Complete()
	select {
	case e.yield <- struct{}{}:
	case <-e.stopped:
	}
}

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d Dur) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.unparkAfter(d)
	p.park()
}

// Yield lets every other event and process scheduled at the current
// instant run before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }
