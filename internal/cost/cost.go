// Package cost reproduces the paper's hardware cost analysis (§7.3):
// the Venice substrate synthesized in a 28 nm flow — a radix-7 switch
// plus the three transport channels — occupying 2.73 mm² of logic and
// 32 KB of SRAM at 1 GHz, with ~3.5 mm² of PHYs, against Haswell-EP dies
// of 300-600 mm²: about 2% of the chip. It also encodes the observation
// that QPair support costs roughly twice CRMA's logic and tens of
// kilobytes more SRAM (§4.2.1).
package cost

// Block is one synthesized hardware block.
type Block struct {
	Name    string
	AreaMM2 float64
	SRAMKB  float64
	KLUTs   float64 // prototype FPGA complexity, thousands of LUTs
}

// Blocks returns the per-block breakdown of the Venice substrate in
// 28 nm. The totals match §7.3; the split follows the architecture of
// Fig. 7 (control center; transport channels; network; datalink+ports).
func Blocks() []Block {
	return []Block{
		{Name: "control center", AreaMM2: 0.22, SRAMKB: 2, KLUTs: 9},
		{Name: "crma channel", AreaMM2: 0.31, SRAMKB: 4, KLUTs: 14},
		{Name: "rdma channel", AreaMM2: 0.38, SRAMKB: 6, KLUTs: 17},
		{Name: "qpair channel", AreaMM2: 0.62, SRAMKB: 14, KLUTs: 28},
		{Name: "radix-7 switch", AreaMM2: 0.74, SRAMKB: 4, KLUTs: 31},
		{Name: "datalink+ports", AreaMM2: 0.46, SRAMKB: 2, KLUTs: 19},
	}
}

// PHYCount is the number of high-speed PHYs: six fabric ports plus the
// local port's interface.
const PHYCount = 7

// PHYAreaMM2 is the estimated area of one PCIe-Gen4-x1-class PHY.
const PHYAreaMM2 = 0.5

// ClockGHz is the synthesized clock at the typical corner.
const ClockGHz = 1.0

// Totals aggregates the logic blocks.
func Totals() (areaMM2, sramKB float64) {
	for _, b := range Blocks() {
		areaMM2 += b.AreaMM2
		sramKB += b.SRAMKB
	}
	return areaMM2, sramKB
}

// PHYTotalMM2 reports the total PHY area (§7.3 estimates ~3.5 mm²).
func PHYTotalMM2() float64 { return PHYCount * PHYAreaMM2 }

// Haswell-EP reference die sizes at 22 nm (§7.3).
const (
	HaswellEP8CoreMM2  = 300.0
	HaswellEP18CoreMM2 = 600.0
)

// ChipFraction reports Venice's share of a die of the given size.
func ChipFraction(dieMM2 float64) float64 {
	logic, _ := Totals()
	return (logic + PHYTotalMM2()) / dieMM2
}

// QPairVsCRMA reports the relative logic (LUT) and SRAM cost of the
// QPair channel against CRMA — the §4.2.1 comparison motivating the
// claim that remote-memory support "need not be complex".
func QPairVsCRMA() (lutRatio float64, sramDeltaKB float64) {
	var qp, crma Block
	for _, b := range Blocks() {
		switch b.Name {
		case "qpair channel":
			qp = b
		case "crma channel":
			crma = b
		}
	}
	return qp.KLUTs / crma.KLUTs, qp.SRAMKB - crma.SRAMKB
}
