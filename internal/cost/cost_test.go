package cost

import (
	"math"
	"testing"
)

func TestTotalsMatchPaper(t *testing.T) {
	area, sram := Totals()
	if math.Abs(area-2.73) > 0.01 {
		t.Fatalf("logic area = %.2f mm², paper reports 2.73", area)
	}
	if math.Abs(sram-32) > 0.01 {
		t.Fatalf("SRAM = %.0f KB, paper reports 32", sram)
	}
	if got := PHYTotalMM2(); math.Abs(got-3.5) > 0.01 {
		t.Fatalf("PHY area = %.2f mm², paper reports ~3.5", got)
	}
}

func TestChipFractionAboutTwoPercent(t *testing.T) {
	f := ChipFraction(HaswellEP8CoreMM2)
	if f < 0.015 || f > 0.025 {
		t.Fatalf("fraction of 8-core die = %.3f, paper says ~2%%", f)
	}
	if big := ChipFraction(HaswellEP18CoreMM2); big >= f {
		t.Fatal("fraction should shrink on the larger die")
	}
}

func TestQPairCostsMoreThanCRMA(t *testing.T) {
	lutRatio, sramDelta := QPairVsCRMA()
	// §4.2.1: QPair logic ≈ 2x CRMA; tens of KB more SRAM in a full
	// implementation (the prototype block shows the same direction).
	if lutRatio < 1.8 || lutRatio > 2.2 {
		t.Fatalf("QPair/CRMA LUT ratio = %.2f, want ~2", lutRatio)
	}
	if sramDelta <= 0 {
		t.Fatalf("QPair SRAM delta = %.0f KB, want positive", sramDelta)
	}
}

func TestBlocksHavePositiveCosts(t *testing.T) {
	for _, b := range Blocks() {
		if b.AreaMM2 <= 0 || b.SRAMKB < 0 || b.KLUTs <= 0 {
			t.Fatalf("block %q has non-physical costs: %+v", b.Name, b)
		}
	}
	if ClockGHz != 1.0 {
		t.Fatal("synthesized clock should be 1 GHz (typical corner)")
	}
}
