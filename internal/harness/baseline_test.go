package harness

import (
	"path/filepath"
	"testing"
)

// report builds a two-spec report for comparison tests.
func testReport() *Report {
	return &Report{
		Parallel: 1,
		Specs: []SpecReport{
			{ID: "alpha", Trials: 2},
			{ID: "beta", Trials: 1},
		},
		Trials: []TrialResult{
			{Spec: "alpha", Trial: "a/1", Values: Values{"ns": 100, "miss": 0.25}},
			{Spec: "alpha", Trial: "a/2", Values: Values{"ns": 200}},
			{Spec: "beta", Trial: "b/1", Values: Values{"rps": 5000}},
		},
	}
}

func TestCompareToBaselineClean(t *testing.T) {
	rep, base := testReport(), testReport()
	if drifts := rep.CompareToBaseline(base, 0.01); len(drifts) != 0 {
		t.Fatalf("identical reports drifted: %v", drifts)
	}
	if rep.MetricCount() != 4 {
		t.Fatalf("MetricCount=%d, want 4", rep.MetricCount())
	}
}

func TestCompareToBaselineToleranceBoundary(t *testing.T) {
	rep, base := testReport(), testReport()
	rep.Trials[1].Values["ns"] = 201.9 // 0.95% drift: inside 1%
	if drifts := rep.CompareToBaseline(base, 0.01); len(drifts) != 0 {
		t.Fatalf("sub-tolerance change flagged: %v", drifts)
	}
	rep.Trials[1].Values["ns"] = 203 // 1.5% drift: outside
	drifts := rep.CompareToBaseline(base, 0.01)
	if len(drifts) != 1 || drifts[0].Trial != "a/2" || drifts[0].Key != "ns" {
		t.Fatalf("want exactly the a/2 ns drift, got %v", drifts)
	}
}

func TestCompareToBaselineCoverage(t *testing.T) {
	// A trial the baseline has never seen.
	rep, base := testReport(), testReport()
	rep.Trials = append(rep.Trials, TrialResult{Spec: "alpha", Trial: "a/3", Values: Values{"ns": 1}})
	if drifts := rep.CompareToBaseline(base, 0.01); len(drifts) != 1 || drifts[0].Reason == "" {
		t.Fatalf("new trial not flagged: %v", drifts)
	}
	// A baseline trial that vanished from the run.
	rep = testReport()
	rep.Trials = rep.Trials[1:] // drop alpha a/1
	if drifts := rep.CompareToBaseline(base, 0.01); len(drifts) != 1 || drifts[0].Trial != "a/1" {
		t.Fatalf("vanished trial not flagged: %v", drifts)
	}
	// A metric that vanished, and one that appeared.
	rep = testReport()
	delete(rep.Trials[0].Values, "miss")
	rep.Trials[2].Values["extra"] = 1
	drifts := rep.CompareToBaseline(base, 0.01)
	if len(drifts) != 2 {
		t.Fatalf("want 2 coverage drifts, got %v", drifts)
	}
	// Specs absent from the run are not compared (the gate runs subsets).
	rep = testReport()
	rep.Specs = rep.Specs[:1]
	rep.Trials = rep.Trials[:2]
	if drifts := rep.CompareToBaseline(base, 0.01); len(drifts) != 0 {
		t.Fatalf("unran spec compared: %v", drifts)
	}
}

func TestCompareToBaselineZeroHandling(t *testing.T) {
	rep, base := testReport(), testReport()
	base.Trials[0].Values["miss"] = 0
	rep.Trials[0].Values["miss"] = 0
	if drifts := rep.CompareToBaseline(base, 0.01); len(drifts) != 0 {
		t.Fatalf("0 vs 0 drifted: %v", drifts)
	}
	rep.Trials[0].Values["miss"] = 1e-9
	if drifts := rep.CompareToBaseline(base, 0.01); len(drifts) != 1 {
		t.Fatalf("0 -> nonzero not flagged: %v", drifts)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := testReport()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if drifts := loaded.CompareToBaseline(rep, 0); len(drifts) != 0 {
		t.Fatalf("round trip drifted: %v", drifts)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing report succeeded")
	}
}
