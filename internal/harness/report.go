package harness

import (
	"encoding/json"
	"os"
	"runtime"
)

// Report is the JSON artifact of one harness invocation: every executed
// trial with its values and timing, plus enough environment metadata to
// compare runs over time (the BENCH_*.json trajectory).
type Report struct {
	Parallel   int           `json:"parallel"`
	GoMaxProcs int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	WallMS     float64       `json:"wall_ms"`
	Specs      []SpecReport  `json:"specs"`
	Trials     []TrialResult `json:"trials"`
}

// SpecReport summarizes one spec's execution.
type SpecReport struct {
	ID     string  `json:"id"`
	Title  string  `json:"title,omitempty"`
	Trials int     `json:"trials"`
	WallMS float64 `json:"wall_ms"`
	Errors int     `json:"errors"`
}

// NewReport builds a report from executed results.
func NewReport(parallel int, wallMS float64, results []*Result) *Report {
	rep := &Report{
		Parallel:   parallel,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		WallMS:     wallMS,
	}
	for _, r := range results {
		sr := SpecReport{ID: r.Spec, Trials: len(r.Trials), WallMS: r.WallMS}
		if spec, ok := Lookup(r.Spec); ok {
			sr.Title = spec.Title
		}
		for i := range r.Trials {
			if r.Trials[i].Error != "" {
				sr.Errors++
			}
			rep.Trials = append(rep.Trials, r.Trials[i])
		}
		rep.Specs = append(rep.Specs, sr)
	}
	return rep
}

// WriteFile emits the report as indented JSON.
func (rep *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
