package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// LoadReport reads a JSON report previously written by Report.WriteFile
// — the checked-in BENCH_BASELINE.json in the regression gate's case.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("harness: parsing report %s: %w", path, err)
	}
	return &rep, nil
}

// Drift is one metric that moved beyond tolerance between a baseline
// and a fresh run, or coverage that appeared/disappeared.
type Drift struct {
	Spec   string
	Trial  string
	Key    string
	Base   float64
	Got    float64
	Reason string
}

// String renders the drift for CI logs.
func (d Drift) String() string {
	if d.Reason != "" {
		return fmt.Sprintf("%s/%s %s: %s", d.Spec, d.Trial, d.Key, d.Reason)
	}
	rel := relDiff(d.Base, d.Got)
	return fmt.Sprintf("%s/%s %s: baseline %g, got %g (%.2f%% drift)",
		d.Spec, d.Trial, d.Key, d.Base, d.Got, 100*rel)
}

// relDiff is |got-base| relative to the baseline magnitude.
func relDiff(base, got float64) float64 {
	if base == got {
		return 0
	}
	if base == 0 {
		return math.Inf(1)
	}
	return math.Abs(got-base) / math.Abs(base)
}

// CompareToBaseline checks every metric of rep against base and returns
// the drifts, sorted deterministically. Only specs present in rep are
// compared (the gate runs a pinned subset), but within a compared spec
// coverage must match both ways: a trial or metric missing from either
// side is a drift, so the gate cannot be silently narrowed. Timing
// metadata (wall_ms and friends) is never compared — with deterministic
// seeds the measured Values must match to within tol exactly.
func (rep *Report) CompareToBaseline(base *Report, tol float64) []Drift {
	type key struct{ spec, trial string }
	baseTrials := make(map[key]Values, len(base.Trials))
	for i := range base.Trials {
		t := &base.Trials[i]
		baseTrials[key{t.Spec, t.Trial}] = t.Values
	}
	gotTrials := make(map[key]bool, len(rep.Trials))
	specsRun := make(map[string]bool, len(rep.Specs))
	for _, s := range rep.Specs {
		specsRun[s.ID] = true
	}

	var drifts []Drift
	for i := range rep.Trials {
		t := &rep.Trials[i]
		gotTrials[key{t.Spec, t.Trial}] = true
		bv, ok := baseTrials[key{t.Spec, t.Trial}]
		if !ok {
			drifts = append(drifts, Drift{Spec: t.Spec, Trial: t.Trial,
				Reason: "trial absent from baseline (regenerate the baseline)"})
			continue
		}
		for _, k := range sortedKeys(t.Values) {
			got := t.Values[k]
			b, ok := bv[k]
			if !ok {
				drifts = append(drifts, Drift{Spec: t.Spec, Trial: t.Trial, Key: k,
					Got: got, Reason: "metric absent from baseline (regenerate the baseline)"})
				continue
			}
			if relDiff(b, got) > tol {
				drifts = append(drifts, Drift{Spec: t.Spec, Trial: t.Trial, Key: k, Base: b, Got: got})
			}
		}
		for _, k := range sortedKeys(bv) {
			if _, ok := t.Values[k]; !ok {
				drifts = append(drifts, Drift{Spec: t.Spec, Trial: t.Trial, Key: k,
					Base: bv[k], Reason: "metric vanished from the run"})
			}
		}
	}
	// Baseline trials of a spec we ran must all have executed.
	for i := range base.Trials {
		t := &base.Trials[i]
		if specsRun[t.Spec] && !gotTrials[key{t.Spec, t.Trial}] {
			drifts = append(drifts, Drift{Spec: t.Spec, Trial: t.Trial,
				Reason: "baseline trial vanished from the run"})
		}
	}
	sort.Slice(drifts, func(i, j int) bool {
		a, b := drifts[i], drifts[j]
		if a.Spec != b.Spec {
			return a.Spec < b.Spec
		}
		if a.Trial != b.Trial {
			return a.Trial < b.Trial
		}
		return a.Key < b.Key
	})
	return drifts
}

// MetricCount reports the number of compared (spec, trial, key) metric
// values in the report.
func (rep *Report) MetricCount() int {
	n := 0
	for i := range rep.Trials {
		n += len(rep.Trials[i].Values)
	}
	return n
}

func sortedKeys(v Values) []string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
