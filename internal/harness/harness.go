// Package harness decomposes experiments into independent, explicitly
// seeded trials and executes them on a bounded worker pool. A trial is
// one configuration × workload cell of an experiment (one bar of a
// figure); because every trial builds its own simulator from its own
// sim.RNG seed, trials are pure functions of their seed and may run in
// any order on any number of workers without changing a single reported
// value. Experiments register a Spec (trial list + assembly function)
// under a stable id; cmd/venice-bench and the experiments package both
// execute through the same pool.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Values is a trial's measured payload: named scalar metrics. Durations
// are reported in nanoseconds of virtual time (sim.Dur is an int64
// nanosecond count, exactly representable in a float64 for any
// realistic simulation length).
type Values map[string]float64

// Trial is one independent unit of an experiment. Run must derive every
// stochastic choice from seed (directly or through fixed per-workload
// streams) so that the same seed always yields the same Values.
type Trial struct {
	ID   string
	Seed uint64
	Run  func(seed uint64) (Values, error)
}

// Artifact is an assembled experiment result renderable for terminal
// output; the concrete type carries the experiment's typed series.
type Artifact interface{ String() string }

// Spec is a registrable experiment: a trial list plus the assembly that
// folds per-trial values back into the experiment's result type. Trials
// may be empty for purely tabular artifacts (Table 1, the cost table).
type Spec struct {
	Title    string
	Trials   []Trial
	Assemble func(r *Result) (Artifact, error)
}

// TrialResult is one executed trial with its timing metadata.
type TrialResult struct {
	Spec   string  `json:"spec,omitempty"`
	Trial  string  `json:"trial"`
	Seed   uint64  `json:"seed"`
	Values Values  `json:"values,omitempty"`
	Error  string  `json:"error,omitempty"`
	WallMS float64 `json:"wall_ms"`
}

// Result holds a spec's executed trials, in declaration order, plus the
// spec's total wall-clock time.
type Result struct {
	Spec   string
	Trials []TrialResult
	WallMS float64

	byID map[string]*TrialResult
}

// Options configures an execution.
type Options struct {
	// Parallel is the worker-pool size; values <= 0 mean GOMAXPROCS.
	Parallel int
}

func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Val returns one metric of one trial. It panics on a missing trial or
// key: assembly runs only after every trial succeeded, so a miss is a
// spec-authoring bug, not a runtime condition.
func (r *Result) Val(trial, key string) float64 {
	tr, ok := r.byID[trial]
	if !ok {
		panic(fmt.Sprintf("harness: spec %q has no trial %q", r.Spec, trial))
	}
	v, ok := tr.Values[key]
	if !ok {
		panic(fmt.Sprintf("harness: trial %s/%s has no value %q", r.Spec, trial, key))
	}
	return v
}

// Err joins the errors of all failed trials, or returns nil.
func (r *Result) Err() error {
	var errs []error
	for i := range r.Trials {
		if t := &r.Trials[i]; t.Error != "" {
			errs = append(errs, fmt.Errorf("trial %s/%s (seed %d): %s", r.Spec, t.Trial, t.Seed, t.Error))
		}
	}
	return errors.Join(errs...)
}

// Execute runs a spec's trials on a bounded worker pool and returns the
// per-trial results in declaration order. All trials are attempted even
// when some fail; the joined failure is available via Result.Err.
func Execute(id string, spec Spec, opts Options) *Result {
	seen := make(map[string]bool, len(spec.Trials))
	for _, t := range spec.Trials {
		if seen[t.ID] {
			// A duplicate would silently shadow the earlier trial's
			// values during assembly; like Register, treat the
			// spec-authoring bug as fatal.
			panic(fmt.Sprintf("harness: spec %q declares trial %q twice", id, t.ID))
		}
		seen[t.ID] = true
	}
	res := &Result{
		Spec:   id,
		Trials: make([]TrialResult, len(spec.Trials)),
		byID:   make(map[string]*TrialResult, len(spec.Trials)),
	}
	start := time.Now()
	workers := opts.workers()
	if workers > len(spec.Trials) {
		workers = len(spec.Trials)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res.Trials[i] = runTrial(id, spec.Trials[i])
			}
		}()
	}
	for i := range spec.Trials {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	res.WallMS = float64(time.Since(start)) / 1e6
	for i := range res.Trials {
		res.byID[res.Trials[i].Trial] = &res.Trials[i]
	}
	return res
}

// runTrial executes one trial, converting panics into trial errors so a
// bad configuration cannot take down the pool.
func runTrial(specID string, t Trial) (out TrialResult) {
	out = TrialResult{Spec: specID, Trial: t.ID, Seed: t.Seed}
	start := time.Now()
	defer func() {
		out.WallMS = float64(time.Since(start)) / 1e6
		if p := recover(); p != nil {
			out.Values = nil
			out.Error = fmt.Sprintf("panic: %v", p)
		}
	}()
	v, err := t.Run(t.Seed)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.Values = v
	return out
}

// Run executes a spec and assembles its artifact. The artifact depends
// only on trial ids and seeds — never on execution order — so any
// Parallel value produces byte-identical renderings.
func Run(id string, spec Spec, opts Options) (Artifact, *Result, error) {
	res := Execute(id, spec, opts)
	if err := res.Err(); err != nil {
		return nil, res, err
	}
	art, err := assemble(id, spec, res)
	if err != nil {
		return nil, res, err
	}
	return art, res, nil
}

// assemble invokes the spec's assembly with panic containment.
func assemble(id string, spec Spec, res *Result) (art Artifact, err error) {
	defer func() {
		if p := recover(); p != nil {
			art, err = nil, fmt.Errorf("harness: assembling %s: panic: %v", id, p)
		}
	}()
	if spec.Assemble == nil {
		return nil, fmt.Errorf("harness: spec %q has no assembly", id)
	}
	return spec.Assemble(res)
}
