package harness

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// synthSpec builds n trials whose values derive only from their seeds,
// with a little real work so parallel schedules actually interleave.
func synthSpec(n int) Spec {
	var trials []Trial
	for i := 0; i < n; i++ {
		trials = append(trials, Trial{
			ID: fmt.Sprintf("cell/%d", i), Seed: uint64(1000 + i),
			Run: func(seed uint64) (Values, error) {
				rng := sim.NewRNG(seed)
				sum := 0.0
				for j := 0; j < 10000; j++ {
					sum += rng.Float64()
				}
				return Values{"sum": sum, "first": float64(sim.NewRNG(seed).Uint64() % 1000)}, nil
			},
		})
	}
	return Spec{
		Title:  "synthetic",
		Trials: trials,
		Assemble: func(r *Result) (Artifact, error) {
			var b strings.Builder
			for i := 0; i < n; i++ {
				fmt.Fprintf(&b, "%d:%.6f\n", i, r.Val(fmt.Sprintf("cell/%d", i), "sum"))
			}
			return stringArtifact(b.String()), nil
		},
	}
}

type stringArtifact string

func (s stringArtifact) String() string { return string(s) }

// Same seeds must yield identical values and renderings for every
// worker-pool size.
func TestDeterministicAcrossParallel(t *testing.T) {
	spec := synthSpec(12)
	var artifacts []string
	var values [][]Values
	for _, parallel := range []int{1, 2, 4, 16} {
		art, res, err := Run("synth", spec, Options{Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		artifacts = append(artifacts, art.String())
		var vs []Values
		for _, tr := range res.Trials {
			vs = append(vs, tr.Values)
		}
		values = append(values, vs)
	}
	for i := 1; i < len(artifacts); i++ {
		if artifacts[i] != artifacts[0] {
			t.Fatalf("artifact differs between pool sizes:\n%s\nvs\n%s", artifacts[0], artifacts[i])
		}
		if !reflect.DeepEqual(values[i], values[0]) {
			t.Fatalf("trial values differ between pool sizes")
		}
	}
}

// A failing trial's error must propagate out of Run, naming the trial,
// while the remaining trials still execute.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("device exploded")
	ran := int32(0)
	spec := Spec{
		Trials: []Trial{
			{ID: "ok/1", Seed: 1, Run: func(uint64) (Values, error) {
				atomic.AddInt32(&ran, 1)
				return Values{"v": 1}, nil
			}},
			{ID: "bad", Seed: 2, Run: func(uint64) (Values, error) { return nil, boom }},
			{ID: "ok/2", Seed: 3, Run: func(uint64) (Values, error) {
				atomic.AddInt32(&ran, 1)
				return Values{"v": 2}, nil
			}},
		},
		Assemble: func(r *Result) (Artifact, error) { return stringArtifact("x"), nil },
	}
	_, res, err := Run("errs", spec, Options{Parallel: 2})
	if err == nil {
		t.Fatal("want error from failing trial")
	}
	if !strings.Contains(err.Error(), "errs/bad") || !strings.Contains(err.Error(), "device exploded") {
		t.Fatalf("error should name the trial and cause: %v", err)
	}
	if got := atomic.LoadInt32(&ran); got != 2 {
		t.Fatalf("healthy trials should still run, got %d of 2", got)
	}
	if res.Trials[0].Values["v"] != 1 || res.Trials[2].Values["v"] != 2 {
		t.Fatalf("healthy trial values lost: %+v", res.Trials)
	}
}

// A panicking trial must not take down the pool; it becomes that
// trial's error.
func TestPanicRecovery(t *testing.T) {
	spec := Spec{
		Trials: []Trial{
			{ID: "panics", Seed: 1, Run: func(uint64) (Values, error) { panic("kaboom") }},
			{ID: "fine", Seed: 2, Run: func(uint64) (Values, error) { return Values{"v": 9}, nil }},
		},
		Assemble: func(r *Result) (Artifact, error) { return stringArtifact("x"), nil },
	}
	_, res, err := Run("pan", spec, Options{Parallel: 2})
	if err == nil || !strings.Contains(err.Error(), "panic: kaboom") {
		t.Fatalf("want recovered panic in error, got %v", err)
	}
	if res.Trials[1].Values["v"] != 9 {
		t.Fatalf("sibling trial should have completed: %+v", res.Trials[1])
	}
}

// The pool must never run more trials at once than Parallel allows.
func TestPoolBounded(t *testing.T) {
	for _, limit := range []int{1, 3} {
		var cur, max int32
		var mu sync.Mutex
		var trials []Trial
		for i := 0; i < 9; i++ {
			trials = append(trials, Trial{
				ID: fmt.Sprintf("t/%d", i), Seed: uint64(i),
				Run: func(uint64) (Values, error) {
					n := atomic.AddInt32(&cur, 1)
					mu.Lock()
					if n > max {
						max = n
					}
					mu.Unlock()
					time.Sleep(5 * time.Millisecond)
					atomic.AddInt32(&cur, -1)
					return Values{}, nil
				},
			})
		}
		res := Execute("bound", Spec{Trials: trials}, Options{Parallel: limit})
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		if int(max) > limit {
			t.Fatalf("observed %d concurrent trials with -parallel %d", max, limit)
		}
	}
}

// Execution order may vary but reported results stay in declaration
// order with timing metadata filled in.
func TestResultOrderAndTiming(t *testing.T) {
	spec := synthSpec(6)
	res := Execute("order", spec, Options{Parallel: 3})
	for i, tr := range res.Trials {
		if want := fmt.Sprintf("cell/%d", i); tr.Trial != want {
			t.Fatalf("result %d is %q, want %q", i, tr.Trial, want)
		}
		if tr.WallMS < 0 {
			t.Fatalf("trial %s missing wall-clock metadata", tr.Trial)
		}
		if tr.Seed != uint64(1000+i) {
			t.Fatalf("trial %s lost its seed: %d", tr.Trial, tr.Seed)
		}
	}
	if res.WallMS <= 0 {
		t.Fatal("spec wall-clock not recorded")
	}
}

// Duplicate trial ids would silently shadow results during assembly;
// Execute must refuse them up front.
func TestDuplicateTrialIDPanics(t *testing.T) {
	spec := Spec{Trials: []Trial{
		{ID: "same", Seed: 1, Run: func(uint64) (Values, error) { return Values{}, nil }},
		{ID: "same", Seed: 2, Run: func(uint64) (Values, error) { return Values{}, nil }},
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate trial id should panic")
		}
	}()
	Execute("dup", spec, Options{Parallel: 1})
}

func TestRegistry(t *testing.T) {
	Register("zz-test-spec", synthSpec(1))
	if _, ok := Lookup("zz-test-spec"); !ok {
		t.Fatal("registered spec not found")
	}
	ids := IDs()
	if ids[len(ids)-1] != "zz-test-spec" {
		t.Fatalf("registration order not preserved: %v", ids)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate registration should panic")
			}
		}()
		Register("zz-test-spec", synthSpec(1))
	}()
	if _, _, err := RunID("zz-no-such-spec", Options{}); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestReport(t *testing.T) {
	res := Execute("rep", synthSpec(3), Options{Parallel: 2})
	rep := NewReport(2, res.WallMS, []*Result{res})
	if rep.Parallel != 2 || len(rep.Trials) != 3 || len(rep.Specs) != 1 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	path := t.TempDir() + "/bench.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}
