package harness

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps experiment ids to specs, preserving registration
// order so listings and "run everything" follow the paper's ordering.
var registry = struct {
	sync.Mutex
	order []string
	specs map[string]Spec
}{specs: make(map[string]Spec)}

// Register adds a spec under id. Ids are stable public names (fig5,
// table1, ablation-mshr, ...); registering the same id twice is a
// programming error and panics.
func Register(id string, spec Spec) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.specs[id]; dup {
		panic(fmt.Sprintf("harness: duplicate experiment id %q", id))
	}
	registry.order = append(registry.order, id)
	registry.specs[id] = spec
}

// Lookup returns the spec registered under id.
func Lookup(id string) (Spec, bool) {
	registry.Lock()
	defer registry.Unlock()
	s, ok := registry.specs[id]
	return s, ok
}

// IDs returns every registered id in registration order.
func IDs() []string {
	registry.Lock()
	defer registry.Unlock()
	return append([]string(nil), registry.order...)
}

// RunID executes and assembles the spec registered under id.
func RunID(id string, opts Options) (Artifact, *Result, error) {
	spec, ok := Lookup(id)
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, nil, fmt.Errorf("harness: unknown experiment %q (known: %v)", id, known)
	}
	return Run(id, spec, opts)
}
