package workloads

import (
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/transport"
)

// kvReq is a record fetch or store request to the remote data server.
type kvReq struct {
	addr  uint64
	size  int
	write bool
	close bool
}

// kvResp carries the record back.
type kvResp struct{}

// DataServer serves record fetches from its node's local memory over a
// QPair — the explicit-communication counterpart of CRMA access that the
// §4.2 QPair configurations measure (and the shape Scale-out NUMA's
// remote gets take).
type DataServer struct {
	H  *memsys.Hierarchy
	QP *transport.QPair
	// Think is extra per-request server software time beyond the memory
	// access (request parse, dispatch).
	Think sim.Dur

	Served int64
}

// ServeKV starts the server loop; it exits on a close request.
func ServeKV(eng *sim.Engine, name string, s *DataServer) *sim.Completion {
	return eng.Go(name, func(p *sim.Proc) {
		for {
			m := s.QP.Recv(p)
			req := m.Data.(*kvReq)
			if req.close {
				return
			}
			if s.Think > 0 {
				p.Sleep(s.Think)
			}
			if req.write {
				s.H.Write(p, req.addr, req.size)
				s.H.Flush(p)
				s.QP.Send(p, 0, &kvResp{})
			} else {
				s.H.Read(p, req.addr, req.size)
				s.H.Flush(p)
				s.QP.Send(p, req.size, &kvResp{})
			}
			s.Served++
		}
	})
}

// RemoteKV is the client side: the key-to-address index lives locally
// (as in the paper's footnote: "the key is used to look up the address
// of the corresponding record"); records live on the server and move as
// explicit QPair messages.
type RemoteKV struct {
	Index *BTree // local index; its record arena mirrors server layout
	QP    *transport.QPair

	Gets int64
	Puts int64
}

// Get fetches one record synchronously: one request/response round trip.
func (r *RemoteKV) Get(p *sim.Proc, key int) {
	addr := r.Index.LookupAddr(p, key)
	r.Index.h.Flush(p)
	r.QP.Send(p, 16, &kvReq{addr: addr, size: r.Index.RecordSize()})
	r.QP.Recv(p)
	r.Index.h.Compute(p, opsPerRecordTouch)
	r.Gets++
}

// Put stores one record synchronously.
func (r *RemoteKV) Put(p *sim.Proc, key int) {
	addr := r.Index.LookupAddr(p, key)
	r.Index.h.Flush(p)
	r.QP.Send(p, 16+r.Index.RecordSize(), &kvReq{addr: addr, size: r.Index.RecordSize(), write: true})
	r.QP.Recv(p)
	r.Puts++
}

// OLTPMix runs the BerkeleyDB transaction shape over the QPair channel.
// Window is the number of outstanding requests the client sustains: 1
// models the synchronous legacy style; larger windows model the
// asynchronous (Scale-out NUMA-style) rewrite. BerkeleyDB's transactions
// are dependent — "the client must check the return status before
// processing the next query" — so its asynchronous variant still runs
// with an effective window of 1; PageRank-style workloads use real
// windows (see PageRankQPair).
func (r *RemoteKV) OLTPMix(p *sim.Proc, rng *sim.RNG, transactions int) {
	for i := 0; i < transactions; i++ {
		for g := 0; g < 4; g++ {
			r.Get(p, rng.Intn(r.Index.Keys()))
		}
		r.Put(p, rng.Intn(r.Index.Keys()))
	}
}

// Close stops the server loop.
func (r *RemoteKV) Close(p *sim.Proc) {
	r.QP.Send(p, 8, &kvReq{close: true})
}

// CloseServer stops a DataServer reached over qp (for clients that use
// the raw pair, like PageRankQPair).
func CloseServer(p *sim.Proc, qp *transport.QPair) {
	qp.Send(p, 8, &kvReq{close: true})
}
