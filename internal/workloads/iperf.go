package workloads

import (
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/vnic"
)

// IperfReport summarizes one traffic run.
type IperfReport struct {
	Packets int
	Bytes   int64
	Elapsed sim.Dur
}

// MBps reports payload throughput in megabytes per second.
func (r IperfReport) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// IperfBond blasts count packets of size payload bytes through a bonded
// interface (local NIC + VNICs) and reports goodput once every frame has
// drained — the Fig. 16b measurement.
func IperfBond(p *sim.Proc, bond *vnic.Bond, size, count int) IperfReport {
	start := p.Now()
	for i := 0; i < count; i++ {
		bond.Send(p, size)
	}
	if d := bond.Drained(); d > p.Now() {
		p.Sleep(d.Sub(p.Now()))
	}
	return IperfReport{Packets: count, Bytes: int64(size) * int64(count), Elapsed: p.Now().Sub(start)}
}

// iperfMsg is an opaque message payload.
type iperfMsg struct{ close bool }

// IperfQPairSink consumes messages until a close arrives.
func IperfQPairSink(eng *sim.Engine, qp *transport.QPair) *sim.Completion {
	return eng.Go("iperf-sink", func(p *sim.Proc) {
		for {
			m := qp.Recv(p)
			if im, ok := m.Data.(*iperfMsg); ok && im.close {
				return
			}
		}
	})
}

// IperfQPair streams count messages of size bytes over the QPair channel
// (message passing — the pattern QPair wins in Fig. 17).
func IperfQPair(p *sim.Proc, qp *transport.QPair, size, count int) IperfReport {
	start := p.Now()
	for i := 0; i < count; i++ {
		qp.Send(p, size, &iperfMsg{})
	}
	qp.Send(p, 8, &iperfMsg{close: true})
	return IperfReport{Packets: count, Bytes: int64(size) * int64(count), Elapsed: p.Now().Sub(start)}
}

// IperfCRMA emulates message passing over the CRMA channel: payload
// lines are posted stores into a remote buffer and the message becomes
// visible with a blocking flag write (the software convention CRMA
// messaging needs, since the channel has no doorbell semantics).
func IperfCRMA(p *sim.Proc, crma *transport.CRMA, window uint64, lineSize, size, count int) IperfReport {
	start := p.Now()
	lines := (size + lineSize - 1) / lineSize
	for i := 0; i < count; i++ {
		addr := window + uint64(i%64)*uint64(lines*lineSize)
		for l := 0; l < lines-1; l++ {
			crma.WriteAsync(addr+uint64(l*lineSize), lineSize)
		}
		// The final line carries the flag: blocking, to order the message.
		p.Await(crma.WriteAsync(addr+uint64((lines-1)*lineSize), lineSize))
	}
	return IperfReport{Packets: count, Bytes: int64(size) * int64(count), Elapsed: p.Now().Sub(start)}
}

// IperfRDMA emulates message passing over the RDMA channel: one
// descriptor-driven DMA per message, waiting for its completion
// interrupt (the per-message overhead that sinks RDMA in Fig. 17).
func IperfRDMA(p *sim.Proc, rdma *transport.RDMA, donor fabric.NodeID, base uint64, size, count int) IperfReport {
	start := p.Now()
	for i := 0; i < count; i++ {
		rdma.Write(p, donor, base+uint64(i%64)*uint64(size), size)
	}
	return IperfReport{Packets: count, Bytes: int64(size) * int64(count), Elapsed: p.Now().Sub(start)}
}
