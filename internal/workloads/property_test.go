package workloads

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/node"
	"repro/internal/sim"
)

// Property: the B-tree agrees with a map model under any random
// sequence of puts and gets.
func TestBTreeMatchesMapModelProperty(t *testing.T) {
	prop := func(seed uint64, opCount uint8) bool {
		n := int(opCount%50) + 10
		rng := sim.NewRNG(seed)
		r := propWrig(t)
		defer r.eng.Close()
		ok := true
		r.local.Run("model", func(p *sim.Proc) {
			const keys = 500
			kv := BuildBTree(p, r.local.Mem,
				NewArena(0, 16<<20), NewArena(16<<20, 16<<20), keys, 64, 8)
			model := make(map[int]uint64)
			for i := 0; i < n; i++ {
				k := rng.Intn(keys)
				if rng.Bool(0.5) {
					v := rng.Uint64()
					kv.Put(p, k, v)
					model[k] = v
				} else if kv.Get(p, k) != model[k] {
					ok = false
				}
			}
		})
		r.eng.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// propWrig builds a rig whose engine the caller closes explicitly
// (quick.Check runs many iterations; t.Cleanup would accumulate).
func propWrig(t *testing.T) *wrig {
	t.Helper()
	eng := sim.New()
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(11))
	return &wrig{
		eng:   eng,
		p:     p,
		local: node.New(eng, &p, net, 0, 1<<30),
		donor: node.New(eng, &p, net, 1, 1<<30),
	}
}

// Property: graph generators are deterministic — same seed, same graph.
func TestGraphGeneratorDeterminismProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		a := GenRMAT(sim.NewRNG(seed), 8, 4)
		b := GenRMAT(sim.NewRNG(seed), 8, 4)
		if a.N != b.N || len(a.Dst) != len(b.Dst) {
			return false
		}
		for i := range a.Dst {
			if a.Dst[i] != b.Dst[i] {
				return false
			}
		}
		u := GenUniform(sim.NewRNG(seed), 200, 4)
		v := GenUniform(sim.NewRNG(seed), 200, 4)
		for i := range u.Dst {
			if u.Dst[i] != v.Dst[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: every BFS parent edge exists in the graph, and the parent
// relation contains no cycles except the root's self-loop.
func TestBFSParentValidityProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		g := GenRMAT(sim.NewRNG(seed), 8, 6)
		r := propWrig(t)
		defer r.eng.Close()
		root := 0
		for u := range g.Deg {
			if g.Deg[u] > g.Deg[root] {
				root = u
			}
		}
		g.Place(NewArena(0, 4<<20), NewArena(4<<20, 8<<20), NewArena(16<<20, 4<<20))
		valid := true
		r.local.Run("bfs", func(p *sim.Proc) {
			parent, _ := BFS(p, r.local.Mem, g, root)
			for v, pa := range parent {
				if pa < 0 || v == root {
					continue
				}
				// The edge (pa -> v) must exist.
				found := false
				for _, w := range g.Adj(int(pa)) {
					if int(w) == v {
						found = true
						break
					}
				}
				if !found {
					valid = false
				}
			}
			// Walking parents from any visited vertex reaches the root.
			for v := range parent {
				if parent[v] < 0 {
					continue
				}
				cur, steps := v, 0
				for cur != root {
					cur = int(parent[cur])
					steps++
					if steps > g.N {
						valid = false
						break
					}
				}
			}
		})
		r.eng.Run()
		return valid
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: PageRank over the QPair channel produces identical ranks
// for any window size — pipelining must not change results.
func TestPageRankWindowInvarianceProperty(t *testing.T) {
	prop := func(w uint8) bool {
		window := int(w%24) + 1
		r := propWrig(t)
		defer r.eng.Close()
		g := GenUniform(sim.NewRNG(7), 300, 4)
		g.Place(NewArena(0, 2<<20), NewArena(0x1000_0000, 8<<20), NewArena(4<<20, 2<<20))
		qa, qb := newTestQPair(r)
		ServeKV(r.eng, "srv", &DataServer{H: r.donor.Mem, QP: qb})
		var viaQP []float64
		r.local.Run("pr", func(p *sim.Proc) {
			viaQP = PageRankQPair(p, r.local.Mem, g, qa, 1, window)
			CloseServer(p, qa)
		})
		r.eng.Run()
		// Reference: plain local PageRank on a fresh rig.
		ref := propWrig(t)
		defer ref.eng.Close()
		g2 := GenUniform(sim.NewRNG(7), 300, 4)
		g2.Place(NewArena(0, 2<<20), NewArena(4<<20, 8<<20), NewArena(16<<20, 2<<20))
		var local []float64
		ref.local.Run("pr", func(p *sim.Proc) {
			local = PageRank(p, ref.local.Mem, g2, 1)
		})
		ref.eng.Run()
		for i := range local {
			if local[i] != viaQP[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: grep's match count equals the brute-force count for random
// pattern densities.
func TestGrepCountProperty(t *testing.T) {
	prop := func(seed uint64, everyRaw uint8) bool {
		every := int(everyRaw)%200 + 16
		rng := sim.NewRNG(seed)
		pattern := []byte("ab")
		text := SynthText(rng, 1<<16, pattern, every)
		want := countMatches(text, pattern)
		r := propWrig(t)
		defer r.eng.Close()
		got := -1
		r.local.Run("grep", func(p *sim.Proc) {
			got = Grep(p, r.local.Mem, 0, text, pattern)
		})
		r.eng.Run()
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
