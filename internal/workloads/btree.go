package workloads

import (
	"fmt"

	"repro/internal/memsys"
	"repro/internal/sim"
)

// BTree is a bulk-loaded B-tree keyed store in the spirit of the
// BerkeleyDB workload: an index over dense integer keys plus a record
// heap. Index and records are placed through separate arenas, so an
// experiment can hold the index locally while records live in borrowed
// remote memory (the §4.2 configuration), put everything in one
// swap-backed region (Figs. 3 and 15), or keep it all local.
//
// Values are real Go data: Get returns what Put stored, and tests verify
// it — the timing model never shortcuts the semantics.
type BTree struct {
	h       *memsys.Hierarchy
	fanout  int
	nkeys   int
	recSize int

	// levels[0] is the root level; the last level is the leaves. Each
	// node occupies nodeBytes at base + idx*nodeBytes.
	levels    []btLevel
	nodeBytes uint64
	recBase   uint64

	values []uint64

	// Stats counts operations.
	Gets int64
	Puts int64
}

type btLevel struct {
	base  uint64
	nodes int
}

// entryBytes is the size of one (key, child/record pointer) pair.
const entryBytes = 16

// BuildBTree bulk-loads a tree of nkeys dense keys with the given record
// size. Index nodes are allocated from indexArena, records from
// recordArena. The build streams through both arenas (writes), charging
// the construction cost like a real loader would.
func BuildBTree(p *sim.Proc, h *memsys.Hierarchy, indexArena, recordArena *Arena,
	nkeys, recSize, fanout int) *BTree {
	return buildBTree(p, h, indexArena, recordArena, nkeys, recSize, fanout, true)
}

// BuildBTreeIndex builds only the index side: record addresses are
// computed against recordArena's space but never written — the records
// belong to a remote data server (the QPair configurations of §4.2).
func BuildBTreeIndex(p *sim.Proc, h *memsys.Hierarchy, indexArena, recordArena *Arena,
	nkeys, recSize, fanout int) *BTree {
	return buildBTree(p, h, indexArena, recordArena, nkeys, recSize, fanout, false)
}

func buildBTree(p *sim.Proc, h *memsys.Hierarchy, indexArena, recordArena *Arena,
	nkeys, recSize, fanout int, writeRecords bool) *BTree {
	if nkeys <= 0 || fanout < 2 {
		panic(fmt.Sprintf("workloads: bad btree shape n=%d fanout=%d", nkeys, fanout))
	}
	t := &BTree{
		h:         h,
		fanout:    fanout,
		nkeys:     nkeys,
		recSize:   recSize,
		nodeBytes: uint64(fanout * entryBytes),
		values:    make([]uint64, nkeys),
	}
	// Leaves first, then shrink toward the root.
	var sizes []int
	n := (nkeys + fanout - 1) / fanout
	for {
		sizes = append(sizes, n)
		if n == 1 {
			break
		}
		n = (n + fanout - 1) / fanout
	}
	// levels stores root first.
	for i := len(sizes) - 1; i >= 0; i-- {
		lv := btLevel{nodes: sizes[i]}
		lv.base = indexArena.Alloc(uint64(sizes[i])*t.nodeBytes, 64)
		t.levels = append(t.levels, lv)
	}
	t.recBase = recordArena.Alloc(uint64(nkeys)*uint64(recSize), 64)

	// Streaming build: write every node and record once.
	for _, lv := range t.levels {
		bytes := uint64(lv.nodes) * t.nodeBytes
		for off := uint64(0); off < bytes; off += 4096 {
			chunk := bytes - off
			if chunk > 4096 {
				chunk = 4096
			}
			h.Write(p, lv.base+off, int(chunk))
		}
	}
	if writeRecords {
		total := uint64(nkeys) * uint64(recSize)
		for off := uint64(0); off < total; off += 4096 {
			chunk := total - off
			if chunk > 4096 {
				chunk = 4096
			}
			h.Write(p, t.recBase+off, int(chunk))
		}
	}
	h.Compute(p, int64(nkeys)*20)
	return t
}

// Depth reports the number of index levels.
func (t *BTree) Depth() int { return len(t.levels) }

// Keys reports the key count.
func (t *BTree) Keys() int { return t.nkeys }

// RecordAddr reports the simulated address of a key's record.
func (t *BTree) RecordAddr(key int) uint64 {
	return t.recBase + uint64(key)*uint64(t.recSize)
}

// RecordSize reports the record payload size.
func (t *BTree) RecordSize() int { return t.recSize }

// LookupAddr walks the index from root to leaf and returns the record
// address for key. Each level costs a node touch (two probes of the
// binary search landing in up to two cache lines) plus compare work.
func (t *BTree) LookupAddr(p *sim.Proc, key int) uint64 {
	if key < 0 || key >= t.nkeys {
		panic(fmt.Sprintf("workloads: key %d out of range", key))
	}
	div := 1
	for i := 0; i < len(t.levels)-1; i++ {
		div *= t.fanout
	}
	for _, lv := range t.levels {
		idx := key / max(div, 1) % max(lv.nodes, 1)
		if idx >= lv.nodes {
			idx = lv.nodes - 1
		}
		nodeAddr := lv.base + uint64(idx)*t.nodeBytes
		// Binary search: probe two spots in the node.
		t.h.Read(p, nodeAddr+uint64(t.fanout/2*entryBytes), entryBytes)
		t.h.Read(p, nodeAddr+uint64(t.fanout/4*entryBytes), entryBytes)
		t.h.Compute(p, opsPerBTreeProbe)
		div /= t.fanout
	}
	return t.RecordAddr(key)
}

// Get looks a key up and reads its record, returning the stored value.
func (t *BTree) Get(p *sim.Proc, key int) uint64 {
	addr := t.LookupAddr(p, key)
	t.h.Read(p, addr, t.recSize)
	t.h.Compute(p, opsPerRecordTouch)
	t.Gets++
	return t.values[key]
}

// Put looks a key up and overwrites its record with value.
func (t *BTree) Put(p *sim.Proc, key int, value uint64) {
	addr := t.LookupAddr(p, key)
	t.h.Write(p, addr, t.recSize)
	t.h.Compute(p, opsPerRecordTouch)
	t.values[key] = value
	t.Puts++
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// OLTPMix runs the paper's BerkeleyDB transaction shape: per
// transaction, four random gets and one random put (an 80/20 read-write
// mix, "typical for OLTP databases"). It returns a checksum of the
// values read so the work cannot be optimized away.
func (t *BTree) OLTPMix(p *sim.Proc, rng *sim.RNG, transactions int) uint64 {
	var sum uint64
	for i := 0; i < transactions; i++ {
		for g := 0; g < 4; g++ {
			sum += t.Get(p, rng.Intn(t.nkeys))
		}
		t.Put(p, rng.Intn(t.nkeys), sum)
	}
	return sum
}
