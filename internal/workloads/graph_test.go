package workloads

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/transport"
)

func TestGenUniformShape(t *testing.T) {
	g := GenUniform(sim.NewRNG(1), 1000, 6)
	if g.N != 1000 || g.Edges() != 6000 {
		t.Fatalf("n=%d e=%d", g.N, g.Edges())
	}
	// CSR invariants.
	if g.Row[0] != 0 || int(g.Row[g.N]) != g.Edges() {
		t.Fatal("row offsets corrupt")
	}
	for u := 0; u < g.N; u++ {
		if g.Row[u] > g.Row[u+1] {
			t.Fatal("row offsets not monotone")
		}
		for _, v := range g.Adj(u) {
			if v < 0 || int(v) >= g.N {
				t.Fatalf("edge target %d out of range", v)
			}
		}
	}
}

func TestGenRMATIsSkewed(t *testing.T) {
	g := GenRMAT(sim.NewRNG(2), 10, 8)
	if g.N != 1024 || g.Edges() != 8192 {
		t.Fatalf("n=%d e=%d", g.N, g.Edges())
	}
	// R-MAT concentrates degree: the max out-degree should far exceed
	// the average (8).
	var maxDeg int32
	for _, d := range g.Deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 32 {
		t.Fatalf("max degree %d too small for R-MAT skew", maxDeg)
	}
}

func TestPageRankConverges(t *testing.T) {
	r := newWrig(t)
	g := GenUniform(sim.NewRNG(3), 2000, 5)
	g.Place(NewArena(0, 16<<20), NewArena(16<<20, 64<<20), NewArena(96<<20, 16<<20))
	var ranks []float64
	r.local.Run("pr", func(p *sim.Proc) {
		ranks = PageRank(p, r.local.Mem, g, 3)
	})
	r.eng.Run()
	sum := 0.0
	for _, rk := range ranks {
		if rk < 0 {
			t.Fatal("negative rank")
		}
		sum += rk
	}
	if math.Abs(sum-1.0) > 0.2 {
		t.Fatalf("ranks sum to %.3f, want ~1 (dangling mass aside)", sum)
	}
}

func TestPageRankQPairMatchesLocalResults(t *testing.T) {
	r := newWrig(t)
	g := GenUniform(sim.NewRNG(3), 500, 5)
	g.Place(NewArena(0, 4<<20), NewArena(4<<20, 16<<20), NewArena(24<<20, 4<<20))
	qa, qb := transport.ConnectQPair(r.local.EP, r.donor.EP, transport.QPairConfig{})
	server := &DataServer{H: r.donor.Mem, QP: qb}
	ServeKV(r.eng, "edge-server", server)

	var viaQP, local []float64
	r.local.Run("pr", func(p *sim.Proc) {
		viaQP = PageRankQPair(p, r.local.Mem, g, qa, 2, 8)
		local = PageRank(p, r.local.Mem, g, 2)
		qa.Send(p, 8, &kvReq{close: true})
	})
	r.eng.Run()
	for i := range local {
		if math.Abs(local[i]-viaQP[i]) > 1e-12 {
			t.Fatalf("rank[%d] differs: %v vs %v", i, local[i], viaQP[i])
		}
	}
}

func TestPageRankAsyncWindowHidesLatency(t *testing.T) {
	run := func(window int) sim.Dur {
		r := newWrig(t)
		g := GenUniform(sim.NewRNG(3), 800, 5)
		g.Place(NewArena(0, 4<<20), NewArena(4<<20, 32<<20), NewArena(40<<20, 4<<20))
		qa, qb := transport.ConnectQPair(r.local.EP, r.donor.EP, transport.QPairConfig{})
		ServeKV(r.eng, "edge-server", &DataServer{H: r.donor.Mem, QP: qb})
		var elapsed sim.Dur
		r.local.Run("pr", func(p *sim.Proc) {
			t0 := p.Now()
			PageRankQPair(p, r.local.Mem, g, qa, 1, window)
			elapsed = p.Now().Sub(t0)
			qa.Send(p, 8, &kvReq{close: true})
		})
		r.eng.Run()
		return elapsed
	}
	sync := run(1)
	async := run(16)
	// §4.2.1: async communication delivers a large win for PageRank.
	if float64(async) > 0.7*float64(sync) {
		t.Fatalf("async (%v) should be well under sync (%v)", async, sync)
	}
}

func TestConnectedComponentsCorrect(t *testing.T) {
	r := newWrig(t)
	// Two cliques joined nowhere: labels must settle to two groups.
	// Build edges by hand: 0-1-2 cycle and 3-4 pair (undirected pairs).
	src := []int32{0, 1, 2, 1, 2, 0, 3, 4}
	dst := []int32{1, 2, 0, 0, 1, 2, 4, 3}
	g := buildCSR(5, src, dst, "test")
	g.Place(NewArena(0, 1<<20), NewArena(1<<20, 1<<20), NewArena(2<<20, 1<<20))
	var labels []int32
	r.local.Run("cc", func(p *sim.Proc) {
		labels = ConnectedComponents(p, r.local.Mem, g)
	})
	r.eng.Run()
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 0 {
		t.Fatalf("first component labels: %v", labels[:3])
	}
	if labels[3] != 3 || labels[4] != 3 {
		t.Fatalf("second component labels: %v", labels[3:])
	}
}

func TestBFSVisitsReachableSet(t *testing.T) {
	r := newWrig(t)
	g := GenRMAT(sim.NewRNG(7), 9, 8)
	g.Place(NewArena(0, 4<<20), NewArena(4<<20, 16<<20), NewArena(24<<20, 4<<20))
	var parents []int32
	var visited int
	r.local.Run("bfs", func(p *sim.Proc) {
		// Root at the largest-degree vertex, per Graph500 practice of
		// sampling roots with edges.
		root := 0
		for u := range g.Deg {
			if g.Deg[u] > g.Deg[root] {
				root = u
			}
		}
		parents, visited = BFS(p, r.local.Mem, g, root)
	})
	r.eng.Run()
	if visited < 2 {
		t.Fatal("BFS visited almost nothing")
	}
	count := 0
	for _, pa := range parents {
		if pa >= 0 {
			count++
		}
	}
	if count != visited {
		t.Fatalf("parent entries %d != visited %d", count, visited)
	}
}

func TestGrepCountsRealMatches(t *testing.T) {
	r := newWrig(t)
	rng := sim.NewRNG(4)
	pattern := []byte("venice")
	text := SynthText(rng, 1<<20, pattern, 4096)
	want := countMatches(text, pattern)
	if want < 200 {
		t.Fatalf("synthetic text has only %d matches", want)
	}
	var got int
	r.local.Run("grep", func(p *sim.Proc) {
		got = Grep(p, r.local.Mem, 0, text, pattern)
	})
	r.eng.Run()
	if got != want {
		t.Fatalf("grep found %d, want %d", got, want)
	}
}

func TestFFTComputeParseval(t *testing.T) {
	rng := sim.NewRNG(8)
	n := 1024
	data := make([]complex128, n)
	var timeEnergy float64
	for i := range data {
		re := rng.Float64()*2 - 1
		data[i] = complex(re, 0)
		timeEnergy += re * re
	}
	FFTCompute(data)
	var freqEnergy float64
	for _, c := range data {
		freqEnergy += real(c)*real(c) + imag(c)*imag(c)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy)/timeEnergy > 1e-9 {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestFFTLocalCPUChargesTime(t *testing.T) {
	r := newWrig(t)
	data := make([]complex128, 4096)
	data[1] = 1
	var elapsed sim.Dur
	r.local.Run("fft", func(p *sim.Proc) {
		t0 := p.Now()
		FFTLocalCPU(p, r.local.Mem, 0, data)
		r.local.Mem.Flush(p)
		elapsed = p.Now().Sub(t0)
	})
	r.eng.Run()
	if elapsed <= 0 {
		t.Fatal("FFT charged no time")
	}
	// 4096 points * 12 stages * 10 ops at 0.667 GHz is ~0.7ms of compute
	// alone; total must exceed that.
	if elapsed < 500*sim.Microsecond {
		t.Fatalf("FFT cost %v, implausibly cheap", elapsed)
	}
}
