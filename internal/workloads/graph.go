package workloads

import (
	"fmt"
	"sort"

	"repro/internal/memsys"
	"repro/internal/sim"
)

// Graph is a CSR-layout directed graph with simulated placement: the row
// offsets, edge targets, and per-vertex data arrays each get addresses
// from (possibly different) arenas, so any of them can live in borrowed
// remote memory or a swap-backed range.
type Graph struct {
	N    int
	Row  []int32 // len N+1
	Dst  []int32 // len E
	Deg  []int32 // convenience: out-degree per vertex
	Name string

	RowBase  uint64
	EdgeBase uint64
	DataBase uint64 // 8 B per vertex (ranks, labels, parents, ...)
}

// Edges reports the edge count.
func (g *Graph) Edges() int { return len(g.Dst) }

// Adj returns the real adjacency slice of u.
func (g *Graph) Adj(u int) []int32 { return g.Dst[g.Row[u]:g.Row[u+1]] }

// Place assigns simulated addresses from the arenas. row and data are
// often local while edges live remotely (the §4.2 configuration).
func (g *Graph) Place(rowArena, edgeArena, dataArena *Arena) {
	g.RowBase = rowArena.Alloc(uint64(len(g.Row))*4, 64)
	g.EdgeBase = edgeArena.Alloc(uint64(len(g.Dst))*4, 64)
	g.DataBase = dataArena.Alloc(uint64(g.N)*8, 64)
}

// edgeAddr reports the simulated address of edge index e.
func (g *Graph) edgeAddr(e int32) uint64 { return g.EdgeBase + uint64(e)*4 }

// dataAddr reports the simulated address of vertex v's data word.
func (g *Graph) dataAddr(v int32) uint64 { return g.DataBase + uint64(v)*8 }

// buildCSR finalizes a graph from an edge list.
func buildCSR(n int, src, dst []int32, name string) *Graph {
	g := &Graph{N: n, Name: name}
	g.Row = make([]int32, n+1)
	for _, s := range src {
		g.Row[s+1]++
	}
	for i := 0; i < n; i++ {
		g.Row[i+1] += g.Row[i]
	}
	g.Dst = make([]int32, len(dst))
	cursor := make([]int32, n)
	copy(cursor, g.Row[:n])
	for i, s := range src {
		g.Dst[cursor[s]] = dst[i]
		cursor[s]++
	}
	// Sort each adjacency list for determinism and locality.
	for u := 0; u < n; u++ {
		adj := g.Dst[g.Row[u]:g.Row[u+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	g.Deg = make([]int32, n)
	for u := 0; u < n; u++ {
		g.Deg[u] = g.Row[u+1] - g.Row[u]
	}
	return g
}

// GenUniform generates a uniform random directed graph with n vertices
// and ~avgDeg out-edges per vertex (the PageRank input shape: the paper
// uses 1,488,712 vertices and 8,678,566 edges, degree ≈ 5.8).
func GenUniform(rng *sim.RNG, n, avgDeg int) *Graph {
	e := n * avgDeg
	src := make([]int32, e)
	dst := make([]int32, e)
	for i := 0; i < e; i++ {
		src[i] = int32(i / avgDeg)
		dst[i] = int32(rng.Intn(n))
	}
	return buildCSR(n, src, dst, fmt.Sprintf("uniform(n=%d,d=%d)", n, avgDeg))
}

// GenRMAT generates a Graph500-style R-MAT graph with 2^scale vertices
// and edgeFactor*2^scale edges, using the standard (A,B,C,D) =
// (0.57, 0.19, 0.19, 0.05) partition probabilities.
func GenRMAT(rng *sim.RNG, scale, edgeFactor int) *Graph {
	n := 1 << scale
	e := n * edgeFactor
	src := make([]int32, e)
	dst := make([]int32, e)
	const a, b, c = 0.57, 0.19, 0.19
	for i := 0; i < e; i++ {
		var s, d int
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a: // top-left: neither bit set
			case r < a+b:
				d |= 1 << bit
			case r < a+b+c:
				s |= 1 << bit
			default:
				s |= 1 << bit
				d |= 1 << bit
			}
		}
		src[i] = int32(s)
		dst[i] = int32(d)
	}
	return buildCSR(n, src, dst, fmt.Sprintf("rmat(scale=%d,ef=%d)", scale, edgeFactor))
}

// readRow charges the row-offset touches for vertex u (sequential,
// almost always cached).
func (g *Graph) readRow(p *sim.Proc, h *memsys.Hierarchy, u int) {
	h.Read(p, g.RowBase+uint64(u)*4, 8)
}

// readAdj charges the streaming read of u's adjacency list and returns
// the real slice.
func (g *Graph) readAdj(p *sim.Proc, h *memsys.Hierarchy, u int) []int32 {
	adj := g.Adj(u)
	if len(adj) > 0 {
		h.Read(p, g.edgeAddr(g.Row[u]), len(adj)*4)
	}
	return adj
}
