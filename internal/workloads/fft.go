package workloads

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/accel"
	"repro/internal/memsys"
	"repro/internal/sim"
)

// FFTCompute performs a real in-place radix-2 Cooley-Tukey FFT. n must
// be a power of two. (The SPLASH2 FFT workload — used both as the CPU
// baseline and to validate that offloaded "XFFT" results would be
// reproducible.)
func FFTCompute(data []complex128) {
	n := len(data)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("workloads: FFT size %d not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			data[i], data[j] = data[j], data[i]
		}
		m := n >> 1
		for ; j&m != 0; m >>= 1 {
			j &^= m
		}
		j |= m
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		w := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			wk := complex(1, 0)
			for k := 0; k < half; k++ {
				a := data[start+k]
				b := data[start+k+half] * wk
				data[start+k] = a + b
				data[start+k+half] = a - b
				wk *= w
			}
		}
	}
}

// FFTLocalCPU runs a real FFT of n complex points whose array sits at
// base, charging per-stage streaming memory traffic and butterfly
// compute. It returns the transformed data.
func FFTLocalCPU(p *sim.Proc, h *memsys.Hierarchy, base uint64, data []complex128) []complex128 {
	n := len(data)
	stages := 0
	for s := 1; s < n; s <<= 1 {
		stages++
	}
	bytes := uint64(n) * 16
	for s := 0; s < stages; s++ {
		// Each stage streams the whole array (read + write).
		for off := uint64(0); off < bytes; off += 4096 {
			chunk := bytes - off
			if chunk > 4096 {
				chunk = 4096
			}
			h.Read(p, base+off, int(chunk))
			h.Write(p, base+off, int(chunk))
		}
		h.Compute(p, int64(n)*10)
	}
	FFTCompute(data)
	return data
}

// FFTFarm offloads a dataset of totalBytes across a local accelerator
// plus any number of remote handles, splitting it evenly and running all
// devices concurrently — the Fig. 16a experiment shape (LA+kRA). It
// returns when every share completes.
func FFTFarm(p *sim.Proc, eng *sim.Engine, local *accel.Accelerator,
	remotes []*accel.RemoteHandle, totalBytes int) {
	devices := 1 + len(remotes)
	share := totalBytes / devices
	if share < 1 {
		share = 1
	}
	g := sim.NewGroup(eng)
	g.Add(devices)
	eng.Go("fft-local", func(q *sim.Proc) {
		local.RunLocal(q, share)
		g.Done()
	})
	for i, h := range remotes {
		h := h
		eng.Go(fmt.Sprintf("fft-remote%d", i), func(q *sim.Proc) {
			h.Run(q, "fft", share)
			g.Done()
		})
	}
	g.Wait(p)
}
