package workloads

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/memsys"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/transport"
)

// wrig is a two-node workload test rig.
type wrig struct {
	eng   *sim.Engine
	p     sim.Params
	local *node.Node
	donor *node.Node
}

func newWrig(t *testing.T) *wrig {
	t.Helper()
	eng := sim.New()
	t.Cleanup(eng.Close)
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(11))
	return &wrig{
		eng:   eng,
		p:     p,
		local: node.New(eng, &p, net, 0, 1<<30),
		donor: node.New(eng, &p, net, 1, 1<<30),
	}
}

func TestArenaAllocation(t *testing.T) {
	a := NewArena(0x1000, 0x1000)
	first := a.Alloc(100, 64)
	if first != 0x1000 {
		t.Fatalf("first = %#x", first)
	}
	second := a.Alloc(8, 64)
	if second != 0x1080 {
		t.Fatalf("second = %#x, want aligned past first", second)
	}
	if a.Used() != 0x88 {
		t.Fatalf("used = %#x", a.Used())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted arena did not panic")
		}
	}()
	a.Alloc(0x10000, 1)
}

func TestBTreeSemantics(t *testing.T) {
	r := newWrig(t)
	idx := NewArena(0, 64<<20)
	rec := NewArena(64<<20, 256<<20)
	r.local.Run("kv", func(p *sim.Proc) {
		kv := BuildBTree(p, r.local.Mem, idx, rec, 10000, 64, 16)
		if kv.Depth() < 3 {
			t.Errorf("depth = %d, want >= 3 for 10k keys fanout 16", kv.Depth())
		}
		kv.Put(p, 42, 0xDEAD)
		kv.Put(p, 9999, 0xBEEF)
		if got := kv.Get(p, 42); got != 0xDEAD {
			t.Errorf("Get(42) = %#x", got)
		}
		if got := kv.Get(p, 9999); got != 0xBEEF {
			t.Errorf("Get(9999) = %#x", got)
		}
		if got := kv.Get(p, 7); got != 0 {
			t.Errorf("Get(7) = %#x, want zero", got)
		}
		if kv.Gets != 3 || kv.Puts != 2 {
			t.Errorf("counted gets=%d puts=%d", kv.Gets, kv.Puts)
		}
	})
	r.eng.Run()
}

func TestBTreeRemoteRecordsCostMore(t *testing.T) {
	r := newWrig(t)
	// Local config: index + records local.
	// Remote config: index local, records in a CRMA window.
	const nkeys = 20000
	win := r.local.NextHotplugWindow(512 << 20)
	if _, err := r.local.EP.CRMA.Map(win, 512<<20, 1, 0); err != nil {
		t.Fatal(err)
	}
	r.donor.EP.CRMA.Export(0, win, 512<<20, 0)
	if err := r.local.Mem.AS.Add(&memsys.Region{Base: win, Size: 512 << 20,
		Backend: &memsys.CRMARemote{CRMA: r.local.EP.CRMA, Donor: 1}}); err != nil {
		t.Fatal(err)
	}

	var localT, remoteT sim.Dur
	r.local.Run("compare", func(p *sim.Proc) {
		rng := sim.NewRNG(5)
		kvLocal := BuildBTree(p, r.local.Mem,
			NewArena(0, 64<<20), NewArena(64<<20, 256<<20), nkeys, 64, 16)
		t0 := p.Now()
		kvLocal.OLTPMix(p, rng, 400)
		r.local.Mem.Flush(p)
		localT = p.Now().Sub(t0)

		kvRemote := BuildBTree(p, r.local.Mem,
			NewArena(320<<20, 64<<20), NewArena(win, 256<<20), nkeys, 64, 16)
		t1 := p.Now()
		kvRemote.OLTPMix(p, rng, 400)
		r.local.Mem.Flush(p)
		remoteT = p.Now().Sub(t1)
	})
	r.eng.Run()
	ratio := float64(remoteT) / float64(localT)
	// The paper's on-chip CRMA config lands at 2-3.5x for BerkeleyDB.
	if ratio < 1.5 || ratio > 8 {
		t.Fatalf("remote/local = %.2f (%v vs %v), want a 1.5-8x slowdown", ratio, remoteT, localT)
	}
}

func TestRemoteKVOverQPair(t *testing.T) {
	r := newWrig(t)
	qa, qb := transport.ConnectQPair(r.local.EP, r.donor.EP, transport.QPairConfig{})
	const nkeys = 5000
	// Server holds records in its local memory at the same addresses the
	// client index computes.
	server := &DataServer{H: r.donor.Mem, QP: qb, Think: 500 * sim.Nanosecond}
	ServeKV(r.eng, "kv-server", server)

	var elapsed sim.Dur
	r.local.Run("client", func(p *sim.Proc) {
		idx := NewArena(0, 64<<20)
		rec := NewArena(64<<20, 64<<20)
		kv := BuildBTree(p, r.local.Mem, idx, rec, nkeys, 64, 16)
		rkv := &RemoteKV{Index: kv, QP: qa}
		rng := sim.NewRNG(5)
		t0 := p.Now()
		rkv.OLTPMix(p, rng, 100)
		elapsed = p.Now().Sub(t0)
		rkv.Close(p)
		if rkv.Gets != 400 || rkv.Puts != 100 {
			t.Errorf("gets=%d puts=%d", rkv.Gets, rkv.Puts)
		}
	})
	r.eng.Run()
	if server.Served != 500 {
		t.Fatalf("server served %d, want 500", server.Served)
	}
	// Every operation pays a QPair round trip: 500 ops need at least
	// 500 * (4 SW crossings + 2 hops).
	minPerOp := 4*r.p.QPairSWSend + 2*r.p.HopLatency()
	if elapsed < 500*minPerOp/1 {
		t.Fatalf("elapsed %v below QPair floor", elapsed)
	}
}
