package workloads

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/transport"
)

// newTestQPair wires an unthrottled queue pair between the rig's nodes.
func newTestQPair(r *wrig) (*transport.QPair, *transport.QPair) {
	return transport.ConnectQPair(r.local.EP, r.donor.EP, transport.QPairConfig{})
}

func TestRedisCacheLRUAndCapacity(t *testing.T) {
	r := newWrig(t)
	cache := NewRedisCache(r.local.Mem, 4096, NewArena(0, 16*4096))
	if cache.CapacityEntries() != 16 {
		t.Fatalf("capacity = %d", cache.CapacityEntries())
	}
	r.local.Run("cache", func(p *sim.Proc) {
		for k := 0; k < 20; k++ {
			cache.Set(p, k, uint64(k))
		}
		if cache.Len() != 16 {
			t.Errorf("len = %d, want 16 after eviction", cache.Len())
		}
		// Keys 0-3 were evicted; 4-19 resident.
		if _, ok := cache.Get(p, 0); ok {
			t.Error("key 0 should have been evicted")
		}
		if v, ok := cache.Get(p, 19); !ok || v != 19 {
			t.Errorf("key 19: %v %v", v, ok)
		}
		// Touch key 4 then insert: key 5 becomes the LRU victim.
		if _, ok := cache.Get(p, 4); !ok {
			t.Error("key 4 missing")
		}
		cache.Set(p, 100, 100)
		if _, ok := cache.Get(p, 5); ok {
			t.Error("key 5 should have been evicted after key 4 was touched")
		}
	})
	r.eng.Run()
}

func TestTierDBMissRateFallsWithCapacity(t *testing.T) {
	run := func(entries int) (missRatio float64, elapsed sim.Dur) {
		r := newWrig(t)
		cache := NewRedisCache(r.local.Mem, 4096, NewArena(0, uint64(entries)*4096))
		db := &TierDB{
			Redis:          cache,
			MySQL:          &MySQLModel{QueryTime: 10 * sim.Millisecond},
			ClientOverhead: 100 * sim.Microsecond,
		}
		r.local.Run("queries", func(p *sim.Proc) {
			// Warm the cache first, as the paper does ("measured after
			// proper initialization and warmup"), then measure.
			db.RunQueries(p, sim.NewRNG(99), 1000, 2000)
			h0, m0 := cache.Hits, cache.Misses
			elapsed = db.RunQueries(p, sim.NewRNG(6), 1000, 3000)
			hits, misses := cache.Hits-h0, cache.Misses-m0
			missRatio = float64(misses) / float64(hits+misses)
		})
		r.eng.Run()
		return missRatio, elapsed
	}
	smallMiss, smallT := run(100) // 10% of keyspace
	bigMiss, bigT := run(950)     // 95% of keyspace
	if bigMiss >= smallMiss {
		t.Fatalf("miss ratio did not fall: %.2f -> %.2f", smallMiss, bigMiss)
	}
	if bigT >= smallT {
		t.Fatalf("more cache did not speed queries: %v -> %v", smallT, bigT)
	}
	// With 95% coverage the steady-state miss rate approaches 5%.
	if bigMiss > 0.25 {
		t.Fatalf("big-cache miss ratio %.2f too high", bigMiss)
	}
}

func TestTierDBReturnsAuthoritativeValues(t *testing.T) {
	r := newWrig(t)
	cache := NewRedisCache(r.local.Mem, 4096, NewArena(0, 64*4096))
	db := &TierDB{Redis: cache, MySQL: &MySQLModel{QueryTime: sim.Millisecond}}
	r.local.Run("verify", func(p *sim.Proc) {
		// First access misses, second hits; both must return the same value.
		a := db.Query(p, 7)
		b := db.Query(p, 7)
		if a != b || a != mysqlValue(7) {
			t.Errorf("values: %x %x want %x", a, b, mysqlValue(7))
		}
	})
	r.eng.Run()
	if cache.Hits != 1 || cache.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", cache.Hits, cache.Misses)
	}
	if db.MySQL.Queries != 1 {
		t.Fatalf("mysql queries = %d", db.MySQL.Queries)
	}
}

func TestRedisGrowsWithAddedArena(t *testing.T) {
	r := newWrig(t)
	cache := NewRedisCache(r.local.Mem, 4096, NewArena(0, 8*4096))
	cache.AddArena(NewArena(1<<20, 8*4096))
	if cache.CapacityEntries() != 16 {
		t.Fatalf("capacity after growth = %d", cache.CapacityEntries())
	}
}

func TestIperfQPairThroughput(t *testing.T) {
	r := newWrig(t)
	qa, qb := newTestQPair(r)
	IperfQPairSink(r.eng, qb)
	var rep IperfReport
	r.local.Run("iperf", func(p *sim.Proc) {
		rep = IperfQPair(p, qa, 256, 500)
	})
	r.eng.Run()
	if rep.Packets != 500 || rep.Bytes != 500*256 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.MBps() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestIperfChannelOrderingMatchesFig17(t *testing.T) {
	// Message passing: QPair must beat CRMA emulation, which must beat
	// per-message RDMA (Fig. 17 right group).
	r := newWrig(t)
	qa, qb := newTestQPair(r)
	IperfQPairSink(r.eng, qb)
	win := r.local.NextHotplugWindow(1 << 20)
	if _, err := r.local.EP.CRMA.Map(win, 1<<20, 1, 0); err != nil {
		t.Fatal(err)
	}
	r.donor.EP.CRMA.Export(0, win, 1<<20, 0)

	var qpT, crmaT, rdmaT sim.Dur
	r.local.Run("iperf3", func(p *sim.Proc) {
		t0 := p.Now()
		IperfQPair(p, qa, 256, 300)
		qpT = p.Now().Sub(t0)
		t1 := p.Now()
		IperfCRMA(p, r.local.EP.CRMA, win, r.p.CacheLine, 256, 300)
		crmaT = p.Now().Sub(t1)
		t2 := p.Now()
		IperfRDMA(p, r.local.EP.RDMA, 1, 0x100000, 256, 300)
		rdmaT = p.Now().Sub(t2)
	})
	r.eng.Run()
	if !(qpT < crmaT && crmaT < rdmaT) {
		t.Fatalf("ordering wrong: qpair=%v crma=%v rdma=%v", qpT, crmaT, rdmaT)
	}
}
