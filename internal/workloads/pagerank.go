package workloads

import (
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/transport"
)

// PageRank runs iters iterations of pull-style PageRank over the placed
// graph, charging edge streaming and random rank accesses through the
// hierarchy, and returns the final ranks (real values — they sum to ~1).
func PageRank(p *sim.Proc, h *memsys.Hierarchy, g *Graph, iters int) []float64 {
	const damping = 0.85
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range rank {
		rank[i] = 1.0 / float64(g.N)
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(g.N)
		for u := 0; u < g.N; u++ {
			g.readRow(p, h, u)
			adj := g.readAdj(p, h, u)
			sum := 0.0
			for _, v := range adj {
				// Random read of the in-neighbor's rank.
				h.Read(p, g.dataAddr(v), 8)
				d := g.Deg[v]
				if d == 0 {
					d = 1
				}
				sum += rank[v] / float64(d)
			}
			h.Compute(p, int64(len(adj))*opsPerEdge+opsPerVertex)
			next[u] = base + damping*sum
			// Sequential write of the new rank.
			h.Write(p, g.dataAddr(int32(u)), 8)
		}
		rank, next = next, rank
	}
	return rank
}

// PageRankQPair runs the same computation with the edge array fetched
// from a remote data server over the QPair channel. window is the number
// of outstanding adjacency fetches: 1 reproduces the synchronous legacy
// style; the paper's asynchronous rewrite (Scale-out NUMA style)
// pipelines many (§4.2.1: PageRank's "massive parallelism can be
// exploited to initiate multiple streams of communication").
func PageRankQPair(p *sim.Proc, h *memsys.Hierarchy, g *Graph, qp *transport.QPair,
	iters, window int) []float64 {
	if window < 1 {
		window = 1
	}
	const damping = 0.85
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range rank {
		rank[i] = 1.0 / float64(g.N)
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(g.N)
		inflight := 0
		u := 0
		issue := func(v int) {
			qp.Send(p, 16, &kvReq{addr: g.edgeAddr(g.Row[v]), size: len(g.Adj(v)) * 4})
			inflight++
		}
		complete := func(v int) {
			qp.Recv(p) // adjacency bytes arrive
			inflight--
			adj := g.Adj(v)
			sum := 0.0
			for _, w := range adj {
				h.Read(p, g.dataAddr(w), 8)
				d := g.Deg[w]
				if d == 0 {
					d = 1
				}
				sum += rank[w] / float64(d)
			}
			h.Compute(p, int64(len(adj))*opsPerEdge+opsPerVertex)
			next[v] = base + damping*sum
			h.Write(p, g.dataAddr(int32(v)), 8)
		}
		head := 0
		for u < g.N || inflight > 0 {
			for u < g.N && inflight < window {
				issue(u)
				u++
			}
			complete(head)
			head++
		}
		rank, next = next, rank
	}
	return rank
}

// ConnectedComponents runs label propagation until a fixed point,
// charging streaming edge reads and random label accesses, and returns
// the labels (real values). The access pattern is the contiguous-scan
// shape the paper attributes to Spark CC.
func ConnectedComponents(p *sim.Proc, h *memsys.Hierarchy, g *Graph) []int32 {
	labels, _ := ccRun(p, h, g, -1)
	return labels
}

// CCPasses runs exactly passes label-propagation sweeps — for controlled
// cross-channel comparisons where a convergence-dependent pass count
// would confound the measurement.
func CCPasses(p *sim.Proc, h *memsys.Hierarchy, g *Graph, passes int) []int32 {
	labels, _ := ccRun(p, h, g, passes)
	return labels
}

func ccRun(p *sim.Proc, h *memsys.Hierarchy, g *Graph, maxPasses int) ([]int32, int) {
	labels := make([]int32, g.N)
	for i := range labels {
		labels[i] = int32(i)
	}
	passes := 0
	for changed := true; changed && (maxPasses < 0 || passes < maxPasses); {
		changed = false
		passes++
		for u := 0; u < g.N; u++ {
			g.readRow(p, h, u)
			adj := g.readAdj(p, h, u)
			best := labels[u]
			for _, v := range adj {
				h.Read(p, g.dataAddr(v), 8)
				if labels[v] < best {
					best = labels[v]
				}
			}
			h.Compute(p, int64(len(adj))*opsPerEdge+opsPerVertex)
			if best != labels[u] {
				labels[u] = best
				h.Write(p, g.dataAddr(int32(u)), 8)
				changed = true
			}
		}
	}
	return labels, passes
}

// BFS runs a Graph500-style breadth-first search from root and returns
// the parent array and the number of visited vertices.
func BFS(p *sim.Proc, h *memsys.Hierarchy, g *Graph, root int) ([]int32, int) {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = int32(root)
	frontier := []int32{int32(root)}
	visited := 1
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			g.readRow(p, h, int(u))
			adj := g.readAdj(p, h, int(u))
			for _, v := range adj {
				// Random parent check + conditional write.
				h.Read(p, g.dataAddr(v), 8)
				if parent[v] == -1 {
					parent[v] = u
					h.Write(p, g.dataAddr(v), 8)
					next = append(next, v)
					visited++
				}
			}
			h.Compute(p, int64(len(adj))*opsPerEdge+opsPerVertex)
		}
		frontier = next
	}
	return parent, visited
}

// Grep streams a text region of size bytes, counting real occurrences of
// pattern in deterministic synthetic text — the Hadoop-Grep shape: pure
// sequential reads with modest per-byte compute.
func Grep(p *sim.Proc, h *memsys.Hierarchy, base uint64, text []byte, pattern []byte) int {
	count := 0
	const chunk = 4096
	for off := 0; off < len(text); off += chunk {
		end := off + chunk
		if end > len(text) {
			end = len(text)
		}
		h.Read(p, base+uint64(off), end-off)
		h.Compute(p, int64(end-off)*opsPerGrepByte)
		// Real match counting on the real bytes (overlap across chunk
		// boundaries handled by rescanning the seam).
		start := off - len(pattern) + 1
		if start < 0 {
			start = 0
		}
		count += countMatches(text[start:end], pattern)
		if off > 0 {
			count -= countMatches(text[start:off], pattern)
		}
	}
	return count
}

// countMatches counts (possibly overlapping) occurrences of pat in s.
func countMatches(s, pat []byte) int {
	if len(pat) == 0 || len(s) < len(pat) {
		return 0
	}
	n := 0
	for i := 0; i+len(pat) <= len(s); i++ {
		match := true
		for j := range pat {
			if s[i+j] != pat[j] {
				match = false
				break
			}
		}
		if match {
			n++
		}
	}
	return n
}

// SynthText builds deterministic pseudo-text with a known pattern
// density for Grep runs.
func SynthText(rng *sim.RNG, size int, pattern []byte, every int) []byte {
	text := make([]byte, size)
	for i := range text {
		text[i] = byte('a' + rng.Intn(26))
	}
	for i := 0; i+len(pattern) < size; i += every {
		copy(text[i:], pattern)
	}
	return text
}
