package workloads

import (
	"container/list"

	"repro/internal/memsys"
	"repro/internal/sim"
)

// RedisCache is the in-memory key/value cache of the Fig. 13 mini
// data-center: an LRU over fixed-size values whose storage is carved
// from arenas — local memory, borrowed remote memory, or a mix. Its
// capacity is whatever the arenas hold; adding a lease's arena grows the
// cache, which is exactly how the Fig. 14 sweep enlarges Redis.
type RedisCache struct {
	H         *memsys.Hierarchy
	ValueSize int

	arenas  []*Arena
	free    []uint64 // recycled value slots
	lru     *list.List
	entries map[int]*list.Element

	Hits   int64
	Misses int64
}

type redisEnt struct {
	key   int
	addr  uint64
	value uint64 // real stored value (checksum-sized)
}

// NewRedisCache builds an empty cache over the given storage arenas.
func NewRedisCache(h *memsys.Hierarchy, valueSize int, arenas ...*Arena) *RedisCache {
	return &RedisCache{
		H:         h,
		ValueSize: valueSize,
		arenas:    arenas,
		lru:       list.New(),
		entries:   make(map[int]*list.Element),
	}
}

// AddArena grows the cache with more storage (e.g. a new memory lease).
func (r *RedisCache) AddArena(a *Arena) { r.arenas = append(r.arenas, a) }

// CapacityEntries reports how many values the cache can hold in total.
func (r *RedisCache) CapacityEntries() int {
	cap := len(r.free) + r.lru.Len()
	for _, a := range r.arenas {
		cap += int(a.Remaining() / uint64(r.ValueSize))
	}
	return cap
}

// Len reports the current entry count.
func (r *RedisCache) Len() int { return r.lru.Len() }

// MissRatio reports misses / (hits + misses).
func (r *RedisCache) MissRatio() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Misses) / float64(total)
}

// allocSlot finds storage for one value, evicting LRU entries if full.
func (r *RedisCache) allocSlot(p *sim.Proc) uint64 {
	if n := len(r.free); n > 0 {
		addr := r.free[n-1]
		r.free = r.free[:n-1]
		return addr
	}
	for _, a := range r.arenas {
		if a.Remaining() >= uint64(r.ValueSize) {
			return a.Alloc(uint64(r.ValueSize), 64)
		}
	}
	// Evict the LRU entry and reuse its slot.
	back := r.lru.Back()
	if back == nil {
		panic("workloads: redis cache has no storage arenas")
	}
	ent := back.Value.(*redisEnt)
	r.lru.Remove(back)
	delete(r.entries, ent.key)
	r.H.Compute(p, 200) // eviction bookkeeping
	return ent.addr
}

// Get returns the cached value for key, reading the value storage, or
// reports a miss.
func (r *RedisCache) Get(p *sim.Proc, key int) (uint64, bool) {
	el, ok := r.entries[key]
	r.H.Compute(p, opsPerQuery)
	if !ok {
		r.Misses++
		return 0, false
	}
	ent := el.Value.(*redisEnt)
	r.lru.MoveToFront(el)
	r.H.Read(p, ent.addr, r.ValueSize)
	r.Hits++
	return ent.value, true
}

// Set inserts or updates a key, writing the value storage.
func (r *RedisCache) Set(p *sim.Proc, key int, value uint64) {
	if el, ok := r.entries[key]; ok {
		ent := el.Value.(*redisEnt)
		ent.value = value
		r.lru.MoveToFront(el)
		r.H.Write(p, ent.addr, r.ValueSize)
		return
	}
	addr := r.allocSlot(p)
	el := r.lru.PushFront(&redisEnt{key: key, addr: addr, value: value})
	r.entries[key] = el
	r.H.Write(p, addr, r.ValueSize)
}

// MySQLModel is the backing database of the web-service architecture:
// an x86 server outside the Venice cluster reached over conventional
// networking. Misses pay its full query cost; the model keeps real
// values so the tier returns correct data.
type MySQLModel struct {
	// QueryTime is the end-to-end cost of one primary-key lookup on the
	// (disk-bound) database server, including the Ethernet round trip.
	QueryTime sim.Dur

	Queries int64
}

// Lookup fetches the authoritative value for key.
func (m *MySQLModel) Lookup(p *sim.Proc, key int) uint64 {
	p.Sleep(m.QueryTime)
	m.Queries++
	return mysqlValue(key)
}

// mysqlValue is the deterministic authoritative value for a key.
func mysqlValue(key int) uint64 { return uint64(key)*0x9E3779B97F4A7C15 + 1 }

// TierDB glues the tiers together: check Redis, fall back to MySQL and
// fill the cache — the query path of Fig. 13.
type TierDB struct {
	Redis *RedisCache
	MySQL *MySQLModel
	// ClientOverhead is the per-query application-server + client cost
	// (parse, dispatch, response marshaling).
	ClientOverhead sim.Dur
}

// Query serves one client request for key and returns its value.
func (t *TierDB) Query(p *sim.Proc, key int) uint64 {
	if t.ClientOverhead > 0 {
		p.Sleep(t.ClientOverhead)
	}
	if v, ok := t.Redis.Get(p, key); ok {
		return v
	}
	v := t.MySQL.Lookup(p, key)
	t.Redis.Set(p, key, v)
	return v
}

// RunQueries issues count random queries over keyspace keys and returns
// the elapsed virtual time.
func (t *TierDB) RunQueries(p *sim.Proc, rng *sim.RNG, keys, count int) sim.Dur {
	start := p.Now()
	for i := 0; i < count; i++ {
		key := rng.Intn(keys)
		v := t.Query(p, key)
		if v != mysqlValue(key) {
			panic("workloads: tier returned wrong value")
		}
	}
	t.Redis.H.Flush(p)
	return p.Now().Sub(start)
}
