// Package workloads implements the paper's evaluation workloads as
// execution-driven models: real data structures (a B-tree keyed store, a
// two-tier Redis/MySQL-style service, CSR graphs with PageRank /
// Connected Components / Graph500 BFS, streaming grep, an FFT, and an
// iperf-style packet generator) whose every memory access, page fault,
// and message is charged simulated time through the node's memory
// hierarchy and the Venice channels.
package workloads

import (
	"fmt"

	"repro/internal/sim"
)

// Arena hands out simulated addresses inside a region, bump-pointer
// style. Data values live in ordinary Go memory; the arena only decides
// where the structure sits in the simulated physical address space —
// local DRAM, a borrowed CRMA window, or a swap-backed range.
type Arena struct {
	base uint64
	next uint64
	end  uint64
}

// NewArena carves [base, base+size).
func NewArena(base, size uint64) *Arena {
	return &Arena{base: base, next: base, end: base + size}
}

// Alloc reserves n bytes aligned to align (a power of two) and returns
// the address.
func (a *Arena) Alloc(n, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	p := (a.next + align - 1) &^ (align - 1)
	if p+n > a.end {
		panic(fmt.Sprintf("workloads: arena exhausted: need %d at %#x, end %#x", n, p, a.end))
	}
	a.next = p + n
	return p
}

// Remaining reports unallocated bytes.
func (a *Arena) Remaining() uint64 { return a.end - a.next }

// Base reports the arena's first address.
func (a *Arena) Base() uint64 { return a.base }

// Used reports allocated bytes.
func (a *Arena) Used() uint64 { return a.next - a.base }

// opCost is the instruction budget charged for common workload steps, in
// simple ops (one per cycle at Params.CPUGHz). The constants model full
// software stacks, not inner loops: the paper's BerkeleyDB numbers
// include its buffer/lock management, and PageRank/CC run inside
// Spark-class frameworks, so per-element costs are hundreds of
// instructions. They are calibrated so all-local execution matches the
// per-operation costs implied by the paper's normalized results on the
// 667 MHz Cortex-A9 (see DESIGN.md §6).
const (
	opsPerBTreeProbe  = 150 // search step + BDB buffer/lock management
	opsPerRecordTouch = 250 // record (de)serialization + API layers
	opsPerEdge        = 80  // framework-weight edge processing
	opsPerVertex      = 500 // per-vertex task overhead (Spark-class)
	opsPerGrepByte    = 8   // Hadoop-grep-class per-byte scan cost
	opsPerQuery       = 400 // request parse + dispatch in a server loop
)

// dur is a tiny helper for readability in workload code.
func dur(d sim.Dur) sim.Dur { return d }
