package accel

import (
	"testing"

	"repro/internal/sim"
)

func TestChunkStartsRideDataFIFO(t *testing.T) {
	// The write-with-immediate design guarantees a chunk's start request
	// can never reach the accelerator before its input data: both ride
	// the same FIFO link. The device must therefore never sit idle
	// waiting for a doorbell that raced ahead of its data.
	eng, p, recip, donor := pairNodes(t)
	dev := New(eng, &p, FFT{MBps: 10000, Setup: 0}) // compute ~free: transfer-bound
	svc := Serve(donor, dev)
	defer svc.Shutdown()
	svc.SetExclusive(0, recip.ID)
	client := NewClient(recip)
	h := client.Attach(1, 0, true)
	const n = 8 << 20
	var elapsed sim.Dur
	recip.Run("offload", func(pr *sim.Proc) {
		t0 := pr.Now()
		h.Run(pr, "fft", n)
		elapsed = pr.Now().Sub(t0)
	})
	eng.Run()
	// Transfer-bound floor: one direction's wire time. Ceiling: with
	// single-VC FIFO links the output read requests drain only after the
	// input stream, so input and output serialize at ~2x wire — but
	// never more (no doorbell race, no idle bubbles beyond that).
	wire := sim.DurFromSeconds(float64(n) * 8 / (p.LinkGbps * 1e9))
	if elapsed < wire {
		t.Fatalf("finished (%v) below one-direction wire time (%v)", elapsed, wire)
	}
	if elapsed > wire.Scale(2.2) {
		t.Fatalf("transfer-bound offload took %v, want <= ~2x wire time %v", elapsed, wire)
	}
}

func TestRunRejectsNonPositiveSize(t *testing.T) {
	eng, _, recip, donor := pairNodes(t)
	dev := New(eng, recip.P, FFT{MBps: 100})
	svc := Serve(donor, dev)
	defer svc.Shutdown()
	client := NewClient(recip)
	h := client.Attach(1, 0, false)
	panicked := false
	recip.Run("bad", func(pr *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		h.Run(pr, "fft", 0)
	})
	eng.Run()
	if !panicked {
		t.Fatal("zero-size task accepted")
	}
}

func TestMixedKernelsServeIndependently(t *testing.T) {
	eng, p, recip, donor := pairNodes(t)
	fft := New(eng, &p, FFT{MBps: 50, Setup: 0})
	crypto := New(eng, &p, Crypto{MBps: 400, Setup: 0})
	svc := Serve(donor, fft, crypto)
	defer svc.Shutdown()
	client := NewClient(recip)
	hf := client.Attach(1, 0, false)
	hc := client.Attach(1, 1, false)
	var fftT, cryptoT sim.Dur
	done := sim.NewGroup(eng)
	done.Add(2)
	eng.Go("f", func(pr *sim.Proc) {
		t0 := pr.Now()
		hf.Run(pr, "fft", 2<<20)
		fftT = pr.Now().Sub(t0)
		done.Done()
	})
	eng.Go("c", func(pr *sim.Proc) {
		t0 := pr.Now()
		hc.Run(pr, "crypto", 2<<20)
		cryptoT = pr.Now().Sub(t0)
		done.Done()
	})
	eng.Run()
	if fftT <= cryptoT {
		t.Fatalf("slow FFT (%v) should take longer than fast crypto (%v)", fftT, cryptoT)
	}
	// Crypto must not have queued behind the FFT: it finishes near its
	// own compute+transfer time, far below the FFT's.
	if cryptoT > fftT/2 {
		t.Fatalf("crypto (%v) appears serialized behind FFT (%v)", cryptoT, fftT)
	}
}
