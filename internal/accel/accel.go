// Package accel models shareable hardware accelerators and Venice's
// mailbox-based remote-accelerator mechanism (§5.2.2, Fig. 11): a donor
// hosts accelerators behind memory-mapped mailboxes; recipients either go
// through the donor's kernel thread, or — when an accelerator is
// exclusively shared — manipulate the mailbox directly over the fabric.
package accel

import (
	"fmt"

	"repro/internal/sim"
)

// Kernel describes one accelerator's computational behavior.
type Kernel interface {
	Name() string
	// Time reports accelerator busy time for n input bytes.
	Time(n int) sim.Dur
}

// FFT is an XFFT-style FPGA FFT engine, throughput-bound with a fixed
// start cost per launch.
type FFT struct {
	MBps  float64 // sustained input consumption rate
	Setup sim.Dur // per-launch pipeline fill
}

// Name identifies the kernel.
func (f FFT) Name() string { return "xfft" }

// Time reports busy time for n bytes.
func (f FFT) Time(n int) sim.Dur {
	return f.Setup + sim.DurFromSeconds(float64(n)/(f.MBps*1e6))
}

// Crypto is a block-cipher engine.
type Crypto struct {
	MBps  float64
	Setup sim.Dur
}

// Name identifies the kernel.
func (c Crypto) Name() string { return "crypto" }

// Time reports busy time for n bytes.
func (c Crypto) Time(n int) sim.Dur {
	return c.Setup + sim.DurFromSeconds(float64(n)/(c.MBps*1e6))
}

// Stats counts one accelerator's activity.
type Stats struct {
	Tasks    int64
	Bytes    int64
	BusyTime sim.Dur
}

// Accelerator is one physical device on its host node.
type Accelerator struct {
	Eng    *sim.Engine
	P      *sim.Params
	Kernel Kernel

	busy *sim.Semaphore

	Stats Stats
}

// New builds an accelerator around a kernel.
func New(eng *sim.Engine, p *sim.Params, k Kernel) *Accelerator {
	return &Accelerator{Eng: eng, P: p, Kernel: k, busy: sim.NewSemaphore(eng, 1)}
}

// Exec occupies the device for one task of n input bytes, blocking the
// caller until the task drains (queueing behind other users).
func (a *Accelerator) Exec(p *sim.Proc, n int) {
	a.busy.Acquire(p)
	d := a.Kernel.Time(n)
	a.Stats.Tasks++
	a.Stats.Bytes += int64(n)
	a.Stats.BusyTime += d
	p.Sleep(d)
	a.busy.Release()
}

// RunLocal executes a task for an application on the accelerator's own
// node: input and output move over local DRAM, which the device masters
// directly.
func (a *Accelerator) RunLocal(p *sim.Proc, n int) {
	// DMA in/out at DRAM speed is folded into the kernel's throughput
	// figure for a local run; only the launch is charged separately.
	a.Exec(p, n)
}

// String identifies the accelerator.
func (a *Accelerator) String() string { return fmt.Sprintf("accel(%s)", a.Kernel.Name()) }
