package accel

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/node"
	"repro/internal/sim"
)

// Task is one mailbox entry: Fig. 11's request buffer (which executable
// to run), input buffer descriptor, return buffer descriptor, and the
// start/completion flags — here condensed to what the timing model
// needs.
type Task struct {
	Exec  string
	Bytes int
	done  *sim.Completion
}

// Mailbox is the pinned-buffer message interface in front of one
// accelerator on the donor node.
type Mailbox struct {
	ID    int
	Accel *Accelerator
	queue *sim.Queue[*Task]
}

// Service hosts a donor node's accelerators: it owns their mailboxes and
// runs the kernel thread that launches tasks on behalf of recipients.
type Service struct {
	Node  *node.Node
	boxes []*Mailbox
	// ExclusiveOwners maps mailbox id -> recipient when a device is
	// exclusively shared and driven via the direct path.
	exclusive map[int]fabric.NodeID
}

// accelStartMsg rings a mailbox from a remote recipient.
type accelStartMsg struct {
	Mailbox int
	Exec    string
	Bytes   int
	Tag     uint64
}

// accelDoneMsg reports completion back to the recipient.
type accelDoneMsg struct {
	Tag uint64
}

// Serve installs accelerators on a donor node and starts one kernel
// thread per mailbox. Remote starts arrive either as explicit doorbell
// packets or as RDMA write-with-immediate notes riding the input data.
func Serve(n *node.Node, accels ...*Accelerator) *Service {
	s := &Service{Node: n, exclusive: make(map[int]fabric.NodeID)}
	for i, a := range accels {
		mb := &Mailbox{ID: i, Accel: a, queue: sim.NewQueue[*Task](n.Eng)}
		s.boxes = append(s.boxes, mb)
		s.runKernelThread(mb)
	}
	n.EP.Handle("accel.start", s.onStart)
	n.EP.RDMA.ObserveImmediate(func(from fabric.NodeID, _ uint64, note any) {
		m, ok := note.(*accelStartMsg)
		if !ok {
			return
		}
		s.start(from, m)
	})
	return s
}

// Count reports the number of hosted accelerators.
func (s *Service) Count() int { return len(s.boxes) }

// Accelerator returns the device behind mailbox id.
func (s *Service) Accelerator(id int) *Accelerator { return s.boxes[id].Accel }

// runKernelThread processes one mailbox: poll, launch, complete — the
// donor-side software of Fig. 11.
func (s *Service) runKernelThread(mb *Mailbox) {
	s.Node.Eng.Go(fmt.Sprintf("accel-kthread%d@%v", mb.ID, s.Node.ID), func(p *sim.Proc) {
		for {
			task := mb.queue.Pop(p)
			if task == nil {
				return // shutdown sentinel
			}
			// Mailbox processing by the kernel thread (skipped when the
			// recipient drives the device directly).
			if _, excl := s.exclusive[mb.ID]; !excl {
				p.Sleep(s.Node.P.AccelMailboxOp)
			}
			mb.Accel.Exec(p, task.Bytes)
			task.done.Complete()
		}
	})
}

// Shutdown stops the kernel threads after their current task.
func (s *Service) Shutdown() {
	for _, mb := range s.boxes {
		mb.queue.TryPush(nil)
	}
}

// SetExclusive grants a recipient the optimized, exclusively-mapped path
// to mailbox id: its access interface is mapped to the recipient like a
// shared memory region, bypassing the kernel thread's mailbox handling.
func (s *Service) SetExclusive(id int, recipient fabric.NodeID) {
	s.exclusive[id] = recipient
}

// Submit enqueues a task locally (used by both the local path and the
// message handler) and returns its completion.
func (s *Service) Submit(mbID int, exec string, bytes int) *sim.Completion {
	mb := s.boxes[mbID]
	t := &Task{Exec: exec, Bytes: bytes, done: sim.NewCompletion(s.Node.Eng)}
	mb.queue.TryPush(t)
	return t.done
}

// onStart services an explicit remote doorbell packet.
func (s *Service) onStart(pkt *fabric.Packet) {
	s.start(pkt.Src, pkt.Payload.(*accelStartMsg))
}

// start enqueues a remotely-requested task and replies with a completion
// message when it drains.
func (s *Service) start(from fabric.NodeID, m *accelStartMsg) {
	done := s.Submit(m.Mailbox, m.Exec, m.Bytes)
	tag := m.Tag
	done.Then(func() {
		// Completion flag write back to the recipient (small message).
		s.Node.EP.SendRaw(from, "accel.done", 8, &accelDoneMsg{Tag: tag})
	})
}
