package accel

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/node"
	"repro/internal/sim"
)

// Client is the recipient-side accelerator library (§5.2.2): it hides
// device location behind handles, ships input/output over the RDMA
// channel, and rings doorbells over small control messages — pipelining
// chunks so transfer overlaps compute.
type Client struct {
	Node    *node.Node
	pending map[uint64]*pendingChunk
	nextTag uint64
}

// pendingChunk is one in-flight pipeline chunk, kept until its result
// lands back in local memory. Recording the launch parameters (not just
// a completion closure) is what makes failover possible: Retarget
// replays every outstanding chunk of a handle against a new donor.
type pendingChunk struct {
	h    *RemoteHandle
	exec string
	addr uint64
	size int
	// started marks the result read-back as issued; a duplicate done
	// signal for the same chunk (possible when a retarget races the old
	// donor's last completions) is then ignored.
	started bool
	// done finishes the chunk exactly once (idempotent), however many
	// read-backs ultimately complete for it.
	done func()
}

// NewClient attaches the accelerator library to a node.
func NewClient(n *node.Node) *Client {
	c := &Client{Node: n, pending: make(map[uint64]*pendingChunk)}
	n.EP.Handle("accel.done", func(pkt *fabric.Packet) {
		m := pkt.Payload.(*accelDoneMsg)
		ck, ok := c.pending[m.Tag]
		if !ok || ck.started {
			return
		}
		// Stage 3: the donor signalled completion — read the result chunk
		// back; its arrival finishes the chunk. The donor is read at fire
		// time so a retargeted handle reads from its current donor.
		ck.started = true
		rd := n.EP.RDMA.ReadAsync(ck.h.Donor, ck.addr, ck.size)
		rd.Then(ck.done)
	})
	return c
}

// RemoteHandle drives one remote accelerator mailbox.
type RemoteHandle struct {
	c       *Client
	Donor   fabric.NodeID
	Mailbox int
	// BufBase is the donor-side pinned staging buffer for this handle.
	BufBase uint64
	// Exclusive uses the direct, exclusively-mapped fast path: the
	// recipient manipulates the mailbox itself, skipping the donor's
	// kernel thread (the donor service must have granted exclusivity).
	Exclusive bool

	// Tasks and Bytes count work shipped through this handle.
	Tasks int64
	Bytes int64
	// Replays counts chunks re-launched by Retarget after a donor
	// failover.
	Replays int64
}

// Attach opens a handle to mailbox mb on the donor.
func (c *Client) Attach(donor fabric.NodeID, mb int, exclusive bool) *RemoteHandle {
	return &RemoteHandle{
		c:         c,
		Donor:     donor,
		Mailbox:   mb,
		BufBase:   0x7000_0000 + uint64(mb)<<28,
		Exclusive: exclusive,
	}
}

// Retarget repoints the handle at a new donor (the MN failed the lease
// over) and replays every outstanding chunk there: inputs are re-shipped
// with their original tags, so the pipeline completes on the new device
// without the caller noticing beyond the extra transfer time. Runs
// without a process — it is called from lease-event observers — relying
// on the async RDMA surface only. Reads still in flight against the old
// donor stay harmless: chunk completion is idempotent.
func (h *RemoteHandle) Retarget(newDonor fabric.NodeID) {
	h.Donor = newDonor
	var tags []uint64
	for tag, ck := range h.c.pending {
		if ck.h == h {
			tags = append(tags, tag)
		}
	}
	// Map order is nondeterministic; the wire must not be.
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	ep := h.c.Node.EP
	for _, tag := range tags {
		ck := h.c.pending[tag]
		ck.started = false
		h.Replays++
		start := &accelStartMsg{Mailbox: h.Mailbox, Exec: ck.exec, Bytes: ck.size, Tag: tag}
		ep.RDMA.WriteAsyncNote(newDonor, ck.addr, ck.size, start)
	}
}

// Run offloads one task of n input bytes (producing n output bytes, as
// for FFT) and blocks until the results are back in local memory. Data
// moves in Params.AccelChunkBytes pieces down a three-stage pipeline:
// input RDMA -> accelerator -> output RDMA.
func (h *RemoteHandle) Run(p *sim.Proc, exec string, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("accel: non-positive task size %d", n))
	}
	h.Tasks++
	h.Bytes += int64(n)
	eng := h.c.Node.Eng
	ep := h.c.Node.EP
	par := h.c.Node.P
	chunk := par.AccelChunkBytes
	g := sim.NewGroup(eng)
	// The doorbell (a store into the exclusively-mapped mailbox) is paid
	// once per task; per-chunk starts ride the data as RDMA immediates,
	// so FIFO delivery launches each chunk the moment its input lands.
	p.Sleep(par.AccelDoorbell)
	for off := 0; off < n; off += chunk {
		sz := chunk
		if off+sz > n {
			sz = n - off
		}
		g.Add(1)
		tag := h.c.nextTag
		h.c.nextTag++
		addr := h.BufBase + uint64(off)
		ck := &pendingChunk{h: h, exec: exec, addr: addr, size: sz}
		finished := false
		ck.done = func() {
			if finished {
				return
			}
			finished = true
			delete(h.c.pending, tag)
			g.Done()
		}
		h.c.pending[tag] = ck
		// Stage 1+2: ship the input chunk with the start request as its
		// immediate; the donor launches the accelerator on arrival.
		start := &accelStartMsg{Mailbox: h.Mailbox, Exec: exec, Bytes: sz, Tag: tag}
		ep.RDMA.WriteAsyncNote(h.Donor, addr, sz, start)
	}
	g.Wait(p)
}
