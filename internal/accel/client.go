package accel

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/node"
	"repro/internal/sim"
)

// Client is the recipient-side accelerator library (§5.2.2): it hides
// device location behind handles, ships input/output over the RDMA
// channel, and rings doorbells over small control messages — pipelining
// chunks so transfer overlaps compute.
type Client struct {
	Node    *node.Node
	pending map[uint64]func()
	nextTag uint64
}

// NewClient attaches the accelerator library to a node.
func NewClient(n *node.Node) *Client {
	c := &Client{Node: n, pending: make(map[uint64]func())}
	n.EP.Handle("accel.done", func(pkt *fabric.Packet) {
		m := pkt.Payload.(*accelDoneMsg)
		fn, ok := c.pending[m.Tag]
		if !ok {
			return
		}
		delete(c.pending, m.Tag)
		fn()
	})
	return c
}

// RemoteHandle drives one remote accelerator mailbox.
type RemoteHandle struct {
	c       *Client
	Donor   fabric.NodeID
	Mailbox int
	// BufBase is the donor-side pinned staging buffer for this handle.
	BufBase uint64
	// Exclusive uses the direct, exclusively-mapped fast path: the
	// recipient manipulates the mailbox itself, skipping the donor's
	// kernel thread (the donor service must have granted exclusivity).
	Exclusive bool

	// Tasks and Bytes count work shipped through this handle.
	Tasks int64
	Bytes int64
}

// Attach opens a handle to mailbox mb on the donor.
func (c *Client) Attach(donor fabric.NodeID, mb int, exclusive bool) *RemoteHandle {
	return &RemoteHandle{
		c:         c,
		Donor:     donor,
		Mailbox:   mb,
		BufBase:   0x7000_0000 + uint64(mb)<<28,
		Exclusive: exclusive,
	}
}

// Run offloads one task of n input bytes (producing n output bytes, as
// for FFT) and blocks until the results are back in local memory. Data
// moves in Params.AccelChunkBytes pieces down a three-stage pipeline:
// input RDMA -> accelerator -> output RDMA.
func (h *RemoteHandle) Run(p *sim.Proc, exec string, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("accel: non-positive task size %d", n))
	}
	h.Tasks++
	h.Bytes += int64(n)
	eng := h.c.Node.Eng
	ep := h.c.Node.EP
	par := h.c.Node.P
	chunk := par.AccelChunkBytes
	g := sim.NewGroup(eng)
	// The doorbell (a store into the exclusively-mapped mailbox) is paid
	// once per task; per-chunk starts ride the data as RDMA immediates,
	// so FIFO delivery launches each chunk the moment its input lands.
	p.Sleep(par.AccelDoorbell)
	for off := 0; off < n; off += chunk {
		sz := chunk
		if off+sz > n {
			sz = n - off
		}
		g.Add(1)
		tag := h.c.nextTag
		h.c.nextTag++
		addr := h.BufBase + uint64(off)
		// Stage 3 (registered first): when the donor signals completion,
		// read the result chunk back; its arrival finishes the chunk.
		h.c.pending[tag] = func() {
			rd := ep.RDMA.ReadAsync(h.Donor, addr, sz)
			rd.Then(g.Done)
		}
		// Stage 1+2: ship the input chunk with the start request as its
		// immediate; the donor launches the accelerator on arrival.
		start := &accelStartMsg{Mailbox: h.Mailbox, Exec: exec, Bytes: sz, Tag: tag}
		ep.RDMA.WriteAsyncNote(h.Donor, addr, sz, start)
	}
	g.Wait(p)
}
