package accel

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/node"
	"repro/internal/sim"
)

func pairNodes(t *testing.T) (*sim.Engine, sim.Params, *node.Node, *node.Node) {
	t.Helper()
	eng := sim.New()
	t.Cleanup(eng.Close)
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(1))
	a := node.New(eng, &p, net, 0, 1<<30)
	b := node.New(eng, &p, net, 1, 1<<30)
	return eng, p, a, b
}

func TestKernelTimes(t *testing.T) {
	fft := FFT{MBps: 200, Setup: 10 * sim.Microsecond}
	if fft.Name() != "xfft" {
		t.Fatal("name")
	}
	// 2 MiB at 200 MB/s, plus setup.
	want := 10*sim.Microsecond + sim.DurFromSeconds(float64(2<<20)/200e6)
	if got := fft.Time(2 << 20); got < want-sim.Microsecond || got > want+sim.Microsecond {
		t.Fatalf("Time = %v, want ~%v", got, want)
	}
	cr := Crypto{MBps: 400, Setup: sim.Microsecond}
	if cr.Name() != "crypto" || cr.Time(1<<20) >= fft.Time(1<<20) {
		t.Fatal("crypto should be faster per byte here")
	}
}

func TestLocalExecQueues(t *testing.T) {
	eng, _, a, _ := pairNodes(t)
	dev := New(eng, a.P, FFT{MBps: 100, Setup: 0})
	var t1, t2 sim.Time
	eng.Go("u1", func(p *sim.Proc) {
		dev.RunLocal(p, 1<<20)
		t1 = p.Now()
	})
	eng.Go("u2", func(p *sim.Proc) {
		dev.RunLocal(p, 1<<20)
		t2 = p.Now()
	})
	eng.Run()
	if t2 <= t1 {
		t.Fatalf("second task (%v) should queue behind first (%v)", t2, t1)
	}
	if dev.Stats.Tasks != 2 || dev.Stats.Bytes != 2<<20 {
		t.Fatalf("stats = %+v", dev.Stats)
	}
}

func TestRemoteRunMovesDataAndComputes(t *testing.T) {
	eng, p, recip, donor := pairNodes(t)
	dev := New(eng, &p, FFT{MBps: 200, Setup: 10 * sim.Microsecond})
	svc := Serve(donor, dev)
	defer svc.Shutdown()
	client := NewClient(recip)
	h := client.Attach(1, 0, false)

	const n = 4 << 20
	var elapsed sim.Dur
	recip.Run("offload", func(pr *sim.Proc) {
		t0 := pr.Now()
		h.Run(pr, "fft", n)
		elapsed = pr.Now().Sub(t0)
	})
	eng.Run()

	if dev.Stats.Bytes != n {
		t.Fatalf("accelerator consumed %d bytes, want %d", dev.Stats.Bytes, n)
	}
	if h.Tasks != 1 || h.Bytes != n {
		t.Fatalf("handle stats: %+v", h)
	}
	// Compute floor: the device needs n/200MBps; the pipeline must not
	// finish faster than that, nor slower than compute + both transfers
	// fully serialized + generous overheads.
	floor := sim.DurFromSeconds(float64(n) / 200e6)
	wire := sim.DurFromSeconds(float64(2*n) * 8 / (p.LinkGbps * 1e9))
	if elapsed < floor {
		t.Fatalf("offload %v beat the compute floor %v", elapsed, floor)
	}
	if elapsed > floor+wire+10*sim.Millisecond {
		t.Fatalf("offload %v way above serialized bound %v", elapsed, floor+wire)
	}
}

func TestRemotePipelineOverlapsTransferAndCompute(t *testing.T) {
	// With compute slower than the wire, total time should approach the
	// compute floor plus edge effects — far below the fully-serialized
	// sum. This is the property that makes Fig. 16a near-linear.
	eng, p, recip, donor := pairNodes(t)
	dev := New(eng, &p, FFT{MBps: 150, Setup: 0})
	svc := Serve(donor, dev)
	defer svc.Shutdown()
	svc.SetExclusive(0, recip.ID)
	client := NewClient(recip)
	h := client.Attach(1, 0, true)

	const n = 16 << 20
	var elapsed sim.Dur
	recip.Run("offload", func(pr *sim.Proc) {
		t0 := pr.Now()
		h.Run(pr, "fft", n)
		elapsed = pr.Now().Sub(t0)
	})
	eng.Run()
	compute := sim.DurFromSeconds(float64(n) / 150e6)
	serialized := compute + sim.DurFromSeconds(float64(2*n)*8/(p.LinkGbps*1e9))
	if elapsed >= serialized {
		t.Fatalf("no overlap: %v >= serialized %v", elapsed, serialized)
	}
	// Within 20% of the compute floor.
	if elapsed > compute.Scale(1.2) {
		t.Fatalf("pipeline %v too far above compute floor %v", elapsed, compute)
	}
}

func TestExclusiveSkipsKernelThreadOverhead(t *testing.T) {
	run := func(exclusive bool) sim.Dur {
		eng, p, recip, donor := pairNodes(t)
		p.AccelMailboxOp = 200 * sim.Microsecond // exaggerate for the test
		dev := New(eng, &p, FFT{MBps: 500, Setup: 0})
		svc := Serve(donor, dev)
		defer svc.Shutdown()
		if exclusive {
			svc.SetExclusive(0, recip.ID)
		}
		client := NewClient(recip)
		h := client.Attach(1, 0, exclusive)
		var elapsed sim.Dur
		recip.Run("offload", func(pr *sim.Proc) {
			t0 := pr.Now()
			h.Run(pr, "fft", 64<<10) // one chunk
			elapsed = pr.Now().Sub(t0)
		})
		eng.Run()
		return elapsed
	}
	shared, exclusive := run(false), run(true)
	if exclusive >= shared {
		t.Fatalf("exclusive path (%v) not faster than kernel-thread path (%v)", exclusive, shared)
	}
}

func TestMultipleAcceleratorsServeConcurrently(t *testing.T) {
	eng, p, recip, donor := pairNodes(t)
	d1 := New(eng, &p, FFT{MBps: 100, Setup: 0})
	d2 := New(eng, &p, FFT{MBps: 100, Setup: 0})
	svc := Serve(donor, d1, d2)
	defer svc.Shutdown()
	if svc.Count() != 2 || svc.Accelerator(1) != d2 {
		t.Fatal("service bookkeeping wrong")
	}
	client := NewClient(recip)
	h1 := client.Attach(1, 0, false)
	h2 := client.Attach(1, 1, false)

	const n = 2 << 20
	var oneT, twoT sim.Dur
	recip.Run("serial", func(pr *sim.Proc) {
		t0 := pr.Now()
		h1.Run(pr, "fft", n)
		h1.Run(pr, "fft", n)
		oneT = pr.Now().Sub(t0)

		t1 := pr.Now()
		g := sim.NewGroup(eng)
		g.Add(2)
		eng.Go("a", func(q *sim.Proc) { h1.Run(q, "fft", n); g.Done() })
		eng.Go("b", func(q *sim.Proc) { h2.Run(q, "fft", n); g.Done() })
		g.Wait(pr)
		twoT = pr.Now().Sub(t1)
	})
	eng.Run()
	if float64(twoT) > 0.75*float64(oneT) {
		t.Fatalf("two devices (%v) should meaningfully beat one device twice (%v)", twoT, oneT)
	}
}
