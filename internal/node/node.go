// Package node assembles one Venice server node: CPU-visible memory
// hierarchy, transport endpoint (the three channels), OS memory manager,
// and the per-node agent daemon that reports to the Monitor Node.
package node

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Node is one server in the rack.
type Node struct {
	Eng *sim.Engine
	P   *sim.Params
	ID  fabric.NodeID

	EP     *transport.Endpoint
	Mem    *memsys.Hierarchy
	MemMgr *memsys.MemManager

	// DRAMBytes is the node's installed physical memory (Table 1: 1 GB
	// active per prototype node).
	DRAMBytes uint64

	hotplugBase uint64
}

// memAdapter charges donor-side memory service through the node's
// parameters (remote requests do not pollute the recipient-visible
// cache: the paper's single-subscriber model gives the region to exactly
// one owner, and the donor's own accesses to it have been hot-removed).
type memAdapter struct{ p *sim.Params }

func (m memAdapter) Service(_ uint64, size int, _ bool) sim.Dur {
	bursts := (size + 63) / 64
	if bursts < 1 {
		bursts = 1
	}
	return m.p.DRAMLat + sim.Dur(bursts-1)*(m.p.DRAMLat/4)
}

// New builds a node with dramBytes of local memory mapped at address 0.
func New(eng *sim.Engine, p *sim.Params, net *fabric.Network, id fabric.NodeID, dramBytes uint64) *Node {
	n := &Node{
		Eng:       eng,
		P:         p,
		ID:        id,
		EP:        transport.NewEndpoint(eng, p, net, id),
		Mem:       memsys.NewHierarchy(eng, p),
		MemMgr:    memsys.NewMemManager(p, dramBytes),
		DRAMBytes: dramBytes,
	}
	n.EP.Mem = memAdapter{p}
	if err := n.Mem.AS.Add(&memsys.Region{Base: 0, Size: dramBytes,
		Backend: &memsys.LocalDRAM{P: p}}); err != nil {
		panic(err)
	}
	// Hot-plugged regions appear above the node's own physical memory,
	// exactly like Fig. 10's 0x1_0000_0000 window on a 4 GB node.
	n.hotplugBase = dramBytes
	return n
}

// Run starts a named workload process on this node.
func (n *Node) Run(name string, fn func(p *sim.Proc)) *sim.Completion {
	return n.Eng.Go(fmt.Sprintf("%v/%s", n.ID, name), fn)
}

// NextHotplugWindow reserves an address window of size bytes above the
// local physical memory for a hot-plugged (borrowed) region and returns
// its base.
func (n *Node) NextHotplugWindow(size uint64) uint64 {
	base := n.hotplugBase
	n.hotplugBase += size
	return base
}

// String identifies the node.
func (n *Node) String() string { return n.ID.String() }
