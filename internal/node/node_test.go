package node

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/memsys"
	"repro/internal/sim"
)

func TestNodeConstruction(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(1))
	n := New(eng, &p, net, 0, 1<<30)
	New(eng, &p, net, 1, 1<<30)

	if n.String() != "n0" {
		t.Fatalf("String = %q", n.String())
	}
	// Local memory is mapped from zero.
	if _, ok := n.Mem.AS.Lookup(0); !ok {
		t.Fatal("local DRAM not mapped at 0")
	}
	if _, ok := n.Mem.AS.Lookup(1 << 30); ok {
		t.Fatal("address above DRAM mapped")
	}
	if n.MemMgr.Idle() != 1<<30 {
		t.Fatalf("idle = %d", n.MemMgr.Idle())
	}
}

func TestNodeHotplugWindowsDoNotOverlap(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(1))
	n := New(eng, &p, net, 0, 1<<30)
	New(eng, &p, net, 1, 1<<30)

	a := n.NextHotplugWindow(1 << 28)
	b := n.NextHotplugWindow(1 << 28)
	if a < 1<<30 {
		t.Fatalf("window %#x overlaps local DRAM", a)
	}
	if b < a+1<<28 {
		t.Fatalf("windows overlap: %#x then %#x", a, b)
	}
}

func TestNodeRunExecutesOnEngine(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(1))
	n := New(eng, &p, net, 0, 1<<30)
	New(eng, &p, net, 1, 1<<30)

	var ranAt sim.Time
	done := n.Run("workload", func(pr *sim.Proc) {
		pr.Sleep(42 * sim.Microsecond)
		ranAt = pr.Now()
	})
	eng.Run()
	if !done.Done() || ranAt != sim.Time(42*sim.Microsecond) {
		t.Fatalf("workload did not run to completion: at %v", ranAt)
	}
}

func TestNodeLocalMemoryTiming(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(1))
	n := New(eng, &p, net, 0, 1<<30)
	New(eng, &p, net, 1, 1<<30)

	var elapsed sim.Dur
	n.Run("touch", func(pr *sim.Proc) {
		t0 := pr.Now()
		n.Mem.Read(pr, 0x100, 8)
		n.Mem.Flush(pr)
		elapsed = pr.Now().Sub(t0)
	})
	eng.Run()
	if elapsed != p.CacheHit+p.DRAMLat {
		t.Fatalf("local miss = %v, want %v", elapsed, p.CacheHit+p.DRAMLat)
	}
}

func TestNodeMemServiceAdapter(t *testing.T) {
	p := sim.Default()
	svc := memAdapter{&p}
	if svc.Service(0, 64, false) != p.DRAMLat {
		t.Fatal("single-line service should cost one DRAM access")
	}
	if svc.Service(0, 4096, false) <= p.DRAMLat {
		t.Fatal("page-sized service should cost more than one access")
	}
}

func TestNodeBorrowedRegionEndToEnd(t *testing.T) {
	// Manual two-node wiring of a borrowed region: donor exports, the
	// recipient maps and mounts a CRMA-backed region; reads work and cost
	// remote latency.
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(1))
	recip := New(eng, &p, net, 0, 1<<30)
	donor := New(eng, &p, net, 1, 1<<30)

	const size = 1 << 26
	win := recip.NextHotplugWindow(size)
	var elapsed sim.Dur
	recip.Run("borrow", func(pr *sim.Proc) {
		donorBase, err := donor.MemMgr.HotRemove(pr, size)
		if err != nil {
			t.Error(err)
			return
		}
		donor.EP.CRMA.Export(0, win, size, donorBase)
		if _, err := recip.EP.CRMA.Map(win, size, 1, donorBase); err != nil {
			t.Error(err)
			return
		}
		if err := recip.Mem.AS.Add(&memsys.Region{Base: win, Size: size,
			Backend: &memsys.CRMARemote{CRMA: recip.EP.CRMA, Donor: 1}}); err != nil {
			t.Error(err)
			return
		}
		t0 := pr.Now()
		recip.Mem.Read(pr, win+0x1000, 8)
		recip.Mem.Flush(pr)
		elapsed = pr.Now().Sub(t0)
	})
	eng.Run()
	if elapsed < 2*sim.Microsecond {
		t.Fatalf("borrowed-memory read = %v, want remote-scale latency", elapsed)
	}
	if recip.EP.CRMA.Stats.Fills != 1 {
		t.Fatalf("fills = %d", recip.EP.CRMA.Stats.Fills)
	}
}
