// Package obs is the control plane's observability layer: a
// dependency-free metrics registry with Prometheus text exposition, a
// bounded per-lease trace store keyed by the trace ids minted at
// Acquire, and a fan-out broadcaster for live event streams (SSE).
//
// Everything here runs OUTSIDE virtual time. Observers fire
// synchronously on the simulation goroutine but only touch wall-clock
// data structures — no Proc, no Sleep, no engine events — so enabling
// observability cannot perturb a deterministic run. All types are safe
// for concurrent use: the sim goroutine writes while HTTP handler
// goroutines read.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// floatBits/bitsFloat convert between float64 values and the raw bits
// a Gauge stores atomically.
func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Counter is a monotonically increasing metric. The zero value is
// unusable; obtain one from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored so
// the counter stays monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Obtain one from
// Registry.Gauge.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Histogram is a thread-safe bridge over sim.LatencyHist: the same
// log-linear buckets (16 per octave, exact merge) exposed in
// Prometheus histogram form. Observations are int64 (by convention,
// nanoseconds). Obtain one from Registry.Histogram.
type Histogram struct {
	mu sync.Mutex
	h  sim.LatencyHist
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// ObserveDur records a duration observation.
func (h *Histogram) ObserveDur(d sim.Dur) { h.Observe(int64(d)) }

// Snapshot copies the underlying histogram (exact: restore-merge
// equivalent per sim.LatencyHist's contract).
func (h *Histogram) Snapshot() *sim.LatencyHist {
	h.mu.Lock()
	defer h.mu.Unlock()
	return sim.RestoreLatencyHist(h.h.Sum(), h.h.Min(), h.h.Max(), h.h.Buckets())
}

// metricKind tags a registered family for the # TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is one registered metric family (a name plus help/type); its
// series map holds one sample per label set.
type family struct {
	name string
	help string
	kind metricKind

	counters map[string]*Counter   // by label suffix ("" for unlabeled)
	gauges   map[string]*Gauge     // ditto
	hists    map[string]*Histogram // ditto
}

// Registry is a named collection of metrics with Prometheus text
// exposition. It is dependency-free and safe for concurrent use. The
// zero value is ready; families register lazily on first lookup, and
// repeated lookups with the same name and labels return the same
// metric.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// lookup finds or creates the family, enforcing kind consistency.
func (r *Registry) lookup(name, help string, kind metricKind) *family {
	if r.fam == nil {
		r.fam = make(map[string]*family)
	}
	f, ok := r.fam[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind,
			counters: map[string]*Counter{},
			gauges:   map[string]*Gauge{},
			hists:    map[string]*Histogram{}}
		r.fam[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
	}
	return f
}

// labelSuffix renders a label set into its stable exposition form
// ({k="v",...} with keys sorted), or "" for no labels.
func labelSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter registered under name (creating it on
// first use). Labels are optional; pass nil for an unlabeled series.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter)
	key := labelSuffix(labels)
	c, ok := f.counters[key]
	if !ok {
		c = &Counter{}
		f.counters[key] = c
	}
	return c
}

// Gauge returns the gauge registered under name (creating it on first
// use).
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	key := labelSuffix(labels)
	g, ok := f.gauges[key]
	if !ok {
		g = &Gauge{}
		f.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram registered under name (creating it
// on first use).
func (r *Registry) Histogram(name, help string, labels map[string]string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogram)
	key := labelSuffix(labels)
	h, ok := f.hists[key]
	if !ok {
		h = &Histogram{}
		f.hists[key] = h
	}
	return h
}

// WriteProm writes every registered metric in Prometheus text
// exposition format (version 0.0.4), families sorted by name and
// series sorted by label set, so output is deterministic for a given
// registry state.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fam))
	for _, f := range r.fam {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		typ := [...]string{"counter", "gauge", "histogram"}[f.kind]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		switch f.kind {
		case kindCounter:
			for _, key := range sortedKeys(f.counters) {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, key, f.counters[key].Value()); err != nil {
					return err
				}
			}
		case kindGauge:
			for _, key := range sortedKeys(f.gauges) {
				if _, err := fmt.Fprintf(w, "%s%s %g\n", f.name, key, f.gauges[key].Value()); err != nil {
					return err
				}
			}
		case kindHistogram:
			for _, key := range sortedKeys(f.hists) {
				if err := writePromHist(w, f.name, key, f.hists[key].Snapshot()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writePromHist emits one histogram series: cumulative buckets with
// `le` upper bounds from the underlying log-linear layout (only edges
// that hold observations, plus +Inf), then _sum and _count.
func writePromHist(w io.Writer, name, key string, h *sim.LatencyHist) error {
	cum := int64(0)
	for _, b := range h.Buckets() {
		cum += b.Count
		if err := writeHistLine(w, name, key, fmt.Sprintf("%d", sim.BucketUpper(b.Index)), cum); err != nil {
			return err
		}
	}
	if err := writeHistLine(w, name, key, "+Inf", h.N()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, key, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, key, h.N())
	return err
}

// writeHistLine emits one `_bucket` sample, splicing le into any
// existing label set.
func writeHistLine(w io.Writer, name, key, le string, v int64) error {
	if key == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, v)
		return err
	}
	// key is "{a="b",...}" — splice le before the closing brace.
	inner := key[1 : len(key)-1]
	_, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, inner, le, v)
	return err
}

// sortedKeys returns m's keys sorted (generic over the three series
// map types).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
