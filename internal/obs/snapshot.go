package obs

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// State is one JSON-marshallable snapshot of a live cluster's control
// plane: the registry (donors), the allocation tables (leases), the
// root MN's delegation table, rack health, link telemetry, and the
// MN scoreboards. Snapshots are built ON the simulation goroutine
// (SnapshotFlat/SnapshotHier read monitor state that only that
// goroutine may touch) and handed to readers through a StateCell.
type State struct {
	Now   sim.Time `json:"now_ns"`
	Shape string   `json:"shape"` // "flat" or "hier"

	Donors      []DonorState         `json:"donors"`
	Leases      []monitor.Allocation `json:"leases"`
	Delegations []monitor.Delegation `json:"delegations,omitempty"`
	Racks       []monitor.RackStatus `json:"racks,omitempty"`
	Links       []monitor.LinkStatus `json:"links,omitempty"`
	Telemetry   TelemetrySummary     `json:"telemetry"`
	Stats       map[string]int64     `json:"stats,omitempty"`
}

// DonorState is the JSON face of one RRT row.
type DonorState struct {
	Node      int            `json:"node"`
	IdleBytes uint64         `json:"idle_bytes"`
	Devices   map[string]int `json:"devices,omitempty"`
	LastBeat  sim.Time       `json:"last_beat_ns"`
	Beats     int64          `json:"beats"`
	Dead      bool           `json:"dead,omitempty"`
}

// TelemetrySummary is the JSON face of the placement View: per-donor
// live-allocation load plus whether windowed link telemetry is
// flowing.
type TelemetrySummary struct {
	HasTelemetry bool        `json:"has_telemetry"`
	Load         map[int]int `json:"load,omitempty"`
}

// SnapshotFlat captures a flat cluster's control plane. Call only
// from the simulation goroutine.
func SnapshotFlat(c *core.Cluster) *State {
	st := &State{
		Now:   c.Eng.Now(),
		Shape: "flat",
		Stats: scoreboardMap(&c.MN.Stats),
	}
	fillMonitor(st, c.MN)
	return st
}

// SnapshotHier captures a rack-scale cluster's control plane: every
// sub-MN's tables merged, plus the root's delegation table and rack
// registry. Call only from the simulation goroutine.
func SnapshotHier(c *core.HierCluster) *State {
	st := &State{
		Now:   c.Eng.Now(),
		Shape: "hier",
		Stats: scoreboardMap(&c.Root.Stats),
	}
	for _, sub := range c.Subs {
		fillMonitor(st, sub)
		for k, v := range scoreboardMap(&sub.Stats) {
			st.Stats[k] += v
		}
	}
	st.Delegations = c.Root.Delegations()
	for r := 0; r < c.Hier.Racks; r++ {
		if rs, ok := c.Root.RackStatusOf(r); ok {
			st.Racks = append(st.Racks, rs)
		}
	}
	return st
}

// fillMonitor appends one Monitor's RRT/RAT/TST and telemetry view
// into st.
func fillMonitor(st *State, m *monitor.Monitor) {
	for _, reg := range m.Registrations() {
		d := DonorState{
			Node: int(reg.Node), IdleBytes: reg.IdleBytes,
			LastBeat: reg.LastBeat, Beats: reg.Beats, Dead: reg.Dead,
		}
		if len(reg.Devices) > 0 {
			d.Devices = make(map[string]int, len(reg.Devices))
			for k, n := range reg.Devices {
				d.Devices[k.String()] = n
			}
		}
		st.Donors = append(st.Donors, d)
	}
	st.Leases = append(st.Leases, m.Allocations()...)
	st.Links = append(st.Links, m.Links()...)
	v := m.View()
	if v.HasTelemetry {
		st.Telemetry.HasTelemetry = true
	}
	for id, n := range v.Load {
		if st.Telemetry.Load == nil {
			st.Telemetry.Load = make(map[int]int)
		}
		st.Telemetry.Load[int(id)] += n
	}
}

// scoreboardMap copies a scoreboard into a plain map.
func scoreboardMap(sb *sim.Scoreboard) map[string]int64 {
	out := make(map[string]int64)
	for _, k := range sb.Keys() {
		out[k] = sb.Get(k)
	}
	return out
}

// StateCell hands snapshots from the simulation goroutine to HTTP
// readers: Set swaps the pointer atomically, Get returns the latest
// (possibly nil before the first Set). Readers must treat the State
// as immutable.
type StateCell struct {
	p atomic.Pointer[State]
}

// Set publishes a new snapshot.
func (c *StateCell) Set(s *State) { c.p.Store(s) }

// Get returns the latest snapshot, or nil before the first Set.
func (c *StateCell) Get() *State { return c.p.Load() }
