package obs

import (
	"sort"
	"sync"

	"repro/internal/core"
)

// TraceStore collects lease-lifecycle events keyed by the trace id
// minted at Acquire, so one lease's acquire → grant → migrate →
// failover → release history reads back as a single span chain. It is
// bounded: once MaxTraces distinct ids are live, recording an event
// for a new id evicts the oldest-started trace (the store favors
// recent activity, which is what a live dashboard queries).
//
// Events with trace id 0 are ignored — 0 marks pre-tracing paths and
// synthetic events that never passed through Acquire.
type TraceStore struct {
	mu     sync.Mutex
	spans  map[uint64][]core.Event
	order  []uint64 // insertion order, for eviction
	limit  int
	evict  int64 // traces evicted (exposed as a metric by collectors)
	events int64 // events recorded
}

// NewTraceStore builds a store bounded to maxTraces distinct ids
// (values < 1 select the default of 4096).
func NewTraceStore(maxTraces int) *TraceStore {
	if maxTraces < 1 {
		maxTraces = 4096
	}
	return &TraceStore{spans: make(map[uint64][]core.Event), limit: maxTraces}
}

// Add records ev under its trace id.
func (s *TraceStore) Add(ev core.Event) {
	if ev.Trace == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.spans[ev.Trace]; !live {
		if len(s.order) >= s.limit {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.spans, oldest)
			s.evict++
		}
		s.order = append(s.order, ev.Trace)
	}
	s.spans[ev.Trace] = append(s.spans[ev.Trace], ev)
	s.events++
}

// Get returns a copy of the span chain for id (nil when unknown or
// evicted).
func (s *TraceStore) Get(id uint64) []core.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	chain := s.spans[id]
	if chain == nil {
		return nil
	}
	return append([]core.Event(nil), chain...)
}

// IDs lists the live trace ids in ascending order.
func (s *TraceStore) IDs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := append([]uint64(nil), s.order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len reports the number of live traces.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}

// Stats reports lifetime totals: events recorded and traces evicted.
func (s *TraceStore) Stats() (events, evicted int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events, s.evict
}
