package obs

import (
	"sync"
	"sync/atomic"
)

// Broadcaster fans messages out to any number of subscribers with
// per-subscriber buffering and non-blocking publishes. A subscriber
// that stops draining (a stalled SSE client) fills its buffer and is
// dropped — its channel closes, the serving handler returns — so one
// slow consumer can never stall the publisher or its peers. Publish
// is safe from any goroutine and never blocks.
type Broadcaster struct {
	mu      sync.Mutex
	subs    map[*Subscriber]struct{}
	dropped atomic.Int64
	sent    atomic.Int64
}

// Subscriber is one registered consumer. Read from C until it closes
// (closure means either Unsubscribe or a slow-consumer drop).
type Subscriber struct {
	C      chan []byte
	closed bool // guarded by the broadcaster's mu
}

// NewBroadcaster builds an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[*Subscriber]struct{})}
}

// Subscribe registers a consumer whose channel buffers up to buf
// messages (values < 1 select 64). The caller must drain C promptly
// or be dropped.
func (b *Broadcaster) Subscribe(buf int) *Subscriber {
	if buf < 1 {
		buf = 64
	}
	s := &Subscriber{C: make(chan []byte, buf)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Unsubscribe removes s and closes its channel (idempotent).
func (b *Broadcaster) Unsubscribe(s *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.remove(s)
}

// remove detaches s under b.mu.
func (b *Broadcaster) remove(s *Subscriber) {
	if s.closed {
		return
	}
	s.closed = true
	delete(b.subs, s)
	close(s.C)
}

// Publish delivers msg to every subscriber without blocking; any
// subscriber whose buffer is full is dropped on the spot.
func (b *Broadcaster) Publish(msg []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for s := range b.subs {
		select {
		case s.C <- msg:
			b.sent.Add(1)
		default:
			b.remove(s)
			b.dropped.Add(1)
		}
	}
}

// Subscribers reports the current consumer count.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Stats reports lifetime totals: messages delivered and subscribers
// dropped for falling behind.
func (b *Broadcaster) Stats() (sent, dropped int64) {
	return b.sent.Load(), b.dropped.Load()
}
