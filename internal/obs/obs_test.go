package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tenancy"
)

// TestRegistryProm pins the exposition format: sorted families, HELP
// and TYPE lines, label sets rendered stably, histogram as cumulative
// buckets plus sum and count.
func TestRegistryProm(t *testing.T) {
	var r Registry
	r.Counter("venice_grants_total", "Grants.", nil).Add(3)
	r.Counter("venice_lease_events_total", "Events.", map[string]string{"type": "granted", "kind": "memory"}).Inc()
	r.Gauge("venice_donors", "Registered donors.", nil).Set(7)
	h := r.Histogram("venice_req_ns", "Request latency.", nil)
	h.Observe(5)
	h.Observe(5)
	h.Observe(1000)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP venice_grants_total Grants.\n# TYPE venice_grants_total counter\nvenice_grants_total 3\n",
		`venice_lease_events_total{kind="memory",type="granted"} 1`,
		"# TYPE venice_donors gauge\nvenice_donors 7\n",
		"# TYPE venice_req_ns histogram\n",
		`venice_req_ns_bucket{le="5"} 2`,
		`venice_req_ns_bucket{le="+Inf"} 3`,
		"venice_req_ns_sum 1010\n",
		"venice_req_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear in sorted order.
	if strings.Index(out, "venice_donors") > strings.Index(out, "venice_grants_total") {
		t.Error("families not sorted by name")
	}
	// le buckets must be cumulative and the 1000-observation bucket edge
	// must come from the shared log-linear layout.
	if !strings.Contains(out, `le="1023"`) {
		t.Errorf("expected bucket edge 1023 for observation 1000:\n%s", out)
	}
}

// TestRegistryIdempotent verifies repeated lookups return the same
// series and kind conflicts panic.
func TestRegistryIdempotent(t *testing.T) {
	var r Registry
	a := r.Counter("x_total", "", nil)
	b := r.Counter("x_total", "", nil)
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("aliased counters diverged")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "", nil)
}

// TestHistogramBridge verifies the bridge preserves the exact-merge
// histogram's quantile behavior.
func TestHistogramBridge(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	snap := h.Snapshot()
	if snap.N() != 1000 {
		t.Fatalf("snapshot n = %d, want 1000", snap.N())
	}
	var want sim.LatencyHist
	for i := int64(1); i <= 1000; i++ {
		want.Add(i)
	}
	if snap.Quantile(99) != want.Quantile(99) || snap.Max() != want.Max() {
		t.Errorf("bridge drifted from sim.LatencyHist: p99 %d vs %d", snap.Quantile(99), want.Quantile(99))
	}
}

// TestTraceStoreChain verifies events with one trace id read back as
// an ordered span chain and id 0 is ignored.
func TestTraceStoreChain(t *testing.T) {
	s := NewTraceStore(8)
	s.Add(core.Event{Type: core.LeaseGranted, Trace: 9, At: 1})
	s.Add(core.Event{Type: core.LeaseFailedOver, Trace: 9, At: 2})
	s.Add(core.Event{Type: core.LeaseReleased, Trace: 9, At: 3})
	s.Add(core.Event{Type: core.LeaseGranted, Trace: 0, At: 4}) // ignored

	chain := s.Get(9)
	if len(chain) != 3 {
		t.Fatalf("chain length %d, want 3", len(chain))
	}
	if chain[0].Type != core.LeaseGranted || chain[2].Type != core.LeaseReleased {
		t.Errorf("chain out of order: %+v", chain)
	}
	if s.Len() != 1 {
		t.Errorf("store holds %d traces, want 1 (trace 0 must be ignored)", s.Len())
	}
	if got := s.Get(404); got != nil {
		t.Errorf("unknown trace returned %v", got)
	}
}

// TestTraceStoreEviction verifies the bound: the oldest-started trace
// falls out when a new id arrives at capacity.
func TestTraceStoreEviction(t *testing.T) {
	s := NewTraceStore(2)
	s.Add(core.Event{Trace: 1})
	s.Add(core.Event{Trace: 2})
	s.Add(core.Event{Trace: 3}) // evicts 1
	if s.Get(1) != nil {
		t.Error("oldest trace survived eviction")
	}
	if s.Get(2) == nil || s.Get(3) == nil {
		t.Error("recent traces evicted")
	}
	if _, evicted := s.Stats(); evicted != 1 {
		t.Errorf("evicted = %d, want 1", evicted)
	}
}

// TestBroadcasterDropsSlowConsumer verifies a subscriber that stops
// draining is dropped (channel closed) without stalling Publish or
// losing messages for healthy peers.
func TestBroadcasterDropsSlowConsumer(t *testing.T) {
	b := NewBroadcaster()
	slow := b.Subscribe(1)
	fast := b.Subscribe(16)

	b.Publish([]byte("one")) // fills slow's buffer
	b.Publish([]byte("two")) // overflows it: slow is dropped

	if got := b.Subscribers(); got != 1 {
		t.Fatalf("%d subscribers after overflow, want 1", got)
	}
	// slow's channel delivers the buffered message then closes.
	if msg := <-slow.C; string(msg) != "one" {
		t.Errorf("slow got %q, want \"one\"", msg)
	}
	if _, open := <-slow.C; open {
		t.Error("dropped subscriber's channel still open")
	}
	// fast saw both messages.
	if a, b2 := <-fast.C, <-fast.C; string(a) != "one" || string(b2) != "two" {
		t.Errorf("fast got %q,%q", a, b2)
	}
	if _, dropped := b.Stats(); dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	b.Unsubscribe(fast)
	b.Unsubscribe(fast) // idempotent
}

// TestBroadcasterConcurrent hammers subscribe/publish/unsubscribe from
// many goroutines; run with -race it pins the fan-out's thread safety.
func TestBroadcasterConcurrent(t *testing.T) {
	b := NewBroadcaster()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Publish([]byte("m"))
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := b.Subscribe(4)
				for j := 0; j < 2; j++ {
					select {
					case <-s.C:
					default:
					}
				}
				b.Unsubscribe(s)
			}
		}()
	}
	wg.Wait()
}

// TestCollectorEndToEnd runs a real acquire/release on a flat cluster
// with a Collector attached and checks all three sinks: counters,
// trace chain, and broadcast JSON. The sim runs to completion first —
// determinism means the observer fires synchronously during Run.
func TestCollectorEndToEnd(t *testing.T) {
	cl := core.NewCluster(core.Config{StartAgents: true})
	defer cl.Close()
	cl.RunFor(1 * sim.Second)

	var reg Registry
	col := &Collector{Reg: &reg, Traces: NewTraceStore(0), Events: NewBroadcaster()}
	sub := col.Events.Subscribe(16)
	cancel := col.Attach(cl)
	defer cancel()

	var trace uint64
	app := cl.Node(7)
	app.Run("obs-test", func(p *sim.Proc) {
		lease, err := cl.Acquire(p, core.NewRequest(core.Memory, app, 64<<20))
		if err != nil {
			t.Errorf("acquire: %v", err)
			return
		}
		trace = lease.Trace()
		lease.Release(p)
	})
	cl.RunFor(10 * sim.Second)

	if trace == 0 {
		t.Fatal("lease carried trace id 0")
	}
	granted := reg.Counter("venice_lease_events_total", "",
		map[string]string{"type": "granted", "kind": "memory"}).Value()
	released := reg.Counter("venice_lease_events_total", "",
		map[string]string{"type": "released", "kind": "memory"}).Value()
	if granted != 1 || released != 1 {
		t.Errorf("counters granted=%d released=%d, want 1/1", granted, released)
	}

	chain := col.Traces.Get(trace)
	if len(chain) != 2 {
		t.Fatalf("trace chain %+v, want grant+release", chain)
	}
	if chain[0].Type != core.LeaseGranted || chain[1].Type != core.LeaseReleased {
		t.Errorf("trace chain out of order: %+v", chain)
	}

	var ev core.Event
	if err := json.Unmarshal(<-sub.C, &ev); err != nil {
		t.Fatalf("broadcast message not Event JSON: %v", err)
	}
	if ev.Type != core.LeaseGranted || ev.Trace != trace {
		t.Errorf("broadcast event %+v, want granted trace %d", ev, trace)
	}

	col.MirrorScoreboard("venice_mn_stats", "MN scoreboard.", &cl.MN.Stats)
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `venice_lease_events_total{kind="memory",type="granted"} 1`) {
		t.Errorf("exposition missing lease counter:\n%s", b.String())
	}
}

// TestCollectorPreemptedEvent drives a real preemption — Preemptible
// holders saturate the pool, a Latency request evicts one — and checks
// the preempted event lands in every sink: the class-labelled counter,
// the victim's trace chain, and the SSE broadcast JSON carrying the
// tenant id and class name.
func TestCollectorPreemptedEvent(t *testing.T) {
	topo := fabric.Mesh3D(2, 2, 2)
	adm := &tenancy.Config{
		PerClass: [tenancy.NumClasses]tenancy.Limits{
			tenancy.Preemptible: {ReserveFrac: 0.5, SLOMult: 16},
			tenancy.Standard:    {ReserveFrac: 0.75, MaxWait: sim.Millisecond, SLOMult: 8},
			tenancy.Latency:     {ReserveFrac: 1.0, SLOMult: 4},
		},
		Preempt: true,
	}
	cl := core.NewCluster(core.Config{
		Topology: &topo, NodeMemBytes: 32 << 20,
		StartAgents: true, Admission: adm,
	})
	defer cl.Close()
	for _, i := range []int{0, 1} { // MN and app out of donor candidacy
		if err := cl.Node(i).MemMgr.Reserve(cl.Node(i).MemMgr.Idle()); err != nil {
			t.Fatalf("reserving node %d: %v", i, err)
		}
	}
	cl.RunFor(10 * sim.Millisecond)

	var reg Registry
	col := &Collector{Reg: &reg, Traces: NewTraceStore(0), Events: NewBroadcaster()}
	sub := col.Events.Subscribe(256)
	cancel := col.Attach(cl)
	defer cancel()

	// 6 donors x 32 MiB = 24 leases of 8 MiB; the Preemptible budget
	// covers 12 of them.
	var victims []uint64
	app := cl.Node(1)
	app.Run("preempt-obs", func(p *sim.Proc) {
		for i := 0; ; i++ {
			l, err := cl.Acquire(p, core.NewRequest(core.Memory, app, 8<<20,
				core.WithTenant(uint64(100+i), tenancy.Preemptible)))
			if err != nil {
				break
			}
			victims = append(victims, l.Trace())
		}
		for { // fill the rest of the pool with untagged leases
			if _, err := cl.Acquire(p, core.NewRequest(core.Memory, app, 8<<20)); err != nil {
				break
			}
		}
		if _, err := cl.Acquire(p, core.NewRequest(core.Memory, app, 8<<20,
			core.WithTenant(7, tenancy.Latency))); err != nil {
			t.Errorf("Latency acquire under pressure: %v", err)
		}
	})
	cl.RunFor(10 * sim.Second)

	if got := reg.Counter("venice_lease_events_total", "",
		map[string]string{"type": "preempted", "kind": "memory", "class": "preemptible"}).Value(); got != 1 {
		t.Errorf("class-labelled preempted counter = %d, want 1", got)
	}

	var chain []core.Event
	for _, tr := range victims {
		for _, ev := range col.Traces.Get(tr) {
			if ev.Type == core.LeasePreempted {
				chain = append(chain, ev)
			}
		}
	}
	if len(chain) != 1 {
		t.Fatalf("found %d preempted spans across victim traces, want 1", len(chain))
	}
	if chain[0].Class != tenancy.Preemptible || chain[0].Tenant < 100 {
		t.Errorf("preempted span lost its identity: %+v", chain[0])
	}

	found := false
	for len(sub.C) > 0 {
		var ev core.Event
		if err := json.Unmarshal(<-sub.C, &ev); err != nil {
			t.Fatalf("broadcast message not Event JSON: %v", err)
		}
		if ev.Type == core.LeasePreempted {
			found = true
			if ev.Trace != chain[0].Trace || ev.Class != tenancy.Preemptible {
				t.Errorf("broadcast preempted event %+v does not match trace span %+v", ev, chain[0])
			}
		}
	}
	if !found {
		t.Error("preempted event never reached the broadcast stream")
	}
}

// TestSnapshotFlat captures a flat cluster mid-lease and checks the
// JSON state reflects the live RAT row with its trace id.
func TestSnapshotFlat(t *testing.T) {
	cl := core.NewCluster(core.Config{StartAgents: true})
	defer cl.Close()
	cl.RunFor(1 * sim.Second)

	var st *State
	app := cl.Node(7)
	app.Run("snap-test", func(p *sim.Proc) {
		lease, err := cl.Acquire(p, core.NewRequest(core.Memory, app, 64<<20))
		if err != nil {
			t.Errorf("acquire: %v", err)
			return
		}
		st = SnapshotFlat(cl) // on the sim goroutine, lease live
		lease.Release(p)
	})
	cl.RunFor(10 * sim.Second)

	if st == nil {
		t.Fatal("no snapshot taken")
	}
	if st.Shape != "flat" || len(st.Donors) == 0 {
		t.Fatalf("snapshot %+v lacks donors", st)
	}
	if len(st.Leases) != 1 || st.Leases[0].Trace == 0 {
		t.Fatalf("snapshot leases %+v, want one traced row", st.Leases)
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("state not JSON-marshallable: %v", err)
	}

	var cell StateCell
	if cell.Get() != nil {
		t.Error("empty cell returned a state")
	}
	cell.Set(st)
	if cell.Get() != st {
		t.Error("cell did not return the stored state")
	}
}
