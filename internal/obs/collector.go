package obs

import (
	"encoding/json"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tenancy"
)

// Collector wires a resource plane's lease-lifecycle stream into the
// observability layer: every core.Event increments the registry's
// per-type/per-kind counters, lands in the trace store's span chain,
// and is published (as its stable JSON form) to the broadcaster for
// live SSE consumers. Every sink is optional — leave a field nil to
// skip it.
//
// The observer callback runs synchronously on the simulation
// goroutine and touches only wall-clock structures, so attaching a
// Collector never changes virtual time or determinism.
type Collector struct {
	Reg    *Registry
	Traces *TraceStore
	Events *Broadcaster
}

// Attach subscribes the collector to pl's event stream and returns
// the subscription's cancel.
func (c *Collector) Attach(pl core.Plane) (cancel func()) {
	return pl.Observe(c.OnEvent)
}

// OnEvent feeds one lease-lifecycle event into every configured sink.
// It is the plane observer; scenario code may also call it directly
// with synthetic events.
func (c *Collector) OnEvent(ev core.Event) {
	if c.Reg != nil {
		labels := map[string]string{"type": ev.Type.String(), "kind": ev.Kind.String()}
		// Class-tagged events get a third label; untagged events keep the
		// historical two-label series so pre-tenancy dashboards (and the
		// pinned render tests) see an unchanged wire form.
		if ev.Class != tenancy.ClassNone {
			labels["class"] = ev.Class.String()
		}
		c.Reg.Counter("venice_lease_events_total",
			"Lease-lifecycle events by type and resource kind.",
			labels).Inc()
	}
	if c.Traces != nil {
		c.Traces.Add(ev)
	}
	if c.Events != nil {
		if msg, err := json.Marshal(ev); err == nil {
			c.Events.Publish(msg)
		}
	}
}

// MirrorScoreboard copies a sim.Scoreboard's counters into the
// registry as gauges named metric{key="..."} — gauges, not counters,
// because a scoreboard snapshot is a level read, and re-mirroring
// must overwrite rather than accumulate. Call it from the snapshot
// hook (sim goroutine) whenever fresh values are wanted.
func (c *Collector) MirrorScoreboard(metric, help string, sb *sim.Scoreboard) {
	if c.Reg == nil || sb == nil {
		return
	}
	for _, k := range sb.Keys() {
		c.Reg.Gauge(metric, help, map[string]string{"key": k}).Set(float64(sb.Get(k)))
	}
}
