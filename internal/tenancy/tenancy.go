// Package tenancy is the policy layer over Venice's resource plane:
// tenant identities with priority classes, per-class admission limits,
// and the knobs the monitor plane consults when deciding whether a
// grant is admitted outright, degraded to a smaller window, queued for
// a bounded wait, or rejected — and whether Preemptible-class leases
// may be revoked to make room for a higher class.
//
// The package is deliberately mechanism-free: Decide is a pure function
// of (class, request size, pool pressure), and the monitor plane owns
// the donor walk, the queue poll, and the preemption scan. That split
// keeps the policy unit-testable without a cluster and lets the same
// Config drive the flat Monitor and the sharded sub-MNs alike.
package tenancy

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// Class is a tenant's priority class. The zero value ClassNone marks an
// untagged request: admission never gates it and preemption never
// targets it, so pre-tenancy callers keep today's behavior bit for bit.
// Higher numeric value = higher priority.
type Class uint8

const (
	// ClassNone is the untagged default: invisible to admission.
	ClassNone Class = iota
	// Preemptible tenants trade eviction risk for cheap capacity: they
	// are admitted only under the lowest pressure threshold and their
	// leases are the preemption engine's victims.
	Preemptible
	// Standard tenants get best-effort service with bounded queueing.
	Standard
	// Latency tenants are the interactive tier: admitted up to the full
	// pool and allowed to preempt rather than wait.
	Latency

	// NumClasses sizes per-class tables (ClassNone included).
	NumClasses = 4
)

// Classes lists the tagged classes from highest to lowest priority —
// the order admission favors them and scenarios report them.
func Classes() [3]Class { return [3]Class{Latency, Standard, Preemptible} }

var classNames = map[Class]string{
	ClassNone:   "none",
	Preemptible: "preemptible",
	Standard:    "standard",
	Latency:     "latency",
}

func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// MarshalJSON renders the pinned wire name ("latency", "standard",
// "preemptible", "none") so logs and SSE streams stay greppable.
func (c Class) MarshalJSON() ([]byte, error) {
	s, ok := classNames[c]
	if !ok {
		return nil, fmt.Errorf("tenancy: marshal unknown class %d", uint8(c))
	}
	return json.Marshal(s)
}

// UnmarshalJSON accepts exactly the pinned names.
func (c *Class) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for k, v := range classNames {
		if v == s {
			*c = k
			return nil
		}
	}
	return fmt.Errorf("tenancy: unknown class %q", s)
}

// Limits is one class's admission envelope.
type Limits struct {
	// ReserveFrac is the fraction of pool capacity this class may push
	// total usage to: a request is admitted outright while
	// used+size <= ReserveFrac*capacity. 1.0 means "up to the full
	// pool"; lower fractions keep headroom reserved for higher classes.
	ReserveFrac float64
	// MaxWait bounds how long an over-threshold request may queue at
	// the MN waiting for pressure to drop. Zero disables queueing: the
	// request falls straight through to preemption (if eligible) or
	// rejection.
	MaxWait sim.Dur
	// DegradeFrac enables degraded grants: when the full size does not
	// fit under the threshold but at least DegradeFrac*size does, the
	// MN grants the remaining headroom as a smaller window instead of
	// rejecting. Zero disables degradation.
	DegradeFrac float64
	// SLOMult is the class's latency SLO target as a multiple of the
	// scenario's calibrated unloaded service time. Policy code ignores
	// it; scenarios use it for per-class SLO-miss accounting.
	SLOMult float64
}

// Config is the admission controller's policy: per-class limits plus
// the preemption switch. A nil *Config on the monitor plane disables
// admission entirely.
type Config struct {
	// PerClass is indexed by Class. The ClassNone entry is ignored —
	// untagged requests bypass admission.
	PerClass [NumClasses]Limits
	// Preempt allows Standard/Latency requests that would otherwise be
	// rejected to revoke Preemptible-class leases instead.
	Preempt bool
	// PollInterval is how often a queued request re-evaluates pressure
	// while waiting out its class's MaxWait. Zero defaults to 100µs.
	PollInterval sim.Dur
}

// Default returns the reference policy used by the serving-tenancy
// scenario: Latency admits to the full pool and preempts rather than
// waits; Standard queues up to 2ms and accepts half-size grants;
// Preemptible lives under a 60% ceiling and accepts quarter-size
// grants.
func Default() *Config {
	return &Config{
		PerClass: [NumClasses]Limits{
			Preemptible: {ReserveFrac: 0.60, DegradeFrac: 0.25, SLOMult: 16},
			Standard:    {ReserveFrac: 0.85, MaxWait: 2 * sim.Millisecond, DegradeFrac: 0.5, SLOMult: 8},
			Latency:     {ReserveFrac: 1.0, SLOMult: 4},
		},
		Preempt:      true,
		PollInterval: 100 * sim.Microsecond,
	}
}

// Poll reports the queue re-evaluation period with the default applied.
func (c *Config) Poll() sim.Dur {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 100 * sim.Microsecond
}

// Decision is the admission controller's verdict for one request.
type Decision int

const (
	// Admit grants the full requested size now.
	Admit Decision = iota
	// Degrade grants a smaller window now (the second return value of
	// Decide carries the granted size).
	Degrade
	// Queue holds the request at the MN for up to the class's MaxWait,
	// re-running Decide each poll tick.
	Queue
	// Reject declines the request; the caller surfaces
	// core.ErrAdmissionRejected (after an optional preemption attempt
	// for classes above Preemptible).
	Reject
)

func (d Decision) String() string {
	switch d {
	case Admit:
		return "admit"
	case Degrade:
		return "degrade"
	case Queue:
		return "queue"
	case Reject:
		return "reject"
	}
	return fmt.Sprintf("decision(%d)", int(d))
}

// degradeAlign keeps degraded grants page-aligned so window arithmetic
// downstream never sees sub-page sizes.
const degradeAlign = 4096

// Decide evaluates one request of class c for size units against the
// pool's current idle and capacity (same units as size: bytes for
// memory, device counts for accelerators/NICs). It returns the verdict
// and the granted size — size itself for Admit, the smaller degraded
// size for Degrade, and 0 otherwise. Decide is pure: callers own
// queueing, preemption, and re-evaluation.
func (c *Config) Decide(class Class, size, idle, capacity uint64) (Decision, uint64) {
	if class == ClassNone || class >= NumClasses {
		return Admit, size
	}
	lim := c.PerClass[class]
	budget := uint64(lim.ReserveFrac * float64(capacity))
	var used uint64
	if capacity > idle {
		used = capacity - idle
	}
	if used+size <= budget {
		return Admit, size
	}
	if lim.DegradeFrac > 0 && budget > used {
		g := budget - used
		if size >= degradeAlign {
			g &^= degradeAlign - 1
		}
		min := uint64(lim.DegradeFrac * float64(size))
		if min == 0 {
			min = 1
		}
		if g >= min && g < size {
			return Degrade, g
		}
	}
	if lim.MaxWait > 0 {
		return Queue, 0
	}
	return Reject, 0
}

// Backoff is the victim-side re-acquire schedule after a preemption:
// exponential from Base, capped at Max. The zero value defaults to
// 500µs doubling up to 8ms.
type Backoff struct {
	Base sim.Dur
	Max  sim.Dur
}

// Delay reports the wait before re-acquire attempt n (n starts at 0).
func (b Backoff) Delay(attempt int) sim.Dur {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 500 * sim.Microsecond
	}
	if max <= 0 {
		max = 8 * sim.Millisecond
	}
	if attempt < 0 {
		attempt = 0
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		d = max
	}
	return d
}

// Jain computes the Jain fairness index (Σx)²/(n·Σx²) over per-tenant
// or per-class shares: 1.0 is perfectly fair, 1/n is a single winner.
// Empty or all-zero input reports 1.0 (nothing to be unfair about).
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
