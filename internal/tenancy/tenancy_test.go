package tenancy

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/sim"
)

// TestClassStringsStable pins the wire names: dashboards, SSE consumers,
// and the obs metric labels all grep for these exact strings.
func TestClassStringsStable(t *testing.T) {
	want := map[Class]string{
		ClassNone:   "none",
		Preemptible: "preemptible",
		Standard:    "standard",
		Latency:     "latency",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal %v: %v", c, err)
		}
		if string(b) != `"`+s+`"` {
			t.Errorf("marshal %v = %s, want %q", c, b, s)
		}
		var back Class
		if err := json.Unmarshal(b, &back); err != nil || back != c {
			t.Errorf("round-trip %v: got %v err %v", c, back, err)
		}
	}
	var c Class
	if err := json.Unmarshal([]byte(`"platinum"`), &c); err == nil {
		t.Error("unknown class name unmarshalled without error")
	}
	if _, err := json.Marshal(Class(99)); err == nil {
		t.Error("unknown class value marshalled without error")
	}
}

// TestClassOrder pins the priority lattice: higher class = higher value,
// and Classes() iterates high to low.
func TestClassOrder(t *testing.T) {
	if !(Latency > Standard && Standard > Preemptible && Preemptible > ClassNone) {
		t.Fatalf("class lattice broken: latency=%d standard=%d preemptible=%d none=%d",
			Latency, Standard, Preemptible, ClassNone)
	}
	if Classes() != [3]Class{Latency, Standard, Preemptible} {
		t.Fatalf("Classes() = %v, not high-to-low", Classes())
	}
}

// TestDecide is the policy table: one row per (class, pressure) cell of
// interest, against a 192-unit pool under the Default() config.
func TestDecide(t *testing.T) {
	cfg := Default()
	const cap = 192 << 20 // 24 leases of 8 MiB
	const lease = 8 << 20
	cases := []struct {
		name    string
		class   Class
		size    uint64
		idle    uint64
		want    Decision
		granted uint64
	}{
		{"untagged bypasses admission", ClassNone, lease, 0, Admit, lease},
		{"latency admits into empty pool", Latency, lease, cap, Admit, lease},
		{"latency admits to the last unit", Latency, lease, lease, Admit, lease},
		{"latency rejects only when full", Latency, lease, 0, Reject, 0},
		{"standard admits under 85%", Standard, lease, cap / 2, Admit, lease},
		{"standard queues over 85%", Standard, lease, lease, Queue, 0},
		{"preemptible admits under 60%", Preemptible, lease, cap, Admit, lease},
		{"preemptible rejects over 60%", Preemptible, lease, lease, Reject, 0},
		// Degrade: headroom below full size but above the class floor.
		// used = cap - idle = 188 MiB? No: choose idle so that
		// budget-used lands in [DegradeFrac*size, size).
		// Standard budget = 0.85*192 = 163.2 MiB; idle = 34 MiB →
		// used = 158 MiB → headroom ≈ 5.2 MiB ∈ [4 MiB, 8 MiB).
		{"standard degrades into the gap", Standard, lease, 34 << 20, Degrade, 0},
	}
	for _, tc := range cases {
		dec, g := cfg.Decide(tc.class, tc.size, tc.idle, cap)
		if dec != tc.want {
			t.Errorf("%s: Decide = %v, want %v", tc.name, dec, tc.want)
			continue
		}
		switch dec {
		case Admit:
			if g != tc.size {
				t.Errorf("%s: admit granted %d, want %d", tc.name, g, tc.size)
			}
		case Degrade:
			min := uint64(cfg.PerClass[tc.class].DegradeFrac * float64(tc.size))
			if g < min || g >= tc.size || g%degradeAlign != 0 {
				t.Errorf("%s: degraded grant %d outside [%d,%d) or unaligned", tc.name, g, min, tc.size)
			}
		default:
			if g != 0 {
				t.Errorf("%s: %v carried grant %d, want 0", tc.name, dec, g)
			}
		}
	}
}

// TestDecideDeviceUnits runs the same policy over device counts: size 1
// against small integer capacities must admit/reject without ever
// producing a nonsense degraded grant.
func TestDecideDeviceUnits(t *testing.T) {
	cfg := Default()
	if dec, g := cfg.Decide(Latency, 1, 1, 4); dec != Admit || g != 1 {
		t.Errorf("device admit: got %v/%d", dec, g)
	}
	if dec, _ := cfg.Decide(Preemptible, 1, 1, 4); dec != Reject {
		t.Errorf("device over-threshold: got %v, want Reject", dec)
	}
	if dec, _ := cfg.Decide(Latency, 1, 0, 4); dec != Reject {
		t.Errorf("device full-pool latency: got %v, want Reject", dec)
	}
}

func TestBackoff(t *testing.T) {
	var b Backoff // defaults: 500µs base, 8ms cap
	want := []sim.Dur{
		500 * sim.Microsecond,
		sim.Millisecond,
		2 * sim.Millisecond,
		4 * sim.Millisecond,
		8 * sim.Millisecond,
		8 * sim.Millisecond, // capped
	}
	for i, w := range want {
		if d := b.Delay(i); d != w {
			t.Errorf("Delay(%d) = %v, want %v", i, d, w)
		}
	}
	if d := b.Delay(-3); d != 500*sim.Microsecond {
		t.Errorf("Delay(-3) = %v, want base", d)
	}
	if d := b.Delay(200); d != 8*sim.Millisecond {
		t.Errorf("Delay(200) = %v, want cap (no overflow)", d)
	}
}

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0, 0}, 1},
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{4, 2}, 0.9},
	}
	for _, tc := range cases {
		if got := Jain(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Jain(%v) = %g, want %g", tc.xs, got, tc.want)
		}
	}
}
