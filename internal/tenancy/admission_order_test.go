package tenancy_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/monitor"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/tenancy"
)

// Admission-ordering contract, exercised end to end on both monitor
// planes: under a saturated pool the MN must treat the classes in
// strict lattice order — Preemptible is rejected outright, Standard
// queues and then preempts its way in, Latency preempts immediately
// without ever queueing — and a queued request whose caller set a
// shorter WithTimeout surfaces ErrTimeout instead of hanging.

// orderRig abstracts the plane under test: a flat cluster's MN or a
// hier cluster's rack-0 sub-MN.
type orderRig struct {
	name  string
	plane core.Plane
	app   *node.Node
	stats *sim.Scoreboard
	eng   *sim.Engine
	// opts are appended to every request (the hier rig pins
	// ScopeLocalRack so escalation cannot sidestep the rack's admission).
	opts []core.Option
	// units is the pool size in leases; preemptibleUnits how many the
	// Preemptible budget admits.
	units, preemptibleUnits int
	close                   func()
}

// orderPolicy is the pinned admission policy the ordering table runs
// under: no degradation (sizes stay exact), Standard the only class
// allowed to wait.
func orderPolicy() *tenancy.Config {
	return &tenancy.Config{
		PerClass: [tenancy.NumClasses]tenancy.Limits{
			tenancy.Preemptible: {ReserveFrac: 0.5, SLOMult: 16},
			tenancy.Standard:    {ReserveFrac: 0.75, MaxWait: sim.Millisecond, SLOMult: 8},
			tenancy.Latency:     {ReserveFrac: 1.0, SLOMult: 4},
		},
		Preempt: true,
	}
}

const (
	orderNodeMem = uint64(32 << 20)
	orderLease   = uint64(8 << 20)
)

func flatRig(t *testing.T) *orderRig {
	t.Helper()
	topo := fabric.Mesh3D(2, 2, 2)
	cl := core.NewCluster(core.Config{
		Topology:     &topo,
		NodeMemBytes: orderNodeMem,
		StartAgents:  true,
		Admission:    orderPolicy(),
	})
	for _, i := range []int{0, 1} { // MN and app out of donor candidacy
		if err := cl.Node(i).MemMgr.Reserve(cl.Node(i).MemMgr.Idle()); err != nil {
			t.Fatalf("reserving node %d: %v", i, err)
		}
	}
	cl.RunFor(10 * sim.Millisecond)
	return &orderRig{
		name: "flat", plane: cl, app: cl.Node(1), stats: &cl.MN.Stats,
		eng: cl.Eng, units: 24, preemptibleUnits: 12, close: cl.Close,
	}
}

func hierRig(t *testing.T) *orderRig {
	t.Helper()
	cl := core.NewHierCluster(core.HierConfig{
		Racks: 2, RackX: 2, RackY: 2, RackZ: 1,
		NodeMemBytes:      orderNodeMem,
		HeartbeatInterval: 100 * sim.Microsecond,
		Admission:         orderPolicy(),
	})
	sub := cl.SubNode(0)
	app := cl.Nodes[cl.Hier.RackNodes(0)[1]]
	for _, id := range []fabric.NodeID{sub, app.ID} {
		if err := cl.Nodes[id].MemMgr.Reserve(cl.Nodes[id].MemMgr.Idle()); err != nil {
			t.Fatalf("reserving node %v: %v", id, err)
		}
	}
	cl.RunFor(10 * sim.Millisecond)
	return &orderRig{
		name: "hier", plane: cl, app: app, stats: &cl.Subs[0].Stats,
		eng:   cl.Eng,
		opts:  []core.Option{core.WithScope(monitor.ScopeLocalRack)},
		units: 8, preemptibleUnits: 4, close: cl.Close,
	}
}

func TestAdmissionClassOrdering(t *testing.T) {
	rigs := []func(*testing.T) *orderRig{flatRig, hierRig}
	for _, mk := range rigs {
		rig := mk(t)
		t.Run(rig.name, func(t *testing.T) {
			defer rig.close()
			acquire := func(p *sim.Proc, opts ...core.Option) (core.Lease, error) {
				req := core.NewRequest(core.Memory, rig.app, orderLease, rig.opts...)
				return rig.plane.Acquire(p, req.With(opts...))
			}
			done := rig.app.Run("admission-order", func(p *sim.Proc) {
				// Saturate the Preemptible budget, then fill the rest of the
				// pool with untagged leases admission never sees.
				holders := 0
				for {
					_, err := acquire(p, core.WithTenant(uint64(100+holders), tenancy.Preemptible))
					if err != nil {
						if !errors.Is(err, core.ErrAdmissionRejected) {
							t.Errorf("holder %d: got %v, want ErrAdmissionRejected at budget", holders, err)
						}
						break
					}
					holders++
				}
				if holders != rig.preemptibleUnits {
					t.Errorf("Preemptible budget admitted %d leases, want %d", holders, rig.preemptibleUnits)
					return
				}
				fill := func() int {
					n := 0
					for {
						if _, err := acquire(p); err != nil {
							if !errors.Is(err, core.ErrUnavailable) {
								t.Errorf("untagged fill: got %v, want ErrUnavailable when the pool drains", err)
							}
							return n
						}
						n++
					}
				}
				if got := fill(); got != rig.units-rig.preemptibleUnits {
					t.Errorf("untagged fill took %d leases, want %d", got, rig.units-rig.preemptibleUnits)
					return
				}

				// Lowest class first: rejected outright, and never allowed to
				// preempt its own class.
				preempts := func() int64 { return rig.stats.Get("preempt.memory") }
				queued := func() int64 { return rig.stats.Get("admit.queued") }
				if _, err := acquire(p, core.WithTenant(1, tenancy.Preemptible)); !errors.Is(err, core.ErrAdmissionRejected) {
					t.Errorf("Preemptible under pressure: got %v, want ErrAdmissionRejected", err)
				}
				if got := preempts(); got != 0 {
					t.Errorf("Preemptible rejection triggered %d preemptions, want 0", got)
				}

				// Standard: queues for its bounded wait, then preempts in.
				q0 := queued()
				if _, err := acquire(p, core.WithTenant(2, tenancy.Standard)); err != nil {
					t.Errorf("Standard under pressure: got %v, want a preempted-in grant", err)
					return
				}
				stdPreempts := preempts()
				if stdPreempts == 0 {
					t.Error("Standard grant preempted nothing; it should have evicted Preemptible leases")
				}
				if queued() != q0+1 {
					t.Errorf("Standard grant queued %d times, want exactly 1", queued()-q0)
				}

				// Latency: the full pool is re-filled, then the top class goes
				// straight to preemption — no queue wait at all.
				fill()
				q1 := queued()
				if _, err := acquire(p, core.WithTenant(3, tenancy.Latency)); err != nil {
					t.Errorf("Latency under pressure: got %v, want a preempted-in grant", err)
					return
				}
				if preempts() <= stdPreempts {
					t.Error("Latency grant preempted nothing; it should have evicted a Preemptible lease")
				}
				if queued() != q1 {
					t.Errorf("Latency grant queued (%d -> %d); the top class must never wait", q1, queued())
				}

				// A queued request bounded by a shorter client-side timeout
				// surfaces ErrTimeout promptly instead of hanging out the
				// MN-side wait.
				t0 := p.Now()
				_, err := acquire(p, core.WithTenant(4, tenancy.Standard), core.WithTimeout(200*sim.Microsecond))
				if !errors.Is(err, core.ErrTimeout) {
					t.Errorf("queued request with short timeout: got %v, want ErrTimeout", err)
				}
				if waited := p.Now().Sub(t0); waited >= sim.Millisecond {
					t.Errorf("timed-out request waited %v, want under the 1ms queue bound", waited)
				}
			})
			for !done.Done() && rig.eng.Step() {
			}
			if !done.Done() {
				t.Fatalf("admission-order scenario deadlocked")
			}
		})
	}
}
