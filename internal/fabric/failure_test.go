package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDownLinkDropsAfterBoundedReplay(t *testing.T) {
	eng, net, logs := testNet(t, Pair())
	net.SetLinkDown(0, 1, true)
	eng.Schedule(0, func() {
		net.Send(&Packet{Src: 0, Dst: 1, Kind: "doomed", Size: 64})
	})
	eng.Run() // must terminate: replay is bounded
	if len(logs[1]) != 0 {
		t.Fatal("packet delivered over a down link")
	}
	s := net.Link(0, 1).Stats()
	if s.Replays < maxReplays {
		t.Fatalf("replays = %d, want the full bound %d", s.Replays, maxReplays)
	}
	if s.Replays > maxReplays+1 {
		t.Fatalf("replays = %d, exceeded the bound", s.Replays)
	}
}

func TestLinkRecoveryAfterRepair(t *testing.T) {
	eng, net, logs := testNet(t, Pair())
	net.SetLinkDown(0, 1, true)
	eng.Schedule(0, func() {
		net.Send(&Packet{Src: 0, Dst: 1, Kind: "lost", Size: 64})
	})
	// Repair the link long after the replay budget is spent, then send
	// fresh traffic.
	eng.Schedule(sim.Time(10*sim.Millisecond).Sub(0), func() {
		net.SetLinkDown(0, 1, false)
		net.Send(&Packet{Src: 0, Dst: 1, Kind: "fresh", Size: 64})
	})
	eng.Run()
	if len(logs[1]) != 1 || logs[1][0].pkt.Kind != "fresh" {
		t.Fatalf("after repair got %d deliveries", len(logs[1]))
	}
	if net.Link(0, 1).Down() {
		t.Fatal("link still marked down")
	}
}

func TestCreditsRecoveredAfterDrops(t *testing.T) {
	// A lost packet must return its datalink credit when the sender
	// gives up, or the link wedges forever.
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	p.LinkCredits = 2
	net := NewNetwork(eng, &p, Pair(), sim.NewRNG(5))
	got := 0
	net.SetDelivery(1, func(*Packet) { got++ })
	net.SetDelivery(0, func(*Packet) {})
	net.SetLinkDown(0, 1, true)
	eng.Schedule(0, func() {
		for i := 0; i < 4; i++ { // more than the credit budget
			net.Send(&Packet{Src: 0, Dst: 1, Kind: "lost", Size: 64})
		}
	})
	eng.RunFor(50 * sim.Millisecond)
	net.SetLinkDown(0, 1, false)
	eng.Schedule(0, func() {
		for i := 0; i < 8; i++ {
			net.Send(&Packet{Src: 0, Dst: 1, Kind: "fresh", Size: 64})
		}
	})
	eng.Run()
	if got != 8 {
		t.Fatalf("delivered %d fresh packets, want 8 (credits leaked?)", got)
	}
}

func TestHeavyCRCStormStillDelivers(t *testing.T) {
	eng, net, logs := testNet(t, Pair())
	net.SetErrorRate(0.45) // nearly half of all packets corrupted
	const n = 100
	eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			net.Send(&Packet{Src: 0, Dst: 1, Kind: "storm", Size: 128})
		}
	})
	eng.Run()
	if len(logs[1]) != n {
		t.Fatalf("delivered %d/%d under CRC storm", len(logs[1]), n)
	}
}

// Property: after ANY seeded sequence of link flaps on a 4- or 8-node
// mesh — overlapping outages, flaps mid-traffic, links cut while replay
// storms are in progress — a repaired topology delivers fresh packets
// between every node pair, and the bounded replay mechanism never
// livelocks the engine (Run terminates with a finite event count).
func TestLinkFlapStormProperty(t *testing.T) {
	prop := func(seed uint64, eight bool) bool {
		topo := Mesh3D(2, 2, 1)
		if eight {
			topo = Mesh3D(2, 2, 2)
		}
		eng, net, logs := testNet(t, topo)
		rng := sim.NewRNG(seed)

		// A seeded storm: flaps on random edges at random instants with
		// random outage lengths, interleaved with storm traffic between
		// random pairs. Storm packets crossing a down link are lost by
		// design (static routing, bounded replay) — the property is that
		// nothing wedges and repair restores full connectivity.
		flaps := 3 + rng.Intn(6)
		const flapWindow = 5 * sim.Millisecond
		for f := 0; f < flaps; f++ {
			e := topo.Edges[rng.Intn(len(topo.Edges))]
			at := sim.Dur(rng.Int63n(int64(flapWindow)))
			outage := sim.Dur(1 + rng.Int63n(int64(3*sim.Millisecond)))
			eng.Schedule(at, func() { net.SetLinkDown(e[0], e[1], true) })
			eng.Schedule(at+outage, func() { net.SetLinkDown(e[0], e[1], false) })
		}
		storm := 10 + rng.Intn(20)
		for s := 0; s < storm; s++ {
			src := NodeID(rng.Intn(topo.N))
			dst := NodeID(rng.Intn(topo.N))
			if src == dst {
				continue
			}
			at := sim.Dur(rng.Int63n(int64(flapWindow)))
			eng.Schedule(at, func() {
				net.Send(&Packet{Src: src, Dst: dst, Kind: "storm", Size: 64 + rng.Intn(1024)})
			})
		}
		// Belt and braces: force every link up after the storm, then send
		// one fresh packet along every ordered pair.
		const repairAt = 15 * sim.Millisecond
		eng.Schedule(repairAt, func() {
			for _, e := range topo.Edges {
				net.SetLinkDown(e[0], e[1], false)
			}
		})
		fresh := 0
		eng.Schedule(repairAt+sim.Millisecond, func() {
			for i := 0; i < topo.N; i++ {
				for j := 0; j < topo.N; j++ {
					if i != j {
						net.Send(&Packet{Src: NodeID(i), Dst: NodeID(j), Kind: "fresh", Size: 64})
						fresh++
					}
				}
			}
		})

		eng.Run() // must terminate: replay is bounded even under flap storms

		got := 0
		for i := range logs {
			for _, d := range logs[i] {
				if d.pkt.Kind == "fresh" {
					got++
				}
			}
		}
		if got != fresh {
			t.Logf("seed %d (eight=%v): %d/%d fresh deliveries after repair", seed, eight, got, fresh)
			return false
		}
		// The engine drained with no parked senders: nothing livelocked
		// or leaked a credit waiting on a dead ack.
		if eng.Pending() != 0 {
			t.Logf("seed %d: %d events still pending after Run", seed, eng.Pending())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: routing on a random connected topology (a random spanning
// tree plus extra edges) delivers between every sampled pair along a
// shortest path.
func TestRandomTopologyRoutingProperty(t *testing.T) {
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%10) + 3
		rng := sim.NewRNG(seed)
		topo := Topology{Name: "rand", N: n}
		// Spanning tree first (connectivity), then a few chords.
		for v := 1; v < n; v++ {
			topo.Edges = append(topo.Edges, [2]NodeID{NodeID(rng.Intn(v)), NodeID(v)})
		}
		for k := 0; k < n/2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				topo.Edges = append(topo.Edges, [2]NodeID{NodeID(a), NodeID(b)})
			}
		}
		p := sim.Default()
		p.LinkPorts = 64 // random graphs can exceed the radix budget
		eng := sim.New()
		defer eng.Close()
		net := NewNetwork(eng, &p, topo, sim.NewRNG(1))
		type got struct {
			pkt *Packet
		}
		delivered := make(map[NodeID]*Packet)
		for i := 0; i < n; i++ {
			i := NodeID(i)
			net.SetDelivery(i, func(pkt *Packet) { delivered[i] = pkt })
		}
		src := NodeID(rng.Intn(n))
		dst := NodeID(rng.Intn(n))
		if src == dst {
			return true
		}
		eng.Schedule(0, func() {
			net.Send(&Packet{Src: src, Dst: dst, Kind: "prop", Size: 64})
		})
		eng.Run()
		pkt := delivered[dst]
		_ = got{}
		return pkt != nil && pkt.Hops == topo.HopCount(src, dst)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: hop counts are symmetric and satisfy the triangle
// inequality on the mesh.
func TestHopCountMetricProperties(t *testing.T) {
	topo := Mesh3D(2, 2, 2)
	prop := func(a, b, c uint8) bool {
		x, y, z := NodeID(a%8), NodeID(b%8), NodeID(c%8)
		if topo.HopCount(x, y) != topo.HopCount(y, x) {
			return false
		}
		return topo.HopCount(x, z) <= topo.HopCount(x, y)+topo.HopCount(y, z)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
