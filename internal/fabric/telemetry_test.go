package fabric

import (
	"testing"

	"repro/internal/sim"
)

// The windowed utilization sampler is the ground truth the telemetry
// plane heartbeats to the Monitor Node; these tests pin its contract:
// empty windows read 0, a window's value is the busy fraction of that
// window alone, recent idle is visible immediately (the defect the
// lifetime average had), and overcommitted serializers clamp to 1.

func TestUtilizationSinceEmptyWindowIsZero(t *testing.T) {
	_, net, _ := testNet(t, Pair())
	l := net.Link(0, 1)
	if u := l.UtilizationSince(l.Sample()); u != 0 {
		t.Fatalf("zero-length window reads %v, want 0", u)
	}
	if u := l.Utilization(); u != 0 {
		t.Fatalf("untouched link lifetime utilization = %v, want 0", u)
	}
}

func TestUtilizationSinceIsBusyFractionOfWindow(t *testing.T) {
	eng, net, logs := testNet(t, Pair())
	l := net.Link(0, 1)
	p := sim.Default()
	mark := l.Sample()
	eng.Schedule(0, func() {
		net.Send(&Packet{Src: 0, Dst: 1, Kind: "bulk", Size: 4096})
	})
	const window = 100 * sim.Microsecond
	eng.RunFor(window)
	if len(logs[1]) != 1 {
		t.Fatal("packet not delivered inside the window")
	}
	// One packet's serialization time over the whole window.
	want := p.Serialize(4096).Seconds() / window.Seconds()
	if got := l.UtilizationSince(mark); got != want {
		t.Fatalf("windowed utilization = %v, want %v", got, want)
	}
}

func TestUtilizationSinceSeesRecentIdle(t *testing.T) {
	eng, net, _ := testNet(t, Pair())
	l := net.Link(0, 1)
	// A burst in the first millisecond, then a silent millisecond.
	eng.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			net.Send(&Packet{Src: 0, Dst: 1, Kind: "bulk", Size: 4096})
		}
	})
	eng.RunFor(1 * sim.Millisecond)
	mark := l.Sample()
	eng.RunFor(1 * sim.Millisecond)
	// The idle window reads 0 even though the lifetime average is still
	// diluted by the old burst — the signal placement must not act on.
	if u := l.UtilizationSince(mark); u != 0 {
		t.Fatalf("idle window reads %v, want 0", u)
	}
	if u := l.Utilization(); u <= 0 {
		t.Fatal("lifetime average lost the burst entirely")
	}
}

func TestUtilizationSinceClampsOvercommit(t *testing.T) {
	eng, net, _ := testNet(t, Pair())
	l := net.Link(0, 1)
	p := sim.Default()
	mark := l.Sample()
	// Booking a burst charges BusyTime at transmit time, committing the
	// serializer past any mid-burst sample instant.
	eng.Schedule(0, func() {
		for i := 0; i < 50; i++ {
			net.Send(&Packet{Src: 0, Dst: 1, Kind: "bulk", Size: 4096})
		}
	})
	eng.RunFor(p.Serialize(4096)) // one packet's worth of wall time
	if u := l.UtilizationSince(mark); u != 1 {
		t.Fatalf("overcommitted window reads %v, want clamped 1", u)
	}
}
