package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// Network assembles switches and links according to a topology and
// offers packet injection and delivery registration to the transport
// layer above.
type Network struct {
	Eng  *sim.Engine
	P    *sim.Params
	Topo Topology

	switches []*Switch
	links    map[[2]NodeID]*Link // (from,to) -> link
	routers  []*Router
	rng      *sim.RNG

	// Lat histograms end-to-end packet latency (inject -> local delivery).
	Lat sim.Hist
	// Traffic counts delivered packets and bytes by Kind.
	Traffic sim.Scoreboard
}

// NewNetwork builds the fabric for a topology. Per-node delivery handlers
// must be registered with SetDelivery before traffic flows to that node.
func NewNetwork(eng *sim.Engine, p *sim.Params, topo Topology, rng *sim.RNG) *Network {
	n := &Network{
		Eng:   eng,
		P:     p,
		Topo:  topo,
		links: make(map[[2]NodeID]*Link),
		rng:   rng,
	}
	for i := 0; i < topo.N; i++ {
		n.switches = append(n.switches, newSwitch(eng, p, NodeID(i)))
	}
	for _, e := range topo.Edges {
		n.connect(e[0], e[1])
		n.connect(e[1], e[0])
	}
	tables := topo.shortestNextHops()
	for i, s := range n.switches {
		s.routes = tables[i]
		if s.Degree() > p.LinkPorts {
			panic(fmt.Sprintf("fabric: node %v needs %d ports, switch has %d",
				s.id, s.Degree(), p.LinkPorts))
		}
	}
	return n
}

// connect creates the unidirectional link a->b.
func (n *Network) connect(a, b NodeID) {
	name := fmt.Sprintf("%v->%v", a, b)
	var lrng *sim.RNG
	if n.rng != nil {
		lrng = n.rng.Fork()
	}
	l := newLink(n.Eng, n.P, name, n.switches[b], lrng)
	n.links[[2]NodeID{a, b}] = l
	n.switches[a].ports[b] = l
}

// Switch returns the embedded switch of node id.
func (n *Network) Switch(id NodeID) *Switch { return n.switches[id] }

// Link returns the unidirectional link from a to b, or nil if the nodes
// are not directly connected.
func (n *Network) Link(a, b NodeID) *Link { return n.links[[2]NodeID{a, b}] }

// Nodes reports the number of nodes.
func (n *Network) Nodes() int { return n.Topo.N }

// SetDelivery registers the local-port handler for node id, wrapping it
// with latency accounting.
func (n *Network) SetDelivery(id NodeID, fn DeliverFunc) {
	n.switches[id].local = func(pkt *Packet) {
		n.Lat.AddDur(n.Eng.Now().Sub(pkt.Injected))
		n.Traffic.Add(pkt.Kind+".pkts", 1)
		n.Traffic.Add(pkt.Kind+".bytes", int64(pkt.Size))
		fn(pkt)
	}
}

// Send injects a packet into the fabric at its source node.
func (n *Network) Send(pkt *Packet) {
	if int(pkt.Src) >= len(n.switches) || pkt.Src < 0 {
		panic(fmt.Sprintf("fabric: send from unknown node %v", pkt.Src))
	}
	n.switches[pkt.Src].Inject(pkt)
}

// HopCount reports shortest-path hops between two nodes.
func (n *Network) HopCount(a, b NodeID) int { return n.Topo.HopCount(a, b) }

// SetLinkGbps overrides the serial bandwidth of both directions of the
// a<->b link (0 restores the global Params.LinkGbps). Hierarchical
// topologies use it to model oversubscribed spine uplinks.
func (n *Network) SetLinkGbps(a, b NodeID, gbps float64) {
	if n.Link(a, b) == nil && n.Link(b, a) == nil {
		panic(fmt.Sprintf("fabric: no link %v<->%v to set bandwidth on", a, b))
	}
	if l := n.Link(a, b); l != nil {
		l.SetGbps(gbps)
	}
	if l := n.Link(b, a); l != nil {
		l.SetGbps(gbps)
	}
}

// SetLinkDown fails or restores both directions of the a<->b link.
func (n *Network) SetLinkDown(a, b NodeID, down bool) {
	if l := n.Link(a, b); l != nil {
		l.SetDown(down)
	}
	if l := n.Link(b, a); l != nil {
		l.SetDown(down)
	}
}

// SetNodeDown crashes or restores node id: while down, the node's
// embedded switch drops every packet it touches — injections, transit
// traffic being forwarded through it, and local deliveries. Links to the
// node are untouched (their PHYs still ack at the datalink layer), so a
// concurrent SetLinkDown composes independently.
func (n *Network) SetNodeDown(id NodeID, down bool) {
	if int(id) >= len(n.switches) || id < 0 {
		panic(fmt.Sprintf("fabric: SetNodeDown of unknown node %v", id))
	}
	n.switches[id].SetDown(down)
}

// NodeDown reports whether node id is currently marked crashed.
func (n *Network) NodeDown(id NodeID) bool { return n.switches[id].IsDown() }

// SetErrorRate applies CRC fault injection to every link.
func (n *Network) SetErrorRate(r float64) {
	for _, l := range n.links {
		l.SetErrorRate(r)
	}
}

// InsertRouter replaces the direct links between a and b with a
// one-level external router, reproducing the indirect-network
// configuration of §4.2.2 (Fig. 6). The nodes' routing tables are
// unchanged: the router is a bump in the wire.
func (n *Network) InsertRouter(a, b NodeID) *Router {
	if n.Link(a, b) == nil || n.Link(b, a) == nil {
		panic(fmt.Sprintf("fabric: no direct link %v<->%v to route through", a, b))
	}
	r := newRouter(n.Eng, n.P, fmt.Sprintf("router(%v,%v)", a, b))
	var rrngA, rrngB, rrngC, rrngD *sim.RNG
	if n.rng != nil {
		rrngA, rrngB = n.rng.Fork(), n.rng.Fork()
		rrngC, rrngD = n.rng.Fork(), n.rng.Fork()
	}
	// Each half-link crosses one full node SerDes and one router retimer,
	// over half the original cable length.
	halfFixed := n.P.PhyLatency + n.P.RouterPhy + n.P.Propagation/2
	// a -> router -> b
	aToR := newLink(n.Eng, n.P, fmt.Sprintf("%v->R", a), r, rrngA)
	rToB := newLink(n.Eng, n.P, "R->"+b.String(), n.switches[b], rrngB)
	// b -> router -> a
	bToR := newLink(n.Eng, n.P, fmt.Sprintf("%v->R", b), r, rrngC)
	rToA := newLink(n.Eng, n.P, "R->"+a.String(), n.switches[a], rrngD)
	for _, l := range []*Link{aToR, rToB, bToR, rToA} {
		l.fixed = halfFixed
	}
	r.out[aToR] = rToB
	r.out[bToR] = rToA
	n.switches[a].ports[b] = aToR
	n.switches[b].ports[a] = bToR
	n.links[[2]NodeID{a, b}] = aToR
	n.links[[2]NodeID{b, a}] = bToR
	n.routers = append(n.routers, r)
	return r
}

// TotalLinkStats sums the counters over all links.
func (n *Network) TotalLinkStats() LinkStats {
	var total LinkStats
	for _, l := range n.links {
		s := l.Stats()
		total.Packets += s.Packets
		total.Bytes += s.Bytes
		total.Corrupted += s.Corrupted
		total.Replays += s.Replays
		total.CreditStall += s.CreditStall
		total.BusyTime += s.BusyTime
	}
	return total
}
