package fabric

import (
	"testing"

	"repro/internal/sim"
)

// delivery records one packet arrival and its timestamp.
type delivery struct {
	pkt *Packet
	at  sim.Time
}

// testNet builds a network over topo with a per-node delivery log.
// Delivery timestamps are captured at arrival because the engine keeps
// running housekeeping events (replay timers) after the last delivery.
func testNet(t *testing.T, topo Topology) (*sim.Engine, *Network, [][]delivery) {
	t.Helper()
	eng := sim.New()
	t.Cleanup(eng.Close)
	p := sim.Default()
	net := NewNetwork(eng, &p, topo, sim.NewRNG(1))
	logs := make([][]delivery, topo.N)
	for i := 0; i < topo.N; i++ {
		i := i
		net.SetDelivery(NodeID(i), func(pkt *Packet) {
			logs[i] = append(logs[i], delivery{pkt, eng.Now()})
		})
	}
	return eng, net, logs
}

func TestOneHopLatencyMatchesTable1(t *testing.T) {
	eng, net, logs := testNet(t, Pair())
	eng.Schedule(0, func() {
		net.Send(&Packet{Src: 0, Dst: 1, Kind: "test", Size: 64})
	})
	eng.Run()
	if len(logs[1]) != 1 {
		t.Fatal("packet not delivered")
	}
	p := sim.Default()
	// Fixed hop latency 1.4µs + serialization of 64B+16B header at 5Gbps.
	want := sim.Time(p.HopLatency() + p.Serialize(64))
	if got := logs[1][0].at; got != want {
		t.Fatalf("delivered at %v, want %v", got, want)
	}
}

func TestMultiHopLatencyScalesWithHops(t *testing.T) {
	eng, net, logs := testNet(t, Line(4))
	eng.Schedule(0, func() {
		net.Send(&Packet{Src: 0, Dst: 3, Kind: "test", Size: 64})
	})
	eng.Run()
	if len(logs[3]) != 1 {
		t.Fatal("packet not delivered")
	}
	if logs[3][0].pkt.Hops != 3 {
		t.Fatalf("Hops = %d, want 3", logs[3][0].pkt.Hops)
	}
	p := sim.Default()
	want := sim.Time(3 * (p.HopLatency() + p.Serialize(64)))
	if got := logs[3][0].at; got != want {
		t.Fatalf("3-hop delivery at %v, want %v", got, want)
	}
}

func TestBandwidthSerializesBackToBackPackets(t *testing.T) {
	eng, net, logs := testNet(t, Pair())
	const npkt = 10
	eng.Schedule(0, func() {
		for i := 0; i < npkt; i++ {
			net.Send(&Packet{Src: 0, Dst: 1, Kind: "bulk", Size: 4096})
		}
	})
	eng.Run()
	if len(logs[1]) != npkt {
		t.Fatalf("delivered %d, want %d", len(logs[1]), npkt)
	}
	p := sim.Default()
	// Last packet leaves the serializer after npkt serialization times.
	want := sim.Time(sim.Dur(npkt)*p.Serialize(4096) + p.HopLatency())
	got := logs[1][npkt-1].at
	if got < want-1 || got > want+1 {
		t.Fatalf("last delivery at %v, want ~%v", got, want)
	}
	link := net.Link(0, 1)
	if link.Stats().Packets != npkt {
		t.Fatalf("link packets = %d", link.Stats().Packets)
	}
	if link.Stats().Bytes != npkt*4096 {
		t.Fatalf("link bytes = %d", link.Stats().Bytes)
	}
}

func TestMeshTopologyShape(t *testing.T) {
	topo := Mesh3D(2, 2, 2)
	if topo.N != 8 {
		t.Fatalf("N = %d", topo.N)
	}
	// A 2x2x2 mesh has 12 edges; every node has degree 3.
	if len(topo.Edges) != 12 {
		t.Fatalf("edges = %d, want 12", len(topo.Edges))
	}
	adj := topo.adjacency()
	for i, a := range adj {
		if len(a) != 3 {
			t.Fatalf("node %d degree = %d, want 3", i, len(a))
		}
	}
	// Opposite corners are 3 hops apart.
	if got := topo.HopCount(0, 7); got != 3 {
		t.Fatalf("HopCount(0,7) = %d, want 3", got)
	}
	if got := topo.HopCount(0, 0); got != 0 {
		t.Fatalf("HopCount(0,0) = %d, want 0", got)
	}
}

func TestMeshRoutingDeliversAllPairs(t *testing.T) {
	eng, net, logs := testNet(t, Mesh3D(2, 2, 2))
	eng.Schedule(0, func() {
		for s := 0; s < 8; s++ {
			for d := 0; d < 8; d++ {
				if s == d {
					continue
				}
				net.Send(&Packet{Src: NodeID(s), Dst: NodeID(d), Kind: "allpairs", Size: 64})
			}
		}
	})
	eng.Run()
	for d := 0; d < 8; d++ {
		if len(logs[d]) != 7 {
			t.Fatalf("node %d received %d packets, want 7", d, len(logs[d]))
		}
		for _, dl := range logs[d] {
			pkt := dl.pkt
			if pkt.Dst != NodeID(d) {
				t.Fatalf("misdelivered %v to node %d", pkt, d)
			}
			if want := net.HopCount(pkt.Src, pkt.Dst); pkt.Hops != want {
				t.Fatalf("%v took %d hops, want shortest path %d", pkt, pkt.Hops, want)
			}
		}
	}
}

func TestRouterInsertionAddsLatency(t *testing.T) {
	p := sim.Default()

	direct := func() sim.Time {
		eng, net, logs := testNet(t, Pair())
		eng.Schedule(0, func() { net.Send(&Packet{Src: 0, Dst: 1, Kind: "t", Size: 64}) })
		eng.Run()
		return logs[1][0].at
	}()

	routed := func() sim.Time {
		eng, net, logs := testNet(t, Pair())
		r := net.InsertRouter(0, 1)
		eng.Schedule(0, func() { net.Send(&Packet{Src: 0, Dst: 1, Kind: "t", Size: 64}) })
		eng.Run()
		if r.Forwarded() != 1 {
			t.Fatalf("router forwarded %d, want 1", r.Forwarded())
		}
		return logs[1][0].at
	}()

	if routed <= direct {
		t.Fatalf("routed path %v not slower than direct %v", routed, direct)
	}
	// Expected penalty: one extra serialization, one extra node+retimer PHY
	// pair, and the router traversal.
	wantDelta := sim.Dur(routed - direct)
	expect := p.Serialize(64) + 2*p.RouterPhy + p.RouterLat
	if wantDelta != expect {
		t.Fatalf("router delta = %v, want %v", wantDelta, expect)
	}
	// The paper observes >20%% overhead for CRMA round trips; sanity-check
	// the one-way inflation is in a plausible band (20–60%%).
	ratio := float64(routed) / float64(direct)
	if ratio < 1.2 || ratio > 1.6 {
		t.Fatalf("routed/direct = %.2f, want within [1.2,1.6]", ratio)
	}
}

func TestOffChipInterfaceAddsCrossings(t *testing.T) {
	p := sim.Default()
	run := func(offchip bool) sim.Time {
		eng, net, logs := testNet(t, Pair())
		if offchip {
			net.Switch(0).SetOffChip(true)
			net.Switch(1).SetOffChip(true)
		}
		eng.Schedule(0, func() { net.Send(&Packet{Src: 0, Dst: 1, Kind: "t", Size: 64}) })
		eng.Run()
		return logs[1][0].at
	}
	on, off := run(false), run(true)
	if got, want := sim.Dur(off-on), 2*p.OffChipCrossing; got != want {
		t.Fatalf("off-chip delta = %v, want %v (inject + deliver)", got, want)
	}
}

func TestCRCReplayDeliversEverythingEventually(t *testing.T) {
	eng, net, logs := testNet(t, Pair())
	net.SetErrorRate(0.2)
	const npkt = 200
	eng.Schedule(0, func() {
		for i := 0; i < npkt; i++ {
			net.Send(&Packet{Src: 0, Dst: 1, Kind: "lossy", Size: 256})
		}
	})
	eng.Run()
	if len(logs[1]) != npkt {
		t.Fatalf("delivered %d, want %d despite errors", len(logs[1]), npkt)
	}
	s := net.Link(0, 1).Stats()
	if s.Corrupted == 0 {
		t.Fatal("no corruption observed at 20% error rate")
	}
	if s.Replays < s.Corrupted {
		t.Fatalf("replays %d < corrupted %d", s.Replays, s.Corrupted)
	}
}

func TestCreditStallsUnderBurst(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	p.LinkCredits = 2
	net := NewNetwork(eng, &p, Pair(), sim.NewRNG(1))
	got := 0
	net.SetDelivery(1, func(*Packet) { got++ })
	eng.Schedule(0, func() {
		for i := 0; i < 50; i++ {
			net.Send(&Packet{Src: 0, Dst: 1, Kind: "burst", Size: 4096})
		}
	})
	eng.Run()
	if got != 50 {
		t.Fatalf("delivered %d, want 50", got)
	}
	if net.Link(0, 1).Stats().CreditStall == 0 {
		t.Fatal("expected credit stalls with 2 credits and a 50-packet burst")
	}
}

func TestNetworkTrafficAccounting(t *testing.T) {
	eng, net, _ := testNet(t, Pair())
	eng.Schedule(0, func() {
		net.Send(&Packet{Src: 0, Dst: 1, Kind: "crma.req", Size: 16})
		net.Send(&Packet{Src: 0, Dst: 1, Kind: "crma.req", Size: 16})
		net.Send(&Packet{Src: 1, Dst: 0, Kind: "crma.resp", Size: 64})
	})
	eng.Run()
	if got := net.Traffic.Get("crma.req.pkts"); got != 2 {
		t.Fatalf("crma.req.pkts = %d, want 2", got)
	}
	if got := net.Traffic.Get("crma.resp.bytes"); got != 64 {
		t.Fatalf("crma.resp.bytes = %d, want 64", got)
	}
	if net.Lat.N() != 3 {
		t.Fatalf("latency samples = %d, want 3", net.Lat.N())
	}
}

func TestLinkUtilizationUnderSaturation(t *testing.T) {
	eng, net, _ := testNet(t, Pair())
	eng.Schedule(0, func() {
		for i := 0; i < 100; i++ {
			net.Send(&Packet{Src: 0, Dst: 1, Kind: "sat", Size: 65536})
		}
	})
	eng.Run()
	u := net.Link(0, 1).Utilization()
	if u < 0.9 || u > 1.0 {
		t.Fatalf("utilization = %.3f, want near 1 under saturation", u)
	}
}

func TestStarAndFullMeshTopologies(t *testing.T) {
	star := Star(5)
	if star.HopCount(1, 2) != 2 {
		t.Fatalf("star leaf-to-leaf hops = %d, want 2", star.HopCount(1, 2))
	}
	full := FullMesh(5)
	if full.HopCount(1, 4) != 1 {
		t.Fatalf("full mesh hops = %d, want 1", full.HopCount(1, 4))
	}
}

func TestDisconnectedTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("building a disconnected network did not panic")
		}
	}()
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	NewNetwork(eng, &p, Topology{Name: "disc", N: 3, Edges: [][2]NodeID{{0, 1}}}, nil)
}

func TestPortBudgetEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("exceeding the port budget did not panic")
		}
	}()
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	p.LinkPorts = 3
	NewNetwork(eng, &p, FullMesh(5), nil) // degree 4 > 3 ports
}
