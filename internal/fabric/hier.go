package fabric

import "fmt"

// This file scales the fabric past the prototype's single 8-node mesh:
// a hierarchical rack/spine topology in which each rack is the familiar
// x×y×z mesh and racks are joined by a tier of spine switches over a
// configurable (typically oversubscribed) set of uplinks. The paper's
// Monitor Node design assumes one rack; internal/monitor's sharded
// plane (sub-MN per rack + root MN) rides on the rack structure this
// type exposes.

// Hier is a rack/spine topology: Racks meshes of RackSize nodes each,
// joined by Spines spine switches. It embeds the flat Topology the
// Network layer consumes, plus the rack structure the monitor plane and
// the experiments need.
//
// Node-id layout: rack r occupies ids [r*RackSize, (r+1)*RackSize);
// spine switch s has id Racks*RackSize + s. Uplink u of a rack is the
// rack's node with intra-rack index u, cabled to spine u % Spines; the
// spine switches themselves form a full mesh so every pair of racks is
// connected for any uplink/spine combination.
type Hier struct {
	Topology
	Racks    int
	RackSize int
	Spines   int
	Uplinks  int
}

// RackSpine builds a hierarchical fabric of racks×(x×y×z) mesh nodes
// behind spines spine switches, with uplinks uplink cables per rack.
// The rack tier reuses Mesh3D edge construction exactly, so intra-rack
// routes (and hop counts) match a standalone mesh of the same shape.
func RackSpine(racks, x, y, z, spines, uplinks int) Hier {
	rackSize := x * y * z
	if racks < 1 {
		panic("fabric: RackSpine needs at least one rack")
	}
	if x < 1 || y < 1 || z < 1 {
		panic("fabric: rack mesh dimensions must be positive")
	}
	if spines < 1 {
		panic("fabric: RackSpine needs at least one spine switch")
	}
	if uplinks < 1 || uplinks > rackSize {
		panic(fmt.Sprintf("fabric: uplinks %d out of [1, rack size %d]", uplinks, rackSize))
	}
	h := Hier{
		Racks:    racks,
		RackSize: rackSize,
		Spines:   spines,
		Uplinks:  uplinks,
	}
	h.Name = fmt.Sprintf("rack%dx(%dx%dx%d)+spine%d", racks, x, y, z, spines)
	h.N = racks*rackSize + spines
	mesh := Mesh3D(x, y, z)
	for r := 0; r < racks; r++ {
		base := NodeID(r * rackSize)
		for _, e := range mesh.Edges {
			h.Edges = append(h.Edges, [2]NodeID{base + e[0], base + e[1]})
		}
	}
	for r := 0; r < racks; r++ {
		for u := 0; u < uplinks; u++ {
			h.Edges = append(h.Edges, [2]NodeID{NodeID(r*rackSize + u), h.SpineID(u % spines)})
		}
	}
	for a := 0; a < spines; a++ {
		for b := a + 1; b < spines; b++ {
			h.Edges = append(h.Edges, [2]NodeID{h.SpineID(a), h.SpineID(b)})
		}
	}
	return h
}

// RackOf reports which rack a node belongs to; ok is false for spine
// switches.
func (h Hier) RackOf(id NodeID) (rack int, ok bool) {
	if int(id) < 0 || int(id) >= h.Racks*h.RackSize {
		return 0, false
	}
	return int(id) / h.RackSize, true
}

// IsSpine reports whether id is a spine switch.
func (h Hier) IsSpine(id NodeID) bool {
	return int(id) >= h.Racks*h.RackSize && int(id) < h.N
}

// SpineID returns the node id of spine switch s.
func (h Hier) SpineID(s int) NodeID {
	if s < 0 || s >= h.Spines {
		panic(fmt.Sprintf("fabric: spine %d out of range [0, %d)", s, h.Spines))
	}
	return NodeID(h.Racks*h.RackSize + s)
}

// RackNodes lists the node ids of rack r in ascending order.
func (h Hier) RackNodes(r int) []NodeID {
	if r < 0 || r >= h.Racks {
		panic(fmt.Sprintf("fabric: rack %d out of range [0, %d)", r, h.Racks))
	}
	ids := make([]NodeID, h.RackSize)
	for i := range ids {
		ids[i] = NodeID(r*h.RackSize + i)
	}
	return ids
}

// SpineEdges lists every edge of the spine tier — rack-uplink↔spine and
// spine↔spine — in construction order. The scale scenarios apply the
// uplink bandwidth override to exactly these links.
func (h Hier) SpineEdges() [][2]NodeID {
	var edges [][2]NodeID
	for _, e := range h.Edges {
		if h.IsSpine(e[0]) || h.IsSpine(e[1]) {
			edges = append(edges, e)
		}
	}
	return edges
}

// MaxDegree reports the largest port count any node of the topology
// needs. Spine switches routinely exceed the prototype's radix-7
// embedded switch; callers building a Network for such a topology must
// provision Params.LinkPorts accordingly (modeling higher-radix spine
// silicon).
func (t Topology) MaxDegree() int {
	max := 0
	for _, adj := range t.adjacency() {
		if len(adj) > max {
			max = len(adj)
		}
	}
	return max
}
