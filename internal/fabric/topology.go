package fabric

import "fmt"

// Topology describes which node pairs have direct links. Links are
// created in both directions for every adjacency.
type Topology struct {
	Name  string
	N     int
	Edges [][2]NodeID
}

// Pair returns two directly connected nodes — the configuration of the
// §4.2 latency experiments ("directly connected, without an intermediate
// router node").
func Pair() Topology {
	return Topology{Name: "pair", N: 2, Edges: [][2]NodeID{{0, 1}}}
}

// Line returns n nodes in a chain.
func Line(n int) Topology {
	t := Topology{Name: fmt.Sprintf("line%d", n), N: n}
	for i := 0; i < n-1; i++ {
		t.Edges = append(t.Edges, [2]NodeID{NodeID(i), NodeID(i + 1)})
	}
	return t
}

// Star returns n nodes all connected to node 0.
func Star(n int) Topology {
	t := Topology{Name: fmt.Sprintf("star%d", n), N: n}
	for i := 1; i < n; i++ {
		t.Edges = append(t.Edges, [2]NodeID{0, NodeID(i)})
	}
	return t
}

// FullMesh returns n fully interconnected nodes.
func FullMesh(n int) Topology {
	t := Topology{Name: fmt.Sprintf("full%d", n), N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.Edges = append(t.Edges, [2]NodeID{NodeID(i), NodeID(j)})
		}
	}
	return t
}

// Mesh3D returns an x×y×z mesh. Mesh3D(2,2,2) is the prototype's
// eight-node 3D mesh (Fig. 4 / Table 1). Node (i,j,k) has id
// i + j*x + k*x*y.
func Mesh3D(x, y, z int) Topology {
	if x < 1 || y < 1 || z < 1 {
		panic("fabric: mesh dimensions must be positive")
	}
	t := Topology{Name: fmt.Sprintf("mesh%dx%dx%d", x, y, z), N: x * y * z}
	id := func(i, j, k int) NodeID { return NodeID(i + j*x + k*x*y) }
	for k := 0; k < z; k++ {
		for j := 0; j < y; j++ {
			for i := 0; i < x; i++ {
				if i+1 < x {
					t.Edges = append(t.Edges, [2]NodeID{id(i, j, k), id(i+1, j, k)})
				}
				if j+1 < y {
					t.Edges = append(t.Edges, [2]NodeID{id(i, j, k), id(i, j+1, k)})
				}
				if k+1 < z {
					t.Edges = append(t.Edges, [2]NodeID{id(i, j, k), id(i, j, k+1)})
				}
			}
		}
	}
	return t
}

// NeighborsOf reports the nodes directly connected to id, in
// deterministic (edge-construction) order.
func (t Topology) NeighborsOf(id NodeID) []NodeID {
	return t.adjacency()[id]
}

// adjacency builds neighbor lists (sorted by construction order, which is
// deterministic).
func (t Topology) adjacency() [][]NodeID {
	adj := make([][]NodeID, t.N)
	for _, e := range t.Edges {
		a, b := e[0], e[1]
		if a < 0 || int(a) >= t.N || b < 0 || int(b) >= t.N || a == b {
			panic(fmt.Sprintf("fabric: bad edge %v in topology %s", e, t.Name))
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return adj
}

// shortestNextHops computes, for every source, the next hop on a shortest
// path to every destination (BFS; ties broken by neighbor insertion
// order, making routes deterministic).
func (t Topology) shortestNextHops() []map[NodeID]NodeID {
	adj := t.adjacency()
	tables := make([]map[NodeID]NodeID, t.N)
	for src := 0; src < t.N; src++ {
		dist := make([]int, t.N)
		first := make([]NodeID, t.N) // first hop from src toward index
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		first[src] = NodeID(src)
		queue := []NodeID{NodeID(src)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] != -1 {
					continue
				}
				dist[v] = dist[u] + 1
				if u == NodeID(src) {
					first[v] = v
				} else {
					first[v] = first[u]
				}
				queue = append(queue, v)
			}
		}
		table := make(map[NodeID]NodeID)
		for dst := 0; dst < t.N; dst++ {
			if dst == src {
				continue
			}
			if dist[dst] == -1 {
				panic(fmt.Sprintf("fabric: topology %s is disconnected (no path %d->%d)", t.Name, src, dst))
			}
			table[NodeID(dst)] = first[dst]
		}
		tables[src] = table
	}
	return tables
}

// NextHops returns, for every source node, the next hop on the
// deterministic shortest path to every destination — the same tables
// the switches route by, exposed so control-plane consumers (the
// telemetry view's path-utilization walk) can reason about the links a
// node pair's traffic actually crosses.
func (t Topology) NextHops() []map[NodeID]NodeID {
	return t.shortestNextHops()
}

// HopCount reports the shortest-path hop count between a and b.
func (t Topology) HopCount(a, b NodeID) int {
	if a == b {
		return 0
	}
	adj := t.adjacency()
	dist := make([]int, t.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[a] = 0
	queue := []NodeID{a}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist[b]
}
