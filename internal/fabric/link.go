package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// receiver consumes packets arriving over a link.
type receiver interface {
	receive(pkt *Packet, from *Link)
}

// LinkStats exposes a link's lifetime counters.
type LinkStats struct {
	Packets     int64
	Bytes       int64
	Corrupted   int64 // dropped by receiver CRC check
	Replays     int64 // retransmissions by the sender replay mechanism
	CreditStall int64 // packets that had to wait for a datalink credit
	BusyTime    sim.Dur
}

// Link is one unidirectional point-to-point channel: serializer, wire,
// and the datalink protocol of §5.1.1 (credit-based flow control toward
// the receiver's buffers, CRC error detection at the receiver, replay at
// the sender).
type Link struct {
	eng  *sim.Engine
	p    *sim.Params
	name string
	to   receiver

	// fixed is the total latency a packet pays in flight after leaving the
	// serializer: sender PHY + propagation + receiver PHY. Router-adjacent
	// links override it (the router's retimer PHYs are cheaper than a full
	// node SerDes).
	fixed sim.Dur

	// gbps overrides Params.LinkGbps for this link when positive — the
	// per-cable bandwidth knob hierarchical topologies use to model
	// oversubscribed spine uplinks.
	gbps float64

	nextFree sim.Time // serializer occupancy (bandwidth model)
	credits  int      // datalink credits available at the sender
	waitQ    []*Packet

	errRate float64 // probability a packet arrives corrupted
	rng     *sim.RNG
	down    bool

	pendingAck map[uint64]*Packet // awaiting receiver ack, for replay
	replays    map[uint64]int
	linkSeq    uint64

	stats LinkStats
}

// maxReplays bounds retransmission attempts before a packet is declared
// lost (the datalink gives up; the fault surfaces in the Topology Status
// Table rather than as an infinite replay storm).
const maxReplays = 8

// newLink wires a unidirectional link delivering to dst.
func newLink(eng *sim.Engine, p *sim.Params, name string, dst receiver, rng *sim.RNG) *Link {
	return &Link{
		eng:        eng,
		p:          p,
		name:       name,
		to:         dst,
		fixed:      2*p.PhyLatency + p.Propagation,
		credits:    p.LinkCredits,
		rng:        rng,
		pendingAck: make(map[uint64]*Packet),
		replays:    make(map[uint64]int),
	}
}

// Name reports the link's diagnostic name, e.g. "n0->n1".
func (l *Link) Name() string { return l.name }

// Stats returns a copy of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SetErrorRate enables CRC fault injection: each packet independently
// arrives corrupted with probability r. The receiver drops corrupted
// packets; the sender replays them after the replay timeout.
func (l *Link) SetErrorRate(r float64) {
	if r < 0 || r >= 1 {
		panic(fmt.Sprintf("fabric: error rate %v out of [0,1)", r))
	}
	l.errRate = r
}

// SetGbps overrides this link's serial bandwidth (0 restores the global
// Params.LinkGbps). Only serialization time changes; the fixed PHY and
// propagation latencies are rate-independent.
func (l *Link) SetGbps(gbps float64) {
	if gbps < 0 {
		panic(fmt.Sprintf("fabric: negative link bandwidth %v", gbps))
	}
	l.gbps = gbps
}

// Gbps reports the link's effective serial bandwidth.
func (l *Link) Gbps() float64 {
	if l.gbps > 0 {
		return l.gbps
	}
	return l.p.LinkGbps
}

// serialize reports the wire time for size bytes at the link's
// effective rate.
func (l *Link) serialize(size int) sim.Dur {
	return l.p.SerializeAt(size, l.Gbps())
}

// SetDown marks the link failed (packets vanish in flight) or restores
// it. The datalink's bounded replay gives up on packets lost to a down
// link; the runtime's Topology Status Table reflects the failure via
// agent probes.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is failed.
func (l *Link) Down() bool { return l.down }

// Utilization reports the fraction of the interval [0, now] the
// serializer was busy. As a telemetry signal this lifetime average is
// nearly useless after warm-up — it dilutes every burst over the whole
// run — so samplers should prefer Sample/UtilizationSince, which report
// a recent window instead.
func (l *Link) Utilization() float64 {
	return l.UtilizationSince(LinkSample{})
}

// LinkSample marks one instant of a link's busy-time accumulation; a
// later UtilizationSince against it yields the utilization of just the
// window between the two instants. The zero value marks time zero, so
// UtilizationSince(LinkSample{}) is the lifetime average.
type LinkSample struct {
	At   sim.Time
	Busy sim.Dur
}

// Sample captures the link's current busy-time accumulation for
// windowed utilization measurement.
func (l *Link) Sample() LinkSample {
	return LinkSample{At: l.eng.Now(), Busy: l.stats.BusyTime}
}

// UtilizationSince reports the fraction of the window (s.At, now] the
// serializer was busy — the windowed signal the telemetry plane
// heartbeats to the Monitor Node. An empty window reports 0.
func (l *Link) UtilizationSince(s LinkSample) float64 {
	window := l.eng.Now().Sub(s.At)
	if window <= 0 {
		return 0
	}
	busy := l.stats.BusyTime - s.Busy
	if busy < 0 {
		busy = 0
	}
	u := busy.Seconds() / window.Seconds()
	// The serializer can be committed past the sample instant (nextFree
	// beyond now books BusyTime early); clamp so consumers see [0, 1].
	if u > 1 {
		u = 1
	}
	return u
}

// send queues a packet for transmission, respecting datalink credits.
func (l *Link) send(pkt *Packet) {
	if l.credits == 0 {
		l.stats.CreditStall++
		l.waitQ = append(l.waitQ, pkt)
		return
	}
	l.credits--
	l.transmit(pkt, false)
}

// transmit pushes one packet through the serializer and schedules its
// arrival. A replay keeps its already-assigned sequence number.
func (l *Link) transmit(pkt *Packet, isReplay bool) {
	now := l.eng.Now()
	ser := l.serialize(pkt.Size)
	depart := now
	if l.nextFree > depart {
		depart = l.nextFree
	}
	l.nextFree = depart.Add(ser)
	l.stats.BusyTime += ser
	l.stats.Packets++
	l.stats.Bytes += int64(pkt.Size)

	seq := l.linkSeq
	l.linkSeq++
	l.pendingAck[seq] = pkt
	if isReplay {
		l.stats.Replays++
	}

	arrive := l.nextFree.Add(l.fixed)
	l.eng.At(arrive, func() { l.arrive(pkt, seq) })
	// Sender-side replay timer: anchored past the latest instant a
	// successful ack could clear the entry (arrival + reverse flight),
	// plus the configured timeout margin.
	ackBy := arrive.Add(l.fixed + l.serialize(0))
	l.eng.At(ackBy.Add(l.p.ReplayTO), func() { l.checkReplay(seq) })
}

// arrive runs at the receiver: CRC check, ack, delivery, credit return.
func (l *Link) arrive(pkt *Packet, seq uint64) {
	if l.down {
		return // lost in flight; replay until the bound, then give up
	}
	if l.errRate > 0 && l.rng != nil && l.rng.Bool(l.errRate) {
		l.stats.Corrupted++
		return // no ack; the sender's replay timer will fire
	}
	// Ack flows back over the paired reverse channel; model it as a fixed
	// small-packet delay without charging the serializer.
	ackDelay := l.fixed + l.serialize(0)
	l.eng.Schedule(ackDelay, func() { delete(l.pendingAck, seq) })
	// The receiver buffer frees once the switch has taken the packet;
	// return the credit after that plus the reverse flight.
	l.eng.Schedule(l.p.SwitchLat+ackDelay, l.returnCredit)
	l.to.receive(pkt, l)
}

// returnCredit hands a buffer credit back to the sender and drains the
// wait queue.
func (l *Link) returnCredit() {
	l.credits++
	if len(l.waitQ) > 0 && l.credits > 0 {
		pkt := l.waitQ[0]
		l.waitQ = l.waitQ[1:]
		l.credits--
		l.transmit(pkt, false)
	}
}

// checkReplay retransmits a packet whose ack never arrived, up to the
// replay bound.
func (l *Link) checkReplay(seq uint64) {
	pkt, ok := l.pendingAck[seq]
	if !ok {
		delete(l.replays, seq)
		return // acked
	}
	delete(l.pendingAck, seq)
	n := l.replays[seq] + 1
	delete(l.replays, seq)
	if n > maxReplays {
		l.returnCredit() // free the buffer the lost packet held
		return
	}
	l.transmitReplayed(pkt, n)
}

// transmitReplayed resends a packet carrying its replay count forward.
func (l *Link) transmitReplayed(pkt *Packet, count int) {
	l.transmit(pkt, true)
	// transmit assigned a fresh link sequence number; propagate the count.
	l.replays[l.linkSeq-1] = count
}
