package fabric

import (
	"testing"

	"repro/internal/sim"
)

// refDistances is an independently-written BFS over a topology's edge
// list, used as ground truth for the hop-count property: it shares no
// code with Topology.HopCount / shortestNextHops.
func refDistances(t Topology) [][]int {
	adj := make([][]int, t.N)
	for _, e := range t.Edges {
		a, b := int(e[0]), int(e[1])
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	all := make([][]int, t.N)
	for src := 0; src < t.N; src++ {
		dist := make([]int, t.N)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		frontier := []int{src}
		for len(frontier) > 0 {
			var next []int
			for _, u := range frontier {
				for _, v := range adj[u] {
					if dist[v] == -1 {
						dist[v] = dist[u] + 1
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		all[src] = dist
	}
	return all
}

// TestRackSpineProperty: any rack/spine configuration yields a
// connected network whose hop counts match an independent BFS, whose
// rack bookkeeping is consistent, and whose cross-rack paths always
// cross the spine tier.
func TestRackSpineProperty(t *testing.T) {
	rng := sim.NewRNG(4401)
	for trial := 0; trial < 60; trial++ {
		racks := 1 + rng.Intn(6)
		x, y, z := 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(2)
		rackSize := x * y * z
		spines := 1 + rng.Intn(3)
		uplinks := 1 + rng.Intn(rackSize)
		h := RackSpine(racks, x, y, z, spines, uplinks)

		if h.N != racks*rackSize+spines {
			t.Fatalf("%s: N=%d, want %d", h.Name, h.N, racks*rackSize+spines)
		}
		wantEdges := racks*len(Mesh3D(x, y, z).Edges) + racks*uplinks + spines*(spines-1)/2
		if len(h.Edges) != wantEdges {
			t.Fatalf("%s: %d edges, want %d", h.Name, len(h.Edges), wantEdges)
		}

		dist := refDistances(h.Topology)
		for a := 0; a < h.N; a++ {
			for b := 0; b < h.N; b++ {
				if dist[a][b] < 0 {
					t.Fatalf("%s: disconnected, no path %d->%d", h.Name, a, b)
				}
				if got := h.HopCount(NodeID(a), NodeID(b)); got != dist[a][b] {
					t.Fatalf("%s: HopCount(%d,%d)=%d, reference BFS says %d",
						h.Name, a, b, got, dist[a][b])
				}
			}
		}

		// Rack bookkeeping: every node is in exactly one rack or is a
		// spine, and RackNodes inverts RackOf.
		for id := 0; id < h.N; id++ {
			r, inRack := h.RackOf(NodeID(id))
			if inRack == h.IsSpine(NodeID(id)) {
				t.Fatalf("%s: node %d both/neither rack member and spine", h.Name, id)
			}
			if inRack && (r != id/rackSize) {
				t.Fatalf("%s: RackOf(%d)=%d, want %d", h.Name, id, r, id/rackSize)
			}
		}
		for r := 0; r < racks; r++ {
			for i, id := range h.RackNodes(r) {
				if got, ok := h.RackOf(id); !ok || got != r {
					t.Fatalf("%s: RackNodes(%d)[%d]=%v not in rack %d", h.Name, r, i, id, r)
				}
			}
		}

		// Cross-rack traffic must traverse the spine tier: two racks share
		// no direct edge, so any inter-rack pair is >= 2 hops apart, and
		// exactly 2 only uplink-to-uplink through one spine.
		for _, e := range h.Edges {
			ra, aRack := h.RackOf(e[0])
			rb, bRack := h.RackOf(e[1])
			if aRack && bRack && ra != rb {
				t.Fatalf("%s: direct inter-rack edge %v", h.Name, e)
			}
		}
		if racks > 1 {
			a, b := h.RackNodes(0)[rackSize-1], h.RackNodes(1)[rackSize-1]
			if got := h.HopCount(a, b); got < 2 {
				t.Fatalf("%s: cross-rack HopCount(%v,%v)=%d, want >= 2", h.Name, a, b, got)
			}
		}

		// Every spine-tier edge touches a spine switch, and together they
		// account for all rack uplinks.
		spineEdges := h.SpineEdges()
		if len(spineEdges) != racks*uplinks+spines*(spines-1)/2 {
			t.Fatalf("%s: %d spine edges, want %d", h.Name, len(spineEdges),
				racks*uplinks+spines*(spines-1)/2)
		}
		for _, e := range spineEdges {
			if !h.IsSpine(e[0]) && !h.IsSpine(e[1]) {
				t.Fatalf("%s: spine edge %v touches no spine", h.Name, e)
			}
		}

		// MaxDegree against a manual count.
		deg := make(map[NodeID]int)
		for _, e := range h.Edges {
			deg[e[0]]++
			deg[e[1]]++
		}
		want := 0
		for _, d := range deg {
			if d > want {
				want = d
			}
		}
		if got := h.MaxDegree(); got != want {
			t.Fatalf("%s: MaxDegree=%d, manual count says %d", h.Name, got, want)
		}
	}
}

// TestRackSpineDeterminism: identical configurations build identical
// edge lists (the property every seeded experiment rests on).
func TestRackSpineDeterminism(t *testing.T) {
	a := RackSpine(4, 2, 2, 2, 2, 2)
	b := RackSpine(4, 2, 2, 2, 2, 2)
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
}

// TestRackSpineValidation: impossible configurations panic instead of
// building silently-broken fabrics.
func TestRackSpineValidation(t *testing.T) {
	bad := []func(){
		func() { RackSpine(0, 2, 2, 2, 1, 1) },
		func() { RackSpine(2, 0, 2, 2, 1, 1) },
		func() { RackSpine(2, 2, 2, 2, 0, 1) },
		func() { RackSpine(2, 2, 2, 2, 1, 0) },
		func() { RackSpine(2, 2, 2, 2, 1, 9) }, // more uplinks than rack nodes
	}
	for i, fn := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad config %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestLinkGbpsOverride: an uplink bandwidth override changes only that
// link's serialization time, and resetting it restores the global rate.
func TestLinkGbpsOverride(t *testing.T) {
	p := sim.Default()
	eng := sim.New()
	defer eng.Close()
	h := RackSpine(2, 2, 1, 1, 1, 1)
	if h.MaxDegree() > p.LinkPorts {
		p.LinkPorts = h.MaxDegree()
	}
	net := NewNetwork(eng, &p, h.Topology, sim.NewRNG(1))
	up := h.SpineEdges()[0]
	l := net.Link(up[0], up[1])
	if l == nil {
		t.Fatalf("no link for spine edge %v", up)
	}
	base := l.serialize(4096)
	net.SetLinkGbps(up[0], up[1], p.LinkGbps/4)
	if got := l.serialize(4096); got <= base {
		t.Fatalf("quarter-rate serialization %v not above full-rate %v", got, base)
	}
	if got, want := l.Gbps(), p.LinkGbps/4; got != want {
		t.Fatalf("Gbps()=%v, want %v", got, want)
	}
	net.SetLinkGbps(up[0], up[1], 0)
	if got := l.serialize(4096); got != base {
		t.Fatalf("reset serialization %v, want %v", got, base)
	}
	// Intra-rack links are untouched by the spine override.
	if l2 := net.Link(h.RackNodes(0)[0], h.RackNodes(0)[1]); l2.Gbps() != p.LinkGbps {
		t.Fatalf("rack link rate moved to %v", l2.Gbps())
	}
}
