// Package fabric implements the Venice resource-sharing interconnect
// (§5.1 of the paper): point-to-point links with bandwidth and
// propagation modeling, a datalink layer with credit-based flow control
// and CRC-detected replay, embedded low-radix switches for "switchless"
// direct chip-to-chip communication, an optional external one-level
// router (the Fig. 6 experiment), and standard topologies including the
// prototype's 3D mesh.
//
// Beyond the paper's single 8-node mesh, RackSpine builds hierarchical
// rack/spine fabrics (racks of meshes joined by spine switches over a
// configurable set of uplinks); per-link bandwidth overrides
// (Link.SetGbps, Network.SetLinkGbps) model oversubscribed spine
// uplinks, and the Hier type exposes the rack structure the sharded
// monitor plane (internal/monitor) and the scale experiments build on.
package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// NodeID identifies a node (an endpoint with an embedded switch) in the
// fabric. IDs are dense, starting at zero.
type NodeID int

// String formats the id as "n3".
func (n NodeID) String() string { return fmt.Sprintf("n%d", int(n)) }

// Packet is one transport-layer packet on the wire. The fabric treats the
// payload as opaque; Kind tags the packet for statistics and demux.
type Packet struct {
	Src, Dst NodeID
	Kind     string // e.g. "crma.req", "rdma.data", "qpair.msg", "credit"
	Size     int    // payload bytes (header overhead added by the link model)
	Payload  any    // transport-defined contents
	Injected sim.Time
	Hops     int // incremented per switch traversal, for diagnostics
}

// String formats a packet for debugging.
func (p *Packet) String() string {
	return fmt.Sprintf("%s->%s %s %dB", p.Src, p.Dst, p.Kind, p.Size)
}
