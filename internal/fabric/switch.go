package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// DeliverFunc receives packets destined for a node's local port; the
// transport layer registers one per node.
type DeliverFunc func(*Packet)

// Switch is the low-dimension switch embedded in each Venice processor
// (§5.1.1): a handful of external ports plus one local port, enabling
// "switchless" direct chip-to-chip communication without an intermediary
// switch module.
type Switch struct {
	eng *sim.Engine
	p   *sim.Params

	id     NodeID
	lat    sim.Dur
	ports  map[NodeID]*Link // neighbor -> outgoing link
	routes map[NodeID]NodeID
	local  DeliverFunc

	// Extra per-direction latency modeling interface placement: zero for
	// on-chip interface logic, Params.OffChipCrossing when the Venice
	// interface sits across the I/O bus (Figs. 5-6 off-chip configs).
	injectExtra  sim.Dur
	deliverExtra sim.Dur

	// down models the node having crashed: the embedded switch neither
	// injects, forwards, nor delivers. The wires to a crashed node stay
	// modeled independently (their PHYs still ack at the datalink layer),
	// so link faults compose orthogonally with node faults.
	down bool

	delivered int64
	forwarded int64
	dropped   int64
}

func newSwitch(eng *sim.Engine, p *sim.Params, id NodeID) *Switch {
	return &Switch{
		eng:    eng,
		p:      p,
		id:     id,
		lat:    p.SwitchLat,
		ports:  make(map[NodeID]*Link),
		routes: make(map[NodeID]NodeID),
	}
}

// ID reports the switch's node id.
func (s *Switch) ID() NodeID { return s.id }

// Degree reports the number of external ports in use.
func (s *Switch) Degree() int { return len(s.ports) }

// SetOffChip moves this node's fabric interface across the I/O bus: every
// injection and local delivery pays one extra Params.OffChipCrossing.
func (s *Switch) SetOffChip(offChip bool) {
	if offChip {
		s.injectExtra = s.p.OffChipCrossing
		s.deliverExtra = s.p.OffChipCrossing
	} else {
		s.injectExtra = 0
		s.deliverExtra = 0
	}
}

// SetDown marks the node crashed (every packet touching the switch is
// dropped) or restores it. In-flight packets already scheduled into the
// switch vanish as if power was cut mid-traversal.
func (s *Switch) SetDown(down bool) { s.down = down }

// IsDown reports whether the node is marked crashed.
func (s *Switch) IsDown() bool { return s.down }

// Dropped reports how many packets the switch discarded while down.
func (s *Switch) Dropped() int64 { return s.dropped }

// Inject sends a packet from this node's local port into the fabric.
func (s *Switch) Inject(pkt *Packet) {
	if pkt.Src != s.id {
		panic(fmt.Sprintf("fabric: inject at %v of packet from %v", s.id, pkt.Src))
	}
	if s.down {
		s.dropped++
		return
	}
	pkt.Injected = s.eng.Now()
	if s.injectExtra > 0 {
		s.eng.Schedule(s.injectExtra, func() { s.route(pkt) })
		return
	}
	s.route(pkt)
}

// receive implements the link receiver: one switch traversal, then route.
func (s *Switch) receive(pkt *Packet, _ *Link) {
	pkt.Hops++
	s.eng.Schedule(s.lat, func() { s.route(pkt) })
}

// route forwards a packet toward its destination or delivers it locally.
func (s *Switch) route(pkt *Packet) {
	if s.down {
		s.dropped++
		return
	}
	if pkt.Dst == s.id {
		deliver := func() {
			// The node can crash between route() and a deliverExtra-delayed
			// delivery; power-cut semantics mean the packet dies with it.
			if s.down {
				s.dropped++
				return
			}
			if s.local == nil {
				panic(fmt.Sprintf("fabric: node %v has no delivery handler for %v", s.id, pkt))
			}
			s.delivered++
			s.local(pkt)
		}
		if s.deliverExtra > 0 {
			s.eng.Schedule(s.deliverExtra, deliver)
			return
		}
		deliver()
		return
	}
	next, ok := s.routes[pkt.Dst]
	if !ok {
		panic(fmt.Sprintf("fabric: node %v has no route to %v", s.id, pkt.Dst))
	}
	link, ok := s.ports[next]
	if !ok {
		panic(fmt.Sprintf("fabric: node %v has no port toward %v", s.id, next))
	}
	s.forwarded++
	link.send(pkt)
}

// Router is an external one-level switch module inserted between two
// directly-connected nodes — the Fig. 6 experiment. It is a
// bump-in-the-wire: traffic arriving from one side leaves on the other
// after the router traversal latency.
type Router struct {
	eng  *sim.Engine
	p    *sim.Params
	name string
	lat  sim.Dur
	out  map[*Link]*Link // incoming link -> outgoing link on the far side

	forwarded int64
}

func newRouter(eng *sim.Engine, p *sim.Params, name string) *Router {
	return &Router{eng: eng, p: p, name: name, lat: p.RouterLat, out: make(map[*Link]*Link)}
}

// Forwarded reports how many packets crossed the router.
func (r *Router) Forwarded() int64 { return r.forwarded }

// receive implements the link receiver for the router.
func (r *Router) receive(pkt *Packet, from *Link) {
	pkt.Hops++
	outLink, ok := r.out[from]
	if !ok {
		panic("fabric: router received packet on unknown link")
	}
	r.forwarded++
	r.eng.Schedule(r.lat, func() { outLink.send(pkt) })
}
