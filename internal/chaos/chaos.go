// Package chaos is the fault-injection half of the fault-tolerance
// story: deterministic, seed-driven schedules of node crashes/restarts,
// link failures/repairs, and heartbeat loss, compiled into discrete
// simulation events over the fabric's failure surfaces
// (fabric.Network.SetNodeDown / SetLinkDown) and the agent daemon's
// crash/restart/mute surface. Every stochastic instant is drawn from the
// schedule's own seeded RNG at install time, so a schedule perturbs the
// simulation without the simulation ever perturbing the schedule — the
// property that keeps churn experiments byte-identical under any
// harness parallelism.
package chaos

import (
	"fmt"
	"math"

	"repro/internal/fabric"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// Op names one primitive fault action.
type Op string

// The primitive fault actions an injector can apply.
const (
	NodeDown Op = "node-down" // crash: fabric drops the node, agent stops
	NodeUp   Op = "node-up"   // reboot: fabric restores, agent restarts (fresh memory, +1 incarnation)
	LinkDown Op = "link-down" // both directions of a<->b fail
	LinkUp   Op = "link-up"   // both directions restored
	BeatOff  Op = "beat-off"  // heartbeat loss only; the node stays healthy
	BeatOn   Op = "beat-on"   // heartbeats resume
)

// Action is one scheduled primitive: apply Op at At (relative to the
// instant the schedule is installed).
type Action struct {
	At   sim.Dur
	Op   Op
	Node fabric.NodeID // NodeDown/NodeUp/BeatOff/BeatOn
	A, B fabric.NodeID // LinkDown/LinkUp
}

// NodeFault describes recurring crash/restart churn for one node: time
// to failure and time to repair are exponentially distributed with the
// given means, the standard memoryless MTTF/MTTR model.
type NodeFault struct {
	Node fabric.NodeID
	MTTF sim.Dur // mean time to failure (measured from previous repair)
	MTTR sim.Dur // mean time to repair (outage length)
	// Count bounds the number of crash/restart cycles; 0 means bounded
	// only by the schedule's Horizon.
	Count int
}

// LinkFault describes recurring link flapping with the same MTTF/MTTR
// semantics, applied to both directions of a<->b.
type LinkFault struct {
	A, B  fabric.NodeID
	MTTF  sim.Dur
	MTTR  sim.Dur
	Count int
}

// BeatFault describes recurring heartbeat loss (the node stays healthy;
// only its reports vanish) — the false-positive generator.
type BeatFault struct {
	Node  fabric.NodeID
	MTTF  sim.Dur
	MTTR  sim.Dur
	Count int
}

// Schedule is a declarative fault plan. Install compiles it into engine
// events; the Seed fully determines every instant.
type Schedule struct {
	Seed uint64
	// Horizon stops new fault injection (repairs still complete so the
	// system is left converging, not wedged). Required unless every
	// recurring fault carries an explicit Count.
	Horizon sim.Dur
	Nodes   []NodeFault
	Links   []LinkFault
	Beats   []BeatFault
	Actions []Action
}

// Rolling builds the classic rolling-churn plan: the nodes take turns
// crashing, one full period apart, each outage lasting for outage. With
// outage < period at most one of them is ever down — donor re-election
// always has somewhere to go, which is the regime availability studies
// sweep. cycles counts total crashes across the group.
func Rolling(nodes []fabric.NodeID, period, outage sim.Dur, cycles int) []Action {
	if len(nodes) == 0 || cycles <= 0 {
		return nil
	}
	if outage >= period {
		panic(fmt.Sprintf("chaos: rolling outage %v must be shorter than period %v", outage, period))
	}
	var acts []Action
	for k := 0; k < cycles; k++ {
		at := sim.Dur(k+1) * period
		n := nodes[k%len(nodes)]
		acts = append(acts,
			Action{At: at, Op: NodeDown, Node: n},
			Action{At: at + outage, Op: NodeUp, Node: n},
		)
	}
	return acts
}

// Injector applies fault actions to a running cluster and records what
// it did.
type Injector struct {
	Eng    *sim.Engine
	Net    *fabric.Network
	Agents []*monitor.Agent // indexed by node id; nil entries are fabric-only nodes

	// Trace records every applied action with its absolute instant, in
	// application order — the deterministic log tests compare.
	Trace []AppliedAction
	// Stats counts applied actions by op.
	Stats sim.Scoreboard
}

// AppliedAction is one Trace row.
type AppliedAction struct {
	At     sim.Time
	Action Action
}

// New wires an injector over a network and its agents.
func New(eng *sim.Engine, net *fabric.Network, agents []*monitor.Agent) *Injector {
	return &Injector{Eng: eng, Net: net, Agents: agents}
}

// Apply performs one action now and records it.
func (in *Injector) Apply(a Action) {
	switch a.Op {
	case NodeDown:
		in.Net.SetNodeDown(a.Node, true)
		if ag := in.agent(a.Node); ag != nil {
			ag.Crash()
		}
	case NodeUp:
		in.Net.SetNodeDown(a.Node, false)
		if ag := in.agent(a.Node); ag != nil {
			ag.Restart()
		}
	case LinkDown:
		in.Net.SetLinkDown(a.A, a.B, true)
	case LinkUp:
		in.Net.SetLinkDown(a.A, a.B, false)
	case BeatOff:
		if ag := in.agent(a.Node); ag != nil {
			ag.Mute(true)
		}
	case BeatOn:
		if ag := in.agent(a.Node); ag != nil {
			ag.Mute(false)
		}
	default:
		panic(fmt.Sprintf("chaos: unknown op %q", a.Op))
	}
	in.Trace = append(in.Trace, AppliedAction{At: in.Eng.Now(), Action: a})
	in.Stats.Add(string(a.Op), 1)
}

func (in *Injector) agent(id fabric.NodeID) *monitor.Agent {
	if int(id) >= len(in.Agents) {
		return nil
	}
	return in.Agents[id]
}

// KillNode crashes a node immediately (fabric + agent).
func (in *Injector) KillNode(id fabric.NodeID) { in.Apply(Action{Op: NodeDown, Node: id}) }

// RestartNode reboots a node immediately.
func (in *Injector) RestartNode(id fabric.NodeID) { in.Apply(Action{Op: NodeUp, Node: id}) }

// expDur samples an exponential duration with the given mean, clamped to
// the engine's nanosecond resolution.
func expDur(rng *sim.RNG, mean sim.Dur) sim.Dur {
	if mean <= 0 {
		panic("chaos: non-positive MTTF/MTTR mean")
	}
	d := -math.Log(1-rng.Float64()) * float64(mean)
	if d < 1 {
		d = 1
	}
	if d > float64(math.MaxInt64)/4 {
		d = float64(math.MaxInt64) / 4
	}
	return sim.Dur(d)
}

// compileRecurring turns one MTTF/MTTR stream into down/up action pairs.
func compileRecurring(rng *sim.RNG, mttf, mttr sim.Dur, count int, horizon sim.Dur,
	down, up Action) ([]Action, error) {
	if count <= 0 && horizon <= 0 {
		return nil, fmt.Errorf("chaos: recurring fault needs a Count or a schedule Horizon")
	}
	var acts []Action
	t := sim.Dur(0)
	for k := 0; count <= 0 || k < count; k++ {
		t += expDur(rng, mttf)
		if horizon > 0 && t > horizon {
			break
		}
		d, u := down, up
		d.At = t
		acts = append(acts, d)
		t += expDur(rng, mttr)
		u.At = t
		acts = append(acts, u)
	}
	return acts, nil
}

// Compile expands the schedule into a flat action list (relative
// instants), drawing every stochastic instant from the schedule's seed.
// Fault streams consume forked RNGs in declaration order, so adding a
// fault never disturbs the instants of the ones before it.
func (s Schedule) Compile() ([]Action, error) {
	rng := sim.NewRNG(s.Seed)
	acts := append([]Action(nil), s.Actions...)
	for _, nf := range s.Nodes {
		a, err := compileRecurring(rng.Fork(), nf.MTTF, nf.MTTR, nf.Count, s.Horizon,
			Action{Op: NodeDown, Node: nf.Node}, Action{Op: NodeUp, Node: nf.Node})
		if err != nil {
			return nil, fmt.Errorf("chaos: node %v: %w", nf.Node, err)
		}
		acts = append(acts, a...)
	}
	for _, lf := range s.Links {
		a, err := compileRecurring(rng.Fork(), lf.MTTF, lf.MTTR, lf.Count, s.Horizon,
			Action{Op: LinkDown, A: lf.A, B: lf.B}, Action{Op: LinkUp, A: lf.A, B: lf.B})
		if err != nil {
			return nil, fmt.Errorf("chaos: link %v<->%v: %w", lf.A, lf.B, err)
		}
		acts = append(acts, a...)
	}
	for _, bf := range s.Beats {
		a, err := compileRecurring(rng.Fork(), bf.MTTF, bf.MTTR, bf.Count, s.Horizon,
			Action{Op: BeatOff, Node: bf.Node}, Action{Op: BeatOn, Node: bf.Node})
		if err != nil {
			return nil, fmt.Errorf("chaos: beats %v: %w", bf.Node, err)
		}
		acts = append(acts, a...)
	}
	return acts, nil
}

// Install compiles the schedule and schedules every action on the
// engine, relative to the current instant. It returns the number of
// scheduled actions.
func (in *Injector) Install(s Schedule) (int, error) {
	acts, err := s.Compile()
	if err != nil {
		return 0, err
	}
	for _, a := range acts {
		a := a
		in.Eng.Schedule(a.At, func() { in.Apply(a) })
	}
	return len(acts), nil
}
