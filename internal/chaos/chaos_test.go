package chaos

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// TestCompileDeterministic: the same schedule compiles to the identical
// action list every time — the property that keeps churn trials
// byte-identical under harness parallelism.
func TestCompileDeterministic(t *testing.T) {
	s := Schedule{
		Seed:    42,
		Horizon: 100 * sim.Millisecond,
		Nodes:   []NodeFault{{Node: 2, MTTF: 10 * sim.Millisecond, MTTR: 2 * sim.Millisecond}},
		Links:   []LinkFault{{A: 0, B: 1, MTTF: 7 * sim.Millisecond, MTTR: 1 * sim.Millisecond}},
		Beats:   []BeatFault{{Node: 3, MTTF: 20 * sim.Millisecond, MTTR: 5 * sim.Millisecond}},
	}
	a, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("schedule compiled to nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("action %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed moves the instants.
	s.Seed = 43
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestCompilePrefixStable: adding a fault stream must not disturb the
// instants of the streams declared before it.
func TestCompilePrefixStable(t *testing.T) {
	base := Schedule{
		Seed:    7,
		Horizon: 50 * sim.Millisecond,
		Nodes:   []NodeFault{{Node: 1, MTTF: 5 * sim.Millisecond, MTTR: 1 * sim.Millisecond}},
	}
	a, err := base.Compile()
	if err != nil {
		t.Fatal(err)
	}
	grown := base
	grown.Nodes = append(grown.Nodes, NodeFault{Node: 2, MTTF: 5 * sim.Millisecond, MTTR: 1 * sim.Millisecond})
	b, err := grown.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prefix action %d moved after growing the schedule: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestCompileBounds: Count and Horizon both bound recurring streams, and
// an unbounded stream with no horizon is rejected.
func TestCompileBounds(t *testing.T) {
	s := Schedule{
		Seed:  1,
		Nodes: []NodeFault{{Node: 0, MTTF: sim.Millisecond, MTTR: sim.Millisecond, Count: 3}},
	}
	acts, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 6 {
		t.Fatalf("3 cycles should give 6 actions, got %d", len(acts))
	}
	s.Nodes[0].Count = 0
	if _, err := s.Compile(); err == nil {
		t.Fatal("unbounded stream with no horizon must be rejected")
	}
	s.Horizon = 10 * sim.Millisecond
	acts, err = s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range acts {
		if a.Op == NodeDown && a.At > s.Horizon {
			t.Fatalf("fault injected at %v, past horizon %v", a.At, s.Horizon)
		}
	}
}

// TestRollingShape: rolling churn alternates nodes, one outage at a
// time.
func TestRollingShape(t *testing.T) {
	acts := Rolling([]fabric.NodeID{2, 3}, 10*sim.Millisecond, 3*sim.Millisecond, 4)
	if len(acts) != 8 {
		t.Fatalf("4 cycles should give 8 actions, got %d", len(acts))
	}
	for k := 0; k < 4; k++ {
		down, up := acts[2*k], acts[2*k+1]
		if down.Op != NodeDown || up.Op != NodeUp || down.Node != up.Node {
			t.Fatalf("cycle %d malformed: %+v %+v", k, down, up)
		}
		if want := fabric.NodeID(2 + k%2); down.Node != want {
			t.Fatalf("cycle %d hit node %v, want %v", k, down.Node, want)
		}
		if up.At-down.At != 3*sim.Millisecond {
			t.Fatalf("cycle %d outage %v, want 3ms", k, up.At-down.At)
		}
		// The next crash begins only after this repair.
		if k > 0 && down.At <= acts[2*k-1].At {
			t.Fatalf("cycle %d overlaps previous outage", k)
		}
	}
}

// TestInstallDrivesFabric: an installed schedule actually takes nodes
// and links down and brings them back, at its precomputed instants.
func TestInstallDrivesFabric(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Mesh3D(2, 2, 1), sim.NewRNG(1))
	for i := 0; i < 4; i++ {
		net.SetDelivery(fabric.NodeID(i), func(*fabric.Packet) {})
	}
	in := New(eng, net, nil)
	n, err := in.Install(Schedule{
		Actions: []Action{
			{At: 1 * sim.Millisecond, Op: NodeDown, Node: 2},
			{At: 2 * sim.Millisecond, Op: LinkDown, A: 0, B: 1},
			{At: 3 * sim.Millisecond, Op: NodeUp, Node: 2},
			{At: 4 * sim.Millisecond, Op: LinkUp, A: 0, B: 1},
		},
	})
	if err != nil || n != 4 {
		t.Fatalf("install: n=%d err=%v", n, err)
	}
	eng.RunFor(1500 * sim.Microsecond)
	if !net.NodeDown(2) || net.Link(0, 1).Down() {
		t.Fatal("1.5ms: node 2 should be down, link 0-1 up")
	}
	eng.RunFor(1 * sim.Millisecond) // 2.5ms
	if !net.Link(0, 1).Down() {
		t.Fatal("2.5ms: link 0-1 should be down")
	}
	eng.RunFor(2 * sim.Millisecond) // 4.5ms
	if net.NodeDown(2) || net.Link(0, 1).Down() {
		t.Fatal("4.5ms: everything should be repaired")
	}
	if len(in.Trace) != 4 {
		t.Fatalf("trace has %d entries, want 4", len(in.Trace))
	}
	if in.Trace[0].At != sim.Time(0).Add(1*sim.Millisecond) {
		t.Fatalf("first action applied at %v, want 1ms", in.Trace[0].At)
	}
}
