package chaos

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// TestKillAccelDonorMidRequest is the device-plane failover acceptance
// test: a tenant on node 1 leases a remote accelerator and streams tasks
// through it while chaos kills the donor mid-request. The monitor must
// re-place the lease onto a surviving donor with a free device, the
// handle must replay its in-flight chunks there, recovery must complete
// within a small multiple of the detection timeout, and not a single
// task may be lost: every submitted task completes exactly once. The
// lease's trace id must chain the whole story on the plane's event
// stream — granted, failed-over (old donor named), released.
func TestKillAccelDonorMidRequest(t *testing.T) {
	const (
		beat      = 100 * sim.Microsecond
		timeout   = 500 * sim.Microsecond
		sweep     = 250 * sim.Microsecond
		tasks     = 60
		taskBytes = 128 << 10
	)
	cl := core.NewCluster(core.Config{
		StartAgents:       true,
		StartRecovery:     true,
		HeartbeatInterval: beat,
		HeartbeatTimeout:  timeout,
		SweepInterval:     sweep,
		Seed:              77,
	})
	defer cl.Close()
	// Every node past the MN and the tenant hosts two accelerators and
	// advertises them: leasing one unit leaves every donor with failover
	// headroom, so a crash always has a live candidate.
	kernel := accel.FFT{MBps: 360, Setup: 10 * sim.Microsecond}
	for i := 2; i < len(cl.Nodes); i++ {
		svc := accel.Serve(cl.Node(i),
			accel.New(cl.Eng, cl.P, kernel), accel.New(cl.Eng, cl.P, kernel))
		defer svc.Shutdown()
		cl.Agents[i].Devices[monitor.DevAccelerator] = 2
	}
	cl.RunFor(20 * sim.Millisecond) // device advertisements ride the beats

	inj := New(cl.Eng, cl.Net, cl.Agents)
	tenant := cl.Node(1)
	client := accel.NewClient(tenant)
	var events []core.Event
	cl.Observe(func(ev core.Event) { events = append(events, ev) })

	var lease *core.AccelLease
	completed := 0
	var issuedAt, doneAt []sim.Time
	done := tenant.Run("tenant", func(p *sim.Proc) {
		l, err := cl.Acquire(p, core.NewRequest(core.Accel, tenant, 0, core.WithClient(client)))
		if err != nil {
			t.Errorf("accel acquire: %v", err)
			return
		}
		lease = l.(*core.AccelLease)
		donor := lease.Donor()
		// Kill the donor inside the first tasks' chunk pipeline; restart it
		// long after failover must have resolved.
		cl.Eng.Schedule(500*sim.Microsecond, func() { inj.KillNode(donor) })
		cl.Eng.Schedule(20*sim.Millisecond, func() { inj.RestartNode(donor) })

		for i := 0; i < tasks; i++ {
			issuedAt = append(issuedAt, p.Now())
			lease.Handle.Run(p, "fft", taskBytes)
			doneAt = append(doneAt, p.Now())
			completed++
		}
		lease.Release(p)
	})
	for !done.Done() && cl.Eng.Step() {
	}
	if !done.Done() {
		t.Fatalf("tenant wedged: %d/%d tasks completed, %d live procs",
			completed, tasks, cl.Eng.LiveProcs())
	}

	// Zero lost completions.
	if completed != tasks {
		t.Fatalf("completed %d of %d tasks", completed, tasks)
	}
	// The lease followed recovery onto a survivor and replayed in-flight
	// chunks there.
	if lease.Revoked() {
		t.Fatal("lease revoked — recovery found no replacement despite advertised headroom")
	}
	if lease.Handle.Replays == 0 {
		t.Fatal("no chunk was ever replayed — the crash never hit an in-flight task")
	}
	if got := cl.MN.Stats.Get("recover.devices_replaced"); got != 1 {
		t.Fatalf("recover.devices_replaced = %d, want 1", got)
	}
	if n := len(cl.MN.Allocations()); n != 0 {
		t.Fatalf("RAT holds %d rows after release, want 0", n)
	}

	// The trace chain: the lease's id strings its whole lifecycle
	// together on the plane's stream, in order.
	var chain []core.Event
	for _, ev := range events {
		if ev.Trace == lease.Trace() {
			chain = append(chain, ev)
		}
	}
	if len(chain) != 3 {
		t.Fatalf("trace %d chain has %d events, want granted/failed-over/released: %+v",
			lease.Trace(), len(chain), chain)
	}
	granted, failedOver, released := chain[0], chain[1], chain[2]
	if granted.Type != core.LeaseGranted || granted.Kind != core.Accel {
		t.Fatalf("chain[0] = %+v, want accelerator granted", granted)
	}
	if failedOver.Type != core.LeaseFailedOver {
		t.Fatalf("chain[1] = %+v, want failed-over", failedOver)
	}
	if failedOver.OldDonor != granted.Donor {
		t.Fatalf("failed-over OldDonor %v, want the crashed donor %v", failedOver.OldDonor, granted.Donor)
	}
	if failedOver.Donor == granted.Donor || failedOver.Donor != lease.Donor() {
		t.Fatalf("failed-over Donor %v inconsistent (crashed %v, lease now on %v)",
			failedOver.Donor, granted.Donor, lease.Donor())
	}
	if released.Type != core.LeaseReleased || released.Donor != lease.Donor() {
		t.Fatalf("chain[2] = %+v, want released on the replacement donor", released)
	}

	// Bounded recovery: the longest task stall covers detection (timeout
	// + sweep) plus the failover RPCs and one chunk-pipeline replay, with
	// slack — far under the ~19ms the donor stayed dead, so failover
	// restored service, not the repair.
	var worst sim.Dur
	for i := range doneAt {
		if d := doneAt[i].Sub(issuedAt[i]); d > worst {
			worst = d
		}
	}
	if bound := sim.Dur(timeout + sweep + 4*sim.Millisecond); worst > bound {
		t.Fatalf("worst task stall %v exceeds recovery bound %v", worst, bound)
	}
	if worst < sim.Dur(timeout) {
		t.Fatalf("worst stall %v is under the detection timeout %v — the fault never bit", worst, sim.Dur(timeout))
	}
}
