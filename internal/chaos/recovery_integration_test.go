package chaos

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// TestKillTheDonor is the end-to-end failover acceptance test: a tenant
// on node 4 leases remote memory through the Monitor Node and streams
// reads through the window while chaos kills its donor. The lease must
// be re-placed onto a surviving donor, the reader's in-flight access
// replayed, recovery must complete within a small multiple of the
// detection timeout plus one hot-plug, and not a single read may be
// lost: every issued read completes exactly once.
func TestKillTheDonor(t *testing.T) {
	const (
		beat      = 100 * sim.Microsecond
		timeout   = 500 * sim.Microsecond
		sweep     = 250 * sim.Microsecond
		leaseSize = uint64(8 << 20)
		reads     = 400
		readBytes = 2048
	)
	topo := fabric.Mesh3D(2, 2, 2)
	cl := core.NewCluster(core.Config{
		Topology:          &topo,
		StartAgents:       true,
		StartRecovery:     true,
		HeartbeatInterval: beat,
		HeartbeatTimeout:  timeout,
		SweepInterval:     sweep,
		Seed:              77,
	})
	defer cl.Close()
	// Keep the MN out of donor candidacy so the lease lands on node 5
	// (nearest to recipient 4 after node 0), which no static route to the
	// MN transits — killing it exercises failover, not partition.
	if err := cl.Node(0).MemMgr.Reserve(cl.Node(0).MemMgr.Idle()); err != nil {
		t.Fatal(err)
	}
	cl.RunFor(20 * sim.Millisecond) // populate the RRT

	inj := New(cl.Eng, cl.Net, cl.Agents)
	recipient := cl.Node(4)
	var lease *core.MemoryLease
	completed := 0
	var issuedAt, doneAt []sim.Time
	done := recipient.Run("tenant", func(p *sim.Proc) {
		l, err := cl.Acquire(p, core.NewRequest(core.Memory, recipient, leaseSize))
		if err != nil {
			t.Errorf("borrow: %v", err)
			return
		}
		lease = l.(*core.MemoryLease)
		if lease.Donor() != 5 {
			t.Errorf("test premise broken: lease landed on %v, want 5", lease.Donor())
			return
		}
		// Kill the donor mid-stream, restart it well after failover.
		cl.Eng.Schedule(1*sim.Millisecond, func() { inj.KillNode(5) })
		cl.Eng.Schedule(20*sim.Millisecond, func() { inj.RestartNode(5) })

		rng := sim.NewRNG(99)
		for i := 0; i < reads; i++ {
			off := rng.Uint64n(lease.Size-readBytes) &^ 63
			issuedAt = append(issuedAt, p.Now())
			recipient.EP.CRMA.Fill(p, lease.WindowBase+off, readBytes)
			doneAt = append(doneAt, p.Now())
			completed++
			p.Sleep(20 * sim.Microsecond)
		}
	})
	for !done.Done() && cl.Eng.Step() {
	}
	if !done.Done() {
		t.Fatalf("tenant wedged: %d/%d reads completed, %d live procs",
			completed, reads, cl.Eng.LiveProcs())
	}

	// Zero lost completed-request accounting: every issued read finished.
	if completed != reads || len(doneAt) != reads {
		t.Fatalf("completed %d of %d reads", completed, reads)
	}
	// The lease failed over to a surviving donor under the same id.
	a, ok := cl.MN.Allocation(allocIDOf(t, cl))
	if !ok {
		t.Fatal("lease vanished from the RAT")
	}
	if a.Donor == 5 {
		t.Fatal("lease still on the killed donor")
	}
	if got := cl.MN.Stats.Get("recover.replaced"); got != 1 {
		t.Fatalf("recover.replaced = %d, want 1", got)
	}
	// The recipient's agent actually replayed in-flight work.
	if cl.Agents[4].Stats.Get("relocate.ok") != 1 {
		t.Fatal("recipient agent never relocated the window")
	}
	// Bounded recovery: the longest completion stall covers detection
	// (timeout + sweep) plus re-placement (one hot-plug op + RPCs), with
	// generous slack — but far under the 19ms the donor stayed dead, so
	// it is failover that restored service, not repair.
	bound := sim.Dur(timeout + sweep + 2*cl.P.HotplugOp + 2*sim.Millisecond)
	var worst sim.Dur
	for i := range doneAt {
		if d := doneAt[i].Sub(issuedAt[i]); d > worst {
			worst = d
		}
	}
	if worst > bound {
		t.Fatalf("worst read stall %v exceeds recovery bound %v", worst, bound)
	}
	if worst < sim.Dur(timeout) {
		t.Fatalf("worst stall %v is under the detection timeout %v — the fault never bit", worst, sim.Dur(timeout))
	}
}

// allocIDOf digs out the single RAT allocation id.
func allocIDOf(t *testing.T, cl *core.Cluster) int {
	t.Helper()
	allocs := cl.MN.Allocations()
	if len(allocs) != 1 {
		t.Fatalf("RAT has %d rows, want 1: %+v", len(allocs), allocs)
	}
	return allocs[0].ID
}
