package commodity

import (
	"testing"

	"repro/internal/memsys"
	"repro/internal/sim"
)

func TestDeviceLatencyOrdering(t *testing.T) {
	p := sim.Default()
	eng := sim.New()
	defer eng.Close()
	devs := []memsys.BlockDevice{EthernetVDisk(&p), InfiniBandSRP(&p), PCIeRDMA(&p)}
	var times []sim.Dur
	eng.Go("probe", func(pr *sim.Proc) {
		for _, d := range devs {
			t0 := pr.Now()
			d.ReadPage(pr, 0)
			times = append(times, pr.Now().Sub(t0))
		}
	})
	eng.Run()
	// Fig. 3's ordering: Ethernet slowest, then IB SRP, then PCIe DMA.
	if !(times[0] > times[1] && times[1] > times[2]) {
		t.Fatalf("device latency ordering wrong: %v", times)
	}
	names := []string{"10gbe-vdisk", "ib-srp", "pcie-rdma"}
	for i, d := range devs {
		if d.Name() != names[i] {
			t.Fatalf("device %d name %q, want %q", i, d.Name(), names[i])
		}
	}
}

func TestPCIeLDSTReadsBlockWritesPost(t *testing.T) {
	p := sim.Default()
	eng := sim.New()
	defer eng.Close()
	dev := NewPCIeLDST(&p)
	var readT sim.Dur
	var writeLazy sim.Dur
	eng.Go("probe", func(pr *sim.Proc) {
		ctx := &memsys.AccessCtx{Proc: pr, Flush: func() {}}
		t0 := pr.Now()
		if d := dev.Access(ctx, 0x1000, 8, false); d != 0 {
			t.Errorf("read returned lazy time %v, should block instead", d)
		}
		readT = pr.Now().Sub(t0)
		writeLazy = dev.Access(ctx, 0x1000, 8, true)
	})
	eng.Run()
	if readT != dev.ReadLat {
		t.Fatalf("read blocked %v, want %v", readT, dev.ReadLat)
	}
	if writeLazy != dev.WriteLat {
		t.Fatalf("posted write lazy cost %v, want %v", writeLazy, dev.WriteLat)
	}
	if dev.Reads != 1 || dev.Writes != 1 {
		t.Fatalf("counters: %d reads %d writes", dev.Reads, dev.Writes)
	}
	if dev.Name() != "pcie-ldst" {
		t.Fatal("name wrong")
	}
	if wb := dev.Writeback(nil, 0, 64); wb != dev.WriteLat {
		t.Fatalf("writeback = %v", wb)
	}
}

func TestUncachedRegionBypassesCache(t *testing.T) {
	p := sim.Default()
	eng := sim.New()
	defer eng.Close()
	dev := NewPCIeLDST(&p)
	h := memsys.NewHierarchy(eng, &p)
	if err := h.AS.Add(&memsys.Region{Base: 0, Size: 1 << 20, Backend: dev, Uncached: true}); err != nil {
		t.Fatal(err)
	}
	eng.Go("probe", func(pr *sim.Proc) {
		h.Read(pr, 0x100, 8)
		h.Read(pr, 0x100, 8) // same address: must hit the device again
		h.Flush(pr)
	})
	eng.Run()
	if dev.Reads != 2 {
		t.Fatalf("uncached reads = %d, want 2 (no cache allocation)", dev.Reads)
	}
	if h.Cache.Stats.Hits+h.Cache.Stats.Misses != 0 {
		t.Fatal("uncached access touched the cache")
	}
}
