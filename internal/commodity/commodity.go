// Package commodity models the commodity-interconnect remote-memory
// paths of the paper's §4.1 feasibility study (Fig. 3): 10 Gb Ethernet
// with a vDisk swap driver, InfiniBand SRP, a semi-custom PCIe DMA block
// device, and direct PCIe load/store (the CRMA-like configuration that
// the commodity PCIe chip cripples).
//
// These are parameterized device models, not full protocol stacks: the
// paper's own measurements define the effective per-operation costs, and
// the models reproduce those costs so the Fig. 3 comparison exercises
// the same swap and PIO code paths as the Venice configurations.
package commodity

import (
	"repro/internal/memsys"
	"repro/internal/sim"
)

// EthernetVDisk returns the 10 GbE remote-swap block device: remote
// memory used as a swap partition via a vDisk driver in Linux. The
// latency is dominated by the TCP/IP stack and interrupt path on both
// ends, not the wire.
func EthernetVDisk(p *sim.Params) *memsys.FixedLatencyDevice {
	return &memsys.FixedLatencyDevice{
		DevName: "10gbe-vdisk",
		P:       p,
		Latency: 130 * sim.Microsecond,
		MBps:    280,
	}
}

// InfiniBandSRP returns the IB SCSI-RDMA-Protocol virtual block device:
// leaner than TCP but still a full SCSI target stack per request.
func InfiniBandSRP(p *sim.Params) *memsys.FixedLatencyDevice {
	return &memsys.FixedLatencyDevice{
		DevName: "ib-srp",
		P:       p,
		Latency: 52 * sim.Microsecond,
		MBps:    700,
	}
}

// PCIeRDMA returns the semi-custom PCIe DMA block device: swapping over
// the block device using DMAs (§4.1).
func PCIeRDMA(p *sim.Params) *memsys.FixedLatencyDevice {
	return &memsys.FixedLatencyDevice{
		DevName: "pcie-rdma",
		P:       p,
		Latency: 28 * sim.Microsecond,
		MBps:    800,
	}
}

// PCIeLDST is the direct load/store path over commodity PCIe: an
// uncached BAR window where every read is a non-posted PCIe transaction.
// The paper notes this configuration "suffers from a crippling, but
// fixable, limit due to the commodity PCIe chip" — a single outstanding
// non-posted read whose effective latency collapses under load. ReadLat
// is calibrated to reproduce the reported behavior of that chip, not
// fundamental PCIe limits.
type PCIeLDST struct {
	P        *sim.Params
	ReadLat  sim.Dur
	WriteLat sim.Dur // posted writes: cheap

	Reads  int64
	Writes int64
}

// NewPCIeLDST returns the crippled-chip PIO backend with the calibrated
// default latencies.
func NewPCIeLDST(p *sim.Params) *PCIeLDST {
	return &PCIeLDST{
		P:        p,
		ReadLat:  32 * sim.Microsecond,
		WriteLat: 2 * sim.Microsecond,
	}
}

// Access implements memsys.Backend for the uncached window: reads block
// for the full non-posted transaction; writes post.
func (d *PCIeLDST) Access(ctx *memsys.AccessCtx, _ uint64, _ int, write bool) sim.Dur {
	if write {
		d.Writes++
		return d.WriteLat
	}
	d.Reads++
	ctx.Flush()
	ctx.Proc.Sleep(d.ReadLat)
	return 0
}

// Writeback never happens on an uncached region but satisfies the
// interface (a posted write if it ever did).
func (d *PCIeLDST) Writeback(_ *memsys.AccessCtx, _ uint64, _ int) sim.Dur {
	return d.WriteLat
}

// Name identifies the backend.
func (d *PCIeLDST) Name() string { return "pcie-ldst" }
