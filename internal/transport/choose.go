package transport

// Channel names a Venice transport channel.
type Channel int

// The three channels of §5.1.2.
const (
	ChanCRMA Channel = iota
	ChanRDMA
	ChanQPair
)

// String names the channel.
func (c Channel) String() string {
	switch c {
	case ChanCRMA:
		return "CRMA"
	case ChanRDMA:
		return "RDMA"
	case ChanQPair:
		return "QPair"
	default:
		return "unknown"
	}
}

// Pattern describes a communication demand for the adaptive library.
type Pattern int

// Access patterns distinguished by the adaptive communication library
// (§5.1.3): random fine-grained access, contiguous bulk movement, and
// explicit message passing.
const (
	PatternRandom Pattern = iota
	PatternContiguous
	PatternMessage
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternRandom:
		return "random"
	case PatternContiguous:
		return "contiguous"
	case PatternMessage:
		return "message"
	default:
		return "unknown"
	}
}

// AdviseThresholdBytes is the transfer size above which bulk DMA beats
// cacheline-grained access even for random requests: a few KB, where the
// RDMA descriptor overhead amortizes.
const AdviseThresholdBytes = 4096

// Advise picks the channel the adaptive communication library would use
// for a transfer of size bytes with the given pattern, implementing the
// observed strengths of Fig. 17: CRMA for small/random accesses, RDMA
// for large contiguous movement, QPair for message passing.
func Advise(size int, pattern Pattern) Channel {
	switch pattern {
	case PatternMessage:
		return ChanQPair
	case PatternContiguous:
		if size >= AdviseThresholdBytes {
			return ChanRDMA
		}
		return ChanCRMA
	default: // PatternRandom
		if size >= AdviseThresholdBytes {
			return ChanRDMA
		}
		return ChanCRMA
	}
}
