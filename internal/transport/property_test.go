package transport

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// newPairNet builds a two-node pair network for property tests.
func newPairNet(eng *sim.Engine, p *sim.Params) *fabric.Network {
	return fabric.NewNetwork(eng, p, fabric.Pair(), sim.NewRNG(1))
}

// Property: whatever order messages arrive in, the reorder buffer
// releases them to software in sequence order.
func TestQPairReorderProperty(t *testing.T) {
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%20) + 2
		rng := sim.NewRNG(seed)
		eng := sim.New()
		defer eng.Close()
		p := sim.Default()
		net := newPairNet(eng, &p)
		a := NewEndpoint(eng, &p, net, 0)
		b := NewEndpoint(eng, &p, net, 1)
		_, qb := ConnectQPair(a, b, QPairConfig{})

		perm := rng.Perm(n)
		eng.Schedule(0, func() {
			for _, seq := range perm {
				qb.injectOutOfOrder(0, &qpMsg{dstQID: qb.id, seq: uint64(seq), size: 1, data: seq})
			}
		})
		var got []int
		eng.Go("rx", func(pr *sim.Proc) {
			for i := 0; i < n; i++ {
				got = append(got, qb.Recv(pr).Data.(int))
			}
		})
		eng.Run()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: RAMT translation is a bijection within the window and never
// matches outside it.
func TestRAMTTranslationProperty(t *testing.T) {
	prop := func(baseSeed, off uint64, szPow uint8) bool {
		size := uint64(1) << (12 + szPow%16) // 4 KiB .. 128 MiB
		localBase := (baseSeed % (1 << 40)) &^ 0xFFF
		remoteBase := uint64(0x4000_0000)
		e := &RAMTEntry{Valid: true, LocalBase: localBase, Size: size,
			Node: 1, RemoteBase: remoteBase}
		inside := localBase + off%size
		if !e.contains(inside) {
			return false
		}
		tr := e.translate(inside)
		if tr-remoteBase != inside-localBase {
			return false
		}
		// One past the end and one before the start never match.
		if e.contains(localBase + size) {
			return false
		}
		if localBase > 0 && e.contains(localBase-1) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved fills with random sizes all complete, and the
// donor serves exactly as many requests as the requester issued.
func TestCRMAFillCompletionProperty(t *testing.T) {
	prop := func(seed uint64, cnt uint8) bool {
		n := int(cnt%24) + 1
		rng := sim.NewRNG(seed)
		eng := sim.New()
		defer eng.Close()
		p := sim.Default()
		net := newPairNet(eng, &p)
		a := NewEndpoint(eng, &p, net, 0)
		b := NewEndpoint(eng, &p, net, 1)
		if _, err := a.CRMA.Map(0x1_0000_0000, 1<<20, 1, 0); err != nil {
			return false
		}
		b.CRMA.Export(0, 0x1_0000_0000, 1<<20, 0)
		ok := true
		eng.Go("filler", func(pr *sim.Proc) {
			var cs []*sim.Completion
			for i := 0; i < n; i++ {
				addr := 0x1_0000_0000 + uint64(rng.Intn(1<<20-256))
				size := 64 * (1 + rng.Intn(4))
				cs = append(cs, a.CRMA.FillAsync(addr, size))
			}
			pr.AwaitAll(cs...)
			for _, c := range cs {
				if !c.Done() {
					ok = false
				}
			}
		})
		eng.Run()
		return ok && a.CRMA.Stats.Fills == int64(n) && b.CRMA.Stats.Served == int64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQPairStatsLatencies(t *testing.T) {
	r := newRig(t)
	qa, qb := ConnectQPair(r.a, r.b, QPairConfig{})
	r.eng.Go("rx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			qb.Recv(p)
		}
	})
	r.eng.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			qa.Send(p, 64, nil)
		}
	})
	r.eng.Run()
	if qb.Stats.MsgLat.N() != 10 {
		t.Fatalf("latency samples = %d", qb.Stats.MsgLat.N())
	}
	// Wire latency floor: at least one hop.
	if qb.Stats.MsgLat.Mean() < float64(r.p.HopLatency()) {
		t.Fatalf("mean message latency %.0fns below one hop", qb.Stats.MsgLat.Mean())
	}
	if qb.Pending() != 0 {
		t.Fatalf("pending = %d after drain", qb.Pending())
	}
	if qa.Peer() != 1 || qa.String() == "" {
		t.Fatal("identity accessors broken")
	}
}
