package transport

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// rdmaReq asks the donor's DMA state machine to stream a region.
type rdmaReq struct {
	id     uint64
	addr   uint64 // donor-local address
	size   int
	write  bool // true: the chunks that follow carry data donor-ward
	chunks int
}

// rdmaChunk is one DMA chunk on the wire. For reads the donor streams
// chunks to the requester; for writes the requester streams them to the
// donor, and the final chunk elicits the completion. A write's final
// chunk may carry an immediate note (write-with-immediate), delivered to
// the receiver's registered observer — the mechanism remote accelerator
// mailboxes use to ring their doorbell in-band with the data.
type rdmaChunk struct {
	id   uint64
	idx  int
	last bool
	size int
	addr uint64
	resp bool // true when flowing donor->requester for a read
	note any  // immediate payload on a write's last chunk
}

// RDMAStats counts RDMA channel activity.
type RDMAStats struct {
	Reads    int64
	Writes   int64
	BytesIn  int64
	BytesOut int64
	OpLat    sim.Hist
}

// RDMA is the bulk-transfer channel (§5.1.2): software posts a
// descriptor; hardware state machines divide the region into chunks for
// packetization and raise a completion interrupt at the end.
type RDMA struct {
	ep       *Endpoint
	pending  map[uint64]*rdmaPending
	nextID   uint64
	observer func(from fabric.NodeID, addr uint64, note any)

	Stats RDMAStats
}

// ObserveImmediate registers the consumer of write-with-immediate notes
// arriving at this endpoint.
func (r *RDMA) ObserveImmediate(fn func(from fabric.NodeID, addr uint64, note any)) {
	r.observer = fn
}

type rdmaPending struct {
	done     *sim.Completion
	start    sim.Time
	received int
	total    int
}

func newRDMA(ep *Endpoint) *RDMA {
	return &RDMA{ep: ep, pending: make(map[uint64]*rdmaPending)}
}

// chunksFor computes the chunk count for a transfer.
func (r *RDMA) chunksFor(size int) int {
	n := (size + r.ep.P.RDMAChunk - 1) / r.ep.P.RDMAChunk
	if n < 1 {
		n = 1
	}
	return n
}

// ReadAsync starts a DMA that copies size bytes from donor-local address
// remoteAddr into this node's memory, returning the completion that
// fires after the final chunk and the completion interrupt.
func (r *RDMA) ReadAsync(donor fabric.NodeID, remoteAddr uint64, size int) *sim.Completion {
	if size <= 0 {
		panic(fmt.Sprintf("rdma: non-positive transfer size %d", size))
	}
	r.Stats.Reads++
	id := r.nextID
	r.nextID++
	chunks := r.chunksFor(size)
	pend := &rdmaPending{done: sim.NewCompletion(r.ep.Eng), start: r.ep.Eng.Now(), total: chunks}
	r.pending[id] = pend
	req := &rdmaReq{id: id, addr: remoteAddr, size: size, write: false, chunks: chunks}
	// Software descriptor setup, then doorbell and a small request packet.
	r.ep.Eng.Schedule(r.ep.P.RDMADescSW, func() {
		r.ep.SendRaw(donor, "rdma.req", 32, req)
	})
	return pend.done
}

// Read blocks the calling process until the DMA read completes.
func (r *RDMA) Read(p *sim.Proc, donor fabric.NodeID, remoteAddr uint64, size int) {
	p.Await(r.ReadAsync(donor, remoteAddr, size))
}

// WriteAsync starts a DMA that pushes size bytes from this node into
// donor-local address remoteAddr.
func (r *RDMA) WriteAsync(donor fabric.NodeID, remoteAddr uint64, size int) *sim.Completion {
	return r.WriteAsyncNote(donor, remoteAddr, size, nil)
}

// WriteAsyncNote is WriteAsync with an immediate note attached to the
// final chunk: when that chunk lands, the receiver's immediate observer
// sees the note — no extra control packet, and FIFO delivery guarantees
// the data precedes the notification.
func (r *RDMA) WriteAsyncNote(donor fabric.NodeID, remoteAddr uint64, size int, note any) *sim.Completion {
	if size <= 0 {
		panic(fmt.Sprintf("rdma: non-positive transfer size %d", size))
	}
	r.Stats.Writes++
	id := r.nextID
	r.nextID++
	chunks := r.chunksFor(size)
	pend := &rdmaPending{done: sim.NewCompletion(r.ep.Eng), start: r.ep.Eng.Now(), total: 1}
	r.pending[id] = pend
	// Software descriptor setup, then the source-side engine streams
	// chunks; the donor acks the last one.
	r.ep.Eng.Schedule(r.ep.P.RDMADescSW, func() {
		remaining := size
		for i := 0; i < chunks; i++ {
			n := r.ep.P.RDMAChunk
			if n > remaining {
				n = remaining
			}
			remaining -= n
			c := &rdmaChunk{id: id, idx: i, last: i == chunks-1, size: n,
				addr: remoteAddr + uint64(i*r.ep.P.RDMAChunk)}
			if c.last {
				c.note = note
			}
			r.Stats.BytesOut += int64(n)
			r.ep.SendRaw(donor, "rdma.data", n, c)
		}
	})
	return pend.done
}

// Write blocks the calling process until the DMA write is acknowledged.
func (r *RDMA) Write(p *sim.Proc, donor fabric.NodeID, remoteAddr uint64, size int) {
	p.Await(r.WriteAsync(donor, remoteAddr, size))
}

// handleReq runs at the donor: stream the requested region back as
// chunks, charging memory service per chunk; the link model provides
// pipelining and bandwidth sharing.
func (r *RDMA) handleReq(pkt *fabric.Packet, m *rdmaReq) {
	from := pkt.Src
	remaining := m.size
	var elapsed sim.Dur
	for i := 0; i < m.chunks; i++ {
		n := r.ep.P.RDMAChunk
		if n > remaining {
			n = remaining
		}
		remaining -= n
		addr := m.addr + uint64(i*r.ep.P.RDMAChunk)
		elapsed += r.ep.Mem.Service(addr, n, false)
		c := &rdmaChunk{id: m.id, idx: i, last: i == m.chunks-1, size: n, addr: addr, resp: true}
		r.Stats.BytesOut += int64(n)
		r.ep.Eng.At(r.ep.Eng.Now().Add(elapsed), func() {
			r.ep.SendRaw(from, "rdma.data", c.size, c)
		})
	}
}

// handleChunk consumes one arriving chunk at either end.
func (r *RDMA) handleChunk(pkt *fabric.Packet, m *rdmaChunk) {
	r.Stats.BytesIn += int64(m.size)
	if m.resp {
		// Requester side of a read.
		pend, ok := r.pending[m.id]
		if !ok {
			return
		}
		pend.received++
		if pend.received == pend.total {
			delete(r.pending, m.id)
			// Completion interrupt + driver bottom half.
			r.ep.Eng.Schedule(r.ep.P.RDMADoneIRQ, func() {
				r.Stats.OpLat.AddDur(r.ep.Eng.Now().Sub(pend.start))
				pend.done.Complete()
			})
		}
		return
	}
	// Donor side of a write: absorb into memory; ack the last chunk and
	// deliver any immediate note once the data is in memory.
	svc := r.ep.Mem.Service(m.addr, m.size, true)
	if m.last {
		from := pkt.Src
		m := m
		r.ep.Eng.Schedule(svc, func() {
			r.ep.SendRaw(from, "rdma.ack", 0, &rdmaChunk{id: m.id, resp: true, last: true, size: 0})
			if m.note != nil && r.observer != nil {
				r.observer(from, m.addr, m.note)
			}
		})
	}
}
