package transport

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// crmaReq is a cacheline fetch or store crossing the fabric.
type crmaReq struct {
	id    uint64
	addr  uint64 // requester-local address; translated by the donor's table
	size  int
	write bool
}

// crmaResp completes a crmaReq at the requester.
type crmaResp struct {
	id uint64
}

// crmaPosted is a fire-and-forget remote store, used by the
// inter-channel collaboration mechanism to deposit flow-control credits
// directly into donor memory (§5.1.3, Fig. 9).
type crmaPosted struct {
	addr uint64
	size int
	note any // optional payload interpreted by a registered observer
}

// RAMTEntry is one row of the Remote Address Mapping Table (Fig. 8):
// local window base/size mapped onto a remote node's physical region.
type RAMTEntry struct {
	Valid      bool
	LocalBase  uint64
	Size       uint64
	Node       fabric.NodeID
	RemoteBase uint64

	// Dead marks a requester-side window whose lease was revoked with no
	// replacement donor (the donor died and re-placement failed). The
	// window stays mapped so accesses do not trap, but they complete
	// immediately with poison data; CRMAStats.DeadAccesses counts them so
	// callers can report the failure honestly.
	Dead bool
}

// contains reports whether addr falls inside the entry's local window.
func (e *RAMTEntry) contains(addr uint64) bool {
	return e.Valid && addr >= e.LocalBase && addr < e.LocalBase+e.Size
}

// translate maps a requester-local address to the donor-local address.
func (e *RAMTEntry) translate(addr uint64) uint64 {
	return e.RemoteBase + (addr - e.LocalBase)
}

// CRMAStats counts CRMA channel activity.
type CRMAStats struct {
	Fills        int64
	Writes       int64
	Posted       int64
	Served       int64 // requests serviced for remote nodes (donor role)
	Unexported   int64 // requests dropped at the donor for lack of an export (rebooted donor)
	Replayed     int64 // in-flight accesses re-issued after a window retarget
	DeadAccesses int64 // accesses to a revoked (dead) window, completed with poison
	FillLat      sim.Hist
	RemoteBkt    sim.Scoreboard // per-donor fill counts
}

// CRMA is the cacheline remote memory access channel: once a mapping is
// installed, misses to the mapped window are captured in hardware,
// packetized, and serviced by the donor with no software on the critical
// path.
type CRMA struct {
	ep      *Endpoint
	ramt    []*RAMTEntry // requester-side windows
	exports []*RAMTEntry // donor-side reverse mappings (remote node's window -> local)
	pending map[uint64]*crmaPending
	nextID  uint64

	// postedObserver, when set, sees every posted store's note; the QPair
	// collaboration path registers itself here.
	postedObserver func(addr uint64, note any)

	Stats CRMAStats
}

// crmaPending tracks one outstanding access for completion and latency
// accounting. addr and size are kept so the access can be re-issued
// against a new donor if the window is retargeted while it is in flight.
type crmaPending struct {
	done  *sim.Completion
	start sim.Time
	write bool
	addr  uint64
	size  int
}

func newCRMA(ep *Endpoint) *CRMA {
	return &CRMA{ep: ep, pending: make(map[uint64]*crmaPending)}
}

// Map installs a requester-side RAMT entry: the local window
// [localBase, localBase+size) resolves to donor's [remoteBase, ...).
// The matching donor-side entry must be installed with Export.
func (c *CRMA) Map(localBase, size uint64, donor fabric.NodeID, remoteBase uint64) (*RAMTEntry, error) {
	if size == 0 {
		return nil, fmt.Errorf("crma: zero-size mapping")
	}
	for _, e := range c.ramt {
		if e.Valid && localBase < e.LocalBase+e.Size && e.LocalBase < localBase+size {
			return nil, fmt.Errorf("crma: window [%#x,%#x) overlaps existing entry", localBase, localBase+size)
		}
	}
	e := &RAMTEntry{Valid: true, LocalBase: localBase, Size: size, Node: donor, RemoteBase: remoteBase}
	c.ramt = append(c.ramt, e)
	return e, nil
}

// Export installs the donor-side mapping that accepts requests from a
// recipient for local region [localBase, localBase+size).
func (c *CRMA) Export(recipient fabric.NodeID, recipientBase, size, localBase uint64) *RAMTEntry {
	e := &RAMTEntry{Valid: true, LocalBase: recipientBase, Size: size, Node: recipient, RemoteBase: localBase}
	c.exports = append(c.exports, e)
	return e
}

// Unmap invalidates a requester-side entry after cleanup (stop-sharing).
func (c *CRMA) Unmap(e *RAMTEntry) { e.Valid = false }

// UnexportAll invalidates every donor-side export serving a recipient.
func (c *CRMA) UnexportAll(recipient fabric.NodeID) {
	for _, e := range c.exports {
		if e.Node == recipient {
			e.Valid = false
		}
	}
}

// Reset wipes the channel's soft state — every mapping, every export,
// every pending access — modeling the node rebooting: the RAMT is
// hardware state that does not survive power loss. Completions of wiped
// pending accesses never fire (their waiters died with the node).
func (c *CRMA) Reset() {
	c.ramt = nil
	c.exports = nil
	c.pending = make(map[uint64]*crmaPending)
}

// pendingInWindow collects the ids of in-flight accesses whose address
// falls inside [base, base+size), ascending — the deterministic order
// both recovery paths (replay and kill) walk them in.
func (c *CRMA) pendingInWindow(base, size uint64) []uint64 {
	ids := make([]uint64, 0, len(c.pending))
	for id, pend := range c.pending {
		if pend.addr >= base && pend.addr < base+size {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Retarget points a requester-side window at a new donor region — the
// transport half of lease failover. In-flight accesses are NOT replayed
// here; call ReplayWindow once the new donor's export is known live.
func (c *CRMA) Retarget(e *RAMTEntry, donor fabric.NodeID, remoteBase uint64) {
	e.Node = donor
	e.RemoteBase = remoteBase
	e.Dead = false
}

// ReplayWindow re-issues every pending access that falls inside the
// window [base, base+size) against the window's current donor. Requests
// lost to a dead donor complete when their replay's response arrives; a
// request the old donor did answer (response still in flight) is
// completed by whichever response lands first, and the duplicate is
// dropped by id. Iteration is in ascending request id so replays hit the
// wire in a deterministic order.
func (c *CRMA) ReplayWindow(base, size uint64) int {
	ids := c.pendingInWindow(base, size)
	replayed := 0
	for _, id := range ids {
		pend := c.pending[id]
		e, ok := c.Lookup(pend.addr)
		if !ok || e.Dead {
			continue
		}
		c.Stats.Replayed++
		replayed++
		reqSize := 16
		if pend.write {
			reqSize = 16 + pend.size
		}
		req := &crmaReq{id: id, addr: pend.addr, size: pend.size, write: pend.write}
		node := e.Node
		c.ep.Eng.Schedule(c.ep.P.CRMALogic, func() {
			c.ep.SendRaw(node, "crma.req", reqSize, req)
		})
	}
	return replayed
}

// KillWindow marks a requester-side window revoked-without-replacement:
// the entry goes dead (future accesses complete instantly as poison, see
// RAMTEntry.Dead) and every pending access inside it is completed so no
// process stays parked on a donor that will never answer.
func (c *CRMA) KillWindow(base, size uint64) {
	for _, e := range c.ramt {
		if e.Valid && e.LocalBase == base && e.Size == size {
			e.Dead = true
		}
	}
	for _, id := range c.pendingInWindow(base, size) {
		pend := c.pending[id]
		delete(c.pending, id)
		c.Stats.DeadAccesses++
		pend.done.Complete()
	}
}

// Lookup finds the RAMT entry covering addr, if any — the hardware hit
// check of Fig. 8.
func (c *CRMA) Lookup(addr uint64) (*RAMTEntry, bool) {
	for _, e := range c.ramt {
		if e.contains(addr) {
			return e, true
		}
	}
	return nil, false
}

// FillAsync issues a remote read of size bytes at addr (which must be
// covered by a mapping) and returns a completion that fires when the data
// arrives. This is the hardware path a cache miss takes.
func (c *CRMA) FillAsync(addr uint64, size int) *sim.Completion {
	return c.accessAsync(addr, size, false)
}

// WriteAsync issues a remote store (e.g. a dirty writeback) and returns
// its acknowledgement completion.
func (c *CRMA) WriteAsync(addr uint64, size int) *sim.Completion {
	return c.accessAsync(addr, size, true)
}

func (c *CRMA) accessAsync(addr uint64, size int, write bool) *sim.Completion {
	e, ok := c.Lookup(addr)
	if !ok {
		panic(fmt.Sprintf("crma: node %v: access to unmapped address %#x", c.ep.ID, addr))
	}
	if e.Dead {
		// Revoked window: complete instantly with poison rather than trap,
		// and count the failure for the caller's accounting.
		c.Stats.DeadAccesses++
		done := sim.NewCompletion(c.ep.Eng)
		done.Complete()
		return done
	}
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Fills++
		c.Stats.RemoteBkt.Add(e.Node.String(), 1)
	}
	id := c.nextID
	c.nextID++
	pend := &crmaPending{done: sim.NewCompletion(c.ep.Eng), start: c.ep.Eng.Now(),
		write: write, addr: addr, size: size}
	c.pending[id] = pend
	reqSize := 16 // address + control
	if write {
		reqSize = 16 + size // write carries data
	}
	req := &crmaReq{id: id, addr: addr, size: size, write: write}
	// Capture + packetize in the CRMA logic, then inject.
	c.ep.Eng.Schedule(c.ep.P.CRMALogic, func() {
		c.ep.SendRaw(e.Node, "crma.req", reqSize, req)
	})
	return pend.done
}

// Fill blocks the calling process until a remote read completes.
func (c *CRMA) Fill(p *sim.Proc, addr uint64, size int) {
	p.Await(c.FillAsync(addr, size))
}

// Write blocks the calling process until a remote store is acknowledged.
func (c *CRMA) Write(p *sim.Proc, addr uint64, size int) {
	p.Await(c.WriteAsync(addr, size))
}

// PostWrite sends a fire-and-forget remote store with an attached note.
// The donor's posted observer (if any) sees the note on arrival. Posted
// writes are overwriteable and carry no ordering guarantee relative to
// other channels — exactly the semantics the collaboration design needs
// for credit updates.
func (c *CRMA) PostWrite(dst fabric.NodeID, addr uint64, size int, note any) {
	c.Stats.Posted++
	m := &crmaPosted{addr: addr, size: size, note: note}
	c.ep.Eng.Schedule(c.ep.P.CRMALogic, func() {
		c.ep.SendRaw(dst, "crma.post", 16+size, m)
	})
}

// ObservePosted registers the consumer of posted-write notes.
func (c *CRMA) ObservePosted(fn func(addr uint64, note any)) { c.postedObserver = fn }

// lookupExport finds the donor-side entry matching a requester address.
func (c *CRMA) lookupExport(from fabric.NodeID, addr uint64) (*RAMTEntry, bool) {
	for _, e := range c.exports {
		if e.Node == from && e.contains(addr) {
			return e, true
		}
	}
	return nil, false
}

// handleReq services a remote fill or store at the donor: translate
// through the export table, access memory, respond (for reads) after the
// memory service time.
func (c *CRMA) handleReq(pkt *fabric.Packet, m *crmaReq) {
	e, ok := c.lookupExport(pkt.Src, m.addr)
	if !ok {
		// A rebooted donor forgot its exports: drop the request (the
		// requester's lease will be re-placed by the Monitor Node and the
		// access replayed) instead of crashing the simulation.
		c.Stats.Unexported++
		return
	}
	c.Stats.Served++
	local := e.translate(m.addr)
	svc := c.ep.Mem.Service(local, m.size, m.write)
	respSize := m.size // read response carries data
	if m.write {
		respSize = 0 // store ack is header-only
	}
	from := pkt.Src
	c.ep.Eng.Schedule(c.ep.P.CRMALogic+svc, func() {
		c.ep.SendRaw(from, "crma.resp", respSize, &crmaResp{id: m.id})
	})
}

// handleResp completes the requester-side pending access.
func (c *CRMA) handleResp(m *crmaResp) {
	pend, ok := c.pending[m.id]
	if !ok {
		return
	}
	delete(c.pending, m.id)
	// De-packetize in the CRMA logic before handing data to the core.
	c.ep.Eng.Schedule(c.ep.P.CRMALogic, func() {
		if !pend.write {
			c.Stats.FillLat.AddDur(c.ep.Eng.Now().Sub(pend.start))
		}
		pend.done.Complete()
	})
}

// handlePosted applies a posted write at the receiver. Credit notes go
// straight to their queue pair's hardware state machine — no software on
// the path, which is the point of the collaboration (Fig. 9).
func (c *CRMA) handlePosted(_ *fabric.Packet, m *crmaPosted) {
	c.ep.Eng.Schedule(c.ep.P.CRMALogic, func() {
		if cr, ok := m.note.(*qpCredit); ok {
			if qp, live := c.ep.qpairs[cr.dstQID]; live {
				qp.addCredits(cr.credits)
			}
			return
		}
		if c.postedObserver != nil {
			c.postedObserver(m.addr, m.note)
		}
	})
}
