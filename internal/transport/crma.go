package transport

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// crmaReq is a cacheline fetch or store crossing the fabric.
type crmaReq struct {
	id    uint64
	addr  uint64 // requester-local address; translated by the donor's table
	size  int
	write bool
}

// crmaResp completes a crmaReq at the requester.
type crmaResp struct {
	id uint64
}

// crmaPosted is a fire-and-forget remote store, used by the
// inter-channel collaboration mechanism to deposit flow-control credits
// directly into donor memory (§5.1.3, Fig. 9).
type crmaPosted struct {
	addr uint64
	size int
	note any // optional payload interpreted by a registered observer
}

// RAMTEntry is one row of the Remote Address Mapping Table (Fig. 8):
// local window base/size mapped onto a remote node's physical region.
type RAMTEntry struct {
	Valid      bool
	LocalBase  uint64
	Size       uint64
	Node       fabric.NodeID
	RemoteBase uint64
}

// contains reports whether addr falls inside the entry's local window.
func (e *RAMTEntry) contains(addr uint64) bool {
	return e.Valid && addr >= e.LocalBase && addr < e.LocalBase+e.Size
}

// translate maps a requester-local address to the donor-local address.
func (e *RAMTEntry) translate(addr uint64) uint64 {
	return e.RemoteBase + (addr - e.LocalBase)
}

// CRMAStats counts CRMA channel activity.
type CRMAStats struct {
	Fills     int64
	Writes    int64
	Posted    int64
	Served    int64 // requests serviced for remote nodes (donor role)
	FillLat   sim.Hist
	RemoteBkt sim.Scoreboard // per-donor fill counts
}

// CRMA is the cacheline remote memory access channel: once a mapping is
// installed, misses to the mapped window are captured in hardware,
// packetized, and serviced by the donor with no software on the critical
// path.
type CRMA struct {
	ep      *Endpoint
	ramt    []*RAMTEntry // requester-side windows
	exports []*RAMTEntry // donor-side reverse mappings (remote node's window -> local)
	pending map[uint64]*crmaPending
	nextID  uint64

	// postedObserver, when set, sees every posted store's note; the QPair
	// collaboration path registers itself here.
	postedObserver func(addr uint64, note any)

	Stats CRMAStats
}

// crmaPending tracks one outstanding access for completion and latency
// accounting.
type crmaPending struct {
	done  *sim.Completion
	start sim.Time
	write bool
}

func newCRMA(ep *Endpoint) *CRMA {
	return &CRMA{ep: ep, pending: make(map[uint64]*crmaPending)}
}

// Map installs a requester-side RAMT entry: the local window
// [localBase, localBase+size) resolves to donor's [remoteBase, ...).
// The matching donor-side entry must be installed with Export.
func (c *CRMA) Map(localBase, size uint64, donor fabric.NodeID, remoteBase uint64) (*RAMTEntry, error) {
	if size == 0 {
		return nil, fmt.Errorf("crma: zero-size mapping")
	}
	for _, e := range c.ramt {
		if e.Valid && localBase < e.LocalBase+e.Size && e.LocalBase < localBase+size {
			return nil, fmt.Errorf("crma: window [%#x,%#x) overlaps existing entry", localBase, localBase+size)
		}
	}
	e := &RAMTEntry{Valid: true, LocalBase: localBase, Size: size, Node: donor, RemoteBase: remoteBase}
	c.ramt = append(c.ramt, e)
	return e, nil
}

// Export installs the donor-side mapping that accepts requests from a
// recipient for local region [localBase, localBase+size).
func (c *CRMA) Export(recipient fabric.NodeID, recipientBase, size, localBase uint64) *RAMTEntry {
	e := &RAMTEntry{Valid: true, LocalBase: recipientBase, Size: size, Node: recipient, RemoteBase: localBase}
	c.exports = append(c.exports, e)
	return e
}

// Unmap invalidates a requester-side entry after cleanup (stop-sharing).
func (c *CRMA) Unmap(e *RAMTEntry) { e.Valid = false }

// UnexportAll invalidates every donor-side export serving a recipient.
func (c *CRMA) UnexportAll(recipient fabric.NodeID) {
	for _, e := range c.exports {
		if e.Node == recipient {
			e.Valid = false
		}
	}
}

// Lookup finds the RAMT entry covering addr, if any — the hardware hit
// check of Fig. 8.
func (c *CRMA) Lookup(addr uint64) (*RAMTEntry, bool) {
	for _, e := range c.ramt {
		if e.contains(addr) {
			return e, true
		}
	}
	return nil, false
}

// FillAsync issues a remote read of size bytes at addr (which must be
// covered by a mapping) and returns a completion that fires when the data
// arrives. This is the hardware path a cache miss takes.
func (c *CRMA) FillAsync(addr uint64, size int) *sim.Completion {
	return c.accessAsync(addr, size, false)
}

// WriteAsync issues a remote store (e.g. a dirty writeback) and returns
// its acknowledgement completion.
func (c *CRMA) WriteAsync(addr uint64, size int) *sim.Completion {
	return c.accessAsync(addr, size, true)
}

func (c *CRMA) accessAsync(addr uint64, size int, write bool) *sim.Completion {
	e, ok := c.Lookup(addr)
	if !ok {
		panic(fmt.Sprintf("crma: node %v: access to unmapped address %#x", c.ep.ID, addr))
	}
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Fills++
		c.Stats.RemoteBkt.Add(e.Node.String(), 1)
	}
	id := c.nextID
	c.nextID++
	pend := &crmaPending{done: sim.NewCompletion(c.ep.Eng), start: c.ep.Eng.Now(), write: write}
	c.pending[id] = pend
	reqSize := 16 // address + control
	if write {
		reqSize = 16 + size // write carries data
	}
	req := &crmaReq{id: id, addr: addr, size: size, write: write}
	// Capture + packetize in the CRMA logic, then inject.
	c.ep.Eng.Schedule(c.ep.P.CRMALogic, func() {
		c.ep.SendRaw(e.Node, "crma.req", reqSize, req)
	})
	return pend.done
}

// Fill blocks the calling process until a remote read completes.
func (c *CRMA) Fill(p *sim.Proc, addr uint64, size int) {
	p.Await(c.FillAsync(addr, size))
}

// Write blocks the calling process until a remote store is acknowledged.
func (c *CRMA) Write(p *sim.Proc, addr uint64, size int) {
	p.Await(c.WriteAsync(addr, size))
}

// PostWrite sends a fire-and-forget remote store with an attached note.
// The donor's posted observer (if any) sees the note on arrival. Posted
// writes are overwriteable and carry no ordering guarantee relative to
// other channels — exactly the semantics the collaboration design needs
// for credit updates.
func (c *CRMA) PostWrite(dst fabric.NodeID, addr uint64, size int, note any) {
	c.Stats.Posted++
	m := &crmaPosted{addr: addr, size: size, note: note}
	c.ep.Eng.Schedule(c.ep.P.CRMALogic, func() {
		c.ep.SendRaw(dst, "crma.post", 16+size, m)
	})
}

// ObservePosted registers the consumer of posted-write notes.
func (c *CRMA) ObservePosted(fn func(addr uint64, note any)) { c.postedObserver = fn }

// lookupExport finds the donor-side entry matching a requester address.
func (c *CRMA) lookupExport(from fabric.NodeID, addr uint64) (*RAMTEntry, bool) {
	for _, e := range c.exports {
		if e.Node == from && e.contains(addr) {
			return e, true
		}
	}
	return nil, false
}

// handleReq services a remote fill or store at the donor: translate
// through the export table, access memory, respond (for reads) after the
// memory service time.
func (c *CRMA) handleReq(pkt *fabric.Packet, m *crmaReq) {
	e, ok := c.lookupExport(pkt.Src, m.addr)
	if !ok {
		panic(fmt.Sprintf("crma: node %v: request from %v for unexported address %#x",
			c.ep.ID, pkt.Src, m.addr))
	}
	c.Stats.Served++
	local := e.translate(m.addr)
	svc := c.ep.Mem.Service(local, m.size, m.write)
	respSize := m.size // read response carries data
	if m.write {
		respSize = 0 // store ack is header-only
	}
	from := pkt.Src
	c.ep.Eng.Schedule(c.ep.P.CRMALogic+svc, func() {
		c.ep.SendRaw(from, "crma.resp", respSize, &crmaResp{id: m.id})
	})
}

// handleResp completes the requester-side pending access.
func (c *CRMA) handleResp(m *crmaResp) {
	pend, ok := c.pending[m.id]
	if !ok {
		return
	}
	delete(c.pending, m.id)
	// De-packetize in the CRMA logic before handing data to the core.
	c.ep.Eng.Schedule(c.ep.P.CRMALogic, func() {
		if !pend.write {
			c.Stats.FillLat.AddDur(c.ep.Eng.Now().Sub(pend.start))
		}
		pend.done.Complete()
	})
}

// handlePosted applies a posted write at the receiver. Credit notes go
// straight to their queue pair's hardware state machine — no software on
// the path, which is the point of the collaboration (Fig. 9).
func (c *CRMA) handlePosted(_ *fabric.Packet, m *crmaPosted) {
	c.ep.Eng.Schedule(c.ep.P.CRMALogic, func() {
		if cr, ok := m.note.(*qpCredit); ok {
			if qp, live := c.ep.qpairs[cr.dstQID]; live {
				qp.addCredits(cr.credits)
			}
			return
		}
		if c.postedObserver != nil {
			c.postedObserver(m.addr, m.note)
		}
	})
}
