package transport

import (
	"fmt"
	"sync/atomic"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// qpMsg is one QPair message on the wire.
type qpMsg struct {
	dstQID int
	seq    uint64
	size   int
	data   any
	sent   sim.Time
}

// qpCredit returns transport-level flow-control credits to a data
// sender. It travels either as a QPair control message (the traditional
// design) or inside a CRMA posted write (the collaborative design of
// §5.1.3 / Fig. 9).
type qpCredit struct {
	dstQID  int
	credits int
}

// Message is a received QPair message as seen by software.
type Message struct {
	From fabric.NodeID
	Size int
	Data any
	// Latency is wire + queueing time from Send to arrival.
	Latency sim.Dur
}

// QPairConfig shapes one direction of a queue pair.
type QPairConfig struct {
	// Window is the transport-level credit window: the number of receive
	// buffers at the peer. Zero disables transport flow control.
	Window int
	// CreditBatch is how many consumed messages the receiver accumulates
	// before returning credits. Zero defaults to max(1, Window/4).
	CreditBatch int
	// CreditViaCRMA routes credit updates through the CRMA channel as
	// posted writes instead of QPair control messages (Fig. 9 right).
	CreditViaCRMA bool
	// ExtraSW is additional per-message software cost, modeling thicker
	// legacy stacks (the off-chip QPair configuration of Fig. 5 runs a
	// conventional IB-style path).
	ExtraSW sim.Dur
}

func (c QPairConfig) creditBatch() int {
	if c.CreditBatch > 0 {
		return c.CreditBatch
	}
	if c.Window >= 4 {
		return c.Window / 4
	}
	return 1
}

// QPairStats counts one endpoint's QPair activity.
type QPairStats struct {
	Sent        int64
	Received    int64
	BytesSent   int64
	BytesRecv   int64
	OutOfOrder  int64
	CreditStall sim.Dur // total time the sender spent blocked on credits
	CreditsSent int64
	MsgLat      sim.Hist
}

// QPair is one endpoint of a bidirectional user-level channel between two
// communicating threads (§5.1.2). Data written into the local send queue
// is delivered to the counterpart's receive queue by hardware state
// machines, freeing the CPU.
type QPair struct {
	ep   *Endpoint
	id   int
	dst  int
	peer fabric.NodeID
	cfg  QPairConfig

	credits *sim.Semaphore // nil when flow control is disabled
	recvQ   *sim.Queue[*Message]

	sendSeq   uint64
	expectSeq uint64
	reorder   map[uint64]*qpMsg

	consumed int // messages consumed since the last credit return

	Stats QPairStats
}

// nextQPID hands out process-unique queue-pair ids. Simulations on
// different engines may connect queue pairs concurrently (the
// experiment harness runs trials in parallel), so the counter is
// atomic; only uniqueness matters, never the numeric value.
var nextQPID atomic.Int64

// ConnectQPair establishes a queue pair between two endpoints and
// returns the two ends. Both directions share the same configuration.
func ConnectQPair(a, b *Endpoint, cfg QPairConfig) (*QPair, *QPair) {
	if a.Eng != b.Eng {
		panic("transport: qpair endpoints on different engines")
	}
	qa := &QPair{ep: a, id: int(nextQPID.Add(1)), peer: b.ID, cfg: cfg, reorder: make(map[uint64]*qpMsg)}
	qb := &QPair{ep: b, id: int(nextQPID.Add(1)), peer: a.ID, cfg: cfg, reorder: make(map[uint64]*qpMsg)}
	qa.dst, qb.dst = qb.id, qa.id
	qa.recvQ = sim.NewQueue[*Message](a.Eng)
	qb.recvQ = sim.NewQueue[*Message](b.Eng)
	if cfg.Window > 0 {
		qa.credits = sim.NewSemaphore(a.Eng, cfg.Window)
		qb.credits = sim.NewSemaphore(b.Eng, cfg.Window)
	}
	a.qpairs[qa.id] = qa
	b.qpairs[qb.id] = qb
	return qa, qb
}

// Peer reports the node at the other end.
func (q *QPair) Peer() fabric.NodeID { return q.peer }

// Pending reports the number of undelivered messages in the local
// receive queue.
func (q *QPair) Pending() int { return q.recvQ.Len() }

// Send transmits size payload bytes to the peer, blocking the calling
// process for the software send path and, when flow control is enabled,
// until a credit is available.
func (q *QPair) Send(p *sim.Proc, size int, data any) {
	p.Sleep(q.ep.P.QPairSWSend + q.cfg.ExtraSW)
	q.sendHW(p, size, data)
}

// SendHW transmits bypassing the software path — used where a kernel
// driver or hardware block owns the queue (the paper's VNIC back-end and
// accelerator mailboxes), whose costs are modeled by their own layers.
func (q *QPair) SendHW(p *sim.Proc, size int, data any) { q.sendHW(p, size, data) }

func (q *QPair) sendHW(p *sim.Proc, size int, data any) {
	if q.credits != nil {
		t0 := q.ep.Eng.Now()
		q.credits.Acquire(p)
		q.Stats.CreditStall += q.ep.Eng.Now().Sub(t0)
	}
	q.Stats.Sent++
	q.Stats.BytesSent += int64(size)
	m := &qpMsg{dstQID: q.dst, seq: q.sendSeq, size: size, data: data, sent: q.ep.Eng.Now()}
	q.sendSeq++
	q.ep.Eng.Schedule(q.ep.P.QPairDoor, func() {
		q.ep.SendRaw(q.peer, "qpair.msg", size, m)
	})
}

// arrive accepts a message from the fabric, reordering as needed: with
// inter-channel collaboration packets may arrive out of order, which is
// why QPair messages carry sequence numbers (§5.1.3).
func (q *QPair) arrive(pkt *fabric.Packet, m *qpMsg) {
	if m.seq != q.expectSeq {
		q.Stats.OutOfOrder++
		q.reorder[m.seq] = m
		return
	}
	q.release(pkt.Src, m)
	for {
		next, ok := q.reorder[q.expectSeq]
		if !ok {
			break
		}
		delete(q.reorder, q.expectSeq)
		q.release(pkt.Src, next)
	}
}

// release hands one in-order message to the receive queue.
func (q *QPair) release(from fabric.NodeID, m *qpMsg) {
	q.expectSeq++
	q.Stats.Received++
	q.Stats.BytesRecv += int64(m.size)
	lat := q.ep.Eng.Now().Sub(m.sent)
	q.Stats.MsgLat.AddDur(lat)
	q.recvQ.TryPush(&Message{From: from, Size: m.size, Data: m.data, Latency: lat})
}

// Recv blocks until a message is available, charges the software receive
// path, and handles credit returns.
func (q *QPair) Recv(p *sim.Proc) *Message {
	msg := q.recvQ.Pop(p)
	p.Sleep(q.ep.P.QPairSWRecv + q.cfg.ExtraSW)
	q.afterConsume(p)
	return msg
}

// RecvHW dequeues bypassing the software receive path — for consumers
// that are themselves drivers or hardware state machines (VNIC
// back-ends, flow-controlled stream sinks) whose costs are modeled by
// their own layers. Credit returns still apply.
func (q *QPair) RecvHW(p *sim.Proc) *Message {
	msg := q.recvQ.Pop(p)
	q.afterConsume(p)
	return msg
}

// TryRecv polls for a message without blocking for arrival (the software
// receive cost still applies when a message is returned).
func (q *QPair) TryRecv(p *sim.Proc) (*Message, bool) {
	msg, ok := q.recvQ.TryPop()
	if !ok {
		return nil, false
	}
	p.Sleep(q.ep.P.QPairSWRecv + q.cfg.ExtraSW)
	q.afterConsume(p)
	return msg, true
}

// afterConsume accumulates consumed buffers and returns credits to the
// peer when a batch is full.
func (q *QPair) afterConsume(p *sim.Proc) {
	if q.cfg.Window == 0 {
		return
	}
	q.consumed++
	if q.consumed < q.cfg.creditBatch() {
		return
	}
	n := q.consumed
	q.consumed = 0
	q.Stats.CreditsSent++
	cr := &qpCredit{dstQID: q.dst, credits: n}
	if q.cfg.CreditViaCRMA {
		// Collaborative path: a posted CRMA store into a dedicated,
		// overwriteable credit region — no software on either side.
		q.ep.CRMA.PostWrite(q.peer, creditRegionBase+uint64(q.id), 4, cr)
		return
	}
	// Traditional path: a QPair control message — a lighter software
	// post than a data send, but still on the receiver's CPU and still a
	// full traversal of the channel's latency.
	p.Sleep(q.ep.P.QPairCreditSW + q.cfg.ExtraSW)
	q.ep.Eng.Schedule(q.ep.P.QPairDoor, func() {
		q.ep.SendRaw(q.peer, "qpair.credit", 8, cr)
	})
}

// creditRegionBase is the conventional address of the credit mailbox
// region used by collaborative flow control. Posted credit writes carry
// their meaning in-band, so the exact value only namespaces the region.
const creditRegionBase uint64 = 0xC0DE_0000_0000

// addCredits releases n transmit credits.
func (q *QPair) addCredits(n int) {
	if q.credits == nil {
		return
	}
	for i := 0; i < n; i++ {
		q.credits.Release()
	}
}

// injectOutOfOrder exists for tests: it delivers a raw message envelope
// as if the fabric had reordered it.
func (q *QPair) injectOutOfOrder(from fabric.NodeID, m *qpMsg) { //nolint:unused
	q.arrive(&fabric.Packet{Src: from}, m)
}

// String identifies the pair endpoint.
func (q *QPair) String() string {
	return fmt.Sprintf("qp%d@%v->qp%d@%v", q.id, q.ep.ID, q.dst, q.peer)
}
