// Package transport implements Venice's transport-layer remote access
// channels (§5.1.2 of the paper): the CRMA channel for cacheline-grained
// remote memory access through load/store instructions, the RDMA channel
// for software-initiated bulk transfers, and the QPair channel for
// user-level message passing — plus the inter-channel collaboration
// mechanism (§5.1.3) that carries QPair flow-control credits over CRMA.
package transport

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// MemService models the donor-side memory being read or written when a
// remote request arrives. The node layer wires in its memory system; the
// default charges one DRAM access per request.
type MemService interface {
	// Service returns the time to satisfy an access of size bytes at
	// addr. write distinguishes stores from loads.
	Service(addr uint64, size int, write bool) sim.Dur
}

// flatDRAM is the default MemService: every request costs one DRAM access
// plus streaming time proportional to size.
type flatDRAM struct{ p *sim.Params }

func (f flatDRAM) Service(_ uint64, size int, _ bool) sim.Dur {
	// 64 B per DRAM burst beyond the first.
	bursts := (size + 63) / 64
	if bursts < 1 {
		bursts = 1
	}
	return f.p.DRAMLat + sim.Dur(bursts-1)*(f.p.DRAMLat/4)
}

// Handler processes an incoming raw packet addressed to a registered kind.
type Handler func(pkt *fabric.Packet)

// CallHandler services an RPC registered with HandleCall. It runs inside
// a fresh simulated process, so it may block (sleep, touch memory, send
// nested messages). It returns the response payload and its wire size.
type CallHandler func(p *sim.Proc, from fabric.NodeID, req any) (resp any, respSize int)

// Endpoint is one node's Venice transport interface: the hardware block
// that terminates the three channels and demultiplexes arriving packets.
type Endpoint struct {
	Eng *sim.Engine
	P   *sim.Params
	Net *fabric.Network
	ID  fabric.NodeID

	CRMA *CRMA
	RDMA *RDMA

	Mem MemService

	qpairs   map[int]*QPair
	handlers map[string]Handler
	calls    map[string]CallHandler
	pending  map[uint64]*pendingCall
	nextID   uint64

	// Stats tallies per-channel operation counts and latencies.
	Stats sim.Scoreboard
}

// pendingCall tracks an outstanding RPC issued by Call.
type pendingCall struct {
	done     *sim.Completion
	resp     any
	timedOut bool
}

// rpcReq and rpcResp are the wire envelopes of the generic RPC helper
// used by the runtime layers (monitor, accelerator, NIC drivers).
type rpcReq struct {
	id   uint64
	kind string
	body any
}

type rpcResp struct {
	id   uint64
	body any
}

// NewEndpoint attaches a transport endpoint to node id on the network.
func NewEndpoint(eng *sim.Engine, p *sim.Params, net *fabric.Network, id fabric.NodeID) *Endpoint {
	ep := &Endpoint{
		Eng:      eng,
		P:        p,
		Net:      net,
		ID:       id,
		Mem:      flatDRAM{p},
		qpairs:   make(map[int]*QPair),
		handlers: make(map[string]Handler),
		calls:    make(map[string]CallHandler),
		pending:  make(map[uint64]*pendingCall),
	}
	ep.CRMA = newCRMA(ep)
	ep.RDMA = newRDMA(ep)
	net.SetDelivery(id, ep.deliver)
	return ep
}

// Handle registers a raw packet handler for a packet kind.
func (ep *Endpoint) Handle(kind string, h Handler) { ep.handlers[kind] = h }

// HandleCall registers an RPC service for a call kind.
func (ep *Endpoint) HandleCall(kind string, h CallHandler) { ep.calls[kind] = h }

// SendRaw injects an arbitrary packet from this endpoint.
func (ep *Endpoint) SendRaw(dst fabric.NodeID, kind string, size int, payload any) {
	ep.Net.Send(&fabric.Packet{Src: ep.ID, Dst: dst, Kind: kind, Size: size, Payload: payload})
}

// Call performs a blocking RPC to kind on dst: request of reqSize bytes,
// response produced by the remote CallHandler. It is the control-plane
// primitive used by the resource-management runtime; data-plane traffic
// uses the three channels directly.
func (ep *Endpoint) Call(p *sim.Proc, dst fabric.NodeID, kind string, reqSize int, body any) any {
	resp, _ := ep.CallTimeout(p, dst, kind, reqSize, body, 0)
	return resp
}

// CallTimeout is Call with a deadline: if no response arrives within
// timeout (of virtual time), it returns (nil, false) and a late response
// is silently dropped. A timeout of zero waits forever. This is what
// lets the resource-management runtime survive peers that crash while
// servicing a request — a plain Call to a dead node parks its caller
// permanently.
func (ep *Endpoint) CallTimeout(p *sim.Proc, dst fabric.NodeID, kind string, reqSize int, body any, timeout sim.Dur) (any, bool) {
	id := ep.nextID
	ep.nextID++
	pc := &pendingCall{done: sim.NewCompletion(ep.Eng)}
	ep.pending[id] = pc
	ep.SendRaw(dst, "rpc."+kind, reqSize, &rpcReq{id: id, kind: kind, body: body})
	var watchdog sim.Handle
	if timeout > 0 {
		watchdog = ep.Eng.ScheduleCancelable(timeout, func() {
			if !pc.done.Done() {
				pc.timedOut = true
				pc.done.Complete()
			}
		})
	}
	p.Await(pc.done)
	// When the response wins the race, revoke the watchdog instead of
	// letting it fire later as a dead callback: every monitor heartbeat,
	// grant, and recovery RPC otherwise leaves a tombstone event churning
	// through the queue.
	ep.Eng.Cancel(watchdog)
	delete(ep.pending, id)
	if pc.timedOut {
		ep.Stats.Add("rpc.timeouts", 1)
		return nil, false
	}
	return pc.resp, true
}

// deliver demultiplexes an arriving packet to its channel or handler.
func (ep *Endpoint) deliver(pkt *fabric.Packet) {
	switch m := pkt.Payload.(type) {
	case *crmaReq:
		ep.CRMA.handleReq(pkt, m)
	case *crmaResp:
		ep.CRMA.handleResp(m)
	case *crmaPosted:
		ep.CRMA.handlePosted(pkt, m)
	case *rdmaReq:
		ep.RDMA.handleReq(pkt, m)
	case *rdmaChunk:
		ep.RDMA.handleChunk(pkt, m)
	case *qpMsg:
		ep.deliverQP(pkt, m)
	case *qpCredit:
		ep.creditQP(m)
	case *rpcReq:
		ep.handleRPC(pkt, m)
	case *rpcResp:
		pc, ok := ep.pending[m.id]
		if !ok {
			return // caller vanished; drop
		}
		pc.resp = m.body
		pc.done.Complete()
	default:
		h, ok := ep.handlers[pkt.Kind]
		if !ok {
			panic(fmt.Sprintf("transport: node %v: no handler for %v", ep.ID, pkt))
		}
		h(pkt)
	}
}

// handleRPC spawns a process to service a call and reply.
func (ep *Endpoint) handleRPC(pkt *fabric.Packet, req *rpcReq) {
	h, ok := ep.calls[req.kind]
	if !ok {
		panic(fmt.Sprintf("transport: node %v: no call handler %q", ep.ID, req.kind))
	}
	from := pkt.Src
	ep.Eng.Go("rpc."+req.kind, func(p *sim.Proc) {
		resp, size := h(p, from, req.body)
		ep.SendRaw(from, "rpc.resp", size, &rpcResp{id: req.id, body: resp})
	})
}

// deliverQP routes an arriving QPair message to its local queue pair.
func (ep *Endpoint) deliverQP(pkt *fabric.Packet, m *qpMsg) {
	qp, ok := ep.qpairs[m.dstQID]
	if !ok {
		panic(fmt.Sprintf("transport: node %v: unknown qpair %d", ep.ID, m.dstQID))
	}
	qp.arrive(pkt, m)
}

// creditQP routes a wire credit update to its local queue pair's
// hardware state machine (the sender-side cost of QPair-path credits is
// the receiver's software send plus the wire, already paid upstream).
func (ep *Endpoint) creditQP(m *qpCredit) {
	qp, ok := ep.qpairs[m.dstQID]
	if !ok {
		return // pair torn down; stale credit
	}
	ep.Eng.Schedule(ep.P.QPairDoor, func() { qp.addCredits(m.credits) })
}
