package transport

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// rig is a two-node test fixture: node 0 and node 1 directly connected.
type rig struct {
	eng *sim.Engine
	p   sim.Params
	net *fabric.Network
	a   *Endpoint // node 0
	b   *Endpoint // node 1
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.New()
	t.Cleanup(eng.Close)
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(1))
	return &rig{
		eng: eng,
		p:   p,
		net: net,
		a:   NewEndpoint(eng, &p, net, 0),
		b:   NewEndpoint(eng, &p, net, 1),
	}
}

func TestCRMAFillRoundTrip(t *testing.T) {
	r := newRig(t)
	// Node 0 maps a 1 MiB window at 0x1_0000_0000 onto node 1's 0x4000_0000.
	if _, err := r.a.CRMA.Map(0x1_0000_0000, 1<<20, 1, 0x4000_0000); err != nil {
		t.Fatal(err)
	}
	r.b.CRMA.Export(0, 0x1_0000_0000, 1<<20, 0x4000_0000)

	var lat sim.Dur
	r.eng.Go("filler", func(p *sim.Proc) {
		t0 := p.Now()
		r.a.CRMA.Fill(p, 0x1_0000_0000, 64)
		lat = p.Now().Sub(t0)
	})
	r.eng.Run()

	if r.a.CRMA.Stats.Fills != 1 || r.b.CRMA.Stats.Served != 1 {
		t.Fatalf("fills=%d served=%d", r.a.CRMA.Stats.Fills, r.b.CRMA.Stats.Served)
	}
	// Expected RTT: 2 hops (req 16B + resp 64B) + 3 CRMA logic crossings
	// (requester capture/packetize, donor lookup+service, requester
	// de-packetize) + donor DRAM access.
	want := r.p.HopLatency() + r.p.Serialize(16) +
		r.p.HopLatency() + r.p.Serialize(64) +
		3*r.p.CRMALogic + r.p.DRAMLat
	if lat != want {
		t.Fatalf("fill latency = %v, want %v", lat, want)
	}
	// Table 1-scale check: a remote cacheline fill should land in the
	// ~3µs band that makes the paper's 2-3x remote-memory slowdowns
	// plausible.
	if lat < 2500*sim.Nanosecond || lat > 4000*sim.Nanosecond {
		t.Fatalf("fill latency %v outside the expected 2.5-4µs band", lat)
	}
}

func TestCRMAWriteRoundTrip(t *testing.T) {
	r := newRig(t)
	if _, err := r.a.CRMA.Map(0x1_0000_0000, 1<<20, 1, 0x4000_0000); err != nil {
		t.Fatal(err)
	}
	r.b.CRMA.Export(0, 0x1_0000_0000, 1<<20, 0x4000_0000)
	done := false
	r.eng.Go("writer", func(p *sim.Proc) {
		r.a.CRMA.Write(p, 0x1_0000_0040, 64)
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("write never acknowledged")
	}
	if r.a.CRMA.Stats.Writes != 1 {
		t.Fatalf("writes = %d", r.a.CRMA.Stats.Writes)
	}
}

func TestCRMAMapValidation(t *testing.T) {
	r := newRig(t)
	if _, err := r.a.CRMA.Map(0x1000, 0, 1, 0); err == nil {
		t.Fatal("zero-size mapping accepted")
	}
	if _, err := r.a.CRMA.Map(0x1000, 0x1000, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.a.CRMA.Map(0x1800, 0x1000, 1, 0); err == nil {
		t.Fatal("overlapping mapping accepted")
	}
	// Adjacent is fine.
	if _, err := r.a.CRMA.Map(0x2000, 0x1000, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCRMALookupTranslateUnmap(t *testing.T) {
	r := newRig(t)
	e, err := r.a.CRMA.Map(0x1_0000_0000, 0x4000, 1, 0x9000_0000)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := r.a.CRMA.Lookup(0x1_0000_2000)
	if !ok || got != e {
		t.Fatal("Lookup missed mapped address")
	}
	if _, ok := r.a.CRMA.Lookup(0x1_0000_4000); ok {
		t.Fatal("Lookup hit one past the window end")
	}
	if want := uint64(0x9000_2000); e.translate(0x1_0000_2000) != want {
		t.Fatalf("translate = %#x, want %#x", e.translate(0x1_0000_2000), want)
	}
	r.a.CRMA.Unmap(e)
	if _, ok := r.a.CRMA.Lookup(0x1_0000_2000); ok {
		t.Fatal("Lookup hit an unmapped entry")
	}
}

func TestCRMAUnmappedAccessPanics(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped access did not panic")
		}
	}()
	r.a.CRMA.FillAsync(0xDEAD_0000, 64)
}

func TestRDMAReadStreamsChunks(t *testing.T) {
	r := newRig(t)
	var lat sim.Dur
	const size = 64 << 10 // 16 chunks of 4 KiB
	r.eng.Go("dma", func(p *sim.Proc) {
		t0 := p.Now()
		r.a.RDMA.Read(p, 1, 0x4000_0000, size)
		lat = p.Now().Sub(t0)
	})
	r.eng.Run()
	if r.a.RDMA.Stats.Reads != 1 {
		t.Fatalf("reads = %d", r.a.RDMA.Stats.Reads)
	}
	if r.a.RDMA.Stats.BytesIn != size {
		t.Fatalf("bytes in = %d, want %d", r.a.RDMA.Stats.BytesIn, size)
	}
	// The transfer must be bandwidth-dominated: at least the pure wire
	// time, below wire time plus generous fixed overheads.
	wire := sim.Dur(16) * r.p.Serialize(4096)
	if lat < wire {
		t.Fatalf("latency %v below wire time %v", lat, wire)
	}
	if lat > wire+50*sim.Microsecond {
		t.Fatalf("latency %v way above wire time %v", lat, wire)
	}
}

func TestRDMAWriteCompletes(t *testing.T) {
	r := newRig(t)
	ok := false
	r.eng.Go("dma", func(p *sim.Proc) {
		r.a.RDMA.Write(p, 1, 0x4000_0000, 12<<10)
		ok = true
	})
	r.eng.Run()
	if !ok {
		t.Fatal("write never completed")
	}
	if r.a.RDMA.Stats.Writes != 1 {
		t.Fatalf("writes = %d", r.a.RDMA.Stats.Writes)
	}
	// 12 KiB out in 3 chunks.
	if r.a.RDMA.Stats.BytesOut != 12<<10 {
		t.Fatalf("bytes out = %d", r.a.RDMA.Stats.BytesOut)
	}
}

func TestRDMABeatsCRMAForBulk(t *testing.T) {
	r := newRig(t)
	if _, err := r.a.CRMA.Map(0x1_0000_0000, 1<<20, 1, 0x4000_0000); err != nil {
		t.Fatal(err)
	}
	r.b.CRMA.Export(0, 0x1_0000_0000, 1<<20, 0x4000_0000)
	const size = 256 << 10
	var crmaT, rdmaT sim.Dur
	r.eng.Go("compare", func(p *sim.Proc) {
		t0 := p.Now()
		for off := 0; off < size; off += 64 {
			r.a.CRMA.Fill(p, 0x1_0000_0000+uint64(off), 64)
		}
		crmaT = p.Now().Sub(t0)
		t1 := p.Now()
		r.a.RDMA.Read(p, 1, 0x4000_0000, size)
		rdmaT = p.Now().Sub(t1)
	})
	r.eng.Run()
	if rdmaT*10 > crmaT {
		t.Fatalf("RDMA (%v) should be >10x faster than serial CRMA fills (%v) for bulk", rdmaT, crmaT)
	}
}

func TestQPairSendRecv(t *testing.T) {
	r := newRig(t)
	qa, qb := ConnectQPair(r.a, r.b, QPairConfig{})
	var got *Message
	r.eng.Go("server", func(p *sim.Proc) {
		got = qb.Recv(p)
	})
	r.eng.Go("client", func(p *sim.Proc) {
		qa.Send(p, 256, "hello")
	})
	r.eng.Run()
	if got == nil || got.Data.(string) != "hello" || got.From != 0 || got.Size != 256 {
		t.Fatalf("got %+v", got)
	}
	if qa.Stats.Sent != 1 || qb.Stats.Received != 1 {
		t.Fatalf("sent=%d received=%d", qa.Stats.Sent, qb.Stats.Received)
	}
}

func TestQPairPingPongRTT(t *testing.T) {
	r := newRig(t)
	qa, qb := ConnectQPair(r.a, r.b, QPairConfig{})
	var rtt sim.Dur
	r.eng.Go("server", func(p *sim.Proc) {
		qb.Recv(p)
		qb.Send(p, 64, "pong")
	})
	r.eng.Go("client", func(p *sim.Proc) {
		t0 := p.Now()
		qa.Send(p, 64, "ping")
		qa.Recv(p)
		rtt = p.Now().Sub(t0)
	})
	r.eng.Run()
	// RTT must include 4 software crossings, 2 doorbells, 2 hops.
	minRTT := 4*r.p.QPairSWSend + 2*r.p.QPairDoor + 2*r.p.HopLatency()
	if rtt < minRTT {
		t.Fatalf("RTT %v below floor %v", rtt, minRTT)
	}
	if rtt > minRTT+10*sim.Microsecond {
		t.Fatalf("RTT %v way above floor %v", rtt, minRTT)
	}
}

func TestQPairLegacyStackIsSlower(t *testing.T) {
	run := func(extra sim.Dur) sim.Dur {
		r := newRig(t)
		qa, qb := ConnectQPair(r.a, r.b, QPairConfig{ExtraSW: extra})
		var rtt sim.Dur
		r.eng.Go("server", func(p *sim.Proc) {
			qb.Recv(p)
			qb.Send(p, 64, nil)
		})
		r.eng.Go("client", func(p *sim.Proc) {
			t0 := p.Now()
			qa.Send(p, 64, nil)
			qa.Recv(p)
			rtt = p.Now().Sub(t0)
		})
		r.eng.Run()
		return rtt
	}
	fast, slow := run(0), run(5*sim.Microsecond)
	if slow <= fast {
		t.Fatalf("legacy stack RTT %v not slower than lean stack %v", slow, fast)
	}
	// Four software crossings -> 20µs extra.
	if d := slow - fast; d != 20*sim.Microsecond {
		t.Fatalf("extra SW delta = %v, want 20µs", d)
	}
}

func TestQPairFlowControlBlocksSender(t *testing.T) {
	r := newRig(t)
	qa, qb := ConnectQPair(r.a, r.b, QPairConfig{Window: 4, CreditBatch: 2})
	const n = 32
	r.eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			qa.Send(p, 1024, i)
		}
	})
	r.eng.Go("receiver", func(p *sim.Proc) {
		p.Sleep(200 * sim.Microsecond) // let the window fill
		for i := 0; i < n; i++ {
			m := qb.Recv(p)
			if m.Data.(int) != i {
				t.Errorf("out of order: got %v at %d", m.Data, i)
			}
		}
	})
	r.eng.Run()
	if qa.Stats.CreditStall == 0 {
		t.Fatal("sender never stalled despite a 4-message window")
	}
	if qb.Stats.CreditsSent == 0 {
		t.Fatal("receiver never returned credits")
	}
	if qb.Stats.Received != n {
		t.Fatalf("received %d, want %d", qb.Stats.Received, n)
	}
}

func TestQPairCreditsViaCRMAReduceStall(t *testing.T) {
	run := func(viaCRMA bool) sim.Dur {
		r := newRig(t)
		qa, qb := ConnectQPair(r.a, r.b, QPairConfig{Window: 8, CreditBatch: 2, CreditViaCRMA: viaCRMA})
		const n = 200
		var elapsed sim.Dur
		r.eng.Go("sender", func(p *sim.Proc) {
			t0 := p.Now()
			for i := 0; i < n; i++ {
				qa.Send(p, 64, nil)
			}
			elapsed = p.Now().Sub(t0)
		})
		r.eng.Go("receiver", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				qb.Recv(p)
			}
		})
		r.eng.Run()
		return elapsed
	}
	qpairPath := run(false)
	crmaPath := run(true)
	if crmaPath >= qpairPath {
		t.Fatalf("CRMA credit path (%v) not faster than QPair credit path (%v)", crmaPath, qpairPath)
	}
}

func TestQPairReorderBuffer(t *testing.T) {
	r := newRig(t)
	qa, qb := ConnectQPair(r.a, r.b, QPairConfig{})
	_ = qa
	// Deliver seq 2, 1, 0 by hand as if the fabric reordered them.
	r.eng.Schedule(0, func() {
		qb.injectOutOfOrder(0, &qpMsg{dstQID: qb.id, seq: 2, size: 1, data: "c"})
		qb.injectOutOfOrder(0, &qpMsg{dstQID: qb.id, seq: 1, size: 1, data: "b"})
		qb.injectOutOfOrder(0, &qpMsg{dstQID: qb.id, seq: 0, size: 1, data: "a"})
	})
	var got string
	r.eng.Go("rx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			got += qb.Recv(p).Data.(string)
		}
	})
	r.eng.Run()
	if got != "abc" {
		t.Fatalf("reordered delivery %q, want \"abc\"", got)
	}
	if qb.Stats.OutOfOrder != 2 {
		t.Fatalf("OutOfOrder = %d, want 2", qb.Stats.OutOfOrder)
	}
}

func TestEndpointRPC(t *testing.T) {
	r := newRig(t)
	r.b.HandleCall("echo", func(p *sim.Proc, from fabric.NodeID, req any) (any, int) {
		p.Sleep(5 * sim.Microsecond) // service time
		return req.(string) + "!", 64
	})
	var resp any
	r.eng.Go("caller", func(p *sim.Proc) {
		resp = r.a.Call(p, 1, "echo", 64, "hi")
	})
	r.eng.Run()
	if resp != "hi!" {
		t.Fatalf("resp = %v", resp)
	}
}

func TestEndpointRawHandler(t *testing.T) {
	r := newRig(t)
	var seen *fabric.Packet
	r.b.Handle("custom.kind", func(pkt *fabric.Packet) { seen = pkt })
	r.eng.Schedule(0, func() { r.a.SendRaw(1, "custom.kind", 128, "payload") })
	r.eng.Run()
	if seen == nil || seen.Payload.(string) != "payload" {
		t.Fatal("raw handler not invoked")
	}
}

func TestAdviseMatchesFig17Strengths(t *testing.T) {
	cases := []struct {
		size    int
		pattern Pattern
		want    Channel
	}{
		{64, PatternRandom, ChanCRMA},          // in-memory DB random access
		{1 << 20, PatternContiguous, ChanRDMA}, // CC contiguous scans
		{256, PatternMessage, ChanQPair},       // iperf message passing
		{64, PatternContiguous, ChanCRMA},      // tiny contiguous: still cacheline
		{1 << 20, PatternRandom, ChanRDMA},     // huge random block: DMA amortizes
	}
	for _, c := range cases {
		if got := Advise(c.size, c.pattern); got != c.want {
			t.Errorf("Advise(%d, %v) = %v, want %v", c.size, c.pattern, got, c.want)
		}
	}
}

func TestChannelAndPatternStrings(t *testing.T) {
	if ChanCRMA.String() != "CRMA" || ChanRDMA.String() != "RDMA" || ChanQPair.String() != "QPair" {
		t.Fatal("channel names wrong")
	}
	if PatternRandom.String() != "random" || PatternMessage.String() != "message" {
		t.Fatal("pattern names wrong")
	}
	if Channel(99).String() != "unknown" || Pattern(99).String() != "unknown" {
		t.Fatal("unknown names wrong")
	}
}

func TestMemServiceScalesWithSize(t *testing.T) {
	p := sim.Default()
	m := flatDRAM{&p}
	small := m.Service(0, 64, false)
	big := m.Service(0, 4096, false)
	if big <= small {
		t.Fatalf("4KiB service %v not slower than 64B %v", big, small)
	}
}
