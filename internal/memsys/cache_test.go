package memsys

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func smallCacheParams() sim.Params {
	p := sim.Default()
	p.CacheBytes = 8 << 10 // 8 KiB: 128 lines
	p.CacheWays = 4
	return p
}

func TestCacheHitAfterMiss(t *testing.T) {
	p := smallCacheParams()
	c := NewCache(&p)
	hit, _, _ := c.Access(0x1000, false)
	if hit {
		t.Fatal("first access hit a cold cache")
	}
	hit, _, _ = c.Access(0x1000, false)
	if !hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	hit, _, _ = c.Access(0x1030, false)
	if !hit {
		t.Fatal("same-line access missed")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Stats.Hits, c.Stats.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	p := smallCacheParams()
	c := NewCache(&p)
	sets := uint64(c.Sets())
	line := uint64(c.LineSize())
	// Fill one set (4 ways) with conflicting lines, then add a 5th.
	for i := uint64(0); i < 5; i++ {
		c.Access(i*sets*line, false)
	}
	// Line 0 was least recently used: it must be gone.
	if c.Contains(0) {
		t.Fatal("LRU victim still cached")
	}
	if !c.Contains(4 * sets * line) {
		t.Fatal("newest line not cached")
	}
	// Touch line 1 to make it MRU, then insert another conflict: line 2
	// should be the victim.
	c.Access(1*sets*line, false)
	c.Access(5*sets*line, false)
	if !c.Contains(1 * sets * line) {
		t.Fatal("recently-touched line evicted")
	}
	if c.Contains(2 * sets * line) {
		t.Fatal("LRU line survived")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	p := smallCacheParams()
	c := NewCache(&p)
	sets := uint64(c.Sets())
	line := uint64(c.LineSize())
	c.Access(0, true) // dirty
	var victim uint64
	var dirty bool
	for i := uint64(1); i <= uint64(c.ways); i++ {
		_, v, d := c.Access(i*sets*line, false)
		if d {
			victim, dirty = v, d
		}
	}
	if !dirty || victim != 0 {
		t.Fatalf("dirty victim = %#x dirty=%v, want 0 dirty", victim, dirty)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestCacheSequentialBeatsRandom(t *testing.T) {
	p := sim.Default() // 256 KiB cache
	rng := sim.NewRNG(7)
	const span = 16 << 20 // 16 MiB working set
	const accesses = 100000

	seq := NewCache(&p)
	for i := 0; i < accesses; i++ {
		seq.Access(uint64(i*8%span), false)
	}
	rnd := NewCache(&p)
	for i := 0; i < accesses; i++ {
		rnd.Access(uint64(rng.Intn(span)), false)
	}
	if seq.MissRatio() > 0.2 {
		t.Fatalf("sequential miss ratio %.3f too high", seq.MissRatio())
	}
	if rnd.MissRatio() < 0.9 {
		t.Fatalf("random miss ratio %.3f too low", rnd.MissRatio())
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	p := smallCacheParams()
	c := NewCache(&p)
	c.Access(0x40, true)
	c.Access(0x80, false)
	c.InvalidateAll()
	if c.Contains(0x40) || c.Contains(0x80) {
		t.Fatal("lines survived InvalidateAll")
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1 (the dirty line)", c.Stats.Writebacks)
	}
}

// Property: immediately re-accessing any address hits.
func TestCacheRereferenceProperty(t *testing.T) {
	p := smallCacheParams()
	c := NewCache(&p)
	prop := func(addr uint64) bool {
		c.Access(addr, false)
		hit, _, _ := c.Access(addr, false)
		return hit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits+misses equals total accesses.
func TestCacheAccountingProperty(t *testing.T) {
	prop := func(addrs []uint32) bool {
		p := smallCacheParams()
		c := NewCache(&p)
		for _, a := range addrs {
			c.Access(uint64(a), a%3 == 0)
		}
		return c.Stats.Hits+c.Stats.Misses == int64(len(addrs))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
