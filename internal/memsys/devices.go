package memsys

import (
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/transport"
)

// LocalDisk is node-local storage (the prototype swaps to SD-class
// flash). Each page op pays seek/command latency plus transfer time.
type LocalDisk struct {
	P *sim.Params
}

// pageTime is the per-page transfer cost at the device's bandwidth.
func (d *LocalDisk) pageTime() sim.Dur {
	secs := float64(d.P.PageBytes) / (d.P.LocalDiskMBps * 1e6)
	return sim.DurFromSeconds(secs)
}

// ReadPage blocks for one page read.
func (d *LocalDisk) ReadPage(p *sim.Proc, _ uint64) {
	p.Sleep(d.P.LocalDiskLat + d.pageTime())
}

// ReadPages amortizes the seek/command latency over a sequential batch.
func (d *LocalDisk) ReadPages(p *sim.Proc, _ uint64, n int) {
	p.Sleep(d.P.LocalDiskLat + sim.Dur(n)*d.pageTime())
}

// WritePage blocks for one page write.
func (d *LocalDisk) WritePage(p *sim.Proc, _ uint64) {
	p.Sleep(d.P.LocalDiskLat + d.pageTime())
}

// Name identifies the device.
func (d *LocalDisk) Name() string { return "localdisk" }

// RemoteSwap is the paper's high-performance virtual block device backed
// by donor memory over the RDMA channel (§5.2.1). The driver uses double
// buffering to overlap descriptor preparation with DMA, so the effective
// per-page software cost is one descriptor, not two.
type RemoteSwap struct {
	P     *sim.Params
	RDMA  *transport.RDMA
	Donor fabric.NodeID
	Base  uint64 // donor-local base address of the swap area

	// Pages transferred, for accounting.
	PagesIn  int64
	PagesOut int64
}

// ReadPage DMAs one page from donor memory.
func (d *RemoteSwap) ReadPage(p *sim.Proc, page uint64) {
	d.PagesIn++
	d.RDMA.Read(p, d.Donor, d.Base+page*uint64(d.P.PageBytes), d.P.PageBytes)
}

// ReadPages DMAs a sequential batch in a single descriptor.
func (d *RemoteSwap) ReadPages(p *sim.Proc, page uint64, n int) {
	d.PagesIn += int64(n)
	d.RDMA.Read(p, d.Donor, d.Base+page*uint64(d.P.PageBytes), n*d.P.PageBytes)
}

// WritePage DMAs one page to donor memory.
func (d *RemoteSwap) WritePage(p *sim.Proc, page uint64) {
	d.PagesOut++
	d.RDMA.Write(p, d.Donor, d.Base+page*uint64(d.P.PageBytes), d.P.PageBytes)
}

// Name identifies the device.
func (d *RemoteSwap) Name() string { return "remoteswap:" + d.Donor.String() }

// FixedLatencyDevice is a generic block device defined by a one-way
// request latency and a bandwidth, used to model commodity-interconnect
// swap targets (Fig. 3) without simulating their full stacks.
type FixedLatencyDevice struct {
	DevName   string
	P         *sim.Params
	Latency   sim.Dur // full software+protocol round trip, excluding data
	MBps      float64 // sustained data bandwidth
	ReadOnly  sim.Dur // extra read-side cost
	WriteOnly sim.Dur // extra write-side cost
}

func (d *FixedLatencyDevice) pageTime() sim.Dur {
	secs := float64(d.P.PageBytes) / (d.MBps * 1e6)
	return sim.DurFromSeconds(secs)
}

// ReadPage blocks for one page read.
func (d *FixedLatencyDevice) ReadPage(p *sim.Proc, _ uint64) {
	p.Sleep(d.Latency + d.ReadOnly + d.pageTime())
}

// ReadPages amortizes the protocol round trip over a sequential batch.
func (d *FixedLatencyDevice) ReadPages(p *sim.Proc, _ uint64, n int) {
	p.Sleep(d.Latency + d.ReadOnly + sim.Dur(n)*d.pageTime())
}

// WritePage blocks for one page write.
func (d *FixedLatencyDevice) WritePage(p *sim.Proc, _ uint64) {
	p.Sleep(d.Latency + d.WriteOnly + d.pageTime())
}

// Name identifies the device.
func (d *FixedLatencyDevice) Name() string { return d.DevName }
