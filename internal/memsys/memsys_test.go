package memsys

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/transport"
)

func TestAddressSpaceLookupAndOverlap(t *testing.T) {
	p := sim.Default()
	as := &AddressSpace{}
	dram := &LocalDRAM{P: &p}
	if err := as.Add(&Region{Base: 0, Size: 1 << 30, Backend: dram}); err != nil {
		t.Fatal(err)
	}
	if err := as.Add(&Region{Base: 1 << 29, Size: 1 << 20, Backend: dram}); err == nil {
		t.Fatal("overlapping region accepted")
	}
	if err := as.Add(&Region{Base: 1 << 30, Size: 1 << 20, Backend: dram}); err != nil {
		t.Fatal(err)
	}
	r, ok := as.Lookup(1 << 29)
	if !ok || r.Base != 0 {
		t.Fatal("Lookup failed")
	}
	if _, ok := as.Lookup(1<<30 + 1<<20); ok {
		t.Fatal("Lookup hit unmapped space")
	}
	as.Remove(r)
	if _, ok := as.Lookup(0); ok {
		t.Fatal("removed region still resolves")
	}
}

func TestHierarchyLocalAccessTiming(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	h := NewHierarchy(eng, &p)
	if err := h.AS.Add(&Region{Base: 0, Size: 1 << 30, Backend: &LocalDRAM{P: &p}}); err != nil {
		t.Fatal(err)
	}
	var elapsed sim.Dur
	eng.Go("cpu", func(pr *sim.Proc) {
		t0 := pr.Now()
		h.Read(pr, 0x1000, 8) // miss
		h.Read(pr, 0x1008, 8) // hit, same line
		h.Flush(pr)
		elapsed = pr.Now().Sub(t0)
	})
	eng.Run()
	want := 2*p.CacheHit + p.DRAMLat
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
	if h.Stats.Reads != 2 || h.Stats.Bytes != 16 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestHierarchyRemoteCRMABackend(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(1))
	epA := transport.NewEndpoint(eng, &p, net, 0)
	epB := transport.NewEndpoint(eng, &p, net, 1)

	const winBase, winSize = uint64(0x1_0000_0000), uint64(1 << 20)
	if _, err := epA.CRMA.Map(winBase, winSize, 1, 0x4000_0000); err != nil {
		t.Fatal(err)
	}
	epB.CRMA.Export(0, winBase, winSize, 0x4000_0000)

	h := NewHierarchy(eng, &p)
	if err := h.AS.Add(&Region{Base: 0, Size: 1 << 30, Backend: &LocalDRAM{P: &p}}); err != nil {
		t.Fatal(err)
	}
	if err := h.AS.Add(&Region{Base: winBase, Size: winSize,
		Backend: &CRMARemote{CRMA: epA.CRMA, Donor: 1}}); err != nil {
		t.Fatal(err)
	}

	var local, remote sim.Dur
	eng.Go("cpu", func(pr *sim.Proc) {
		t0 := pr.Now()
		h.Read(pr, 0x2000, 8)
		h.Flush(pr)
		local = pr.Now().Sub(t0)

		t1 := pr.Now()
		h.Read(pr, winBase, 8)
		h.Flush(pr)
		remote = pr.Now().Sub(t1)

		// Second access to the same remote line hits the cache.
		t2 := pr.Now()
		h.Read(pr, winBase+8, 8)
		h.Flush(pr)
		if hitTime := pr.Now().Sub(t2); hitTime != p.CacheHit {
			t.Errorf("cached remote line cost %v, want %v", hitTime, p.CacheHit)
		}
	})
	eng.Run()
	if remote < 20*local {
		t.Fatalf("remote fill (%v) should dwarf local access (%v)", remote, local)
	}
	if epA.CRMA.Stats.Fills != 1 {
		t.Fatalf("fills = %d, want 1 (second access was cached)", epA.CRMA.Stats.Fills)
	}
}

func TestHierarchyDirtyRemoteWriteback(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	p.CacheBytes = 4 << 10
	p.CacheWays = 2
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(1))
	epA := transport.NewEndpoint(eng, &p, net, 0)
	epB := transport.NewEndpoint(eng, &p, net, 1)
	const winBase, winSize = uint64(0x1_0000_0000), uint64(1 << 22)
	if _, err := epA.CRMA.Map(winBase, winSize, 1, 0); err != nil {
		t.Fatal(err)
	}
	epB.CRMA.Export(0, winBase, winSize, 0)

	h := NewHierarchy(eng, &p)
	if err := h.AS.Add(&Region{Base: winBase, Size: winSize,
		Backend: &CRMARemote{CRMA: epA.CRMA, Donor: 1}}); err != nil {
		t.Fatal(err)
	}
	eng.Go("cpu", func(pr *sim.Proc) {
		// Dirty a line, then stream enough set-conflicting lines (same
		// index, different tags) to force its eviction in a 2-way cache.
		h.Write(pr, winBase, 8)
		for i := uint64(1); i <= 8; i++ {
			h.Read(pr, winBase+i*uint64(p.CacheBytes), 8)
		}
		h.Flush(pr)
	})
	eng.Run()
	if epA.CRMA.Stats.Writes == 0 {
		t.Fatal("dirty remote line eviction produced no CRMA writeback")
	}
}

func TestPagedResidencyAndFaults(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	p.ReadaheadPages = 1 // exact fault counts below
	disk := &LocalDisk{P: &p}
	paged := NewPaged(&p, 4, disk) // 4-page resident set
	h := NewHierarchy(eng, &p)
	if err := h.AS.Add(&Region{Base: 0, Size: 1 << 30, Backend: paged}); err != nil {
		t.Fatal(err)
	}
	pageSize := uint64(p.PageBytes)
	eng.Go("cpu", func(pr *sim.Proc) {
		for i := uint64(0); i < 8; i++ {
			h.Read(pr, i*pageSize, 8)
		}
		h.Flush(pr)
	})
	eng.Run()
	if paged.Stats.MajorFault != 8 {
		t.Fatalf("faults = %d, want 8", paged.Stats.MajorFault)
	}
	if paged.Resident() != 4 {
		t.Fatalf("resident = %d, want 4", paged.Resident())
	}
	if paged.IsResident(0) {
		t.Fatal("page 0 should have been evicted")
	}
	if !paged.IsResident(7 * pageSize) {
		t.Fatal("page 7 should be resident")
	}
	if paged.Stats.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", paged.Stats.Evictions)
	}
}

func TestPagedDirtyEvictionWritesBack(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	disk := &LocalDisk{P: &p}
	paged := NewPaged(&p, 2, disk)
	h := NewHierarchy(eng, &p)
	if err := h.AS.Add(&Region{Base: 0, Size: 1 << 30, Backend: paged}); err != nil {
		t.Fatal(err)
	}
	pageSize := uint64(p.PageBytes)
	eng.Go("cpu", func(pr *sim.Proc) {
		h.Write(pr, 0, 8) // dirty page 0
		h.Read(pr, pageSize, 8)
		h.Read(pr, 2*pageSize, 8) // evicts page 0 (dirty)
		h.Read(pr, 3*pageSize, 8) // evicts page 1 (clean)
		h.Flush(pr)
	})
	eng.Run()
	if paged.Stats.DirtyWrite != 1 {
		t.Fatalf("dirty writes = %d, want 1", paged.Stats.DirtyWrite)
	}
}

func TestPagedFaultCostDominatedByDevice(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	p.ReadaheadPages = 1
	paged := NewPaged(&p, 2, &LocalDisk{P: &p})
	h := NewHierarchy(eng, &p)
	if err := h.AS.Add(&Region{Base: 0, Size: 1 << 30, Backend: paged}); err != nil {
		t.Fatal(err)
	}
	var freshT, refaultT sim.Dur
	eng.Go("cpu", func(pr *sim.Proc) {
		// First touch: zero-fill-on-demand, no device read.
		t0 := pr.Now()
		h.Write(pr, 0, 8)
		h.Flush(pr)
		freshT = pr.Now().Sub(t0)
		// Dirty page 0, push it out, then fault it back from the device.
		h.Write(pr, 1*4096, 8)
		h.Write(pr, 2*4096, 8) // evicts page 0 (dirty -> written)
		t1 := pr.Now()
		h.Read(pr, 0+2048, 8)
		h.Flush(pr)
		refaultT = pr.Now().Sub(t1)
	})
	eng.Run()
	if freshT >= p.LocalDiskLat {
		t.Fatalf("zero-fill fault cost %v should not include device latency", freshT)
	}
	if refaultT < p.LocalDiskLat {
		t.Fatalf("re-fault cost %v below device latency %v", refaultT, p.LocalDiskLat)
	}
}

func TestRemoteSwapDeviceUsesRDMA(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	net := fabric.NewNetwork(eng, &p, fabric.Pair(), sim.NewRNG(1))
	epA := transport.NewEndpoint(eng, &p, net, 0)
	transport.NewEndpoint(eng, &p, net, 1)
	dev := &RemoteSwap{P: &p, RDMA: epA.RDMA, Donor: 1, Base: 0x4000_0000}
	var rd, wr sim.Dur
	eng.Go("driver", func(pr *sim.Proc) {
		t0 := pr.Now()
		dev.ReadPage(pr, 3)
		rd = pr.Now().Sub(t0)
		t1 := pr.Now()
		dev.WritePage(pr, 3)
		wr = pr.Now().Sub(t1)
	})
	eng.Run()
	if dev.PagesIn != 1 || dev.PagesOut != 1 {
		t.Fatalf("pages in/out = %d/%d", dev.PagesIn, dev.PagesOut)
	}
	if epA.RDMA.Stats.Reads != 1 || epA.RDMA.Stats.Writes != 1 {
		t.Fatalf("rdma ops = %+v", epA.RDMA.Stats)
	}
	// A remote page over 5 Gbps: ~6.6µs wire + overheads. Must beat disk
	// by orders of magnitude and exceed bare wire time.
	wire := p.Serialize(p.PageBytes)
	if rd < wire || rd > 100*sim.Microsecond {
		t.Fatalf("remote page read = %v, want [%v, 100µs]", rd, wire)
	}
	if wr < wire || wr > 100*sim.Microsecond {
		t.Fatalf("remote page write = %v, want [%v, 100µs]", wr, wire)
	}
}

func TestReadaheadAmortizesSequentialFaults(t *testing.T) {
	run := func(readahead int) (faults int64, elapsed sim.Dur) {
		eng := sim.New()
		defer eng.Close()
		p := sim.Default()
		p.ReadaheadPages = readahead
		paged := NewPaged(&p, 64, &LocalDisk{P: &p})
		h := NewHierarchy(eng, &p)
		if err := h.AS.Add(&Region{Base: 0, Size: 1 << 30, Backend: paged}); err != nil {
			t.Fatal(err)
		}
		eng.Go("scan", func(pr *sim.Proc) {
			t0 := pr.Now()
			for pg := uint64(0); pg < 128; pg++ {
				h.Read(pr, pg*4096, 8)
			}
			h.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
		eng.Run()
		return paged.Stats.MajorFault, elapsed
	}
	noRA, noRATime := run(1)
	withRA, withRATime := run(8)
	if withRA >= noRA {
		t.Fatalf("readahead did not reduce faults: %d vs %d", withRA, noRA)
	}
	if withRATime >= noRATime {
		t.Fatalf("readahead did not speed the scan: %v vs %v", withRATime, noRATime)
	}
	// Random access must not trigger readahead batches.
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	paged := NewPaged(&p, 8, &LocalDisk{P: &p})
	h := NewHierarchy(eng, &p)
	if err := h.AS.Add(&Region{Base: 0, Size: 1 << 30, Backend: paged}); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(9)
	eng.Go("random", func(pr *sim.Proc) {
		for i := 0; i < 64; i++ {
			h.Read(pr, uint64(rng.Intn(1<<15))*4096*7, 8)
		}
		h.Flush(pr)
	})
	eng.Run()
	if paged.Stats.Readahead > 2 {
		t.Fatalf("random faults triggered %d readaheads", paged.Stats.Readahead)
	}
}

func TestFixedLatencyDevice(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	dev := &FixedLatencyDevice{DevName: "eth-vdisk", P: &p,
		Latency: 200 * sim.Microsecond, MBps: 1000}
	var rd sim.Dur
	eng.Go("d", func(pr *sim.Proc) {
		t0 := pr.Now()
		dev.ReadPage(pr, 0)
		rd = pr.Now().Sub(t0)
	})
	eng.Run()
	want := 200*sim.Microsecond + sim.DurFromSeconds(4096/1000e6)
	if rd != want {
		t.Fatalf("read = %v, want %v", rd, want)
	}
	if dev.Name() != "eth-vdisk" {
		t.Fatal("name wrong")
	}
}

func TestMemManagerLifecycle(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	m := NewMemManager(&p, 1<<30)
	if err := m.Reserve(1 << 29); err != nil {
		t.Fatal(err)
	}
	if m.Idle() != 1<<29 {
		t.Fatalf("idle = %d", m.Idle())
	}
	if err := m.Reserve(1 << 30); err == nil {
		t.Fatal("over-reserve accepted")
	}
	var base uint64
	eng.Go("agent", func(pr *sim.Proc) {
		var err error
		base, err = m.HotRemove(pr, 1<<28)
		if err != nil {
			t.Errorf("HotRemove: %v", err)
		}
		// Donated memory is not idle.
		if m.Idle() != 1<<28 {
			t.Errorf("idle after donation = %d", m.Idle())
		}
		if m.Removed() != 1<<28 {
			t.Errorf("removed = %d", m.Removed())
		}
		// Return it.
		if err := m.HotAddReturn(pr, base, 1<<28); err != nil {
			t.Errorf("HotAddReturn: %v", err)
		}
		if m.Removed() != 0 {
			t.Errorf("removed after return = %d", m.Removed())
		}
	})
	eng.Run()
	if base != 1<<30-1<<28 {
		t.Fatalf("removed base = %#x, want top-of-memory carve", base)
	}
	m.Release(1 << 29)
	if m.Idle() != 1<<30 {
		t.Fatalf("idle after release = %d", m.Idle())
	}
}

func TestMemManagerValidation(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	m := NewMemManager(&p, 1<<30)
	eng.Go("agent", func(pr *sim.Proc) {
		if _, err := m.HotRemove(pr, 12345); err == nil {
			t.Error("unaligned hot-remove accepted")
		}
		if _, err := m.HotRemove(pr, 2<<30); err == nil {
			t.Error("oversized hot-remove accepted")
		}
		if err := m.HotAddReturn(pr, 0, 4096); err == nil {
			t.Error("bogus hot-add-return accepted")
		}
	})
	eng.Run()
}

func TestHotplugTimingCharged(t *testing.T) {
	eng := sim.New()
	defer eng.Close()
	p := sim.Default()
	m := NewMemManager(&p, 1<<30)
	var elapsed sim.Dur
	eng.Go("agent", func(pr *sim.Proc) {
		t0 := pr.Now()
		if _, err := m.HotRemove(pr, 1<<20); err != nil {
			t.Error(err)
		}
		elapsed = pr.Now().Sub(t0)
	})
	eng.Run()
	if elapsed != p.HotplugOp {
		t.Fatalf("hot-remove took %v, want %v", elapsed, p.HotplugOp)
	}
}
