package memsys

import (
	"fmt"

	"repro/internal/sim"
)

// MemManager is the OS-level view of one node's physical memory: how much
// exists, how much applications hold, and which regions have been
// hot-removed for donation to other nodes (§5.2.1, Fig. 10).
type MemManager struct {
	P     *sim.Params
	Total uint64

	used    uint64
	removed []removedRegion
	// holes are freed former-removals below nextTop, kept for reuse:
	// returns rarely arrive in LIFO order, so without a free list the
	// top-carve cursor would only ever descend and a long-lived node
	// with acquire/release churn would exhaust its address space while
	// plenty of bytes sit idle.
	holes   []removedRegion
	nextTop uint64 // hot-removals carve from the top of physical memory
}

type removedRegion struct {
	base uint64
	size uint64
}

// NewMemManager tracks a node with total bytes of physical memory.
func NewMemManager(p *sim.Params, total uint64) *MemManager {
	return &MemManager{P: p, Total: total, nextTop: total}
}

// Used reports bytes held by applications.
func (m *MemManager) Used() uint64 { return m.used }

// Removed reports bytes hot-removed for donation.
func (m *MemManager) Removed() uint64 {
	var sum uint64
	for _, r := range m.removed {
		sum += r.size
	}
	return sum
}

// Idle reports bytes available locally: total minus used minus donated.
func (m *MemManager) Idle() uint64 { return m.Total - m.used - m.Removed() }

// Reserve allocates application memory.
func (m *MemManager) Reserve(size uint64) error {
	if size > m.Idle() {
		return fmt.Errorf("memsys: reserve %d exceeds idle %d", size, m.Idle())
	}
	m.used += size
	return nil
}

// Release frees application memory.
func (m *MemManager) Release(size uint64) {
	if size > m.used {
		panic("memsys: releasing more than used")
	}
	m.used -= size
}

// HotRemove takes size bytes out of the local OS's view so they can be
// donated, blocking the process for the hot-plug operation, and returns
// the donor-local physical base of the removed region.
func (m *MemManager) HotRemove(p *sim.Proc, size uint64) (uint64, error) {
	if size == 0 || size%uint64(m.P.PageBytes) != 0 {
		return 0, fmt.Errorf("memsys: hot-remove size %d not page-aligned", size)
	}
	if size > m.Idle() {
		return 0, fmt.Errorf("memsys: hot-remove %d exceeds idle %d", size, m.Idle())
	}
	p.Sleep(m.P.HotplugOp)
	// Reuse an exact-fit hole left by an earlier return before carving
	// fresh address space from the top.
	for i, h := range m.holes {
		if h.size == size {
			m.holes = append(m.holes[:i:i], m.holes[i+1:]...)
			m.removed = append(m.removed, h)
			return h.base, nil
		}
	}
	if m.nextTop < size {
		return 0, fmt.Errorf("memsys: hot-remove %d: address space exhausted (top %#x)", size, m.nextTop)
	}
	m.nextTop -= size
	base := m.nextTop
	m.removed = append(m.removed, removedRegion{base: base, size: size})
	return base, nil
}

// Reboot resets the manager to a fresh-boot state: hot-removed regions
// come back (a reboot rebuilds the OS memory map from the full DIMM) and
// application reservations are gone (the processes holding them died
// with the node). Used by the agent's crash-recovery path.
func (m *MemManager) Reboot() {
	m.used = 0
	m.removed = nil
	m.holes = nil
	m.nextTop = m.Total
}

// HotAddReturn returns a previously hot-removed region to the local OS
// (the stop-sharing path). The region must match a removal exactly.
func (m *MemManager) HotAddReturn(p *sim.Proc, base, size uint64) error {
	if !m.hasRemoved(base, size) {
		return fmt.Errorf("memsys: no removed region [%#x,+%#x) to return", base, size)
	}
	p.Sleep(m.P.HotplugOp)
	// Re-find after the sleep: concurrent returns to this node may have
	// reshuffled the slice while this one was blocked on the hot-plug.
	for i, r := range m.removed {
		if r.base == base && r.size == size {
			m.removed = append(m.removed[:i:i], m.removed[i+1:]...)
			if base == m.nextTop {
				// Freed regions at the top merge back directly, then absorb
				// any holes that became adjacent.
				m.nextTop += size
				m.absorbHoles()
			} else {
				m.holes = append(m.holes, removedRegion{base: base, size: size})
			}
			return nil
		}
	}
	return fmt.Errorf("memsys: removed region [%#x,+%#x) vanished during return", base, size)
}

// hasRemoved reports whether an exactly matching removal exists.
func (m *MemManager) hasRemoved(base, size uint64) bool {
	for _, r := range m.removed {
		if r.base == base && r.size == size {
			return true
		}
	}
	return false
}

// absorbHoles merges free-list entries that sit at the carve cursor
// back into the top region, repeating until no hole is adjacent.
func (m *MemManager) absorbHoles() {
	for {
		merged := false
		for i, h := range m.holes {
			if h.base == m.nextTop {
				m.nextTop += h.size
				m.holes = append(m.holes[:i:i], m.holes[i+1:]...)
				merged = true
				break
			}
		}
		if !merged {
			return
		}
	}
}
