package memsys

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/transport"
)

// AccessCtx carries the executing process and a flush hook into backend
// accesses. Backends that block (remote fills, page faults) must call
// Flush first so lazily-accumulated local time is charged in order.
type AccessCtx struct {
	Proc  *sim.Proc
	Flush func()
}

// Backend services post-cache traffic for one address region. Access is
// a demand fill (write reports the CPU's store intent, which matters for
// page dirty tracking); Writeback receives evicted dirty lines. Returned
// durations are charged lazily by the hierarchy; backends that block the
// process directly return 0.
type Backend interface {
	Access(ctx *AccessCtx, addr uint64, size int, write bool) sim.Dur
	Writeback(ctx *AccessCtx, addr uint64, size int) sim.Dur
	Name() string
}

// AsyncBackend is implemented by backends whose demand fills can be
// issued concurrently. The hierarchy exploits it for multi-line
// accesses: all missing lines of one Read/Write are requested together
// and awaited once, modeling the MSHRs a streaming core relies on.
type AsyncBackend interface {
	AccessAsync(ctx *AccessCtx, addr uint64, size int) *sim.Completion
}

// LocalDRAM is plain node-local memory.
type LocalDRAM struct {
	P *sim.Params
}

// Access charges one DRAM access, plus burst time for multi-line sizes.
func (d *LocalDRAM) Access(_ *AccessCtx, _ uint64, size int, _ bool) sim.Dur {
	bursts := (size + 63) / 64
	if bursts < 1 {
		bursts = 1
	}
	return d.P.DRAMLat + sim.Dur(bursts-1)*(d.P.DRAMLat/4)
}

// Writeback drains through the memory controller's write buffer.
func (d *LocalDRAM) Writeback(_ *AccessCtx, _ uint64, _ int) sim.Dur {
	return d.P.DRAMLat / 4
}

// Name identifies the backend.
func (d *LocalDRAM) Name() string { return "dram" }

// CRMARemote backs a region with donor memory reached through the CRMA
// channel: misses become hardware cacheline fills; dirty writebacks are
// posted stores (§5.1.2).
type CRMARemote struct {
	CRMA  *transport.CRMA
	Donor fabric.NodeID
}

// Access blocks for the remote fill; a store's intent changes nothing on
// the fetch path (write-allocate).
func (c *CRMARemote) Access(ctx *AccessCtx, addr uint64, size int, _ bool) sim.Dur {
	ctx.Flush()
	c.CRMA.Fill(ctx.Proc, addr, size)
	return 0
}

// AccessAsync implements AsyncBackend: the hierarchy overlaps fills for
// the lines of one multi-line access (hardware MSHR-style memory-level
// parallelism), which is what lets CRMA stream contiguous data.
func (c *CRMARemote) AccessAsync(_ *AccessCtx, addr uint64, size int) *sim.Completion {
	return c.CRMA.FillAsync(addr, size)
}

// Writeback posts the dirty line to the donor off the critical path.
func (c *CRMARemote) Writeback(_ *AccessCtx, addr uint64, size int) sim.Dur {
	c.CRMA.WriteAsync(addr, size)
	return 0
}

// Name identifies the backend.
func (c *CRMARemote) Name() string { return "crma:" + c.Donor.String() }

// Region is one mapping in a node's physical address space. Uncached
// regions bypass the cache entirely — every access goes to the backend
// at its own granularity, the behavior of PIO windows such as a PCIe
// BAR mapping (the Fig. 3 "PCIe LD/ST" configuration).
type Region struct {
	Base     uint64
	Size     uint64
	Backend  Backend
	Uncached bool
}

// End reports one past the region's last byte.
func (r *Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls in the region.
func (r *Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// AddressSpace is an ordered set of non-overlapping regions.
type AddressSpace struct {
	regions []*Region
}

// Add installs a region, rejecting overlap.
func (as *AddressSpace) Add(r *Region) error {
	for _, e := range as.regions {
		if r.Base < e.End() && e.Base < r.End() {
			return fmt.Errorf("memsys: region [%#x,%#x) overlaps [%#x,%#x)",
				r.Base, r.End(), e.Base, e.End())
		}
	}
	as.regions = append(as.regions, r)
	return nil
}

// Remove deletes a region (hot-remove).
func (as *AddressSpace) Remove(r *Region) {
	for i, e := range as.regions {
		if e == r {
			as.regions = append(as.regions[:i], as.regions[i+1:]...)
			return
		}
	}
}

// Lookup finds the region containing addr.
func (as *AddressSpace) Lookup(addr uint64) (*Region, bool) {
	for _, r := range as.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return nil, false
}

// Regions returns the current region list.
func (as *AddressSpace) Regions() []*Region { return as.regions }
