package memsys

import (
	"container/list"

	"repro/internal/sim"
)

// BlockDevice is a page-granular storage target for the OS paging path.
// Implementations include local disk, the Venice remote-memory block
// device over RDMA (§5.2.1), and the commodity-interconnect devices of
// the Fig. 3 study.
type BlockDevice interface {
	// ReadPage fetches one page, blocking the process.
	ReadPage(p *sim.Proc, page uint64)
	// ReadPages fetches n consecutive pages starting at page in one
	// request (the readahead path), blocking the process.
	ReadPages(p *sim.Proc, page uint64, n int)
	// WritePage stores one page, blocking the process.
	WritePage(p *sim.Proc, page uint64)
	Name() string
}

// SwapStats counts paging activity. The accounting balances two ways:
// every backend access is either a minor hit or a major fault (the CPU
// cache in front of the pager absorbs repeats before they get here),
// and every eviction removes a page that PagesIn previously admitted,
// so Evictions <= PagesIn always. A major fault admits one page unless
// readahead extends it, so PagesIn >= MajorFault with equality when
// readahead is off.
type SwapStats struct {
	MinorHits  int64 // accesses to resident pages
	MajorFault int64 // faulting accesses (page-in traps)
	PagesIn    int64 // pages admitted to the resident set (incl. readahead)
	Evictions  int64 // pages pushed out (dirty ones cost a device write)
	DirtyWrite int64
	Readahead  int64 // faults that triggered a readahead batch
}

// Paged backs a region larger than the local memory that can hold it:
// an LRU resident set in local DRAM, with non-resident pages faulting in
// from the block device. It models the Linux swap path the paper's
// remote-memory-as-swap configurations exercise.
type Paged struct {
	P *sim.Params

	// ResidentPages is the local-memory budget in pages.
	ResidentPages int
	Dev           BlockDevice
	Local         *LocalDRAM
	// SyncWriteback charges dirty evictions to the faulting process
	// instead of modeling kernel write-behind.
	SyncWriteback bool

	lru      *list.List               // front = most recent; values are pageEnt
	pages    map[uint64]*list.Element // page -> element
	written  map[uint64]bool          // pages that exist on the device
	Stats    SwapStats
	pageBits uint
	lastWant uint64 // previous faulting page + 1, for sequential detection
}

type pageEnt struct {
	page  uint64
	dirty bool
}

// NewPaged builds a paged backend with the given resident budget.
func NewPaged(p *sim.Params, residentPages int, dev BlockDevice) *Paged {
	if residentPages < 1 {
		panic("memsys: resident set must hold at least one page")
	}
	bits := uint(0)
	for 1<<bits < p.PageBytes {
		bits++
	}
	return &Paged{
		P:             p,
		ResidentPages: residentPages,
		Dev:           dev,
		Local:         &LocalDRAM{P: p},
		lru:           list.New(),
		pages:         make(map[uint64]*list.Element),
		written:       make(map[uint64]bool),
		pageBits:      bits,
	}
}

// Name identifies the backend.
func (s *Paged) Name() string { return "paged:" + s.Dev.Name() }

// Resident reports the number of currently resident pages.
func (s *Paged) Resident() int { return s.lru.Len() }

// IsResident reports whether a page holding addr is resident.
func (s *Paged) IsResident(addr uint64) bool {
	_, ok := s.pages[addr>>s.pageBits]
	return ok
}

// Access implements Backend: resident pages cost a DRAM access; misses
// take a major fault through the device. Store intent marks the page
// dirty (the MMU dirty bit), independent of cache writeback timing.
func (s *Paged) Access(ctx *AccessCtx, addr uint64, size int, write bool) sim.Dur {
	page := addr >> s.pageBits
	if el, ok := s.pages[page]; ok {
		s.lru.MoveToFront(el)
		if write {
			el.Value.(*pageEnt).dirty = true
		}
		s.Stats.MinorHits++
		return s.Local.Access(ctx, addr, size, write)
	}
	s.fault(ctx, page, write)
	return 0
}

// Writeback lands an evicted dirty cache line on its page: cheap if the
// page is resident; dropped if the page has already been swapped out
// (the line's store intent already marked the page dirty when it was
// accessed, so no data is lost in this model).
func (s *Paged) Writeback(ctx *AccessCtx, addr uint64, size int) sim.Dur {
	page := addr >> s.pageBits
	if el, ok := s.pages[page]; ok {
		el.Value.(*pageEnt).dirty = true
		return s.Local.Writeback(ctx, addr, size)
	}
	return 0
}

// fault brings a page in — plus readahead when the fault stream looks
// sequential — evicting as needed. The software trap cost and all device
// time block the process.
func (s *Paged) fault(ctx *AccessCtx, page uint64, write bool) {
	ctx.Flush()
	s.Stats.MajorFault++
	p := ctx.Proc
	p.Sleep(s.P.PageFaultSW)

	// Sequential detection drives readahead, like the kernel's
	// swap-cluster logic: a fault at lastWant extends the window.
	batch := 1
	if page == s.lastWant && s.P.ReadaheadPages > 1 {
		batch = s.P.ReadaheadPages
		if batch > s.ResidentPages/2 {
			batch = s.ResidentPages / 2
		}
		if batch < 1 {
			batch = 1
		}
		s.Stats.Readahead++
	}
	s.lastWant = page + uint64(batch)

	s.makeRoom(p, batch)
	// Zero-fill-on-demand: a page never written back to the device has
	// no backing data, so the fault costs only the trap.
	if s.written[page] {
		if batch == 1 {
			s.Dev.ReadPage(p, page)
		} else {
			s.Dev.ReadPages(p, page, batch)
		}
	}
	for i := batch - 1; i >= 0; i-- {
		pg := page + uint64(i)
		if _, ok := s.pages[pg]; ok {
			continue
		}
		dirty := write && i == 0
		el := s.lru.PushFront(&pageEnt{page: pg, dirty: dirty})
		s.pages[pg] = el
		s.Stats.PagesIn++
	}
}

// makeRoom evicts until n pages fit in the resident set. Dirty victims
// are written back asynchronously (write-behind, as kswapd does): the
// faulting process pays only the reclaim bookkeeping, not the device
// write, unless SyncWriteback forces the slow path.
func (s *Paged) makeRoom(p *sim.Proc, n int) {
	for s.lru.Len() > s.ResidentPages-n {
		back := s.lru.Back()
		ent := back.Value.(*pageEnt)
		s.lru.Remove(back)
		delete(s.pages, ent.page)
		s.Stats.Evictions++
		if ent.dirty {
			s.Stats.DirtyWrite++
			s.written[ent.page] = true
			if s.SyncWriteback {
				s.Dev.WritePage(p, ent.page)
			} else {
				p.Sleep(2 * sim.Microsecond) // reclaim bookkeeping
			}
		}
	}
}

// FaultRatio reports major faults / total accesses.
func (s *SwapStats) FaultRatio() float64 {
	total := s.MinorHits + s.MajorFault
	if total == 0 {
		return 0
	}
	return float64(s.MajorFault) / float64(total)
}
