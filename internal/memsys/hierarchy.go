package memsys

import (
	"fmt"

	"repro/internal/sim"
)

// HierarchyStats counts CPU-visible memory traffic.
type HierarchyStats struct {
	Reads  int64
	Writes int64
	Bytes  int64
}

// Hierarchy is the CPU-visible memory path of one node: cache in front of
// an address space of regions. Local service times (cache hits, DRAM)
// accumulate lazily and are charged to the process in batches, so only
// blocking operations (remote fills, page faults) cost simulation events.
//
// A hierarchy serves the single workload process of its node; concurrent
// processes on one node must each flush around interaction points.
type Hierarchy struct {
	Eng   *sim.Engine
	P     *sim.Params
	Cache *Cache
	AS    *AddressSpace

	lazy     sim.Dur
	lazyMax  sim.Dur
	lineMask uint64

	Stats HierarchyStats
}

// NewHierarchy builds the cache + address space stack for one node.
func NewHierarchy(eng *sim.Engine, p *sim.Params) *Hierarchy {
	return &Hierarchy{
		Eng:      eng,
		P:        p,
		Cache:    NewCache(p),
		AS:       &AddressSpace{},
		lazyMax:  100 * sim.Microsecond,
		lineMask: ^uint64(p.CacheLine - 1),
	}
}

// Compute accrues n simple operations of CPU work.
func (h *Hierarchy) Compute(p *sim.Proc, n int64) {
	h.lazy += h.P.Compute(n)
	h.maybeFlush(p)
}

// Think accrues a fixed duration of local work.
func (h *Hierarchy) Think(p *sim.Proc, d sim.Dur) {
	h.lazy += d
	h.maybeFlush(p)
}

// Flush charges all lazily-accumulated local time to the process.
func (h *Hierarchy) Flush(p *sim.Proc) {
	if h.lazy > 0 {
		d := h.lazy
		h.lazy = 0
		p.Sleep(d)
	}
}

// maybeFlush bounds how much virtual time can lag behind the engine.
func (h *Hierarchy) maybeFlush(p *sim.Proc) {
	if h.lazy >= h.lazyMax {
		h.Flush(p)
	}
}

// Read performs a load of size bytes at addr.
func (h *Hierarchy) Read(p *sim.Proc, addr uint64, size int) {
	h.Stats.Reads++
	h.access(p, addr, size, false)
}

// Write performs a store of size bytes at addr.
func (h *Hierarchy) Write(p *sim.Proc, addr uint64, size int) {
	h.Stats.Writes++
	h.access(p, addr, size, true)
}

// access walks the lines covered by [addr, addr+size). Misses to
// async-capable backends within one access are issued concurrently and
// awaited together (memory-level parallelism).
func (h *Hierarchy) access(p *sim.Proc, addr uint64, size int, write bool) {
	if size <= 0 {
		panic(fmt.Sprintf("memsys: non-positive access size %d", size))
	}
	h.Stats.Bytes += int64(size)
	ctx := &AccessCtx{Proc: p, Flush: func() { h.Flush(p) }}
	if r, ok := h.AS.Lookup(addr); ok && r.Uncached {
		// PIO window: no cache allocation, one backend access for the
		// whole operation.
		h.lazy += r.Backend.Access(ctx, addr, size, write)
		h.maybeFlush(p)
		return
	}
	line := uint64(h.P.CacheLine)
	first := addr & h.lineMask
	last := (addr + uint64(size) - 1) & h.lineMask
	multi := first != last
	mshrs := h.P.MSHRs
	if mshrs < 1 {
		mshrs = 1
	}
	var outstanding []*sim.Completion
	for la := first; ; la += line {
		if len(outstanding) >= mshrs {
			// MSHRs full: the core stalls on the oldest miss.
			h.Flush(p)
			p.Await(outstanding[0])
			outstanding = outstanding[1:]
		}
		if c := h.accessLine(ctx, la, write, multi); c != nil {
			outstanding = append(outstanding, c)
		}
		if la == last {
			break
		}
	}
	if len(outstanding) > 0 {
		h.Flush(p)
		for _, c := range outstanding {
			p.Await(c)
		}
	}
	h.maybeFlush(p)
}

// accessLine performs the cache lookup and backend traffic for one line.
// When overlap is true and the backend supports it, the miss is issued
// asynchronously and its completion returned for the caller to await.
func (h *Hierarchy) accessLine(ctx *AccessCtx, lineAddr uint64, write, overlap bool) *sim.Completion {
	hit, victim, victimDirty := h.Cache.Access(lineAddr, write)
	h.lazy += h.P.CacheHit
	if hit {
		return nil
	}
	if victimDirty {
		h.writeback(ctx, victim)
	}
	r, ok := h.AS.Lookup(lineAddr)
	if !ok {
		panic(fmt.Sprintf("memsys: access to unmapped address %#x", lineAddr))
	}
	if overlap {
		if ab, ok := r.Backend.(AsyncBackend); ok {
			return ab.AccessAsync(ctx, lineAddr, h.P.CacheLine)
		}
	}
	h.lazy += r.Backend.Access(ctx, lineAddr, h.P.CacheLine, write)
	return nil
}

// writeback pushes an evicted dirty line to its backend.
func (h *Hierarchy) writeback(ctx *AccessCtx, lineAddr uint64) {
	r, ok := h.AS.Lookup(lineAddr)
	if !ok {
		// The region was unmapped while the line sat in the cache (e.g.
		// hot-removed); the data has no home and is dropped.
		return
	}
	h.lazy += r.Backend.Writeback(ctx, lineAddr, h.P.CacheLine)
}
