package memsys

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/transport"
)

// newPairNetMem and newEndpointAt are small aliases keeping the MSHR
// test below readable.
func newPairNetMem(eng *sim.Engine, p *sim.Params) *fabric.Network {
	return fabric.NewNetwork(eng, p, fabric.Pair(), sim.NewRNG(1))
}

func newEndpointAt(eng *sim.Engine, p *sim.Params, net *fabric.Network, id fabric.NodeID) *transport.Endpoint {
	return transport.NewEndpoint(eng, p, net, id)
}

// Property: the paged backend never holds more than its resident budget,
// and every access that reaches the pager leaves the touched page
// resident. (An access the cache absorbs never reaches the pager, and
// its page may legitimately have been evicted while its lines stayed
// cached — so residency is only asserted when the pager's counters
// moved.)
func TestPagedResidentBudgetProperty(t *testing.T) {
	prop := pagedBudgetProp(t)
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPagedResidentBudgetRegression pins inputs that once broke the
// property. The first revealed the over-strong original invariant:
// quick's time-based seeding eventually found an address whose page was
// evicted while its cache lines stayed valid, so a later re-touch was
// absorbed by the cache without the pager re-admitting the page.
func TestPagedResidentBudgetRegression(t *testing.T) {
	prop := pagedBudgetProp(t)
	if !prop(0x9709c59254eab0b2, 0xf6, 0xa4) {
		t.Fatal("cache-absorbed re-touch of an evicted page fails the budget property")
	}
}

// pagedBudgetProp builds the resident-budget property; split out so
// once-failing inputs can be pinned as regressions.
func pagedBudgetProp(t *testing.T) func(uint64, uint8, uint8) bool {
	t.Helper()
	return func(seed uint64, budget uint8, ops uint8) bool {
		resident := int(budget%30) + 2
		n := int(ops%60) + 1
		rng := sim.NewRNG(seed)
		eng := sim.New()
		defer eng.Close()
		p := sim.Default()
		p.ReadaheadPages = 1
		paged := NewPaged(&p, resident, &LocalDisk{P: &p})
		h := NewHierarchy(eng, &p)
		if err := h.AS.Add(&Region{Base: 0, Size: 1 << 30, Backend: paged}); err != nil {
			return false
		}
		ok := true
		eng.Go("ops", func(pr *sim.Proc) {
			for i := 0; i < n; i++ {
				addr := uint64(rng.Intn(1<<18)) * 4096
				before := paged.Stats.MinorHits + paged.Stats.MajorFault
				if rng.Bool(0.3) {
					h.Write(pr, addr, 8)
				} else {
					h.Read(pr, addr, 8)
				}
				if paged.Resident() > resident {
					ok = false
				}
				reached := paged.Stats.MinorHits+paged.Stats.MajorFault > before
				if reached && !paged.IsResident(addr) {
					ok = false
				}
			}
			h.Flush(pr)
		})
		eng.Run()
		return ok
	}
}

// Property: paging accounting balances — every access is exactly one of
// a cache hit (absorbed before the pager), a minor hit, or a major
// fault; pages admitted cover the faults; and evictions never exceed
// admissions. The readahead window varies so batched admissions (one
// fault, several pages in) are exercised too.
func TestPagedAccountingProperty(t *testing.T) {
	prop := func(seed uint64, ops, readahead uint8) bool {
		n := int(ops%80) + 1
		rng := sim.NewRNG(seed)
		eng := sim.New()
		defer eng.Close()
		p := sim.Default()
		p.ReadaheadPages = int(readahead%8) + 1
		p.CacheBytes = 4 << 10 // tiny cache so accesses reach the pager
		paged := NewPaged(&p, 8, &LocalDisk{P: &p})
		h := NewHierarchy(eng, &p)
		if err := h.AS.Add(&Region{Base: 0, Size: 1 << 30, Backend: paged}); err != nil {
			return false
		}
		eng.Go("ops", func(pr *sim.Proc) {
			for i := 0; i < n; i++ {
				h.Read(pr, uint64(rng.Intn(1<<16))*4096, 8)
			}
			h.Flush(pr)
		})
		eng.Run()
		s := paged.Stats
		if s.MinorHits+s.MajorFault != int64(n)-h.Cache.Stats.Hits {
			return false // cache absorption aside, the pager sees every access
		}
		if s.PagesIn < s.MajorFault {
			return false // each fault admits at least its own page
		}
		return s.Evictions <= s.PagesIn
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any access sequence, a second touch of the last
// address is a cache hit (temporal locality always preserved by LRU).
func TestHierarchyTemporalLocalityProperty(t *testing.T) {
	prop := func(addrs []uint32) bool {
		if len(addrs) == 0 {
			return true
		}
		eng := sim.New()
		defer eng.Close()
		p := sim.Default()
		h := NewHierarchy(eng, &p)
		if err := h.AS.Add(&Region{Base: 0, Size: 1 << 32, Backend: &LocalDRAM{P: &p}}); err != nil {
			return false
		}
		ok := true
		eng.Go("ops", func(pr *sim.Proc) {
			for _, a := range addrs {
				h.Read(pr, uint64(a), 8)
			}
			last := uint64(addrs[len(addrs)-1])
			misses := h.Cache.Stats.Misses
			h.Read(pr, last, 1)
			if h.Cache.Stats.Misses != misses {
				ok = false
			}
			h.Flush(pr)
		})
		eng.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRCapBoundsOverlap(t *testing.T) {
	// With MSHRs=1 a multi-line remote read serializes; with a large
	// budget the lines overlap. Timing must reflect that.
	run := func(mshrs int) sim.Dur {
		eng := sim.New()
		defer eng.Close()
		p := sim.Default()
		p.MSHRs = mshrs
		net := newPairNetMem(eng, &p)
		a := newEndpointAt(eng, &p, net, 0)
		b := newEndpointAt(eng, &p, net, 1)
		if _, err := a.CRMA.Map(0x1_0000_0000, 1<<20, 1, 0); err != nil {
			t.Fatal(err)
		}
		b.CRMA.Export(0, 0x1_0000_0000, 1<<20, 0)
		h := NewHierarchy(eng, &p)
		if err := h.AS.Add(&Region{Base: 0x1_0000_0000, Size: 1 << 20,
			Backend: &CRMARemote{CRMA: a.CRMA, Donor: 1}}); err != nil {
			t.Fatal(err)
		}
		var elapsed sim.Dur
		eng.Go("read", func(pr *sim.Proc) {
			t0 := pr.Now()
			h.Read(pr, 0x1_0000_0000, 4096) // 64 lines
			h.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
		eng.Run()
		return elapsed
	}
	serial, overlapped := run(1), run(16)
	if float64(overlapped) > 0.5*float64(serial) {
		t.Fatalf("16 MSHRs (%v) should at least halve the serial time (%v)", overlapped, serial)
	}
}
