// Package memsys models each node's memory system: a set-associative
// last-level cache, a physical address space composed of regions with
// pluggable backends (local DRAM, CRMA-mapped remote memory, paged/swap
// regions), the OS paging path with pluggable block devices, and the
// Linux-style memory hot-plug/hot-remove mechanism Venice uses to move
// regions between nodes (§5.2.1, Fig. 10).
//
// Caches are real arrays, not statistical models: random and sequential
// access streams produce their true miss behavior, which is what drives
// every CRMA-vs-RDMA crossover in the paper's evaluation.
package memsys

import "repro/internal/sim"

// CacheStats counts cache events.
type CacheStats struct {
	Hits       int64
	Misses     int64
	Writebacks int64
}

// cacheLine is one way of one set.
type cacheLine struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement over 64-byte (configurable) lines.
type Cache struct {
	lineBits uint
	setMask  uint64
	ways     int
	sets     []cacheLine // sets*ways, flattened
	useClock uint64

	Stats CacheStats
}

// NewCache builds a cache from the parameter set.
func NewCache(p *sim.Params) *Cache {
	lineBits := uint(0)
	for 1<<lineBits < p.CacheLine {
		lineBits++
	}
	nlines := p.CacheBytes / p.CacheLine
	nsets := nlines / p.CacheWays
	if nsets < 1 {
		nsets = 1
	}
	// Round sets down to a power of two for mask indexing.
	for nsets&(nsets-1) != 0 {
		nsets--
	}
	return &Cache{
		lineBits: lineBits,
		setMask:  uint64(nsets - 1),
		ways:     p.CacheWays,
		sets:     make([]cacheLine, nsets*p.CacheWays),
	}
}

// LineSize reports the cache line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineBits }

// Sets reports the number of sets.
func (c *Cache) Sets() int { return len(c.sets) / c.ways }

// Access looks up the line containing addr, allocating it on a miss.
// It reports whether the access hit, and on a miss the evicted victim
// line address and whether that victim was dirty (needing writeback).
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim uint64, victimDirty bool) {
	c.useClock++
	tag := addr >> c.lineBits
	set := int(tag & c.setMask)
	base := set * c.ways
	lruIdx, lruUse := base, c.useClock
	for i := base; i < base+c.ways; i++ {
		l := &c.sets[i]
		if l.valid && l.tag == tag {
			l.lastUse = c.useClock
			if write {
				l.dirty = true
			}
			c.Stats.Hits++
			return true, 0, false
		}
		if !l.valid {
			lruIdx, lruUse = i, 0
		} else if l.lastUse < lruUse {
			lruIdx, lruUse = i, l.lastUse
		}
	}
	c.Stats.Misses++
	v := &c.sets[lruIdx]
	if v.valid && v.dirty {
		victim = v.tag << c.lineBits
		victimDirty = true
		c.Stats.Writebacks++
	}
	v.tag = tag
	v.valid = true
	v.dirty = write
	v.lastUse = c.useClock
	return false, victim, victimDirty
}

// Contains reports whether the line holding addr is currently cached,
// without touching LRU state (for tests and invariants).
func (c *Cache) Contains(addr uint64) bool {
	tag := addr >> c.lineBits
	set := int(tag & c.setMask)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.sets[i].valid && c.sets[i].tag == tag {
			return true
		}
	}
	return false
}

// InvalidateAll drops every line (e.g. after a region is unmapped).
// Dirty lines are counted as writebacks.
func (c *Cache) InvalidateAll() {
	for i := range c.sets {
		if c.sets[i].valid && c.sets[i].dirty {
			c.Stats.Writebacks++
		}
		c.sets[i] = cacheLine{}
	}
}

// MissRatio reports misses / (hits+misses).
func (c *Cache) MissRatio() float64 {
	total := c.Stats.Hits + c.Stats.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Stats.Misses) / float64(total)
}
