package monitor

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/node"
	"repro/internal/sim"
)

// cluster is an 8-node 3D mesh with agents on every node and the MN on
// node 0 — the prototype configuration.
type cluster struct {
	eng    *sim.Engine
	p      sim.Params
	net    *fabric.Network
	nodes  []*node.Node
	agents []*Agent
	mn     *Monitor
}

func newCluster(t *testing.T, dram uint64) *cluster {
	t.Helper()
	eng := sim.New()
	t.Cleanup(eng.Close)
	p := sim.Default()
	topo := fabric.Mesh3D(2, 2, 2)
	net := fabric.NewNetwork(eng, &p, topo, sim.NewRNG(42))
	c := &cluster{eng: eng, p: p, net: net}
	for i := 0; i < topo.N; i++ {
		n := node.New(eng, &p, net, fabric.NodeID(i), dram)
		c.nodes = append(c.nodes, n)
		a := NewAgent(n.EP, n.MemMgr, net)
		c.agents = append(c.agents, a)
	}
	c.mn = New(c.nodes[0].EP, topo)
	for _, a := range c.agents {
		a.Start(0)
	}
	return c
}

func TestHeartbeatsPopulateRRT(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(sim.Dur(1) * sim.Second)
	for i := 0; i < 8; i++ {
		r, ok := c.mn.Registered(fabric.NodeID(i))
		if !ok {
			t.Fatalf("node %d missing from RRT", i)
		}
		if r.IdleBytes != 1<<30 {
			t.Fatalf("node %d idle = %d, want full DRAM", i, r.IdleBytes)
		}
		if r.Beats < 2 {
			t.Fatalf("node %d beats = %d, want >= 2", i, r.Beats)
		}
		if !c.mn.NodeAlive(fabric.NodeID(i)) {
			t.Fatalf("node %d not alive", i)
		}
	}
}

func TestTSTTracksLinkFailure(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(1 * sim.Second)
	if !c.mn.LinkUp(0, 1) {
		t.Fatal("link 0-1 should start up")
	}
	c.net.SetLinkDown(2, 3, true)
	c.eng.RunFor(1 * sim.Second)
	if c.mn.LinkUp(2, 3) {
		t.Fatal("TST did not record the 2-3 failure")
	}
	if !c.mn.LinkUp(0, 1) {
		t.Fatal("healthy link marked down")
	}
	c.net.SetLinkDown(2, 3, false)
	c.eng.RunFor(1 * sim.Second)
	if !c.mn.LinkUp(2, 3) {
		t.Fatal("TST did not record the 2-3 recovery")
	}
}

func TestMemoryAllocationFlow(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(1 * sim.Second) // let RRT fill

	recipient := c.nodes[7]
	const size = 256 << 20
	var resp *AllocMemResp
	recipient.Run("alloc", func(p *sim.Proc) {
		win := recipient.NextHotplugWindow(size)
		resp = recipient.EP.Call(p, 0, kindAllocMem, 64,
			&AllocMemReq{Size: size, WindowBase: win}).(*AllocMemResp)
	})
	c.eng.RunFor(5 * sim.Second)

	if resp == nil || !resp.OK {
		t.Fatalf("allocation failed: %+v", resp)
	}
	// Distance policy: the donor must be one of node 7's mesh neighbors
	// (3, 5, 6 in a 2x2x2 mesh).
	if hop := c.net.HopCount(7, resp.Donor); hop != 1 {
		t.Fatalf("donor %v is %d hops away, policy is nearest-first", resp.Donor, hop)
	}
	// The donor's memory manager shows the donation.
	donor := c.nodes[resp.Donor]
	if donor.MemMgr.Removed() != size {
		t.Fatalf("donor removed = %d, want %d", donor.MemMgr.Removed(), size)
	}
	// RAT has the row.
	allocs := c.mn.Allocations()
	if len(allocs) != 1 || allocs[0].Donor != resp.Donor || allocs[0].Size != size {
		t.Fatalf("RAT = %+v", allocs)
	}
}

func TestAllocationRetryOnStaleRRT(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(1 * sim.Second)

	// Consume almost all memory on node 7's nearest neighbors *after*
	// their heartbeats, making the RRT stale.
	for _, id := range []fabric.NodeID{3, 5, 6} {
		if err := c.nodes[id].MemMgr.Reserve(1<<30 - 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	recipient := c.nodes[7]
	const size = 256 << 20
	var resp *AllocMemResp
	recipient.Run("alloc", func(p *sim.Proc) {
		win := recipient.NextHotplugWindow(size)
		resp = recipient.EP.Call(p, 0, kindAllocMem, 64,
			&AllocMemReq{Size: size, WindowBase: win}).(*AllocMemResp)
	})
	c.eng.RunFor(10 * sim.Second)

	if resp == nil || !resp.OK {
		t.Fatalf("allocation failed despite distant donors: %+v", resp)
	}
	if hop := c.net.HopCount(7, resp.Donor); hop < 2 {
		t.Fatalf("donor %v should be a distant node after retries", resp.Donor)
	}
	if c.mn.Stats.Get("alloc.retries") == 0 {
		t.Fatal("no retries recorded despite stale RRT rows")
	}
}

func TestAllocationFailsWhenNothingFits(t *testing.T) {
	c := newCluster(t, 1<<26) // 64 MiB nodes
	c.eng.RunFor(1 * sim.Second)
	recipient := c.nodes[1]
	var resp *AllocMemResp
	recipient.Run("alloc", func(p *sim.Proc) {
		resp = recipient.EP.Call(p, 0, kindAllocMem, 64,
			&AllocMemReq{Size: 1 << 30, WindowBase: 1 << 30}).(*AllocMemResp)
	})
	c.eng.RunFor(5 * sim.Second)
	if resp == nil || resp.OK {
		t.Fatalf("oversized allocation should fail, got %+v", resp)
	}
	if resp.Err == "" {
		t.Fatal("failure carries no error text")
	}
}

func TestFreeMemoryReturnsToDonor(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(1 * sim.Second)
	recipient := c.nodes[7]
	const size = 128 << 20
	recipient.Run("alloc-free", func(p *sim.Proc) {
		win := recipient.NextHotplugWindow(size)
		resp := recipient.EP.Call(p, 0, kindAllocMem, 64,
			&AllocMemReq{Size: size, WindowBase: win}).(*AllocMemResp)
		if !resp.OK {
			t.Errorf("alloc failed: %s", resp.Err)
			return
		}
		donor := c.nodes[resp.Donor]
		if donor.MemMgr.Removed() != size {
			t.Errorf("donation not recorded")
		}
		recipient.EP.Call(p, 0, kindFreeMem, 16, &FreeMemReq{AllocID: resp.AllocID})
		if donor.MemMgr.Removed() != 0 {
			t.Errorf("donor still shows %d removed after free", donor.MemMgr.Removed())
		}
	})
	c.eng.RunFor(15 * sim.Second)
	if len(c.mn.Allocations()) != 0 {
		t.Fatalf("RAT not empty after free: %+v", c.mn.Allocations())
	}
}

func TestDeviceAllocation(t *testing.T) {
	c := newCluster(t, 1<<30)
	// Node 2 advertises two accelerators; node 4 one NIC.
	c.agents[2].Devices[DevAccelerator] = 2
	c.agents[4].Devices[DevNIC] = 1
	c.eng.RunFor(1 * sim.Second)

	requester := c.nodes[0]
	var acc1, acc2, acc3 *AllocDevResp
	var nic *AllocDevResp
	requester.Run("devs", func(p *sim.Proc) {
		acc1 = requester.EP.Call(p, 0, kindAllocDev, 16, &AllocDevReq{Kind: DevAccelerator}).(*AllocDevResp)
		acc2 = requester.EP.Call(p, 0, kindAllocDev, 16, &AllocDevReq{Kind: DevAccelerator}).(*AllocDevResp)
		acc3 = requester.EP.Call(p, 0, kindAllocDev, 16, &AllocDevReq{Kind: DevAccelerator}).(*AllocDevResp)
		nic = requester.EP.Call(p, 0, kindAllocDev, 16, &AllocDevReq{Kind: DevNIC}).(*AllocDevResp)
	})
	c.eng.RunFor(5 * sim.Second)
	if !acc1.OK || acc1.Donor != 2 || !acc2.OK || acc2.Donor != 2 {
		t.Fatalf("accelerator allocs: %+v %+v", acc1, acc2)
	}
	if acc3.OK {
		t.Fatal("third accelerator granted but only two exist")
	}
	if !nic.OK || nic.Donor != 4 {
		t.Fatalf("nic alloc: %+v", nic)
	}
	// Free one accelerator; it becomes grantable again.
	requester.Run("refree", func(p *sim.Proc) {
		requester.EP.Call(p, 0, kindFreeDev, 16, &FreeDevReq{AllocID: acc1.AllocID})
		again := requester.EP.Call(p, 0, kindAllocDev, 16, &AllocDevReq{Kind: DevAccelerator}).(*AllocDevResp)
		if !again.OK {
			t.Error("freed accelerator not re-grantable")
		}
	})
	c.eng.RunFor(5 * sim.Second)
}

func TestNodeDeathDetectedByMissedHeartbeats(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(1 * sim.Second)
	if !c.mn.NodeAlive(5) {
		t.Fatal("node 5 should be alive")
	}
	c.agents[5].Stop()
	c.eng.RunFor(5 * sim.Second)
	if c.mn.NodeAlive(5) {
		t.Fatal("node 5 should be presumed dead after missed heartbeats")
	}
	// Dead nodes are not donor candidates.
	recipient := c.nodes[4] // node 5 is its neighbor
	var resp *AllocMemResp
	recipient.Run("alloc", func(p *sim.Proc) {
		win := recipient.NextHotplugWindow(1 << 20)
		resp = recipient.EP.Call(p, 0, kindAllocMem, 64,
			&AllocMemReq{Size: 1 << 20, WindowBase: win}).(*AllocMemResp)
	})
	c.eng.RunFor(5 * sim.Second)
	if resp == nil || !resp.OK {
		t.Fatalf("alloc failed: %+v", resp)
	}
	if resp.Donor == 5 {
		t.Fatal("dead node chosen as donor")
	}
}

func TestDeviceKindString(t *testing.T) {
	if DevAccelerator.String() != "accelerator" || DevNIC.String() != "nic" {
		t.Fatal("device kind names wrong")
	}
	if DeviceKind(9).String() != "unknown" {
		t.Fatal("unknown kind name wrong")
	}
}
