package monitor

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func TestMostIdlePolicyPicksLargestDonor(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.Policy = MostIdle{}
	c.eng.RunFor(1 * sim.Second)
	// Consume memory everywhere except node 2 (far from requester 7).
	for i := 1; i < 8; i++ {
		if i == 2 || i == 7 {
			continue
		}
		if err := c.nodes[i].MemMgr.Reserve(1 << 29); err != nil {
			t.Fatal(err)
		}
	}
	c.eng.RunFor(1 * sim.Second) // refresh RRT
	recipient := c.nodes[7]
	var resp *AllocMemResp
	recipient.Run("alloc", func(p *sim.Proc) {
		win := recipient.NextHotplugWindow(1 << 20)
		resp = recipient.EP.Call(p, 0, kindAllocMem, 64,
			&AllocMemReq{Size: 1 << 20, WindowBase: win}).(*AllocMemResp)
	})
	c.eng.RunFor(5 * sim.Second)
	if resp == nil || !resp.OK {
		t.Fatalf("alloc failed: %+v", resp)
	}
	// Node 2 (and node 0, the MN, which also has full memory) are the
	// most idle; distance-first would have picked a neighbor of 7.
	if resp.Donor != 2 && resp.Donor != 0 {
		t.Fatalf("most-idle policy chose %v, want the emptiest node", resp.Donor)
	}
}

func TestTrafficAwarePolicySpreadsDonors(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.Policy = TrafficAware{PenaltyHops: 10} // strong spreading
	c.eng.RunFor(1 * sim.Second)
	recipient := c.nodes[7]
	donors := make(map[fabric.NodeID]int)
	recipient.Run("allocs", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			win := recipient.NextHotplugWindow(64 << 20)
			resp := recipient.EP.Call(p, 0, kindAllocMem, 64,
				&AllocMemReq{Size: 64 << 20, WindowBase: win}).(*AllocMemResp)
			if !resp.OK {
				t.Errorf("alloc %d failed: %s", i, resp.Err)
				return
			}
			donors[resp.Donor]++
		}
	})
	c.eng.RunFor(20 * sim.Second)
	if len(donors) < 3 {
		t.Fatalf("traffic-aware policy reused donors: %v (want 3 distinct)", donors)
	}
}

func TestDistanceFirstReusesNearestDonor(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(1 * sim.Second)
	recipient := c.nodes[7]
	donors := make(map[fabric.NodeID]int)
	recipient.Run("allocs", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			win := recipient.NextHotplugWindow(64 << 20)
			resp := recipient.EP.Call(p, 0, kindAllocMem, 64,
				&AllocMemReq{Size: 64 << 20, WindowBase: win}).(*AllocMemResp)
			if !resp.OK {
				t.Errorf("alloc %d failed: %s", i, resp.Err)
				return
			}
			donors[resp.Donor]++
		}
	})
	c.eng.RunFor(20 * sim.Second)
	// Distance-first never leaves the requester's immediate neighborhood
	// while neighbors have idle memory (equidistant ties rotate by idle).
	if len(donors) == 0 {
		t.Fatal("no allocations made")
	}
	for d := range donors {
		if hop := c.net.HopCount(7, d); hop != 1 {
			t.Fatalf("donor %v is %d hops away; distance-first must stay at hop 1", d, hop)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	var df DistanceFirst
	var mi MostIdle
	var ta TrafficAware
	if df.Name() != "distance" || mi.Name() != "most-idle" || ta.Name() != "traffic-aware" {
		t.Fatal("policy names wrong")
	}
}

// TestPolicyRegistryEnumerates pins the registry as the single source of
// truth: the sweep order every scenario and venice-bench -list read, and
// name resolution including the prototype default.
func TestPolicyRegistryEnumerates(t *testing.T) {
	want := []string{"distance", "most-idle", "traffic-aware", "spread", "coolest-path"}
	got := PolicyNames()
	if len(got) != len(want) {
		t.Fatalf("PolicyNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PolicyNames = %v, want %v (sweep order is frozen)", got, want)
		}
		pol, ok := PolicyByName(want[i])
		if !ok || pol.Name() != want[i] {
			t.Fatalf("PolicyByName(%q) = %v,%v", want[i], pol, ok)
		}
	}
	// The empty string selects the prototype default.
	if pol, ok := PolicyByName(""); !ok || pol.Name() != "distance" {
		t.Fatalf("PolicyByName(\"\") = %v,%v; want distance", pol, ok)
	}
	if _, ok := PolicyByName("bogus"); ok {
		t.Fatal("unknown policy name resolved")
	}
	// Callers mutating the returned slice must not corrupt the registry.
	got[0] = "clobbered"
	if PolicyNames()[0] != "distance" {
		t.Fatal("PolicyNames exposes the registry's own slice")
	}
}

func TestRegisterPolicyGuards(t *testing.T) {
	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", what)
			}
		}()
		fn()
	}
	mustPanic("duplicate registration", func() {
		RegisterPolicy("distance", func() Policy { return DistanceFirst{} })
	})
	mustPanic("empty name", func() {
		RegisterPolicy("", func() Policy { return DistanceFirst{} })
	})
}

// TestTrafficAwareTelemetryVsBlindBranches: the same candidates order
// differently depending on whether the View carries telemetry. Blind,
// the donor-count proxy rules (near donor with no leases wins); with
// telemetry, the measured path bottleneck overrides it and the proxy is
// retired (no double counting).
func TestTrafficAwareTelemetryVsBlindBranches(t *testing.T) {
	load := map[fabric.NodeID]int{1: 0, 2: 3}
	cands := func() []*Registration {
		return []*Registration{
			{Node: 1, IdleBytes: 1 << 30},
			{Node: 2, IdleBytes: 1 << 30},
		}
	}
	blind := synthView(nil)
	blind.Load = load
	cs := cands()
	(TrafficAware{}).Choose(blind, 0, cs)
	if cs[0].Node != 1 {
		t.Fatalf("blind branch chose %v; want 1 (fewest live allocations)", cs[0].Node)
	}
	// Same shape, but the path to donor 1 measures hot: telemetry wins
	// over the (now-retired) donor-count proxy.
	hot := synthView(map[[2]fabric.NodeID]float64{{0, 1}: 0.9})
	hot.Load = load
	cs = cands()
	(TrafficAware{}).Choose(hot, 0, cs)
	if cs[0].Node != 2 {
		t.Fatalf("telemetry branch chose %v; want 2 (cool path beats busy donor count)", cs[0].Node)
	}
}

// TestTrafficAwareCommitTermBreaksTies: two equidistant donors with idle
// paths — the one whose path carries fewer committed leases wins. This
// is the placement-time complement to the sampling window: a grant made
// moments ago is invisible to telemetry but already known to the MN.
func TestTrafficAwareCommitTermBreaksTies(t *testing.T) {
	v := synthView(map[[2]fabric.NodeID]float64{{6, 7}: 0.0}) // telemetry on, paths idle
	v.commits = map[[2]fabric.NodeID]int{linkKey(0, 1): 2}
	cs := []*Registration{
		{Node: 1, IdleBytes: 1 << 30},
		{Node: 2, IdleBytes: 1 << 30},
	}
	(TrafficAware{}).Choose(v, 0, cs)
	if cs[0].Node != 2 {
		t.Fatalf("chose %v; want 2 (no committed leases on its path)", cs[0].Node)
	}
}

// TestCoolestPathDegradesToDistance: without telemetry every path reads
// unknown-as-idle and the ordering is distance-first; with telemetry the
// cooler, farther path wins.
func TestCoolestPathDegradesToDistance(t *testing.T) {
	// Node 6 sits 2 hops from 0 and no shortest 0->6 path crosses link
	// 0-1 (node 1 is not on any), so heating 0-1 cannot leak onto it.
	cands := func() []*Registration {
		return []*Registration{
			{Node: 1, IdleBytes: 1 << 30}, // 1 hop from 0
			{Node: 6, IdleBytes: 1 << 30}, // 2 hops from 0
		}
	}
	blind := synthView(nil)
	cs := cands()
	(CoolestPath{}).Choose(blind, 0, cs)
	if cs[0].Node != 1 {
		t.Fatalf("blind coolest-path chose %v; want nearest donor 1", cs[0].Node)
	}
	hot := synthView(map[[2]fabric.NodeID]float64{{0, 1}: 0.8})
	hot.Load = map[fabric.NodeID]int{}
	cs = cands()
	(CoolestPath{}).Choose(hot, 0, cs)
	if cs[0].Node != 6 {
		t.Fatalf("hot coolest-path chose %v; want 6 behind the cool path", cs[0].Node)
	}
}
