package monitor

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func TestMostIdlePolicyPicksLargestDonor(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.Policy = MostIdle{}
	c.eng.RunFor(1 * sim.Second)
	// Consume memory everywhere except node 2 (far from requester 7).
	for i := 1; i < 8; i++ {
		if i == 2 || i == 7 {
			continue
		}
		if err := c.nodes[i].MemMgr.Reserve(1 << 29); err != nil {
			t.Fatal(err)
		}
	}
	c.eng.RunFor(1 * sim.Second) // refresh RRT
	recipient := c.nodes[7]
	var resp *AllocMemResp
	recipient.Run("alloc", func(p *sim.Proc) {
		win := recipient.NextHotplugWindow(1 << 20)
		resp = recipient.EP.Call(p, 0, kindAllocMem, 64,
			&AllocMemReq{Size: 1 << 20, WindowBase: win}).(*AllocMemResp)
	})
	c.eng.RunFor(5 * sim.Second)
	if resp == nil || !resp.OK {
		t.Fatalf("alloc failed: %+v", resp)
	}
	// Node 2 (and node 0, the MN, which also has full memory) are the
	// most idle; distance-first would have picked a neighbor of 7.
	if resp.Donor != 2 && resp.Donor != 0 {
		t.Fatalf("most-idle policy chose %v, want the emptiest node", resp.Donor)
	}
}

func TestTrafficAwarePolicySpreadsDonors(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.Policy = TrafficAware{PenaltyHops: 10} // strong spreading
	c.eng.RunFor(1 * sim.Second)
	recipient := c.nodes[7]
	donors := make(map[fabric.NodeID]int)
	recipient.Run("allocs", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			win := recipient.NextHotplugWindow(64 << 20)
			resp := recipient.EP.Call(p, 0, kindAllocMem, 64,
				&AllocMemReq{Size: 64 << 20, WindowBase: win}).(*AllocMemResp)
			if !resp.OK {
				t.Errorf("alloc %d failed: %s", i, resp.Err)
				return
			}
			donors[resp.Donor]++
		}
	})
	c.eng.RunFor(20 * sim.Second)
	if len(donors) < 3 {
		t.Fatalf("traffic-aware policy reused donors: %v (want 3 distinct)", donors)
	}
}

func TestDistanceFirstReusesNearestDonor(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(1 * sim.Second)
	recipient := c.nodes[7]
	donors := make(map[fabric.NodeID]int)
	recipient.Run("allocs", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			win := recipient.NextHotplugWindow(64 << 20)
			resp := recipient.EP.Call(p, 0, kindAllocMem, 64,
				&AllocMemReq{Size: 64 << 20, WindowBase: win}).(*AllocMemResp)
			if !resp.OK {
				t.Errorf("alloc %d failed: %s", i, resp.Err)
				return
			}
			donors[resp.Donor]++
		}
	})
	c.eng.RunFor(20 * sim.Second)
	// Distance-first never leaves the requester's immediate neighborhood
	// while neighbors have idle memory (equidistant ties rotate by idle).
	if len(donors) == 0 {
		t.Fatal("no allocations made")
	}
	for d := range donors {
		if hop := c.net.HopCount(7, d); hop != 1 {
			t.Fatalf("donor %v is %d hops away; distance-first must stay at hop 1", d, hop)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	var df DistanceFirst
	var mi MostIdle
	var ta TrafficAware
	if df.Name() != "distance" || mi.Name() != "most-idle" || ta.Name() != "traffic-aware" {
		t.Fatal("policy names wrong")
	}
}
