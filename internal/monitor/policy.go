package monitor

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
)

// Policy orders donor candidates for an allocation request. The paper's
// prototype considers only distance (§5.3) but names distance, topology,
// and traffic as the factors an intelligent runtime must weigh (§8);
// the additional policies explore that design space. Choose receives
// the telemetry View (donor load, windowed per-path utilization) so
// policies can weigh live traffic, not just static shape.
type Policy interface {
	Name() string
	// Choose sorts candidates in place, best donor first, using the
	// telemetry snapshot v.
	Choose(v *View, requester fabric.NodeID, cands []*Registration)
}

// policyRegistry is the single source of truth for selectable policies:
// each policy self-registers in an init func, and PolicyByName /
// PolicyNames / core.WithPolicy validation / venice-bench -list all
// read from it.
var policyRegistry = struct {
	names []string
	mk    map[string]func() Policy
}{mk: make(map[string]func() Policy)}

// RegisterPolicy adds a named policy constructor to the registry.
// Registration order defines sweep order; duplicate names panic.
func RegisterPolicy(name string, mk func() Policy) {
	if name == "" {
		panic("monitor: RegisterPolicy with empty name")
	}
	if _, dup := policyRegistry.mk[name]; dup {
		panic(fmt.Sprintf("monitor: policy %q registered twice", name))
	}
	policyRegistry.names = append(policyRegistry.names, name)
	policyRegistry.mk[name] = mk
}

// PolicyByName resolves a policy by its registered name — the form the
// serving scenario sweeps, per-request overrides (core.WithPolicy), and
// command-line surfaces use. The empty string selects the prototype
// default (distance-first).
func PolicyByName(name string) (Policy, bool) {
	if name == "" {
		name = "distance"
	}
	mk, ok := policyRegistry.mk[name]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// PolicyNames lists the selectable policy names in registration (sweep)
// order.
func PolicyNames() []string {
	out := make([]string, len(policyRegistry.names))
	copy(out, policyRegistry.names)
	return out
}

func init() {
	// Registration order is sweep order; the original three keep their
	// historical positions so existing sweeps are unchanged.
	RegisterPolicy("distance", func() Policy { return DistanceFirst{} })
	RegisterPolicy("most-idle", func() Policy { return MostIdle{} })
	RegisterPolicy("traffic-aware", func() Policy { return TrafficAware{PenaltyHops: 2} })
	RegisterPolicy("spread", func() Policy { return Spread{} })
	RegisterPolicy("coolest-path", func() Policy { return CoolestPath{} })
}

// tieBreak is the shared final ordering every policy falls back to:
// more idle memory first, then node id for determinism.
func tieBreak(a, b *Registration) bool {
	if a.IdleBytes != b.IdleBytes {
		return a.IdleBytes > b.IdleBytes
	}
	return a.Node < b.Node
}

// DistanceFirst is the prototype's policy: nearest donor wins, idle
// memory breaks ties, node id keeps it deterministic.
type DistanceFirst struct{}

// Name identifies the policy.
func (DistanceFirst) Name() string { return "distance" }

// Choose implements Policy.
func (DistanceFirst) Choose(v *View, requester fabric.NodeID, cands []*Registration) {
	sort.Slice(cands, func(i, j int) bool {
		di := v.HopCount(requester, cands[i].Node)
		dj := v.HopCount(requester, cands[j].Node)
		if di != dj {
			return di < dj
		}
		return tieBreak(cands[i], cands[j])
	})
}

// MostIdle ignores distance and picks the donor with the most spare
// memory — a capacity-balancing policy.
type MostIdle struct{}

// Name identifies the policy.
func (MostIdle) Name() string { return "most-idle" }

// Choose implements Policy.
func (MostIdle) Choose(_ *View, _ fabric.NodeID, cands []*Registration) {
	sort.Slice(cands, func(i, j int) bool {
		return tieBreak(cands[i], cands[j])
	})
}

// TrafficAware prefers near donors but skips past donors whose paths
// already carry traffic. With telemetry it scores the measured windowed
// utilization of the requester→donor path (UtilPenaltyHops extra hops
// for a fully busy path) plus the path's lease commitments — grants
// whose traffic is not yet visible in the sampling window (one extra
// hop each). Without telemetry it falls back to the pre-telemetry
// proxy, the donor's live-allocation count. The donor-count proxy and
// the measured term are exclusive: the count exists only to guess at
// traffic when the runtime is blind, so once paths report real
// utilization it would just double-count (and, worse, push placements
// onto far donors whose leases are idle) — the commitment term carries
// the only signal it held, now per-path instead of per-donor.
type TrafficAware struct {
	// PenaltyHops is how many extra hops one live allocation is worth
	// in the telemetry-off fallback.
	PenaltyHops int
	// UtilPenaltyHops is how many extra hops a 100%-utilized path is
	// worth when telemetry is available; 0 selects the default of 8.
	UtilPenaltyHops float64
	// CommitPenaltyHops is how many extra hops each lease already
	// committed to the path's busiest link is worth when telemetry is
	// available; 0 selects the default of 1.
	CommitPenaltyHops float64
}

// Name identifies the policy.
func (TrafficAware) Name() string { return "traffic-aware" }

// Choose implements Policy.
func (t TrafficAware) Choose(v *View, requester fabric.NodeID, cands []*Registration) {
	penalty := t.PenaltyHops
	if penalty == 0 {
		penalty = 1
	}
	utilPenalty := t.UtilPenaltyHops
	if utilPenalty == 0 {
		utilPenalty = 8
	}
	commitPenalty := t.CommitPenaltyHops
	if commitPenalty == 0 {
		commitPenalty = 1
	}
	score := func(r *Registration) float64 {
		s := float64(v.HopCount(requester, r.Node))
		if v.HasTelemetry {
			u, _ := v.PathUtil(requester, r.Node) // unknown reads as idle
			s += utilPenalty*u + commitPenalty*float64(v.PathCommits(requester, r.Node))
		} else {
			s += float64(penalty * v.Load[r.Node])
		}
		return s
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := score(cands[i]), score(cands[j])
		if si != sj {
			return si < sj
		}
		return tieBreak(cands[i], cands[j])
	})
}

// Spread ignores distance and balances the number of live leases per
// donor — the blast-radius-minimizing policy: a donor crash takes out
// as few leases as possible.
type Spread struct{}

// Name identifies the policy.
func (Spread) Name() string { return "spread" }

// Choose implements Policy.
func (Spread) Choose(v *View, _ fabric.NodeID, cands []*Registration) {
	sort.Slice(cands, func(i, j int) bool {
		li, lj := v.Load[cands[i].Node], v.Load[cands[j].Node]
		if li != lj {
			return li < lj
		}
		return tieBreak(cands[i], cands[j])
	})
}

// CoolestPath places purely by windowed path utilization: the donor
// whose requester→donor path has the coolest bottleneck link wins,
// distance breaking ties. Without telemetry every path scores unknown
// and the ordering degrades to distance-first.
type CoolestPath struct{}

// Name identifies the policy.
func (CoolestPath) Name() string { return "coolest-path" }

// Choose implements Policy.
func (CoolestPath) Choose(v *View, requester fabric.NodeID, cands []*Registration) {
	util := func(r *Registration) float64 {
		u, _ := v.PathUtil(requester, r.Node) // unknown reads as idle
		return u
	}
	sort.Slice(cands, func(i, j int) bool {
		ui, uj := util(cands[i]), util(cands[j])
		if ui != uj {
			return ui < uj
		}
		di := v.HopCount(requester, cands[i].Node)
		dj := v.HopCount(requester, cands[j].Node)
		if di != dj {
			return di < dj
		}
		return tieBreak(cands[i], cands[j])
	})
}
