package monitor

import (
	"sort"

	"repro/internal/fabric"
)

// Policy orders donor candidates for an allocation request. The paper's
// prototype considers only distance (§5.3) but names distance, topology,
// and traffic as the factors an intelligent runtime must weigh (§8);
// the additional policies explore that design space.
type Policy interface {
	Name() string
	// Order sorts candidates in place, best donor first.
	Order(m *Monitor, requester fabric.NodeID, cands []*Registration)
}

// PolicyByName resolves a policy by its Name() string — the form the
// serving scenario sweeps and command-line surfaces use. The empty
// string selects the prototype default (distance-first).
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "", "distance":
		return DistanceFirst{}, true
	case "most-idle":
		return MostIdle{}, true
	case "traffic-aware":
		return TrafficAware{PenaltyHops: 2}, true
	}
	return nil, false
}

// PolicyNames lists the selectable policy names in sweep order.
func PolicyNames() []string { return []string{"distance", "most-idle", "traffic-aware"} }

// DistanceFirst is the prototype's policy: nearest donor wins, idle
// memory breaks ties, node id keeps it deterministic.
type DistanceFirst struct{}

// Name identifies the policy.
func (DistanceFirst) Name() string { return "distance" }

// Order implements Policy.
func (DistanceFirst) Order(m *Monitor, requester fabric.NodeID, cands []*Registration) {
	sort.Slice(cands, func(i, j int) bool {
		di := m.Topo.HopCount(requester, cands[i].Node)
		dj := m.Topo.HopCount(requester, cands[j].Node)
		if di != dj {
			return di < dj
		}
		if cands[i].IdleBytes != cands[j].IdleBytes {
			return cands[i].IdleBytes > cands[j].IdleBytes
		}
		return cands[i].Node < cands[j].Node
	})
}

// MostIdle ignores distance and picks the donor with the most spare
// memory — a capacity-balancing policy.
type MostIdle struct{}

// Name identifies the policy.
func (MostIdle) Name() string { return "most-idle" }

// Order implements Policy.
func (MostIdle) Order(m *Monitor, _ fabric.NodeID, cands []*Registration) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].IdleBytes != cands[j].IdleBytes {
			return cands[i].IdleBytes > cands[j].IdleBytes
		}
		return cands[i].Node < cands[j].Node
	})
}

// TrafficAware prefers near donors but skips past donors whose links are
// already carrying allocations, approximating "existing traffic over
// involved links" with the number of live allocations the donor serves.
type TrafficAware struct {
	// PenaltyHops is how many extra hops one live allocation is worth.
	PenaltyHops int
}

// Name identifies the policy.
func (TrafficAware) Name() string { return "traffic-aware" }

// Order implements Policy.
func (t TrafficAware) Order(m *Monitor, requester fabric.NodeID, cands []*Registration) {
	penalty := t.PenaltyHops
	if penalty == 0 {
		penalty = 1
	}
	load := make(map[fabric.NodeID]int)
	for _, a := range m.rat {
		load[a.Donor]++
	}
	score := func(r *Registration) int {
		return m.Topo.HopCount(requester, r.Node) + penalty*load[r.Node]
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := score(cands[i]), score(cands[j])
		if si != sj {
			return si < sj
		}
		if cands[i].IdleBytes != cands[j].IdleBytes {
			return cands[i].IdleBytes > cands[j].IdleBytes
		}
		return cands[i].Node < cands[j].Node
	})
}
