package monitor

import (
	"sync"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Lease-lifecycle events. Every change to an allocation's existence or
// backing — a grant, a voluntary free, a recovery revocation, a donor
// failover — is announced to registered observers, so metrics and
// scenario code consume one event stream instead of polling the RAT.
// The core layer (core.Plane) subscribes here to surface recovery
// events on its unified observer; grants and frees it also emits
// itself, where the requested resource kind (memory vs swap) is still
// known.

// LeaseEventType classifies a lease-lifecycle transition.
type LeaseEventType int

const (
	// LeaseGranted fires when a RAT row is created (a grant completed,
	// including delegated cross-rack backings).
	LeaseGranted LeaseEventType = iota
	// LeaseReleased fires when a RAT row is torn down voluntarily (the
	// recipient freed it, or the root tore down a delegated backing).
	LeaseReleased
	// LeaseRevoked fires when recovery destroys a lease involuntarily:
	// the recipient died, or the donor died with no surviving candidate
	// to back the window.
	LeaseRevoked
	// LeaseFailedOver fires when recovery re-placed a lease onto a new
	// donor (rack-local failover, or a root-MN re-delegation).
	LeaseFailedOver
	// LeaseMigrated fires when the telemetry-driven migration loop moved
	// a live lease to a donor behind a cooler path (the old donor stays
	// healthy and gets its region back).
	LeaseMigrated
	// LeasePreempted fires when the admission plane revoked a
	// Preemptible-class lease to make room for a higher class
	// (admission.go). The victim's window goes dead like a revocation,
	// but the donor is alive — re-acquiring (with backoff) is expected.
	LeasePreempted
)

// String names the event type.
func (t LeaseEventType) String() string {
	switch t {
	case LeaseGranted:
		return "granted"
	case LeaseReleased:
		return "released"
	case LeaseRevoked:
		return "revoked"
	case LeaseFailedOver:
		return "failed-over"
	case LeaseMigrated:
		return "migrated"
	case LeasePreempted:
		return "preempted"
	default:
		return "unknown"
	}
}

// LeaseEvent is one lease-lifecycle transition. Alloc is a copy of the
// allocation row as of the event (for failed-over events it carries the
// NEW donor; OldDonor names the one being replaced). Root-MN events
// synthesize Alloc from the delegation row, so ID is the delegation id
// there.
type LeaseEvent struct {
	Type     LeaseEventType
	At       sim.Time
	Alloc    Allocation
	OldDonor fabric.NodeID
}

// LeaseObserver consumes lease-lifecycle events. Observers run
// synchronously on the monitor's handler path and must not block; they
// cost no virtual time.
type LeaseObserver func(LeaseEvent)

// leaseObservers is the shared registration list (Monitor and Root).
// Registration and cancel take the mutex so an observer cancelling
// itself (or another goroutine cancelling it) during an emit cannot
// corrupt the slice; emit delivers against a snapshot.
type leaseObservers struct {
	mu  sync.Mutex
	fns []LeaseObserver
}

// observe registers fn and returns its cancel.
func (o *leaseObservers) observe(fn LeaseObserver) (cancel func()) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.fns = append(o.fns, fn)
	i := len(o.fns) - 1
	return func() {
		o.mu.Lock()
		o.fns[i] = nil
		o.mu.Unlock()
	}
}

// empty reports whether no observer is registered (cheap emit guard).
func (o *leaseObservers) empty() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.fns) == 0
}

// emit delivers ev to every live observer in registration order.
func (o *leaseObservers) emit(ev LeaseEvent) {
	o.mu.Lock()
	snap := append([]LeaseObserver(nil), o.fns...)
	o.mu.Unlock()
	for _, fn := range snap {
		if fn != nil {
			fn(ev)
		}
	}
}

// Observe registers a lease-lifecycle observer with this Monitor (a
// flat cluster's MN or one rack's sub-MN) and returns a cancel.
func (m *Monitor) Observe(fn LeaseObserver) (cancel func()) { return m.observers.observe(fn) }

// emitLease announces one lifecycle transition for an allocation row.
func (m *Monitor) emitLease(t LeaseEventType, a *Allocation, oldDonor fabric.NodeID) {
	if m.observers.empty() {
		return
	}
	m.observers.emit(LeaseEvent{Type: t, At: m.EP.Eng.Now(), Alloc: *a, OldDonor: oldDonor})
}

// Observe registers a lease-lifecycle observer with the root MN (it
// announces cross-rack re-delegations and reclaims) and returns a
// cancel.
func (rt *Root) Observe(fn LeaseObserver) (cancel func()) { return rt.observers.observe(fn) }

// emitDelegation announces one lifecycle transition for a delegation
// row, synthesized into the Allocation shape observers already consume.
func (rt *Root) emitDelegation(t LeaseEventType, d *Delegation, oldDonor fabric.NodeID) {
	if rt.observers.empty() {
		return
	}
	kind := d.Kind
	if kind == "" {
		kind = "memory"
	}
	rt.observers.emit(LeaseEvent{
		Type: t,
		At:   rt.EP.Eng.Now(),
		Alloc: Allocation{
			ID: d.ID, Kind: kind, Dev: d.Dev, Donor: d.Donor, Recipient: d.Recipient,
			RecipientBase: d.RecipientBase, Size: d.Size, At: d.At, Deleg: d.ID,
			Trace: d.Trace, Tenant: d.Tenant, Class: d.Class,
		},
		OldDonor: oldDonor,
	})
}
