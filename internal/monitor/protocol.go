// Package monitor implements Venice's resource-management runtime
// (§5.3): the Monitor Node with its three tables — the Resource
// Registration Table (RRT) of available resources, the Resource
// Allocation Table (RAT) of live allocations, and the Topology Status
// Table (TST) of fabric link health — plus the per-node agent daemon
// that heartbeats availability and services hot-remove requests.
package monitor

import (
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/transport"
)

// RPC kinds exchanged between agents and the Monitor Node.
const (
	kindHeartbeat = "mn.heartbeat"
	kindAllocMem  = "mn.allocmem"
	kindFreeMem   = "mn.freemem"
	kindAllocDev  = "mn.allocdev"
	kindFreeDev   = "mn.freedev"

	kindHotRemove = "agent.hotremove"
	kindHotReturn = "agent.hotreturn"
	kindRelocate  = "agent.relocate"
	kindRevoke    = "agent.revoke"
)

// DeviceKind distinguishes shareable device classes in the RRT.
type DeviceKind int

// Shareable device classes (§5.2).
const (
	DevAccelerator DeviceKind = iota
	DevNIC
)

// String names the device kind.
func (k DeviceKind) String() string {
	switch k {
	case DevAccelerator:
		return "accelerator"
	case DevNIC:
		return "nic"
	default:
		return "unknown"
	}
}

// LinkProbe is one link's health as observed by an agent.
type LinkProbe struct {
	Peer fabric.NodeID
	Up   bool
}

// Heartbeat is the periodic agent report that feeds the RRT and TST.
type Heartbeat struct {
	Node      fabric.NodeID
	IdleBytes uint64
	Devices   map[DeviceKind]int
	Links     []LinkProbe
	// Incarnation counts the node's reboots. The MN compares it against
	// the RRT's recorded value to tell a crash-and-reboot apart from a
	// stretch of lost heartbeats: a higher incarnation means the node's
	// memory (and with it every donation it was serving) is gone, even if
	// the outage was shorter than the heartbeat timeout.
	Incarnation int64
}

// AllocMemReq asks the MN for remote memory. The requester pre-selects
// the local address window the borrowed region will be hot-plugged at,
// so the donor can install the matching translation.
type AllocMemReq struct {
	Size       uint64
	WindowBase uint64
}

// AllocMemResp answers an AllocMemReq.
type AllocMemResp struct {
	OK        bool
	Err       string
	AllocID   int
	Donor     fabric.NodeID
	DonorBase uint64
}

// FreeMemReq releases a previous allocation.
type FreeMemReq struct {
	AllocID int
}

// AllocDevReq asks the MN for a remote device of a kind.
type AllocDevReq struct {
	Kind DeviceKind
}

// AllocDevResp answers an AllocDevReq.
type AllocDevResp struct {
	OK      bool
	Err     string
	AllocID int
	Donor   fabric.NodeID
}

// FreeDevReq releases a device allocation.
type FreeDevReq struct {
	AllocID int
}

// RequestMemory is the client-side call a node's kernel memory manager
// makes when it needs more memory than is locally available (step 2 of
// Fig. 2).
func RequestMemory(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, size, windowBase uint64) *AllocMemResp {
	return ep.Call(p, mn, kindAllocMem, 64, &AllocMemReq{Size: size, WindowBase: windowBase}).(*AllocMemResp)
}

// FreeMemory releases a memory allocation by id.
func FreeMemory(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, allocID int) {
	ep.Call(p, mn, kindFreeMem, 16, &FreeMemReq{AllocID: allocID})
}

// RequestDevice asks the MN for a remote device unit.
func RequestDevice(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, kind DeviceKind) *AllocDevResp {
	return ep.Call(p, mn, kindAllocDev, 16, &AllocDevReq{Kind: kind}).(*AllocDevResp)
}

// FreeDevice releases a device allocation by id.
func FreeDevice(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, allocID int) {
	ep.Call(p, mn, kindFreeDev, 16, &FreeDevReq{AllocID: allocID})
}

// hotRemoveReq is the MN->donor-agent request to donate memory.
type hotRemoveReq struct {
	Size          uint64
	Recipient     fabric.NodeID
	RecipientBase uint64
}

// hotRemoveResp is the donor agent's answer.
type hotRemoveResp struct {
	OK   bool
	Err  string
	Base uint64
}

// hotReturnReq is the MN->donor-agent request to take memory back. A
// zero Size asks the agent to resolve the region from its own export
// bookkeeping by (Recipient, RecipientBase) — the cancellation form the
// MN sends when a hot-remove's ACK was lost and it cannot know whether
// (or where) the donor carved the region.
type hotReturnReq struct {
	Recipient     fabric.NodeID
	RecipientBase uint64
	Base          uint64
	Size          uint64
}

// relocateReq is the MN->recipient-agent notice that a lease's donor has
// been replaced: the agent retargets the window's RAMT entry at the new
// donor and replays every in-flight access that was addressed to the old
// one — the recovery half of §5.3's runtime, which the paper's prototype
// leaves to future work.
type relocateReq struct {
	AllocID       int
	RecipientBase uint64
	Size          uint64
	OldDonor      fabric.NodeID
	NewDonor      fabric.NodeID
	NewDonorBase  uint64
}

// relocateResp acknowledges a relocation.
type relocateResp struct {
	OK bool
}

// revokeReq is the MN->recipient-agent notice that a lease is gone for
// good: the donor died and no surviving candidate could back the window.
// The agent marks the window dead so blocked accesses unwedge and future
// ones fail fast instead of parking forever.
type revokeReq struct {
	AllocID       int
	RecipientBase uint64
	Size          uint64
}

// ack is an empty RPC response.
type ack struct{}
