// Package monitor implements Venice's resource-management runtime
// (§5.3): the Monitor Node with its three tables — the Resource
// Registration Table (RRT) of available resources, the Resource
// Allocation Table (RAT) of live allocations, and the Topology Status
// Table (TST) of fabric link health — plus the per-node agent daemon
// that heartbeats availability and services hot-remove requests.
//
// The runtime extends the paper's prototype in two directions. First,
// recovery (recovery.go): heartbeat-incarnation failure detection, MN
// sweep loops, lease failover with recipient-side in-flight replay, and
// orphan hot-returns after false positives. Second, scale (shard.go): on
// multi-rack fabrics the plane shards into one sub-MN per rack plus a
// root MN that sees only rack-granularity state — sub-MNs escalate
// requests their rack cannot serve, the root elects donor racks and
// delegates grants, and recovery composes across the delegation
// boundary (including re-delegating a whole rack's donated leases when
// its sub-MN dies).
package monitor

import (
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/transport"
)

// RPC kinds exchanged between agents and the Monitor Node.
const (
	kindHeartbeat = "mn.heartbeat"
	kindAllocMem  = "mn.allocmem"
	kindFreeMem   = "mn.freemem"
	kindAllocDev  = "mn.allocdev"
	kindFreeDev   = "mn.freedev"

	kindHotRemove   = "agent.hotremove"
	kindHotReturn   = "agent.hotreturn"
	kindRelocate    = "agent.relocate"
	kindRevoke      = "agent.revoke"
	kindSpareCarve  = "agent.sparecarve"
	kindSpareAttach = "agent.spareattach"

	// Sharded-plane RPCs (see shard.go): sub-MN <-> root MN, and the
	// root's delegation calls into donor-rack sub-MNs.
	kindRackBeat       = "root.rackbeat"
	kindRackBorrow     = "root.borrow"
	kindRackFree       = "root.free"
	kindBorrowCancel   = "root.borrowcancel"
	kindNodeDown       = "root.nodedown"
	kindDelegateMoved  = "root.delegatemoved"
	kindDelegate       = "sub.delegate"
	kindDelegateFree   = "sub.delegatefree"
	kindDelegateCancel = "sub.delegatecancel"
)

// DeviceKind distinguishes shareable device classes in the RRT.
type DeviceKind int

// Shareable device classes (§5.2).
const (
	DevAccelerator DeviceKind = iota
	DevNIC
)

// String names the device kind.
func (k DeviceKind) String() string {
	switch k {
	case DevAccelerator:
		return "accelerator"
	case DevNIC:
		return "nic"
	default:
		return "unknown"
	}
}

// LinkProbe is one link's health as observed by an agent. When the
// agent's telemetry plane is on it also carries the link's windowed
// utilization (the busier direction) since the previous heartbeat;
// HasUtil distinguishes a genuinely idle window from telemetry-off.
type LinkProbe struct {
	Peer    fabric.NodeID
	Up      bool
	Util    float64
	HasUtil bool
}

// Heartbeat is the periodic agent report that feeds the RRT and TST.
type Heartbeat struct {
	Node      fabric.NodeID
	IdleBytes uint64
	Devices   map[DeviceKind]int
	Links     []LinkProbe
	// Incarnation counts the node's reboots. The MN compares it against
	// the RRT's recorded value to tell a crash-and-reboot apart from a
	// stretch of lost heartbeats: a higher incarnation means the node's
	// memory (and with it every donation it was serving) is gone, even if
	// the outage was shorter than the heartbeat timeout.
	Incarnation int64
}

// AllocScope is a placement hint on memory requests — the NUMA-style
// policy knob the hierarchical plane adds. The zero value preserves the
// flat-cluster behavior exactly.
type AllocScope int

const (
	// ScopeAny places wherever the plane finds memory: the sub-MN's own
	// rack first, escalating to the root MN only when the rack is
	// starved.
	ScopeAny AllocScope = iota
	// ScopeLocalRack never escalates: the request fails if the rack
	// cannot serve it.
	ScopeLocalRack
	// ScopeRemoteRack skips the local walk and asks the root MN for a
	// donor in another rack (the cross-rack traffic knob the scale
	// scenarios sweep).
	ScopeRemoteRack
)

// AllocMemReq asks the MN for remote memory. The requester pre-selects
// the local address window the borrowed region will be hot-plugged at,
// so the donor can install the matching translation.
type AllocMemReq struct {
	Size       uint64
	WindowBase uint64
	// Scope is the hierarchical placement hint; flat clusters ignore it
	// except ScopeRemoteRack, which fails (there is no other rack).
	Scope AllocScope
	// Policy names a registered placement policy to use for this request
	// instead of the MN's configured one; "" keeps the MN default.
	Policy string
	// Latency marks the lease latency-sensitive: the migration loop
	// relieves its path by moving bulk leases away, and never retargets
	// the lease itself.
	Latency bool
	// Trace is the requester's lease trace id; the MN stores it on the
	// allocation row so recovery and migration events announce the same
	// id the recipient's grant/release events carry. Purely passive —
	// it never steers placement, and the request's wire size is fixed.
	Trace uint64
	// Tenant/Class identify the requesting tenant for the admission
	// controller (tenancy.Config on the MN). The zero Class marks an
	// untagged request, which admission never gates — pre-tenancy
	// callers keep today's behavior exactly.
	Tenant uint64
	Class  tenancy.Class
}

// AllocMemResp answers an AllocMemReq.
type AllocMemResp struct {
	OK        bool
	Err       string
	AllocID   int
	Donor     fabric.NodeID
	DonorBase uint64
	// Granted is the degraded grant size when the admission controller
	// shrank the window (tenancy.Degrade); 0 means "as requested".
	Granted uint64
	// Rejected marks an admission-controller rejection: the pool has
	// capacity policy says this class may not take. Unlike an ordinary
	// "no donor" decline it is not retryable — the caller surfaces
	// core.ErrAdmissionRejected.
	Rejected bool
}

// FreeMemReq releases a previous allocation.
type FreeMemReq struct {
	AllocID int
}

// AllocDevReq asks the MN for a remote device of a kind.
type AllocDevReq struct {
	Kind DeviceKind
	// Scope is the hierarchical placement hint, with the same semantics
	// as AllocMemReq.Scope: device leases can be kept rack-local or
	// delegated to a donor in another rack through the root MN.
	Scope AllocScope
	// Policy names a registered placement policy override for the donor
	// walk; "" keeps the MN default.
	Policy string
	// Trace is the requester's lease trace id (see AllocMemReq.Trace).
	Trace uint64
	// Tenant/Class identify the requesting tenant for the admission
	// controller (see AllocMemReq.Tenant).
	Tenant uint64
	Class  tenancy.Class
}

// AllocDevResp answers an AllocDevReq.
type AllocDevResp struct {
	OK      bool
	Err     string
	AllocID int
	Donor   fabric.NodeID
	// Rejected marks an admission-controller rejection (see
	// AllocMemResp.Rejected).
	Rejected bool
}

// FreeDevReq releases a device allocation.
type FreeDevReq struct {
	AllocID int
}

// RequestMemory is the client-side call a node's kernel memory manager
// makes when it needs more memory than is locally available (step 2 of
// Fig. 2).
func RequestMemory(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, size, windowBase uint64) *AllocMemResp {
	return RequestMemoryScoped(p, ep, mn, size, windowBase, ScopeAny)
}

// RequestMemoryScoped is RequestMemory with an explicit placement scope
// (rack-local, remote-rack, or anywhere) for hierarchical planes.
func RequestMemoryScoped(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, size, windowBase uint64, scope AllocScope) *AllocMemResp {
	resp, _ := RequestMemoryOpts(p, ep, mn, size, windowBase, MemReqOpts{Scope: scope})
	return resp
}

// MemReqOpts carries the optional refinements of one memory request:
// a placement scope, a per-request policy override ("" keeps the MN
// default), the latency-sensitive traffic class, and a bounded wait
// (Timeout <= 0 waits indefinitely).
type MemReqOpts struct {
	Scope   AllocScope
	Policy  string
	Latency bool
	Timeout sim.Dur
	// Trace is the lease trace id stamped onto the allocation row (see
	// AllocMemReq.Trace).
	Trace uint64
	// Tenant/Class identify the requesting tenant for admission control
	// (see AllocMemReq.Tenant).
	Tenant uint64
	Class  tenancy.Class
}

// RequestMemoryOpts is RequestMemoryScoped with the full option set:
// when o.Timeout > 0 the request aborts after that much virtual time
// and reports ok=false (an unreachable or wedged MN must not park the
// requester forever).
func RequestMemoryOpts(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, size, windowBase uint64, o MemReqOpts) (*AllocMemResp, bool) {
	req := &AllocMemReq{Size: size, WindowBase: windowBase, Scope: o.Scope, Policy: o.Policy, Latency: o.Latency, Trace: o.Trace, Tenant: o.Tenant, Class: o.Class}
	if o.Timeout > 0 {
		raw, ok := ep.CallTimeout(p, mn, kindAllocMem, 64, req, o.Timeout)
		if !ok {
			return nil, false
		}
		return raw.(*AllocMemResp), true
	}
	return ep.Call(p, mn, kindAllocMem, 64, req).(*AllocMemResp), true
}

// FreeMemory releases a memory allocation by id.
func FreeMemory(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, allocID int) {
	ep.Call(p, mn, kindFreeMem, 16, &FreeMemReq{AllocID: allocID})
}

// RequestDevice asks the MN for a remote device unit.
func RequestDevice(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, kind DeviceKind) *AllocDevResp {
	resp, _ := RequestDeviceOpts(p, ep, mn, kind, DevReqOpts{})
	return resp
}

// DevReqOpts carries the optional refinements of one device request: a
// placement scope and policy override (hierarchical planes only), a
// bounded wait (Timeout <= 0 waits indefinitely), and the lease trace
// id (see AllocMemReq.Trace).
type DevReqOpts struct {
	Scope   AllocScope
	Policy  string
	Timeout sim.Dur
	Trace   uint64
	// Tenant/Class identify the requesting tenant for admission control
	// (see AllocMemReq.Tenant).
	Tenant uint64
	Class  tenancy.Class
}

// RequestDeviceOpts is RequestDevice with the full option set (same
// timeout contract as RequestMemoryOpts).
func RequestDeviceOpts(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, kind DeviceKind, o DevReqOpts) (*AllocDevResp, bool) {
	req := &AllocDevReq{Kind: kind, Scope: o.Scope, Policy: o.Policy, Trace: o.Trace, Tenant: o.Tenant, Class: o.Class}
	if o.Timeout > 0 {
		raw, ok := ep.CallTimeout(p, mn, kindAllocDev, 16, req, o.Timeout)
		if !ok {
			return nil, false
		}
		return raw.(*AllocDevResp), true
	}
	return ep.Call(p, mn, kindAllocDev, 16, req).(*AllocDevResp), true
}

// FreeDevice releases a device allocation by id.
func FreeDevice(p *sim.Proc, ep *transport.Endpoint, mn fabric.NodeID, allocID int) {
	ep.Call(p, mn, kindFreeDev, 16, &FreeDevReq{AllocID: allocID})
}

// hotRemoveReq is the MN->donor-agent request to donate memory.
type hotRemoveReq struct {
	Size          uint64
	Recipient     fabric.NodeID
	RecipientBase uint64
}

// hotRemoveResp is the donor agent's answer.
type hotRemoveResp struct {
	OK   bool
	Err  string
	Base uint64
}

// hotReturnReq is the MN->donor-agent request to take memory back. A
// zero Size asks the agent to resolve the region from its own export
// bookkeeping by (Recipient, RecipientBase) — the cancellation form the
// MN sends when a hot-remove's ACK was lost and it cannot know whether
// (or where) the donor carved the region.
type hotReturnReq struct {
	Recipient     fabric.NodeID
	RecipientBase uint64
	Base          uint64
	Size          uint64
}

// spareCarveReq is the MN->donor-agent request to pre-plug a spare
// region: hot-remove Size bytes now — off any grant's critical path —
// and park them unexported, so a later failover or migration can attach
// the region without paying the hot-plug latency.
type spareCarveReq struct {
	Size uint64
}

// spareCarveResp is the donor agent's answer; Base identifies the
// parked region in later spareAttach requests.
type spareCarveResp struct {
	OK   bool
	Err  string
	Base uint64
}

// spareAttachReq is the MN->donor-agent request to export a parked
// spare region to a recipient. The region is already hot-removed, so
// the agent only installs the CRMA export — no hot-plug sleep.
type spareAttachReq struct {
	Base          uint64
	Size          uint64
	Recipient     fabric.NodeID
	RecipientBase uint64
}

// spareAttachResp is the donor agent's answer. !OK means the agent no
// longer holds the parked region (e.g. it rebooted since the carve);
// the MN falls back to an ordinary hot-remove.
type spareAttachResp struct {
	OK  bool
	Err string
}

// relocateReq is the MN->recipient-agent notice that a lease's donor has
// been replaced: the agent retargets the window's RAMT entry at the new
// donor and replays every in-flight access that was addressed to the old
// one — the recovery half of §5.3's runtime, which the paper's prototype
// leaves to future work.
type relocateReq struct {
	AllocID       int
	RecipientBase uint64
	Size          uint64
	OldDonor      fabric.NodeID
	NewDonor      fabric.NodeID
	NewDonorBase  uint64
}

// relocateResp acknowledges a relocation.
type relocateResp struct {
	OK bool
}

// revokeReq is the MN->recipient-agent notice that a lease is gone for
// good: the donor died and no surviving candidate could back the window.
// The agent marks the window dead so blocked accesses unwedge and future
// ones fail fast instead of parking forever.
type revokeReq struct {
	AllocID       int
	RecipientBase uint64
	Size          uint64
}

// ack is an empty RPC response.
type ack struct{}

// rackBeat is a sub-MN's periodic rack-level report to the root MN: the
// hierarchical analogue of the agent heartbeat, aggregated one level up
// so the root scales with racks, not nodes.
type rackBeat struct {
	Rack      int
	Sub       fabric.NodeID
	IdleBytes uint64 // sum of the rack's live RRT idle bytes
	Live      int    // live nodes in the rack
	// Devices aggregates the rack's free device units per kind (live RRT
	// rows only), so the root can elect donor racks for device borrows
	// the same way IdleBytes steers memory borrows. nil when the rack
	// advertises no devices, keeping device-free planes byte-identical.
	Devices map[DeviceKind]int
	// MaxUtil aggregates the rack's telemetry one level up: the hottest
	// windowed link utilization any rack agent reported. HasUtil is false
	// until telemetry-enabled agents report, so the zero value keeps the
	// telemetry-off protocol byte-identical.
	MaxUtil float64
	HasUtil bool
}

// rackBorrowReq is a sub-MN's escalation to the root MN: its rack
// cannot (or, under ScopeRemoteRack, must not) back a request, so the
// root elects a donor rack and delegates the grant.
type rackBorrowReq struct {
	Rack       int // requester's rack, excluded from donor election
	Recipient  fabric.NodeID
	Size       uint64
	WindowBase uint64
	Policy     string        // per-request policy override, forwarded to the donor rack
	Latency    bool          // latency-sensitive class, forwarded to the donor rack
	Trace      uint64        // lease trace id, forwarded to the donor rack's RAT row
	Tenant     uint64        // requesting tenant, forwarded to the donor rack's RAT row
	Class      tenancy.Class // tenant priority class, forwarded for donor-rack admission
	// Device marks a device borrow: the root elects the donor rack by
	// free units of Dev instead of idle bytes, Size is 1 unit, and
	// WindowBase carries the sub's pre-minted recipient-facing alloc id
	// (devices have no address window) so cancellations stay
	// key-resolvable.
	Device bool
	Dev    DeviceKind
}

// rackBorrowResp answers a rackBorrowReq.
type rackBorrowResp struct {
	OK        bool
	Err       string
	DelegID   int
	Donor     fabric.NodeID
	DonorBase uint64
}

// rackFreeReq releases a delegated lease by root delegation id.
type rackFreeReq struct {
	DelegID int
}

// borrowCancelReq is a sub-MN's cancellation of an escalation whose
// response it never saw: if the borrow did complete at the root, the
// orphaned delegation (identified by recipient + window, since the sub
// holds no delegation id) must be torn down — the cross-rack analogue
// of the flat plane's key-resolved hot-return cancellation.
type borrowCancelReq struct {
	Recipient     fabric.NodeID
	RecipientBase uint64
	// Device narrows the key match to device delegations (whose
	// RecipientBase carries the pre-minted alloc id, not a window).
	Device bool
}

// nodeDownReq is a sub-MN's notice to the root that its sweep declared
// a rack node dead. The root reclaims delegated leases that node held
// as a recipient — the cross-rack half of the recovery contract (the
// donor-side half stays with the donor rack's own sweep, which owns the
// RAT row).
type nodeDownReq struct {
	Rack int
	Node fabric.NodeID
}

// delegateMovedReq is a donor-rack sub-MN's notice that its recovery
// sweep changed (or revoked) a delegated lease's backing, keeping the
// root's delegation table truthful across the delegation boundary.
type delegateMovedReq struct {
	DelegID int
	Donor   fabric.NodeID
	Gone    bool // the sub revoked the lease outright
}

// delegateReq is the root MN's grant request to a donor rack's sub-MN:
// perform the normal donor walk for a recipient outside the rack.
type delegateReq struct {
	DelegID    int
	Recipient  fabric.NodeID
	Size       uint64
	WindowBase uint64
	Policy     string        // per-request policy override for the donor walk
	Latency    bool          // latency-sensitive class for the granted row
	Trace      uint64        // lease trace id for the granted row
	Tenant     uint64        // requesting tenant for the granted row
	Class      tenancy.Class // tenant priority class (donor-rack admission: admit/reject only)
	// Device asks the donor rack for one unit of Dev instead of memory;
	// the sub's device walk needs no agent handshake (no hot-plug), so
	// the grant is a pure table operation.
	Device bool
	Dev    DeviceKind
}

// delegateResp answers a delegateReq.
type delegateResp struct {
	OK        bool
	Err       string
	AllocID   int // RAT row id at the donor-rack sub-MN
	Donor     fabric.NodeID
	DonorBase uint64
}

// delegateFreeReq asks a donor rack's sub-MN to tear down a delegated
// lease it is backing, by its local RAT row id.
type delegateFreeReq struct {
	AllocID int
}

// delegateCancelReq is the root MN's cancellation of a delegate call
// whose response it never saw: the sub resolves the row (if its grant
// did complete) by the delegation id the request carried — the
// root-to-sub analogue of the flat plane's key-resolved hot-return
// cancellation.
type delegateCancelReq struct {
	DelegID int
}
