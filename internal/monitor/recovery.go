package monitor

import (
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// This file is the recovery half of the resource-management runtime —
// the part the paper's prototype leaves on the table when it notes the
// MN "should be replicated" and the TST exists so faults can be routed
// around. Detection has two triggers: the sweep notices nodes whose
// heartbeats stopped (slow path, bounded by HeartbeatTimeout +
// SweepInterval), and onHeartbeat notices incarnation bumps (fast path:
// a node that crashed and rebooted inside the timeout still loses every
// donation it was serving). Recovery then walks the RAT: leases donated
// BY the failed node are re-placed onto survivors elected by the active
// Policy and the recipients told to retarget + replay in flight
// accesses; leases held BY the failed node are reclaimed to their
// donors; device grants from it fail over to survivors with free units
// (falling back to revocation when none exists — the client's next call
// then surfaces the loss).

// pendingNotice parks one undelivered recovery notice (relocate or
// revoke) for a recipient, remembering the recipient's incarnation when
// it was queued: a rebooted recipient has a fresh RAMT and its old
// windows (and parked processes) died with it, so the notice is moot.
type pendingNotice[T any] struct {
	req          *T
	recipient    fabric.NodeID
	recipientInc int64
}

// StartRecovery launches the MN's failure-detection and lease-failover
// loop. The loop keeps the event queue non-empty forever, so programs
// that drive the engine with Run (rather than RunFor / step-until-done)
// must StopRecovery first.
func (m *Monitor) StartRecovery() {
	if m.recoveryOn {
		return
	}
	m.recoveryOn = true
	interval := m.SweepInterval
	if interval <= 0 {
		interval = m.HeartbeatTimeout / 2
		if interval <= 0 {
			interval = sim.Second
		}
	}
	m.EP.Eng.Go("mn-recovery", func(p *sim.Proc) {
		for m.recoveryOn {
			p.Sleep(interval)
			m.sweep(p)
		}
	})
}

// StopRecovery ends the recovery loop after the current sweep.
func (m *Monitor) StopRecovery() { m.recoveryOn = false }

// sweep runs one detection pass. Iteration is in node-id order so runs
// are deterministic regardless of map layout.
func (m *Monitor) sweep(p *sim.Proc) {
	ids := make([]fabric.NodeID, 0, len(m.rrt))
	for id := range m.rrt {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := m.rrt[id]
		switch {
		case r.needsRecovery:
			// Fast path: the node told us it rebooted.
			r.needsRecovery = false
			m.Stats.Add("recover.reboot_recoveries", 1)
			m.recoverNode(p, id, true)
			m.notifyNodeDown(p, id)
		case !r.Dead && r.Beats > 0 && !m.NodeAlive(id):
			r.Dead = true
			m.Stats.Add("recover.deaths", 1)
			m.recoverNode(p, id, false)
			m.notifyNodeDown(p, id)
		case !r.Dead && m.NodeAlive(id) && len(m.orphans[id]) > 0:
			// Hot-returns can be owed to a node that was never declared
			// dead (e.g. a free whose return was lost to a link flap);
			// settle them as soon as the node is reachable again.
			m.flushOrphans(p, id)
		}
	}
	m.retryPendingNotices(p)
	if m.HasUpstream {
		m.retryRackFrees(p)
	}
	// Spare-pool upkeep (no-ops unless EnableSparePool ran): drop pool
	// entries whose donor died or rebooted, rescale the pool depth from
	// this sweep's crash delta (adaptive pools only), then replace
	// consumed or pruned spares asynchronously.
	m.pruneSpares()
	m.adaptSpares()
	m.topUpSpares()
}

// retryPendingNotices redelivers relocate/revoke notices whose first
// attempt was lost, in allocation-id order.
func (m *Monitor) retryPendingNotices(p *sim.Proc) {
	for _, id := range sortedKeys(m.pendingRelocates) {
		n := m.pendingRelocates[id]
		a, live := m.rat[id]
		if !live || a.Donor != n.req.NewDonor {
			// Freed, reclaimed, or superseded by a newer failover.
			delete(m.pendingRelocates, id)
			continue
		}
		if m.incarnationOf(n.recipient) != n.recipientInc {
			// The recipient rebooted: its windows are gone; its own
			// reboot recovery reclaims the row.
			delete(m.pendingRelocates, id)
			continue
		}
		if !m.recipientReachable(n.recipient) {
			continue // unreachable; keep for a later sweep
		}
		raw, ok := m.EP.CallTimeout(p, n.recipient, kindRelocate, 64, n.req, m.GrantTimeout)
		if !ok {
			m.Stats.Add("recover.relocate_retry_lost", 1)
			continue
		}
		delete(m.pendingRelocates, id)
		if !raw.(*relocateResp).OK {
			// The window was released while the notice was parked: drop
			// the row and reclaim the replacement region.
			delete(m.rat, id)
			if r, ok := m.rrt[a.Donor]; ok {
				m.undoReplacement(p, r, a, a.DonorBase)
				r.IdleBytes += a.Size
			}
			m.Stats.Add("recover.raced_free", 1)
			continue
		}
		m.Stats.Add("recover.relocate_retried", 1)
	}
	for _, id := range sortedKeys(m.pendingRevokes) {
		n := m.pendingRevokes[id]
		if m.incarnationOf(n.recipient) != n.recipientInc {
			delete(m.pendingRevokes, id)
			continue
		}
		if !m.recipientReachable(n.recipient) {
			continue
		}
		if _, ok := m.EP.CallTimeout(p, n.recipient, kindRevoke, 32, n.req, m.GrantTimeout); !ok {
			m.Stats.Add("recover.revoke_retry_lost", 1)
			continue
		}
		delete(m.pendingRevokes, id)
		m.Stats.Add("recover.revoke_retried", 1)
	}
}

// recipientReachable reports whether a recovery notice to recipient is
// worth attempting. Rack-local recipients are gated on their heartbeat
// freshness; recipients outside this sub-MN's rack (delegated leases)
// never appear in the RRT, so delivery is simply attempted — their own
// rack's sub-MN owns their liveness, and an undeliverable notice just
// stays parked for the next sweep.
func (m *Monitor) recipientReachable(recipient fabric.NodeID) bool {
	if _, local := m.rrt[recipient]; !local {
		return true
	}
	return m.NodeAlive(recipient)
}

// notifyNodeDown reports a locally-detected node death (or reboot) to
// the root MN so delegated leases the node held as a recipient are
// reclaimed across the delegation boundary. No-op on flat clusters.
func (m *Monitor) notifyNodeDown(p *sim.Proc, id fabric.NodeID) {
	if !m.HasUpstream {
		return
	}
	if _, ok := m.EP.CallTimeout(p, m.Upstream, kindNodeDown, 32,
		&nodeDownReq{Rack: m.Rack, Node: id}, m.GrantTimeout); !ok {
		m.Stats.Add("recover.nodedown_lost", 1)
	}
}

// sortedKeys returns a map's int keys ascending (deterministic sweeps).
func sortedKeys[T any](mp map[int]*T) []int {
	ids := make([]int, 0, len(mp))
	for id := range mp {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// recoverNode revokes and re-places every allocation involving the
// failed node. rebooted distinguishes a node that came back with fresh
// memory (nothing to return to it later) from one presumed dead (a
// false positive still owes hot-returns if it reappears).
func (m *Monitor) recoverNode(p *sim.Proc, id fabric.NodeID, rebooted bool) {
	ids := make([]int, 0, len(m.rat))
	for aid := range m.rat {
		ids = append(ids, aid)
	}
	sort.Ints(ids)
	for _, aid := range ids {
		a, ok := m.rat[aid]
		if !ok {
			continue // removed by an earlier step of this same sweep
		}
		switch {
		case a.Recipient == id:
			m.reclaimLease(p, a, rebooted)
		case a.Donor == id && a.Kind == "memory":
			m.failoverLease(p, a, rebooted)
		case a.Donor == id:
			m.failoverDevice(p, a)
		}
	}
}

// incarnationOf reads a node's current reboot count from the RRT.
func (m *Monitor) incarnationOf(id fabric.NodeID) int64 {
	if r, ok := m.rrt[id]; ok {
		return r.Incarnation
	}
	return 0
}

// queueOrphan parks a hot-return owed to a donor that could not be
// reached — unless the donor has rebooted since inc was read, in which
// case the region died with its old life and there is nothing to
// return. (Recovery's blocking RPCs take milliseconds; a donor can
// crash AND come back fresh inside one of them.)
func (m *Monitor) queueOrphan(donor fabric.NodeID, inc int64, ret *hotReturnReq) {
	if m.incarnationOf(donor) != inc {
		m.Stats.Add("recover.orphans_obsolete", 1)
		return
	}
	m.orphans[donor] = append(m.orphans[donor], ret)
}

// reclaimLease handles an allocation whose recipient died: the donor is
// healthy, so its region returns to service.
func (m *Monitor) reclaimLease(p *sim.Proc, a *Allocation, _ bool) {
	delete(m.rat, a.ID)
	m.emitLease(LeaseRevoked, a, a.Donor)
	if a.Kind != "memory" {
		if r, ok := m.rrt[a.Donor]; ok && r.Devices != nil {
			r.Devices[a.Dev]++
		}
		m.Stats.Add("recover.devices_reclaimed", 1)
		return
	}
	inc := m.incarnationOf(a.Donor)
	ret := &hotReturnReq{
		Recipient: a.Recipient, RecipientBase: a.RecipientBase,
		Base: a.DonorBase, Size: a.Size,
	}
	if _, ok := m.EP.CallTimeout(p, a.Donor, kindHotReturn, 64, ret, m.GrantTimeout); !ok {
		m.queueOrphan(a.Donor, inc, ret)
	}
	if r, ok := m.rrt[a.Donor]; ok {
		r.IdleBytes += a.Size
	}
	m.Stats.Add("recover.reclaimed", 1)
}

// failoverLease re-places a lease whose donor died: elect a new donor
// with the active policy, hot-remove a fresh region there, swing the RAT
// row, and tell the recipient's agent to retarget the window and replay
// what was in flight. The region's contents are not migrated — nothing
// survives the donor to migrate from — so the model fits re-initializable
// uses (caches, scratch, cold tiers), which is what the serving
// scenarios lease remote memory for.
func (m *Monitor) failoverLease(p *sim.Proc, a *Allocation, rebooted bool) {
	t0 := m.EP.Eng.Now()
	oldDonor, oldBase := a.Donor, a.DonorBase
	oldInc := m.incarnationOf(oldDonor)
	for _, cand := range m.donorCandidates(a.Recipient, nil) {
		if cand.Node == oldDonor || !m.NodeAlive(cand.Node) {
			continue
		}
		// A donor whose RRT idle account ran dry can still back the lease
		// from a pre-plugged spare (the spare's bytes were debited from the
		// account when they were carved).
		if cand.IdleBytes < a.Size && !m.hasSpare(cand.Node, a.Size) {
			continue
		}
		base, viaSpare, ok := m.replacementRegion(p, cand, a)
		if !ok {
			continue
		}
		// The region acquisition blocked (2 ms for a hot-remove, a round
		// trip for a spare attach); the lease can have been freed (or
		// reclaimed by another recovery step) in the meantime. If the row
		// is gone, the fresh replacement region must go straight back or
		// it leaks untracked on the new donor.
		if _, live := m.rat[a.ID]; !live {
			m.undoReplacement(p, cand, a, base)
			m.Stats.Add("recover.raced_free", 1)
			return
		}
		rel := &relocateReq{
			AllocID: a.ID, RecipientBase: a.RecipientBase, Size: a.Size,
			OldDonor: oldDonor, NewDonor: cand.Node, NewDonorBase: base,
		}
		recipientInc := m.incarnationOf(a.Recipient)
		raw, ok := m.EP.CallTimeout(p, a.Recipient, kindRelocate, 64, rel, m.GrantTimeout)
		switch {
		case !ok:
			// The notice was lost — the recipient may be mid-crash, or a
			// link flap ate the RPC. Committing the failover with the
			// recipient still aimed at the dead donor would park its
			// accesses forever, so the sweep retries until delivery, a
			// newer failover supersedes it, or the recipient's own death
			// recovery reclaims the row.
			m.pendingRelocates[a.ID] = &pendingNotice[relocateReq]{
				req: rel, recipient: a.Recipient, recipientInc: recipientInc,
			}
			m.Stats.Add("recover.relocate_lost", 1)
		case !raw.(*relocateResp).OK:
			// The recipient no longer has the window (released while the
			// relocate was in flight): drop the row and take the
			// replacement region back.
			delete(m.rat, a.ID)
			m.undoReplacement(p, cand, a, base)
			m.Stats.Add("recover.raced_free", 1)
			return
		default:
			// Delivered: any notice parked by an older failover of this
			// row is superseded.
			delete(m.pendingRelocates, a.ID)
		}
		a.Donor, a.DonorBase = cand.Node, base
		a.At = m.EP.Eng.Now()
		if !viaSpare {
			// A spare's bytes were already debited at carve time.
			cand.IdleBytes -= a.Size
		}
		if !rebooted {
			m.queueOrphan(oldDonor, oldInc, &hotReturnReq{
				Recipient: a.Recipient, RecipientBase: a.RecipientBase,
				Base: oldBase, Size: a.Size,
			})
		}
		m.Stats.Add("recover.replaced", 1)
		m.Stats.Add("recover.ns", int64(m.EP.Eng.Now().Sub(t0)))
		m.emitLease(LeaseFailedOver, a, oldDonor)
		m.notifyDelegateMoved(p, a.Deleg, a.Donor, false)
		return
	}
	// The candidate walk blocked; if the lease was freed meanwhile there
	// is nothing left to revoke (and onFreeMem owns the old donor's
	// orphan return).
	if _, live := m.rat[a.ID]; !live {
		m.Stats.Add("recover.raced_free", 1)
		return
	}
	// No surviving donor can back the window: revoke outright so the
	// recipient does not park forever on a region that no longer exists.
	delete(m.rat, a.ID)
	if !rebooted {
		m.queueOrphan(oldDonor, oldInc, &hotReturnReq{
			Recipient: a.Recipient, RecipientBase: a.RecipientBase,
			Base: oldBase, Size: a.Size,
		})
	}
	rv := &revokeReq{AllocID: a.ID, RecipientBase: a.RecipientBase, Size: a.Size}
	recipientInc := m.incarnationOf(a.Recipient)
	if _, ok := m.EP.CallTimeout(p, a.Recipient, kindRevoke, 32, rv, m.GrantTimeout); !ok {
		// Same retry contract as relocates: an undelivered revoke leaves
		// the recipient parked on a window that no longer exists.
		m.pendingRevokes[a.ID] = &pendingNotice[revokeReq]{
			req: rv, recipient: a.Recipient, recipientInc: recipientInc,
		}
		m.Stats.Add("recover.revoke_lost", 1)
	}
	m.Stats.Add("recover.revoked", 1)
	m.emitLease(LeaseRevoked, a, oldDonor)
	m.notifyDelegateMoved(p, a.Deleg, a.Donor, true)
}

// failoverDevice re-places a device lease whose donor died: elect a live
// donor with a free unit of the same kind, swing the RAT row, and
// announce the failover so the recipient's lease observer retargets its
// session and replays what was in flight (device clients own their
// replay — there is no agent-managed window to relocate). With no
// candidate the row is dropped and the lease revoked: the recipient's
// next call surfaces the loss.
func (m *Monitor) failoverDevice(p *sim.Proc, a *Allocation) {
	oldDonor := a.Donor
	for _, cand := range m.donorCandidates(a.Recipient, nil) {
		if cand.Node == oldDonor || cand.Devices[a.Dev] <= 0 || !m.NodeAlive(cand.Node) {
			continue
		}
		cand.Devices[a.Dev]--
		a.Donor = cand.Node
		a.At = m.EP.Eng.Now()
		m.Stats.Add("recover.devices_replaced", 1)
		m.emitLease(LeaseFailedOver, a, oldDonor)
		m.notifyDelegateMoved(p, a.Deleg, a.Donor, false)
		return
	}
	delete(m.rat, a.ID)
	m.Stats.Add("recover.devices_dropped", 1)
	m.emitLease(LeaseRevoked, a, oldDonor)
	m.notifyDelegateMoved(p, a.Deleg, a.Donor, true)
}

// notifyDelegateMoved tells the root MN that a delegated lease's backing
// changed (new donor after a rack-local failover) or is gone (revoked),
// keeping the root's delegation table truthful. No-op for non-delegated
// rows and on flat clusters.
func (m *Monitor) notifyDelegateMoved(p *sim.Proc, deleg int, donor fabric.NodeID, gone bool) {
	if deleg == 0 || !m.HasUpstream {
		return
	}
	if _, ok := m.EP.CallTimeout(p, m.Upstream, kindDelegateMoved, 32,
		&delegateMovedReq{DelegID: deleg, Donor: donor, Gone: gone}, m.GrantTimeout); !ok {
		m.Stats.Add("recover.delegatemoved_lost", 1)
	}
}

// undoReplacement returns a replacement region that lost its race with a
// concurrent free back to the donor it was just carved from.
func (m *Monitor) undoReplacement(p *sim.Proc, cand *Registration, a *Allocation, base uint64) {
	inc := m.incarnationOf(cand.Node)
	ret := &hotReturnReq{
		Recipient: a.Recipient, RecipientBase: a.RecipientBase,
		Base: base, Size: a.Size,
	}
	if _, ok := m.EP.CallTimeout(p, cand.Node, kindHotReturn, 64, ret, m.GrantTimeout); !ok {
		m.queueOrphan(cand.Node, inc, ret)
	}
}

// flushOrphans settles hot-returns owed to a donor that reappeared
// without having rebooted: the MN declared it dead and moved its leases,
// but its regions are still hot-removed and exported.
func (m *Monitor) flushOrphans(p *sim.Proc, id fabric.NodeID) {
	rets := m.orphans[id]
	if len(rets) == 0 {
		return
	}
	delete(m.orphans, id)
	for _, ret := range rets {
		if _, ok := m.EP.CallTimeout(p, id, kindHotReturn, 64, ret, m.GrantTimeout); !ok {
			// Unreachable again; requeue for the next reappearance.
			m.orphans[id] = append(m.orphans[id], ret)
			continue
		}
		m.Stats.Add("recover.orphan_returns", 1)
	}
}
