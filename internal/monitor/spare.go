package monitor

import (
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Spare-region pools: the MN keeps a small number of regions per donor
// already hot-removed from the donor's OS but not exported to anyone.
// Failover (and migration) then back a lease by attaching a parked
// spare — a single round trip — instead of paying the ~2 ms hot-plug
// that otherwise dominates recovery time. Pools are provisioned
// asynchronously off every grant and recovery sweep, so the carve cost
// never sits on a request's critical path; the donor's RRT idle account
// is debited at carve time, and entries are invalidated by donor death
// or reboot (a power cycle returns the carved memory to the donor's own
// OS, so the MN's entry is the only thing that needs cleanup).

// spareRegion is one parked region in a donor's pool. inc pins the
// donor incarnation that carved it: a reboot since then means the
// region no longer exists.
type spareRegion struct {
	base, size uint64
	inc        int64
}

// EnableSparePool turns on spare-region pools: perDonor regions of
// regionSize bytes are kept pre-plugged on every donor with idle memory
// to spare. Call before the scenario's failure window opens; pools fill
// asynchronously from the next grant or recovery sweep.
func (m *Monitor) EnableSparePool(regionSize uint64, perDonor int) {
	if regionSize == 0 || perDonor <= 0 {
		panic("monitor: EnableSparePool needs a positive region size and count")
	}
	m.sparePoolOn = true
	m.spareSize = regionSize
	m.sparePer = perDonor
	m.topUpSpares()
}

// EnableAdaptiveSparePool turns on spare-region pools whose per-donor
// depth tracks the measured crash rate: the pool starts at minPer
// regions per donor and the recovery sweep rescales it between minPer
// and maxPer from an EWMA of the crashes (deaths + reboot recoveries)
// each sweep observes. Quiet fleets keep only the floor carved;
// crash-heavy windows ramp toward the ceiling and decay back once the
// fleet settles. Requires StartRecovery for the sizing to ever adapt.
func (m *Monitor) EnableAdaptiveSparePool(regionSize uint64, minPer, maxPer int) {
	if maxPer < minPer {
		panic("monitor: EnableAdaptiveSparePool needs maxPer >= minPer")
	}
	m.EnableSparePool(regionSize, minPer)
	m.spareAdaptive = true
	m.spareMin = minPer
	m.spareMax = maxPer
	m.spareLastCrash = m.crashCount()
}

// crashCount totals the crash events the recovery plane has recorded.
func (m *Monitor) crashCount() int64 {
	return m.Stats.Get("recover.deaths") + m.Stats.Get("recover.reboot_recoveries")
}

// adaptSpares rescales the per-donor pool depth from this sweep's crash
// delta, smoothed by an EWMA so one bad sweep does not thrash the carve
// machinery and a quiet stretch decays the depth gradually. Runs from
// the recovery sweep, just before top-up.
func (m *Monitor) adaptSpares() {
	if !m.spareAdaptive {
		return
	}
	crashes := m.crashCount()
	delta := crashes - m.spareLastCrash
	m.spareLastCrash = crashes
	const alpha = 0.5
	m.spareCrashEWMA = alpha*float64(delta) + (1-alpha)*m.spareCrashEWMA
	per := m.spareMin + int(m.spareCrashEWMA+0.5)
	if per > m.spareMax {
		per = m.spareMax
	}
	if per != m.sparePer {
		m.sparePer = per
		m.Stats.Add("spare.resized", 1)
	}
}

// SpareCount reports how many spares are currently parked on a donor
// (provisioned and not yet consumed; in-flight carves excluded).
func (m *Monitor) SpareCount(donor fabric.NodeID) int { return len(m.spares[donor]) }

// hasSpare reports whether donor holds a parked spare usable for a
// size-byte lease right now.
func (m *Monitor) hasSpare(donor fabric.NodeID, size uint64) bool {
	cur := m.incarnationOf(donor)
	for _, sp := range m.spares[donor] {
		if sp.size == size && sp.inc == cur {
			return true
		}
	}
	return false
}

// takeSpare pops a parked spare of exactly size bytes from donor's
// pool, dropping entries invalidated by a reboot along the way.
func (m *Monitor) takeSpare(donor fabric.NodeID, size uint64) (spareRegion, bool) {
	pool := m.spares[donor]
	cur := m.incarnationOf(donor)
	for i, sp := range pool {
		if sp.inc != cur {
			continue // stale; pruneSpares collects it
		}
		if sp.size == size {
			m.spares[donor] = append(pool[:i:i], pool[i+1:]...)
			return sp, true
		}
	}
	return spareRegion{}, false
}

// pruneSpares drops pool entries whose donor died or rebooted: the
// regions died with the donor's old life, so only the MN's bookkeeping
// (and nothing on the wire) needs to change.
func (m *Monitor) pruneSpares() {
	if !m.sparePoolOn {
		return
	}
	for donor, pool := range m.spares {
		cur := m.incarnationOf(donor)
		alive := m.NodeAlive(donor)
		kept := pool[:0]
		for _, sp := range pool {
			if alive && sp.inc == cur {
				kept = append(kept, sp)
			} else {
				m.Stats.Add("spare.pruned", 1)
			}
		}
		if len(kept) == 0 {
			delete(m.spares, donor)
		} else {
			m.spares[donor] = kept
		}
	}
}

// topUpSpares launches asynchronous carves until every eligible donor's
// pool (parked + in flight) is at the configured depth. It never
// blocks: callers sit on grant and recovery paths.
func (m *Monitor) topUpSpares() {
	if !m.sparePoolOn {
		return
	}
	ids := make([]fabric.NodeID, 0, len(m.rrt))
	for id := range m.rrt {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := m.rrt[id]
		if !m.NodeAlive(id) {
			continue
		}
		for len(m.spares[id])+m.sparePending[id] < m.sparePer && r.IdleBytes >= m.spareSize {
			// Debit the idle account up front so concurrent walks do not
			// over-commit the donor; the next heartbeat reconciles it with
			// the agent's ground truth either way.
			r.IdleBytes -= m.spareSize
			m.carveSpare(id)
		}
	}
}

// carveSpare asks one donor's agent — in a fresh proc, off every
// critical path — to hot-remove and park one spare region.
func (m *Monitor) carveSpare(donor fabric.NodeID) {
	m.sparePending[donor]++
	inc := m.incarnationOf(donor)
	m.EP.Eng.Go("mn-spare", func(p *sim.Proc) {
		defer func() { m.sparePending[donor]-- }()
		raw, ok := m.EP.CallTimeout(p, donor, kindSpareCarve, 32,
			&spareCarveReq{Size: m.spareSize}, m.GrantTimeout)
		if !ok {
			// Outcome unknown (donor died mid-carve). Unlike a grant there
			// is no recipient key to cancel by; if the donor comes back
			// un-rebooted its parked region is unreachable garbage until
			// the next reboot. Accept the leak bound (perDonor regions) and
			// let the heartbeat's idle refresh re-sync the account.
			m.Stats.Add("spare.carve_lost", 1)
			return
		}
		resp := raw.(*spareCarveResp)
		if !resp.OK {
			m.Stats.Add("spare.carve_declined", 1)
			return
		}
		if m.incarnationOf(donor) != inc {
			// The donor rebooted while the carve was in flight: the region
			// is gone (reboot wipes parked spares with everything else).
			m.Stats.Add("spare.carve_obsolete", 1)
			return
		}
		m.spares[donor] = append(m.spares[donor], spareRegion{base: resp.Base, size: m.spareSize, inc: inc})
		m.Stats.Add("spare.carved", 1)
	})
}

// replacementRegion acquires a region on cand to back lease a: the
// spare-attach fast path when a parked spare matches, the ordinary
// hot-remove otherwise. It owns the same lost-ACK bookkeeping as the
// grant path; viaSpare tells the caller whether cand's idle account was
// already debited (at carve time).
func (m *Monitor) replacementRegion(p *sim.Proc, cand *Registration, a *Allocation) (base uint64, viaSpare, ok bool) {
	if sp, found := m.takeSpare(cand.Node, a.Size); found {
		att := &spareAttachReq{
			Base: sp.base, Size: sp.size,
			Recipient: a.Recipient, RecipientBase: a.RecipientBase,
		}
		inc := m.incarnationOf(cand.Node)
		raw, delivered := m.EP.CallTimeout(p, cand.Node, kindSpareAttach, 64, att, m.GrantTimeout)
		switch {
		case !delivered:
			// The donor died mid-attach and the export may or may not have
			// been installed: park a key-resolved cancellation, same as a
			// lost hot-remove ACK.
			m.Stats.Add("recover.grant_timeouts", 1)
			m.queueOrphan(cand.Node, inc, &hotReturnReq{Recipient: a.Recipient, RecipientBase: a.RecipientBase})
			cand.IdleBytes = 0
			return 0, false, false
		case raw.(*spareAttachResp).OK:
			m.Stats.Add("recover.spare_attached", 1)
			m.topUpSpares() // replace the consumed spare asynchronously
			return sp.base, true, true
		default:
			// The agent no longer holds the region (rebooted since the
			// carve, faster than our bookkeeping noticed): fall through to
			// an ordinary hot-remove on the same candidate.
			m.Stats.Add("recover.spare_stale", 1)
		}
	}
	hr := &hotRemoveReq{Size: a.Size, Recipient: a.Recipient, RecipientBase: a.RecipientBase}
	inc := m.incarnationOf(cand.Node)
	raw, delivered := m.EP.CallTimeout(p, cand.Node, kindHotRemove, 64, hr, m.GrantTimeout)
	if !delivered {
		// Same lost-ACK uncertainty as the grant path: park a key-resolved
		// cancellation so a performed-but-unacked hot-remove cannot leak
		// the candidate's region.
		m.Stats.Add("recover.grant_timeouts", 1)
		m.queueOrphan(cand.Node, inc, &hotReturnReq{Recipient: a.Recipient, RecipientBase: a.RecipientBase})
		cand.IdleBytes = 0
		return 0, false, false
	}
	resp := raw.(*hotRemoveResp)
	if !resp.OK {
		m.Stats.Add("recover.retries", 1)
		cand.IdleBytes = 0
		return 0, false, false
	}
	return resp.Base, false, true
}
