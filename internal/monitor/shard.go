package monitor

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/transport"
)

// This file is the sharded monitor plane that scales the §5.3 runtime
// past one rack. The paper's prototype runs a single Monitor Node for
// its 8-node mesh; a multi-rack fabric (fabric.RackSpine) instead runs
// one sub-MN per rack — an ordinary Monitor owning its rack's leases,
// heartbeats, and recovery sweep — plus a root MN that sees only
// rack-granularity state. Sub-MNs report aggregate idle memory and
// liveness on a slow "rackbeat"; when a rack is memory-starved (or a
// request carries ScopeRemoteRack), its sub-MN escalates to the root,
// which elects a donor rack and delegates the grant to that rack's
// sub-MN. Recovery composes across the delegation boundary:
//
//   - donor died         -> donor rack's own sweep re-places the lease
//     (rack-local)          locally and relocates the remote recipient
//     (failoverLease); the root learns via delegateMoved.
//   - recipient died     -> the recipient rack's sweep notifies the root
//     (cross-rack)          (nodeDown), which reclaims the delegated
//     region through the donor rack's sub-MN.
//   - sub-MN died        -> the root's own sweep notices the missed
//     (control plane)       rackbeats and re-delegates every lease the
//     dead rack was donating: a fresh grant in a surviving
//     rack, then the same relocate+replay path the
//     recipients' agents already implement (PR 3), so
//     in-flight accesses complete instead of being lost.

// RackStatus is one row of the root MN's rack registry — the
// rack-granularity analogue of a Registration.
type RackStatus struct {
	Rack      int
	Sub       fabric.NodeID
	IdleBytes uint64
	Live      int
	LastBeat  sim.Time
	Beats     int64
	Dead      bool
	// MaxUtil/HasUtil carry the rack's aggregated telemetry: the hottest
	// windowed link utilization any of its agents reported (absent until
	// telemetry-enabled agents beat).
	MaxUtil float64
	HasUtil bool
	// Devices is the rack's aggregate free device units per kind, as of
	// the last rackbeat (nil when the rack advertises none).
	Devices map[DeviceKind]int
}

// Delegation is one row of the root MN's delegation table: a lease
// whose donor and recipient live in different racks. The donor rack's
// sub-MN holds the authoritative RAT row (SubAllocID); the root holds
// the rack-level indirection needed to free, reclaim, and re-delegate.
type Delegation struct {
	ID            int
	DonorRack     int
	RecipientRack int
	SubAllocID    int
	Donor         fabric.NodeID
	Recipient     fabric.NodeID
	RecipientBase uint64
	Size          uint64
	At            sim.Time
	Latency       bool          // latency-sensitive class, preserved across re-delegation
	Trace         uint64        // lease trace id, preserved across re-delegation
	Tenant        uint64        // owning tenant, preserved across re-delegation
	Class         tenancy.Class // tenant priority class, preserved across re-delegation
	// Kind is "memory" or a DeviceKind name; Dev is valid for device
	// delegations. Device delegations have Size 1 (one unit) and carry
	// the recipient sub-MN's pre-minted alloc id in RecipientBase.
	Kind string
	Dev  DeviceKind
}

// Root is the root Monitor Node of a sharded plane. It brokers nothing
// node-granular: its registry has one row per rack and its allocation
// table one row per cross-rack delegation, so its load scales with
// racks and cross-rack traffic, not with nodes.
type Root struct {
	EP *transport.Endpoint

	// RackBeatTimeout declares a sub-MN (and with it the rack's control
	// plane) dead when its rackbeats stop.
	RackBeatTimeout sim.Dur
	// SweepInterval is the root recovery loop's scan period; it defaults
	// to half the rackbeat timeout.
	SweepInterval sim.Dur
	// GrantTimeout bounds one RPC into a sub-MN or an agent. A delegate
	// call wraps a whole donor walk on the sub, so delegation calls use a
	// small multiple of it.
	GrantTimeout sim.Dur

	racks       map[int]*RackStatus
	dels        map[int]*Delegation
	nextDelegID int
	sweepOn     bool

	// tombs parks, per declared-dead rack, the sub-MN RAT row ids whose
	// leases were re-delegated (or revoked) out from under it. A rack
	// whose death was a false positive comes back with those rows — and
	// their carved-out regions — intact; flushing the tombstones as
	// delegate-frees on reappearance reconciles the stale sub-MN with
	// the re-delegated truth and un-leaks the regions.
	tombs map[int][]int
	// cancels parks, per rack, delegation ids whose delegate call timed
	// out there: the sub may have granted and lost the response, leaving
	// a row (and region) nobody tracks. The sweep delivers key-resolved
	// cancellations when the rack is reachable.
	cancels map[int][]int
	// cancelled records borrow cancellations that arrived while their
	// election was still in flight (possible if a sub's patience is
	// configured under the root's worst case): the election's success
	// path consults it and unwinds instead of recording a delegation the
	// canceller will never free.
	cancelled map[borrowKey]bool

	// pendingRel / pendingRev park undelivered relocate/revoke notices
	// from re-delegations, retried each sweep — the same
	// never-strand-a-recipient contract the sub-MN sweeps keep.
	pendingRel map[int]*relocateReq
	pendingRev map[int]*parkedRevoke

	// Stats counts root activity (borrows, delegations, re-delegations,
	// reclaims).
	Stats sim.Scoreboard

	// observers receive lease-lifecycle events for cross-rack
	// re-delegations and reclaims (see events.go).
	observers leaseObservers
}

// NewRoot starts a root MN on the given endpoint (typically a spine
// switch's).
func NewRoot(ep *transport.Endpoint) *Root {
	rt := &Root{
		EP:              ep,
		RackBeatTimeout: 3 * sim.Second,
		GrantTimeout:    10*ep.P.HotplugOp + sim.Millisecond,
		racks:           make(map[int]*RackStatus),
		dels:            make(map[int]*Delegation),
		nextDelegID:     1,
		pendingRel:      make(map[int]*relocateReq),
		pendingRev:      make(map[int]*parkedRevoke),
		tombs:           make(map[int][]int),
		cancels:         make(map[int][]int),
		cancelled:       make(map[borrowKey]bool),
	}
	ep.HandleCall(kindRackBeat, rt.onRackBeat)
	ep.HandleCall(kindRackBorrow, rt.onRackBorrow)
	ep.HandleCall(kindRackFree, rt.onRackFree)
	ep.HandleCall(kindNodeDown, rt.onNodeDown)
	ep.HandleCall(kindDelegateMoved, rt.onDelegateMoved)
	ep.HandleCall(kindBorrowCancel, rt.onBorrowCancel)
	return rt
}

// Node reports the root MN's node id.
func (rt *Root) Node() fabric.NodeID { return rt.EP.ID }

// RackStatusOf reports a copy of a rack's registry row.
func (rt *Root) RackStatusOf(rack int) (RackStatus, bool) {
	rs, ok := rt.racks[rack]
	if !ok {
		return RackStatus{}, false
	}
	return *rs, true
}

// RackAlive reports whether rackbeats from rack are recent.
func (rt *Root) RackAlive(rack int) bool {
	rs, ok := rt.racks[rack]
	if !ok {
		return false
	}
	return !rs.Dead && rs.Beats > 0 && rt.EP.Eng.Now().Sub(rs.LastBeat) <= rt.RackBeatTimeout
}

// Delegations returns the live delegation rows, ordered by id.
func (rt *Root) Delegations() []Delegation {
	ids := make([]int, 0, len(rt.dels))
	for id := range rt.dels {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Delegation, 0, len(ids))
	for _, id := range ids {
		out = append(out, *rt.dels[id])
	}
	return out
}

// onRackBeat folds a sub-MN's rack-level report into the registry.
func (rt *Root) onRackBeat(_ *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	b := req.(*rackBeat)
	rs, ok := rt.racks[b.Rack]
	if !ok {
		rs = &RackStatus{Rack: b.Rack}
		rt.racks[b.Rack] = rs
	}
	if rs.Dead {
		// The rack's control plane reappeared. Anything it was donating
		// was re-delegated (or revoked) while it was gone; if the death
		// was a false positive the sub still holds those RAT rows and
		// their regions, so flush the parked tombstones as
		// delegate-frees to reconcile it. A genuinely rebooted sub
		// answers them as stale no-ops.
		rs.Dead = false
		rt.Stats.Add("root.rack_reappeared", 1)
		rt.flushTombstones(b.Rack, b.Sub)
	}
	rs.Sub = b.Sub
	rs.IdleBytes = b.IdleBytes
	rs.Live = b.Live
	rs.Devices = b.Devices
	rs.MaxUtil, rs.HasUtil = b.MaxUtil, b.HasUtil
	rs.LastBeat = rt.EP.Eng.Now()
	rs.Beats++
	rt.Stats.Add("root.rackbeats", 1)
	return &ack{}, 8
}

// donorRacks orders candidate donor racks for a request from exclude:
// live racks with enough aggregate idle memory. With rack telemetry the
// coolest rack wins first (a saturated rack fabric makes a poor donor
// no matter how much memory idles behind it); without it — including
// every telemetry-off configuration, byte-identically — most-idle
// first. Rack id breaks ties, keeping elections deterministic.
func (rt *Root) donorRacks(exclude int, size uint64) []*RackStatus {
	var cands []*RackStatus
	for _, rs := range rt.racks {
		if rs.Rack == exclude || !rt.RackAlive(rs.Rack) || rs.IdleBytes < size {
			continue
		}
		cands = append(cands, rs)
	}
	util := func(rs *RackStatus) float64 {
		if rs.HasUtil {
			return rs.MaxUtil
		}
		return 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if ui, uj := util(cands[i]), util(cands[j]); ui != uj {
			return ui < uj
		}
		if cands[i].IdleBytes != cands[j].IdleBytes {
			return cands[i].IdleBytes > cands[j].IdleBytes
		}
		return cands[i].Rack < cands[j].Rack
	})
	return cands
}

// donorRacksDev is donorRacks for device borrows: live racks advertising
// free units of kind, coolest first, then most-units, then rack id.
func (rt *Root) donorRacksDev(exclude int, kind DeviceKind) []*RackStatus {
	var cands []*RackStatus
	for _, rs := range rt.racks {
		if rs.Rack == exclude || !rt.RackAlive(rs.Rack) || rs.Devices[kind] <= 0 {
			continue
		}
		cands = append(cands, rs)
	}
	util := func(rs *RackStatus) float64 {
		if rs.HasUtil {
			return rs.MaxUtil
		}
		return 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if ui, uj := util(cands[i]), util(cands[j]); ui != uj {
			return ui < uj
		}
		if cands[i].Devices[kind] != cands[j].Devices[kind] {
			return cands[i].Devices[kind] > cands[j].Devices[kind]
		}
		return cands[i].Rack < cands[j].Rack
	})
	return cands
}

// delegateTimeout bounds one delegate call: the sub's donor walk can
// itself burn a few GrantTimeouts on dying candidates.
func (rt *Root) delegateTimeout() sim.Dur { return 3 * rt.GrantTimeout }

// rootBorrowCandidates caps how many racks one borrow election may try.
// The cap keeps the root's worst case (rootBorrowCandidates delegate
// calls) strictly inside the requesting sub-MN's borrowTimeout, so a
// sub that gives up can trust that the root's walk has finished — the
// property the escalation cancellation (cancelBorrow) relies on.
const rootBorrowCandidates = 2

// delegateTo asks one rack's sub-MN to back a delegation, keeping the
// registry's idle-byte account. Shared by the borrow election and
// rack-death re-delegation so decline/timeout handling cannot drift
// between them.
func (rt *Root) delegateTo(p *sim.Proc, rs *RackStatus, req *delegateReq) (*delegateResp, bool) {
	raw, ok := rt.EP.CallTimeout(p, rs.Sub, kindDelegate, 64, req, rt.delegateTimeout())
	drain := func() {
		if req.Device {
			if rs.Devices != nil {
				rs.Devices[req.Dev] = 0
			}
		} else {
			rs.IdleBytes = 0
		}
	}
	if !ok {
		// The sub may have granted and lost the response; park a
		// key-resolved cancellation so the orphaned row (and region)
		// cannot leak, and so the next candidate's row under the same
		// delegation id never coexists with this one.
		rt.Stats.Add("root.delegate_timeouts", 1)
		rt.cancels[rs.Rack] = append(rt.cancels[rs.Rack], req.DelegID)
		drain()
		return nil, false
	}
	resp := raw.(*delegateResp)
	if !resp.OK {
		rt.Stats.Add("root.delegate_declines", 1)
		drain()
		return nil, false
	}
	if req.Device {
		rs.Devices[req.Dev]--
	} else {
		rs.IdleBytes -= req.Size
	}
	return resp, true
}

// onRackBorrow services a sub-MN's escalation: elect a donor rack and
// delegate the grant to its sub-MN. Like the node-level walk, rack
// registry rows can be stale, so a declining rack is marked drained and
// the next candidate tried, up to the rootBorrowCandidates bound.
func (rt *Root) onRackBorrow(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	r := req.(*rackBorrowReq)
	rt.Stats.Add("root.borrows", 1)
	key := borrowKey{recipient: r.Recipient, base: r.WindowBase}
	id := rt.nextDelegID
	rt.nextDelegID++
	kind := "memory"
	cands := rt.donorRacks(r.Rack, r.Size)
	if r.Device {
		kind = r.Dev.String()
		cands = rt.donorRacksDev(r.Rack, r.Dev)
	}
	for tried, rs := range cands {
		if tried >= rootBorrowCandidates {
			break
		}
		resp, ok := rt.delegateTo(p, rs, &delegateReq{
			DelegID: id, Recipient: r.Recipient, Size: r.Size, WindowBase: r.WindowBase,
			Policy: r.Policy, Latency: r.Latency, Trace: r.Trace,
			Tenant: r.Tenant, Class: r.Class, Device: r.Device, Dev: r.Dev,
		})
		if !ok {
			continue
		}
		d := &Delegation{
			ID: id, DonorRack: rs.Rack, RecipientRack: r.Rack,
			SubAllocID: resp.AllocID, Donor: resp.Donor,
			Recipient: r.Recipient, RecipientBase: r.WindowBase,
			Size: r.Size, At: rt.EP.Eng.Now(), Latency: r.Latency, Trace: r.Trace,
			Tenant: r.Tenant, Class: r.Class,
			Kind: kind, Dev: r.Dev,
		}
		if rt.cancelled[key] {
			// The requesting sub gave up and cancelled while this
			// election was still in flight (delegateTo blocks for
			// milliseconds): nobody will ever free this grant, so unwind
			// it instead of recording it.
			delete(rt.cancelled, key)
			rt.freeBacking(p, d)
			rt.Stats.Add("root.borrows_cancelled", 1)
			return &rackBorrowResp{OK: false, Err: "borrow cancelled by requester"}, 64
		}
		rt.dels[id] = d
		rt.Stats.Add("root.delegated", 1)
		return &rackBorrowResp{OK: true, DelegID: id, Donor: resp.Donor, DonorBase: resp.DonorBase}, 64
	}
	delete(rt.cancelled, key) // a failed election has nothing to cancel
	rt.Stats.Add("root.borrow_failures", 1)
	if r.Device {
		return &rackBorrowResp{OK: false, Err: "no rack with a free " + r.Dev.String()}, 64
	}
	return &rackBorrowResp{OK: false, Err: fmt.Sprintf("no rack with %d idle bytes", r.Size)}, 64
}

// onBorrowCancel services a sub-MN whose escalation timed out: if the
// borrow did complete at the root (the response was lost, or the
// election outlasted the sub's patience), the orphaned delegation —
// which no sub-MN holds a mapping for — is torn down. The window base
// identifies it: hot-plug windows are never reused per recipient.
func (rt *Root) onBorrowCancel(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	c := req.(*borrowCancelReq)
	matched := false
	for _, id := range sortedKeys(rt.dels) {
		d, ok := rt.dels[id]
		if !ok || d.Recipient != c.Recipient || d.RecipientBase != c.RecipientBase {
			continue
		}
		// Device delegations key on a pre-minted alloc id, memory ones on
		// a window base; never let one kind's cancel tear the other down.
		if (d.Kind != "" && d.Kind != "memory") != c.Device {
			continue
		}
		delete(rt.dels, id)
		delete(rt.pendingRel, id)
		delete(rt.pendingRev, id)
		rt.freeBacking(p, d)
		rt.Stats.Add("root.borrows_cancelled", 1)
		matched = true
	}
	if !matched {
		// The election may still be in flight (a sub whose patience was
		// configured under the root's worst case): leave a mark so its
		// success path unwinds instead of recording an unfreeable grant.
		rt.cancelled[borrowKey{recipient: c.Recipient, base: c.RecipientBase}] = true
	}
	return &ack{}, 8
}

// borrowKey identifies one borrow by its recipient-unique window.
type borrowKey struct {
	recipient fabric.NodeID
	base      uint64
}

// onRackFree releases a delegated lease: tear down the donor-rack
// backing through its sub-MN and drop the delegation row.
func (rt *Root) onRackFree(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	f := req.(*rackFreeReq)
	d, ok := rt.dels[f.DelegID]
	if !ok {
		return &ack{}, 8
	}
	delete(rt.dels, f.DelegID)
	delete(rt.pendingRel, f.DelegID)
	delete(rt.pendingRev, f.DelegID)
	rt.freeBacking(p, d)
	rt.Stats.Add("root.freed", 1)
	return &ack{}, 8
}

// freeBacking asks a delegation's donor rack to tear down its backing
// region. With the donor rack's control plane dead there is no one to
// ask: the region stays carved out until that rack's sub-MN returns —
// the documented leak window of a rack-level control-plane outage.
func (rt *Root) freeBacking(p *sim.Proc, d *Delegation) {
	rs, ok := rt.racks[d.DonorRack]
	if !ok || !rt.RackAlive(d.DonorRack) {
		rt.Stats.Add("root.free_leaked", 1)
		return
	}
	if _, ok := rt.EP.CallTimeout(p, rs.Sub, kindDelegateFree, 32,
		&delegateFreeReq{AllocID: d.SubAllocID}, rt.delegateTimeout()); !ok {
		rt.Stats.Add("root.free_leaked", 1)
	}
}

// onNodeDown services a sub-MN's death notice: delegated leases the dead
// node held as a recipient are reclaimed to their donor racks (the
// cross-rack mirror of reclaimLease).
func (rt *Root) onNodeDown(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	n := req.(*nodeDownReq)
	for _, id := range sortedKeys(rt.dels) {
		// Re-check liveness on every iteration: freeBacking blocks, and a
		// concurrent handler (an in-flight free, a delegateMoved) can
		// delete a later id meanwhile.
		d, ok := rt.dels[id]
		if !ok || d.Recipient != n.Node {
			continue
		}
		delete(rt.dels, id)
		delete(rt.pendingRel, id)
		delete(rt.pendingRev, id)
		rt.freeBacking(p, d)
		rt.Stats.Add("root.reclaimed", 1)
		rt.emitDelegation(LeaseRevoked, d, d.Donor)
	}
	return &ack{}, 8
}

// onDelegateMoved keeps the delegation table truthful when a donor
// rack's own recovery sweep re-placed (or revoked) a delegated lease.
func (rt *Root) onDelegateMoved(_ *sim.Proc, from fabric.NodeID, req any) (any, int) {
	mv := req.(*delegateMovedReq)
	d, ok := rt.dels[mv.DelegID]
	if !ok {
		return &ack{}, 8
	}
	// Only the current donor rack's sub-MN speaks for the delegation: a
	// stale row elsewhere (a lost delegate response awaiting its parked
	// cancellation, or a reappeared rack awaiting tombstones) must not
	// overwrite the re-delegated truth.
	if rs, ok := rt.racks[d.DonorRack]; !ok || rs.Sub != from {
		rt.Stats.Add("root.delegate_moved_stale", 1)
		return &ack{}, 8
	}
	if mv.Gone {
		delete(rt.dels, mv.DelegID)
		delete(rt.pendingRel, mv.DelegID)
		delete(rt.pendingRev, mv.DelegID)
		rt.Stats.Add("root.delegate_revoked", 1)
		return &ack{}, 8
	}
	d.Donor = mv.Donor
	d.At = rt.EP.Eng.Now()
	rt.Stats.Add("root.delegate_moved", 1)
	return &ack{}, 8
}

// flushTombstones asks a reappeared rack's sub-MN to tear down the RAT
// rows whose leases moved elsewhere while it was presumed dead. Runs in
// its own process so the rackbeat handler never blocks on it;
// undeliverable tombstones re-park for the rack's next reappearance.
func (rt *Root) flushTombstones(rack int, sub fabric.NodeID) {
	ids := rt.tombs[rack]
	if len(ids) == 0 {
		return
	}
	delete(rt.tombs, rack)
	rt.EP.Eng.Go(fmt.Sprintf("root-tombs-rack%d", rack), func(p *sim.Proc) {
		for _, id := range ids {
			if _, ok := rt.EP.CallTimeout(p, sub, kindDelegateFree, 32,
				&delegateFreeReq{AllocID: id}, rt.delegateTimeout()); !ok {
				rt.tombs[rack] = append(rt.tombs[rack], id)
				continue
			}
			rt.Stats.Add("root.tombstones_flushed", 1)
		}
	})
}

// StartRecovery launches the root's rack-level failure-detection loop.
// Like Monitor.StartRecovery, the loop keeps the event queue alive
// forever; drive such engines with RunFor or step-until-done.
func (rt *Root) StartRecovery() {
	if rt.sweepOn {
		return
	}
	rt.sweepOn = true
	interval := rt.SweepInterval
	if interval <= 0 {
		interval = rt.RackBeatTimeout / 2
		if interval <= 0 {
			interval = sim.Second
		}
	}
	rt.EP.Eng.Go("root-mn-recovery", func(p *sim.Proc) {
		for rt.sweepOn {
			p.Sleep(interval)
			rt.sweep(p)
		}
	})
}

// StopRecovery ends the root loop after the current sweep.
func (rt *Root) StopRecovery() { rt.sweepOn = false }

// sweep runs one rack-level detection pass, in rack order.
func (rt *Root) sweep(p *sim.Proc) {
	racks := make([]int, 0, len(rt.racks))
	for r := range rt.racks {
		racks = append(racks, r)
	}
	sort.Ints(racks)
	for _, r := range racks {
		rs := rt.racks[r]
		if !rs.Dead && rs.Beats > 0 && rt.EP.Eng.Now().Sub(rs.LastBeat) > rt.RackBeatTimeout {
			rs.Dead = true
			rt.Stats.Add("root.rack_deaths", 1)
			rt.redelegateRack(p, r)
		}
	}
	rt.retryPending(p)
	rt.flushCancels(p)
}

// flushCancels delivers parked delegate cancellations to racks that are
// reachable again, in rack then queue order; undeliverable ones stay
// parked for the next sweep.
func (rt *Root) flushCancels(p *sim.Proc) {
	racks := make([]int, 0, len(rt.cancels))
	for r := range rt.cancels {
		racks = append(racks, r)
	}
	sort.Ints(racks)
	for _, r := range racks {
		if !rt.RackAlive(r) {
			continue
		}
		sub := rt.racks[r].Sub
		ids := rt.cancels[r]
		delete(rt.cancels, r)
		for i, id := range ids {
			// A later re-delegation can legitimately land this delegation
			// back in the rack whose earlier attempt timed out; the parked
			// cancel is then aimed at the live backing and must be dropped.
			if d, live := rt.dels[id]; live && d.DonorRack == r {
				rt.Stats.Add("root.cancels_obsolete", 1)
				continue
			}
			if _, ok := rt.EP.CallTimeout(p, sub, kindDelegateCancel, 32,
				&delegateCancelReq{DelegID: id}, rt.delegateTimeout()); !ok {
				rt.cancels[r] = append(rt.cancels[r], ids[i:]...)
				break
			}
			rt.Stats.Add("root.delegates_cancelled", 1)
		}
	}
}

// redelegateRack moves every lease the dead rack was donating onto a
// surviving rack: a fresh delegated grant there, then the recipients'
// agents retarget their windows and replay what was in flight — the
// same relocate machinery rack-local failover uses, driven one level
// up. Leases the dead rack's nodes hold as recipients are left to that
// rack's own sub-MN (it owns those rows and may just be partitioned).
func (rt *Root) redelegateRack(p *sim.Proc, dead int) {
	for _, id := range sortedKeys(rt.dels) {
		d, ok := rt.dels[id]
		if !ok || d.DonorRack != dead {
			continue
		}
		// Whatever happens next, the dead rack's backing region stays
		// carved out of its donor; leave a tombstone so a reappearing
		// (falsely-dead) sub-MN drops the stale row and hot-returns the
		// region instead of diverging from the re-delegated truth.
		rt.tombs[dead] = append(rt.tombs[dead], d.SubAllocID)
		oldDonor := d.Donor
		device := d.Kind != "" && d.Kind != "memory"
		moved := false
		cands := rt.donorRacks(dead, d.Size)
		if device {
			cands = rt.donorRacksDev(dead, d.Dev)
		}
		for _, rs := range cands {
			resp, ok := rt.delegateTo(p, rs, &delegateReq{
				DelegID: d.ID, Recipient: d.Recipient, Size: d.Size, WindowBase: d.RecipientBase,
				Latency: d.Latency, Trace: d.Trace, Tenant: d.Tenant, Class: d.Class,
				Device: device, Dev: d.Dev,
			})
			if !ok {
				continue
			}
			d.DonorRack, d.Donor, d.SubAllocID = rs.Rack, resp.Donor, resp.AllocID
			d.At = rt.EP.Eng.Now()
			if !device {
				// Device leases carry no hot-plugged window: recipients
				// learn the new donor from the lease-lifecycle event and
				// replay in flight work themselves, so only memory leases
				// need the agent-level relocate.
				rel := &relocateReq{
					AllocID: d.SubAllocID, RecipientBase: d.RecipientBase, Size: d.Size,
					OldDonor: oldDonor, NewDonor: resp.Donor, NewDonorBase: resp.DonorBase,
				}
				rt.deliverRelocate(p, d, rel)
			}
			rt.Stats.Add("root.redelegated", 1)
			rt.emitDelegation(LeaseFailedOver, d, oldDonor)
			moved = true
			break
		}
		if !moved {
			// No surviving rack can back the window: revoke so the
			// recipient's parked accesses fail fast instead of waiting on
			// a region that no longer exists.
			delete(rt.dels, d.ID)
			if !device {
				rv := &revokeReq{AllocID: d.SubAllocID, RecipientBase: d.RecipientBase, Size: d.Size}
				if _, ok := rt.EP.CallTimeout(p, d.Recipient, kindRevoke, 32, rv, rt.GrantTimeout); !ok {
					rt.pendingRev[d.ID] = &parkedRevoke{req: rv, to: d.Recipient}
					rt.Stats.Add("root.revoke_lost", 1)
				}
			}
			rt.Stats.Add("root.revoked", 1)
			rt.emitDelegation(LeaseRevoked, d, oldDonor)
		}
	}
}

// deliverRelocate sends a re-delegation's relocate notice to the
// recipient's agent, parking it for sweep retry when delivery fails and
// unwinding the fresh grant when the window raced a concurrent free.
func (rt *Root) deliverRelocate(p *sim.Proc, d *Delegation, rel *relocateReq) {
	raw, ok := rt.EP.CallTimeout(p, d.Recipient, kindRelocate, 64, rel, rt.GrantTimeout)
	switch {
	case !ok:
		rt.pendingRel[d.ID] = rel
		rt.Stats.Add("root.relocate_lost", 1)
	case !raw.(*relocateResp).OK:
		// The window was released while the notice was in flight: drop
		// the delegation and take the replacement backing down.
		delete(rt.dels, d.ID)
		rt.freeBacking(p, d)
		rt.Stats.Add("root.raced_free", 1)
	default:
		delete(rt.pendingRel, d.ID)
	}
}

// retryPending redelivers relocate/revoke notices whose first attempt
// was lost, in delegation-id order.
func (rt *Root) retryPending(p *sim.Proc) {
	for _, id := range sortedKeys(rt.pendingRel) {
		rel := rt.pendingRel[id]
		d, live := rt.dels[id]
		if !live || d.Donor != rel.NewDonor {
			delete(rt.pendingRel, id) // freed or superseded meanwhile
			continue
		}
		delete(rt.pendingRel, id)
		rt.deliverRelocate(p, d, rel)
	}
	for _, id := range sortedKeys(rt.pendingRev) {
		pr := rt.pendingRev[id]
		if _, ok := rt.EP.CallTimeout(p, pr.to, kindRevoke, 32, pr.req, rt.GrantTimeout); !ok {
			continue
		}
		delete(rt.pendingRev, id)
	}
}

// parkedRevoke is an undelivered revoke notice plus its addressee (the
// delegation row that knew the recipient is gone by the time a revoke
// parks).
type parkedRevoke struct {
	req *revokeReq
	to  fabric.NodeID
}

// --- sub-MN side -----------------------------------------------------

// StartRackBeat turns this Monitor into a sub-MN of the sharded plane:
// it begins reporting rack-level state (aggregate idle bytes, live node
// count) to the root MN at root, and enables escalation of requests its
// rack cannot serve. The first beat is staggered past every agent's
// first heartbeat so the initial report carries real idle figures.
func (m *Monitor) StartRackBeat(root fabric.NodeID, rack int, interval sim.Dur) {
	m.Upstream, m.HasUpstream, m.Rack = root, true, rack
	if m.rackBeatOn {
		return
	}
	m.rackBeatOn = true
	if interval <= 0 {
		interval = sim.Second
	}
	m.EP.Eng.Go(fmt.Sprintf("submn@%v-rackbeat", m.EP.ID), func(p *sim.Proc) {
		p.Sleep(sim.Dur(m.Topo.N+2+rack) * sim.Millisecond)
		for m.rackBeatOn {
			m.sendRackBeat(p, interval)
			// Parked upstream teardowns (lost frees/cancels) retry on the
			// beat, not only in the recovery sweep: the beat loop is the
			// one loop every sub-MN always runs, so a cluster without
			// recovery enabled still cannot leak a delegation forever.
			m.retryRackFrees(p)
			p.Sleep(interval)
		}
	})
}

// StopRackBeat ends the rack-level report loop after the current period
// (escalation stays enabled).
func (m *Monitor) StopRackBeat() { m.rackBeatOn = false }

// sendRackBeat sends one rack-level report to the root MN, aggregating
// the rack's telemetry (hottest reported link window) one level up so
// the root scales with racks, not links.
func (m *Monitor) sendRackBeat(p *sim.Proc, interval sim.Dur) {
	var idle uint64
	live := 0
	var devs map[DeviceKind]int
	for _, r := range m.rrt {
		if !r.Dead && m.NodeAlive(r.Node) {
			idle += r.IdleBytes
			live++
			for k, v := range r.Devices {
				if v <= 0 {
					continue
				}
				if devs == nil {
					devs = make(map[DeviceKind]int)
				}
				devs[k] += v
			}
		}
	}
	b := &rackBeat{Rack: m.Rack, Sub: m.EP.ID, IdleBytes: idle, Live: live, Devices: devs}
	for _, s := range m.tst {
		if s.HasUtil {
			b.HasUtil = true
			if s.Util > b.MaxUtil {
				b.MaxUtil = s.Util
			}
		}
	}
	if _, ok := m.EP.CallTimeout(p, m.Upstream, kindRackBeat, 64, b, interval); !ok {
		m.Stats.Add("rackbeats.lost", 1)
	}
	m.Stats.Add("rackbeats", 1)
}

// borrowTimeout bounds one escalation round trip. It must exceed the
// root's bounded worst case — rootBorrowCandidates delegate calls of
// 3×GrantTimeout each — so that when escalate gives up, the root's
// election has provably finished and a cancellation is authoritative.
func (m *Monitor) borrowTimeout() sim.Dur { return 8 * m.GrantTimeout }

// escalate forwards a request the rack cannot serve to the root MN and,
// on success, records the recipient-facing alloc-id → delegation-id
// mapping so the lease frees through the same FreeMemory call path.
// size is the admitted size — r.Size unless the local admission gate
// degraded the grant before the rack turned out to be starved.
func (m *Monitor) escalate(p *sim.Proc, from fabric.NodeID, r *AllocMemReq, size uint64) *AllocMemResp {
	req := &rackBorrowReq{Rack: m.Rack, Recipient: from, Size: size, WindowBase: r.WindowBase, Policy: r.Policy, Latency: r.Latency, Trace: r.Trace, Tenant: r.Tenant, Class: r.Class}
	raw, ok := m.EP.CallTimeout(p, m.Upstream, kindRackBorrow, 64, req, m.borrowTimeout())
	if !ok {
		// The response is lost (or the root outran our patience, which
		// the rootBorrowCandidates bound rules out): the borrow may have
		// completed at the root, where nobody else holds a mapping for
		// it. Send a cancellation; the root tears down any matching
		// delegation. An undeliverable cancel parks for sweep retry — a
		// flap must not leak a delegation forever.
		m.Stats.Add("alloc.upstream_timeouts", 1)
		cancel := &borrowCancelReq{Recipient: from, RecipientBase: r.WindowBase}
		if _, ok := m.EP.CallTimeout(p, m.Upstream, kindBorrowCancel, 32, cancel, m.GrantTimeout); !ok {
			m.pendingCancels[cancelKey{recipient: from, base: r.WindowBase}] = cancel
			m.Stats.Add("alloc.cancel_lost", 1)
		}
		return nil
	}
	resp := raw.(*rackBorrowResp)
	if !resp.OK {
		m.Stats.Add("alloc.upstream_declines", 1)
		return nil
	}
	id := m.nextAllocID
	m.nextAllocID++
	m.delegated[id] = delegatedLease{deleg: resp.DelegID, recipient: from}
	m.Stats.Add("alloc.delegated", 1)
	out := &AllocMemResp{OK: true, AllocID: id, Donor: resp.Donor, DonorBase: resp.DonorBase}
	if size != r.Size {
		out.Granted = size
	}
	return out
}

// escalateDev forwards a device request the rack cannot serve to the
// root MN — the device mirror of escalate. Devices carry no hot-plug
// window, so the sub pre-mints the recipient-facing alloc id and rides
// it in WindowBase as the borrow's cancellation key.
func (m *Monitor) escalateDev(p *sim.Proc, from fabric.NodeID, r *AllocDevReq) *AllocDevResp {
	id := m.nextAllocID
	m.nextAllocID++
	req := &rackBorrowReq{
		Rack: m.Rack, Recipient: from, Size: 1, WindowBase: uint64(id),
		Policy: r.Policy, Trace: r.Trace, Tenant: r.Tenant, Class: r.Class,
		Device: true, Dev: r.Kind,
	}
	raw, ok := m.EP.CallTimeout(p, m.Upstream, kindRackBorrow, 64, req, m.borrowTimeout())
	if !ok {
		// Same lost-response contract as memory escalation: the borrow
		// may have completed at the root, so cancel by key (parking the
		// cancel itself when the spine eats it too).
		m.Stats.Add("alloc.upstream_timeouts", 1)
		cancel := &borrowCancelReq{Recipient: from, RecipientBase: uint64(id), Device: true}
		if _, ok := m.EP.CallTimeout(p, m.Upstream, kindBorrowCancel, 32, cancel, m.GrantTimeout); !ok {
			m.pendingCancels[cancelKey{recipient: from, base: uint64(id)}] = cancel
			m.Stats.Add("alloc.cancel_lost", 1)
		}
		return nil
	}
	resp := raw.(*rackBorrowResp)
	if !resp.OK {
		m.Stats.Add("alloc.upstream_declines", 1)
		return nil
	}
	m.delegated[id] = delegatedLease{deleg: resp.DelegID, recipient: from}
	m.Stats.Add("alloc.delegated", 1)
	return &AllocDevResp{OK: true, AllocID: id, Donor: resp.Donor}
}

// delegatedLease is a sub-MN's record of one lease another rack backs
// on its recipient's behalf.
type delegatedLease struct {
	deleg     int
	recipient fabric.NodeID
}

// cancelKey identifies a parked escalation cancellation.
type cancelKey struct {
	recipient fabric.NodeID
	base      uint64
}

// retryRackFrees redelivers upstream releases and escalation
// cancellations whose first attempt was lost, in deterministic order
// (called from the recovery sweep).
func (m *Monitor) retryRackFrees(p *sim.Proc) {
	for _, id := range sortedKeys(m.pendingRackFrees) {
		fr := m.pendingRackFrees[id]
		if _, ok := m.EP.CallTimeout(p, m.Upstream, kindRackFree, 32, fr, 3*m.GrantTimeout); !ok {
			continue
		}
		delete(m.pendingRackFrees, id)
		m.Stats.Add("free.upstream_retried", 1)
	}
	keys := make([]cancelKey, 0, len(m.pendingCancels))
	for k := range m.pendingCancels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].recipient != keys[j].recipient {
			return keys[i].recipient < keys[j].recipient
		}
		return keys[i].base < keys[j].base
	})
	for _, k := range keys {
		if _, ok := m.EP.CallTimeout(p, m.Upstream, kindBorrowCancel, 32,
			m.pendingCancels[k], m.GrantTimeout); !ok {
			continue
		}
		delete(m.pendingCancels, k)
		m.Stats.Add("alloc.cancel_retried", 1)
	}
}

// onDelegate services the root MN's cross-rack grant request: the
// normal donor walk, for a recipient outside this rack.
//
// The donor rack applies a restricted admission check for class-tagged
// delegations: admit or decline, with a preemption attempt for classes
// above Preemptible — never queue (a queue wait here would race the
// root's delegateTimeout and the requesting sub's borrowTimeout) and
// never degrade (the recipient's window was escalated at a committed
// size). A decline is an ordinary "no rack donor" to the root, which
// tries the next candidate rack.
func (m *Monitor) onDelegate(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	r := req.(*delegateReq)
	pol, ok := m.resolvePolicy(r.Policy)
	if !ok {
		m.Stats.Add("delegate.declined", 1)
		return &delegateResp{OK: false, Err: fmt.Sprintf("unknown policy %q", r.Policy)}, 64
	}
	if m.Admission != nil && r.Class != tenancy.ClassNone {
		if !m.admitDelegate(p, r) {
			m.Stats.Add("admit.delegate_declined", 1)
			return &delegateResp{OK: false, Err: "admission: donor rack over budget"}, 64
		}
	}
	if r.Device {
		a, ok := m.allocDevLocal(r.Recipient, r.Dev, pol, r.DelegID, grantMeta{
			trace: r.Trace, tenant: r.Tenant, class: r.Class,
		})
		if !ok {
			m.Stats.Add("delegate.declined", 1)
			return &delegateResp{OK: false, Err: "no rack donor"}, 64
		}
		m.Stats.Add("delegate.granted", 1)
		return &delegateResp{OK: true, AllocID: a.ID, Donor: a.Donor}, 64
	}
	a, ok := m.grantFrom(p, r.Recipient, r.Size, r.WindowBase, r.DelegID, pol, grantMeta{
		latency: r.Latency, trace: r.Trace, tenant: r.Tenant, class: r.Class,
	})
	if !ok {
		m.Stats.Add("delegate.declined", 1)
		return &delegateResp{OK: false, Err: "no rack donor"}, 64
	}
	m.Stats.Add("delegate.granted", 1)
	return &delegateResp{OK: true, AllocID: a.ID, Donor: a.Donor, DonorBase: a.DonorBase}, 64
}

// admitDelegate is the donor-rack admission check for one delegated
// grant: Decide against this rack's pressure, with queue and degrade
// verdicts collapsed to a single preemption attempt (classes above
// Preemptible) and otherwise a decline.
func (m *Monitor) admitDelegate(p *sim.Proc, r *delegateReq) bool {
	decide := func() tenancy.Decision {
		if r.Device {
			free, capacity := m.devPressure(r.Dev)
			dec, _ := m.Admission.Decide(r.Class, 1, free, capacity)
			return dec
		}
		idle, capacity := m.memPressure()
		dec, _ := m.Admission.Decide(r.Class, r.Size, idle, capacity)
		return dec
	}
	if decide() == tenancy.Admit {
		return true
	}
	if r.Class > tenancy.Preemptible && m.Admission.Preempt {
		ok := false
		if r.Device {
			ok = m.preemptDev(p, r.Recipient, r.Dev)
		} else {
			ok = m.preemptMem(p, r.Recipient, &AllocMemReq{Size: r.Size, Class: r.Class})
		}
		if ok {
			return decide() == tenancy.Admit
		}
	}
	return false
}

// onDelegateFree services the root MN's teardown of a delegated lease
// this rack is backing.
func (m *Monitor) onDelegateFree(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	f := req.(*delegateFreeReq)
	a, ok := m.rat[f.AllocID]
	if !ok || a.Deleg == 0 {
		return &ack{}, 8
	}
	delete(m.rat, f.AllocID)
	m.releaseBacking(p, a)
	m.Stats.Add("free.delegate_backed", 1)
	m.emitLease(LeaseReleased, a, a.Donor)
	return &ack{}, 8
}

// releaseBacking hands a delegated row's backing to its donor: memory
// rows hot-return the region, device rows credit the donor's free-unit
// account (no agent round trip — devices have no hot-plugged state).
func (m *Monitor) releaseBacking(p *sim.Proc, a *Allocation) {
	if a.Kind != "memory" {
		if r, ok := m.rrt[a.Donor]; ok && r.Devices != nil {
			r.Devices[a.Dev]++
		}
		return
	}
	m.returnRegion(p, a)
}

// onDelegateCancel services the root MN's key-resolved cancellation of
// a delegate grant whose response was lost: if the grant completed
// here, the row (found by its delegation tag) is torn down; otherwise
// this is a no-op.
func (m *Monitor) onDelegateCancel(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	c := req.(*delegateCancelReq)
	for _, id := range sortedKeys(m.rat) {
		a, ok := m.rat[id]
		if !ok || a.Deleg != c.DelegID {
			continue
		}
		delete(m.rat, id)
		m.releaseBacking(p, a)
		m.Stats.Add("free.delegate_cancelled", 1)
		m.emitLease(LeaseReleased, a, a.Donor)
	}
	return &ack{}, 8
}
