package monitor

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// synthView builds a View over the 2x2x2 mesh with the given sampled
// link utilizations (unordered pairs) — the pure-function half of the
// telemetry plane, testable without a cluster.
func synthView(util map[[2]fabric.NodeID]float64) *View {
	v := &View{Topo: fabric.Mesh3D(2, 2, 2), Load: map[fabric.NodeID]int{}}
	for k, u := range util {
		if v.linkUtil == nil {
			v.linkUtil = make(map[[2]fabric.NodeID]float64)
			v.HasTelemetry = true
		}
		v.linkUtil[linkKey(k[0], k[1])] = u
	}
	return v
}

func TestViewPathLinksWalksDeterministicRoute(t *testing.T) {
	v := synthView(nil)
	links := v.PathLinks(0, 7)
	if len(links) != 3 {
		t.Fatalf("0->7 path has %d links, want 3 (opposite mesh corners)", len(links))
	}
	// The links chain: consecutive pairs share a node, the first touches
	// the source, the last the destination.
	touches := func(l [2]fabric.NodeID, n fabric.NodeID) bool { return l[0] == n || l[1] == n }
	if !touches(links[0], 0) || !touches(links[2], 7) {
		t.Fatalf("path endpoints wrong: %v", links)
	}
	for i := 1; i < len(links); i++ {
		prev, cur := links[i-1], links[i]
		if !touches(cur, prev[0]) && !touches(cur, prev[1]) {
			t.Fatalf("links %v and %v do not chain", prev, cur)
		}
	}
	if v.PathLinks(3, 3) != nil {
		t.Fatal("self path should have no links")
	}
	// Two walks return the same route — the determinism policies rely on.
	again := v.PathLinks(0, 7)
	for i := range links {
		if links[i] != again[i] {
			t.Fatalf("route changed between walks: %v vs %v", links, again)
		}
	}
}

func TestViewLinkUtilNormalizesDirection(t *testing.T) {
	v := synthView(map[[2]fabric.NodeID]float64{{1, 0}: 0.4})
	for _, q := range [][2]fabric.NodeID{{0, 1}, {1, 0}} {
		if u, ok := v.LinkUtil(q[0], q[1]); !ok || u != 0.4 {
			t.Fatalf("LinkUtil(%v,%v) = %v,%v; want 0.4,true", q[0], q[1], u, ok)
		}
	}
	if _, ok := v.LinkUtil(6, 7); ok {
		t.Fatal("unsampled link reported a utilization")
	}
}

func TestViewPathUtilReportsBottleneck(t *testing.T) {
	blind := synthView(nil)
	if _, ok := blind.PathUtil(0, 7); ok {
		t.Fatal("PathUtil known without telemetry")
	}
	links := blind.PathLinks(0, 7)
	v := synthView(map[[2]fabric.NodeID]float64{
		links[0]: 0.2,
		links[1]: 0.6,
	})
	if u, ok := v.PathUtil(0, 7); !ok || u != 0.6 {
		t.Fatalf("PathUtil(0,7) = %v,%v; want bottleneck 0.6,true", u, ok)
	}
	// A path none of whose links were sampled reads unknown even with
	// telemetry on elsewhere.
	if _, ok := v.PathUtil(6, 7); ok {
		t.Fatal("unsampled path reported a known utilization")
	}
	if _, ok := v.PathUtil(5, 5); ok {
		t.Fatal("self path reported a known utilization")
	}
}

func TestViewPathBottleneckAndCrosses(t *testing.T) {
	blind := synthView(nil)
	if _, _, ok := blind.PathBottleneck(0, 7); ok {
		t.Fatal("bottleneck known without telemetry")
	}
	links := blind.PathLinks(0, 7)
	v := synthView(map[[2]fabric.NodeID]float64{
		links[0]: 0.3,
		links[2]: 0.9,
	})
	link, u, ok := v.PathBottleneck(0, 7)
	if !ok || u != 0.9 || link != links[2] {
		t.Fatalf("PathBottleneck(0,7) = %v,%v,%v; want %v,0.9,true", link, u, ok, links[2])
	}
	for _, l := range links {
		if !v.PathCrosses(0, 7, l) {
			t.Fatalf("path 0->7 does not cross its own link %v", l)
		}
	}
	// Adjacent nodes cross exactly their own link and nothing else.
	if !v.PathCrosses(0, 1, linkKey(0, 1)) || v.PathCrosses(0, 1, linkKey(6, 7)) {
		t.Fatal("PathCrosses wrong for a 1-hop path")
	}
}

func TestViewPathCommitsTracksBusiestLink(t *testing.T) {
	v := synthView(nil)
	links := v.PathLinks(0, 7)
	v.commits = map[[2]fabric.NodeID]int{links[0]: 2, links[1]: 1}
	if got := v.PathCommits(0, 7); got != 2 {
		t.Fatalf("PathCommits(0,7) = %d, want 2", got)
	}
	if got := v.PathCommits(6, 7); got != 0 {
		t.Fatalf("uncommitted path shows %d commits", got)
	}
}

// TestTelemetryHeartbeatsReachView is the end-to-end pipeline check:
// agents with Telemetry on sample their adjacent links each beat, the
// probes ride the existing heartbeats into the TST, and the MN's View
// reports both the windowed utilizations and the lease commitments.
func TestTelemetryHeartbeatsReachView(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(1 * sim.Second)
	if c.mn.View().HasTelemetry {
		t.Fatal("telemetry reported without any telemetry-enabled agent")
	}
	for _, a := range c.agents {
		a.Telemetry = true
	}
	c.eng.RunFor(1 * sim.Second)
	v := c.mn.View()
	if !v.HasTelemetry {
		t.Fatal("telemetry-enabled heartbeats never reached the View")
	}
	if _, ok := v.LinkUtil(0, 1); !ok {
		t.Fatal("adjacent link 0-1 never sampled despite telemetry beats")
	}
	resp := allocFrom(t, c, 7, 64<<20)
	v = c.mn.View()
	if got := v.PathCommits(7, resp.Donor); got < 1 {
		t.Fatalf("live lease invisible to commitments: PathCommits(7,%v) = %d", resp.Donor, got)
	}
}
