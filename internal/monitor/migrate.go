package monitor

import (
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Live lease migration: the telemetry plane tells the MN which leases
// sit behind saturated links *while they are being served*; the
// migration loop moves the hottest one per scan to a donor behind a
// cooler path, reusing the exact retarget-and-replay machinery recovery
// already exercises. Like failover, migration does not copy region
// contents — the serving scenarios lease remote memory for
// re-initializable state (caches, scratch, cold tiers), and the
// recipient-side CRMA replay guarantees no in-flight access is lost.

// Leases carry a traffic class (AllocMemReq.Latency): bulk by default,
// latency-sensitive on request. The scan serves the classes
// asymmetrically. A hot bulk lease is itself moved somewhere cooler — a
// max-utilization objective. A hot latency lease is never moved (the
// retarget pause is exactly what the class forbids); instead the scan
// relieves its bottleneck link by moving the largest bulk lease off it,
// even when that makes some bulk path hotter than the one relieved —
// bulk paths tolerate up to twice the hot threshold. Without the class
// asymmetry the scan could never isolate a latency flow from N equal
// bulk flows: pairing two bulk flows raises the max, so a pure max-util
// objective always refuses.

// defaults for the migration thresholds (Monitor.MigrateUtil /
// MigrateMargin override them when positive).
const (
	defaultMigrateUtil   = 0.75
	defaultMigrateMargin = 0.20
)

// pathRelief is migrateLease's relieve-a-latency-path mode: the
// saturated bottleneck being vacated, the victim's estimated
// contribution to it, and the utilization a bulk destination path may
// reach after absorbing that contribution.
type pathRelief struct {
	link    [2]fabric.NodeID
	share   float64
	ceiling float64
}

// StartMigration launches the MN's hot-lease scan at the given period
// (0 selects 500 µs). The loop keeps the event queue non-empty forever,
// so programs that drive the engine with Run must StopMigration first.
// Without telemetry-enabled agents the loop never sees a hot path and
// does nothing.
func (m *Monitor) StartMigration(interval sim.Dur) {
	if m.migrationOn {
		return
	}
	m.migrationOn = true
	if interval <= 0 {
		interval = 500 * sim.Microsecond
	}
	m.EP.Eng.Go("mn-migrate", func(p *sim.Proc) {
		for m.migrationOn {
			p.Sleep(interval)
			m.migrateScan(p)
		}
	})
}

// StopMigration ends the migration loop after the current scan.
func (m *Monitor) StopMigration() { m.migrationOn = false }

// migrateScan finds the lease whose recipient→donor path has the
// hottest windowed bottleneck above the threshold and tries to relieve
// it: latency-sensitive leases first (by vacating a bulk sharer), then
// bulk leases (by moving the hot lease itself). One move per scan
// bounds churn; the next scan re-evaluates with fresh telemetry.
func (m *Monitor) migrateScan(p *sim.Proc) {
	v := m.view()
	if !v.HasTelemetry {
		return
	}
	threshold := m.MigrateUtil
	if threshold <= 0 {
		threshold = defaultMigrateUtil
	}
	ids := make([]int, 0, len(m.rat))
	for id := range m.rat {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var hotLat, hotBulk *Allocation
	latUtil, bulkUtil := 0.0, 0.0
	for _, id := range ids {
		a := m.rat[id]
		if a.Kind != "memory" {
			continue
		}
		u, known := v.PathUtil(a.Recipient, a.Donor)
		if !known || u < threshold {
			continue
		}
		switch {
		case a.Latency && u > latUtil:
			hotLat, latUtil = a, u
		case !a.Latency && u > bulkUtil:
			hotBulk, bulkUtil = a, u
		}
	}
	switch {
	case hotLat != nil:
		m.Stats.Add("migrate.hot_detected", 1)
		m.relieveLatencyPath(p, v, hotLat, latUtil, ids)
	case hotBulk != nil:
		m.Stats.Add("migrate.hot_detected", 1)
		m.migrateLease(p, v, hotBulk, bulkUtil, nil)
	}
}

// relieveLatencyPath vacates the bottleneck link of a hot
// latency-sensitive lease: the largest bulk lease crossing that link
// (biggest relocatable share of its traffic) is moved to a path that
// avoids every latency lease, tolerating bulk destinations up to twice
// the hot threshold.
func (m *Monitor) relieveLatencyPath(p *sim.Proc, v *View, hot *Allocation, hotUtil float64, ids []int) {
	link, _, ok := v.PathBottleneck(hot.Recipient, hot.Donor)
	if !ok {
		m.Stats.Add("migrate.no_candidate", 1)
		return
	}
	var victim *Allocation
	sharers := 0
	for _, id := range ids {
		a := m.rat[id]
		if a.Kind != "memory" || !v.PathCrosses(a.Recipient, a.Donor, link) {
			continue
		}
		sharers++
		if a.Latency {
			continue
		}
		if victim == nil || a.Size > victim.Size {
			victim = a
		}
	}
	if victim == nil {
		// Only latency leases cross the link; there is nothing movable.
		m.Stats.Add("migrate.no_candidate", 1)
		return
	}
	threshold := m.MigrateUtil
	if threshold <= 0 {
		threshold = defaultMigrateUtil
	}
	relief := &pathRelief{
		link:    link,
		share:   hotUtil / float64(sharers),
		ceiling: 2 * threshold,
	}
	m.migrateLease(p, v, victim, hotUtil, relief)
}

// migrateLease moves one (always bulk-class) lease to a donor behind a
// better path: meaningfully cooler in the default mode, or — when
// relief is non-nil — any path that avoids the latency leases and
// stays under the bulk ceiling after absorbing the victim's share. The
// shape mirrors failoverLease with one inversion: the old donor is
// alive, so any mid-flight failure aborts back to the old placement
// (which still works) instead of parking retries, and on success the
// old region is hot-returned to its donor — off the serving critical
// path, since the recipient is already retargeted.
func (m *Monitor) migrateLease(p *sim.Proc, v *View, a *Allocation, curUtil float64, relief *pathRelief) bool {
	t0 := m.EP.Eng.Now()
	oldDonor, oldBase := a.Donor, a.DonorBase
	margin := m.MigrateMargin
	if margin <= 0 {
		margin = defaultMigrateMargin
	}
	// Links any latency-sensitive lease depends on: no migration may
	// land bulk traffic there, whichever mode chose the victim.
	latLinks := make(map[[2]fabric.NodeID]bool)
	for _, la := range m.rat {
		if la.Kind != "memory" || !la.Latency {
			continue
		}
		for _, l := range v.PathLinks(la.Recipient, la.Donor) {
			latLinks[l] = true
		}
	}
	for _, cand := range m.donorCandidates(a.Recipient, nil) {
		if cand.Node == oldDonor || !m.NodeAlive(cand.Node) {
			continue
		}
		if cand.IdleBytes < a.Size && !m.hasSpare(cand.Node, a.Size) {
			continue
		}
		if crossesAny(v, a.Recipient, cand.Node, latLinks) {
			continue
		}
		cu, known := v.PathUtil(a.Recipient, cand.Node)
		if relief != nil {
			// Relieving a latency path: the destination only has to absorb
			// the victim's share without itself turning pathological.
			if known && cu+relief.share > relief.ceiling {
				continue
			}
		} else if known && cu > curUtil-margin {
			// Only move somewhere meaningfully cooler; a never-sampled path
			// reads as idle (nothing hot has crossed it this window).
			continue
		}
		base, viaSpare, ok := m.replacementRegion(p, cand, a)
		if !ok {
			continue
		}
		if _, live := m.rat[a.ID]; !live {
			// Freed while the region was being acquired: the free already
			// returned the old region; only the new one needs undoing.
			m.undoReplacement(p, cand, a, base)
			m.Stats.Add("migrate.raced_free", 1)
			return false
		}
		rel := &relocateReq{
			AllocID: a.ID, RecipientBase: a.RecipientBase, Size: a.Size,
			OldDonor: oldDonor, NewDonor: cand.Node, NewDonorBase: base,
		}
		raw, ok := m.EP.CallTimeout(p, a.Recipient, kindRelocate, 64, rel, m.GrantTimeout)
		switch {
		case !ok:
			// Delivery unknown — unlike failover the old placement still
			// works, so abort rather than park a retry: reclaim the new
			// region and let a later scan try again. (If the relocate did
			// land, the recipient aims at the new donor whose export we
			// just tore down; its next access faults the window dead, the
			// same contract as a revoke — accept that narrow race rather
			// than double-commit.)
			m.undoReplacement(p, cand, a, base)
			m.Stats.Add("migrate.aborted", 1)
			return false
		case !raw.(*relocateResp).OK:
			// The window vanished at the recipient (freed concurrently; the
			// MN-side free may still be queued behind this proc). Drop the
			// row, reclaim the new region, and return the old one to its
			// live donor — exactly what the queued free would have done.
			delete(m.rat, a.ID)
			m.undoReplacement(p, cand, a, base)
			m.returnRegion(p, &Allocation{
				ID: a.ID, Kind: a.Kind, Donor: oldDonor, Recipient: a.Recipient,
				DonorBase: oldBase, RecipientBase: a.RecipientBase, Size: a.Size,
			})
			m.Stats.Add("migrate.raced_free", 1)
			return false
		}
		a.Donor, a.DonorBase = cand.Node, base
		a.At = m.EP.Eng.Now()
		if !viaSpare {
			cand.IdleBytes -= a.Size
		}
		// Hot-return the old region to its (live) old donor. The ~2 ms
		// hot-add runs on the donor, off the serving path.
		ret := &hotReturnReq{
			Recipient: a.Recipient, RecipientBase: a.RecipientBase,
			Base: oldBase, Size: a.Size,
		}
		oldInc := m.incarnationOf(oldDonor)
		if _, ok := m.EP.CallTimeout(p, oldDonor, kindHotReturn, 64, ret, m.GrantTimeout); !ok {
			m.queueOrphan(oldDonor, oldInc, ret)
		}
		if r, ok := m.rrt[oldDonor]; ok {
			r.IdleBytes += a.Size
		}
		m.Stats.Add("migrate.moved", 1)
		m.Stats.Add("migrate.ns", int64(m.EP.Eng.Now().Sub(t0)))
		m.emitLease(LeaseMigrated, a, oldDonor)
		m.notifyDelegateMoved(p, a.Deleg, a.Donor, false)
		return true
	}
	m.Stats.Add("migrate.no_candidate", 1)
	return false
}

// crossesAny reports whether the a→b path traverses any link in links.
func crossesAny(v *View, a, b fabric.NodeID, links map[[2]fabric.NodeID]bool) bool {
	if len(links) == 0 {
		return false
	}
	for _, l := range v.PathLinks(a, b) {
		if links[l] {
			return true
		}
	}
	return false
}
