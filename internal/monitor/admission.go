package monitor

import (
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tenancy"
)

// This file is the monitor plane's half of the tenancy subsystem: the
// admission gate that onAllocMem/onAllocDev run for class-tagged
// requests, and the preemption engine that revokes Preemptible-class
// leases when a higher class would otherwise be rejected. Policy itself
// (the per-class thresholds, the Decide function) lives in
// internal/tenancy; this file owns pressure measurement, the bounded
// queue wait, and the victim scan — the parts that need the MN's
// tables and its blocking RPC machinery.
//
// Every handler here runs in its own transport proc, so the queue wait
// may sleep without wedging the MN: other requests (and the frees and
// preemptions that relieve pressure) keep being serviced meanwhile.
// On a sub-MN the gate sees only its rack's pressure — each rack
// admits against its own pool, mirroring how the sharded plane splits
// every other table.

// memPressure reports the pool's current idle and capacity in bytes:
// idle sums the live RRT rows, capacity adds back the bytes leased out
// in live memory RAT rows (so capacity stays stable as grants move
// bytes from idle to leased). Spare-pool carves are deliberately not
// added back — a region parked for failover is not admittable capacity.
func (m *Monitor) memPressure() (idle, capacity uint64) {
	for _, r := range m.rrt {
		if r.Dead || !m.NodeAlive(r.Node) {
			continue
		}
		idle += r.IdleBytes
	}
	capacity = idle
	for _, a := range m.rat {
		if a.Kind != "memory" || !m.NodeAlive(a.Donor) {
			continue
		}
		capacity += a.Size
	}
	return idle, capacity
}

// devPressure is memPressure in device units of one kind: free counts
// the live RRT rows' available units, capacity adds back the leased
// ones.
func (m *Monitor) devPressure(kind DeviceKind) (free, capacity uint64) {
	for _, r := range m.rrt {
		if r.Dead || !m.NodeAlive(r.Node) {
			continue
		}
		if n := r.Devices[kind]; n > 0 {
			free += uint64(n)
		}
	}
	capacity = free
	for _, a := range m.rat {
		if a.Kind == "memory" || a.Dev != kind || !m.NodeAlive(a.Donor) {
			continue
		}
		capacity += a.Size // device rows have Size 1
	}
	return free, capacity
}

// admitMem runs the admission controller for one class-tagged memory
// request. It returns the granted size — r.Size when admitted in full,
// smaller when degraded — or rejected=true. A Queue verdict parks the
// request right here, re-running the decision every poll tick until it
// admits or the class's MaxWait expires; expiry falls through to the
// preemption attempt (classes above Preemptible only) and then to
// rejection.
func (m *Monitor) admitMem(p *sim.Proc, from fabric.NodeID, r *AllocMemReq) (granted uint64, rejected bool) {
	cfg := m.Admission
	dec, g := m.decideMem(r)
	if dec == tenancy.Queue {
		m.Stats.Add("admit.queued", 1)
		var waited sim.Dur
		maxWait := cfg.PerClass[r.Class].MaxWait
		for dec == tenancy.Queue && waited < maxWait {
			p.Sleep(cfg.Poll())
			waited += cfg.Poll()
			dec, g = m.decideMem(r)
		}
		if dec == tenancy.Admit || dec == tenancy.Degrade {
			m.Stats.Add("admit.queue_admits", 1)
		} else {
			// The wait is over and pressure never relented; from here the
			// request is treated exactly like an immediate rejection.
			dec = tenancy.Reject
		}
	}
	if dec == tenancy.Reject && r.Class > tenancy.Preemptible && cfg.Preempt {
		if m.preemptMem(p, from, r) {
			dec, g = m.decideMem(r)
		}
	}
	switch dec {
	case tenancy.Admit:
		return r.Size, false
	case tenancy.Degrade:
		m.Stats.Add("admit.degraded", 1)
		return g, false
	}
	return 0, true
}

// decideMem evaluates one memory request against current pressure.
func (m *Monitor) decideMem(r *AllocMemReq) (tenancy.Decision, uint64) {
	idle, capacity := m.memPressure()
	return m.Admission.Decide(r.Class, r.Size, idle, capacity)
}

// admitDev is admitMem in device units. Degradation cannot apply to a
// single-unit grant, so the verdict is admit, queue-then-admit, or
// reject (after the preemption attempt).
func (m *Monitor) admitDev(p *sim.Proc, from fabric.NodeID, r *AllocDevReq) (rejected bool) {
	cfg := m.Admission
	dec := m.decideDev(r)
	if dec == tenancy.Queue {
		m.Stats.Add("admit.queued", 1)
		var waited sim.Dur
		maxWait := cfg.PerClass[r.Class].MaxWait
		for dec == tenancy.Queue && waited < maxWait {
			p.Sleep(cfg.Poll())
			waited += cfg.Poll()
			dec = m.decideDev(r)
		}
		if dec == tenancy.Admit {
			m.Stats.Add("admit.queue_admits", 1)
		} else {
			dec = tenancy.Reject
		}
	}
	if dec == tenancy.Reject && r.Class > tenancy.Preemptible && cfg.Preempt {
		if m.preemptDev(p, from, r.Kind) {
			dec = m.decideDev(r)
		}
	}
	return dec != tenancy.Admit
}

// decideDev evaluates one device request against current pressure.
func (m *Monitor) decideDev(r *AllocDevReq) tenancy.Decision {
	free, capacity := m.devPressure(r.Kind)
	dec, _ := m.Admission.Decide(r.Class, 1, free, capacity)
	return dec
}

// preemptMem revokes Preemptible-class memory leases until the pending
// request both clears its class budget and has a live donor with
// enough contiguous idle bytes — or the pool runs out of victims.
// Victim order is deterministic: donors in node-id order (preferring
// one that can reach a contiguous fit), rows in RAT-id order within a
// donor. Reports whether the caller should re-run the decision.
func (m *Monitor) preemptMem(p *sim.Proc, from fabric.NodeID, r *AllocMemReq) bool {
	preempted := false
	for {
		if dec, _ := m.decideMem(r); dec == tenancy.Admit || dec == tenancy.Degrade {
			if m.donorFits(from, r.Size) {
				return true
			}
		}
		victim := m.pickVictimMem(from, r.Size)
		if victim == nil {
			if !preempted {
				m.Stats.Add("preempt.exhausted", 1)
			}
			return preempted
		}
		m.preemptLease(p, victim)
		preempted = true
	}
}

// donorFits reports whether some live donor other than the requester
// has size idle bytes — the contiguity condition a budget-level Decide
// cannot see.
func (m *Monitor) donorFits(requester fabric.NodeID, size uint64) bool {
	for _, r := range m.rrt {
		if r.Node == requester || r.Dead || !m.NodeAlive(r.Node) {
			continue
		}
		if r.IdleBytes >= size {
			return true
		}
	}
	return false
}

// pickVictimMem selects the next Preemptible memory lease to revoke:
// the lowest-RAT-id row on the first donor (node-id order) whose
// idle-plus-preemptible bytes could reach a contiguous fit for the
// pending request. When no donor can ever fit it, the first victim in
// the same order still goes — its bytes lower the class's budget usage
// even if the contiguity goal is out of reach.
func (m *Monitor) pickVictimMem(requester fabric.NodeID, size uint64) *Allocation {
	fallback := -1
	for _, id := range m.sortedDonorIDs() {
		r := m.rrt[id]
		if r.Dead || !m.NodeAlive(id) {
			continue
		}
		low := -1
		preemptible := uint64(0)
		for _, aid := range sortedKeys(m.rat) {
			a := m.rat[aid]
			if a.Donor != id || a.Kind != "memory" || a.Class != tenancy.Preemptible {
				continue
			}
			preemptible += a.Size
			if low < 0 {
				low = aid
			}
		}
		if low < 0 {
			continue
		}
		if id != requester && r.IdleBytes+preemptible >= size {
			return m.rat[low]
		}
		if fallback < 0 {
			fallback = low
		}
	}
	if fallback >= 0 {
		return m.rat[fallback]
	}
	return nil
}

// sortedDonorIDs returns the RRT's node ids in ascending order — the
// deterministic scan order the victim walk shares with the recovery
// sweep.
func (m *Monitor) sortedDonorIDs() []fabric.NodeID {
	ids := make([]fabric.NodeID, 0, len(m.rrt))
	for id := range m.rrt {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// preemptLease revokes one Preemptible memory lease through the same
// machinery recovery uses for a donor that died with no candidate
// (failoverLease's revoke branch) — except the donor here is alive, so
// the region hot-returns to it immediately instead of queueing as an
// orphan. The victim's agent gets the standard revoke notice (window
// goes dead, parked accesses unwedge), parked for sweep retry if the
// delivery is lost, and the row's lifecycle stream announces
// LeasePreempted so the victim can re-acquire with backoff.
func (m *Monitor) preemptLease(p *sim.Proc, a *Allocation) {
	delete(m.rat, a.ID)
	m.returnRegion(p, a)
	rv := &revokeReq{AllocID: a.ID, RecipientBase: a.RecipientBase, Size: a.Size}
	recipientInc := m.incarnationOf(a.Recipient)
	if _, ok := m.EP.CallTimeout(p, a.Recipient, kindRevoke, 32, rv, m.GrantTimeout); !ok {
		m.pendingRevokes[a.ID] = &pendingNotice[revokeReq]{
			req: rv, recipient: a.Recipient, recipientInc: recipientInc,
		}
		m.Stats.Add("preempt.revoke_lost", 1)
	}
	m.Stats.Add("preempt.memory", 1)
	m.emitLease(LeasePreempted, a, a.Donor)
	m.notifyDelegateMoved(p, a.Deleg, a.Donor, true)
}

// preemptDev revokes one Preemptible device lease of the given kind —
// a pure table operation plus the lifecycle event, mirroring
// failoverDevice's no-candidate branch (device clients follow the
// event stream; there is no agent-managed window to kill).
func (m *Monitor) preemptDev(p *sim.Proc, requester fabric.NodeID, kind DeviceKind) bool {
	_ = requester // devices have no contiguity constraint; any victim serves
	for _, aid := range sortedKeys(m.rat) {
		a := m.rat[aid]
		if a.Kind == "memory" || a.Dev != kind || a.Class != tenancy.Preemptible {
			continue
		}
		delete(m.rat, aid)
		if r, ok := m.rrt[a.Donor]; ok && r.Devices != nil {
			r.Devices[a.Dev]++
		}
		m.Stats.Add("preempt.device", 1)
		m.emitLease(LeasePreempted, a, a.Donor)
		m.notifyDelegateMoved(p, a.Deleg, a.Donor, true)
		return true
	}
	m.Stats.Add("preempt.exhausted", 1)
	return false
}
