package monitor

import (
	"testing"

	"repro/internal/sim"
)

// Spare-region pool tests: the pool's job is to convert failover's ~2 ms
// hot-plug into a single attach round trip, refill itself off the
// critical path, and degrade to the plain hot-plug when exhausted —
// never to change what recovers, only how fast.

// TestFailoverSpareAttachSkipsHotplug: with a matching spare parked on
// the replacement donor, failover's recorded latency stays under one
// hot-plug op, and the consumed spare is replaced asynchronously.
func TestFailoverSpareAttachSkipsHotplug(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.StartRecovery()
	defer c.mn.StopRecovery()
	reserveAllOn(t, c, 0) // keep the MN out of donor candidacy
	c.eng.RunFor(1 * sim.Second)
	c.mn.EnableSparePool(128<<20, 1)
	c.eng.RunFor(1 * sim.Second) // async carves complete
	if got := c.mn.SpareCount(6); got != 1 {
		t.Fatalf("node 6 pool = %d after provisioning, want 1", got)
	}
	if c.mn.Stats.Get("spare.carved") == 0 {
		t.Fatal("no carves recorded")
	}

	resp := allocFrom(t, c, 4, 128<<20)
	if resp.Donor != 5 {
		t.Fatalf("test premise broken: expected donor 5, got %v", resp.Donor)
	}
	c.agents[5].Crash()
	c.net.SetNodeDown(5, true)
	c.eng.RunFor(10 * sim.Second) // timeout + sweep + failover

	a, ok := c.mn.Allocation(resp.AllocID)
	if !ok || a.Donor == 5 {
		t.Fatalf("lease not failed over: %+v (ok=%v)", a, ok)
	}
	if got := c.mn.Stats.Get("recover.spare_attached"); got != 1 {
		t.Fatalf("spare attaches = %d, want 1", got)
	}
	if got := c.mn.Stats.Get("recover.replaced"); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	// The whole point: the failover never paid the hot-plug.
	if ns := c.mn.Stats.Get("recover.ns"); ns >= int64(c.p.HotplugOp) {
		t.Fatalf("failover took %dns, want under one %v hot-plug op", ns, c.p.HotplugOp)
	}
	// The dead donor's parked spare was invalidated, and the consumed
	// one replaced off the recovery path.
	if c.mn.Stats.Get("spare.pruned") == 0 {
		t.Fatal("dead donor's spare never pruned")
	}
	if got := c.mn.SpareCount(a.Donor); got != 1 {
		t.Fatalf("replacement donor pool = %d after refill, want 1", got)
	}
}

// TestSparePoolExhaustionFallsBackToHotplug: two leases on one donor,
// one parked spare on the only viable replacement. The first failover
// drains the pool; the second must fall back to the ordinary hot-plug
// (the refill is still in flight) and still succeed.
func TestSparePoolExhaustionFallsBackToHotplug(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.StartRecovery()
	defer c.mn.StopRecovery()
	c.eng.RunFor(1 * sim.Second)
	// Recipient 4's only 1-hop donor with idle memory is node 5: both
	// leases stack there.
	reserveAllOn(t, c, 0)
	reserveAllOn(t, c, 6)
	c.eng.RunFor(1 * sim.Second)
	a1 := allocFrom(t, c, 4, 128<<20)
	a2 := allocFrom(t, c, 4, 128<<20)
	if a1.Donor != 5 || a2.Donor != 5 {
		t.Fatalf("test premise broken: want both leases on 5, got %v and %v", a1.Donor, a2.Donor)
	}
	// Leave node 2 as the only replacement candidate (node 4 is the
	// recipient, excluded from its own donor walk) before provisioning,
	// so exactly one usable spare exists.
	reserveAllOn(t, c, 1)
	reserveAllOn(t, c, 3)
	reserveAllOn(t, c, 7)
	c.eng.RunFor(1 * sim.Second)
	c.mn.EnableSparePool(128<<20, 1)
	c.eng.RunFor(1 * sim.Second)
	if got := c.mn.SpareCount(2); got != 1 {
		t.Fatalf("node 2 pool = %d, want 1", got)
	}

	c.agents[5].Crash()
	c.net.SetNodeDown(5, true)
	c.eng.RunFor(10 * sim.Second)

	x1, ok1 := c.mn.Allocation(a1.AllocID)
	x2, ok2 := c.mn.Allocation(a2.AllocID)
	if !ok1 || !ok2 || x1.Donor != 2 || x2.Donor != 2 {
		t.Fatalf("leases not failed over to node 2: %+v (ok=%v), %+v (ok=%v)", x1, ok1, x2, ok2)
	}
	if got := c.mn.Stats.Get("recover.replaced"); got != 2 {
		t.Fatalf("failovers = %d, want 2", got)
	}
	// One attach, one fallback: the exhausted pool must not block the
	// second failover, and the second must have paid the hot-plug.
	if got := c.mn.Stats.Get("recover.spare_attached"); got != 1 {
		t.Fatalf("spare attaches = %d, want exactly 1 (pool had one spare)", got)
	}
	if ns := c.mn.Stats.Get("recover.ns"); ns < int64(c.p.HotplugOp) {
		t.Fatalf("total failover time %dns under one hot-plug op; the fallback never ran", ns)
	}
}

// TestAdaptiveSparePoolRampAndDecay: the adaptive pool's depth must
// ramp toward the ceiling while crashes accumulate and decay back to
// the floor once the fleet quiets down. The test drives adaptSpares
// directly against hand-fed crash counters — the sizing rule, not the
// sweep cadence, is what's under test.
func TestAdaptiveSparePoolRampAndDecay(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(1 * sim.Second)
	c.mn.EnableAdaptiveSparePool(128<<20, 1, 4)
	if c.mn.sparePer != 1 {
		t.Fatalf("initial depth = %d, want the floor (1)", c.mn.sparePer)
	}

	// One crash-heavy window: 4 crashes → EWMA 2.0 → depth 3.
	c.mn.Stats.Add("recover.deaths", 4)
	c.mn.adaptSpares()
	if c.mn.sparePer != 3 {
		t.Fatalf("depth after 4-crash window = %d, want 3", c.mn.sparePer)
	}

	// A heavier one saturates at the ceiling, never beyond.
	c.mn.Stats.Add("recover.deaths", 6)
	c.mn.Stats.Add("recover.reboot_recoveries", 2)
	c.mn.adaptSpares()
	if c.mn.sparePer != 4 {
		t.Fatalf("depth after 8-crash window = %d, want the ceiling (4)", c.mn.sparePer)
	}

	// Quiet sweeps decay the EWMA until the depth is back at the floor.
	for i := 0; i < 10; i++ {
		c.mn.adaptSpares()
	}
	if c.mn.sparePer != 1 {
		t.Fatalf("depth after quiet stretch = %d, want back at the floor (1)", c.mn.sparePer)
	}
	if c.mn.Stats.Get("spare.resized") < 3 {
		t.Fatalf("spare.resized = %d, want at least 3 (two ramps + decay)", c.mn.Stats.Get("spare.resized"))
	}
}

// TestMigrationRacingDestinationCrashKeepsLease: the migration's chosen
// destination donor dies mid hot-remove. The old placement still works,
// so the move must either abort back to it or land on another donor —
// the recipient's window stays continuously backed either way, and
// nothing leaks.
func TestMigrationRacingDestinationCrashKeepsLease(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.eng.RunFor(1 * sim.Second)
	reserveAllOn(t, c, 0)
	c.eng.RunFor(1 * sim.Second)
	resp := allocFrom(t, c, 4, 128<<20)
	if resp.Donor != 5 {
		t.Fatalf("test premise broken: expected donor 5, got %v", resp.Donor)
	}
	a := c.mn.rat[resp.AllocID]
	if a == nil {
		t.Fatal("allocation missing from RAT")
	}
	// Node 6 is the walk's first viable destination (node 0 is reserved,
	// node 5 is the old donor). Kill it one millisecond in — mid way
	// through its 2 ms hot-remove.
	c.eng.Schedule(1*sim.Millisecond, func() {
		c.agents[6].Crash()
		c.net.SetNodeDown(6, true)
	})
	var moved bool
	c.nodes[0].Run("migrate", func(p *sim.Proc) {
		moved = c.mn.migrateLease(p, c.mn.view(), a, 1.0, nil)
	})
	c.eng.RunFor(5 * sim.Second)

	if !moved {
		t.Fatal("migration gave up instead of walking past the dead destination")
	}
	x, ok := c.mn.Allocation(resp.AllocID)
	if !ok {
		t.Fatal("lease vanished during the race")
	}
	if x.Donor == 6 {
		t.Fatal("lease committed to the crashed destination")
	}
	if x.Donor == 5 {
		t.Fatal("lease still on the old donor despite moved=true")
	}
	// Zero lost completions at the table level: the recipient was
	// retargeted exactly once, onto a donor that really holds a region,
	// and the old donor got its region back.
	if got := c.agents[4].Stats.Get("relocate.ok"); got != 1 {
		t.Fatalf("recipient saw %d retargets, want 1", got)
	}
	if got := c.nodes[x.Donor].MemMgr.Removed(); got != 128<<20 {
		t.Fatalf("new donor %v shows %d removed bytes, want lease-backed region", x.Donor, got)
	}
	if got := c.nodes[5].MemMgr.Removed(); got != 0 {
		t.Fatalf("old donor still shows %d removed bytes; hot-return never landed", got)
	}
	if c.mn.Stats.Get("recover.grant_timeouts") == 0 {
		t.Fatal("test premise broken: the dead destination never timed out a hot-remove")
	}
	if got := c.mn.Stats.Get("migrate.moved"); got != 1 {
		t.Fatalf("migrate.moved = %d, want 1", got)
	}
}
