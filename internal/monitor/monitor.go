package monitor

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/transport"
)

// Registration is one node's row in the Resource Registration Table.
type Registration struct {
	Node      fabric.NodeID
	IdleBytes uint64
	Devices   map[DeviceKind]int
	LastBeat  sim.Time
	Beats     int64

	// Incarnation is the node's reboot count as of its last heartbeat.
	Incarnation int64
	// Dead latches once the recovery sweep declares the node failed; it
	// clears when heartbeats resume.
	Dead bool
	// needsRecovery marks a node whose heartbeat announced a reboot
	// (incarnation bump) — its donations are gone even though it is
	// beating. The sweep consumes the flag.
	needsRecovery bool
}

// Allocation is one row of the Resource Allocation Table.
type Allocation struct {
	ID            int
	Kind          string     // "memory" or a DeviceKind name
	Dev           DeviceKind // valid when Kind is a device
	Donor         fabric.NodeID
	Recipient     fabric.NodeID
	DonorBase     uint64
	RecipientBase uint64
	Size          uint64
	At            sim.Time

	// Latency marks a latency-sensitive lease: the migration loop works
	// for it (moving bulk leases off its hot path) and never moves it —
	// a retarget-and-replay pause is exactly what the class forbids.
	Latency bool

	// Deleg is the root MN's delegation id when this row backs a lease
	// delegated from another rack (the recipient is outside this sub-MN's
	// rack); 0 for ordinary local grants.
	Deleg int

	// Trace is the lease trace id the requester minted at Acquire time;
	// lifecycle events for this row (grant, free, failover, migration,
	// revocation) carry it so observability layers can chain them into
	// one per-lease span history. Purely passive.
	Trace uint64

	// Tenant/Class identify the owning tenant as of the request
	// (admission.go). Class steers the preemption scan: Preemptible rows
	// are the victims it may revoke for a higher class. Zero values mark
	// a pre-tenancy (untagged) lease.
	Tenant uint64
	Class  tenancy.Class
}

// LinkStatus is one row of the Topology Status Table. Util carries the
// windowed utilization the owning agent last sampled for the link
// (HasUtil distinguishes "idle" from "never sampled" — agents only
// report it when telemetry is enabled).
type LinkStatus struct {
	A, B     fabric.NodeID
	Up       bool
	LastSeen sim.Time
	Util     float64
	HasUtil  bool
}

// Monitor is the Monitor Node runtime. One instance runs on a designated
// node's endpoint. (The paper notes the MN should be replicated to avoid
// a single point of failure but, like the prototype, we run one.)
type Monitor struct {
	EP   *transport.Endpoint
	Topo fabric.Topology

	rrt map[fabric.NodeID]*Registration
	rat map[int]*Allocation
	tst map[[2]fabric.NodeID]*LinkStatus

	nextAllocID int

	// Policy orders donor candidates; nil means the prototype's
	// distance-first policy.
	Policy Policy

	// Admission is the tenancy admission controller's policy
	// (admission.go): per-class thresholds plus the preemption switch,
	// consulted before every tagged AllocMem/AllocDev grant. nil (the
	// default) disables admission entirely — every pre-tenancy workload
	// runs byte-identically. On a sub-MN the controller gates against
	// the rack's own pressure.
	Admission *tenancy.Config

	// HeartbeatTimeout marks a node dead when its reports stop.
	HeartbeatTimeout sim.Dur

	// SweepInterval is the recovery loop's scan period (see
	// StartRecovery); it defaults to half the heartbeat timeout.
	SweepInterval sim.Dur

	// GrantTimeout bounds the MN's calls into agents (hot-remove at grant
	// and failover time, hot-return, relocate): a donor that dies while
	// servicing a request must not wedge the Monitor Node forever. It
	// must comfortably exceed one hot-plug operation plus a round trip.
	GrantTimeout sim.Dur

	// Sharded-plane wiring (see shard.go). A Monitor with HasUpstream set
	// is a sub-MN: it owns one rack's leases and heartbeats, escalates
	// requests its rack cannot serve to the root MN at Upstream, and
	// reports rack-level state there.
	Upstream    fabric.NodeID
	HasUpstream bool
	Rack        int
	// delegated maps this sub-MN's recipient-facing alloc ids onto root
	// delegation ids (plus the owning recipient, so frees enforce the
	// same ownership check as local rows) for leases backed by another
	// rack.
	delegated map[int]delegatedLease
	// pendingRackFrees parks upstream releases whose delivery to the
	// root was lost; the sweep retries them so a link flap cannot leak
	// a delegation forever. pendingCancels does the same for escalation
	// cancellations (keyed by recipient + window, the cancellation's own
	// resolution key).
	pendingRackFrees map[int]*rackFreeReq
	pendingCancels   map[cancelKey]*borrowCancelReq
	// rackBeatOn gates the rack-level report loop.
	rackBeatOn bool

	// recovery loop state.
	recoveryOn bool
	// orphans queues hot-returns owed to donors that were declared dead
	// and had their leases re-placed. If such a donor reappears with the
	// same incarnation (heartbeat loss, not a reboot), its regions are
	// still hot-removed and exported; the queued returns clean them up.
	orphans map[fabric.NodeID][]*hotReturnReq
	// pendingRelocates / pendingRevokes park recovery notices whose
	// delivery to a recipient timed out (e.g. a link flap on the path).
	// The sweep retries them: committing a failover while the recipient
	// still aims at the dead donor would wedge the recipient forever.
	pendingRelocates map[int]*pendingNotice[relocateReq]
	pendingRevokes   map[int]*pendingNotice[revokeReq]

	// Spare-region pool state (spare.go): per-donor pre-plugged regions
	// that let failover and migration skip the hot-plug latency.
	sparePoolOn  bool
	spareSize    uint64
	sparePer     int
	spares       map[fabric.NodeID][]spareRegion
	sparePending map[fabric.NodeID]int
	// Adaptive sizing state (EnableAdaptiveSparePool): the sweep scales
	// sparePer between spareMin and spareMax from an EWMA of the
	// per-sweep crash count.
	spareAdaptive  bool
	spareMin       int
	spareMax       int
	spareCrashEWMA float64
	spareLastCrash int64

	// Migration loop state (migrate.go).
	migrationOn bool
	// MigrateUtil is the windowed path-utilization threshold above which
	// a lease is considered hot (0 selects the default, 0.75);
	// MigrateMargin is how much cooler a destination path must be for a
	// move to be worthwhile (0 selects the default, 0.20).
	MigrateUtil   float64
	MigrateMargin float64

	// Stats counts runtime activity, including allocation retries caused
	// by stale RRT records (§5.3's handshake-and-retry).
	Stats sim.Scoreboard

	// observers receive lease-lifecycle events (see events.go).
	observers leaseObservers
}

// New starts a Monitor on the given endpoint.
func New(ep *transport.Endpoint, topo fabric.Topology) *Monitor {
	m := &Monitor{
		EP:               ep,
		Topo:             topo,
		rrt:              make(map[fabric.NodeID]*Registration),
		rat:              make(map[int]*Allocation),
		tst:              make(map[[2]fabric.NodeID]*LinkStatus),
		HeartbeatTimeout: 3 * sim.Second,
		GrantTimeout:     10*ep.P.HotplugOp + sim.Millisecond,
		orphans:          make(map[fabric.NodeID][]*hotReturnReq),
		pendingRelocates: make(map[int]*pendingNotice[relocateReq]),
		pendingRevokes:   make(map[int]*pendingNotice[revokeReq]),
		delegated:        make(map[int]delegatedLease),
		pendingRackFrees: make(map[int]*rackFreeReq),
		pendingCancels:   make(map[cancelKey]*borrowCancelReq),
		spares:           make(map[fabric.NodeID][]spareRegion),
		sparePending:     make(map[fabric.NodeID]int),
	}
	ep.HandleCall(kindHeartbeat, m.onHeartbeat)
	ep.HandleCall(kindAllocMem, m.onAllocMem)
	ep.HandleCall(kindFreeMem, m.onFreeMem)
	ep.HandleCall(kindAllocDev, m.onAllocDev)
	ep.HandleCall(kindFreeDev, m.onFreeDev)
	ep.HandleCall(kindDelegate, m.onDelegate)
	ep.HandleCall(kindDelegateFree, m.onDelegateFree)
	ep.HandleCall(kindDelegateCancel, m.onDelegateCancel)
	return m
}

// Node reports the MN's node id.
func (m *Monitor) Node() fabric.NodeID { return m.EP.ID }

// Registered reports a copy of a node's RRT row.
func (m *Monitor) Registered(id fabric.NodeID) (Registration, bool) {
	r, ok := m.rrt[id]
	if !ok {
		return Registration{}, false
	}
	return *r, true
}

// Registrations returns the live RRT rows, ordered by node id — the
// donor-population snapshot observability surfaces export. Device maps
// are copied, so callers may hold the rows across MN activity.
func (m *Monitor) Registrations() []Registration {
	ids := make([]fabric.NodeID, 0, len(m.rrt))
	for id := range m.rrt {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Registration, 0, len(ids))
	for _, id := range ids {
		r := *m.rrt[id]
		if r.Devices != nil {
			devs := make(map[DeviceKind]int, len(r.Devices))
			for k, v := range r.Devices {
				devs[k] = v
			}
			r.Devices = devs
		}
		out = append(out, r)
	}
	return out
}

// Links returns the TST rows, ordered by link key — the fabric-health
// snapshot observability surfaces export.
func (m *Monitor) Links() []LinkStatus {
	keys := make([][2]fabric.NodeID, 0, len(m.tst))
	for k := range m.tst {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]LinkStatus, 0, len(keys))
	for _, k := range keys {
		out = append(out, *m.tst[k])
	}
	return out
}

// Allocations returns the live RAT rows, ordered by id.
func (m *Monitor) Allocations() []Allocation {
	ids := make([]int, 0, len(m.rat))
	for id := range m.rat {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Allocation, 0, len(ids))
	for _, id := range ids {
		out = append(out, *m.rat[id])
	}
	return out
}

// Allocation returns a copy of one live RAT row by id.
func (m *Monitor) Allocation(id int) (Allocation, bool) {
	a, ok := m.rat[id]
	if !ok {
		return Allocation{}, false
	}
	return *a, true
}

// LinkUp reports the TST state of link a<->b (true when never reported).
func (m *Monitor) LinkUp(a, b fabric.NodeID) bool {
	if s, ok := m.tst[linkKey(a, b)]; ok {
		return s.Up
	}
	return true
}

// NodeAlive reports whether heartbeats from id are recent.
func (m *Monitor) NodeAlive(id fabric.NodeID) bool {
	r, ok := m.rrt[id]
	if !ok {
		return false
	}
	return m.EP.Eng.Now().Sub(r.LastBeat) <= m.HeartbeatTimeout
}

func linkKey(a, b fabric.NodeID) [2]fabric.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]fabric.NodeID{a, b}
}

// onHeartbeat folds an agent report into the RRT and TST. It also drives
// the fast half of failure detection: a heartbeat from a node the sweep
// declared dead clears the death latch (and, when the incarnation is
// unchanged — the node never actually rebooted — settles any hot-returns
// owed from falsely re-placed leases), while an incarnation bump flags
// the node for recovery even though it never missed enough beats.
func (m *Monitor) onHeartbeat(p *sim.Proc, from fabric.NodeID, req any) (any, int) {
	hb := req.(*Heartbeat)
	r, ok := m.rrt[hb.Node]
	if !ok {
		r = &Registration{Node: hb.Node, Incarnation: hb.Incarnation}
		m.rrt[hb.Node] = r
	}
	if hb.Incarnation > r.Incarnation {
		// The node rebooted: its memory (and every donation carved from
		// it) is gone, whether or not we noticed the outage — including
		// any hot-returns we owed its previous life.
		r.Incarnation = hb.Incarnation
		r.needsRecovery = true
		delete(m.orphans, hb.Node)
		m.Stats.Add("recover.reboots_seen", 1)
	}
	if r.Dead {
		r.Dead = false
		m.Stats.Add("recover.reappeared", 1)
		if !r.needsRecovery {
			// Same incarnation: the node was healthy all along (lost
			// heartbeats). Return the regions we re-placed out from under
			// it so they stop leaking. (The recovery sweep also settles
			// orphans owed to nodes that were never declared dead.)
			m.flushOrphans(p, hb.Node)
		}
	}
	r.IdleBytes = hb.IdleBytes
	r.Devices = hb.Devices
	if len(hb.Devices) > 0 {
		// Agents advertise installed device counts, not free ones (they
		// don't know which units the MN has leased out). Re-debit the live
		// grants so a heartbeat cannot resurrect a unit that is on loan —
		// the device analogue of IdleBytes, which agents do track.
		for _, a := range m.rat {
			if a.Kind != "memory" && a.Donor == hb.Node {
				r.Devices[a.Dev]--
			}
		}
	}
	r.LastBeat = m.EP.Eng.Now()
	r.Beats++
	for _, lp := range hb.Links {
		key := linkKey(hb.Node, lp.Peer)
		s, ok := m.tst[key]
		if !ok {
			s = &LinkStatus{A: key[0], B: key[1]}
			m.tst[key] = s
		}
		s.Up = lp.Up
		s.LastSeen = m.EP.Eng.Now()
		if lp.HasUtil {
			// Both endpoints may sample the same link; keep the freshest
			// report (last writer wins — reports carry the same window
			// semantics either way).
			s.Util = lp.Util
			s.HasUtil = true
		}
	}
	_ = from
	m.Stats.Add("heartbeats", 1)
	return &ack{}, 8
}

// donorCandidates collects live donors and orders them with pol — the
// per-request policy override when non-nil, else the MN's configured
// policy, else the prototype default (distance only, §5.3). The policy
// sees the current telemetry View.
func (m *Monitor) donorCandidates(requester fabric.NodeID, pol Policy) []*Registration {
	var cands []*Registration
	for _, r := range m.rrt {
		if r.Node == requester || !m.NodeAlive(r.Node) {
			continue
		}
		cands = append(cands, r)
	}
	if pol == nil {
		pol = m.Policy
	}
	if pol == nil {
		pol = DistanceFirst{}
	}
	pol.Choose(m.view(), requester, cands)
	return cands
}

// onAllocMem services a memory request: the local donor walk first
// (unless the scope hint forbids it), then — on a sub-MN — escalation to
// the root MN when the rack is starved or the request asked for a
// remote rack outright.
func (m *Monitor) onAllocMem(p *sim.Proc, from fabric.NodeID, req any) (any, int) {
	r := req.(*AllocMemReq)
	pol, ok := m.resolvePolicy(r.Policy)
	if !ok {
		return &AllocMemResp{OK: false, Err: fmt.Sprintf("unknown policy %q", r.Policy)}, 64
	}
	// Tagged requests pass the admission controller first: it may admit
	// the full size, shrink it (degraded grant), hold the request for a
	// bounded wait, preempt Preemptible leases for a higher class, or
	// reject outright. Untagged requests (Class zero) bypass it.
	size := r.Size
	if m.Admission != nil && r.Class != tenancy.ClassNone {
		g, rejected := m.admitMem(p, from, r)
		if rejected {
			m.Stats.Add("admit.rejected", 1)
			return &AllocMemResp{OK: false, Rejected: true,
				Err: fmt.Sprintf("admission: %s class over budget for %d bytes", r.Class, r.Size)}, 64
		}
		size = g
	}
	if r.Scope != ScopeRemoteRack {
		if a, ok := m.grantFrom(p, from, size, r.WindowBase, 0, pol, grantMeta{
			latency: r.Latency, trace: r.Trace, tenant: r.Tenant, class: r.Class,
		}); ok {
			m.Stats.Add("alloc.memory", 1)
			resp := &AllocMemResp{OK: true, AllocID: a.ID, Donor: a.Donor, DonorBase: a.DonorBase}
			if size != r.Size {
				resp.Granted = size
			}
			return resp, 64
		}
	}
	if m.HasUpstream && r.Scope != ScopeLocalRack {
		if resp := m.escalate(p, from, r, size); resp != nil {
			return resp, 64
		}
	}
	m.Stats.Add("alloc.failures", 1)
	return &AllocMemResp{OK: false, Err: fmt.Sprintf("no donor with %d idle bytes", size)}, 64
}

// resolvePolicy maps a request's policy-override name onto a Policy:
// "" means no override (nil — the MN's own policy applies), anything
// else must be registered.
func (m *Monitor) resolvePolicy(name string) (Policy, bool) {
	if name == "" {
		return nil, true
	}
	return PolicyByName(name)
}

// grantMeta carries the per-request row annotations threaded through the
// donor walk: the latency-sensitive flag for the migration loop, the
// requester's lease trace id, and the owning tenant identity for the
// admission/preemption plane. All passive — none of it steers placement.
type grantMeta struct {
	latency bool
	trace   uint64
	tenant  uint64
	class   tenancy.Class
}

// grantFrom runs the donor walk for recipient: find a candidate, ask its
// agent to hot-remove and export the region, and record the RAT row. RRT
// records can be stale: a donor may decline, in which case the MN
// retries the next candidate (handshake-and-retry, §5.3). deleg tags the
// row with a root delegation id when the grant backs a cross-rack lease;
// pol, when non-nil, overrides the MN's placement policy for this walk;
// meta carries the row's passive annotations (latency class, trace id,
// tenant identity).
func (m *Monitor) grantFrom(p *sim.Proc, recipient fabric.NodeID, size, windowBase uint64, deleg int, pol Policy, meta grantMeta) (*Allocation, bool) {
	for _, cand := range m.donorCandidates(recipient, pol) {
		if cand.IdleBytes < size {
			continue
		}
		// Cross-check liveness at grant time: the candidate list was
		// drawn before any blocking call, and a donor that died while an
		// earlier candidate was being tried would get a doomed lease.
		if !m.NodeAlive(cand.Node) {
			m.Stats.Add("alloc.dead_skips", 1)
			continue
		}
		hr := &hotRemoveReq{Size: size, Recipient: recipient, RecipientBase: windowBase}
		inc := m.incarnationOf(cand.Node)
		raw, ok := m.EP.CallTimeout(p, cand.Node, kindHotRemove, 64, hr, m.GrantTimeout)
		if !ok {
			// The donor died mid-handshake (its agent never answered);
			// without the timeout this request would wedge the MN forever.
			// We cannot know whether the hot-remove happened and its ACK
			// was lost, so park a cancellation (key-resolved hot-return)
			// for when the donor is reachable again.
			m.Stats.Add("alloc.grant_timeouts", 1)
			m.queueOrphan(cand.Node, inc, &hotReturnReq{Recipient: recipient, RecipientBase: windowBase})
			cand.IdleBytes = 0
			continue
		}
		resp := raw.(*hotRemoveResp)
		if !resp.OK {
			// Stale RRT record; mark what we learned and retry.
			m.Stats.Add("alloc.retries", 1)
			cand.IdleBytes = 0
			continue
		}
		id := m.nextAllocID
		m.nextAllocID++
		a := &Allocation{
			ID: id, Kind: "memory", Donor: cand.Node, Recipient: recipient,
			DonorBase: resp.Base, RecipientBase: windowBase,
			Size: size, At: m.EP.Eng.Now(), Deleg: deleg, Latency: meta.latency,
			Trace: meta.trace, Tenant: meta.tenant, Class: meta.class,
		}
		m.rat[id] = a
		cand.IdleBytes -= size
		m.emitLease(LeaseGranted, a, a.Donor)
		m.topUpSpares()
		return a, true
	}
	return nil, false
}

// onFreeMem tears an allocation down, returning the region to its donor
// — or, for a lease delegated from another rack, forwarding the release
// up to the root MN, which owns the donor-rack indirection.
func (m *Monitor) onFreeMem(p *sim.Proc, from fabric.NodeID, req any) (any, int) {
	f := req.(*FreeMemReq)
	if ref, ok := m.delegated[f.AllocID]; ok {
		if ref.recipient != from {
			return &ack{}, 8
		}
		delete(m.delegated, f.AllocID)
		fr := &rackFreeReq{DelegID: ref.deleg}
		if _, ok := m.EP.CallTimeout(p, m.Upstream, kindRackFree, 32, fr, 3*m.GrantTimeout); !ok {
			// Lost to the spine: park for sweep retry — a dropped free
			// must not leak the delegation and its donor-rack backing.
			m.pendingRackFrees[ref.deleg] = fr
			m.Stats.Add("free.upstream_lost", 1)
		}
		m.Stats.Add("free.delegated", 1)
		return &ack{}, 8
	}
	a, ok := m.rat[f.AllocID]
	if !ok || a.Recipient != from {
		return &ack{}, 8
	}
	delete(m.rat, f.AllocID)
	m.returnRegion(p, a)
	m.Stats.Add("free.memory", 1)
	m.emitLease(LeaseReleased, a, a.Donor)
	return &ack{}, 8
}

// returnRegion hands an allocation's region back to its donor (parking
// an orphan return when the donor is unreachable) and restores the RRT
// idle-byte account.
func (m *Monitor) returnRegion(p *sim.Proc, a *Allocation) {
	ret := &hotReturnReq{
		Recipient: a.Recipient, RecipientBase: a.RecipientBase,
		Base: a.DonorBase, Size: a.Size,
	}
	inc := m.incarnationOf(a.Donor)
	if _, ok := m.EP.CallTimeout(p, a.Donor, kindHotReturn, 64, ret, m.GrantTimeout); !ok {
		// Donor unreachable: park the return with the orphan queue so it
		// settles if the donor reappears un-rebooted.
		m.queueOrphan(a.Donor, inc, ret)
		m.Stats.Add("free.donor_unreachable", 1)
	}
	if r, ok := m.rrt[a.Donor]; ok {
		r.IdleBytes += a.Size
	}
}

// onAllocDev services a device request: the local donor walk first
// (unless the scope hint forbids it), then — on a sub-MN — escalation to
// the root MN, mirroring onAllocMem's gating so device leases ride the
// same cross-rack delegation machinery as memory.
func (m *Monitor) onAllocDev(p *sim.Proc, from fabric.NodeID, req any) (any, int) {
	r := req.(*AllocDevReq)
	pol, ok := m.resolvePolicy(r.Policy)
	if !ok {
		return &AllocDevResp{OK: false, Err: fmt.Sprintf("unknown policy %q", r.Policy)}, 32
	}
	// Same admission gate as memory, in device units (free vs leased
	// counts of the requested kind). Degradation does not apply to
	// single-unit grants.
	if m.Admission != nil && r.Class != tenancy.ClassNone {
		if rejected := m.admitDev(p, from, r); rejected {
			m.Stats.Add("admit.rejected", 1)
			return &AllocDevResp{OK: false, Rejected: true,
				Err: fmt.Sprintf("admission: %s class over budget for a %s", r.Class, r.Kind)}, 32
		}
	}
	if r.Scope != ScopeRemoteRack {
		if a, ok := m.allocDevLocal(from, r.Kind, pol, 0, grantMeta{
			trace: r.Trace, tenant: r.Tenant, class: r.Class,
		}); ok {
			m.Stats.Add("alloc."+r.Kind.String(), 1)
			return &AllocDevResp{OK: true, AllocID: a.ID, Donor: a.Donor}, 32
		}
	}
	if m.HasUpstream && r.Scope != ScopeLocalRack {
		if resp := m.escalateDev(p, from, r); resp != nil {
			return resp, 32
		}
	}
	m.Stats.Add("alloc.failures", 1)
	return &AllocDevResp{OK: false, Err: "no " + r.Kind.String() + " available"}, 32
}

// allocDevLocal runs the donor walk for one device unit in this MN's own
// scope. Device grants need no agent handshake (there is no hot-plug),
// so the walk is a pure table operation. deleg tags the row when the
// grant backs a cross-rack lease delegated by the root MN; meta carries
// the row's passive annotations (trace id, tenant identity).
func (m *Monitor) allocDevLocal(recipient fabric.NodeID, kind DeviceKind, pol Policy, deleg int, meta grantMeta) (*Allocation, bool) {
	for _, cand := range m.donorCandidates(recipient, pol) {
		if cand.Devices[kind] <= 0 {
			continue
		}
		// Same grant-time liveness cross-check as memory: never hand out
		// a device on a donor whose heartbeats have stopped.
		if !m.NodeAlive(cand.Node) {
			m.Stats.Add("alloc.dead_skips", 1)
			continue
		}
		cand.Devices[kind]--
		id := m.nextAllocID
		m.nextAllocID++
		a := &Allocation{
			ID: id, Kind: kind.String(), Dev: kind, Donor: cand.Node,
			Recipient: recipient, Size: 1, At: m.EP.Eng.Now(), Deleg: deleg,
			Trace: meta.trace, Tenant: meta.tenant, Class: meta.class,
		}
		m.rat[id] = a
		m.emitLease(LeaseGranted, a, a.Donor)
		return a, true
	}
	return nil, false
}

// onFreeDev returns a device unit to its donor's RRT row — or, for a
// device lease delegated from another rack, forwards the release up to
// the root MN exactly like onFreeMem does for delegated memory (the
// rollback path AcquireAll's reverse unwind depends on).
func (m *Monitor) onFreeDev(p *sim.Proc, from fabric.NodeID, req any) (any, int) {
	f := req.(*FreeDevReq)
	if ref, ok := m.delegated[f.AllocID]; ok {
		if ref.recipient != from {
			return &ack{}, 8
		}
		delete(m.delegated, f.AllocID)
		fr := &rackFreeReq{DelegID: ref.deleg}
		if _, ok := m.EP.CallTimeout(p, m.Upstream, kindRackFree, 32, fr, 3*m.GrantTimeout); !ok {
			m.pendingRackFrees[ref.deleg] = fr
			m.Stats.Add("free.upstream_lost", 1)
		}
		m.Stats.Add("free.delegated", 1)
		return &ack{}, 8
	}
	a, ok := m.rat[f.AllocID]
	if !ok || a.Recipient != from || a.Kind == "memory" {
		return &ack{}, 8
	}
	delete(m.rat, f.AllocID)
	if r, ok := m.rrt[a.Donor]; ok && r.Devices != nil {
		r.Devices[a.Dev]++
	}
	m.Stats.Add("free.device", 1)
	m.emitLease(LeaseReleased, a, a.Donor)
	return &ack{}, 8
}
