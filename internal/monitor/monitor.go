package monitor

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Registration is one node's row in the Resource Registration Table.
type Registration struct {
	Node      fabric.NodeID
	IdleBytes uint64
	Devices   map[DeviceKind]int
	LastBeat  sim.Time
	Beats     int64
}

// Allocation is one row of the Resource Allocation Table.
type Allocation struct {
	ID            int
	Kind          string     // "memory" or a DeviceKind name
	Dev           DeviceKind // valid when Kind is a device
	Donor         fabric.NodeID
	Recipient     fabric.NodeID
	DonorBase     uint64
	RecipientBase uint64
	Size          uint64
	At            sim.Time
}

// LinkStatus is one row of the Topology Status Table.
type LinkStatus struct {
	A, B     fabric.NodeID
	Up       bool
	LastSeen sim.Time
}

// Monitor is the Monitor Node runtime. One instance runs on a designated
// node's endpoint. (The paper notes the MN should be replicated to avoid
// a single point of failure but, like the prototype, we run one.)
type Monitor struct {
	EP   *transport.Endpoint
	Topo fabric.Topology

	rrt map[fabric.NodeID]*Registration
	rat map[int]*Allocation
	tst map[[2]fabric.NodeID]*LinkStatus

	nextAllocID int

	// Policy orders donor candidates; nil means the prototype's
	// distance-first policy.
	Policy Policy

	// HeartbeatTimeout marks a node dead when its reports stop.
	HeartbeatTimeout sim.Dur

	// Stats counts runtime activity, including allocation retries caused
	// by stale RRT records (§5.3's handshake-and-retry).
	Stats sim.Scoreboard
}

// New starts a Monitor on the given endpoint.
func New(ep *transport.Endpoint, topo fabric.Topology) *Monitor {
	m := &Monitor{
		EP:               ep,
		Topo:             topo,
		rrt:              make(map[fabric.NodeID]*Registration),
		rat:              make(map[int]*Allocation),
		tst:              make(map[[2]fabric.NodeID]*LinkStatus),
		HeartbeatTimeout: 3 * sim.Second,
	}
	ep.HandleCall(kindHeartbeat, m.onHeartbeat)
	ep.HandleCall(kindAllocMem, m.onAllocMem)
	ep.HandleCall(kindFreeMem, m.onFreeMem)
	ep.HandleCall(kindAllocDev, m.onAllocDev)
	ep.HandleCall(kindFreeDev, m.onFreeDev)
	return m
}

// Node reports the MN's node id.
func (m *Monitor) Node() fabric.NodeID { return m.EP.ID }

// Registered reports a copy of a node's RRT row.
func (m *Monitor) Registered(id fabric.NodeID) (Registration, bool) {
	r, ok := m.rrt[id]
	if !ok {
		return Registration{}, false
	}
	return *r, true
}

// Allocations returns the live RAT rows, ordered by id.
func (m *Monitor) Allocations() []Allocation {
	ids := make([]int, 0, len(m.rat))
	for id := range m.rat {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Allocation, 0, len(ids))
	for _, id := range ids {
		out = append(out, *m.rat[id])
	}
	return out
}

// LinkUp reports the TST state of link a<->b (true when never reported).
func (m *Monitor) LinkUp(a, b fabric.NodeID) bool {
	if s, ok := m.tst[linkKey(a, b)]; ok {
		return s.Up
	}
	return true
}

// NodeAlive reports whether heartbeats from id are recent.
func (m *Monitor) NodeAlive(id fabric.NodeID) bool {
	r, ok := m.rrt[id]
	if !ok {
		return false
	}
	return m.EP.Eng.Now().Sub(r.LastBeat) <= m.HeartbeatTimeout
}

func linkKey(a, b fabric.NodeID) [2]fabric.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]fabric.NodeID{a, b}
}

// onHeartbeat folds an agent report into the RRT and TST.
func (m *Monitor) onHeartbeat(_ *sim.Proc, from fabric.NodeID, req any) (any, int) {
	hb := req.(*Heartbeat)
	r, ok := m.rrt[hb.Node]
	if !ok {
		r = &Registration{Node: hb.Node}
		m.rrt[hb.Node] = r
	}
	r.IdleBytes = hb.IdleBytes
	r.Devices = hb.Devices
	r.LastBeat = m.EP.Eng.Now()
	r.Beats++
	for _, lp := range hb.Links {
		key := linkKey(hb.Node, lp.Peer)
		s, ok := m.tst[key]
		if !ok {
			s = &LinkStatus{A: key[0], B: key[1]}
			m.tst[key] = s
		}
		s.Up = lp.Up
		s.LastSeen = m.EP.Eng.Now()
	}
	_ = from
	m.Stats.Add("heartbeats", 1)
	return &ack{}, 8
}

// donorCandidates collects live donors and orders them with the active
// policy (the prototype default considers only distance, §5.3).
func (m *Monitor) donorCandidates(requester fabric.NodeID) []*Registration {
	var cands []*Registration
	for _, r := range m.rrt {
		if r.Node == requester || !m.NodeAlive(r.Node) {
			continue
		}
		cands = append(cands, r)
	}
	pol := m.Policy
	if pol == nil {
		pol = DistanceFirst{}
	}
	pol.Order(m, requester, cands)
	return cands
}

// onAllocMem finds a donor, asks its agent to hot-remove and export the
// region, and records the allocation. RRT records can be stale: a donor
// may decline, in which case the MN retries the next candidate
// (handshake-and-retry, §5.3).
func (m *Monitor) onAllocMem(p *sim.Proc, from fabric.NodeID, req any) (any, int) {
	r := req.(*AllocMemReq)
	for _, cand := range m.donorCandidates(from) {
		if cand.IdleBytes < r.Size {
			continue
		}
		hr := &hotRemoveReq{Size: r.Size, Recipient: from, RecipientBase: r.WindowBase}
		resp := m.EP.Call(p, cand.Node, kindHotRemove, 64, hr).(*hotRemoveResp)
		if !resp.OK {
			// Stale RRT record; mark what we learned and retry.
			m.Stats.Add("alloc.retries", 1)
			cand.IdleBytes = 0
			continue
		}
		id := m.nextAllocID
		m.nextAllocID++
		m.rat[id] = &Allocation{
			ID: id, Kind: "memory", Donor: cand.Node, Recipient: from,
			DonorBase: resp.Base, RecipientBase: r.WindowBase,
			Size: r.Size, At: m.EP.Eng.Now(),
		}
		cand.IdleBytes -= r.Size
		m.Stats.Add("alloc.memory", 1)
		return &AllocMemResp{OK: true, AllocID: id, Donor: cand.Node, DonorBase: resp.Base}, 64
	}
	m.Stats.Add("alloc.failures", 1)
	return &AllocMemResp{OK: false, Err: fmt.Sprintf("no donor with %d idle bytes", r.Size)}, 64
}

// onFreeMem tears an allocation down, returning the region to its donor.
func (m *Monitor) onFreeMem(p *sim.Proc, from fabric.NodeID, req any) (any, int) {
	f := req.(*FreeMemReq)
	a, ok := m.rat[f.AllocID]
	if !ok || a.Recipient != from {
		return &ack{}, 8
	}
	delete(m.rat, f.AllocID)
	m.EP.Call(p, a.Donor, kindHotReturn, 64, &hotReturnReq{
		Recipient: a.Recipient, RecipientBase: a.RecipientBase,
		Base: a.DonorBase, Size: a.Size,
	})
	if r, ok := m.rrt[a.Donor]; ok {
		r.IdleBytes += a.Size
	}
	m.Stats.Add("free.memory", 1)
	return &ack{}, 8
}

// onAllocDev grants a device unit on the nearest donor advertising one.
func (m *Monitor) onAllocDev(_ *sim.Proc, from fabric.NodeID, req any) (any, int) {
	r := req.(*AllocDevReq)
	for _, cand := range m.donorCandidates(from) {
		if cand.Devices[r.Kind] <= 0 {
			continue
		}
		cand.Devices[r.Kind]--
		id := m.nextAllocID
		m.nextAllocID++
		m.rat[id] = &Allocation{
			ID: id, Kind: r.Kind.String(), Dev: r.Kind, Donor: cand.Node,
			Recipient: from, Size: 1, At: m.EP.Eng.Now(),
		}
		m.Stats.Add("alloc."+r.Kind.String(), 1)
		return &AllocDevResp{OK: true, AllocID: id, Donor: cand.Node}, 32
	}
	m.Stats.Add("alloc.failures", 1)
	return &AllocDevResp{OK: false, Err: "no " + r.Kind.String() + " available"}, 32
}

// onFreeDev returns a device unit to its donor's RRT row.
func (m *Monitor) onFreeDev(_ *sim.Proc, from fabric.NodeID, req any) (any, int) {
	f := req.(*FreeDevReq)
	a, ok := m.rat[f.AllocID]
	if !ok || a.Recipient != from {
		return &ack{}, 8
	}
	delete(m.rat, f.AllocID)
	if r, ok := m.rrt[a.Donor]; ok && r.Devices != nil {
		r.Devices[a.Dev]++
	}
	m.Stats.Add("free.device", 1)
	return &ack{}, 8
}
