package monitor

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Agent is the per-node daemon: it periodically reports idle resources
// and link health to the MN (serving as the MN's heartbeat), and it
// services the donor side of memory sharing — hot-remove, CRMA export,
// and the reverse on release (Fig. 2).
type Agent struct {
	EP     *transport.Endpoint
	MemMgr *memsys.MemManager
	Net    *fabric.Network

	// Devices advertises shareable device units (accelerators, NICs).
	Devices map[DeviceKind]int

	// Interval is the heartbeat period.
	Interval sim.Dur

	mn      fabric.NodeID
	stopped bool

	exports map[string]*transport.RAMTEntry // donor-side export bookkeeping

	// Stats counts agent activity.
	Stats sim.Scoreboard
}

// NewAgent attaches an agent to a node's endpoint and memory manager.
func NewAgent(ep *transport.Endpoint, mm *memsys.MemManager, net *fabric.Network) *Agent {
	a := &Agent{
		EP:       ep,
		MemMgr:   mm,
		Net:      net,
		Devices:  make(map[DeviceKind]int),
		Interval: 500 * sim.Millisecond,
		exports:  make(map[string]*transport.RAMTEntry),
	}
	ep.HandleCall(kindHotRemove, a.onHotRemove)
	ep.HandleCall(kindHotReturn, a.onHotReturn)
	return a
}

// Start begins heartbeating to the MN at mnID. Each node's phase is
// staggered by its id so reports do not stampede the MN.
func (a *Agent) Start(mnID fabric.NodeID) {
	a.mn = mnID
	a.EP.Eng.Go(fmt.Sprintf("agent@%v", a.EP.ID), func(p *sim.Proc) {
		p.Sleep(sim.Dur(int64(a.EP.ID)+1) * sim.Millisecond)
		for !a.stopped {
			a.beat(p)
			p.Sleep(a.Interval)
		}
	})
}

// Stop ends the heartbeat loop after the current period.
func (a *Agent) Stop() { a.stopped = true }

// beat sends one heartbeat: idle memory, device counts, link probes.
func (a *Agent) beat(p *sim.Proc) {
	devs := make(map[DeviceKind]int, len(a.Devices))
	for k, v := range a.Devices {
		devs[k] = v
	}
	hb := &Heartbeat{
		Node:      a.EP.ID,
		IdleBytes: a.MemMgr.Idle(),
		Devices:   devs,
		Links:     a.probeLinks(),
	}
	a.EP.Call(p, a.mn, kindHeartbeat, 64, hb)
	a.Stats.Add("beats", 1)
}

// probeLinks tests this node's fabric ports (the daemon "tests and
// reports the status of the Venice fabric links on every heartbeat").
func (a *Agent) probeLinks() []LinkProbe {
	var probes []LinkProbe
	for _, nb := range a.Net.Topo.NeighborsOf(a.EP.ID) {
		up := true
		if l := a.Net.Link(a.EP.ID, nb); l != nil && l.Down() {
			up = false
		}
		if l := a.Net.Link(nb, a.EP.ID); l != nil && l.Down() {
			up = false
		}
		probes = append(probes, LinkProbe{Peer: nb, Up: up})
	}
	return probes
}

// exportKey identifies a donor-side export for later teardown.
func exportKey(recipient fabric.NodeID, recipientBase uint64) string {
	return fmt.Sprintf("%v:%#x", recipient, recipientBase)
}

// onHotRemove services the MN's donation request: hot-remove the region
// from the local OS and export it over CRMA for the recipient.
func (a *Agent) onHotRemove(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	r := req.(*hotRemoveReq)
	if a.MemMgr.Idle() < r.Size {
		a.Stats.Add("hotremove.declined", 1)
		return &hotRemoveResp{OK: false, Err: "insufficient idle memory"}, 32
	}
	base, err := a.MemMgr.HotRemove(p, r.Size)
	if err != nil {
		a.Stats.Add("hotremove.declined", 1)
		return &hotRemoveResp{OK: false, Err: err.Error()}, 32
	}
	e := a.EP.CRMA.Export(r.Recipient, r.RecipientBase, r.Size, base)
	a.exports[exportKey(r.Recipient, r.RecipientBase)] = e
	a.Stats.Add("hotremove.ok", 1)
	return &hotRemoveResp{OK: true, Base: base}, 32
}

// onHotReturn tears down a donation: invalidate the export and hot-add
// the region back into the local OS.
func (a *Agent) onHotReturn(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	r := req.(*hotReturnReq)
	key := exportKey(r.Recipient, r.RecipientBase)
	if e, ok := a.exports[key]; ok {
		a.EP.CRMA.Unmap(e)
		delete(a.exports, key)
	} else {
		// The recipient base is not always known on free (the MN's RAT
		// does not store it); fall back to scanning for the recipient.
		a.EP.CRMA.UnexportAll(r.Recipient)
	}
	if err := a.MemMgr.HotAddReturn(p, r.Base, r.Size); err != nil {
		a.Stats.Add("hotreturn.failed", 1)
		return &ack{}, 8
	}
	a.Stats.Add("hotreturn.ok", 1)
	return &ack{}, 8
}
