package monitor

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Agent is the per-node daemon: it periodically reports idle resources
// and link health to the MN (serving as the MN's heartbeat), and it
// services the donor side of memory sharing — hot-remove, CRMA export,
// and the reverse on release (Fig. 2).
type Agent struct {
	EP     *transport.Endpoint
	MemMgr *memsys.MemManager
	Net    *fabric.Network

	// Devices advertises shareable device units (accelerators, NICs).
	Devices map[DeviceKind]int

	// Interval is the heartbeat period.
	Interval sim.Dur

	// Telemetry enables the windowed link-utilization plane: each
	// heartbeat's link probes then carry the utilization of the window
	// since the previous beat, sampled from both directions of every
	// adjacent link. Off by default — the probe wire format is unchanged
	// when disabled.
	Telemetry bool

	mn      fabric.NodeID
	stopped bool

	// crashed models the node being down: the daemon skips beats (and the
	// fabric drops anything it would have sent anyway). muted models
	// heartbeat loss alone — the node is healthy but its reports are not
	// getting through, the false-positive case the MN's incarnation check
	// exists to disambiguate.
	crashed bool
	muted   bool

	// incarnation counts reboots; it rides every heartbeat so the MN can
	// detect a crash-and-return faster than the heartbeat timeout.
	incarnation int64

	exports map[string]*transport.RAMTEntry // donor-side export bookkeeping

	// marks holds each adjacent link direction's last telemetry sample,
	// keyed by neighbor, so probes report per-window utilization.
	marks map[fabric.NodeID]*linkMarks

	// spares holds pre-plugged regions (base -> size): memory already
	// hot-removed from the local OS but not yet exported to anyone,
	// parked so a failover can attach it without the hot-plug latency.
	spares map[uint64]uint64

	// Stats counts agent activity.
	Stats sim.Scoreboard
}

// linkMarks is one neighbor's pair of directional telemetry samples.
type linkMarks struct {
	out, in fabric.LinkSample
}

// NewAgent attaches an agent to a node's endpoint and memory manager.
func NewAgent(ep *transport.Endpoint, mm *memsys.MemManager, net *fabric.Network) *Agent {
	a := &Agent{
		EP:       ep,
		MemMgr:   mm,
		Net:      net,
		Devices:  make(map[DeviceKind]int),
		Interval: 500 * sim.Millisecond,
		exports:  make(map[string]*transport.RAMTEntry),
		marks:    make(map[fabric.NodeID]*linkMarks),
		spares:   make(map[uint64]uint64),
	}
	ep.HandleCall(kindHotRemove, a.onHotRemove)
	ep.HandleCall(kindHotReturn, a.onHotReturn)
	ep.HandleCall(kindRelocate, a.onRelocate)
	ep.HandleCall(kindRevoke, a.onRevoke)
	ep.HandleCall(kindSpareCarve, a.onSpareCarve)
	ep.HandleCall(kindSpareAttach, a.onSpareAttach)
	return a
}

// Start begins heartbeating to the MN at mnID. Each node's phase is
// staggered by its id so reports do not stampede the MN.
func (a *Agent) Start(mnID fabric.NodeID) {
	a.mn = mnID
	a.EP.Eng.Go(fmt.Sprintf("agent@%v", a.EP.ID), func(p *sim.Proc) {
		p.Sleep(sim.Dur(int64(a.EP.ID)+1) * sim.Millisecond)
		for !a.stopped {
			if !a.crashed && !a.muted {
				a.beat(p)
			}
			p.Sleep(a.Interval)
		}
	})
}

// Stop ends the heartbeat loop after the current period.
func (a *Agent) Stop() { a.stopped = true }

// Crash models the node going down: the daemon stops beating until
// Restart. The fabric-side half (dropping the node's packets) is the
// chaos injector's job; Crash only covers the software that dies.
func (a *Agent) Crash() { a.crashed = true }

// Restart models the node rebooting: the transport channel's soft state
// and the OS memory map reset (donations and leases do not survive a
// power cycle), the incarnation counter ticks so the MN learns about the
// reboot even if the outage was shorter than its heartbeat timeout, and
// beating resumes.
func (a *Agent) Restart() {
	a.incarnation++
	a.exports = make(map[string]*transport.RAMTEntry)
	a.spares = make(map[uint64]uint64) // parked spares die with the power cycle
	a.EP.CRMA.Reset()
	a.MemMgr.Reboot()
	a.crashed = false
	a.Stats.Add("reboots", 1)
}

// Crashed reports whether the agent currently models a downed node.
func (a *Agent) Crashed() bool { return a.crashed }

// Incarnation reports the agent's reboot count.
func (a *Agent) Incarnation() int64 { return a.incarnation }

// Mute suppresses (or restores) heartbeats without touching node state —
// the pure heartbeat-loss fault. A muted agent still services donor
// requests; the MN may falsely declare it dead and re-place its leases,
// which is exactly the scenario the orphan-return path cleans up.
func (a *Agent) Mute(muted bool) { a.muted = muted }

// beat sends one heartbeat: idle memory, device counts, link probes.
func (a *Agent) beat(p *sim.Proc) {
	devs := make(map[DeviceKind]int, len(a.Devices))
	for k, v := range a.Devices {
		devs[k] = v
	}
	hb := &Heartbeat{
		Node:        a.EP.ID,
		IdleBytes:   a.MemMgr.Idle(),
		Devices:     devs,
		Links:       a.probeLinks(),
		Incarnation: a.incarnation,
	}
	// Bounded wait: a beat whose ack is lost (down link on the MN path,
	// or our own node dying mid-flight) must not wedge the daemon.
	if _, ok := a.EP.CallTimeout(p, a.mn, kindHeartbeat, 64, hb, a.Interval); !ok {
		a.Stats.Add("beats.lost", 1)
	}
	a.Stats.Add("beats", 1)
}

// probeLinks tests this node's fabric ports (the daemon "tests and
// reports the status of the Venice fabric links on every heartbeat").
// With Telemetry on, each probe additionally samples both directions of
// the link and reports the busier one's utilization over the window
// since the previous beat.
func (a *Agent) probeLinks() []LinkProbe {
	var probes []LinkProbe
	for _, nb := range a.Net.Topo.NeighborsOf(a.EP.ID) {
		pr := LinkProbe{Peer: nb, Up: true}
		out := a.Net.Link(a.EP.ID, nb)
		in := a.Net.Link(nb, a.EP.ID)
		if out != nil && out.Down() {
			pr.Up = false
		}
		if in != nil && in.Down() {
			pr.Up = false
		}
		if a.Telemetry && out != nil && in != nil {
			mk, ok := a.marks[nb]
			if !ok {
				mk = &linkMarks{}
				a.marks[nb] = mk
			}
			u := out.UtilizationSince(mk.out)
			if ui := in.UtilizationSince(mk.in); ui > u {
				u = ui
			}
			pr.Util, pr.HasUtil = u, true
			mk.out, mk.in = out.Sample(), in.Sample()
		}
		probes = append(probes, pr)
	}
	return probes
}

// exportKey identifies a donor-side export for later teardown.
func exportKey(recipient fabric.NodeID, recipientBase uint64) string {
	return fmt.Sprintf("%v:%#x", recipient, recipientBase)
}

// onHotRemove services the MN's donation request: hot-remove the region
// from the local OS and export it over CRMA for the recipient.
func (a *Agent) onHotRemove(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	r := req.(*hotRemoveReq)
	if a.MemMgr.Idle() < r.Size {
		a.Stats.Add("hotremove.declined", 1)
		return &hotRemoveResp{OK: false, Err: "insufficient idle memory"}, 32
	}
	base, err := a.MemMgr.HotRemove(p, r.Size)
	if err != nil {
		a.Stats.Add("hotremove.declined", 1)
		return &hotRemoveResp{OK: false, Err: err.Error()}, 32
	}
	e := a.EP.CRMA.Export(r.Recipient, r.RecipientBase, r.Size, base)
	a.exports[exportKey(r.Recipient, r.RecipientBase)] = e
	a.Stats.Add("hotremove.ok", 1)
	return &hotRemoveResp{OK: true, Base: base}, 32
}

// onRelocate services the MN's lease-failover notice on the recipient:
// retarget the window's RAMT entry at the new donor and replay every
// access that was in flight toward the dead one. The window's user never
// sees an API change — blocked loads simply complete late, which is the
// transparency §3 promises extended to the failure path.
func (a *Agent) onRelocate(_ *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	r := req.(*relocateReq)
	e, ok := a.EP.CRMA.Lookup(r.RecipientBase)
	if !ok || e.LocalBase != r.RecipientBase || e.Size != r.Size {
		// The window is gone (released concurrently with the failover);
		// nothing to retarget. The MN's RAT row will clear on free.
		a.Stats.Add("relocate.stale", 1)
		return &relocateResp{OK: false}, 16
	}
	a.EP.CRMA.Retarget(e, r.NewDonor, r.NewDonorBase)
	replayed := a.EP.CRMA.ReplayWindow(r.RecipientBase, r.Size)
	a.Stats.Add("relocate.ok", 1)
	a.Stats.Add("relocate.replayed", int64(replayed))
	return &relocateResp{OK: true}, 16
}

// onRevoke services the MN's revoke-without-replacement notice: the
// window goes dead so parked accesses unwedge and future ones fail fast.
func (a *Agent) onRevoke(_ *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	r := req.(*revokeReq)
	a.EP.CRMA.KillWindow(r.RecipientBase, r.Size)
	a.Stats.Add("revoked", 1)
	return &ack{}, 8
}

// onSpareCarve services the MN's spare-pool provisioning request:
// hot-remove the region now — off any grant's critical path — and park
// it unexported so a later spareAttach can hand it out without the
// hot-plug latency.
func (a *Agent) onSpareCarve(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	r := req.(*spareCarveReq)
	if a.MemMgr.Idle() < r.Size {
		a.Stats.Add("spare.declined", 1)
		return &spareCarveResp{OK: false, Err: "insufficient idle memory"}, 32
	}
	base, err := a.MemMgr.HotRemove(p, r.Size)
	if err != nil {
		a.Stats.Add("spare.declined", 1)
		return &spareCarveResp{OK: false, Err: err.Error()}, 32
	}
	a.spares[base] = r.Size
	a.Stats.Add("spare.carved", 1)
	return &spareCarveResp{OK: true, Base: base}, 32
}

// onSpareAttach exports a parked spare region to a recipient — the
// failover/migration fast path. The hot-plug already happened at carve
// time, so this is only the CRMA export install.
func (a *Agent) onSpareAttach(_ *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	r := req.(*spareAttachReq)
	size, ok := a.spares[r.Base]
	if !ok || size != r.Size {
		// The MN's pool entry is stale (we rebooted since the carve, or
		// this is a duplicate attach): refuse so the MN falls back to an
		// ordinary hot-remove instead of handing out memory we don't hold.
		a.Stats.Add("spare.attach_stale", 1)
		return &spareAttachResp{OK: false, Err: "no such spare region"}, 16
	}
	delete(a.spares, r.Base)
	e := a.EP.CRMA.Export(r.Recipient, r.RecipientBase, r.Size, r.Base)
	a.exports[exportKey(r.Recipient, r.RecipientBase)] = e
	a.Stats.Add("spare.attached", 1)
	return &spareAttachResp{OK: true}, 16
}

// onHotReturn tears down a donation: invalidate the export and hot-add
// the region back into the local OS.
func (a *Agent) onHotReturn(p *sim.Proc, _ fabric.NodeID, req any) (any, int) {
	r := req.(*hotReturnReq)
	key := exportKey(r.Recipient, r.RecipientBase)
	e, ok := a.exports[key]
	if !ok {
		// Stale or duplicate return (e.g. an orphan replayed after a
		// reboot already wiped the export, or a cancellation for a
		// hot-remove this agent never performed): refuse rather than
		// guess — scanning by recipient could unexport a live sibling
		// lease.
		a.Stats.Add("hotreturn.stale", 1)
		return &ack{}, 8
	}
	base, size := r.Base, r.Size
	if size == 0 {
		// Cancellation form: the MN never saw our hot-remove ACK, so it
		// cannot name the region; our export entry can.
		base, size = e.RemoteBase, e.Size
		a.Stats.Add("hotreturn.cancelled", 1)
	}
	a.EP.CRMA.Unmap(e)
	delete(a.exports, key)
	if err := a.MemMgr.HotAddReturn(p, base, size); err != nil {
		a.Stats.Add("hotreturn.failed", 1)
		return &ack{}, 8
	}
	a.Stats.Add("hotreturn.ok", 1)
	return &ack{}, 8
}
