package monitor

import (
	"testing"

	"repro/internal/sim"
)

// allocFrom issues one raw AllocMem RPC from a node, installs the
// recipient-side CRMA window (the transport half the core layer's
// mountCRMA would do), and runs the engine until it settles.
func allocFrom(t *testing.T, c *cluster, node int, size uint64) *AllocMemResp {
	t.Helper()
	var resp *AllocMemResp
	recipient := c.nodes[node]
	recipient.Run("alloc", func(p *sim.Proc) {
		win := recipient.NextHotplugWindow(size)
		resp = recipient.EP.Call(p, 0, kindAllocMem, 64,
			&AllocMemReq{Size: size, WindowBase: win}).(*AllocMemResp)
		if resp.OK {
			if _, err := recipient.EP.CRMA.Map(win, size, resp.Donor, resp.DonorBase); err != nil {
				t.Errorf("mapping window: %v", err)
			}
		}
	})
	c.eng.RunFor(5 * sim.Second)
	if resp == nil || !resp.OK {
		t.Fatalf("allocation failed: %+v", resp)
	}
	return resp
}

// reserveAllOn takes a node's memory out of donor candidacy so tests can
// steer which donor the policy elects.
func reserveAllOn(t *testing.T, c *cluster, node int) {
	t.Helper()
	if err := c.nodes[node].MemMgr.Reserve(c.nodes[node].MemMgr.Idle()); err != nil {
		t.Fatal(err)
	}
}

// The 2x2x2 mesh routes statically, so crashing a node also severs every
// static route through it — crashing node 3 partitions node 7 from the
// MN, for example. The recovery tests pick victims that transit nobody's
// path to node 0 (5 and 6), or recipients adjacent to the MN, so they
// exercise exactly the failure they name. The churn scenario and chaos
// tests cover the messier partition dynamics.

// TestGrantTimeLivenessCrossCheck is the regression for handing out
// doomed leases: a donor that dies between the candidate scan and the
// hot-remove handshake must be skipped (bounded by GrantTimeout), not
// granted — and the MN must not wedge waiting for its answer forever.
func TestGrantTimeLivenessCrossCheck(t *testing.T) {
	c := newCluster(t, 1<<30)
	// Keep the MN (node 0, recipient 1's nearest candidate) out of donor
	// candidacy so dead node 3 tops the list.
	reserveAllOn(t, c, 0)
	c.eng.RunFor(1 * sim.Second)

	// Node 3 is now node 1's nearest candidate with memory. Kill it right
	// after its last heartbeat: the RRT still shows it alive and idle.
	c.agents[3].Crash()
	c.net.SetNodeDown(3, true)
	if !c.mn.NodeAlive(3) {
		t.Fatal("test premise broken: node 3 should still look alive")
	}

	resp := allocFrom(t, c, 1, 256<<20)
	if resp.Donor == 3 {
		t.Fatal("dead node 3 granted a doomed lease")
	}
	if c.mn.Stats.Get("alloc.grant_timeouts") == 0 {
		t.Fatal("no grant timeout recorded; the dead donor was never tried or the cross-check path is untested")
	}
}

// TestDonorDeathReplacesLease exercises the failover path end to end at
// the table level: the donor stops beating, the sweep declares it dead,
// and the lease moves to a surviving donor under the same allocation id.
func TestDonorDeathReplacesLease(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.StartRecovery()
	defer c.mn.StopRecovery()
	// Recipient 4 is adjacent to the MN; with node 0 reserved its nearest
	// donor is node 5, which no static route to the MN transits.
	reserveAllOn(t, c, 0)
	c.eng.RunFor(1 * sim.Second)

	resp := allocFrom(t, c, 4, 128<<20)
	first := resp.Donor
	if first != 5 {
		t.Fatalf("test premise broken: expected donor 5, got %v", first)
	}

	c.agents[first].Crash()
	c.net.SetNodeDown(first, true)
	c.eng.RunFor(10 * sim.Second) // timeout (3s) + sweep + failover

	a, ok := c.mn.Allocation(resp.AllocID)
	if !ok {
		t.Fatal("allocation vanished instead of failing over")
	}
	if a.Donor == first {
		t.Fatalf("lease still on dead donor %v", first)
	}
	if c.mn.Stats.Get("recover.deaths") == 0 || c.mn.Stats.Get("recover.replaced") == 0 {
		t.Fatalf("recovery stats missing: deaths=%d replaced=%d",
			c.mn.Stats.Get("recover.deaths"), c.mn.Stats.Get("recover.replaced"))
	}
	// The replacement donor actually holds a hot-removed region.
	if c.nodes[a.Donor].MemMgr.Removed() != 128<<20 {
		t.Fatalf("new donor %v shows %d removed bytes", a.Donor, c.nodes[a.Donor].MemMgr.Removed())
	}
}

// TestRecipientDeathReclaimsLease: when the lease HOLDER dies, the MN
// returns the donor's region to service instead of leaking it.
func TestRecipientDeathReclaimsLease(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.StartRecovery()
	defer c.mn.StopRecovery()
	c.eng.RunFor(1 * sim.Second)

	resp := allocFrom(t, c, 7, 128<<20)
	donor := c.nodes[resp.Donor]
	if donor.MemMgr.Removed() != 128<<20 {
		t.Fatal("donation not recorded")
	}

	c.agents[7].Crash()
	c.net.SetNodeDown(7, true)
	c.eng.RunFor(10 * sim.Second)

	if _, ok := c.mn.Allocation(resp.AllocID); ok {
		t.Fatal("orphaned lease still in the RAT")
	}
	if donor.MemMgr.Removed() != 0 {
		t.Fatalf("donor still shows %d removed bytes after reclaim", donor.MemMgr.Removed())
	}
	if c.mn.Stats.Get("recover.reclaimed") == 0 {
		t.Fatal("no reclaim recorded")
	}
}

// TestRebootInsideTimeoutStillRecovers: a crash-and-reboot faster than
// the heartbeat timeout loses the donated region all the same. The
// incarnation number on the returning heartbeats is what lets the MN
// catch it.
func TestRebootInsideTimeoutStillRecovers(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.StartRecovery()
	defer c.mn.StopRecovery()
	reserveAllOn(t, c, 0)
	c.eng.RunFor(1 * sim.Second)

	resp := allocFrom(t, c, 4, 128<<20)
	first := resp.Donor

	// Outage of ~1s, well under the 3s heartbeat timeout.
	c.agents[first].Crash()
	c.net.SetNodeDown(first, true)
	c.eng.RunFor(1 * sim.Second)
	c.net.SetNodeDown(first, false)
	c.agents[first].Restart()
	c.eng.RunFor(5 * sim.Second)

	a, ok := c.mn.Allocation(resp.AllocID)
	if !ok {
		t.Fatal("allocation vanished instead of failing over")
	}
	if a.Donor == first {
		t.Fatalf("lease still points at rebooted donor %v, whose memory is fresh", first)
	}
	// The rebooted node's memory map is clean — nothing left hot-removed.
	if c.nodes[first].MemMgr.Removed() != 0 {
		t.Fatalf("rebooted donor still shows %d removed bytes", c.nodes[first].MemMgr.Removed())
	}
	if c.mn.Stats.Get("recover.reboots_seen") == 0 {
		t.Fatal("incarnation bump never observed")
	}
}

// TestLostRelocateIsRetried: the failover commits on the MN while a
// link flap eats the relocate notice — the recipient would aim at the
// dead donor forever. The sweep must redeliver the notice once the path
// heals.
func TestLostRelocateIsRetried(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.StartRecovery()
	defer c.mn.StopRecovery()
	reserveAllOn(t, c, 0)
	c.eng.RunFor(1 * sim.Second)

	resp := allocFrom(t, c, 4, 128<<20) // donor 5 (nearest with memory)
	if resp.Donor != 5 {
		t.Fatalf("test premise broken: expected donor 5, got %v", resp.Donor)
	}

	// Crash the donor now; with the 3s timeout and 1.5s sweeps the death
	// lands ~4.5s later. Flap the MN<->recipient link across exactly that
	// window so the relocate notice is lost but the recipient is never
	// itself declared dead (the flap is well under the 3s timeout).
	c.agents[5].Crash()
	c.net.SetNodeDown(5, true)
	c.eng.Schedule(2900*sim.Millisecond, func() { c.net.SetLinkDown(0, 4, true) })
	c.eng.Schedule(3700*sim.Millisecond, func() { c.net.SetLinkDown(0, 4, false) })
	c.eng.RunFor(11 * sim.Second)

	a, ok := c.mn.Allocation(resp.AllocID)
	if !ok || a.Donor == 5 {
		t.Fatalf("lease not failed over: %+v (ok=%v)", a, ok)
	}
	if c.mn.Stats.Get("recover.relocate_lost") == 0 {
		t.Fatal("test premise broken: the relocate notice was never lost to the flap")
	}
	if c.mn.Stats.Get("recover.relocate_retried") == 0 {
		t.Fatal("lost relocate never retried")
	}
	if c.agents[4].Stats.Get("relocate.ok") == 0 {
		t.Fatal("recipient never received the relocation — its window still aims at the dead donor")
	}
}

// TestHeartbeatLossFalsePositive: a healthy donor whose heartbeats stop
// getting through is declared dead and its lease moved — the safe
// choice. When its beats resume un-rebooted, the MN settles the
// hot-returns it owes so the region does not leak.
func TestHeartbeatLossFalsePositive(t *testing.T) {
	c := newCluster(t, 1<<30)
	c.mn.StartRecovery()
	defer c.mn.StopRecovery()
	c.eng.RunFor(1 * sim.Second)

	resp := allocFrom(t, c, 7, 128<<20)
	first := resp.Donor

	c.agents[first].Mute(true)
	c.eng.RunFor(10 * sim.Second) // declared dead; lease re-placed

	a, ok := c.mn.Allocation(resp.AllocID)
	if !ok || a.Donor == first {
		t.Fatalf("lease not moved off the silent donor: %+v (ok=%v)", a, ok)
	}
	if c.nodes[first].MemMgr.Removed() == 0 {
		t.Fatal("test premise broken: silent donor should still hold the hot-removed region")
	}

	c.agents[first].Mute(false)
	c.eng.RunFor(5 * sim.Second)

	if c.nodes[first].MemMgr.Removed() != 0 {
		t.Fatalf("false-positive donor still shows %d removed bytes; orphan return never settled",
			c.nodes[first].MemMgr.Removed())
	}
	if c.mn.Stats.Get("recover.orphan_returns") == 0 {
		t.Fatal("no orphan return recorded")
	}
}
