package monitor

import (
	"repro/internal/fabric"
	"repro/internal/sim"
)

// View is the telemetry snapshot a placement decision sees: the
// topology, each donor's live-allocation load, and — when agents are
// heartbeating windowed link samples — the recent utilization of every
// reported link. Policies receive a View instead of reaching into the
// Monitor so the placement inputs are explicit and testable; the MN
// builds one per donor walk, and the migration loop builds one per
// scan.
type View struct {
	Topo fabric.Topology
	Now  sim.Time

	// Load counts live allocations per donor — the congestion proxy the
	// pre-telemetry traffic-aware policy used, still the only signal
	// available when telemetry is off.
	Load map[fabric.NodeID]int

	// HasTelemetry reports whether any windowed link utilization has
	// been heartbeated; when false PathUtil always reports unknown and
	// telemetry-capable policies fall back to their load-only behavior.
	HasTelemetry bool

	linkUtil map[[2]fabric.NodeID]float64
	commits  map[[2]fabric.NodeID]int
	routes   []map[fabric.NodeID]fabric.NodeID // lazily built next-hop tables
}

// view assembles the current telemetry snapshot from the RRT/RAT/TST.
func (m *Monitor) view() *View {
	v := &View{
		Topo: m.Topo,
		Now:  m.EP.Eng.Now(),
		Load: make(map[fabric.NodeID]int, len(m.rrt)),
	}
	for _, a := range m.rat {
		v.Load[a.Donor]++
	}
	for _, a := range m.rat {
		if a.Kind != "memory" {
			continue
		}
		for _, l := range v.PathLinks(a.Recipient, a.Donor) {
			if v.commits == nil {
				v.commits = make(map[[2]fabric.NodeID]int)
			}
			v.commits[l]++
		}
	}
	for key, s := range m.tst {
		if !s.HasUtil {
			continue
		}
		if v.linkUtil == nil {
			v.linkUtil = make(map[[2]fabric.NodeID]float64)
		}
		v.HasTelemetry = true
		v.linkUtil[key] = s.Util
	}
	return v
}

// View exposes the MN's current telemetry snapshot (tests and external
// placement tooling).
func (m *Monitor) View() *View { return m.view() }

// HopCount reports the shortest-path hop count between a and b.
func (v *View) HopCount(a, b fabric.NodeID) int { return v.Topo.HopCount(a, b) }

// LinkUtil reports the last windowed utilization heartbeated for the
// link a<->b; ok is false when no agent has sampled it.
func (v *View) LinkUtil(a, b fabric.NodeID) (float64, bool) {
	u, ok := v.linkUtil[linkKey(a, b)]
	return u, ok
}

// PathUtil reports the hottest link on the deterministic shortest path
// from a to b — the bottleneck a window placed on donor b would share.
// ok is false when telemetry is off or no link on the path has been
// sampled; links without samples are treated as idle otherwise.
func (v *View) PathUtil(a, b fabric.NodeID) (float64, bool) {
	if !v.HasTelemetry || a == b {
		return 0, false
	}
	if v.routes == nil {
		v.routes = v.Topo.NextHops()
	}
	max, known := 0.0, false
	for cur := a; cur != b; {
		nxt, ok := v.routes[cur][b]
		if !ok {
			return 0, false
		}
		if u, ok := v.linkUtil[linkKey(cur, nxt)]; ok {
			known = true
			if u > max {
				max = u
			}
		}
		cur = nxt
	}
	return max, known
}

// PathLinks lists the links (as unordered pairs) on the deterministic
// shortest path from a to b, in hop order; nil when no route exists.
func (v *View) PathLinks(a, b fabric.NodeID) [][2]fabric.NodeID {
	if a == b {
		return nil
	}
	if v.routes == nil {
		v.routes = v.Topo.NextHops()
	}
	var links [][2]fabric.NodeID
	for cur := a; cur != b; {
		nxt, ok := v.routes[cur][b]
		if !ok {
			return nil
		}
		links = append(links, linkKey(cur, nxt))
		cur = nxt
	}
	return links
}

// PathBottleneck reports the hottest sampled link on the a→b path —
// the link a migration must relieve; ok is false when telemetry is off
// or no link on the path has been sampled.
func (v *View) PathBottleneck(a, b fabric.NodeID) (link [2]fabric.NodeID, util float64, ok bool) {
	if !v.HasTelemetry {
		return link, 0, false
	}
	for _, l := range v.PathLinks(a, b) {
		if u, sampled := v.linkUtil[l]; sampled && (!ok || u > util) {
			link, util, ok = l, u, true
		}
	}
	return link, util, ok
}

// PathCommits reports how many live memory leases share the most
// committed link on the a→b path. Commitments are the placement-time
// complement to the utilization window: a lease granted moments ago is
// invisible to telemetry until its traffic has crossed a beat window,
// but the MN already knows which links its fills will ride.
func (v *View) PathCommits(a, b fabric.NodeID) int {
	max := 0
	for _, l := range v.PathLinks(a, b) {
		if c := v.commits[l]; c > max {
			max = c
		}
	}
	return max
}

// PathCrosses reports whether the a→b path traverses the given link.
func (v *View) PathCrosses(a, b fabric.NodeID, link [2]fabric.NodeID) bool {
	for _, l := range v.PathLinks(a, b) {
		if l == link {
			return true
		}
	}
	return false
}

// FirstHopUtil reports the utilization of node's busiest sampled
// adjacent link — the "recipient's own congested first hop" signal.
func (v *View) FirstHopUtil(node fabric.NodeID) (float64, bool) {
	if !v.HasTelemetry {
		return 0, false
	}
	max, known := 0.0, false
	for _, nb := range v.Topo.NeighborsOf(node) {
		if u, ok := v.linkUtil[linkKey(node, nb)]; ok {
			known = true
			if u > max {
				max = u
			}
		}
	}
	return max, known
}
