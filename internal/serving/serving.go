package serving

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/monitor"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workloads"
)

// Workload selects the served application.
type Workload string

const (
	// KV is the replicated key-value tier: clients on the serving node
	// fetch records from DataServers spread across the mesh over QPairs
	// (the workloads/kvserver.go path).
	KV Workload = "kv"
	// Tier is the Redis-in-front-of-MySQL cache tier whose value storage
	// is partly leased remote memory brokered by the Monitor Node (the
	// workloads/tierdb.go path).
	Tier Workload = "tier"
	// Scale is the rack-scale read-serving tier: an app server on a
	// multi-rack spine fabric reads from remote-memory windows leased
	// through the sharded monitor plane, a configurable fraction of them
	// delegated cross-rack over the oversubscribed spine (scale.go).
	Scale Workload = "scale"
	// Inference is the device-plane inference farm: open-loop requests
	// fan out across leased remote accelerators and egress over a bond
	// of leased remote NICs — on flat meshes optionally under rolling
	// donor churn, on rack/spine fabrics with a CrossFrac share of the
	// accelerator leases delegated cross-rack (inference.go).
	Inference Workload = "inference"
)

// Config shapes one serving scenario run.
type Config struct {
	Workload Workload
	// Nodes is the mesh size: 2, 4, or 8 (0 defaults to the prototype's
	// 8-node mesh; Tier additionally needs >= 4 for donor diversity).
	Nodes int
	// Util is the offered load as a fraction of the scenario's
	// calibrated service capacity (the open-loop arrival rate is
	// Util × capacity). Meaningful range (0, 1); above ~1 the open-loop
	// queue grows without bound for the whole horizon.
	Util float64
	// Arrivals shapes the arrival process (zero value: Poisson).
	Arrivals ArrivalSpec
	// Requests is the number of measured open-loop requests.
	Requests int
	// Workers is the app-server concurrency for the Tier workload
	// (default 2). KV uses one dispatcher per data server.
	Workers int
	// Tenants is the number of co-located tenants on the serving node,
	// each leasing remote memory through the Monitor Node and streaming
	// reads through it for the scenario's duration (Tier only).
	Tenants int
	// Policy names the Monitor Node sharing policy that places every
	// lease — the serving tier's and the tenants' (Tier only;
	// "" = the prototype's distance-first).
	Policy string
	// Telemetry enables the windowed link-utilization plane (Tier
	// only): agents beat every tierTelemetryBeat instead of staying
	// silent for the run, each beat carrying per-link recent
	// utilization, so telemetry-aware policies and the migration loop
	// see where traffic actually flows.
	Telemetry bool
	// Migrate starts the MN's lease-migration loop (Tier only; needs
	// Telemetry to ever observe a hot path): a lease serving through a
	// saturated path is retargeted to a cooler donor mid-run, reads
	// replaying transparently through the CRMA window.
	Migrate bool
	// Racks and RackNodes shape the hierarchical fabric (Scale only):
	// Racks racks of RackNodes-node meshes (8, 16, or 32 per rack)
	// behind an oversubscribed spine.
	Racks     int
	RackNodes int
	// CrossFrac is the fraction of the working set's leases delegated
	// to other racks — the cross-rack traffic knob the sweep measures
	// the spine penalty with (Scale: remote-memory windows; Inference:
	// accelerator leases).
	CrossFrac float64
	// Fault selects the rolling donor-churn intensity (Inference on
	// flat meshes only; default FaultNone).
	Fault FaultRate
	// Seed drives the arrival and key streams. Everything else in the
	// scenario uses fixed internal seeds, so two runs with the same
	// Seed are identical and runs with different Seeds are independent
	// shards of the same cell, mergeable via sim.LatencyHist.
	Seed uint64
}

// Result is one scenario run's measurements.
type Result struct {
	// Lat holds every measured request's end-to-end latency (queueing
	// included — the arrival instant to the response), merged from the
	// per-dispatcher shard histograms.
	Lat *sim.LatencyHist
	// OfferedRPS is the open-loop arrival rate (Util × calibrated
	// capacity) in requests per second of virtual time.
	OfferedRPS float64
	// AchievedRPS is the measured completion throughput.
	AchievedRPS float64
	// ServiceNS is the calibrated closed-loop mean service time.
	ServiceNS float64
	// MaxQueue is the deepest any request queue got.
	MaxQueue int
	// Crashes and DevFailovers count injected donor crashes and
	// completed device-lease re-placements (Inference under a fault
	// rate; zero elsewhere).
	Crashes      int64
	DevFailovers int64
}

// Scenario-internal calibration constants. These are deliberately not
// configurable: every cell of the experiment sweep shares them, so the
// sweep varies only load, scale, policy, and arrival shape.
const (
	kvKeys        = 30_000
	kvRecordSize  = 64
	kvFanout      = 16
	kvThink       = 4 * sim.Microsecond
	kvCalibration = 48
	kvRecordBase  = 0x1000_0000 // server-side record arena base
	kvRigSeed     = 2101
	kvCalSeed     = 2102

	tierClusterSeed    = 2111
	tierTenantSeed     = 2112
	tierWarmSeed       = 2113
	tierCalSeed        = 2114
	tierValueBytes     = 1024
	tierKeys           = 3000
	tierLocalBase      = 64 << 20
	tierLocalBytes     = 512 << 10
	tierCacheLease     = 2 << 20
	tierZipfTheta      = 0.9
	tierCalibration    = 64
	tierWarmPasses     = 2
	tierMySQL          = 150 * sim.Microsecond
	tierClientOverhead = 3 * sim.Microsecond

	tenantLeaseBytes = 48 << 20
	tenantReadBytes  = 2048
	tenantThinkMaxNS = 4000

	// Telemetry-plane cadence (Tier cells with Telemetry set): the beat
	// must be much shorter than the measured window for utilization to
	// resolve mid-run hotspots, and the migration loop a couple of
	// beats so it acts on fresh samples. The hot threshold and required
	// cool-down are sized to the scenario's telemetry scale — 2 KiB
	// reads on multi-GB/s links leave single-digit-percent utilization
	// even on a contended uplink, so "hot" here means a link carrying
	// several co-located flows, not a saturated one.
	tierTelemetryBeat = 250 * sim.Microsecond
	tierMigrateEvery  = 500 * sim.Microsecond
	tierMigrateUtil   = 0.10
	tierMigrateMargin = 0.07
	// tierMigrateSettle is the pause between the tenants lighting up and
	// calibration when the migration loop is on: one telemetry window to
	// see the new traffic, one scan to react, and slack for the move —
	// the settling time any closed-loop placer needs after load shifts.
	tierMigrateSettle = 4 * sim.Millisecond
)

// request is one queued unit of offered load.
type request struct {
	arrived sim.Time
	key     int
	close   bool
}

// Run executes one serving scenario and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("serving: Requests must be positive, got %d", cfg.Requests)
	}
	if cfg.Util <= 0 {
		return nil, fmt.Errorf("serving: Util must be positive, got %v", cfg.Util)
	}
	if err := cfg.Arrivals.validate(); err != nil {
		return nil, err
	}
	switch cfg.Workload {
	case KV:
		return runKV(cfg)
	case Tier:
		return runTier(cfg)
	case Scale:
		return runScale(cfg)
	case Inference:
		return runInference(cfg)
	}
	return nil, fmt.Errorf("serving: unknown workload %q", cfg.Workload)
}

// topoFor maps a node count onto the meshes the prototype family
// supports.
func topoFor(n int) (fabric.Topology, error) {
	switch n {
	case 2:
		return fabric.Pair(), nil
	case 4:
		return fabric.Mesh3D(2, 2, 1), nil
	case 8:
		return fabric.Mesh3D(2, 2, 2), nil
	}
	return fabric.Topology{}, fmt.Errorf("serving: unsupported node count %d (want 2, 4, or 8)", n)
}

// runKV serves the replicated key-value tier: node 0 hosts the clients
// and the local index; every other node runs a DataServer holding a
// record replica. Requests hash to a server by key; each server's
// dispatcher issues synchronous gets, so per-server queueing (and with
// it the latency tail) emerges from the open-loop arrivals.
func runKV(cfg Config) (*Result, error) {
	nodeCount := cfg.Nodes
	if nodeCount == 0 {
		nodeCount = 8
	}
	topo, err := topoFor(nodeCount)
	if err != nil {
		return nil, err
	}
	p := sim.Default()
	eng := sim.New()
	defer eng.Close()
	net := fabric.NewNetwork(eng, &p, topo, sim.NewRNG(kvRigSeed))
	nodes := make([]*node.Node, topo.N)
	for i := range nodes {
		nodes[i] = node.New(eng, &p, net, fabric.NodeID(i), 1<<30)
	}
	servers := topo.N - 1

	res := &Result{}
	done := nodes[0].Run("serving-kv", func(pr *sim.Proc) {
		idx := workloads.BuildBTreeIndex(pr, nodes[0].Mem,
			workloads.NewArena(0, 128<<20), workloads.NewArena(kvRecordBase, 128<<20),
			kvKeys, kvRecordSize, kvFanout)
		queues := make([]*sim.Queue[request], servers)
		rkvs := make([]*workloads.RemoteKV, servers)
		shards := make([]*sim.LatencyHist, servers)
		for i := 0; i < servers; i++ {
			qa, qb := transport.ConnectQPair(nodes[0].EP, nodes[i+1].EP, transport.QPairConfig{})
			workloads.ServeKV(eng, fmt.Sprintf("kv-server-%d", i+1),
				&workloads.DataServer{H: nodes[i+1].Mem, QP: qb, Think: kvThink})
			rkvs[i] = &workloads.RemoteKV{Index: idx, QP: qa}
			queues[i] = sim.NewQueue[request](eng)
			shards[i] = &sim.LatencyHist{}
		}

		// Closed-loop calibration: the mean synchronous round trip sets
		// the capacity the offered load is expressed against.
		calRng := sim.NewRNG(kvCalSeed)
		t0 := pr.Now()
		for j := 0; j < kvCalibration; j++ {
			rkvs[j%servers].Get(pr, calRng.Intn(idx.Keys()))
		}
		res.ServiceNS = float64(pr.Now().Sub(t0)) / kvCalibration
		res.OfferedRPS = cfg.Util * float64(servers) / res.ServiceNS * 1e9

		var lastDone sim.Time
		grp := sim.NewGroup(eng)
		for i := 0; i < servers; i++ {
			i := i
			grp.Add(1)
			nodes[0].Run(fmt.Sprintf("dispatch-%d", i), func(dp *sim.Proc) {
				defer grp.Done()
				for {
					req := queues[i].Pop(dp)
					if req.close {
						rkvs[i].Close(dp)
						return
					}
					rkvs[i].Get(dp, req.key)
					shards[i].AddDur(dp.Now().Sub(req.arrived))
					if dp.Now() > lastDone {
						lastDone = dp.Now()
					}
				}
			})
		}

		arr := newSampler(cfg.Arrivals, res.OfferedRPS, sim.NewRNG(cfg.Seed))
		keyRng := sim.NewRNG(cfg.Seed ^ 0x5eed)
		start := pr.Now()
		for r := 0; r < cfg.Requests; r++ {
			pr.Sleep(arr.Next())
			key := keyRng.Intn(idx.Keys())
			queues[key%servers].Push(pr, request{arrived: pr.Now(), key: key})
		}
		for i := 0; i < servers; i++ {
			queues[i].Push(pr, request{close: true})
		}
		grp.Wait(pr)

		res.AchievedRPS = float64(cfg.Requests) / lastDone.Sub(start).Seconds()
		res.Lat = &sim.LatencyHist{}
		for i := range shards {
			res.Lat.Merge(shards[i])
			if d := queues[i].MaxDepth(); d > res.MaxQueue {
				res.MaxQueue = d
			}
		}
	})
	eng.Run()
	if !done.Done() {
		return nil, fmt.Errorf("serving: kv scenario deadlocked (%d live procs)", eng.LiveProcs())
	}
	return res, nil
}

// runTier serves the cache tier of Fig. 13 under open-loop load: the
// app server on node 0 answers queries from a Redis-like cache whose
// storage is partly remote memory leased through the Monitor Node,
// while co-located tenants lease and hammer their own remote windows.
// The active sharing policy places every lease, so policy choice
// decides which links the cache's fill traffic shares with the
// tenants' — the mechanism that moves the tail.
func runTier(cfg Config) (*Result, error) {
	pol, ok := monitor.PolicyByName(cfg.Policy)
	if !ok {
		return nil, fmt.Errorf("serving: unknown sharing policy %q (known: %v)", cfg.Policy, monitor.PolicyNames())
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 8
	}
	topo, err := topoFor(nodes)
	if err != nil {
		return nil, err
	}
	if nodes < 4 {
		return nil, fmt.Errorf("serving: tier workload needs >= 4 nodes for donor diversity, got %d", nodes)
	}
	p := sim.Default()
	// The baseline runs with agents effectively silent (one beat during
	// warm-up populates the RRT); the telemetry plane needs live beats.
	ccfg := core.Config{Params: &p, Topology: &topo, StartAgents: true,
		Seed: tierClusterSeed, HeartbeatInterval: 30 * sim.Second}
	if cfg.Telemetry {
		ccfg.Telemetry = true
		ccfg.HeartbeatInterval = tierTelemetryBeat
	}
	if cfg.Migrate {
		ccfg.MigrateInterval = tierMigrateEvery
		ccfg.MigrateUtil = tierMigrateUtil
		ccfg.MigrateMargin = tierMigrateMargin
	}
	cl := core.NewCluster(ccfg)
	defer cl.Close()
	cl.MN.Policy = pol
	cl.RunFor(1 * sim.Second) // populate the RRT

	app := cl.Node(0)
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	res := &Result{}
	var runErr error
	stop := false
	done := app.Run("serving-tier", func(pr *sim.Proc) {
		// Co-located tenants lease first: their windows land wherever the
		// policy sends them, before the serving tier asks. The hammer
		// processes start only after warm-up — pressure during the
		// measured (and calibration) phase is what the scenario studies,
		// and an idle warm phase keeps the event count tractable.
		tenantRng := sim.NewRNG(tierTenantSeed)
		tenantLeases, err := borrowWindows(pr, cl, cfg.Tenants, func(int) core.Request {
			return core.NewRequest(core.Memory, app, tenantLeaseBytes)
		})
		if err != nil {
			runErr = fmt.Errorf("serving: tenant leases: %w", err)
			return
		}
		startTenants := func() {
			for t, lease := range tenantLeases {
				lease, trng := lease, tenantRng.Fork()
				app.Run(fmt.Sprintf("tenant-%d", t), func(tp *sim.Proc) {
					for !stop {
						off := trng.Uint64n(lease.Size-tenantReadBytes) &^ 63
						app.Mem.Read(tp, lease.WindowBase+off, tenantReadBytes)
						tp.Sleep(sim.Dur(trng.Intn(tenantThinkMaxNS)))
					}
				})
			}
		}

		// The serving tier's cache: a small local slice plus one leased
		// remote window, placed by the same policy.
		cache := workloads.NewRedisCache(app.Mem, tierValueBytes)
		cache.AddArena(workloads.NewArena(tierLocalBase, tierLocalBytes))
		// The cache window carries the measured query path's fill traffic:
		// latency-sensitive, so the migration loop (when on) clears bulk
		// tenants off its links instead of ever pausing the cache itself.
		lease, err := cl.Acquire(pr, core.NewRequest(core.Memory, app, tierCacheLease,
			core.WithRetry(borrowRetry), core.WithLatencySensitive()))
		if err != nil {
			runErr = fmt.Errorf("serving: cache lease: %w", err)
			stop = true
			return
		}
		cache.AddArena(workloads.NewArena(lease.Window()))
		db := &workloads.TierDB{
			Redis:          cache,
			MySQL:          &workloads.MySQLModel{QueryTime: tierMySQL},
			ClientOverhead: tierClientOverhead,
		}

		// Warm to steady state, then calibrate capacity under the same
		// co-location the measured phase will see.
		db.RunQueries(pr, sim.NewRNG(tierWarmSeed), tierKeys, tierKeys*tierWarmPasses)
		startTenants()
		if cfg.Migrate {
			pr.Sleep(tierMigrateSettle)
		}
		calZipf := sim.NewZipf(sim.NewRNG(tierCalSeed), tierKeys, tierZipfTheta)
		t0 := pr.Now()
		for j := 0; j < tierCalibration; j++ {
			db.Query(pr, calZipf.Next())
		}
		res.ServiceNS = float64(pr.Now().Sub(t0)) / tierCalibration
		res.OfferedRPS = cfg.Util * float64(workers) / res.ServiceNS * 1e9

		reqQ := sim.NewQueue[request](cl.Eng)
		shards := make([]*sim.LatencyHist, workers)
		var lastDone sim.Time
		grp := sim.NewGroup(cl.Eng)
		for w := 0; w < workers; w++ {
			w := w
			shards[w] = &sim.LatencyHist{}
			grp.Add(1)
			app.Run(fmt.Sprintf("worker-%d", w), func(wp *sim.Proc) {
				defer grp.Done()
				for {
					req := reqQ.Pop(wp)
					if req.close {
						return
					}
					db.Query(wp, req.key)
					shards[w].AddDur(wp.Now().Sub(req.arrived))
					if wp.Now() > lastDone {
						lastDone = wp.Now()
					}
				}
			})
		}

		arr := newSampler(cfg.Arrivals, res.OfferedRPS, sim.NewRNG(cfg.Seed))
		keys := sim.NewZipf(sim.NewRNG(cfg.Seed^0x5eed), tierKeys, tierZipfTheta)
		start := pr.Now()
		for r := 0; r < cfg.Requests; r++ {
			pr.Sleep(arr.Next())
			reqQ.Push(pr, request{arrived: pr.Now(), key: keys.Next()})
		}
		for w := 0; w < workers; w++ {
			reqQ.Push(pr, request{close: true})
		}
		grp.Wait(pr)
		stop = true

		res.AchievedRPS = float64(cfg.Requests) / lastDone.Sub(start).Seconds()
		res.MaxQueue = reqQ.MaxDepth()
		res.Lat = &sim.LatencyHist{}
		for _, s := range shards {
			res.Lat.Merge(s)
		}
	})
	// Step only until the scenario finishes: agents and tenants would
	// otherwise keep the event queue alive forever.
	for !done.Done() && cl.Eng.Step() {
	}
	if runErr != nil {
		return nil, runErr
	}
	if !done.Done() {
		return nil, fmt.Errorf("serving: tier scenario deadlocked (%d live procs)", cl.Eng.LiveProcs())
	}
	return res, nil
}
