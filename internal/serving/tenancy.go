package serving

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tenancy"
)

// The tenancy scenario is the millions-of-users complement to churn:
// instead of donors failing, the pool itself is oversubscribed by
// tenants of different SLO classes, and what's measured is the
// admission plane — per-class goodput, SLO-miss rate, and the
// preemption traffic that keeps the Latency class whole while the
// Preemptible class absorbs the pressure.
//
// The rig is a flat 8-node mesh with the MN on node 0 and the app
// server on node 1, both fully reserved so six donors back the pool. A
// population of background Preemptible-class holders saturates its
// class budget and sits on the leases; a flash-crowd MMPP stream of
// class-mixed sessions (Latency/Standard/Preemptible) then competes
// for the remainder. Under bursts the Standard class queues and —
// when the wait expires — preempts holders through the MN's admission
// plane; holders watch the plane's event stream for their eviction and
// re-acquire with backoff once pressure relents.

// TenancyConfig shapes one tenancy scenario run.
type TenancyConfig struct {
	// Util is offered load as a fraction of calibrated capacity.
	Util float64
	// Requests is the number of measured open-loop sessions.
	Requests int
	// Workers is the app-server dispatch concurrency (default 8). Each
	// busy worker holds one in-flight lease, so Workers also bounds the
	// foreground pool pressure.
	Workers int
	// Holders is the background Preemptible-class tenant population
	// (default 16 — two more than the class budget admits, so the
	// degrade and reject paths are exercised from the start).
	Holders int
	// Seed drives the arrival, class-mix, and offset streams (the shard
	// axis).
	Seed uint64

	// OnCluster, when set, receives the cluster after its RRT is
	// populated and before serving starts (outside virtual time; see
	// ChurnConfig.OnCluster).
	OnCluster func(*core.Cluster)
	// Throttle, when set, is called between engine steps on the driving
	// goroutine (outside virtual time).
	Throttle func()
}

// ClassStats is one SLO class's ledger for a run. Every offered
// session is accounted exactly once: Completed + Rejected == Offered.
type ClassStats struct {
	// Offered counts arrivals tagged with this class.
	Offered int
	// Completed counts sessions whose lease was granted (possibly
	// degraded) and whose work finished.
	Completed int
	// Rejected counts sessions the admission plane turned away
	// (core.ErrAdmissionRejected, plus any terminal acquire failure).
	Rejected int
	// SLOMiss counts completions beyond the class deadline.
	SLOMiss int
	// Deadline is the class SLO: its configured SLOMult × the
	// calibrated mean service time.
	Deadline sim.Dur
	// Lat holds the class's end-to-end session latencies (completed
	// sessions only; arrival to completion, queueing included).
	Lat *sim.LatencyHist
}

// TenancyResult is one tenancy run's measurements.
type TenancyResult struct {
	// ServiceNS is the calibrated closed-loop mean session time
	// (acquire + read + release, untagged, unloaded).
	ServiceNS float64
	// OfferedRPS is the open-loop arrival rate across all classes.
	OfferedRPS float64
	// PerClass indexes the class ledgers by tenancy class
	// (ClassNone's slot stays zero).
	PerClass [tenancy.NumClasses]ClassStats
	// Preemptions counts Preemptible-class leases the MN revoked to
	// make room for a higher class ("preempt.memory").
	Preemptions int64
	// Degrades counts grants admitted at a reduced size
	// ("admit.degraded").
	Degrades int64
	// QueueAdmits counts grants admitted after a bounded queue wait
	// ("admit.queue_admits").
	QueueAdmits int64
	// HolderAcquires and HolderPreemptions count the background
	// population's lease grants and observed evictions.
	HolderAcquires    int64
	HolderPreemptions int64
	// Fairness is the Jain index over per-class completion ratios
	// (1 = every class completed the same fraction of its offered load).
	Fairness float64
}

// Scenario-internal constants (shared by every cell; the sweep varies
// only load and the shard seed).
const (
	tenancyClusterSeed = 3131
	tenancyCalSeed     = 3133

	tenancyNodeMem    = uint64(32 << 20)
	tenancyLeaseBytes = uint64(8 << 20)
	tenancyReadBytes  = 2048
	tenancyThink      = 20 * sim.Microsecond
	tenancyCalibrate  = 12

	// Class mix of the foreground sessions.
	tenancyLatencyFrac  = 0.2
	tenancyStandardFrac = 0.5

	// Tenant identity space: foreground sessions draw from a large flat
	// id space (the "millions of users" stand-in); holders live in a
	// disjoint range above it.
	tenancyTenants    = 4096
	tenancyHolderBase = uint64(1) << 32

	tenancyHolderPoll = 100 * sim.Microsecond
	tenancySettle     = 20 * sim.Millisecond
)

// tenancyRequest is one queued unit of offered load.
type tenancyRequest struct {
	arrived sim.Time
	tenant  uint64
	class   tenancy.Class
	close   bool
}

// RunTenancy executes one multi-tenant admission scenario.
func RunTenancy(cfg TenancyConfig) (*TenancyResult, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("serving: Requests must be positive, got %d", cfg.Requests)
	}
	if cfg.Util <= 0 {
		return nil, fmt.Errorf("serving: Util must be positive, got %v", cfg.Util)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	holders := cfg.Holders
	if holders <= 0 {
		holders = 16
	}
	topo, err := topoFor(8)
	if err != nil {
		return nil, err
	}
	adm := tenancy.Default()
	cl := core.NewCluster(core.Config{
		Topology:     &topo,
		NodeMemBytes: tenancyNodeMem,
		StartAgents:  true,
		Seed:         tenancyClusterSeed,
		Admission:    adm,
	})
	defer cl.Close()
	// Keep the control plane (node 0) and the app server (node 1) out of
	// donor candidacy: the six remaining nodes form the shared pool.
	for _, i := range []int{0, 1} {
		if err := cl.Node(i).MemMgr.Reserve(cl.Node(i).MemMgr.Idle()); err != nil {
			return nil, fmt.Errorf("serving: reserving node %d memory: %w", i, err)
		}
	}
	cl.RunFor(10 * sim.Millisecond) // populate the RRT
	if cfg.OnCluster != nil {
		cfg.OnCluster(cl)
	}

	// Holders learn about their eviction from the plane's event stream:
	// the observer records preempted trace ids, each holder polls for
	// its own.
	preempted := make(map[uint64]bool)
	cancel := cl.Observe(func(ev core.Event) {
		if ev.Type == core.LeasePreempted {
			preempted[ev.Trace] = true
		}
	})
	defer cancel()

	app := cl.Node(1)
	res := &TenancyResult{}
	for c := range res.PerClass {
		res.PerClass[c].Lat = &sim.LatencyHist{}
	}
	var runErr error
	stop := false

	// Background Preemptible-class tenants: each tries to hold one lease
	// indefinitely, re-acquiring with backoff after every eviction or
	// rejection. Their virtual time is spent asleep, so they load the
	// pool's capacity, not its request path.
	holderGrp := sim.NewGroup(cl.Eng)
	for h := 0; h < holders; h++ {
		h := h
		holderGrp.Add(1)
		app.Run(fmt.Sprintf("tenant-holder-%d", h), func(hp *sim.Proc) {
			defer holderGrp.Done()
			bo := tenancy.Backoff{}
			attempt := 0
			for !stop {
				l, err := cl.Acquire(hp, core.NewRequest(core.Memory, app, tenancyLeaseBytes,
					core.WithTenant(tenancyHolderBase+uint64(h), tenancy.Preemptible)))
				if err != nil {
					attempt++
					hp.Sleep(bo.Delay(attempt))
					continue
				}
				attempt = 0
				res.HolderAcquires++
				for !stop && !preempted[l.Trace()] {
					hp.Sleep(tenancyHolderPoll)
				}
				evicted := preempted[l.Trace()]
				// Release is safe after a preemption: the MN row is gone and
				// the window already dead; this tears down the local mapping.
				l.Release(hp)
				if evicted {
					res.HolderPreemptions++
					attempt++
					hp.Sleep(bo.Delay(attempt))
				}
			}
		})
	}

	done := app.Run("serving-tenancy", func(pr *sim.Proc) {
		// Closed-loop calibration before the holders saturate anything:
		// untagged sessions bypass admission, so the measured mean is the
		// unloaded acquire + read + release cycle.
		calRng := sim.NewRNG(tenancyCalSeed)
		t0 := pr.Now()
		for j := 0; j < tenancyCalibrate; j++ {
			l, err := cl.Acquire(pr, core.NewRequest(core.Memory, app, tenancyLeaseBytes))
			if err != nil {
				runErr = fmt.Errorf("serving: tenancy calibration: %w", err)
				return
			}
			base, size := l.Window()
			off := calRng.Uint64n(size-tenancyReadBytes) &^ 63
			app.EP.CRMA.Fill(pr, base+off, tenancyReadBytes)
			pr.Sleep(tenancyThink)
			l.Release(pr)
		}
		res.ServiceNS = float64(pr.Now().Sub(t0)) / tenancyCalibrate
		res.OfferedRPS = cfg.Util * float64(workers) / res.ServiceNS * 1e9
		for _, c := range tenancy.Classes() {
			res.PerClass[c].Deadline = sim.Dur(adm.PerClass[c].SLOMult * res.ServiceNS)
		}

		// Let the holder population claim its class budget before the
		// measured window opens, so every shard starts from the same
		// saturated pool.
		pr.Sleep(tenancySettle)

		reqQ := sim.NewQueue[tenancyRequest](cl.Eng)
		grp := sim.NewGroup(cl.Eng)
		type tally struct {
			completed, rejected, sloMiss [tenancy.NumClasses]int
			lat                          [tenancy.NumClasses]*sim.LatencyHist
		}
		shards := make([]*tally, workers)
		for w := 0; w < workers; w++ {
			w := w
			shards[w] = &tally{}
			for c := range shards[w].lat {
				shards[w].lat[c] = &sim.LatencyHist{}
			}
			grp.Add(1)
			app.Run(fmt.Sprintf("tenancy-worker-%d", w), func(wp *sim.Proc) {
				defer grp.Done()
				for {
					req := reqQ.Pop(wp)
					if req.close {
						return
					}
					l, err := cl.Acquire(wp, core.NewRequest(core.Memory, app, tenancyLeaseBytes,
						core.WithTenant(req.tenant, req.class),
						core.WithRetry(borrowRetry)))
					if err != nil {
						// Admission rejections and exhausted retries both count
						// against the class's completion ratio.
						shards[w].rejected[req.class]++
						continue
					}
					base, size := l.Window()
					off := uint64(req.tenant*2048) % (size - tenancyReadBytes) &^ 63
					app.EP.CRMA.Fill(wp, base+off, tenancyReadBytes)
					wp.Sleep(tenancyThink)
					l.Release(wp)
					d := wp.Now().Sub(req.arrived)
					shards[w].lat[req.class].AddDur(d)
					shards[w].completed[req.class]++
					if d > res.PerClass[req.class].Deadline {
						shards[w].sloMiss[req.class]++
					}
				}
			})
		}

		// Open-loop flash-crowd arrivals with a per-request class draw.
		arr := newSampler(FlashCrowd(), res.OfferedRPS, sim.NewRNG(cfg.Seed))
		mixRng := sim.NewRNG(cfg.Seed ^ 0x5eed)
		for r := 0; r < cfg.Requests; r++ {
			pr.Sleep(arr.Next())
			var class tenancy.Class
			switch u := mixRng.Float64(); {
			case u < tenancyLatencyFrac:
				class = tenancy.Latency
			case u < tenancyLatencyFrac+tenancyStandardFrac:
				class = tenancy.Standard
			default:
				class = tenancy.Preemptible
			}
			res.PerClass[class].Offered++
			reqQ.Push(pr, tenancyRequest{
				arrived: pr.Now(),
				tenant:  1 + mixRng.Uint64n(tenancyTenants),
				class:   class,
			})
		}
		for w := 0; w < workers; w++ {
			reqQ.Push(pr, tenancyRequest{close: true})
		}
		grp.Wait(pr)
		stop = true
		holderGrp.Wait(pr)

		for _, sh := range shards {
			for c := range res.PerClass {
				res.PerClass[c].Completed += sh.completed[c]
				res.PerClass[c].Rejected += sh.rejected[c]
				res.PerClass[c].SLOMiss += sh.sloMiss[c]
				res.PerClass[c].Lat.Merge(sh.lat[c])
			}
		}
		// Exactly-once accounting: open-loop arrivals may queue or be
		// turned away, but none may vanish.
		for _, c := range tenancy.Classes() {
			cs := res.PerClass[c]
			if cs.Completed+cs.Rejected != cs.Offered {
				runErr = fmt.Errorf("serving: tenancy lost %s sessions: %d completed + %d rejected != %d offered",
					c, cs.Completed, cs.Rejected, cs.Offered)
				return
			}
		}
	})
	if cfg.Throttle == nil {
		for !done.Done() && cl.Eng.Step() {
		}
	} else {
		for !done.Done() && cl.Eng.Step() {
			cfg.Throttle()
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	if !done.Done() {
		return nil, fmt.Errorf("serving: tenancy scenario deadlocked (%d live procs)", cl.Eng.LiveProcs())
	}
	res.Preemptions = cl.MN.Stats.Get("preempt.memory")
	res.Degrades = cl.MN.Stats.Get("admit.degraded")
	res.QueueAdmits = cl.MN.Stats.Get("admit.queue_admits")
	res.Fairness = tenancyFairness(res)
	return res, nil
}

// tenancyFairness computes the Jain index over per-class completion
// ratios. Classes with no offered load are excluded.
func tenancyFairness(res *TenancyResult) float64 {
	var ratios []float64
	for _, c := range tenancy.Classes() {
		cs := res.PerClass[c]
		if cs.Offered > 0 {
			ratios = append(ratios, float64(cs.Completed)/float64(cs.Offered))
		}
	}
	return tenancy.Jain(ratios)
}
