package serving

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/node"
	"repro/internal/sim"
)

// The scale scenario takes the open-loop serving methodology to the
// multi-rack fabrics of fabric.RackSpine: an app server in rack 0
// serves requests whose working set lives in remote-memory windows
// leased through the sharded monitor plane, with CrossFrac of the
// windows deliberately delegated to other racks. Every cross-rack
// access shares the rack's few oversubscribed spine uplinks, so the
// sweep (node count × rack size × cross-rack fraction) measures what
// hierarchical sharing costs at the tail — the number the single-rack
// prototype cannot produce.

// Scale-scenario calibration constants; like the other scenarios they
// are fixed so the sweep varies only scale, mix, and load.
const (
	scaleClusterSeed = 2121
	scaleCalSeed     = 2122
	scaleTenantSeed  = 2123

	scaleWindows     = 8
	scaleWindowBytes = 2 << 20
	scaleReadBytes   = 2048
	scaleCalibration = 48
	scaleThink       = 2 * sim.Microsecond

	// Spine tier: 2 switches, 2 uplinks per rack, each uplink at half
	// the node link rate — a rack's nodes contend for 2×2.5 Gbps of
	// cross-rack bandwidth against 5 Gbps per intra-rack port.
	scaleSpines    = 2
	scaleUplinks   = 2
	scaleSpineGbps = 2.5

	// Background tenants: every rack runs RackNodes/scaleTenantDiv
	// tenants on its own nodes, each leasing one window (a CrossFrac
	// share of them cross-rack) and streaming RDMA bulk reads against it
	// for the scenario's duration. One 32 KiB transfer plus the think
	// gap sustains ~0.4 Gbps of demand per cross-rack tenant against the
	// rack's 2×2.5 Gbps of uplink capacity; tenant count scales with
	// rack size, so the rack-size axis sweeps spine utilization from
	// ~20% (8-node racks) toward saturation (32-node racks at high
	// CrossFrac) without tipping into open-ended collapse.
	scaleTenantDiv     = 4
	scaleTenantBulk    = 32 << 10
	scaleTenantThinkNS = 1_000_000
)

// scaleRackDims maps a supported per-rack node count onto mesh
// dimensions.
func scaleRackDims(rackNodes int) (x, y, z int, err error) {
	switch rackNodes {
	case 8:
		return 2, 2, 2, nil
	case 16:
		return 4, 2, 2, nil
	case 32:
		return 4, 4, 2, nil
	}
	return 0, 0, 0, fmt.Errorf("serving: unsupported rack size %d (want 8, 16, or 32)", rackNodes)
}

// runScale executes the rack-scale serving scenario.
func runScale(cfg Config) (*Result, error) {
	if cfg.Racks < 2 {
		return nil, fmt.Errorf("serving: scale workload needs >= 2 racks, got %d", cfg.Racks)
	}
	if cfg.CrossFrac < 0 || cfg.CrossFrac > 1 {
		return nil, fmt.Errorf("serving: CrossFrac %v out of [0, 1]", cfg.CrossFrac)
	}
	x, y, z, err := scaleRackDims(cfg.RackNodes)
	if err != nil {
		return nil, err
	}
	cross := int(cfg.CrossFrac*scaleWindows + 0.5)

	cl := core.NewHierCluster(core.HierConfig{
		Racks: cfg.Racks, RackX: x, RackY: y, RackZ: z,
		Spines: scaleSpines, Uplinks: scaleUplinks, SpineGbps: scaleSpineGbps,
		Seed: scaleClusterSeed,
		// Long periods keep the steady-state event count tractable; the
		// warm-up run covers the staggered first beats that populate the
		// RRTs and the root's rack registry.
		HeartbeatInterval: 30 * sim.Second,
		RackBeatInterval:  30 * sim.Second,
	})
	defer cl.Close()
	cl.RunFor(1 * sim.Second)

	app := cl.Node(2) // rack 0, clear of the sub-MN/uplink nodes 0 and 1
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	res := &Result{}
	var runErr error
	stop := false
	done := app.Run("serving-scale", func(pr *sim.Proc) {
		// Lease the working set: the cross-rack share is delegated by the
		// root MN (most-idle rack election spreads consecutive windows
		// over distinct racks), the rest is pinned rack-local.
		windows, err := borrowWindows(pr, cl, scaleWindows, func(w int) core.Request {
			scope := monitor.ScopeLocalRack
			if w < cross {
				scope = monitor.ScopeRemoteRack
			}
			return core.NewRequest(core.Memory, app, scaleWindowBytes, core.WithScope(scope))
		})
		if err != nil {
			runErr = fmt.Errorf("serving: working-set windows: %w", err)
			return
		}

		// Background tenants on every rack (nodes past the app's index,
		// clear of the sub-MN/uplink nodes): each leases one window — a
		// CrossFrac share of them in another rack — and will stream
		// reads through it from calibration to the end of the measured
		// phase, loading the spine in proportion to rack fullness.
		tenantsPerRack := cfg.RackNodes / scaleTenantDiv
		crossTenants := int(cfg.CrossFrac*float64(tenantsPerRack) + 0.5)
		tenantRng := sim.NewRNG(scaleTenantSeed)
		tenantNodes := make([]*node.Node, 0, cfg.Racks*tenantsPerRack)
		for r := 0; r < cfg.Racks; r++ {
			for i := 0; i < tenantsPerRack; i++ {
				tenantNodes = append(tenantNodes, cl.Node(int(cl.Hier.RackNodes(r)[3+i])))
			}
		}
		tenantLeases, err := borrowWindows(pr, cl, len(tenantNodes), func(k int) core.Request {
			scope := monitor.ScopeLocalRack
			if k%tenantsPerRack < crossTenants {
				scope = monitor.ScopeRemoteRack
			}
			return core.NewRequest(core.Memory, tenantNodes[k], scaleWindowBytes, core.WithScope(scope))
		})
		if err != nil {
			runErr = fmt.Errorf("serving: tenant windows: %w", err)
			return
		}
		for k, lease := range tenantLeases {
			lease, trng := lease, tenantRng.Fork()
			tn := tenantNodes[k]
			tn.Run("tenant", func(tp *sim.Proc) {
				for !stop {
					off := trng.Uint64n(lease.Size-scaleTenantBulk) &^ 63
					tn.EP.RDMA.Read(tp, lease.Donor(), lease.DonorBase+off, scaleTenantBulk)
					tp.Sleep(sim.Dur(trng.Intn(scaleTenantThinkNS)))
				}
			})
		}

		// Closed-loop calibration over the same window mix the measured
		// phase will draw from, under the same background pressure.
		calRng := sim.NewRNG(scaleCalSeed)
		t0 := pr.Now()
		for j := 0; j < scaleCalibration; j++ {
			lease := windows[j%scaleWindows]
			off := calRng.Uint64n(lease.Size-scaleReadBytes) &^ 63
			app.Mem.Read(pr, lease.WindowBase+off, scaleReadBytes)
			app.Mem.Think(pr, scaleThink)
		}
		res.ServiceNS = float64(pr.Now().Sub(t0)) / scaleCalibration
		res.OfferedRPS = cfg.Util * float64(workers) / res.ServiceNS * 1e9

		reqQ := sim.NewQueue[request](cl.Eng)
		shards := make([]*sim.LatencyHist, workers)
		var lastDone sim.Time
		grp := sim.NewGroup(cl.Eng)
		offRng := sim.NewRNG(cfg.Seed ^ 0xacce55)
		for w := 0; w < workers; w++ {
			w := w
			shards[w] = &sim.LatencyHist{}
			grp.Add(1)
			app.Run(fmt.Sprintf("worker-%d", w), func(wp *sim.Proc) {
				defer grp.Done()
				for {
					req := reqQ.Pop(wp)
					if req.close {
						return
					}
					lease := windows[req.key]
					off := offRng.Uint64n(lease.Size-scaleReadBytes) &^ 63
					app.Mem.Read(wp, lease.WindowBase+off, scaleReadBytes)
					app.Mem.Think(wp, scaleThink)
					shards[w].AddDur(wp.Now().Sub(req.arrived))
					if wp.Now() > lastDone {
						lastDone = wp.Now()
					}
				}
			})
		}

		arr := newSampler(cfg.Arrivals, res.OfferedRPS, sim.NewRNG(cfg.Seed))
		winRng := sim.NewRNG(cfg.Seed ^ 0x5eed)
		start := pr.Now()
		for r := 0; r < cfg.Requests; r++ {
			pr.Sleep(arr.Next())
			reqQ.Push(pr, request{arrived: pr.Now(), key: winRng.Intn(scaleWindows)})
		}
		for w := 0; w < workers; w++ {
			reqQ.Push(pr, request{close: true})
		}
		grp.Wait(pr)
		stop = true

		res.AchievedRPS = float64(cfg.Requests) / lastDone.Sub(start).Seconds()
		res.MaxQueue = reqQ.MaxDepth()
		res.Lat = &sim.LatencyHist{}
		for _, s := range shards {
			res.Lat.Merge(s)
		}
	})
	// Agent and rackbeat loops keep the event queue alive forever; step
	// only until the scenario completes.
	for !done.Done() && cl.Eng.Step() {
	}
	if runErr != nil {
		return nil, runErr
	}
	if !done.Done() {
		return nil, fmt.Errorf("serving: scale scenario deadlocked (%d live procs)", cl.Eng.LiveProcs())
	}
	return res, nil
}
