package serving

import (
	"testing"
)

func inferRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	cfg.Workload = Inference
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestInferenceNoFaultBaseline: with the fault axis off, the inference
// farm is a plain open-loop serving run over leased devices — no
// crashes, no device failovers, every request completes.
func TestInferenceNoFaultBaseline(t *testing.T) {
	r := inferRun(t, Config{Nodes: 8, Util: 0.7, Requests: 200, Seed: 1})
	if r.Crashes != 0 || r.DevFailovers != 0 {
		t.Fatalf("control cell saw faults: crashes=%d failovers=%d", r.Crashes, r.DevFailovers)
	}
	if r.Lat.N() != 200 {
		t.Fatalf("latency histogram has %d entries, want 200", r.Lat.N())
	}
	if r.OfferedRPS <= 0 || r.ServiceNS <= 0 {
		t.Fatalf("calibration produced offered=%v svc=%v", r.OfferedRPS, r.ServiceNS)
	}
}

// TestInferenceSurvivesDonorChurn is the scenario-level acceptance
// check: rolling crashes walk the accelerator/NIC donor farm, the MN
// retargets each orphaned device lease onto a survivor, the handles
// replay their in-flight chunks — and every request still completes.
// The outages surface in the latency tail, not as losses.
func TestInferenceSurvivesDonorChurn(t *testing.T) {
	r := inferRun(t, Config{Nodes: 8, Util: 0.7, Requests: 500, Fault: FaultFast, Seed: 1})
	if r.Crashes == 0 {
		t.Fatal("fast churn injected no crashes")
	}
	if r.DevFailovers == 0 {
		t.Fatal("no device lease was ever re-placed despite donor crashes")
	}
	if r.Lat.N() != 500 {
		t.Fatalf("latency histogram has %d entries, want 500 (requests lost?)", r.Lat.N())
	}
	p50, p999 := r.Lat.Quantile(50), r.Lat.Quantile(99.9)
	if p999 <= p50 {
		t.Fatalf("tail not above median: p50=%d p999=%d", p50, p999)
	}
	// The extreme tail carries the failover stalls: at least a heartbeat
	// timeout long.
	if p999 < int64(inferBeatTimeout) {
		t.Fatalf("p999 %dns under the detection timeout; outages never reached the tail", p999)
	}
}

// TestInferenceHierCrossRackCostsService: on the rack/spine fabric,
// pushing the accelerator leases cross-rack puts every request's data
// motion on the oversubscribed spine — service time must rise
// monotonically with the cross-rack fraction.
func TestInferenceHierCrossRackCostsService(t *testing.T) {
	base := Config{Util: 0.7, Requests: 120, Racks: 2, RackNodes: 8, Seed: 1}
	local := base
	local.CrossFrac = 0
	cross := base
	cross.CrossFrac = 1
	rl, rc := inferRun(t, local), inferRun(t, cross)
	if rc.ServiceNS <= rl.ServiceNS {
		t.Fatalf("cross-rack leases did not cost service time: %.0fns all-cross vs %.0fns all-local",
			rc.ServiceNS, rl.ServiceNS)
	}
	if rl.Lat.N() != 120 || rc.Lat.N() != 120 {
		t.Fatalf("hier cells lost requests: %d / %d of 120", rl.Lat.N(), rc.Lat.N())
	}
}

// TestInferenceDeterministic: two runs with the same config are
// bit-equal — the property the harness shard/merge machinery and the
// bench-regression gate stand on.
func TestInferenceDeterministic(t *testing.T) {
	cfg := Config{Workload: Inference, Nodes: 8, Util: 0.7, Requests: 300, Fault: FaultFast, Seed: 7}
	a := inferRun(t, cfg)
	b := inferRun(t, cfg)
	if a.Lat.String() != b.Lat.String() {
		t.Fatalf("latency histograms differ:\n%s\nvs\n%s", a.Lat, b.Lat)
	}
	if a.AchievedRPS != b.AchievedRPS || a.Crashes != b.Crashes || a.DevFailovers != b.DevFailovers {
		t.Fatalf("scalar results differ: %+v vs %+v", a, b)
	}
	// A different shard seed is a genuinely different trial...
	cfg.Seed = 8
	c := inferRun(t, cfg)
	if a.Lat.String() == c.Lat.String() {
		t.Fatal("different seeds produced identical latency histograms")
	}
	// ...but the fault history is the cell's, not the shard's.
	if a.Crashes != c.Crashes {
		t.Fatalf("fault history varied across shards: %d vs %d crashes", a.Crashes, c.Crashes)
	}
}

// TestInferenceConfigValidation: bad configs surface as errors.
func TestInferenceConfigValidation(t *testing.T) {
	bad := []Config{
		{Workload: Inference, Nodes: 2, Util: 0.7, Requests: 10},                  // no donor diversity
		{Workload: Inference, Nodes: 8, Util: 0.7, Requests: 10, Fault: "storm"},  // unknown fault rate
		{Workload: Inference, Nodes: 8, Util: 0.7, Requests: 10, Policy: "bogus"}, // unknown policy
		{Workload: Inference, Util: 0.7, Requests: 10, Racks: 1, RackNodes: 8},    // single rack
		{Workload: Inference, Util: 0.7, Requests: 10, Racks: 2, RackNodes: 8, CrossFrac: 1.5},
		{Workload: Inference, Util: 0.7, Requests: 10, Racks: 2, RackNodes: 8, Fault: FaultFast}, // chaos is flat-only
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}
