package serving

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Shared lease-acquisition path. Every scenario leases its
// remote-memory working set through the unified core.Plane surface via
// this one helper, so the serving, churn, and scale cells share a
// single borrow shape and a single retry schedule and cannot drift
// apart. (Cells are gated byte-identical in BENCH_BASELINE.json; the
// retry schedule only engages on transient failures, which the swept
// configurations never hit.)

// borrowRetry is the scenarios' shared acquisition schedule: three
// attempts with a doubling backoff, enough to ride out a transiently
// drained donor population without materially delaying a genuinely
// failed cell.
var borrowRetry = core.RetryPolicy{Attempts: 3, Backoff: 200 * sim.Microsecond, Factor: 2}

// borrowWindows leases count remote-memory windows through pl as one
// all-or-nothing batch (partial grants are rolled back); mk shapes
// window i. The concrete memory leases come back in request order.
func borrowWindows(p *sim.Proc, pl core.Plane, count int, mk func(i int) core.Request) ([]*core.MemoryLease, error) {
	reqs := make([]core.Request, count)
	for i := range reqs {
		reqs[i] = mk(i).With(core.WithRetry(borrowRetry))
	}
	leases, err := pl.AcquireAll(p, reqs...)
	if err != nil {
		return nil, err
	}
	out := make([]*core.MemoryLease, count)
	for i, l := range leases {
		out[i] = l.(*core.MemoryLease)
	}
	return out, nil
}
