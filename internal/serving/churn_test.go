package serving

import (
	"testing"

	"repro/internal/sim"
)

func churnRun(t *testing.T, cfg ChurnConfig) *ChurnResult {
	t.Helper()
	r, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestChurnNoFaultBaseline: with the fault axis off, the scenario is a
// plain open-loop serving run — no crashes, no recoveries, no SLO
// misses, no unavailability.
func TestChurnNoFaultBaseline(t *testing.T) {
	r := churnRun(t, ChurnConfig{Nodes: 4, Util: 0.7, Requests: 300, Seed: 1})
	if r.Crashes != 0 || r.Recoveries != 0 {
		t.Fatalf("control cell saw faults: crashes=%d recoveries=%d", r.Crashes, r.Recoveries)
	}
	if r.Failed != 0 {
		t.Fatalf("control cell missed %d deadlines", r.Failed)
	}
	if r.UnavailNS != 0 {
		t.Fatalf("control cell charged %dns unavailability", r.UnavailNS)
	}
	if r.Lat.N() != 300 {
		t.Fatalf("latency histogram has %d entries, want 300", r.Lat.N())
	}
	if r.GoodputRPS != r.AchievedRPS {
		t.Fatalf("goodput %v != achieved %v with zero failures", r.GoodputRPS, r.AchievedRPS)
	}
}

// TestChurnSurvivesRollingCrashes is the scenario-level acceptance
// check: donors crash mid-stream, leases fail over, and every request
// still completes — the outages show up as SLO misses and
// unavailability, not as losses.
func TestChurnSurvivesRollingCrashes(t *testing.T) {
	r := churnRun(t, ChurnConfig{Nodes: 8, Util: 0.7, Requests: 1500, Fault: FaultFast, Seed: 1})
	if r.Crashes == 0 {
		t.Fatal("fast churn injected no crashes")
	}
	if r.Recoveries == 0 {
		t.Fatal("no lease was ever re-placed despite donor crashes")
	}
	if r.Lat.N() != 1500 {
		t.Fatalf("latency histogram has %d entries, want 1500 (requests lost?)", r.Lat.N())
	}
	if r.Failed == 0 || r.UnavailNS == 0 {
		t.Fatalf("outages left no trace: failed=%d unavail=%dns", r.Failed, r.UnavailNS)
	}
	if r.GoodputRPS >= r.AchievedRPS {
		t.Fatalf("goodput %v not below achieved %v despite SLO misses", r.GoodputRPS, r.AchievedRPS)
	}
	if r.RecoverMeanNS <= 0 {
		t.Fatal("no recovery latency recorded")
	}
	// Recovery is hot-plug dominated: one hot-plug op (2ms) plus RPCs,
	// well under 2x.
	if hp := float64(2 * sim.Millisecond); r.RecoverMeanNS > 2*hp {
		t.Fatalf("mean recovery %vns is beyond 2 hot-plug ops", r.RecoverMeanNS)
	}
	if r.DeadAccesses != 0 {
		t.Fatalf("%d accesses hit a revoked window; rolling churn should always leave a donor", r.DeadAccesses)
	}
	p50, p999 := r.Lat.Quantile(50), r.Lat.Quantile(99.9)
	if p999 <= p50 {
		t.Fatalf("tail not above median: p50=%d p999=%d", p50, p999)
	}
	// The extreme tail carries the outage stalls: at least a heartbeat
	// timeout long.
	if p999 < int64(churnBeatTimeout) {
		t.Fatalf("p999 %dns under the detection timeout; outages never reached the tail", p999)
	}
}

// TestChurnDeterministic: two runs with the same config are bit-equal —
// the property the harness shard/merge machinery stands on.
func TestChurnDeterministic(t *testing.T) {
	cfg := ChurnConfig{Nodes: 4, Util: 0.7, Requests: 400, Fault: FaultFast, Seed: 7}
	a := churnRun(t, cfg)
	b := churnRun(t, cfg)
	if a.Lat.String() != b.Lat.String() {
		t.Fatalf("latency histograms differ:\n%s\nvs\n%s", a.Lat, b.Lat)
	}
	if a.GoodputRPS != b.GoodputRPS || a.Failed != b.Failed || a.UnavailNS != b.UnavailNS ||
		a.Crashes != b.Crashes || a.Recoveries != b.Recoveries || a.RecoverMeanNS != b.RecoverMeanNS {
		t.Fatalf("scalar results differ: %+v vs %+v", a, b)
	}
	// A different shard seed is a genuinely different trial.
	cfg.Seed = 8
	c := churnRun(t, cfg)
	if a.Lat.String() == c.Lat.String() {
		t.Fatal("different seeds produced identical latency histograms")
	}
	// But the fault history is the cell's, not the shard's.
	if a.Crashes != c.Crashes {
		t.Fatalf("fault history varied across shards: %d vs %d crashes", a.Crashes, c.Crashes)
	}
}

// TestChurnConfigValidation: bad configs surface as errors.
func TestChurnConfigValidation(t *testing.T) {
	if _, err := RunChurn(ChurnConfig{Nodes: 4, Util: 0.7}); err == nil {
		t.Fatal("zero requests accepted")
	}
	if _, err := RunChurn(ChurnConfig{Nodes: 4, Requests: 10}); err == nil {
		t.Fatal("zero util accepted")
	}
	if _, err := RunChurn(ChurnConfig{Nodes: 2, Util: 0.5, Requests: 10}); err == nil {
		t.Fatal("2-node churn accepted (no donor diversity)")
	}
	if _, err := RunChurn(ChurnConfig{Nodes: 4, Util: 0.5, Requests: 10, Fault: "storm"}); err == nil {
		t.Fatal("unknown fault rate accepted")
	}
	if _, err := RunChurn(ChurnConfig{Nodes: 4, Util: 0.5, Requests: 10, Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
