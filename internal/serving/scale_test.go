package serving

import (
	"testing"

	"repro/internal/sim"
)

func scaleCfg(racks, rackNodes int, cross float64, seed uint64) Config {
	return Config{Workload: Scale, Racks: racks, RackNodes: rackNodes,
		CrossFrac: cross, Util: 0.7, Requests: 120, Seed: seed}
}

// TestScaleDeterminism: a config and seed fully determine every
// reported value on the hierarchical fabric too — delegation, spine
// bandwidth overrides, and background tenants included.
func TestScaleDeterminism(t *testing.T) {
	cfg := scaleCfg(2, 8, 0.5, 7)
	a, b := run(t, cfg), run(t, cfg)
	if a.OfferedRPS != b.OfferedRPS || a.AchievedRPS != b.AchievedRPS ||
		a.ServiceNS != b.ServiceNS || a.MaxQueue != b.MaxQueue {
		t.Fatalf("scalar results differ across identical runs:\n%+v\n%+v", a, b)
	}
	if a.Lat.String() != b.Lat.String() || a.Lat.Sum() != b.Lat.Sum() {
		t.Fatalf("latency histograms differ across identical runs:\n%v\n%v", a.Lat, b.Lat)
	}
}

// TestScaleCrossRackPenalty: pushing the working set across the
// oversubscribed spine visibly inflates the latency distribution — the
// central measurement of the serving-scale sweep.
func TestScaleCrossRackPenalty(t *testing.T) {
	local := run(t, scaleCfg(2, 8, 0, 11))
	crossed := run(t, scaleCfg(2, 8, 1, 11))
	if crossed.Lat.Quantile(50) <= local.Lat.Quantile(50) {
		t.Fatalf("cross-rack p50 %d not above rack-local p50 %d",
			crossed.Lat.Quantile(50), local.Lat.Quantile(50))
	}
	if crossed.ServiceNS <= local.ServiceNS {
		t.Fatalf("cross-rack service time %.0fns not above rack-local %.0fns",
			crossed.ServiceNS, local.ServiceNS)
	}
}

// TestScaleFullerRacksLoadSpine: at the same cross-rack fraction,
// bigger racks put proportionally more background tenants behind the
// same two uplinks, so the tail worsens with rack size — the
// oversubscription effect the rack-size axis exists to measure.
func TestScaleFullerRacksLoadSpine(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-rack scenarios")
	}
	small := run(t, scaleCfg(2, 8, 1, 13))
	big := run(t, scaleCfg(2, 32, 1, 13))
	if big.Lat.Quantile(99) <= small.Lat.Quantile(99) {
		t.Fatalf("32-node racks p99 %v not above 8-node racks p99 %v at full cross traffic",
			sim.Dur(big.Lat.Quantile(99)), sim.Dur(small.Lat.Quantile(99)))
	}
}

// TestScaleConfigErrors: invalid scale configurations fail loudly.
func TestScaleConfigErrors(t *testing.T) {
	bad := []Config{
		{Workload: Scale, Racks: 1, RackNodes: 8, Util: 0.5, Requests: 10},
		{Workload: Scale, Racks: 2, RackNodes: 9, Util: 0.5, Requests: 10},
		{Workload: Scale, Racks: 2, RackNodes: 8, CrossFrac: -0.1, Util: 0.5, Requests: 10},
		{Workload: Scale, Racks: 2, RackNodes: 8, CrossFrac: 1.1, Util: 0.5, Requests: 10},
	}
	for _, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("Run(%+v) succeeded, want error", cfg)
		}
	}
}
