package serving

import (
	"testing"

	"repro/internal/sim"
)

// run executes a config, failing the test on error.
func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	if r.Lat.N() != int64(cfg.Requests) {
		t.Fatalf("recorded %d latencies, want %d", r.Lat.N(), cfg.Requests)
	}
	return r
}

func kvCfg(nodes int, util float64, seed uint64) Config {
	return Config{Workload: KV, Nodes: nodes, Util: util, Requests: 200, Seed: seed}
}

func tierCfg(tenants int, policy string, util float64, seed uint64) Config {
	return Config{Workload: Tier, Nodes: 8, Util: util, Requests: 160,
		Tenants: tenants, Policy: policy, Seed: seed}
}

// TestServingDeterminism: a config and seed fully determine every
// reported value — the property the harness's byte-identity rests on.
func TestServingDeterminism(t *testing.T) {
	for _, cfg := range []Config{
		kvCfg(4, 0.8, 7),
		{Workload: KV, Nodes: 2, Util: 0.9, Requests: 150, Seed: 7,
			Arrivals: ArrivalSpec{Kind: MMPP}},
	} {
		a, b := run(t, cfg), run(t, cfg)
		if a.OfferedRPS != b.OfferedRPS || a.AchievedRPS != b.AchievedRPS ||
			a.ServiceNS != b.ServiceNS || a.MaxQueue != b.MaxQueue {
			t.Fatalf("scalar results differ across identical runs:\n%+v\n%+v", a, b)
		}
		if a.Lat.String() != b.Lat.String() || a.Lat.Sum() != b.Lat.Sum() {
			t.Fatalf("latency histograms differ across identical runs:\n%v\n%v", a.Lat, b.Lat)
		}
	}
}

// TestServingSeedsAreShards: different seeds give different streams
// (they would be useless as shards otherwise).
func TestServingSeedsAreShards(t *testing.T) {
	a := run(t, kvCfg(4, 0.8, 1))
	b := run(t, kvCfg(4, 0.8, 2))
	if a.Lat.Sum() == b.Lat.Sum() {
		t.Fatalf("distinct seeds produced identical latency sums (%d)", a.Lat.Sum())
	}
	if a.OfferedRPS != b.OfferedRPS {
		t.Fatalf("offered load should not depend on the shard seed: %v vs %v", a.OfferedRPS, b.OfferedRPS)
	}
}

// TestServingOpenLoopThroughput: at moderate utilization the open loop
// delivers roughly its offered rate, and the quantiles are ordered.
func TestServingOpenLoopThroughput(t *testing.T) {
	r := run(t, kvCfg(4, 0.5, 3))
	if ratio := r.AchievedRPS / r.OfferedRPS; ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("achieved %.0f rps vs offered %.0f rps (ratio %.2f) at util 0.5",
			r.AchievedRPS, r.OfferedRPS, ratio)
	}
	p50, p99 := r.Lat.Quantile(50), r.Lat.Quantile(99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("quantiles disordered: p50=%d p99=%d", p50, p99)
	}
}

// TestServingLoadMovesTail: pushing utilization toward saturation
// inflates the tail far more than the median — the queueing behavior
// closed-loop experiments cannot show.
func TestServingLoadMovesTail(t *testing.T) {
	low := run(t, kvCfg(4, 0.4, 5))
	high := run(t, kvCfg(4, 0.95, 5))
	if high.Lat.Quantile(99) <= low.Lat.Quantile(99) {
		t.Fatalf("p99 did not grow with load: %d @0.95 vs %d @0.4",
			high.Lat.Quantile(99), low.Lat.Quantile(99))
	}
}

// TestServingScaleOut: more nodes serve proportionally more offered
// load at the same per-server utilization.
func TestServingScaleOut(t *testing.T) {
	small := run(t, kvCfg(2, 0.8, 9))
	big := run(t, kvCfg(8, 0.8, 9))
	if big.OfferedRPS < 3*small.OfferedRPS {
		t.Fatalf("8-node mesh offers %.0f rps, want >= 3x the 2-node %.0f rps",
			big.OfferedRPS, small.OfferedRPS)
	}
}

// TestServingBurstinessFattensTail: MMPP arrivals at the same mean rate
// produce a worse tail than Poisson.
func TestServingBurstinessFattensTail(t *testing.T) {
	base := kvCfg(2, 0.9, 11)
	pois := run(t, base)
	burst := base
	burst.Arrivals = ArrivalSpec{Kind: MMPP}
	mmpp := run(t, burst)
	if mmpp.Lat.Quantile(99) <= pois.Lat.Quantile(99) {
		t.Fatalf("MMPP p99 %d not above Poisson p99 %d at util 0.9",
			mmpp.Lat.Quantile(99), pois.Lat.Quantile(99))
	}
}

// TestServingTenantPressureMovesTail: co-located tenants leasing and
// hammering remote memory through the same fabric visibly fatten the
// serving tier's tail.
func TestServingTenantPressureMovesTail(t *testing.T) {
	if testing.Short() {
		t.Skip("tier scenario pair is the slowest serving test")
	}
	quiet := run(t, tierCfg(0, "distance", 0.9, 13))
	loud := run(t, tierCfg(3, "distance", 0.9, 13))
	if loud.Lat.Quantile(99) <= quiet.Lat.Quantile(99) {
		t.Fatalf("tenant pressure did not move p99: %d with tenants vs %d without",
			loud.Lat.Quantile(99), quiet.Lat.Quantile(99))
	}
}

// TestServingPoliciesPlaceLeases: every sharing policy completes the
// scenario and reports a full histogram (placement differences are
// reported, not asserted — EXPERIMENTS.md records the observed
// ordering).
func TestServingPoliciesPlaceLeases(t *testing.T) {
	if testing.Short() {
		t.Skip("three tier scenarios")
	}
	for _, pol := range []string{"distance", "most-idle", "traffic-aware"} {
		r := run(t, tierCfg(2, pol, 0.8, 17))
		t.Logf("%s: p50=%v p99=%v offered=%.0f rps", pol,
			sim.Dur(r.Lat.Quantile(50)), sim.Dur(r.Lat.Quantile(99)), r.OfferedRPS)
	}
}

// TestServingConfigErrors: invalid configurations fail loudly instead
// of producing silent garbage.
func TestServingConfigErrors(t *testing.T) {
	bad := []Config{
		{Workload: "nope", Nodes: 4, Util: 0.5, Requests: 10},
		{Workload: KV, Nodes: 3, Util: 0.5, Requests: 10},
		{Workload: KV, Nodes: 4, Util: 0, Requests: 10},
		{Workload: KV, Nodes: 4, Util: 0.5, Requests: 0},
		{Workload: Tier, Nodes: 2, Util: 0.5, Requests: 10},
		{Workload: Tier, Nodes: 8, Util: 0.5, Requests: 10, Policy: "bogus"},
		{Workload: KV, Nodes: 2, Util: 0.5, Requests: 10,
			Arrivals: ArrivalSpec{Kind: "weibull"}},
		{Workload: KV, Nodes: 2, Util: 0.5, Requests: 10,
			Arrivals: ArrivalSpec{Kind: MMPP, BurstFactor: 5}}, // 5 × 0.2 leaves no quiet rate
		{Workload: KV, Nodes: 2, Util: 0.5, Requests: 10,
			Arrivals: ArrivalSpec{Kind: MMPP, BurstFrac: 1.5}},
		{Workload: KV, Nodes: 2, Util: 0.5, Requests: 10,
			Arrivals: ArrivalSpec{Kind: MMPP, BurstFactor: 0.5}},
	}
	for _, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("Run(%+v) succeeded, want error", cfg)
		}
	}
}
