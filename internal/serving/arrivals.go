// Package serving is the cluster-scale serving scenario family: an
// open-loop load generator (seeded Poisson or MMPP arrivals) drives the
// key-value and cache-tier workloads across a multi-node Venice mesh
// while co-located tenants lease remote memory through the Monitor
// Node's sharing policies, and every request's end-to-end latency lands
// in a mergeable streaming histogram. Open-loop means arrivals never
// wait for completions — exactly the regime where oversubscribed
// resource sharing shows up in the tail, which closed-loop batch
// experiments (figs. 3–18) cannot observe.
//
// The scenarios share the methodology: KV and Tier (serving.go) on
// single-rack meshes, churn (churn.go) adding
// fault-schedule-driven donor crashes, and Scale (scale.go) on
// multi-rack rack/spine fabrics where leases are brokered by the
// sharded monitor plane and a configurable fraction of the working set
// crosses the oversubscribed spine.
package serving

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// ArrivalKind selects the arrival process family.
type ArrivalKind string

const (
	// Poisson is a memoryless open-loop stream: exponential
	// inter-arrivals at a fixed rate.
	Poisson ArrivalKind = "poisson"
	// MMPP is a two-state Markov-modulated Poisson process: the stream
	// alternates between a quiet and a bursty state, each with
	// exponentially distributed dwell times, keeping the configured mean
	// rate while concentrating arrivals into bursts.
	MMPP ArrivalKind = "mmpp"
)

// ArrivalSpec shapes an arrival process. The absolute rate is supplied
// at sampler construction (it is derived from the calibrated service
// capacity), so the spec carries only the process shape.
type ArrivalSpec struct {
	Kind ArrivalKind
	// BurstFactor is the bursty state's rate as a multiple of the mean
	// rate (MMPP only; default 3).
	BurstFactor float64
	// BurstFrac is the long-run fraction of time spent in the bursty
	// state (MMPP only; default 0.2). The quiet state's rate is derived
	// so the process mean equals the configured rate.
	BurstFrac float64
	// BurstDwell is the mean dwell time of the bursty state (MMPP only;
	// default 200 µs).
	BurstDwell sim.Dur
}

// FlashCrowd is the shared flash-crowd arrival preset: a two-state
// MMPP whose bursty state runs at 8× the mean rate for ~10% of the
// time with 500 µs mean dwells — long, hard spikes against a
// correspondingly quieter baseline (quiet-state rate ≈ 0.22× mean),
// the diurnal-peak/viral-event shape the tenancy and churn scenarios
// stress admission control with. Override any field after calling for
// a sharper or gentler crowd; the zero fields keep their documented
// ArrivalSpec defaults.
func FlashCrowd() ArrivalSpec {
	return ArrivalSpec{
		Kind:        MMPP,
		BurstFactor: 8,
		BurstFrac:   0.1,
		BurstDwell:  500 * sim.Microsecond,
	}
}

func (s ArrivalSpec) burstFactor() float64 {
	if s.BurstFactor > 0 {
		return s.BurstFactor
	}
	return 3
}

func (s ArrivalSpec) burstFrac() float64 {
	if s.BurstFrac > 0 {
		return s.BurstFrac
	}
	return 0.2
}

func (s ArrivalSpec) burstDwell() sim.Dur {
	if s.BurstDwell > 0 {
		return s.BurstDwell
	}
	return 200 * sim.Microsecond
}

// String names the process for tables and trial ids.
func (s ArrivalSpec) String() string {
	if s.Kind == MMPP {
		return string(MMPP)
	}
	return string(Poisson)
}

// validate rejects parameterizations that have no consistent MMPP
// interpretation, so bad configs surface as errors from Run instead of
// panicking inside the simulation (or silently degenerating).
func (s ArrivalSpec) validate() error {
	switch s.Kind {
	case "", Poisson:
		return nil
	case MMPP:
	default:
		return fmt.Errorf("serving: unknown arrival kind %q", s.Kind)
	}
	f, k := s.burstFrac(), s.burstFactor()
	if f >= 1 {
		return fmt.Errorf("serving: MMPP burst fraction %v must be in (0, 1)", f)
	}
	if k <= 1 {
		return fmt.Errorf("serving: MMPP burst factor %v must exceed 1", k)
	}
	if f*k >= 1 {
		return fmt.Errorf("serving: MMPP burst factor %v × fraction %v >= 1 leaves no quiet-state rate", k, f)
	}
	return nil
}

// sampler draws successive inter-arrival times. All randomness comes
// from the supplied RNG, so a seed fully determines the stream.
type sampler struct {
	spec      ArrivalSpec
	rng       *sim.RNG
	rateQuiet float64 // arrivals per ns
	rateBurst float64
	inBurst   bool
	stateLeft sim.Dur // virtual time remaining in the current state
}

// newSampler builds a sampler producing meanRPS arrivals per second on
// average.
func newSampler(spec ArrivalSpec, meanRPS float64, rng *sim.RNG) *sampler {
	if meanRPS <= 0 {
		panic(fmt.Sprintf("serving: non-positive arrival rate %v", meanRPS))
	}
	perNS := meanRPS / 1e9
	s := &sampler{spec: spec, rng: rng}
	if spec.Kind != MMPP {
		s.rateQuiet, s.rateBurst = perNS, perNS
		s.stateLeft = sim.Dur(math.MaxInt64)
		return s
	}
	f, k := spec.burstFrac(), spec.burstFactor()
	// mean = f*burst + (1-f)*quiet, with burst = k*mean.
	quiet := perNS * (1 - f*k) / (1 - f)
	if quiet <= 0 {
		panic(fmt.Sprintf("serving: MMPP burst factor %v × frac %v leaves no quiet-state rate", k, f))
	}
	s.rateQuiet, s.rateBurst = quiet, perNS*k
	s.stateLeft = s.expDur(1 / float64(s.quietDwell()))
	return s
}

// quietDwell derives the quiet state's mean dwell from the bursty
// state's so the long-run burst fraction comes out right.
func (s *sampler) quietDwell() sim.Dur {
	f := s.spec.burstFrac()
	return sim.Dur(float64(s.spec.burstDwell()) * (1 - f) / f)
}

// expDur samples an exponential duration with the given rate (per ns).
func (s *sampler) expDur(rate float64) sim.Dur {
	u := s.rng.Float64()
	d := -math.Log(1-u) / rate
	if d < 1 {
		d = 1 // quantize to the engine's ns resolution, never zero
	}
	if d > float64(math.MaxInt64)/2 {
		d = float64(math.MaxInt64) / 2
	}
	return sim.Dur(d)
}

// rate reports the current state's arrival rate per ns.
func (s *sampler) rate() float64 {
	if s.inBurst {
		return s.rateBurst
	}
	return s.rateQuiet
}

// Next returns the time until the next arrival, advancing the modulated
// state as virtual time passes.
func (s *sampler) Next() sim.Dur {
	var elapsed sim.Dur
	for {
		d := s.expDur(s.rate())
		if d <= s.stateLeft {
			s.stateLeft -= d
			return elapsed + d
		}
		// The state expires before the would-be arrival: consume the
		// remaining dwell and resample in the next state (the exponential
		// is memoryless, so resampling is exact).
		elapsed += s.stateLeft
		s.inBurst = !s.inBurst
		if s.inBurst {
			s.stateLeft = s.expDur(1 / float64(s.spec.burstDwell()))
		} else {
			s.stateLeft = s.expDur(1 / float64(s.quietDwell()))
		}
	}
}
