package serving

import (
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/monitor"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/vnic"
)

// The inference scenario is the device-plane member of the serving
// family: an inference farm whose compute is leased remote accelerators
// (an FFT-style engine stands in for the model kernel) and whose result
// egress runs over a bond of leased remote NICs. Open-loop arrivals fan
// requests out across the accelerator leases; each request ships its
// input to the leased device over RDMA, runs the kernel, reads the
// result back, and pushes the response bytes through the NIC bond. On
// flat meshes a churn-style rolling-crash schedule walks the donor farm,
// so the cell measures device-lease failover — the MN retargets each
// orphaned lease onto a surviving donor and the accelerator handle
// replays its in-flight chunks there — in serving terms: the latency
// tail and zero lost completions. On rack/spine fabrics a CrossFrac
// share of the accelerator leases is delegated to other racks by the
// sharded monitor plane, putting every cross-rack request's data motion
// on the oversubscribed spine.

// Scenario-internal calibration constants (fixed, like the other
// scenarios': the sweep varies only load, scale, cross-rack mix, and
// fault rate).
const (
	inferClusterSeed = 2131
	inferChaosSeed   = 2132
	inferCalSeed     = 2133
	inferHierSeed    = 2134

	// The leased farm: each donor hosts inferAccelsPerDonor accelerators
	// and advertises one shareable NIC; the app leases inferAccelLeases
	// devices plus inferNICLeases NICs in one all-or-nothing batch.
	// Leasing fewer units than each donor advertises leaves failover
	// headroom: a crashed donor's lease always has a live candidate with
	// a free device.
	inferAccelLeases    = 2
	inferNICLeases      = 2
	inferAccelsPerDonor = 2

	// The stand-in kernel and per-request data motion: one task ships
	// inferTaskBytes of input (chunk-pipelined over RDMA), computes at
	// inferFFTMBps, returns the same volume, and the response summary
	// egresses over the NIC bond.
	inferFFTMBps   = 360.0
	inferFFTSetup  = 10 * sim.Microsecond
	inferTaskBytes = 128 << 10
	inferRespBytes = 4 << 10
	inferCalibrate = 32

	// Flat cells run the churn scenario's fast control plane so failure
	// detection resolves within a rolling outage.
	inferBeatInterval = 100 * sim.Microsecond
	inferBeatTimeout  = 500 * sim.Microsecond
	inferSweep        = 250 * sim.Microsecond

	// Rolling-churn timing over the donor farm (flat cells only).
	inferOutage     = 4 * sim.Millisecond
	inferSlowPeriod = 16 * sim.Millisecond
	inferFastPeriod = 6 * sim.Millisecond
)

// runInference dispatches the inference farm onto the configured fabric
// shape: flat mesh (with optional donor churn) or rack/spine hierarchy
// (with cross-rack device delegation).
func runInference(cfg Config) (*Result, error) {
	if cfg.Racks > 0 {
		if cfg.Fault != "" && cfg.Fault != FaultNone {
			return nil, fmt.Errorf("serving: inference fault injection runs on flat meshes only (got Racks=%d, Fault=%q)", cfg.Racks, cfg.Fault)
		}
		return runInferenceHier(cfg)
	}
	return runInferenceFlat(cfg)
}

// inferFarm installs accelerator services on one donor node and
// advertises its shareable devices through the node's agent.
func inferFarm(eng *sim.Engine, p *sim.Params, dn *node.Node, ag *monitor.Agent) *accel.Service {
	kernel := accel.FFT{MBps: inferFFTMBps, Setup: inferFFTSetup}
	devs := make([]*accel.Accelerator, inferAccelsPerDonor)
	for j := range devs {
		devs[j] = accel.New(eng, p, kernel)
	}
	svc := accel.Serve(dn, devs...)
	ag.Devices[monitor.DevAccelerator] = inferAccelsPerDonor
	ag.Devices[monitor.DevNIC] = 1
	return svc
}

// inferLeases acquires the farm's device working set — accelerator
// leases then NIC leases — as one all-or-nothing batch through the
// plane. scope shapes accelerator lease i (NIC leases are always
// granted wherever the policy sends them on flat planes, rack-local on
// hierarchical ones).
func inferLeases(pr *sim.Proc, pl core.Plane, app *node.Node, client *accel.Client,
	accScope func(i int) []core.Option, nicScope []core.Option) ([]*core.AccelLease, []*core.NICLease, error) {
	reqs := make([]core.Request, 0, inferAccelLeases+inferNICLeases)
	for i := 0; i < inferAccelLeases; i++ {
		opts := append([]core.Option{core.WithClient(client), core.WithRetry(borrowRetry)}, accScope(i)...)
		reqs = append(reqs, core.NewRequest(core.Accel, app, 0, opts...))
	}
	for i := 0; i < inferNICLeases; i++ {
		opts := append([]core.Option{core.WithRetry(borrowRetry)}, nicScope...)
		reqs = append(reqs, core.NewRequest(core.NIC, app, 0, opts...))
	}
	leases, err := pl.AcquireAll(pr, reqs...)
	if err != nil {
		return nil, nil, err
	}
	accLs := make([]*core.AccelLease, inferAccelLeases)
	nicLs := make([]*core.NICLease, inferNICLeases)
	for i := 0; i < inferAccelLeases; i++ {
		accLs[i] = leases[i].(*core.AccelLease)
	}
	for i := 0; i < inferNICLeases; i++ {
		nicLs[i] = leases[inferAccelLeases+i].(*core.NICLease)
	}
	return accLs, nicLs, nil
}

// inferServe runs calibration plus the measured open-loop phase on an
// already-leased farm; onCalibrated fires between the two (the flat
// scenario installs its chaos schedule there, so calibration is
// identical across the fault axis).
func inferServe(pr *sim.Proc, eng *sim.Engine, app *node.Node, cfg Config, res *Result,
	accLs []*core.AccelLease, bond *vnic.Bond, onCalibrated func() error) error {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}

	// Closed-loop calibration under healthy conditions: one request's
	// mean accelerator round trip plus egress sets the capacity the
	// offered load is expressed against.
	t0 := pr.Now()
	for j := 0; j < inferCalibrate; j++ {
		accLs[j%len(accLs)].Handle.Run(pr, "fft", inferTaskBytes)
		bond.Send(pr, inferRespBytes)
	}
	res.ServiceNS = float64(pr.Now().Sub(t0)) / inferCalibrate
	res.OfferedRPS = cfg.Util * float64(workers) / res.ServiceNS * 1e9
	if err := onCalibrated(); err != nil {
		return err
	}

	reqQ := sim.NewQueue[request](eng)
	shards := make([]*sim.LatencyHist, workers)
	var lastDone sim.Time
	completed := 0
	grp := sim.NewGroup(eng)
	for w := 0; w < workers; w++ {
		w := w
		shards[w] = &sim.LatencyHist{}
		grp.Add(1)
		app.Run(fmt.Sprintf("infer-worker-%d", w), func(wp *sim.Proc) {
			defer grp.Done()
			for {
				req := reqQ.Pop(wp)
				if req.close {
					return
				}
				accLs[req.key].Handle.Run(wp, "fft", inferTaskBytes)
				bond.Send(wp, inferRespBytes)
				shards[w].AddDur(wp.Now().Sub(req.arrived))
				if wp.Now() > lastDone {
					lastDone = wp.Now()
				}
				completed++
			}
		})
	}

	arr := newSampler(cfg.Arrivals, res.OfferedRPS, sim.NewRNG(cfg.Seed))
	leaseRng := sim.NewRNG(cfg.Seed ^ 0x5eed)
	start := pr.Now()
	for r := 0; r < cfg.Requests; r++ {
		pr.Sleep(arr.Next())
		reqQ.Push(pr, request{arrived: pr.Now(), key: leaseRng.Intn(len(accLs))})
	}
	for w := 0; w < workers; w++ {
		reqQ.Push(pr, request{close: true})
	}
	grp.Wait(pr)

	// Zero-loss accounting: requests may stall through an outage while
	// their lease fails over and its chunks replay, but every one of
	// them must complete.
	if completed != cfg.Requests {
		return fmt.Errorf("serving: inference lost requests: %d of %d completed", completed, cfg.Requests)
	}
	res.AchievedRPS = float64(completed) / lastDone.Sub(start).Seconds()
	res.MaxQueue = reqQ.MaxDepth()
	res.Lat = &sim.LatencyHist{}
	for _, s := range shards {
		res.Lat.Merge(s)
	}
	return nil
}

// runInferenceFlat serves the farm on a single mesh: MN on node 0
// (excluded from donation), the app server on node 1, every other node
// donating accelerators and a NIC. Fault rates above none roll crashes
// through the donor farm once calibration ends.
func runInferenceFlat(cfg Config) (*Result, error) {
	pol, ok := monitor.PolicyByName(cfg.Policy)
	if !ok {
		return nil, fmt.Errorf("serving: unknown sharing policy %q (known: %v)", cfg.Policy, monitor.PolicyNames())
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 8
	}
	if nodes < 4 {
		return nil, fmt.Errorf("serving: inference needs >= 4 nodes (MN + server + two donors), got %d", nodes)
	}
	topo, err := topoFor(nodes)
	if err != nil {
		return nil, err
	}
	var period sim.Dur
	switch cfg.Fault {
	case "", FaultNone:
		period = 0
	case FaultSlow:
		period = inferSlowPeriod
	case FaultFast:
		period = inferFastPeriod
	default:
		return nil, fmt.Errorf("serving: unknown fault rate %q", cfg.Fault)
	}

	cl := core.NewCluster(core.Config{
		Topology:          &topo,
		StartAgents:       true,
		StartRecovery:     true,
		HeartbeatInterval: inferBeatInterval,
		HeartbeatTimeout:  inferBeatTimeout,
		SweepInterval:     inferSweep,
		Seed:              inferClusterSeed,
	})
	defer cl.Close()
	cl.MN.Policy = pol
	// The MN must never be elected donor (matching the churn scenario):
	// crashing a device donor must not take the control plane with it.
	if err := cl.Node(0).MemMgr.Reserve(cl.Node(0).MemMgr.Idle()); err != nil {
		return nil, fmt.Errorf("serving: reserving MN memory: %w", err)
	}
	for i := 2; i < nodes; i++ {
		svc := inferFarm(cl.Eng, cl.P, cl.Node(i), cl.Agents[i])
		defer svc.Shutdown()
	}
	cl.RunFor(10 * sim.Millisecond) // populate the RRT (devices ride the beats)

	// Donor population for the rolling schedule, nearest-to-server first
	// — the early crashes hit the donors distance-leaning policies lease
	// from, so the cell measures failover, not crashes of idle bystanders.
	var donors []fabric.NodeID
	for i := 2; i < nodes; i++ {
		donors = append(donors, fabric.NodeID(i))
	}
	sort.Slice(donors, func(i, j int) bool {
		hi, hj := topo.HopCount(1, donors[i]), topo.HopCount(1, donors[j])
		if hi != hj {
			return hi < hj
		}
		return donors[i] < donors[j]
	})
	inj := chaos.New(cl.Eng, cl.Net, cl.Agents)

	app := cl.Node(1)
	res := &Result{}
	var runErr error
	done := app.Run("serving-inference", func(pr *sim.Proc) {
		client := accel.NewClient(app)
		accLs, nicLs, err := inferLeases(pr, cl, app, client,
			func(int) []core.Option { return nil }, nil)
		if err != nil {
			runErr = fmt.Errorf("serving: inference leases: %w", err)
			return
		}
		local := vnic.NewNIC(cl.Eng, cl.P, "eth0")
		slaves := []vnic.Slave{&vnic.LocalSlave{NIC: local}}
		for _, nl := range nicLs {
			slaves = append(slaves, nl)
		}
		bond := vnic.NewBond(cl.P, slaves...)

		runErr = inferServe(pr, cl.Eng, app, cfg, res, accLs, bond, func() error {
			if period == 0 {
				return nil
			}
			// Chaos starts only after calibration; instants derive from a
			// fixed internal seed so every shard of a cell sees the same
			// fault history, covering the expected measured window.
			windowNS := float64(cfg.Requests) / res.OfferedRPS * 1e9
			cycles := int(windowNS/float64(period)) + 2
			n, err := inj.Install(chaos.Schedule{
				Seed:    inferChaosSeed,
				Actions: chaos.Rolling(donors, period, inferOutage, cycles),
			})
			if err != nil || n == 0 {
				return fmt.Errorf("serving: installing inference churn schedule (%d actions): %v", n, err)
			}
			return nil
		})
	})
	// Agents, recovery, and pending chaos actions keep the event queue
	// alive forever; step only until the scenario completes.
	for !done.Done() && cl.Eng.Step() {
	}
	if runErr != nil {
		return nil, runErr
	}
	if !done.Done() {
		return nil, fmt.Errorf("serving: inference scenario deadlocked (%d live procs)", cl.Eng.LiveProcs())
	}
	res.Crashes = inj.Stats.Get(string(chaos.NodeDown))
	res.DevFailovers = cl.MN.Stats.Get("recover.devices_replaced")
	return res, nil
}

// runInferenceHier serves the farm on a rack/spine fabric: the app
// server in rack 0 leases CrossFrac of its accelerators from other
// racks through the sharded monitor plane (root-elected donor rack,
// delegated grant), so every cross-leased request's input/output motion
// rides the oversubscribed spine uplinks. NIC leases stay rack-local —
// egress bonding across the spine would serialize on the same uplinks
// the sweep is measuring.
func runInferenceHier(cfg Config) (*Result, error) {
	if cfg.Racks < 2 {
		return nil, fmt.Errorf("serving: hierarchical inference needs >= 2 racks, got %d", cfg.Racks)
	}
	if cfg.CrossFrac < 0 || cfg.CrossFrac > 1 {
		return nil, fmt.Errorf("serving: CrossFrac %v out of [0, 1]", cfg.CrossFrac)
	}
	x, y, z, err := scaleRackDims(cfg.RackNodes)
	if err != nil {
		return nil, err
	}
	cross := int(cfg.CrossFrac*inferAccelLeases + 0.5)

	cl := core.NewHierCluster(core.HierConfig{
		Racks: cfg.Racks, RackX: x, RackY: y, RackZ: z,
		Spines: scaleSpines, Uplinks: scaleUplinks, SpineGbps: scaleSpineGbps,
		Seed: inferHierSeed,
		// Long periods keep the steady-state event count tractable; the
		// warm-up covers the staggered first beats that carry every
		// donor's device advertisement up through the rack beats.
		HeartbeatInterval: 30 * sim.Second,
		RackBeatInterval:  30 * sim.Second,
	})
	defer cl.Close()
	// Every rack runs a donor farm on its nodes past the app's index
	// (clear of the sub-MN/uplink nodes 0 and 1), so remote racks have
	// devices for the root to delegate.
	for r := 0; r < cfg.Racks; r++ {
		ids := cl.Hier.RackNodes(r)
		for _, id := range ids[3:] {
			svc := inferFarm(cl.Eng, cl.P, cl.Node(int(id)), cl.Agents[id])
			defer svc.Shutdown()
		}
	}
	cl.RunFor(1 * sim.Second)

	app := cl.Node(int(cl.Hier.RackNodes(0)[2]))
	res := &Result{}
	var runErr error
	done := app.Run("serving-inference", func(pr *sim.Proc) {
		client := accel.NewClient(app)
		// The first cross leases are forced onto other racks; the rest
		// are pinned rack-local, so CrossFrac is exact, not a policy
		// accident.
		accLs, nicLs, err := inferLeases(pr, cl, app, client,
			func(i int) []core.Option {
				if i < cross {
					return []core.Option{core.WithScope(monitor.ScopeRemoteRack)}
				}
				return []core.Option{core.WithScope(monitor.ScopeLocalRack)}
			},
			[]core.Option{core.WithScope(monitor.ScopeLocalRack)})
		if err != nil {
			runErr = fmt.Errorf("serving: inference leases: %w", err)
			return
		}
		local := vnic.NewNIC(cl.Eng, cl.P, "eth0")
		slaves := []vnic.Slave{&vnic.LocalSlave{NIC: local}}
		for _, nl := range nicLs {
			slaves = append(slaves, nl)
		}
		bond := vnic.NewBond(cl.P, slaves...)

		runErr = inferServe(pr, cl.Eng, app, cfg, res, accLs, bond, func() error { return nil })
	})
	for !done.Done() && cl.Eng.Step() {
	}
	if runErr != nil {
		return nil, runErr
	}
	if !done.Done() {
		return nil, fmt.Errorf("serving: inference scenario deadlocked (%d live procs)", cl.Eng.LiveProcs())
	}
	return res, nil
}
