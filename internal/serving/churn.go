package serving

import (
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// The churn scenario is the availability-under-failure complement to the
// load scenarios: an app server leases remote-memory windows through the
// Monitor Node and serves open-loop requests out of them while a chaos
// schedule rolls crashes through the donor population. What it measures
// is the recovery machinery itself — heartbeat-timeout detection, donor
// re-election, lease re-placement, and in-flight replay — expressed in
// serving terms: goodput (completions within an SLO deadline),
// unavailability windows (completion stalls), and the latency tail.

// FaultRate names the churn intensity a cell runs under.
type FaultRate string

// The swept churn intensities. Rates are expressed as the per-donor
// crash period of a rolling-churn plan (outage length is fixed), so
// "fast" means each donor crashes about every churnFastPeriod of
// virtual time.
const (
	FaultNone FaultRate = "none" // control: no faults
	FaultSlow FaultRate = "slow"
	FaultFast FaultRate = "fast"
)

// ChurnConfig shapes one churn scenario run.
type ChurnConfig struct {
	// Nodes is the mesh size: 4 or 8. The MN runs on node 0 (excluded
	// from donation), the app server on node 1; everything else donates.
	Nodes int
	// Util is offered load as a fraction of calibrated capacity.
	Util float64
	// Requests is the number of measured open-loop requests.
	Requests int
	// Workers is the app-server dispatch concurrency (default 2).
	Workers int
	// Leases is how many remote-memory windows the server spreads its
	// working set over (default 2; each is placed independently by the
	// policy, so they can land on different donors).
	Leases int
	// Policy names the MN sharing policy ("" = distance-first).
	Policy string
	// Fault selects the churn intensity (default FaultNone).
	Fault FaultRate
	// Arrivals shapes the open-loop arrival process. The zero value is
	// the historical Poisson stream (byte-identical results); set
	// FlashCrowd() to drive churn through hard bursts instead.
	Arrivals ArrivalSpec
	// SparePool pre-plugs one lease-sized spare region per donor: the
	// carve's hot-remove happens when the pool fills (off the serving
	// path), so a failover's replacement grant skips the ~2 ms hot-plug
	// and recovery latency collapses to the control-plane round trips.
	SparePool bool
	// Seed drives the arrival and offset streams (the shard axis).
	// Chaos instants derive from a fixed internal seed so every shard of
	// a cell sees the same fault history.
	Seed uint64

	// The remaining fields are observability hooks (venice-serve). All
	// run OUTSIDE virtual time — they may read simulation state but must
	// not sleep, block, or touch the engine — so leaving them nil (the
	// default) and setting them produce byte-identical results.

	// OnCluster, when set, receives the cluster after its RRT is
	// populated and before serving starts: the place to attach
	// lease-lifecycle observers or capture handles for snapshots.
	OnCluster func(*core.Cluster)
	// Throttle, when set, is called between engine steps on the driving
	// goroutine. venice-serve uses it to pace virtual time against wall
	// clock and to publish state snapshots at a safe point.
	Throttle func()
	// Observe, when set, receives every measured request's end-to-end
	// latency as it completes (in addition to the shard histograms).
	Observe func(sim.Dur)
}

// ChurnResult is one churn run's measurements.
type ChurnResult struct {
	// Lat holds every request's end-to-end latency (arrival to
	// completion, queueing and outage stalls included).
	Lat *sim.LatencyHist
	// OfferedRPS is the open-loop arrival rate.
	OfferedRPS float64
	// AchievedRPS counts every completion over the measured window.
	AchievedRPS float64
	// GoodputRPS counts only completions within the SLO deadline.
	GoodputRPS float64
	// ServiceNS is the calibrated closed-loop mean service time.
	ServiceNS float64
	// Deadline is the SLO the goodput is measured against
	// (churnDeadlineMult × ServiceNS).
	Deadline sim.Dur
	// Failed counts deadline misses. Every request still completes —
	// zero-loss accounting is asserted by the scenario — so Failed is an
	// SLO figure, not a loss figure.
	Failed int
	// UnavailNS totals completion-stall time: for each inter-completion
	// gap exceeding the stall threshold (churnStallMult × ServiceNS),
	// the excess is charged as unavailability.
	UnavailNS int64
	// Crashes and Recoveries count injected donor crashes and completed
	// lease re-placements; RecoverMeanNS is the mean MN-side
	// re-placement latency (detection excluded).
	Crashes       int64
	Recoveries    int64
	RecoverMeanNS float64
	// DeadAccesses counts reads that hit a revoked window (re-placement
	// found no donor). Zero in every swept configuration — rolling churn
	// keeps a survivor available by construction.
	DeadAccesses int64
}

// Scenario-internal calibration constants (shared by every cell, like
// the serving scenarios' — the sweep varies only load, scale, policy,
// and fault rate).
const (
	churnClusterSeed = 2121
	churnChaosSeed   = 2122
	churnCalSeed     = 2123

	churnLeaseBytes = uint64(8 << 20)
	churnReadBytes  = 2048
	churnThink      = 20 * sim.Microsecond
	churnCalibrate  = 48

	churnBeatInterval = 100 * sim.Microsecond
	churnBeatTimeout  = 500 * sim.Microsecond
	churnSweep        = 250 * sim.Microsecond

	// Rolling-churn timing: each cycle crashes the next donor for
	// churnOutage; the period between crashes sets the fault rate.
	churnOutage     = 4 * sim.Millisecond
	churnSlowPeriod = 16 * sim.Millisecond
	churnFastPeriod = 6 * sim.Millisecond

	churnDeadlineMult = 50 // SLO deadline, multiples of mean service time
	churnStallMult    = 20 // unavailability threshold, multiples of mean service
)

// churnRequest is one queued unit of offered load.
type churnRequest struct {
	arrived sim.Time
	lease   int
	off     uint64
	close   bool
}

// RunChurn executes one availability-under-churn scenario.
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("serving: Requests must be positive, got %d", cfg.Requests)
	}
	if cfg.Util <= 0 {
		return nil, fmt.Errorf("serving: Util must be positive, got %v", cfg.Util)
	}
	pol, ok := monitor.PolicyByName(cfg.Policy)
	if !ok {
		return nil, fmt.Errorf("serving: unknown sharing policy %q (known: %v)", cfg.Policy, monitor.PolicyNames())
	}
	if err := cfg.Arrivals.validate(); err != nil {
		return nil, err
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 8
	}
	if nodes < 4 {
		return nil, fmt.Errorf("serving: churn needs >= 4 nodes (MN + server + two donors), got %d", nodes)
	}
	topo, err := topoFor(nodes)
	if err != nil {
		return nil, err
	}
	var period sim.Dur
	switch cfg.Fault {
	case "", FaultNone:
		period = 0
	case FaultSlow:
		period = churnSlowPeriod
	case FaultFast:
		period = churnFastPeriod
	default:
		return nil, fmt.Errorf("serving: unknown fault rate %q", cfg.Fault)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	leases := cfg.Leases
	if leases <= 0 {
		leases = 2
	}

	ccfg := core.Config{
		Topology:          &topo,
		StartAgents:       true,
		StartRecovery:     true,
		HeartbeatInterval: churnBeatInterval,
		HeartbeatTimeout:  churnBeatTimeout,
		SweepInterval:     churnSweep,
		Seed:              churnClusterSeed,
	}
	if cfg.SparePool {
		// One spare per lease the server holds: a crashed donor can back
		// every lease it carried, so no failover in the burst goes cold.
		ccfg.SpareRegionBytes = churnLeaseBytes
		ccfg.SparesPerDonor = leases
	}
	cl := core.NewCluster(ccfg)
	defer cl.Close()
	cl.MN.Policy = pol
	// The MN must never be elected donor: its death model (and the
	// paper's un-replicated MN) is out of scope, and crashing a lease
	// donor must not take the control plane with it.
	if err := cl.Node(0).MemMgr.Reserve(cl.Node(0).MemMgr.Idle()); err != nil {
		return nil, fmt.Errorf("serving: reserving MN memory: %w", err)
	}
	cl.RunFor(10 * sim.Millisecond) // populate the RRT
	if cfg.OnCluster != nil {
		cfg.OnCluster(cl)
	}

	// Donor population: every node but the MN (0) and the server (1),
	// ordered nearest-to-server first. Rolling churn walks this order, so
	// the early crashes hit the donors the distance-leaning policies
	// favor — the cell measures failover, not crashes of idle bystanders.
	var donors []fabric.NodeID
	for i := 2; i < nodes; i++ {
		donors = append(donors, fabric.NodeID(i))
	}
	sort.Slice(donors, func(i, j int) bool {
		hi, hj := topo.HopCount(1, donors[i]), topo.HopCount(1, donors[j])
		if hi != hj {
			return hi < hj
		}
		return donors[i] < donors[j]
	})
	inj := chaos.New(cl.Eng, cl.Net, cl.Agents)

	app := cl.Node(1)
	res := &ChurnResult{}
	var runErr error
	done := app.Run("serving-churn", func(pr *sim.Proc) {
		ls, err := borrowWindows(pr, cl, leases, func(int) core.Request {
			return core.NewRequest(core.Memory, app, churnLeaseBytes)
		})
		if err != nil {
			runErr = fmt.Errorf("serving: churn leases: %w", err)
			return
		}

		// Closed-loop calibration under healthy conditions: the mean
		// remote read sets the capacity the offered load is against.
		calRng := sim.NewRNG(churnCalSeed)
		t0 := pr.Now()
		for j := 0; j < churnCalibrate; j++ {
			l := ls[j%len(ls)]
			off := calRng.Uint64n(l.Size-churnReadBytes) &^ 63
			app.EP.CRMA.Fill(pr, l.WindowBase+off, churnReadBytes)
			pr.Sleep(churnThink)
		}
		res.ServiceNS = float64(pr.Now().Sub(t0)) / churnCalibrate
		res.OfferedRPS = cfg.Util * float64(workers) / res.ServiceNS * 1e9
		res.Deadline = sim.Dur(churnDeadlineMult * res.ServiceNS)
		stallThresh := sim.Dur(churnStallMult * res.ServiceNS)

		// Chaos starts only now, so calibration is identical across the
		// fault-rate axis. The expected measured window is
		// Requests/OfferedRPS; schedule enough rolling cycles to cover it
		// (instants are deterministic in the internal seed — shards share
		// one fault history).
		if period > 0 {
			windowNS := float64(cfg.Requests) / res.OfferedRPS * 1e9
			cycles := int(windowNS/float64(period)) + 2
			n, err := inj.Install(chaos.Schedule{
				Seed:    churnChaosSeed,
				Actions: chaos.Rolling(donors, period, churnOutage, cycles),
			})
			if err != nil || n == 0 {
				runErr = fmt.Errorf("serving: installing churn schedule (%d actions): %v", n, err)
				return
			}
		}

		reqQ := sim.NewQueue[churnRequest](cl.Eng)
		shards := make([]*sim.LatencyHist, workers)
		var lastDone sim.Time
		completed := 0
		grp := sim.NewGroup(cl.Eng)
		for w := 0; w < workers; w++ {
			w := w
			shards[w] = &sim.LatencyHist{}
			grp.Add(1)
			app.Run(fmt.Sprintf("churn-worker-%d", w), func(wp *sim.Proc) {
				defer grp.Done()
				for {
					req := reqQ.Pop(wp)
					if req.close {
						return
					}
					l := ls[req.lease]
					app.EP.CRMA.Fill(wp, l.WindowBase+req.off, churnReadBytes)
					wp.Sleep(churnThink)
					d := wp.Now().Sub(req.arrived)
					shards[w].AddDur(d)
					if cfg.Observe != nil {
						cfg.Observe(d)
					}
					if d > res.Deadline {
						res.Failed++
					}
					// Unavailability: completion-gap excess over the stall
					// threshold. lastDone is shared across workers; the
					// engine's determinism makes the accounting exact.
					if completed > 0 {
						if gap := wp.Now().Sub(lastDone); gap > stallThresh {
							res.UnavailNS += int64(gap - stallThresh)
						}
					}
					if wp.Now() > lastDone {
						lastDone = wp.Now()
					}
					completed++
				}
			})
		}

		arr := newSampler(cfg.Arrivals, res.OfferedRPS, sim.NewRNG(cfg.Seed))
		offRng := sim.NewRNG(cfg.Seed ^ 0x5eed)
		start := pr.Now()
		for r := 0; r < cfg.Requests; r++ {
			pr.Sleep(arr.Next())
			li := offRng.Intn(len(ls))
			off := offRng.Uint64n(churnLeaseBytes-churnReadBytes) &^ 63
			reqQ.Push(pr, churnRequest{arrived: pr.Now(), lease: li, off: off})
		}
		for w := 0; w < workers; w++ {
			reqQ.Push(pr, churnRequest{close: true})
		}
		grp.Wait(pr)

		// Zero-loss accounting: open-loop arrivals may stall through an
		// outage, but every one of them must complete.
		if completed != cfg.Requests {
			runErr = fmt.Errorf("serving: churn lost requests: %d of %d completed", completed, cfg.Requests)
			return
		}
		window := lastDone.Sub(start).Seconds()
		res.AchievedRPS = float64(completed) / window
		res.GoodputRPS = float64(completed-res.Failed) / window
		res.Lat = &sim.LatencyHist{}
		for _, s := range shards {
			res.Lat.Merge(s)
		}
	})
	// Step only until the scenario finishes: agents, the recovery loop,
	// and pending chaos actions would keep the queue alive forever.
	if cfg.Throttle == nil {
		for !done.Done() && cl.Eng.Step() {
		}
	} else {
		for !done.Done() && cl.Eng.Step() {
			cfg.Throttle()
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	if !done.Done() {
		return nil, fmt.Errorf("serving: churn scenario deadlocked (%d live procs)", cl.Eng.LiveProcs())
	}
	res.Crashes = inj.Stats.Get(string(chaos.NodeDown))
	res.Recoveries = cl.MN.Stats.Get("recover.replaced")
	if res.Recoveries > 0 {
		res.RecoverMeanNS = float64(cl.MN.Stats.Get("recover.ns")) / float64(res.Recoveries)
	}
	res.DeadAccesses = cl.Node(1).EP.CRMA.Stats.DeadAccesses
	return res, nil
}
