package serving

import (
	"reflect"
	"testing"

	"repro/internal/tenancy"
)

// The tenancy scenario's contract: the admission plane holds the
// Latency class whole (zero rejected sessions) by making the
// Preemptible class absorb the pressure (preemptions and rejections
// land there), with every offered session accounted exactly once.
func TestTenancyLatencyClassHeldWhole(t *testing.T) {
	res, err := RunTenancy(TenancyConfig{Util: 0.9, Requests: 240, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var offered int
	for _, c := range tenancy.Classes() {
		offered += res.PerClass[c].Offered
	}
	if offered != 240 {
		t.Fatalf("offered across classes = %d, want 240", offered)
	}
	lat := res.PerClass[tenancy.Latency]
	if lat.Offered == 0 {
		t.Fatal("no Latency-class sessions offered; class mix broken")
	}
	if lat.Rejected != 0 {
		t.Fatalf("Latency class lost %d of %d sessions; admission must never reject it here", lat.Rejected, lat.Offered)
	}
	if res.Preemptions == 0 {
		t.Fatal("no preemptions under a saturated pool; the pressure valve never engaged")
	}
	if res.HolderPreemptions == 0 {
		t.Fatal("holders never observed their evictions on the event stream")
	}
	pre := res.PerClass[tenancy.Preemptible]
	if pre.Rejected == 0 {
		t.Fatal("Preemptible class absorbed no rejections despite a saturated class budget")
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Fatalf("Jain fairness = %v, want in (0, 1]", res.Fairness)
	}
	// The point of the class lattice: the Latency class completes a
	// strictly larger fraction of its load than the Preemptible class.
	latRatio := float64(lat.Completed) / float64(lat.Offered)
	preRatio := float64(pre.Completed) / float64(pre.Offered)
	if latRatio <= preRatio {
		t.Fatalf("Latency completion ratio %v <= Preemptible %v; the lattice inverted", latRatio, preRatio)
	}
}

// Same seed, same everything: the scenario must be deterministic.
func TestTenancyDeterministic(t *testing.T) {
	cfg := TenancyConfig{Util: 0.8, Requests: 120, Seed: 7}
	a, err := RunTenancy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTenancy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}
