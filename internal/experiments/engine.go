package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/sim"
)

// The engine-smoke experiment pins the event core's observable
// semantics the way serving-smoke pins the serving stack. Each trial
// drives a seeded workload through a regime the timing wheel must get
// right — same-instant FIFO bursts, all four wheel levels plus the
// beyond-horizon spill list, cancelable watchdogs, and the proc baton
// machinery — and reports exact counters plus an order checksum folded
// over the firing stream. Every value is a pure function of the seed
// and exactly float64-representable, so the cell is gated byte-exactly
// in BENCH_BASELINE.json: a scheduler change that reorders two events,
// fires a canceled one, or drifts the clock trips the gate.

// orderFNV folds the firing stream into a 32-bit FNV-1a checksum.
// 32 bits keep the value exactly representable in the float64 metric
// channel; any reordering of two folded tuples changes it.
type orderFNV uint32

func newOrderFNV() orderFNV { return 2166136261 }

func (h *orderFNV) fold(x uint64) {
	v := uint32(*h)
	for i := 0; i < 64; i += 8 {
		v ^= uint32(x>>i) & 0xff
		v *= 16777619
	}
	*h = orderFNV(v)
}

// engineDelay spreads delays across every wheel regime: same-instant
// ties, the four levels, and the > 2^32 ns spill list. It mirrors
// queueDelay in internal/sim's property tests, but lives on the
// experiment side so the gate does not depend on test internals.
func engineDelay(rng *sim.RNG) sim.Dur {
	switch rng.Intn(8) {
	case 0:
		return 0 // same-instant FIFO tie
	case 1, 2, 3:
		return sim.Dur(rng.Intn(1 << 12)) // levels 0–1 (hot path)
	case 4, 5:
		return sim.Dur(rng.Intn(1 << 20)) // level 2 cascades
	case 6:
		return sim.Dur(rng.Int63n(1 << 30)) // level 3 cascades
	default:
		return sim.Dur(1<<32 + rng.Int63n(1<<33)) // spill list
	}
}

// engineMixTrial exercises raw event scheduling: a population of
// self-rescheduling events spanning every wheel regime, plus a batch of
// cancelable watchdogs with every other one revoked before it can fire.
func engineMixTrial(seed uint64) (harness.Values, error) {
	eng := sim.New()
	rng := sim.NewRNG(seed)
	ord := newOrderFNV()

	// 256 recurring event chains; each fire folds (now, id) so a swap of
	// two same-instant events changes the checksum.
	const chains, budget = 256, 60_000
	scheduled := 0
	for id := uint64(0); id < chains; id++ {
		id := id
		var fn func()
		fn = func() {
			ord.fold(uint64(eng.Now()))
			ord.fold(id)
			if scheduled < budget {
				scheduled++
				eng.Schedule(engineDelay(rng), fn)
			}
		}
		scheduled++
		eng.Schedule(engineDelay(rng), fn)
	}

	// Watchdogs: half are canceled while still queued (tombstones the
	// wheel must skip), the rest fire and fold a distinct marker.
	var survived int
	handles := make([]sim.Handle, 0, 2048)
	for i := 0; i < 2048; i++ {
		handles = append(handles, eng.ScheduleCancelable(engineDelay(rng), func() {
			survived++
			ord.fold(^uint64(0))
			ord.fold(uint64(eng.Now()))
		}))
	}
	canceled := 0
	for i, h := range handles {
		if i%2 == 0 && eng.Cancel(h) {
			canceled++
		}
	}

	eng.Run()
	return harness.Values{
		"fired":     float64(eng.Fired()),
		"canceled":  float64(canceled),
		"survived":  float64(survived),
		"order_fnv": float64(ord),
		"final_ns":  float64(eng.Now()),
	}, nil
}

// engineBurstTrial hammers the FIFO-tie path: rounds of events packed
// onto a handful of shared instants, with some events spawning children
// at their own instant (which must fire after every event already
// queued there), interleaved with RunUntil boundaries that land exactly
// on burst timestamps.
func engineBurstTrial(seed uint64) (harness.Values, error) {
	eng := sim.New()
	rng := sim.NewRNG(seed)
	ord := newOrderFNV()

	var id uint64
	fire := func() func() {
		id++
		my := id
		return func() {
			ord.fold(uint64(eng.Now()))
			ord.fold(my)
		}
	}
	for round := 0; round < 400; round++ {
		// A burst: 4 shared instants, 32 events scattered across them.
		base := eng.Now().Add(sim.Dur(1 + rng.Intn(1<<16)))
		var instants [4]sim.Time
		for i := range instants {
			instants[i] = base.Add(sim.Dur(rng.Intn(4)))
		}
		for i := 0; i < 32; i++ {
			at := instants[rng.Intn(4)]
			fn := fire()
			if rng.Bool(0.25) {
				// Spawn a same-instant child mid-burst: strict FIFO
				// puts it behind everything already queued at `at`.
				child := fire()
				eng.At(at, func() {
					fn()
					eng.Schedule(0, child)
				})
			} else {
				eng.At(at, fn)
			}
		}
		// Stop exactly on a burst instant half the time: the bounded-pop
		// boundary must include events at the bound, exclude later ones.
		if rng.Bool(0.5) {
			eng.RunUntil(instants[rng.Intn(4)])
		} else {
			eng.Run()
		}
	}
	eng.Run()
	return harness.Values{
		"fired":     float64(eng.Fired()),
		"order_fnv": float64(ord),
		"final_ns":  float64(eng.Now()),
	}, nil
}

// engineProcsTrial runs the workload through the process layer instead
// of raw events: producers sleep random delays and push tokens through
// a bounded queue to consumers, all wakeups riding the engine's pooled
// unpark events.
func engineProcsTrial(seed uint64) (harness.Values, error) {
	eng := sim.New()
	defer eng.Close()
	rng := sim.NewRNG(seed)
	ord := newOrderFNV()

	const producers, perProducer = 16, 200
	q := sim.NewBoundedQueue[uint64](eng, 8)
	for i := 0; i < producers; i++ {
		id := uint64(i)
		delays := rng.Fork()
		eng.Go(fmt.Sprintf("prod%d", i), func(p *sim.Proc) {
			for k := 0; k < perProducer; k++ {
				p.Sleep(sim.Dur(delays.Intn(1 << 14)))
				q.Push(p, id<<32|uint64(k))
			}
		})
	}
	eng.Go("consumer", func(p *sim.Proc) {
		for n := 0; n < producers*perProducer; n++ {
			tok := q.Pop(p)
			ord.fold(uint64(eng.Now()))
			ord.fold(tok)
		}
	})

	eng.Run()
	if eng.LiveProcs() != 0 {
		return nil, fmt.Errorf("deadlock: %d procs still live", eng.LiveProcs())
	}
	return harness.Values{
		"fired":     float64(eng.Fired()),
		"order_fnv": float64(ord),
		"final_ns":  float64(eng.Now()),
	}, nil
}

// EngineSmokeCell is one assembled engine-smoke trial.
type EngineSmokeCell struct {
	ID       string
	Fired    uint64
	Canceled uint64
	OrderFNV uint32
	FinalNS  int64
}

// EngineSmokeResult is the assembled engine-smoke artifact.
type EngineSmokeResult struct {
	Cells []EngineSmokeCell
	Table Table
}

// String renders the per-trial table.
func (r *EngineSmokeResult) String() string { return r.Table.String() }

func engineSmokeSpec() harness.Spec {
	trials := []harness.Trial{
		{ID: "wheel-mix", Seed: 0x9e3779b97f4a7c15, Run: engineMixTrial},
		{ID: "fifo-burst", Seed: 0xc2b2ae3d27d4eb4f, Run: engineBurstTrial},
		{ID: "procs", Seed: 0x165667b19e3779f9, Run: engineProcsTrial},
	}
	return harness.Spec{
		Title:  "Engine — event-core determinism smoke (bench-regression CI gate)",
		Trials: trials,
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			res := &EngineSmokeResult{
				Table: Table{
					Title:   "Engine event-core smoke — exact firing-order checksums",
					Columns: []string{"trial", "fired", "canceled", "order fnv32", "final"},
				},
			}
			for _, t := range trials {
				c := EngineSmokeCell{
					ID:       t.ID,
					Fired:    uint64(r.Val(t.ID, "fired")),
					OrderFNV: uint32(r.Val(t.ID, "order_fnv")),
					FinalNS:  int64(r.Val(t.ID, "final_ns")),
				}
				if t.ID == "wheel-mix" {
					c.Canceled = uint64(r.Val(t.ID, "canceled"))
				}
				res.Cells = append(res.Cells, c)
				res.Table.AddRow(c.ID,
					fmt.Sprintf("%d", c.Fired),
					fmt.Sprintf("%d", c.Canceled),
					fmt.Sprintf("%08x", c.OrderFNV),
					sim.Time(c.FinalNS).Sub(sim.Time(0)).String())
			}
			return res, nil
		},
	}
}

// EngineSmoke runs the event-core determinism cell.
func EngineSmoke() *EngineSmokeResult {
	return runSpec("engine-smoke", engineSmokeSpec()).(*EngineSmokeResult)
}
