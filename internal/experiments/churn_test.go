package experiments

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

// churnTestCells picks the matrix by -short, like the other experiment
// tests.
func churnTestCells(t *testing.T) []churnCell {
	if testing.Short() {
		return churnCellsShort()
	}
	return churnCellsFull()
}

// TestChurnFindings asserts the sweep's qualitative findings: the
// control cell is clean, fault rate degrades goodput monotonically, the
// 8-node mesh absorbs churn the 4-node mesh cannot, and recovery is
// hot-plug dominated.
func TestChurnFindings(t *testing.T) {
	r := churnOf(churnTestCells(t))
	for _, c := range r.Cells {
		if c.Hist.N() == 0 {
			t.Fatalf("cell %s recorded no latencies", c.ID)
		}
		if !(c.P50 <= c.P99 && c.P99 <= c.P999) {
			t.Fatalf("cell %s quantiles disordered: %v %v %v", c.ID, c.P50, c.P99, c.P999)
		}
		if c.Fault == "none" {
			if c.Crashes != 0 || c.FailedFrac != 0 || c.UnavailMS != 0 {
				t.Fatalf("control cell %s saw faults: %+v", c.ID, c)
			}
		} else {
			if c.Crashes == 0 || c.Recoveries == 0 {
				t.Fatalf("faulted cell %s shows no recovery activity: %+v", c.ID, c)
			}
			// Recovery latency is hot-plug dominated: ~2ms, under 4ms.
			if c.RecoverMeanNS <= 0 || c.RecoverMeanNS > 4e6 {
				t.Fatalf("cell %s recovery mean %vns out of the hot-plug-dominated range", c.ID, c.RecoverMeanNS)
			}
		}
	}
	// Churn costs goodput; the same fault rate costs the small mesh more.
	quiet, fast4 := r.Cell("churn/distance/n4/none"), r.Cell("churn/distance/n4/fast")
	fast8 := r.Cell("churn/distance/n8/fast")
	if quiet == nil || fast4 == nil || fast8 == nil {
		t.Fatal("churn comparison cells missing from sweep")
	}
	if fast4.GoodputRPS >= quiet.GoodputRPS {
		t.Fatalf("fast churn did not cost goodput: %v faulted vs %v quiet", fast4.GoodputRPS, quiet.GoodputRPS)
	}
	if fast8.GoodputRPS <= fast4.GoodputRPS {
		t.Fatalf("8-node mesh did not absorb churn better: %v vs %v on 4 nodes",
			fast8.GoodputRPS, fast4.GoodputRPS)
	}
	if !testing.Short() {
		slow4 := r.Cell("churn/distance/n4/slow")
		if slow4.GoodputRPS <= fast4.GoodputRPS {
			t.Fatalf("goodput not monotone in fault rate: slow %v <= fast %v",
				slow4.GoodputRPS, fast4.GoodputRPS)
		}
	}
	t.Logf("\n%s", r.Table.String())
}

// TestChurnParallelismByteIdentical is the harness contract applied to
// the churn sweep: seeded chaos schedules and arrival streams survive
// the worker pool, so any -parallel value renders the same bytes. The
// CI race job runs this test under the detector.
func TestChurnParallelismByteIdentical(t *testing.T) {
	cells := append(churnSmokeCells(), churnCellsShort()[1])
	spec := churnSpec("Serving churn — byte-identity subset", cells)
	sequential, _, err := harness.Run("churn-ident", spec, harness.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := harness.Run("churn-ident", spec, harness.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sequential.String() != parallel.String() {
		t.Fatalf("churn renders differently under -parallel 4:\n%s\nvs\n%s", sequential, parallel)
	}
	if !strings.Contains(sequential.String(), "recov mean") {
		t.Fatalf("churn table lost its recovery columns:\n%s", sequential)
	}
}
