package experiments

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/serving"
	"repro/internal/tenancy"
)

// tenancyOf assembles a custom cell list through the harness, like the
// registered specs do.
func tenancyOf(t *testing.T, cells []tenancyCell) *TenancyResult {
	t.Helper()
	res, _, err := harness.Run("tenancy-test", tenancySpec("tenancy test subset", cells), harness.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	return res.(*TenancyResult)
}

// TestTenancyFindings asserts the sweep's qualitative findings — the
// acceptance criteria of the tenancy plane — on a saturated cell: the
// Latency class is held whole (zero lost sessions, low SLO-miss rate)
// while the Preemptible class absorbs the pressure as preemptions and
// rejections.
func TestTenancyFindings(t *testing.T) {
	cells := []tenancyCell{tenancySweepCell(0.9, 240, 2)}
	r := tenancyOf(t, cells)
	c := r.Cell("tenancy/u090")
	if c == nil {
		t.Fatalf("cell missing from %v", r.Cells)
	}
	lat := c.PerClass[tenancy.Latency]
	pre := c.PerClass[tenancy.Preemptible]
	if lat.Offered == 0 || pre.Offered == 0 {
		t.Fatalf("class mix broken: latency %d, preemptible %d offered", lat.Offered, pre.Offered)
	}
	if lat.Rejected != 0 {
		t.Fatalf("Latency class lost %d of %d sessions", lat.Rejected, lat.Offered)
	}
	if rate := lat.SLOMissRate(); rate > 0.1 {
		t.Fatalf("Latency SLO-miss rate %.3f, want held under 0.1", rate)
	}
	if c.Preemptions == 0 {
		t.Fatal("saturated cell recorded no preemptions; the pressure valve never engaged")
	}
	if pre.Rejected == 0 {
		t.Fatal("Preemptible class absorbed no rejections despite saturation")
	}
	if lat.Goodput() <= pre.Goodput() {
		t.Fatalf("class lattice inverted: latency goodput %.3f <= preemptible %.3f",
			lat.Goodput(), pre.Goodput())
	}
	if c.Fairness <= 0 || c.Fairness > 1 {
		t.Fatalf("Jain fairness = %v, want in (0, 1]", c.Fairness)
	}
	for _, cl := range tenancy.Classes() {
		pc := c.PerClass[cl]
		if pc.Completed > 0 && pc.P50 > pc.P99 {
			t.Fatalf("class %s quantiles disordered: %v > %v", cl, pc.P50, pc.P99)
		}
	}
	t.Logf("\n%s", r.Table.String())
}

// TestTenancyParallelismByteIdentical is the harness contract applied
// to the admission-plane sweep: the cluster build, arrival stream,
// class mix, and every preemption decision are seeded, so any
// -parallel value renders the same bytes. The CI byte-identity step
// runs this test.
func TestTenancyParallelismByteIdentical(t *testing.T) {
	cells := append(tenancySmokeCells(), tenancySweepCell(0.6, 120, 2))
	spec := tenancySpec("Serving tenancy — byte-identity subset", cells)
	sequential, _, err := harness.Run("tenancy-ident", spec, harness.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := harness.Run("tenancy-ident", spec, harness.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sequential.String() != parallel.String() {
		t.Fatalf("tenancy renders differently under -parallel 4:\n%s\nvs\n%s", sequential, parallel)
	}
	if !strings.Contains(sequential.String(), "fairness") {
		t.Fatalf("tenancy table lost its fairness column:\n%s", sequential)
	}
}

// TestTenancySmokeShape pins the smoke cell's shape: the CI gate
// regenerates exactly this spec, so its trial list must stay stable.
func TestTenancySmokeShape(t *testing.T) {
	spec := tenancySmokeSpec()
	if len(spec.Trials) != 1 {
		t.Fatalf("smoke spec has %d trials, want 1", len(spec.Trials))
	}
	if got := spec.Trials[0].ID; got != "tenancy-smoke/u90/s0" {
		t.Fatalf("smoke trial id %q drifted", got)
	}
	if spec.Trials[0].Seed != tenancyShardSeed {
		t.Fatalf("smoke trial seed %d drifted from %d", spec.Trials[0].Seed, tenancyShardSeed)
	}
	var _ serving.TenancyConfig = tenancySmokeCells()[0].Cfg
}
