package experiments

import "testing"

// Fig. 14 is the longest experiment (a full mini data-center sweep), so
// its assertions live in their own test.
func TestFig14MemorySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fig14 sweep is slow")
	}
	r := Fig14()
	n := len(r.Sizes)
	if n < 3 {
		t.Fatalf("sweep too short: %d points", n)
	}
	// Execution time falls monotonically with memory, substantially
	// overall (paper: 15.7x from 70 MB to 350 MB).
	for i := 1; i < n; i++ {
		if r.LocalTime[i] >= r.LocalTime[i-1] || r.RemoteTime[i] >= r.RemoteTime[i-1] {
			t.Fatalf("times not monotone: local=%v remote=%v", r.LocalTime, r.RemoteTime)
		}
	}
	speedup := float64(r.RemoteTime[0]) / float64(r.RemoteTime[n-1])
	if speedup < 4 {
		t.Fatalf("sweep speedup %.1fx, want several-fold (paper 15.7x)", speedup)
	}
	// Miss rate falls to near the paper's ~5%.
	if r.RemoteMiss[n-1] > 0.12 {
		t.Fatalf("final miss rate %.1f%%, want <12%%", r.RemoteMiss[n-1]*100)
	}
	if r.RemoteMiss[0] < 0.5 {
		t.Fatalf("initial miss rate %.1f%% too low to show the sweep", r.RemoteMiss[0]*100)
	}
	// Remote and local memory perform nearly identically ("very slight
	// difference"): within 5% at every point.
	for i := range r.Sizes {
		ratio := float64(r.RemoteTime[i]) / float64(r.LocalTime[i])
		if ratio > 1.05 || ratio < 0.95 {
			t.Fatalf("point %d: remote/local = %.3f, want ~1", i, ratio)
		}
	}
	// Donor impact is negligible (paper: "negligible").
	if r.DonorImpact > 5 {
		t.Fatalf("donor CC impact %.1f%%, paper reports negligible", r.DonorImpact)
	}
	t.Logf("\n%s", r.Table.String())
}
