package experiments

import (
	"repro/internal/commodity"
	"repro/internal/harness"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Fig3Result reproduces Fig. 3: remote memory efficiency with commodity
// interconnects (BerkeleyDB, 6 GB array scaled, 4 GB local scaled,
// 80/20 read-write, random), normalized to using all local memory.
type Fig3Result struct {
	Configs    []string
	Normalized []float64
	Table      Table
}

// fig3Dataset sizes the scaled experiment: dataset D with 2/3 D of local
// memory, mirroring the paper's 6 GB array on a 4 GB node.
func fig3Dataset() (datasetBytes, localBytes uint64) {
	// index + records for bdbKeysFig3 keys.
	per := uint64(bdbRecordSize + 2*entryBytesScaled)
	d := uint64(bdbKeysFig3) * per
	return d, d * 2 / 3
}

// entryBytesScaled mirrors workloads' index entry size for sizing math.
const entryBytesScaled = 16

// fig3Run measures one configuration's OLTP time.
//
// The swap configurations put the whole dataset behind the OS paging
// path with 2/3 of it resident (the kernel page-caches the device). The
// PCIe LD/ST configuration maps the whole dataset through an uncached
// PIO window — the commodity chip gives it no local caching at all,
// which is exactly why the paper calls its result crippling.
func fig3Run(config string, seed uint64) sim.Dur {
	p := sim.Default()
	rig := newPair(&p, seed)
	defer rig.close()

	dataset, local := fig3Dataset()
	base := rig.Local.NextHotplugWindow(dataset + (64 << 20))

	var arena *workloads.Arena
	switch config {
	case "all-local":
		arena = workloads.NewArena(0, dataset+(64<<20))
	case "pcie-ldst":
		dev := commodity.NewPCIeLDST(&p)
		mustAdd(rig, &memsys.Region{Base: base, Size: dataset + (64 << 20),
			Backend: dev, Uncached: true})
		arena = workloads.NewArena(base, dataset+(64<<20))
	default:
		var dev memsys.BlockDevice
		switch config {
		case "10gbe":
			dev = commodity.EthernetVDisk(&p)
		case "ib-srp":
			dev = commodity.InfiniBandSRP(&p)
		case "pcie-rdma":
			dev = commodity.PCIeRDMA(&p)
		}
		paged := memsys.NewPaged(&p, int(local)/p.PageBytes, dev)
		mustAdd(rig, &memsys.Region{Base: base, Size: dataset + (64 << 20), Backend: paged})
		arena = workloads.NewArena(base, dataset+(64<<20))
	}

	var elapsed sim.Dur
	rig.run("fig3-"+config, func(pr *sim.Proc) {
		idxArena := arena
		kv := workloads.BuildBTree(pr, rig.Local.Mem, idxArena, arena,
			bdbKeysFig3, bdbRecordSize, bdbFanout)
		rng := sim.NewRNG(77)
		kv.OLTPMix(pr, rng, 40) // warm the resident set / cache
		t0 := pr.Now()
		kv.OLTPMix(pr, rng, bdbTxnsFig3)
		rig.Local.Mem.Flush(pr)
		elapsed = pr.Now().Sub(t0)
	})
	return elapsed
}

func mustAdd(rig *pairRig, r *memsys.Region) {
	if err := rig.Local.Mem.AS.Add(r); err != nil {
		panic(err)
	}
}

// fig3Configs are the four remote configurations of the study.
var fig3Configs = []string{"10gbe", "ib-srp", "pcie-rdma", "pcie-ldst"}

// fig3Seed keeps every cell on the rig stream the sequential code used.
const fig3Seed = 33

// fig3Spec decomposes the figure into one trial per configuration plus
// the all-local baseline.
func fig3Spec() harness.Spec {
	trials := []harness.Trial{{
		ID: "all-local", Seed: fig3Seed,
		Run: durTrial(func(seed uint64) sim.Dur { return fig3Run("all-local", seed) }),
	}}
	for _, c := range fig3Configs {
		trials = append(trials, harness.Trial{
			ID: c, Seed: fig3Seed,
			Run: durTrial(func(seed uint64) sim.Dur { return fig3Run(c, seed) }),
		})
	}
	return harness.Spec{
		Title:    "Fig. 3 — remote memory over commodity interconnects",
		Trials:   trials,
		Assemble: assembleFig3,
	}
}

// assembleFig3 normalizes each configuration to the all-local baseline.
func assembleFig3(r *harness.Result) (harness.Artifact, error) {
	baseline := trialDur(r, "all-local")
	res := &Fig3Result{
		Configs: fig3Configs,
		Table: Table{
			Title:   "Fig. 3 — remote memory over commodity interconnects (exec time / all-local)",
			Columns: []string{"config", "normalized", "paper"},
		},
	}
	paper := map[string]string{"10gbe": "42", "ib-srp": "19", "pcie-rdma": "12", "pcie-ldst": "191"}
	for _, c := range fig3Configs {
		n := float64(trialDur(r, c)) / float64(baseline)
		res.Normalized = append(res.Normalized, n)
		res.Table.AddRow(c, f1(n), paper[c])
	}
	return res, nil
}

// String renders the figure's table.
func (r *Fig3Result) String() string { return r.Table.String() }

// Fig3 runs all five configurations and normalizes to all-local.
func Fig3() *Fig3Result { return runSpec("fig3", fig3Spec()).(*Fig3Result) }
