package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/tenancy"
)

// The serving-tenancy experiment family measures the admission plane
// under a class-mixed, flash-crowd session load: thousands of tenant
// identities in three SLO classes compete for an oversubscribed lease
// pool, and the sweep reports — per class — goodput, tail latency, and
// SLO-miss rate, alongside the preemption traffic that keeps the
// Latency class whole. Cells sweep offered load; shards vary only the
// arrival/class-mix seed, so shard histograms merge exactly and any
// -parallel renders identical bytes.

// tenancyCell is one cell of the sweep.
type tenancyCell struct {
	ID     string
	Cfg    serving.TenancyConfig
	Shards int
}

const (
	tenancyShardSeed     = 9300
	tenancyRequests      = 400
	tenancySmokeRequests = 240
)

// tenancySweepCell builds one load cell.
func tenancySweepCell(util float64, requests, shards int) tenancyCell {
	return tenancyCell{
		ID:     fmt.Sprintf("tenancy/u%03.0f", util*100),
		Cfg:    serving.TenancyConfig{Util: util, Requests: requests},
		Shards: shards,
	}
}

// tenancyCellsFull is the registered sweep: below saturation the plane
// barely intervenes; at and past saturation the preemption and queue
// paths carry the Latency class through.
func tenancyCellsFull() []tenancyCell {
	return []tenancyCell{
		tenancySweepCell(0.5, tenancyRequests, 1),
		tenancySweepCell(0.8, tenancyRequests, 2),
		tenancySweepCell(1.1, tenancyRequests, 2),
	}
}

// tenancySmokeCells is the pinned single-cell subset the
// bench-regression CI gate regenerates on every push — the saturated
// operating point, so the gate exercises queueing and preemption, not
// just admission bookkeeping.
func tenancySmokeCells() []tenancyCell {
	c := tenancySweepCell(0.9, tenancySmokeRequests, 1)
	c.ID = "tenancy-smoke/u90"
	return []tenancyCell{c}
}

// tenancyTrial adapts one shard of one cell into a harness trial body.
// Per-class metrics are exported under a class-name prefix
// ("latency_offered", "standard_lat_b042", ...).
func tenancyTrial(cfg serving.TenancyConfig) func(uint64) (harness.Values, error) {
	return func(seed uint64) (harness.Values, error) {
		c := cfg
		c.Seed = seed
		r, err := serving.RunTenancy(c)
		if err != nil {
			return nil, err
		}
		v := harness.Values{
			"svc_ns":          r.ServiceNS,
			"offered_rps":     r.OfferedRPS,
			"requests":        float64(cfg.Requests),
			"preemptions":     float64(r.Preemptions),
			"degrades":        float64(r.Degrades),
			"queue_admits":    float64(r.QueueAdmits),
			"holder_acquires": float64(r.HolderAcquires),
			"holder_preempts": float64(r.HolderPreemptions),
		}
		for _, cl := range tenancy.Classes() {
			cs, pfx := r.PerClass[cl], cl.String()
			v[pfx+"_offered"] = float64(cs.Offered)
			v[pfx+"_completed"] = float64(cs.Completed)
			v[pfx+"_rejected"] = float64(cs.Rejected)
			v[pfx+"_slo_miss"] = float64(cs.SLOMiss)
			v[pfx+"_deadline_ns"] = float64(cs.Deadline)
			v[pfx+"_lat_sum"] = float64(cs.Lat.Sum())
			v[pfx+"_lat_min"] = float64(cs.Lat.Min())
			v[pfx+"_lat_max"] = float64(cs.Lat.Max())
			for _, b := range cs.Lat.Buckets() {
				v[fmt.Sprintf("%s_lat_b%03d", pfx, b.Index)] = float64(b.Count)
			}
		}
		return v, nil
	}
}

// tenancyHist rebuilds one class's latency histogram from a shard
// trial's exported values (servingHist's class-prefixed sibling: the
// serving helper only knows the bare "lat_b" key family).
func tenancyHist(r *harness.Result, trial, class string) (*sim.LatencyHist, error) {
	var vals harness.Values
	for i := range r.Trials {
		if r.Trials[i].Trial == trial {
			vals = r.Trials[i].Values
		}
	}
	if vals == nil {
		return nil, fmt.Errorf("experiments: tenancy trial %q missing from results", trial)
	}
	prefix := class + "_lat_b"
	var buckets []sim.LatencyBucket
	for k, v := range vals {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		idx, err := strconv.Atoi(k[len(prefix):])
		if err != nil {
			return nil, fmt.Errorf("experiments: bad bucket key %q: %w", k, err)
		}
		buckets = append(buckets, sim.LatencyBucket{Index: idx, Count: int64(v)})
	}
	return sim.RestoreLatencyHist(int64(vals[class+"_lat_sum"]), int64(vals[class+"_lat_min"]),
		int64(vals[class+"_lat_max"]), buckets), nil
}

// tenancySpec decomposes a cell list into shard trials.
func tenancySpec(title string, cells []tenancyCell) harness.Spec {
	var trials []harness.Trial
	for _, cell := range cells {
		for s := 0; s < cell.Shards; s++ {
			trials = append(trials, harness.Trial{
				ID:   fmt.Sprintf("%s/s%d", cell.ID, s),
				Seed: tenancyShardSeed + uint64(s),
				Run:  tenancyTrial(cell.Cfg),
			})
		}
	}
	return harness.Spec{
		Title:  title,
		Trials: trials,
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			return assembleTenancy(r, cells)
		},
	}
}

// TenancyClassResult is one class's merged ledger within a cell.
type TenancyClassResult struct {
	Class     tenancy.Class
	Offered   int64
	Completed int64
	Rejected  int64
	SLOMiss   int64
	P50       sim.Dur
	P99       sim.Dur
	Hist      *sim.LatencyHist
}

// Goodput is the fraction of offered sessions that completed.
func (c TenancyClassResult) Goodput() float64 {
	if c.Offered == 0 {
		return 0
	}
	return float64(c.Completed) / float64(c.Offered)
}

// SLOMissRate is the fraction of completed sessions past deadline.
func (c TenancyClassResult) SLOMissRate() float64 {
	if c.Completed == 0 {
		return 0
	}
	return float64(c.SLOMiss) / float64(c.Completed)
}

// TenancyCellResult is one assembled sweep cell.
type TenancyCellResult struct {
	ID          string
	OfferedRPS  float64
	ServiceNS   float64
	Preemptions int64
	Degrades    int64
	QueueAdmits int64
	// Fairness is the Jain index over the shard-merged per-class
	// completion ratios.
	Fairness float64
	PerClass [tenancy.NumClasses]TenancyClassResult
}

// TenancyResult is the assembled sweep.
type TenancyResult struct {
	Cells []TenancyCellResult
	Table Table
}

// Cell returns a cell by id, or nil.
func (r *TenancyResult) Cell(id string) *TenancyCellResult {
	for i := range r.Cells {
		if r.Cells[i].ID == id {
			return &r.Cells[i]
		}
	}
	return nil
}

// String renders the sweep table.
func (r *TenancyResult) String() string { return r.Table.String() }

// assembleTenancy merges each cell's shard ledgers per class and folds
// the admission-plane counters.
func assembleTenancy(r *harness.Result, cells []tenancyCell) (harness.Artifact, error) {
	res := &TenancyResult{
		Table: Table{
			Title: "Serving tenancy — SLO classes under flash-crowd admission (open-loop)",
			Columns: []string{"cell", "class", "offered", "goodput",
				"slo-miss", "p50", "p99", "preempts", "fairness"},
		},
	}
	for _, cell := range cells {
		c := TenancyCellResult{ID: cell.ID}
		for s := 0; s < cell.Shards; s++ {
			trial := fmt.Sprintf("%s/s%d", cell.ID, s)
			c.Preemptions += int64(r.Val(trial, "preemptions"))
			c.Degrades += int64(r.Val(trial, "degrades"))
			c.QueueAdmits += int64(r.Val(trial, "queue_admits"))
			for _, cl := range tenancy.Classes() {
				h, err := tenancyHist(r, trial, cl.String())
				if err != nil {
					return nil, err
				}
				pc := &c.PerClass[cl]
				pc.Class = cl
				if pc.Hist == nil {
					pc.Hist = &sim.LatencyHist{}
				}
				pc.Hist.Merge(h)
				pfx := cl.String()
				pc.Offered += int64(r.Val(trial, pfx+"_offered"))
				pc.Completed += int64(r.Val(trial, pfx+"_completed"))
				pc.Rejected += int64(r.Val(trial, pfx+"_rejected"))
				pc.SLOMiss += int64(r.Val(trial, pfx+"_slo_miss"))
			}
		}
		s0 := fmt.Sprintf("%s/s0", cell.ID)
		c.OfferedRPS = r.Val(s0, "offered_rps")
		c.ServiceNS = r.Val(s0, "svc_ns")
		var ratios []float64
		for _, cl := range tenancy.Classes() {
			pc := &c.PerClass[cl]
			pc.P50 = sim.Dur(pc.Hist.Quantile(50))
			pc.P99 = sim.Dur(pc.Hist.Quantile(99))
			if pc.Offered > 0 {
				ratios = append(ratios, pc.Goodput())
			}
		}
		c.Fairness = tenancy.Jain(ratios)
		res.Cells = append(res.Cells, c)
		for i, cl := range tenancy.Classes() {
			pc := c.PerClass[cl]
			id, preempts, fair := "", "", ""
			if i == 0 { // cell-level columns only on the first class row
				id = c.ID
				preempts = fmt.Sprintf("%d", c.Preemptions)
				fair = fmt.Sprintf("%.3f", c.Fairness)
			}
			res.Table.AddRow(id, cl.String(),
				fmt.Sprintf("%d", pc.Offered),
				fmt.Sprintf("%.3f", pc.Goodput()),
				fmt.Sprintf("%.3f", pc.SLOMissRate()),
				pc.P50.String(), pc.P99.String(), preempts, fair)
		}
	}
	return res, nil
}

// tenancySweepSpec builds the registered full sweep.
func tenancySweepSpec() harness.Spec {
	return tenancySpec("Serving tenancy — SLO classes × offered load", tenancyCellsFull())
}

// tenancySmokeSpec builds the registered CI-gate subset.
func tenancySmokeSpec() harness.Spec {
	return tenancySpec("Serving tenancy — smoke cell (bench-regression CI gate)", tenancySmokeCells())
}

// ServingTenancy runs the full admission-plane serving sweep.
func ServingTenancy() *TenancyResult {
	return runSpec("serving-tenancy", tenancySweepSpec()).(*TenancyResult)
}

// TenancySmoke runs the single-cell CI subset.
func TenancySmoke() *TenancyResult {
	return runSpec("tenancy-smoke", tenancySmokeSpec()).(*TenancyResult)
}
