package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workloads"
)

// Ablations sweep the design choices DESIGN.md calls out: how much each
// mechanism contributes to the headline results. They are exploratory
// (the paper does not report them) but use only the paper's machinery.

// Seeds for the four ablations' rig streams, unchanged from the
// sequential code.
const (
	ablationSeedMSHR        = 91
	ablationSeedReadahead   = 92
	ablationSeedWindow      = 93
	ablationSeedGranularity = 94
)

// ablationMSHRs is the full MSHR sweep; ablationMSHRsShort the reduced
// short-mode matrix (keeps the blocking core, modest MLP, and the top).
var (
	ablationMSHRs      = []int{1, 2, 4, 8, 16}
	ablationMSHRsShort = []int{1, 4, 16}
)

// AblationMSHRResult sweeps the core's outstanding-miss budget: how much
// memory-level parallelism CRMA streaming needs before contiguous access
// stops being the channel's weakness (the Fig. 15/17 inversion).
type AblationMSHRResult struct {
	MSHRs []int
	Times []sim.Dur
	Table Table
}

// ablationMSHRRun measures a streaming grep over a CRMA window (4 KiB
// multi-line reads, the MSHR-sensitive shape) with one MSHR count.
func ablationMSHRRun(mshrs int, seed uint64) sim.Dur {
	p := sim.Default()
	p.MSHRs = mshrs
	rig := newPair(&p, seed)
	defer rig.close()
	const size = 8 << 20
	var elapsed sim.Dur
	rig.run("grep", func(pr *sim.Proc) {
		win := mountWindow(rig, size+(1<<20))
		pattern := []byte("venice")
		text := workloads.SynthText(sim.NewRNG(9), size, pattern, 8192)
		t0 := pr.Now()
		workloads.Grep(pr, rig.Local.Mem, win, text, pattern)
		rig.Local.Mem.Flush(pr)
		elapsed = pr.Now().Sub(t0)
	})
	return elapsed
}

// ablationMSHRSpec decomposes the sweep into one trial per MSHR count.
// The matrix must include the blocking core (mshr=1): it is the
// table's normalization baseline.
func ablationMSHRSpec(mshrs []int) harness.Spec {
	if len(mshrs) == 0 || mshrs[0] != 1 {
		panic("ablation-mshr: matrix must start at the mshr=1 baseline")
	}
	var trials []harness.Trial
	for _, m := range mshrs {
		trials = append(trials, harness.Trial{
			ID: fmt.Sprintf("mshr/%d", m), Seed: ablationSeedMSHR,
			Run: durTrial(func(seed uint64) sim.Dur { return ablationMSHRRun(m, seed) }),
		})
	}
	return harness.Spec{
		Title:  "Ablation — MSHRs vs streaming access over CRMA",
		Trials: trials,
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			res := &AblationMSHRResult{
				MSHRs: mshrs,
				Table: Table{
					Title:   "Ablation — MSHRs vs streaming access over CRMA (grep)",
					Columns: []string{"mshrs", "time", "vs mshr=1"},
				},
			}
			var base sim.Dur
			for _, m := range mshrs {
				elapsed := trialDur(r, fmt.Sprintf("mshr/%d", m))
				res.Times = append(res.Times, elapsed)
				if m == 1 {
					base = elapsed
				}
				res.Table.AddRow(fmt.Sprintf("%d", m), elapsed.String(),
					fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
			}
			return res, nil
		},
	}
}

// String renders the ablation's table.
func (r *AblationMSHRResult) String() string { return r.Table.String() }

// AblationMSHR sweeps the full MSHR matrix.
func AblationMSHR() *AblationMSHRResult { return AblationMSHROf(ablationMSHRs...) }

// AblationMSHROf sweeps a subset of MSHR counts (the short-mode matrix).
func AblationMSHROf(mshrs ...int) *AblationMSHRResult {
	return runSpec("ablation-mshr", ablationMSHRSpec(mshrs)).(*AblationMSHRResult)
}

// AblationReadaheadResult sweeps the swap readahead window for a
// streaming workload over the remote-swap device.
type AblationReadaheadResult struct {
	Pages []int
	Times []sim.Dur
	Table Table
}

// ablationReadaheadPages is the readahead sweep.
var ablationReadaheadPages = []int{1, 4, 16, 64}

// ablationReadaheadRun measures grep over RDMA swap with one readahead
// window.
func ablationReadaheadRun(ra int, seed uint64) sim.Dur {
	p := sim.Default()
	p.ReadaheadPages = ra
	rig := newPair(&p, seed)
	defer rig.close()
	const size = 8 << 20
	baseAddr := fig15Region(rig, modeRDMASwap, size+(64<<10))
	var elapsed sim.Dur
	rig.run("grep", func(pr *sim.Proc) {
		pattern := []byte("venice")
		text := workloads.SynthText(sim.NewRNG(9), size, pattern, 8192)
		initRegion(pr, rig, baseAddr, size+(64<<10))
		t0 := pr.Now()
		workloads.Grep(pr, rig.Local.Mem, baseAddr, text, pattern)
		rig.Local.Mem.Flush(pr)
		elapsed = pr.Now().Sub(t0)
	})
	return elapsed
}

// ablationReadaheadSpec decomposes the sweep into one trial per window.
func ablationReadaheadSpec() harness.Spec {
	var trials []harness.Trial
	for _, ra := range ablationReadaheadPages {
		trials = append(trials, harness.Trial{
			ID: fmt.Sprintf("ra/%d", ra), Seed: ablationSeedReadahead,
			Run: durTrial(func(seed uint64) sim.Dur { return ablationReadaheadRun(ra, seed) }),
		})
	}
	return harness.Spec{
		Title:  "Ablation — swap readahead vs streaming grep",
		Trials: trials,
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			res := &AblationReadaheadResult{
				Pages: ablationReadaheadPages,
				Table: Table{
					Title:   "Ablation — swap readahead vs streaming grep over remote swap",
					Columns: []string{"readahead", "time", "vs 1 page"},
				},
			}
			var base sim.Dur
			for _, ra := range ablationReadaheadPages {
				elapsed := trialDur(r, fmt.Sprintf("ra/%d", ra))
				res.Times = append(res.Times, elapsed)
				if ra == 1 {
					base = elapsed
				}
				res.Table.AddRow(fmt.Sprintf("%d", ra), elapsed.String(),
					fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
			}
			return res, nil
		},
	}
}

// String renders the ablation's table.
func (r *AblationReadaheadResult) String() string { return r.Table.String() }

// AblationReadahead measures grep over RDMA swap with varying readahead.
func AblationReadahead() *AblationReadaheadResult {
	return runSpec("ablation-readahead", ablationReadaheadSpec()).(*AblationReadaheadResult)
}

// AblationWindowResult sweeps the QPair credit window under both credit
// paths: how much window the collaborative design saves.
type AblationWindowResult struct {
	Windows   []int
	QPairMBps []float64
	CRMAMBps  []float64
	Table     Table
}

// ablationWindows is the credit-window sweep.
var ablationWindows = []int{4, 8, 16, 32, 64}

// ablationWindowRun measures a 64 B stream at one window size under one
// credit path.
func ablationWindowRun(window int, viaCRMA bool, seed uint64) float64 {
	p := sim.Default()
	rig := newPair(&p, seed)
	defer rig.close()
	cfg := transport.QPairConfig{Window: window, CreditBatch: window / 4, CreditViaCRMA: viaCRMA}
	qa, qb := transport.ConnectQPair(rig.Local.EP, rig.Donor.EP, cfg)
	const count = 2000
	var done sim.Time
	rig.Eng.Go("sink", func(pr *sim.Proc) {
		for i := 0; i < count; i++ {
			qb.RecvHW(pr)
		}
		done = pr.Now()
	})
	rig.run("stream", func(pr *sim.Proc) {
		for i := 0; i < count; i++ {
			qa.SendHW(pr, 64, nil)
		}
	})
	return float64(count) * 64 / 1e6 / sim.Dur(done).Seconds()
}

// ablationWindowSpec decomposes the sweep into one trial per window ×
// credit path.
func ablationWindowSpec() harness.Spec {
	var trials []harness.Trial
	for _, w := range ablationWindows {
		for _, path := range []struct {
			name    string
			viaCRMA bool
		}{{"qpair", false}, {"crma", true}} {
			trials = append(trials, harness.Trial{
				ID: fmt.Sprintf("win%d/%s", w, path.name), Seed: ablationSeedWindow,
				Run: func(seed uint64) (harness.Values, error) {
					return harness.Values{"mbps": ablationWindowRun(w, path.viaCRMA, seed)}, nil
				},
			})
		}
	}
	return harness.Spec{
		Title:  "Ablation — credit window vs stream bandwidth",
		Trials: trials,
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			res := &AblationWindowResult{
				Windows: ablationWindows,
				Table: Table{
					Title:   "Ablation — credit window vs 64B stream bandwidth for both credit paths",
					Columns: []string{"window", "qpair-credits MB/s", "crma-credits MB/s", "gain"},
				},
			}
			for _, w := range ablationWindows {
				qp := r.Val(fmt.Sprintf("win%d/qpair", w), "mbps")
				cr := r.Val(fmt.Sprintf("win%d/crma", w), "mbps")
				res.QPairMBps = append(res.QPairMBps, qp)
				res.CRMAMBps = append(res.CRMAMBps, cr)
				res.Table.AddRow(fmt.Sprintf("%d", w), f2(qp), f2(cr), pct(100*(cr-qp)/qp))
			}
			return res, nil
		},
	}
}

// String renders the ablation's table.
func (r *AblationWindowResult) String() string { return r.Table.String() }

// AblationWindow measures a 64 B stream at several window sizes.
func AblationWindow() *AblationWindowResult {
	return runSpec("ablation-window", ablationWindowSpec()).(*AblationWindowResult)
}

// AblationGranularityResult finds the CRMA/RDMA crossover by transfer
// size — the data behind the adaptive library's Advise threshold.
type AblationGranularityResult struct {
	Sizes []int
	CRMA  []sim.Dur
	RDMA  []sim.Dur
	Table Table
}

// ablationGranularitySizes is the transfer-size sweep.
var ablationGranularitySizes = []int{64, 256, 1024, 4096, 16384, 65536}

// ablationGranularitySpec runs the whole sweep as one trial: every size
// is measured on the same warmed rig, so splitting would change the
// measured values.
func ablationGranularitySpec() harness.Spec {
	trial := harness.Trial{
		ID: "sweep", Seed: ablationSeedGranularity,
		Run: func(seed uint64) (harness.Values, error) {
			p := sim.Default()
			rig := newPair(&p, seed)
			defer rig.close()
			win := rig.Local.NextHotplugWindow(1 << 20)
			if _, err := rig.Local.EP.CRMA.Map(win, 1<<20, 1, 0x1000_0000); err != nil {
				return nil, err
			}
			rig.Donor.EP.CRMA.Export(0, win, 1<<20, 0x1000_0000)
			v := harness.Values{}
			rig.run("sweep", func(pr *sim.Proc) {
				for _, size := range ablationGranularitySizes {
					t0 := pr.Now()
					// CRMA moves data line by line (hardware fills,
					// MSHR-limited).
					for off := 0; off < size; off += p.CacheLine {
						rig.Local.EP.CRMA.Fill(pr, win+uint64(off), p.CacheLine)
					}
					v[fmt.Sprintf("crma/%d", size)] = float64(pr.Now().Sub(t0))
					t1 := pr.Now()
					rig.Local.EP.RDMA.Read(pr, 1, 0x1000_0000, size)
					v[fmt.Sprintf("rdma/%d", size)] = float64(pr.Now().Sub(t1))
				}
			})
			return v, nil
		},
	}
	return harness.Spec{
		Title:  "Ablation — transfer size vs channel latency",
		Trials: []harness.Trial{trial},
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			res := &AblationGranularityResult{
				Sizes: ablationGranularitySizes,
				Table: Table{
					Title:   "Ablation — transfer size vs channel latency (the Advise crossover)",
					Columns: []string{"size", "crma", "rdma", "winner"},
				},
			}
			for _, size := range ablationGranularitySizes {
				crma := sim.Dur(int64(r.Val("sweep", fmt.Sprintf("crma/%d", size))))
				rdma := sim.Dur(int64(r.Val("sweep", fmt.Sprintf("rdma/%d", size))))
				res.CRMA = append(res.CRMA, crma)
				res.RDMA = append(res.RDMA, rdma)
				winner := "CRMA"
				if rdma < crma {
					winner = "RDMA"
				}
				res.Table.AddRow(fmt.Sprintf("%dB", size), crma.String(), rdma.String(), winner)
			}
			return res, nil
		},
	}
}

// String renders the ablation's table.
func (r *AblationGranularityResult) String() string { return r.Table.String() }

// AblationGranularity measures a single remote transfer of each size
// over both data channels.
func AblationGranularity() *AblationGranularityResult {
	return runSpec("ablation-granularity", ablationGranularitySpec()).(*AblationGranularityResult)
}
