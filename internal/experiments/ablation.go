package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workloads"
)

// Ablations sweep the design choices DESIGN.md calls out: how much each
// mechanism contributes to the headline results. They are exploratory
// (the paper does not report them) but use only the paper's machinery.

// AblationMSHRResult sweeps the core's outstanding-miss budget: how much
// memory-level parallelism CRMA streaming needs before contiguous access
// stops being the channel's weakness (the Fig. 15/17 inversion).
type AblationMSHRResult struct {
	MSHRs []int
	Times []sim.Dur
	Table Table
}

// AblationMSHR measures a streaming grep over a CRMA window (4 KiB
// multi-line reads, the MSHR-sensitive shape) with varying MSHR counts.
func AblationMSHR() *AblationMSHRResult {
	res := &AblationMSHRResult{
		MSHRs: []int{1, 2, 4, 8, 16},
		Table: Table{
			Title:   "Ablation — MSHRs vs streaming access over CRMA (grep)",
			Columns: []string{"mshrs", "time", "vs mshr=1"},
		},
	}
	var base sim.Dur
	for _, m := range res.MSHRs {
		p := sim.Default()
		p.MSHRs = m
		rig := newPair(&p, 91)
		const size = 8 << 20
		var elapsed sim.Dur
		rig.run("grep", func(pr *sim.Proc) {
			win := mountWindow(rig, size+(1<<20))
			pattern := []byte("venice")
			text := workloads.SynthText(sim.NewRNG(9), size, pattern, 8192)
			t0 := pr.Now()
			workloads.Grep(pr, rig.Local.Mem, win, text, pattern)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
		rig.close()
		res.Times = append(res.Times, elapsed)
		if m == 1 {
			base = elapsed
		}
		res.Table.AddRow(fmt.Sprintf("%d", m), elapsed.String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
	}
	return res
}

// AblationReadaheadResult sweeps the swap readahead window for a
// streaming workload over the remote-swap device.
type AblationReadaheadResult struct {
	Pages []int
	Times []sim.Dur
	Table Table
}

// AblationReadahead measures grep over RDMA swap with varying readahead.
func AblationReadahead() *AblationReadaheadResult {
	res := &AblationReadaheadResult{
		Pages: []int{1, 4, 16, 64},
		Table: Table{
			Title:   "Ablation — swap readahead vs streaming grep over remote swap",
			Columns: []string{"readahead", "time", "vs 1 page"},
		},
	}
	var base sim.Dur
	for _, ra := range res.Pages {
		p := sim.Default()
		p.ReadaheadPages = ra
		rig := newPair(&p, 92)
		const size = 8 << 20
		baseAddr := fig15Region(rig, modeRDMASwap, size+(64<<10))
		var elapsed sim.Dur
		rig.run("grep", func(pr *sim.Proc) {
			pattern := []byte("venice")
			text := workloads.SynthText(sim.NewRNG(9), size, pattern, 8192)
			initRegion(pr, rig, baseAddr, size+(64<<10))
			t0 := pr.Now()
			workloads.Grep(pr, rig.Local.Mem, baseAddr, text, pattern)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
		rig.close()
		res.Times = append(res.Times, elapsed)
		if ra == 1 {
			base = elapsed
		}
		res.Table.AddRow(fmt.Sprintf("%d", ra), elapsed.String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)))
	}
	return res
}

// AblationWindowResult sweeps the QPair credit window under both credit
// paths: how much window the collaborative design saves.
type AblationWindowResult struct {
	Windows   []int
	QPairMBps []float64
	CRMAMBps  []float64
	Table     Table
}

// AblationWindow measures a 64 B stream at several window sizes.
func AblationWindow() *AblationWindowResult {
	res := &AblationWindowResult{
		Windows: []int{4, 8, 16, 32, 64},
		Table: Table{
			Title:   "Ablation — credit window vs 64B stream bandwidth for both credit paths",
			Columns: []string{"window", "qpair-credits MB/s", "crma-credits MB/s", "gain"},
		},
	}
	run := func(window int, viaCRMA bool) float64 {
		p := sim.Default()
		rig := newPair(&p, 93)
		defer rig.close()
		cfg := transport.QPairConfig{Window: window, CreditBatch: window / 4, CreditViaCRMA: viaCRMA}
		qa, qb := transport.ConnectQPair(rig.Local.EP, rig.Donor.EP, cfg)
		const count = 2000
		var done sim.Time
		rig.Eng.Go("sink", func(pr *sim.Proc) {
			for i := 0; i < count; i++ {
				qb.RecvHW(pr)
			}
			done = pr.Now()
		})
		rig.run("stream", func(pr *sim.Proc) {
			for i := 0; i < count; i++ {
				qa.SendHW(pr, 64, nil)
			}
		})
		return float64(count) * 64 / 1e6 / sim.Dur(done).Seconds()
	}
	for _, w := range res.Windows {
		qp := run(w, false)
		cr := run(w, true)
		res.QPairMBps = append(res.QPairMBps, qp)
		res.CRMAMBps = append(res.CRMAMBps, cr)
		res.Table.AddRow(fmt.Sprintf("%d", w), f2(qp), f2(cr), pct(100*(cr-qp)/qp))
	}
	return res
}

// AblationGranularityResult finds the CRMA/RDMA crossover by transfer
// size — the data behind the adaptive library's Advise threshold.
type AblationGranularityResult struct {
	Sizes []int
	CRMA  []sim.Dur
	RDMA  []sim.Dur
	Table Table
}

// AblationGranularity measures a single remote transfer of each size
// over both data channels.
func AblationGranularity() *AblationGranularityResult {
	res := &AblationGranularityResult{
		Sizes: []int{64, 256, 1024, 4096, 16384, 65536},
		Table: Table{
			Title:   "Ablation — transfer size vs channel latency (the Advise crossover)",
			Columns: []string{"size", "crma", "rdma", "winner"},
		},
	}
	p := sim.Default()
	rig := newPair(&p, 94)
	defer rig.close()
	win := rig.Local.NextHotplugWindow(1 << 20)
	if _, err := rig.Local.EP.CRMA.Map(win, 1<<20, 1, 0x1000_0000); err != nil {
		panic(err)
	}
	rig.Donor.EP.CRMA.Export(0, win, 1<<20, 0x1000_0000)
	rig.run("sweep", func(pr *sim.Proc) {
		for _, size := range res.Sizes {
			t0 := pr.Now()
			// CRMA moves data line by line (hardware fills, MSHR-limited).
			for off := 0; off < size; off += p.CacheLine {
				rig.Local.EP.CRMA.Fill(pr, win+uint64(off), p.CacheLine)
			}
			crma := pr.Now().Sub(t0)
			t1 := pr.Now()
			rig.Local.EP.RDMA.Read(pr, 1, 0x1000_0000, size)
			rdma := pr.Now().Sub(t1)
			res.CRMA = append(res.CRMA, crma)
			res.RDMA = append(res.RDMA, rdma)
			winner := "CRMA"
			if rdma < crma {
				winner = "RDMA"
			}
			res.Table.AddRow(fmt.Sprintf("%dB", size), crma.String(), rdma.String(), winner)
		}
	})
	return res
}
