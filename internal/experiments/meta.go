package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Table1 renders the platform configuration (the simulator's calibrated
// defaults against the paper's Table 1).
func Table1() Table {
	p := sim.Default()
	t := Table{
		Title:   "Table 1 — platform configuration (simulator defaults vs paper)",
		Columns: []string{"parameter", "value", "paper"},
	}
	t.AddRow("system", "8 nodes, 3D mesh (2x2x2)", "8 nodes, 3D mesh")
	t.AddRow("processor", fmt.Sprintf("%.3f GHz in-order model", p.CPUGHz), "ARM Cortex-A9, 667 MHz")
	t.AddRow("memory", "1 GB per node (default)", "1 GB SODIMM (active)")
	t.AddRow("p2p latency", p.HopLatency().String(), "1.4 µs")
	t.AddRow("bandwidth", fmt.Sprintf("%.0f Gbps x %d", p.LinkGbps, p.LinkPorts), "5 Gbps x 6")
	t.AddRow("page size", fmt.Sprintf("%d B", p.PageBytes), "4 KB (Linux)")
	t.AddRow("LLC", fmt.Sprintf("%d KiB, %d-way", p.CacheBytes>>10, p.CacheWays), "(Zynq PL310 class)")
	return t
}

// CostTable renders the §7.3 hardware cost analysis.
func CostTable() Table {
	t := Table{
		Title:   "§7.3 — hardware cost (28 nm, 1 GHz typical corner)",
		Columns: []string{"block", "area mm²", "SRAM KB", "kLUTs"},
	}
	for _, b := range cost.Blocks() {
		t.AddRow(b.Name, fmt.Sprintf("%.2f", b.AreaMM2),
			fmt.Sprintf("%.0f", b.SRAMKB), fmt.Sprintf("%.0f", b.KLUTs))
	}
	area, sram := cost.Totals()
	t.AddRow("total logic", fmt.Sprintf("%.2f", area), fmt.Sprintf("%.0f", sram), "")
	t.AddRow("PHYs", fmt.Sprintf("%.1f", cost.PHYTotalMM2()), "", "")
	t.AddRow("share of 300mm² die", pct(100*cost.ChipFraction(cost.HaswellEP8CoreMM2)), "", "")
	lut, sramDelta := cost.QPairVsCRMA()
	t.AddRow("QPair/CRMA logic", fmt.Sprintf("%.1fx", lut), fmt.Sprintf("+%.0f", sramDelta), "")
	return t
}

// ValidationResult reproduces the §4.2 validation: the prototype's
// wall-clock times are consistently about 1/16th those of an Intel Xeon
// E5620 reference (within 10%). We run the same workload mix under the
// prototype parameters and the Xeon parameter set and report the ratio.
type ValidationResult struct {
	Workloads []string
	Ratios    []float64
	Table     Table
}

// validationRun measures one workload under a parameter set.
func validationRun(name string, p sim.Params, seed uint64) sim.Dur {
	rig := newPair(&p, seed)
	defer rig.close()
	var elapsed sim.Dur
	switch name {
	case "bdb":
		rig.run("v-bdb", func(pr *sim.Proc) {
			arena := workloads.NewArena(0, 256<<20)
			kv := workloads.BuildBTree(pr, rig.Local.Mem, arena, arena, 50000, 64, 16)
			rng := sim.NewRNG(3)
			t0 := pr.Now()
			kv.OLTPMix(pr, rng, 300)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	case "grep":
		rig.run("v-grep", func(pr *sim.Proc) {
			pattern := []byte("xeon")
			text := workloads.SynthText(sim.NewRNG(4), 8<<20, pattern, 8192)
			t0 := pr.Now()
			workloads.Grep(pr, rig.Local.Mem, 0, text, pattern)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	case "pagerank":
		g := workloads.GenUniform(sim.NewRNG(5), 20000, 6)
		g.Place(workloads.NewArena(0, 8<<20), workloads.NewArena(8<<20, 32<<20),
			workloads.NewArena(48<<20, 8<<20))
		rig.run("v-pr", func(pr *sim.Proc) {
			t0 := pr.Now()
			workloads.PageRank(pr, rig.Local.Mem, g, 1)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	}
	return elapsed
}

// validationWorkloads is the §4.2 workload mix; validationSeed the rig
// stream.
var validationWorkloads = []string{"bdb", "grep", "pagerank"}

const validationSeed = 90

// validationSpec decomposes the check into one trial per workload ×
// parameter set.
func validationSpec() harness.Spec {
	var trials []harness.Trial
	for _, n := range validationWorkloads {
		for _, ps := range []struct {
			name   string
			params func() sim.Params
		}{{"proto", sim.Default}, {"xeon", sim.Xeon}} {
			trials = append(trials, harness.Trial{
				ID: n + "/" + ps.name, Seed: validationSeed,
				Run: durTrial(func(seed uint64) sim.Dur { return validationRun(n, ps.params(), seed) }),
			})
		}
	}
	return harness.Spec{
		Title:    "§4.2 validation — prototype vs Xeon-class parameters",
		Trials:   trials,
		Assemble: assembleValidation,
	}
}

// assembleValidation computes the prototype/Xeon ratio per workload.
func assembleValidation(r *harness.Result) (harness.Artifact, error) {
	res := &ValidationResult{
		Workloads: validationWorkloads,
		Table: Table{
			Title:   "§4.2 validation — prototype time / Xeon-class time (paper: ~16x, ±10%)",
			Columns: []string{"workload", "ratio"},
		},
	}
	for _, n := range validationWorkloads {
		proto := trialDur(r, n+"/proto")
		xeon := trialDur(r, n+"/xeon")
		ratio := float64(proto) / float64(xeon)
		res.Ratios = append(res.Ratios, ratio)
		res.Table.AddRow(n, fmt.Sprintf("%.1fx", ratio))
	}
	return res, nil
}

// String renders the validation table.
func (r *ValidationResult) String() string { return r.Table.String() }

// Validation compares the prototype and Xeon parameter sets.
func Validation() *ValidationResult {
	return runSpec("validation", validationSpec()).(*ValidationResult)
}

// table1Spec and costSpec wrap the two purely tabular artifacts: no
// measurements, so no trials — assembly renders directly.
func table1Spec() harness.Spec {
	return harness.Spec{
		Title: "Table 1 — platform configuration",
		Assemble: func(*harness.Result) (harness.Artifact, error) {
			return Table1(), nil
		},
	}
}

func costSpec() harness.Spec {
	return harness.Spec{
		Title: "§7.3 — hardware cost analysis",
		Assemble: func(*harness.Result) (harness.Artifact, error) {
			return CostTable(), nil
		},
	}
}
