package experiments

import (
	"repro/internal/harness"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workloads"
)

// Fig17Result reproduces Fig. 17: the multi-modality study — three
// access patterns, each run over each of the three channels, normalized
// to the best channel per pattern (=100). The paper's finding: none of
// the channels can efficiently replace another.
type Fig17Result struct {
	Patterns []string // in-mem DB random, CC contiguous, iperf messaging
	CRMA     []float64
	RDMA     []float64
	QPair    []float64
	Table    Table
}

// fig17DB measures random record access over one channel.
func fig17DB(channel transport.Channel, seed uint64) sim.Dur {
	p := sim.Default()
	rig := newPair(&p, seed)
	defer rig.close()
	const keys = 60000
	recBytes := uint64(keys * bdbRecordSize)
	var elapsed sim.Dur
	switch channel {
	case transport.ChanCRMA:
		rig.run("db-crma", func(pr *sim.Proc) {
			win := mountWindow(rig, recBytes+(8<<20))
			kv := workloads.BuildBTree(pr, rig.Local.Mem,
				workloads.NewArena(0, 64<<20), workloads.NewArena(win, recBytes+(8<<20)),
				keys, bdbRecordSize, bdbFanout)
			rng := sim.NewRNG(2)
			t0 := pr.Now()
			kv.OLTPMix(pr, rng, 200)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	case transport.ChanRDMA:
		// Bulk channel used for fine-grained access: records reached
		// through the page-granular remote-swap device.
		rig.run("db-rdma", func(pr *sim.Proc) {
			base := rig.Local.NextHotplugWindow(recBytes + (8 << 20))
			dev := &memsys.RemoteSwap{P: &p, RDMA: rig.Local.EP.RDMA, Donor: 1, Base: 0x1000_0000}
			paged := memsys.NewPaged(&p, int(recBytes/8)/p.PageBytes+4, dev)
			mustAdd(rig, &memsys.Region{Base: base, Size: recBytes + (8 << 20), Backend: paged})
			kv := workloads.BuildBTree(pr, rig.Local.Mem,
				workloads.NewArena(0, 64<<20), workloads.NewArena(base, recBytes+(8<<20)),
				keys, bdbRecordSize, bdbFanout)
			rng := sim.NewRNG(2)
			t0 := pr.Now()
			kv.OLTPMix(pr, rng, 200)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	case transport.ChanQPair:
		qa, qb := transport.ConnectQPair(rig.Local.EP, rig.Donor.EP, transport.QPairConfig{})
		workloads.ServeKV(rig.Eng, "srv",
			&workloads.DataServer{H: rig.Donor.Mem, QP: qb, Think: 8 * sim.Microsecond})
		rig.run("db-qpair", func(pr *sim.Proc) {
			idx := workloads.BuildBTreeIndex(pr, rig.Local.Mem,
				workloads.NewArena(0, 64<<20), workloads.NewArena(0x1000_0000, recBytes+(8<<20)),
				keys, bdbRecordSize, bdbFanout)
			rkv := &workloads.RemoteKV{Index: idx, QP: qa}
			rng := sim.NewRNG(2)
			t0 := pr.Now()
			rkv.OLTPMix(pr, rng, 200)
			elapsed = pr.Now().Sub(t0)
			rkv.Close(pr)
		})
	}
	return elapsed
}

// fig17CC measures contiguous edge streaming over one channel.
func fig17CC(channel transport.Channel, seed uint64) sim.Dur {
	p := sim.Default()
	rig := newPair(&p, seed)
	defer rig.close()
	g := workloads.GenUniform(sim.NewRNG(3), 30000, 8)
	edgeBytes := uint64(g.Edges()*4) + (4 << 20)
	var elapsed sim.Dur
	// All channels run the same two fixed sweeps so a convergence-
	// dependent pass count cannot confound the channel comparison.
	const passes = 2
	switch channel {
	case transport.ChanCRMA:
		rig.run("cc-crma", func(pr *sim.Proc) {
			win := mountWindow(rig, edgeBytes)
			g.Place(workloads.NewArena(0, 8<<20), workloads.NewArena(win, edgeBytes),
				workloads.NewArena(16<<20, 8<<20))
			t0 := pr.Now()
			workloads.CCPasses(pr, rig.Local.Mem, g, passes)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	case transport.ChanRDMA:
		rig.run("cc-rdma", func(pr *sim.Proc) {
			base := rig.Local.NextHotplugWindow(edgeBytes)
			dev := &memsys.RemoteSwap{P: &p, RDMA: rig.Local.EP.RDMA, Donor: 1, Base: 0x1000_0000}
			paged := memsys.NewPaged(&p, int(edgeBytes/4)/p.PageBytes+4, dev)
			mustAdd(rig, &memsys.Region{Base: base, Size: edgeBytes, Backend: paged})
			g.Place(workloads.NewArena(0, 8<<20), workloads.NewArena(base, edgeBytes),
				workloads.NewArena(16<<20, 8<<20))
			t0 := pr.Now()
			workloads.CCPasses(pr, rig.Local.Mem, g, passes)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	case transport.ChanQPair:
		g.Place(workloads.NewArena(0, 8<<20), workloads.NewArena(0x1000_0000, edgeBytes),
			workloads.NewArena(16<<20, 8<<20))
		qa, qb := transport.ConnectQPair(rig.Local.EP, rig.Donor.EP, transport.QPairConfig{})
		workloads.ServeKV(rig.Eng, "srv",
			&workloads.DataServer{H: rig.Donor.Mem, QP: qb, Think: 500 * sim.Nanosecond})
		rig.run("cc-qpair", func(pr *sim.Proc) {
			t0 := pr.Now()
			// Label-propagation-shaped passes fetching each adjacency
			// list as an explicit message per vertex.
			workloads.PageRankQPair(pr, rig.Local.Mem, g, qa, passes, 1)
			elapsed = pr.Now().Sub(t0)
			workloads.CloseServer(pr, qa)
		})
	}
	return elapsed
}

// fig17Iperf measures message passing over one channel.
func fig17Iperf(channel transport.Channel, seed uint64) sim.Dur {
	p := sim.Default()
	rig := newPair(&p, seed)
	defer rig.close()
	const msgSize, count = 256, 2000
	var elapsed sim.Dur
	switch channel {
	case transport.ChanQPair:
		qa, qb := transport.ConnectQPair(rig.Local.EP, rig.Donor.EP, transport.QPairConfig{})
		workloads.IperfQPairSink(rig.Eng, qb)
		rig.run("iperf-qp", func(pr *sim.Proc) {
			rep := workloads.IperfQPair(pr, qa, msgSize, count)
			elapsed = rep.Elapsed
		})
	case transport.ChanCRMA:
		rig.run("iperf-crma", func(pr *sim.Proc) {
			win := rig.Local.NextHotplugWindow(1 << 20)
			if _, err := rig.Local.EP.CRMA.Map(win, 1<<20, 1, 0x2000_0000); err != nil {
				panic(err)
			}
			rig.Donor.EP.CRMA.Export(0, win, 1<<20, 0x2000_0000)
			rep := workloads.IperfCRMA(pr, rig.Local.EP.CRMA, win, p.CacheLine, msgSize, count)
			elapsed = rep.Elapsed
		})
	case transport.ChanRDMA:
		rig.run("iperf-rdma", func(pr *sim.Proc) {
			rep := workloads.IperfRDMA(pr, rig.Local.EP.RDMA, 1, 0x2000_0000, msgSize, count)
			elapsed = rep.Elapsed
		})
	}
	return elapsed
}

// fig17Patterns names the three access patterns, their runners, their
// rig seeds (unchanged from the sequential code), and the paper's
// reported values per channel.
var fig17Patterns = []struct {
	key   string
	name  string
	seed  uint64
	run   func(transport.Channel, uint64) sim.Dur
	paper [3]string
}{
	{"db", "in-mem DB random", 71, fig17DB, [3]string{"100", "14.5", "12.2"}},
	{"cc", "CC contiguous", 72, fig17CC, [3]string{"23.7", "100", "4.2"}},
	{"iperf", "iperf messaging", 73, fig17Iperf, [3]string{"57.7", "12.0", "100"}},
}

// fig17Channels orders the three channels as the table's columns do.
var fig17Channels = []struct {
	key string
	ch  transport.Channel
}{
	{"crma", transport.ChanCRMA},
	{"rdma", transport.ChanRDMA},
	{"qpair", transport.ChanQPair},
}

// fig17Spec decomposes the study into one trial per pattern × channel.
func fig17Spec() harness.Spec {
	var trials []harness.Trial
	for _, pat := range fig17Patterns {
		for _, ch := range fig17Channels {
			trials = append(trials, harness.Trial{
				ID: pat.key + "/" + ch.key, Seed: pat.seed,
				Run: durTrial(func(seed uint64) sim.Dur { return pat.run(ch.ch, seed) }),
			})
		}
	}
	return harness.Spec{
		Title:    "Fig. 17 — channel multi-modality study",
		Trials:   trials,
		Assemble: assembleFig17,
	}
}

// assembleFig17 normalizes each pattern to its best channel (=100).
func assembleFig17(r *harness.Result) (harness.Artifact, error) {
	res := &Fig17Result{
		Table: Table{
			Title:   "Fig. 17 — channel comparison, normalized to best per pattern (=100)",
			Columns: []string{"pattern", "CRMA", "paper", "RDMA", "paper", "QPair", "paper"},
		},
	}
	for _, pat := range fig17Patterns {
		res.Patterns = append(res.Patterns, pat.name)
		var times [3]sim.Dur
		best := sim.Dur(1<<62 - 1)
		for j, ch := range fig17Channels {
			times[j] = trialDur(r, pat.key+"/"+ch.key)
			if times[j] < best {
				best = times[j]
			}
		}
		norm := func(d sim.Dur) float64 { return 100 * float64(best) / float64(d) }
		res.CRMA = append(res.CRMA, norm(times[0]))
		res.RDMA = append(res.RDMA, norm(times[1]))
		res.QPair = append(res.QPair, norm(times[2]))
		res.Table.AddRow(pat.name,
			f1(norm(times[0])), pat.paper[0],
			f1(norm(times[1])), pat.paper[1],
			f1(norm(times[2])), pat.paper[2])
	}
	return res, nil
}

// String renders the figure's table.
func (r *Fig17Result) String() string { return r.Table.String() }

// Fig17 runs the full matrix and normalizes each pattern to its best
// channel (=100).
func Fig17() *Fig17Result { return runSpec("fig17", fig17Spec()).(*Fig17Result) }
