package experiments

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/serving"
)

// inferOf assembles a custom cell list through the harness, like the
// registered specs do.
func inferOf(t *testing.T, cells []inferCell) *InferenceResult {
	t.Helper()
	res, _, err := harness.Run("infer-test", inferSpec("inference test subset", cells), harness.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	return res.(*InferenceResult)
}

// TestInferenceFindings asserts the sweep's qualitative findings on a
// small subset: the control cell is clean, the faulted cell shows both
// crashes and device-lease failovers without losing a request, and
// cross-rack accelerator leases cost service time on the oversubscribed
// spine.
func TestInferenceFindings(t *testing.T) {
	cells := []inferCell{
		inferFlatCell(8, 0.7, serving.FaultNone, 200, 1),
		inferFlatCell(8, 0.7, serving.FaultFast, 200, 2),
		inferHierCell(2, 0, 120, 1),
		inferHierCell(2, 1, 120, 1),
	}
	r := inferOf(t, cells)
	for _, c := range r.Cells {
		if c.Hist.N() == 0 {
			t.Fatalf("cell %s recorded no latencies", c.ID)
		}
		if !(c.P50 <= c.P99 && c.P99 <= c.P999) {
			t.Fatalf("cell %s quantiles disordered: %v %v %v", c.ID, c.P50, c.P99, c.P999)
		}
	}
	quiet := r.Cell("infer/flat/n8/none/u70")
	fast := r.Cell("infer/flat/n8/fast/u70")
	local := r.Cell("infer/hier/r2/cf00")
	cross := r.Cell("infer/hier/r2/cf100")
	if quiet == nil || fast == nil || local == nil || cross == nil {
		t.Fatalf("comparison cells missing from %v", r.Cells)
	}
	if quiet.Crashes != 0 || quiet.DevFailovers != 0 {
		t.Fatalf("control cell saw faults: %+v", quiet)
	}
	if fast.Crashes == 0 || fast.DevFailovers == 0 {
		t.Fatalf("faulted cell shows no device-plane recovery: %+v", fast)
	}
	// Both shards of the faulted cell completed every request: the merged
	// histogram holds shards x requests entries.
	if n := fast.Hist.N(); n != 2*200 {
		t.Fatalf("faulted cell histogram has %d entries, want 400 (requests lost?)", n)
	}
	if cross.ServiceNS <= local.ServiceNS {
		t.Fatalf("cross-rack leases did not cost service time: %.0fns vs %.0fns",
			cross.ServiceNS, local.ServiceNS)
	}
	t.Logf("\n%s", r.Table.String())
}

// TestInferenceParallelismByteIdentical is the harness contract applied
// to the device-plane sweep: the chaos schedule, every device placement,
// and the arrival streams are seeded, so any -parallel value renders the
// same bytes. The CI race job runs this test under the detector.
func TestInferenceParallelismByteIdentical(t *testing.T) {
	cells := append(inferSmokeCells(), inferHierCell(2, 0.5, 120, 1))
	spec := inferSpec("Serving inference — byte-identity subset", cells)
	sequential, _, err := harness.Run("infer-ident", spec, harness.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := harness.Run("infer-ident", spec, harness.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sequential.String() != parallel.String() {
		t.Fatalf("inference renders differently under -parallel 4:\n%s\nvs\n%s", sequential, parallel)
	}
	if !strings.Contains(sequential.String(), "failovers") {
		t.Fatalf("inference table lost its failover column:\n%s", sequential)
	}
}
