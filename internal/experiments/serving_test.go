package experiments

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

// servingTestCells picks the matrix by -short, like the other
// experiment tests.
func servingTestCells(t *testing.T) []servingCell {
	if testing.Short() {
		return servingCellsShort()
	}
	return servingCellsFull()
}

// TestServingFindings asserts the scenario's qualitative findings on
// the assembled sweep: open-loop delivery near the offered rate,
// scale-out across the mesh, and the co-located-tenant pressure that
// fattens the cache tier's tail.
func TestServingFindings(t *testing.T) {
	r := servingOf(servingTestCells(t))
	for _, c := range r.Cells {
		if c.Hist.N() == 0 {
			t.Fatalf("cell %s recorded no latencies", c.ID)
		}
		if !(c.P50 <= c.P90 && c.P90 <= c.P99 && c.P99 <= c.P999) {
			t.Fatalf("cell %s quantiles disordered: %v %v %v %v", c.ID, c.P50, c.P90, c.P99, c.P999)
		}
	}
	// Scale-out: the 8-node mesh offers and achieves several times the
	// 2-node throughput at the same per-server utilization.
	small, big := r.Cell("kv/n2/u0.90"), r.Cell("kv/n8/u0.90")
	if small == nil || big == nil {
		t.Fatal("kv scale cells missing from sweep")
	}
	if big.AchievedRPS < 3*small.AchievedRPS {
		t.Fatalf("8-node kv tier achieves %.0f rps, want >= 3x the 2-node %.0f rps",
			big.AchievedRPS, small.AchievedRPS)
	}
	// Co-located tenant pressure moves the cache tier's tail.
	quiet, loud := r.Cell("tier/quiet/n8/u0.90"), r.Cell("tier/distance/n8/u0.90")
	if quiet == nil || loud == nil {
		t.Fatal("tier pressure cells missing from sweep")
	}
	if loud.P99 <= quiet.P99 {
		t.Fatalf("tenant pressure did not move the tier p99: %v with tenants vs %v quiet",
			loud.P99, quiet.P99)
	}
	if !testing.Short() {
		// Load moves the tail disproportionately: at 0.9 utilization the
		// kv p99 is further from its p50 than at 0.6.
		lo, hi := r.Cell("kv/n8/u0.60"), r.Cell("kv/n8/u0.90")
		if float64(hi.P99)/float64(hi.P50) <= float64(lo.P99)/float64(lo.P50) {
			t.Fatalf("p99/p50 did not widen with load: %.2f @0.9 vs %.2f @0.6",
				float64(hi.P99)/float64(hi.P50), float64(lo.P99)/float64(lo.P50))
		}
		// Burstiness at the same mean rate fattens the extreme tail.
		pois, mmpp := r.Cell("tier/distance/n8/u0.90"), r.Cell("tier/distance-mmpp/n8/u0.90")
		if mmpp.P999 <= pois.P999 {
			t.Fatalf("MMPP p999 %v not above Poisson p999 %v", mmpp.P999, pois.P999)
		}
	}
	t.Logf("\n%s", r.Table.String())
}

// TestServingParallelismByteIdentical is the harness contract applied
// to the serving sweep: seeded open-loop arrivals survive the worker
// pool, so any -parallel value renders the same bytes. The CI race job
// runs this test under the detector.
func TestServingParallelismByteIdentical(t *testing.T) {
	cells := append(servingSmokeCells(), servingCellsShort()[:1]...)
	spec := servingSpec("Serving — byte-identity subset", cells)
	sequential, _, err := harness.Run("serving-ident", spec, harness.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := harness.Run("serving-ident", spec, harness.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sequential.String() != parallel.String() {
		t.Fatalf("serving renders differently under -parallel 4:\n%s\nvs\n%s",
			sequential, parallel)
	}
	if !strings.Contains(sequential.String(), "p999") {
		t.Fatalf("serving table lost its percentile columns:\n%s", sequential)
	}
}
