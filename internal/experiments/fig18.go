package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Fig18Result reproduces Fig. 18: the bandwidth improvement from
// carrying QPair flow-control credits over the CRMA channel instead of
// as QPair control messages, by payload size. The paper reports 28-51%,
// larger for small packets.
type Fig18Result struct {
	Sizes       []int
	Improvement []float64 // percent
	Table       Table
}

// fig18Run measures a flow-controlled QPair stream's effective
// throughput with the chosen credit-return path. Sender and receiver
// run at driver speed (the stream is hardware-paced, as in the SDP
// scenario the paper describes); only the credit-return mechanism
// differs between the two runs.
func fig18Run(size int, viaCRMA bool, seed uint64) float64 {
	p := sim.Default()
	rig := newPair(&p, seed)
	defer rig.close()
	cfg := transport.QPairConfig{Window: 16, CreditBatch: 4, CreditViaCRMA: viaCRMA}
	qa, qb := transport.ConnectQPair(rig.Local.EP, rig.Donor.EP, cfg)
	const count = 3000
	var done sim.Time
	rig.Eng.Go("sink", func(pr *sim.Proc) {
		for i := 0; i < count; i++ {
			qb.RecvHW(pr)
		}
		done = pr.Now()
	})
	rig.run("stream", func(pr *sim.Proc) {
		for i := 0; i < count; i++ {
			qa.SendHW(pr, size, nil)
		}
	})
	if done == 0 {
		panic("fig18: stream never drained")
	}
	return float64(count) * float64(size) / 1e6 / sim.Dur(done).Seconds()
}

// fig18Sizes is the payload sweep; fig18Seed the rig stream.
var fig18Sizes = []int{4, 8, 16, 32, 64, 128}

const fig18Seed = 81

// fig18Spec decomposes the sweep into one trial per payload size ×
// credit path.
func fig18Spec() harness.Spec {
	var trials []harness.Trial
	for _, s := range fig18Sizes {
		for _, path := range []struct {
			name    string
			viaCRMA bool
		}{{"qpair-credits", false}, {"crma-credits", true}} {
			trials = append(trials, harness.Trial{
				ID: fmt.Sprintf("%dB/%s", s, path.name), Seed: fig18Seed,
				Run: func(seed uint64) (harness.Values, error) {
					return harness.Values{"mbps": fig18Run(s, path.viaCRMA, seed)}, nil
				},
			})
		}
	}
	return harness.Spec{
		Title:    "Fig. 18 — QPair flow-control credits over CRMA",
		Trials:   trials,
		Assemble: assembleFig18,
	}
}

// assembleFig18 computes the collaborative path's improvement per size.
func assembleFig18(r *harness.Result) (harness.Artifact, error) {
	paper := []string{"~51%", "~48%", "~42%", "~38%", "~33%", "~28%"}
	res := &Fig18Result{
		Sizes: fig18Sizes,
		Table: Table{
			Title:   "Fig. 18 — QPair bandwidth improvement with credits over CRMA",
			Columns: []string{"payload", "qpair-credits MB/s", "crma-credits MB/s", "improvement", "paper"},
		},
	}
	for i, s := range fig18Sizes {
		base := r.Val(fmt.Sprintf("%dB/qpair-credits", s), "mbps")
		collab := r.Val(fmt.Sprintf("%dB/crma-credits", s), "mbps")
		imp := 100 * (collab - base) / base
		res.Improvement = append(res.Improvement, imp)
		res.Table.AddRow(fmt.Sprintf("%dB", s), f2(base), f2(collab), pct(imp), paper[i])
	}
	return res, nil
}

// String renders the figure's table.
func (r *Fig18Result) String() string { return r.Table.String() }

// Fig18 sweeps payload sizes 4..128 B.
func Fig18() *Fig18Result { return runSpec("fig18", fig18Spec()).(*Fig18Result) }
