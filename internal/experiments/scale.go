package experiments

// Dataset scaling. The paper's workloads run for hours on gigabyte
// datasets; the reproduction shrinks them by fixed factors chosen so the
// two ratios that determine every crossover are preserved:
//
//  1. working set : last-level cache (so CRMA miss streams keep their
//     shape), and
//  2. working set : local-memory budget (so fault rates under 75%-remote
//     and swap configurations keep their shape).
//
// Absolute times shrink linearly with the factors; all reported results
// are normalized, so the factors cancel.
const (
	// BerkeleyDB / in-memory DB (paper: 6 GB array for Fig. 3, 1 GB
	// dataset for Fig. 5, records of ~64 B; we keep 64 B records and
	// shrink the key count).
	bdbKeysFig3   = 300_000 // ≈ 48 MB of index+records (paper: 6 GB)
	bdbKeysFig5   = 120_000 // ≈ 16 MB of records (paper: 1 GB)
	bdbRecordSize = 64
	bdbFanout     = 16
	bdbTxnsFig3   = 400 // 2 000 operations
	bdbTxnsFig5   = 400 // 2 000 operations
	bdbTxnsFig15  = 300 // 1 500 operations
	bdbKeysFig15  = 120_000

	// PageRank (paper: 1 488 712 vertices, 8 678 566 edges; we keep the
	// degree ≈ 5.8 and shrink the vertex count ~30x).
	prVertices = 50_000
	prDegree   = 6
	prIters    = 1

	// Spark-CC-like connected components. The paper's CC input is tiny
	// (Table 1: 8 192 nodes, 21 461 edges) — Spark framework overhead
	// dominates its runtime, which is why swap barely hurts it in
	// Fig. 15. Used unscaled.
	ccVertices = 8192
	ccDegree   = 3

	// Hadoop-Grep (paper: 9.7 GB dataset; scaled ~400x).
	grepBytes = 24 << 20

	// Graph500 (paper: R-MAT scale 22, edge factor 14; scaled to 15).
	g500Scale      = 15
	g500EdgeFactor = 14

	// Fig. 14 mini data-center (paper: 70-350 MB Redis in 70 MB steps,
	// 10 000 queries; scaled 20x on capacity, 5x on queries).
	fig14ValueBytes = 4096
	fig14Keys       = 4600         // keyspace ≈ 18.8 MB of values
	fig14StepBytes  = 3_500 * 1024 // 70 MB / 20
	fig14Steps      = 5            // 70..350 MB equivalents
	fig14Queries    = 2000
	fig14MySQLms    = 1250 // per-miss backing-DB cost (ms)
	fig14ClientUs   = 900  // per-query client+app cost (µs)

	// Fig. 16a accelerator datasets (paper: 8 MB and 512 MB; scaled 4x
	// and 16x).
	fftSmallBytes = 2 << 20
	fftLargeBytes = 32 << 20

	// Fig. 16b iperf (paper: 4 B and 256 B packets).
	iperfSmall   = 4
	iperfBig     = 256
	iperfPackets = 3000

	// Fig. 15: 25% local memory, 75% remote.
	fig15LocalFrac = 0.25
)

// Short-mode trial matrices. Under `go test -short` the experiment
// tests run these reduced matrices instead of the full configuration ×
// workload grids; each subset keeps exactly the cells the paper's
// qualitative finding needs (the crossovers and extremes the
// assertions check), dropping only corroborating middle points.
var (
	// Fig. 6 keeps the cheapest channel, the latency-hiding rewrite,
	// and the highest-performing configuration the router hurts most.
	fig6ConfigsShort = []string{"off-chip qpair", "async on-chip qpair", "on-chip crma"}

	// Fig. 15 keeps the random-access and contiguous-access workloads
	// whose CRMA/RDMA inversion is the figure's point.
	fig15WorkloadsShort = []string{"inmem-db", "grep"}
)
