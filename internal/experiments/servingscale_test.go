package experiments

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

// scaleTestCells is the reduced matrix: the smoke cell plus the
// cheapest two-rack full-cross cell, so both the delegation path and
// the multi-shard merge stay exercised.
func scaleTestCells() []servingCell {
	extra := scaleCell(2, 8, 0)
	extra.Cfg.Requests = scaleSmokeRequests
	return append(scaleSmokeCells(), extra)
}

// TestScaleParallelismByteIdentical is the harness contract applied to
// the rack-scale sweep: hierarchical clusters, root-MN delegation, and
// background tenants all build from per-trial seeds, so any -parallel
// value renders the same bytes. The CI race job runs this test under
// the detector.
func TestScaleParallelismByteIdentical(t *testing.T) {
	spec := servingSpec("Serving at rack scale — byte-identity subset", scaleTestCells())
	sequential, _, err := harness.Run("scale-ident", spec, harness.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := harness.Run("scale-ident", spec, harness.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sequential.String() != parallel.String() {
		t.Fatalf("serving-scale renders differently under -parallel 4:\n%s\nvs\n%s",
			sequential, parallel)
	}
	if !strings.Contains(sequential.String(), "p999") {
		t.Fatalf("serving-scale table lost its percentile columns:\n%s", sequential)
	}
}

// TestScaleSweepFindings runs the reduced matrix once and checks the
// qualitative finding the full sweep reports: the cross-rack cell pays
// a visible median penalty over the rack-local one.
func TestScaleSweepFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("two rack-scale cells")
	}
	res := servingOf(scaleTestCells())
	crossed := res.Cell("scale/n16/r8/x0.50")
	local := res.Cell("scale/n16/r8/x0.00")
	if crossed == nil || local == nil {
		t.Fatalf("cells missing from sweep:\n%s", res)
	}
	if crossed.P50 <= local.P50 {
		t.Fatalf("cross-rack p50 %v not above rack-local %v:\n%s", crossed.P50, local.P50, res)
	}
}
