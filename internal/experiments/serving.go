package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/monitor"
	"repro/internal/serving"
	"repro/internal/sim"
)

// The serving experiment family goes beyond the paper's closed-loop
// figures: an open-loop load generator (seeded Poisson/MMPP arrivals)
// drives the key-value and cache-tier workloads across the mesh and
// reports the end-to-end latency distribution — p50/p90/p99/p999 —
// per offered load × node count × sharing policy cell. Each cell runs
// as independent shard trials (distinct arrival-stream seeds); the
// assembly rebuilds and merges the shards' latency histograms exactly
// (sim.LatencyHist's merge is integral), so any harness worker count
// renders byte-identical tables.

// servingCell is one cell of the sweep.
type servingCell struct {
	ID     string
	Cfg    serving.Config
	Shards int
}

// Shard seeds are the one stochastic input that differs between a
// cell's trials; everything else in a scenario is internally seeded.
const servingShardSeed = 9000

// Requests per shard, by workload. Tier cells are dearer per request
// (cluster + warm phase), so they run a shorter measured window.
const (
	servingKVRequests    = 320
	servingTierRequests  = 240
	servingSmokeRequests = 200
)

func kvCell(nodes int, util float64) servingCell {
	return servingCell{
		ID:     fmt.Sprintf("kv/n%d/u%.2f", nodes, util),
		Cfg:    serving.Config{Workload: serving.KV, Nodes: nodes, Util: util, Requests: servingKVRequests},
		Shards: 2,
	}
}

func tierCell(label, policy string, nodes, tenants int, util float64, arr serving.ArrivalSpec) servingCell {
	return servingCell{
		ID: fmt.Sprintf("tier/%s/n%d/u%.2f", label, nodes, util),
		Cfg: serving.Config{Workload: serving.Tier, Nodes: nodes, Util: util,
			Requests: servingTierRequests, Tenants: tenants, Policy: policy, Arrivals: arr},
		Shards: 2,
	}
}

// servingCellsFull is the registered sweep: offered load × node count
// for the kv tier, offered load × sharing policy (plus a node-count
// point, a no-pressure baseline, and an MMPP burst point) for the
// cache tier.
func servingCellsFull() []servingCell {
	var cells []servingCell
	for _, nodes := range []int{2, 4, 8} {
		for _, util := range []float64{0.6, 0.9} {
			cells = append(cells, kvCell(nodes, util))
		}
	}
	// The policy axis enumerates the registry, so a newly registered
	// policy joins the sweep without touching this file.
	for _, pol := range monitor.PolicyNames() {
		for _, util := range []float64{0.6, 0.9} {
			cells = append(cells, tierCell(pol, pol, 8, 3, util, serving.ArrivalSpec{}))
		}
	}
	cells = append(cells,
		tierCell("distance", "distance", 4, 3, 0.9, serving.ArrivalSpec{}),
		tierCell("quiet", "distance", 8, 0, 0.9, serving.ArrivalSpec{}),
		tierCell("distance-mmpp", "distance", 8, 3, 0.9, serving.ArrivalSpec{Kind: serving.MMPP}),
	)
	return cells
}

// servingCellsShort is the reduced matrix the tests use: the extremes
// the qualitative findings need (scale-out, load, pressure), with one
// multi-shard cell so the exact-merge path stays exercised.
func servingCellsShort() []servingCell {
	return []servingCell{
		kvCell(2, 0.9),
		kvCell(8, 0.9),
		tierCell("distance", "distance", 8, 3, 0.9, serving.ArrivalSpec{}),
		tierCell("quiet", "distance", 8, 0, 0.9, serving.ArrivalSpec{}),
	}
}

// servingSmokeCells is the single cheapest cell — the pinned subset the
// bench-regression CI gate regenerates on every push.
func servingSmokeCells() []servingCell {
	c := kvCell(2, 0.6)
	c.Cfg.Requests = servingSmokeRequests
	c.Shards = 1
	return []servingCell{c}
}

// servingTrial adapts one shard of one cell into a harness trial body,
// exporting the scenario's scalars plus the latency histogram in its
// serialized (exact-merge) form.
func servingTrial(cfg serving.Config) func(uint64) (harness.Values, error) {
	return func(seed uint64) (harness.Values, error) {
		c := cfg
		c.Seed = seed
		r, err := serving.Run(c)
		if err != nil {
			return nil, err
		}
		v := harness.Values{
			"offered_rps":  r.OfferedRPS,
			"achieved_rps": r.AchievedRPS,
			"svc_ns":       r.ServiceNS,
			"lat_sum":      float64(r.Lat.Sum()),
			"lat_min":      float64(r.Lat.Min()),
			"lat_max":      float64(r.Lat.Max()),
		}
		for _, b := range r.Lat.Buckets() {
			v[fmt.Sprintf("lat_b%03d", b.Index)] = float64(b.Count)
		}
		return v, nil
	}
}

// servingSpec decomposes a cell list into shard trials.
func servingSpec(title string, cells []servingCell) harness.Spec {
	var trials []harness.Trial
	for _, cell := range cells {
		for s := 0; s < cell.Shards; s++ {
			trials = append(trials, harness.Trial{
				ID:   fmt.Sprintf("%s/s%d", cell.ID, s),
				Seed: servingShardSeed + uint64(s),
				Run:  servingTrial(cell.Cfg),
			})
		}
	}
	return harness.Spec{
		Title:  title,
		Trials: trials,
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			return assembleServing(r, cells)
		},
	}
}

// servingHist rebuilds one shard trial's latency histogram from its
// exported values.
func servingHist(r *harness.Result, trial string) (*sim.LatencyHist, error) {
	var vals harness.Values
	for i := range r.Trials {
		if r.Trials[i].Trial == trial {
			vals = r.Trials[i].Values
		}
	}
	if vals == nil {
		return nil, fmt.Errorf("experiments: serving trial %q missing from results", trial)
	}
	var buckets []sim.LatencyBucket
	for k, v := range vals {
		if !strings.HasPrefix(k, "lat_b") {
			continue
		}
		idx, err := strconv.Atoi(k[len("lat_b"):])
		if err != nil {
			return nil, fmt.Errorf("experiments: bad bucket key %q: %w", k, err)
		}
		buckets = append(buckets, sim.LatencyBucket{Index: idx, Count: int64(v)})
	}
	return sim.RestoreLatencyHist(int64(vals["lat_sum"]), int64(vals["lat_min"]),
		int64(vals["lat_max"]), buckets), nil
}

// ServingCellResult is one assembled sweep cell.
type ServingCellResult struct {
	ID          string
	Arrivals    string
	OfferedRPS  float64
	AchievedRPS float64
	P50         sim.Dur
	P90         sim.Dur
	P99         sim.Dur
	P999        sim.Dur
	Hist        *sim.LatencyHist
}

// ServingResult is the assembled sweep.
type ServingResult struct {
	Cells []ServingCellResult
	Table Table
}

// Cell returns a cell by id, or nil.
func (r *ServingResult) Cell(id string) *ServingCellResult {
	for i := range r.Cells {
		if r.Cells[i].ID == id {
			return &r.Cells[i]
		}
	}
	return nil
}

// String renders the sweep table.
func (r *ServingResult) String() string { return r.Table.String() }

// assembleServing merges each cell's shard histograms (exactly — the
// merge is integral, so assembly order and worker count cannot change
// a digit) and renders the latency-vs-throughput table.
func assembleServing(r *harness.Result, cells []servingCell) (harness.Artifact, error) {
	res := &ServingResult{
		Table: Table{
			Title:   "Serving — open-loop latency vs offered load (end-to-end, queueing included)",
			Columns: []string{"cell", "arrivals", "offered rps", "achieved rps", "p50", "p90", "p99", "p999"},
		},
	}
	for _, cell := range cells {
		merged := &sim.LatencyHist{}
		var achieved float64
		for s := 0; s < cell.Shards; s++ {
			trial := fmt.Sprintf("%s/s%d", cell.ID, s)
			h, err := servingHist(r, trial)
			if err != nil {
				return nil, err
			}
			merged.Merge(h)
			achieved += r.Val(trial, "achieved_rps")
		}
		achieved /= float64(cell.Shards)
		offered := r.Val(fmt.Sprintf("%s/s0", cell.ID), "offered_rps")
		c := ServingCellResult{
			ID:          cell.ID,
			Arrivals:    cell.Cfg.Arrivals.String(),
			OfferedRPS:  offered,
			AchievedRPS: achieved,
			P50:         sim.Dur(merged.Quantile(50)),
			P90:         sim.Dur(merged.Quantile(90)),
			P99:         sim.Dur(merged.Quantile(99)),
			P999:        sim.Dur(merged.Quantile(99.9)),
			Hist:        merged,
		}
		res.Cells = append(res.Cells, c)
		res.Table.AddRow(c.ID, c.Arrivals, fmt.Sprintf("%.0f", c.OfferedRPS),
			fmt.Sprintf("%.0f", c.AchievedRPS),
			c.P50.String(), c.P90.String(), c.P99.String(), c.P999.String())
	}
	return res, nil
}

// servingSweepSpec builds the registered full sweep.
func servingSweepSpec() harness.Spec {
	return servingSpec("Serving — open-loop load × node count × sharing policy sweep", servingCellsFull())
}

// servingSmokeSpec builds the registered CI-gate subset.
func servingSmokeSpec() harness.Spec {
	return servingSpec("Serving — smoke cell (bench-regression CI gate)", servingSmokeCells())
}

// Serving runs the full sweep.
func Serving() *ServingResult { return runSpec("serving", servingSweepSpec()).(*ServingResult) }

// ServingSmoke runs the single-cell CI subset.
func ServingSmoke() *ServingResult {
	return runSpec("serving-smoke", servingSmokeSpec()).(*ServingResult)
}

// servingOf runs an ad-hoc cell list (the tests' reduced matrices).
func servingOf(cells []servingCell) *ServingResult {
	return runSpec("serving-subset", servingSpec("Serving — subset", cells)).(*ServingResult)
}

// ServingPressure runs the single pressured cache-tier cell — three
// co-located tenants leasing and hammering remote memory while the
// tier serves at 0.9 utilization (the benchmark entry point).
func ServingPressure() *ServingResult {
	return servingOf([]servingCell{tierCell("distance", "distance", 8, 3, 0.9, serving.ArrivalSpec{})})
}
