package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/serving"
	"repro/internal/sim"
)

// The serving-inference experiment family measures the device plane
// under open-loop serving load: an inference farm computes on leased
// remote accelerators and egresses over a bond of leased remote NICs.
// Cells sweep load and fault rate on the flat mesh (rolling crashes
// through the donor farm exercise device-lease failover and chunk
// replay) and rack count × cross-rack fraction on the rack/spine
// fabrics (cross-delegated accelerator leases put the request's data
// motion on the oversubscribed spine). Shards vary only the
// arrival/lease-pick seed; chaos history and every placement are the
// cell's, so shard histograms merge exactly and any -parallel renders
// identical bytes.

// inferCell is one cell of the sweep.
type inferCell struct {
	ID     string
	Cfg    serving.Config
	Shards int
}

const (
	inferShardSeed     = 9200
	inferRequests      = 600
	inferHierRequests  = 400
	inferSmokeRequests = 300
)

// inferFlatCell builds a flat-mesh cell.
func inferFlatCell(nodes int, util float64, fault serving.FaultRate, requests, shards int) inferCell {
	id := fmt.Sprintf("infer/flat/n%d/%s/u%02.0f", nodes, fault, util*100)
	return inferCell{
		ID: id,
		Cfg: serving.Config{Workload: serving.Inference, Nodes: nodes, Util: util,
			Requests: requests, Fault: fault},
		Shards: shards,
	}
}

// inferHierCell builds a rack/spine cell.
func inferHierCell(racks int, crossFrac float64, requests, shards int) inferCell {
	return inferCell{
		ID: fmt.Sprintf("infer/hier/r%d/cf%02.0f", racks, crossFrac*100),
		Cfg: serving.Config{Workload: serving.Inference, Util: 0.7, Requests: requests,
			Racks: racks, RackNodes: 8, CrossFrac: crossFrac},
		Shards: shards,
	}
}

// inferCellsFull is the registered sweep: the load axis on the healthy
// flat mesh, the fault axis at the operating point, and rack count ×
// cross-rack fraction on the hierarchy.
func inferCellsFull() []inferCell {
	var cells []inferCell
	for _, util := range []float64{0.5, 0.7, 0.9} {
		cells = append(cells, inferFlatCell(8, util, serving.FaultNone, inferRequests, 1))
	}
	for _, fault := range []serving.FaultRate{serving.FaultSlow, serving.FaultFast} {
		cells = append(cells, inferFlatCell(8, 0.7, fault, inferRequests, 2))
	}
	cells = append(cells, inferFlatCell(4, 0.7, serving.FaultFast, inferRequests, 1))
	for _, racks := range []int{2, 4} {
		for _, cf := range []float64{0, 0.5} {
			cells = append(cells, inferHierCell(racks, cf, inferHierRequests, 1))
		}
	}
	return cells
}

// inferSmokeCells is the pinned single-cell subset the bench-regression
// CI gate regenerates on every push — a faulted cell, so the gate
// exercises device-lease failover and chunk replay, not just serving.
func inferSmokeCells() []inferCell {
	c := inferFlatCell(8, 0.7, serving.FaultFast, inferSmokeRequests, 1)
	c.ID = "inference-smoke/n8/fast"
	return []inferCell{c}
}

// inferTrial adapts one shard of one cell into a harness trial body.
func inferTrial(cfg serving.Config) func(uint64) (harness.Values, error) {
	return func(seed uint64) (harness.Values, error) {
		c := cfg
		c.Seed = seed
		r, err := serving.Run(c)
		if err != nil {
			return nil, err
		}
		v := harness.Values{
			"offered_rps":   r.OfferedRPS,
			"achieved_rps":  r.AchievedRPS,
			"svc_ns":        r.ServiceNS,
			"requests":      float64(cfg.Requests),
			"max_queue":     float64(r.MaxQueue),
			"crashes":       float64(r.Crashes),
			"dev_failovers": float64(r.DevFailovers),
			"lat_sum":       float64(r.Lat.Sum()),
			"lat_min":       float64(r.Lat.Min()),
			"lat_max":       float64(r.Lat.Max()),
		}
		for _, b := range r.Lat.Buckets() {
			v[fmt.Sprintf("lat_b%03d", b.Index)] = float64(b.Count)
		}
		return v, nil
	}
}

// inferSpec decomposes a cell list into shard trials.
func inferSpec(title string, cells []inferCell) harness.Spec {
	var trials []harness.Trial
	for _, cell := range cells {
		for s := 0; s < cell.Shards; s++ {
			trials = append(trials, harness.Trial{
				ID:   fmt.Sprintf("%s/s%d", cell.ID, s),
				Seed: inferShardSeed + uint64(s),
				Run:  inferTrial(cell.Cfg),
			})
		}
	}
	return harness.Spec{
		Title:  title,
		Trials: trials,
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			return assembleInference(r, cells)
		},
	}
}

// InferenceCellResult is one assembled sweep cell.
type InferenceCellResult struct {
	ID           string
	OfferedRPS   float64
	AchievedRPS  float64
	ServiceNS    float64
	Crashes      int64 // fullest shard view (shards share the fault history)
	DevFailovers int64 // fullest shard view
	P50          sim.Dur
	P99          sim.Dur
	P999         sim.Dur
	Hist         *sim.LatencyHist
}

// InferenceResult is the assembled sweep.
type InferenceResult struct {
	Cells []InferenceCellResult
	Table Table
}

// Cell returns a cell by id, or nil.
func (r *InferenceResult) Cell(id string) *InferenceCellResult {
	for i := range r.Cells {
		if r.Cells[i].ID == id {
			return &r.Cells[i]
		}
	}
	return nil
}

// String renders the sweep table.
func (r *InferenceResult) String() string { return r.Table.String() }

// assembleInference merges each cell's shard histograms exactly and
// folds the scalar metrics.
func assembleInference(r *harness.Result, cells []inferCell) (harness.Artifact, error) {
	res := &InferenceResult{
		Table: Table{
			Title: "Serving inference — leased accelerators + bonded NIC egress (open-loop)",
			Columns: []string{"cell", "offered rps", "achieved rps", "svc",
				"crashes", "failovers", "p50", "p99", "p999"},
		},
	}
	for _, cell := range cells {
		merged := &sim.LatencyHist{}
		var achieved float64
		var crashes, failovers int64
		for s := 0; s < cell.Shards; s++ {
			trial := fmt.Sprintf("%s/s%d", cell.ID, s)
			h, err := servingHist(r, trial)
			if err != nil {
				return nil, err
			}
			merged.Merge(h)
			achieved += r.Val(trial, "achieved_rps")
			// Shards share the installed fault schedule, but each engine
			// stops at its own completion instant; report the fullest view.
			if v := int64(r.Val(trial, "crashes")); v > crashes {
				crashes = v
			}
			if v := int64(r.Val(trial, "dev_failovers")); v > failovers {
				failovers = v
			}
		}
		s0 := fmt.Sprintf("%s/s0", cell.ID)
		c := InferenceCellResult{
			ID:           cell.ID,
			OfferedRPS:   r.Val(s0, "offered_rps"),
			AchievedRPS:  achieved / float64(cell.Shards),
			ServiceNS:    r.Val(s0, "svc_ns"),
			Crashes:      crashes,
			DevFailovers: failovers,
			P50:          sim.Dur(merged.Quantile(50)),
			P99:          sim.Dur(merged.Quantile(99)),
			P999:         sim.Dur(merged.Quantile(99.9)),
			Hist:         merged,
		}
		res.Cells = append(res.Cells, c)
		res.Table.AddRow(c.ID,
			fmt.Sprintf("%.0f", c.OfferedRPS),
			fmt.Sprintf("%.0f", c.AchievedRPS),
			fmt.Sprintf("%.2fms", c.ServiceNS/1e6),
			fmt.Sprintf("%d", c.Crashes),
			fmt.Sprintf("%d", c.DevFailovers),
			c.P50.String(), c.P99.String(), c.P999.String())
	}
	return res, nil
}

// inferSweepSpec builds the registered full sweep.
func inferSweepSpec() harness.Spec {
	return inferSpec("Serving inference — load × fault rate × rack count × cross-rack fraction", inferCellsFull())
}

// inferSmokeSpec builds the registered CI-gate subset.
func inferSmokeSpec() harness.Spec {
	return inferSpec("Serving inference — smoke cell (bench-regression CI gate)", inferSmokeCells())
}

// ServingInference runs the full device-plane serving sweep.
func ServingInference() *InferenceResult {
	return runSpec("serving-inference", inferSweepSpec()).(*InferenceResult)
}

// InferenceSmoke runs the single-cell CI subset.
func InferenceSmoke() *InferenceResult {
	return runSpec("inference-smoke", inferSmokeSpec()).(*InferenceResult)
}
