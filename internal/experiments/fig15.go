package experiments

import (
	"repro/internal/harness"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Fig15Result reproduces Fig. 15: remote memory accessed directly
// (CRMA) or as swap space (RDMA) with 75% of the working set remote,
// for four workloads, normalized to swapping to local storage. Higher
// is better.
type Fig15Result struct {
	Workloads []string
	AllLocal  []float64
	CRMA      []float64
	RDMA      []float64
	Table     Table
}

// fig15Mode selects the memory configuration.
type fig15Mode int

const (
	modeLocalSwap fig15Mode = iota // baseline: 25% resident, local disk
	modeAllLocal                   // ideal: everything in local DRAM
	modeCRMA                       // 25% local region + 75% CRMA window
	modeRDMASwap                   // 25% resident, remote-memory block device
)

// fig15Region mounts the data range for a mode and returns its base.
func fig15Region(rig *pairRig, mode fig15Mode, size uint64) uint64 {
	base := rig.Local.NextHotplugWindow(size)
	resident := int(float64(size) * fig15LocalFrac / float64(rig.P.PageBytes))
	if resident < 4 {
		resident = 4
	}
	switch mode {
	case modeAllLocal:
		mustAdd(rig, &memsys.Region{Base: base, Size: size,
			Backend: &memsys.LocalDRAM{P: rig.P}})
	case modeLocalSwap:
		paged := memsys.NewPaged(rig.P, resident, &memsys.LocalDisk{P: rig.P})
		mustAdd(rig, &memsys.Region{Base: base, Size: size, Backend: paged})
	case modeRDMASwap:
		dev := &memsys.RemoteSwap{P: rig.P, RDMA: rig.Local.EP.RDMA, Donor: 1, Base: 0x1000_0000}
		paged := memsys.NewPaged(rig.P, resident, dev)
		mustAdd(rig, &memsys.Region{Base: base, Size: size, Backend: paged})
	case modeCRMA:
		localPart := uint64(float64(size) * fig15LocalFrac)
		localPart &^= uint64(rig.P.PageBytes - 1)
		mustAdd(rig, &memsys.Region{Base: base, Size: localPart,
			Backend: &memsys.LocalDRAM{P: rig.P}})
		if _, err := rig.Local.EP.CRMA.Map(base+localPart, size-localPart, 1, 0x1000_0000); err != nil {
			panic(err)
		}
		rig.Donor.EP.CRMA.Export(0, base+localPart, size-localPart, 0x1000_0000)
		mustAdd(rig, &memsys.Region{Base: base + localPart, Size: size - localPart,
			Backend: &memsys.CRMARemote{CRMA: rig.Local.EP.CRMA, Donor: 1}})
	}
	return base
}

// initRegion materializes a data range the way a loader would: one
// streaming write pass. Under swap modes this dirties and eventually
// writes every page to the device, so later faults do real device reads
// (no zero-fill shortcut).
func initRegion(pr *sim.Proc, rig *pairRig, base, size uint64) {
	for off := uint64(0); off < size; off += 4096 {
		chunk := size - off
		if chunk > 4096 {
			chunk = 4096
		}
		rig.Local.Mem.Write(pr, base+off, int(chunk))
	}
	rig.Local.Mem.Flush(pr)
}

// fig15Workload runs one workload over a data range of the given mode
// and returns its measured time.
func fig15Workload(name string, mode fig15Mode, seed uint64) sim.Dur {
	p := sim.Default()
	// The prototype's Linux swap path on the 667 MHz A9 is far heavier
	// than the x86 default used elsewhere; calibrated against the
	// paper's Fig. 15 RDMA-vs-local-swap gap (§6 of DESIGN.md).
	p.PageFaultSW = 400 * sim.Microsecond
	rig := newPair(&p, seed)
	defer rig.close()
	var elapsed sim.Dur
	switch name {
	default:
		// An unmatched name would otherwise measure 0ns and poison the
		// normalization with NaN; the executor turns this into a trial
		// error.
		panic("fig15: unknown workload " + name)
	case "inmem-db":
		size := uint64(bdbKeysFig15*(bdbRecordSize+2*entryBytesScaled)) + (1 << 20)
		base := fig15Region(rig, mode, size)
		rig.run("db", func(pr *sim.Proc) {
			arena := workloads.NewArena(base, size)
			kv := workloads.BuildBTree(pr, rig.Local.Mem, arena, arena,
				bdbKeysFig15, bdbRecordSize, bdbFanout)
			rng := sim.NewRNG(7)
			kv.OLTPMix(pr, rng, 30)
			t0 := pr.Now()
			kv.OLTPMix(pr, rng, bdbTxnsFig15)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	case "cc":
		g := workloads.GenUniform(sim.NewRNG(8), ccVertices, ccDegree)
		size := uint64(g.Edges()*4+g.N*12) + (64 << 10)
		base := fig15Region(rig, mode, size)
		rig.run("cc", func(pr *sim.Proc) {
			arena := workloads.NewArena(base, size)
			g.Place(arena, arena, arena)
			initRegion(pr, rig, base, size)
			t0 := pr.Now()
			workloads.ConnectedComponents(pr, rig.Local.Mem, g)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	case "grep":
		size := uint64(grepBytes) + (64 << 10)
		base := fig15Region(rig, mode, size)
		rig.run("grep", func(pr *sim.Proc) {
			pattern := []byte("venice")
			text := workloads.SynthText(sim.NewRNG(9), grepBytes, pattern, 8192)
			initRegion(pr, rig, base, size)
			t0 := pr.Now()
			workloads.Grep(pr, rig.Local.Mem, base, text, pattern)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	case "graph500":
		g := workloads.GenRMAT(sim.NewRNG(10), g500Scale, g500EdgeFactor)
		size := uint64(g.Edges()*4+g.N*12) + (64 << 10)
		base := fig15Region(rig, mode, size)
		rig.run("bfs", func(pr *sim.Proc) {
			arena := workloads.NewArena(base, size)
			g.Place(arena, arena, arena)
			initRegion(pr, rig, base, size)
			root := 0
			for u := range g.Deg {
				if g.Deg[u] > g.Deg[root] {
					root = u
				}
			}
			t0 := pr.Now()
			workloads.BFS(pr, rig.Local.Mem, g, root)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
	}
	return elapsed
}

// fig15Workloads is the figure's full workload matrix; fig15Paper holds
// the paper's reported values per workload (all-local, crma, rdma).
var (
	fig15Workloads = []string{"inmem-db", "cc", "grep", "graph500"}
	fig15Paper     = map[string][3]string{
		"inmem-db": {"403.8", "159.0", "3.30"},
		"cc":       {"1.13", "0.65", "1.10"},
		"grep":     {"2.48", "1.07", "2.07"},
		"graph500": {"6.90", "4.86", "3.22"},
	}
)

// fig15ModeNames label the four memory configurations in trial ids.
var fig15ModeNames = map[fig15Mode]string{
	modeLocalSwap: "local-swap",
	modeAllLocal:  "all-local",
	modeCRMA:      "crma",
	modeRDMASwap:  "rdma-swap",
}

// fig15Seed keeps every cell on the sequential code's rig stream.
const fig15Seed = 66

// fig15Spec decomposes the figure into one trial per workload × mode
// cell, over a selectable workload subset (the short-mode matrix).
func fig15Spec(workloads []string) harness.Spec {
	var trials []harness.Trial
	for _, n := range workloads {
		for _, mode := range []fig15Mode{modeLocalSwap, modeAllLocal, modeCRMA, modeRDMASwap} {
			trials = append(trials, harness.Trial{
				ID: n + "/" + fig15ModeNames[mode], Seed: fig15Seed,
				Run: durTrial(func(seed uint64) sim.Dur { return fig15Workload(n, mode, seed) }),
			})
		}
	}
	return harness.Spec{
		Title:  "Fig. 15 — direct (CRMA) vs swap (RDMA) remote memory",
		Trials: trials,
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			return assembleFig15(r, workloads)
		},
	}
}

// assembleFig15 normalizes each mode to the local-swap baseline.
func assembleFig15(r *harness.Result, workloads []string) (harness.Artifact, error) {
	res := &Fig15Result{
		Workloads: workloads,
		Table: Table{
			Title:   "Fig. 15 — performance normalized to local-swap baseline (higher is better), 75% remote",
			Columns: []string{"workload", "all-local", "paper", "crma", "paper", "rdma-swap", "paper"},
		},
	}
	for _, n := range workloads {
		baseline := fig15Workload2(r, n, modeLocalSwap)
		ideal := float64(baseline) / float64(fig15Workload2(r, n, modeAllLocal))
		crma := float64(baseline) / float64(fig15Workload2(r, n, modeCRMA))
		rdma := float64(baseline) / float64(fig15Workload2(r, n, modeRDMASwap))
		res.AllLocal = append(res.AllLocal, ideal)
		res.CRMA = append(res.CRMA, crma)
		res.RDMA = append(res.RDMA, rdma)
		paper := fig15Paper[n]
		res.Table.AddRow(n, f2(ideal), paper[0], f2(crma), paper[1], f2(rdma), paper[2])
	}
	return res, nil
}

// fig15Workload2 reads one cell's measured time back out of the result.
func fig15Workload2(r *harness.Result, name string, mode fig15Mode) sim.Dur {
	return trialDur(r, name+"/"+fig15ModeNames[mode])
}

// String renders the figure's table.
func (r *Fig15Result) String() string { return r.Table.String() }

// Fig15 runs all four workloads under all four modes, reporting
// performance (1/time) normalized to the local-swap baseline.
func Fig15() *Fig15Result { return Fig15Of(fig15Workloads...) }

// Fig15Of runs the study over a subset of the workloads (the reduced
// short-mode matrix keeps the random/contiguous crossover cells).
func Fig15Of(workloads ...string) *Fig15Result {
	return runSpec("fig15", fig15Spec(workloads)).(*Fig15Result)
}
