package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/monitor"
	"repro/internal/serving"
	"repro/internal/sim"
)

// The serving-churn experiment family measures availability under donor
// churn: the chaos subsystem rolls crashes through the donor population
// while the Monitor Node's recovery half re-places leases onto
// survivors, and the open-loop load reports what users would see —
// goodput against an SLO deadline, unavailability windows, recovery
// latency, and the tail. Cells sweep mesh size × fault rate × sharing
// policy. Shards vary only the arrival/offset seed; the fault history is
// the cell's (chaos draws from a fixed internal seed), so shard
// histograms merge exactly and any -parallel renders identical bytes.

// churnCell is one cell of the sweep.
type churnCell struct {
	ID     string
	Cfg    serving.ChurnConfig
	Shards int
}

const (
	churnShardSeed     = 9100
	churnRequests      = 1500
	churnSmokeRequests = 800
)

func churnCellOf(label, policy string, nodes int, fault serving.FaultRate, requests, shards int) churnCell {
	return churnCell{
		ID: fmt.Sprintf("churn/%s/n%d/%s", label, nodes, fault),
		Cfg: serving.ChurnConfig{Nodes: nodes, Util: 0.7, Requests: requests,
			Policy: policy, Fault: fault},
		Shards: shards,
	}
}

// churnCellsFull is the registered sweep: mesh size × fault rate under
// the prototype's distance policy, plus the policy axis at the hardest
// point.
func churnCellsFull() []churnCell {
	var cells []churnCell
	for _, nodes := range []int{4, 8} {
		for _, fault := range []serving.FaultRate{serving.FaultNone, serving.FaultSlow, serving.FaultFast} {
			cells = append(cells, churnCellOf("distance", "distance", nodes, fault, churnRequests, 2))
		}
	}
	// The policy axis enumerates the registry ("distance" already swept
	// above), so new policies join the hardest point automatically.
	for _, pol := range monitor.PolicyNames() {
		if pol == "distance" {
			continue
		}
		cells = append(cells, churnCellOf(pol, pol, 8, serving.FaultFast, churnRequests, 2))
	}
	return cells
}

// churnCellsShort is the reduced matrix the tests use: the control, the
// cliff, and the scale-out comparison, with one multi-shard cell.
func churnCellsShort() []churnCell {
	return []churnCell{
		churnCellOf("distance", "distance", 4, serving.FaultNone, churnRequests, 1),
		churnCellOf("distance", "distance", 4, serving.FaultFast, churnRequests, 2),
		churnCellOf("distance", "distance", 8, serving.FaultFast, churnRequests, 1),
	}
}

// churnSmokeCells is the pinned single-cell subset the bench-regression
// CI gate regenerates on every push — deliberately a faulted cell, so
// the gate exercises detection, failover, and replay, not just serving.
func churnSmokeCells() []churnCell {
	c := churnCellOf("distance", "distance", 4, serving.FaultFast, churnSmokeRequests, 1)
	c.ID = "churn-smoke/n4/fast"
	return []churnCell{c}
}

// churnTrial adapts one shard of one cell into a harness trial body.
func churnTrial(cfg serving.ChurnConfig) func(uint64) (harness.Values, error) {
	return func(seed uint64) (harness.Values, error) {
		c := cfg
		c.Seed = seed
		r, err := serving.RunChurn(c)
		if err != nil {
			return nil, err
		}
		v := harness.Values{
			"offered_rps":     r.OfferedRPS,
			"achieved_rps":    r.AchievedRPS,
			"goodput_rps":     r.GoodputRPS,
			"svc_ns":          r.ServiceNS,
			"failed":          float64(r.Failed),
			"requests":        float64(cfg.Requests),
			"unavail_ns":      float64(r.UnavailNS),
			"crashes":         float64(r.Crashes),
			"recoveries":      float64(r.Recoveries),
			"recover_mean_ns": r.RecoverMeanNS,
			"dead_accesses":   float64(r.DeadAccesses),
			"lat_sum":         float64(r.Lat.Sum()),
			"lat_min":         float64(r.Lat.Min()),
			"lat_max":         float64(r.Lat.Max()),
		}
		for _, b := range r.Lat.Buckets() {
			v[fmt.Sprintf("lat_b%03d", b.Index)] = float64(b.Count)
		}
		return v, nil
	}
}

// churnSpec decomposes a cell list into shard trials.
func churnSpec(title string, cells []churnCell) harness.Spec {
	var trials []harness.Trial
	for _, cell := range cells {
		for s := 0; s < cell.Shards; s++ {
			trials = append(trials, harness.Trial{
				ID:   fmt.Sprintf("%s/s%d", cell.ID, s),
				Seed: churnShardSeed + uint64(s),
				Run:  churnTrial(cell.Cfg),
			})
		}
	}
	return harness.Spec{
		Title:  title,
		Trials: trials,
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			return assembleChurn(r, cells)
		},
	}
}

// ChurnCellResult is one assembled sweep cell.
type ChurnCellResult struct {
	ID            string
	Fault         serving.FaultRate
	OfferedRPS    float64
	GoodputRPS    float64
	FailedFrac    float64
	UnavailMS     float64 // mean per-shard unavailability, ms
	Crashes       int64   // per shard (identical across shards by design)
	Recoveries    int64   // summed over shards
	RecoverMeanNS float64
	P50           sim.Dur
	P99           sim.Dur
	P999          sim.Dur
	Hist          *sim.LatencyHist
}

// ChurnResult is the assembled sweep.
type ChurnResult struct {
	Cells []ChurnCellResult
	Table Table
}

// Cell returns a cell by id, or nil.
func (r *ChurnResult) Cell(id string) *ChurnCellResult {
	for i := range r.Cells {
		if r.Cells[i].ID == id {
			return &r.Cells[i]
		}
	}
	return nil
}

// String renders the sweep table.
func (r *ChurnResult) String() string { return r.Table.String() }

// assembleChurn merges each cell's shard histograms exactly and folds
// the scalar metrics.
func assembleChurn(r *harness.Result, cells []churnCell) (harness.Artifact, error) {
	res := &ChurnResult{
		Table: Table{
			Title: "Serving churn — availability under donor crash/restart (open-loop, SLO deadline 50x service)",
			Columns: []string{"cell", "offered rps", "goodput rps", "failed", "unavail",
				"crashes", "recov", "recov mean", "p50", "p99", "p999"},
		},
	}
	for _, cell := range cells {
		merged := &sim.LatencyHist{}
		var goodput, failed, requests, unavail, recovWeighted float64
		var crashes, recoveries int64
		for s := 0; s < cell.Shards; s++ {
			trial := fmt.Sprintf("%s/s%d", cell.ID, s)
			h, err := servingHist(r, trial)
			if err != nil {
				return nil, err
			}
			merged.Merge(h)
			goodput += r.Val(trial, "goodput_rps")
			failed += r.Val(trial, "failed")
			requests += r.Val(trial, "requests")
			unavail += r.Val(trial, "unavail_ns")
			// Shards share the installed fault schedule, but each engine
			// stops at its own completion instant, so a faster shard can
			// apply fewer trailing crashes; report the fullest view.
			if v := int64(r.Val(trial, "crashes")); v > crashes {
				crashes = v
			}
			recoveries += int64(r.Val(trial, "recoveries"))
			recovWeighted += r.Val(trial, "recover_mean_ns") * r.Val(trial, "recoveries")
		}
		n := float64(cell.Shards)
		c := ChurnCellResult{
			ID:         cell.ID,
			Fault:      cell.Cfg.Fault,
			OfferedRPS: r.Val(fmt.Sprintf("%s/s0", cell.ID), "offered_rps"),
			GoodputRPS: goodput / n,
			FailedFrac: failed / requests,
			UnavailMS:  unavail / n / 1e6,
			Crashes:    crashes,
			Recoveries: recoveries,
			P50:        sim.Dur(merged.Quantile(50)),
			P99:        sim.Dur(merged.Quantile(99)),
			P999:       sim.Dur(merged.Quantile(99.9)),
			Hist:       merged,
		}
		if recoveries > 0 {
			c.RecoverMeanNS = recovWeighted / float64(recoveries)
		}
		res.Cells = append(res.Cells, c)
		res.Table.AddRow(c.ID,
			fmt.Sprintf("%.0f", c.OfferedRPS),
			fmt.Sprintf("%.0f", c.GoodputRPS),
			fmt.Sprintf("%.1f%%", 100*c.FailedFrac),
			fmt.Sprintf("%.2fms", c.UnavailMS),
			fmt.Sprintf("%d", c.Crashes),
			fmt.Sprintf("%d", c.Recoveries),
			fmt.Sprintf("%.2fms", c.RecoverMeanNS/1e6),
			c.P50.String(), c.P99.String(), c.P999.String())
	}
	return res, nil
}

// churnSweepSpec builds the registered full sweep.
func churnSweepSpec() harness.Spec {
	return churnSpec("Serving churn — mesh size × fault rate × sharing policy", churnCellsFull())
}

// churnSmokeSpec builds the registered CI-gate subset.
func churnSmokeSpec() harness.Spec {
	return churnSpec("Serving churn — smoke cell (bench-regression CI gate)", churnSmokeCells())
}

// ServingChurn runs the full availability-under-churn sweep.
func ServingChurn() *ChurnResult { return runSpec("serving-churn", churnSweepSpec()).(*ChurnResult) }

// ChurnSmoke runs the single-cell CI subset.
func ChurnSmoke() *ChurnResult { return runSpec("churn-smoke", churnSmokeSpec()).(*ChurnResult) }

// churnOf runs an ad-hoc cell list (the tests' reduced matrices).
func churnOf(cells []churnCell) *ChurnResult {
	return runSpec("churn-subset", churnSpec("Serving churn — subset", cells)).(*ChurnResult)
}
