package experiments

import "testing"

func TestAblationMSHRHelpsStreaming(t *testing.T) {
	points := ablationMSHRs
	if testing.Short() {
		points = ablationMSHRsShort
	}
	r := AblationMSHROf(points...)
	// More MSHRs monotonically (weakly) help the contiguous sweep, and
	// going from a blocking core (1) to even modest MLP is a real win.
	for i := 1; i < len(r.MSHRs); i++ {
		if r.Times[i] > r.Times[i-1] {
			t.Fatalf("mshr=%d slower than mshr=%d: %v", r.MSHRs[i], r.MSHRs[i-1], r.Times)
		}
	}
	if float64(r.Times[0]) < 1.2*float64(r.Times[len(r.Times)-1]) {
		t.Fatalf("MLP buys <20%%: %v", r.Times)
	}
	t.Logf("\n%s", r.Table.String())
}

func TestAblationReadaheadHelpsStreaming(t *testing.T) {
	r := AblationReadahead()
	first, last := r.Times[0], r.Times[len(r.Times)-1]
	if last >= first {
		t.Fatalf("readahead does not help streaming: %v", r.Times)
	}
	t.Logf("\n%s", r.Table.String())
}

func TestAblationWindowNarrowsCreditGap(t *testing.T) {
	r := AblationWindow()
	// The collaborative path always wins, but a big enough window covers
	// the credit latency, narrowing the relative gain.
	firstGain := (r.CRMAMBps[0] - r.QPairMBps[0]) / r.QPairMBps[0]
	lastGain := (r.CRMAMBps[len(r.Windows)-1] - r.QPairMBps[len(r.Windows)-1]) /
		r.QPairMBps[len(r.Windows)-1]
	for i := range r.Windows {
		if r.CRMAMBps[i] < r.QPairMBps[i] {
			t.Fatalf("window %d: CRMA credits (%v) slower than QPair credits (%v)",
				r.Windows[i], r.CRMAMBps[i], r.QPairMBps[i])
		}
	}
	if lastGain >= firstGain {
		t.Fatalf("gain should narrow with window: %.2f -> %.2f", firstGain, lastGain)
	}
	t.Logf("\n%s", r.Table.String())
}

func TestAblationGranularityCrossover(t *testing.T) {
	r := AblationGranularity()
	// CRMA wins tiny transfers; RDMA wins big ones; the crossover sits
	// in between (the Advise threshold's justification).
	if r.RDMA[0] <= r.CRMA[0] {
		t.Fatalf("64B: RDMA (%v) should lose to CRMA (%v)", r.RDMA[0], r.CRMA[0])
	}
	last := len(r.Sizes) - 1
	if r.CRMA[last] <= r.RDMA[last] {
		t.Fatalf("64KB: CRMA (%v) should lose to RDMA (%v)", r.CRMA[last], r.RDMA[last])
	}
	t.Logf("\n%s", r.Table.String())
}
