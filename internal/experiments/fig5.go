package experiments

import (
	"repro/internal/harness"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workloads"
)

// fig5Config names the five §4.2 configurations.
var fig5Configs = []string{
	"off-chip qpair", "on-chip qpair", "async on-chip qpair",
	"off-chip crma", "on-chip crma",
}

// Fig5Result reproduces Fig. 5: relative performance of remote-memory
// access designs, normalized to all memory local. Lower is better.
type Fig5Result struct {
	Configs    []string
	PageRank   []float64
	BerkeleyDB []float64
	Table      Table
}

// fig5Opts selects one configuration's knobs.
type fig5Opts struct {
	useQPair bool
	offChip  bool
	window   int // QPair client pipelining (async style)
	router   bool
}

func optsFor(config string, router bool) fig5Opts {
	o := fig5Opts{router: router, window: 1}
	switch config {
	case "off-chip qpair":
		o.useQPair, o.offChip = true, true
	case "on-chip qpair":
		o.useQPair = true
	case "async on-chip qpair":
		o.useQPair = true
		o.window = 16
	case "off-chip crma":
		o.offChip = true
	case "on-chip crma":
	}
	return o
}

// fig5Rig builds the two-node setup with the requested interface
// placement and optional external router.
func fig5Rig(o fig5Opts, seed uint64) *pairRig {
	p := sim.Default()
	rig := newPair(&p, seed)
	if o.offChip {
		rig.Net.Switch(0).SetOffChip(true)
		rig.Net.Switch(1).SetOffChip(true)
	}
	if o.router {
		rig.Net.InsertRouter(0, 1)
	}
	return rig
}

// mountWindow maps a CRMA window of size bytes to the donor and returns
// its base.
func mountWindow(rig *pairRig, size uint64) uint64 {
	win := rig.Local.NextHotplugWindow(size)
	if _, err := rig.Local.EP.CRMA.Map(win, size, 1, 0x1000_0000); err != nil {
		panic(err)
	}
	rig.Donor.EP.CRMA.Export(0, win, size, 0x1000_0000)
	mustAdd(rig, &memsys.Region{Base: win, Size: size,
		Backend: &memsys.CRMARemote{CRMA: rig.Local.EP.CRMA, Donor: 1}})
	return win
}

// fig5BDB measures the BerkeleyDB workload under one configuration (or
// the all-local baseline when config is empty). The record heap lives on
// the remote node; the index is client-local, as in the paper's setup
// ("the key is used to look up the address of the corresponding
// record"; "the server stores the records in remote memory").
func fig5BDB(config string, router bool, seed uint64) sim.Dur {
	const recordsBytes = uint64(bdbKeysFig5 * bdbRecordSize)
	var elapsed sim.Dur
	if config == "" { // all-local baseline
		rig := fig5Rig(fig5Opts{}, seed)
		defer rig.close()
		rig.run("bdb-local", func(pr *sim.Proc) {
			kv := workloads.BuildBTree(pr, rig.Local.Mem,
				workloads.NewArena(0, 256<<20), workloads.NewArena(256<<20, 512<<20),
				bdbKeysFig5, bdbRecordSize, bdbFanout)
			rng := sim.NewRNG(88)
			kv.OLTPMix(pr, rng, 40)
			t0 := pr.Now()
			kv.OLTPMix(pr, rng, bdbTxnsFig5)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
		return elapsed
	}
	o := optsFor(config, router)
	rig := fig5Rig(o, seed)
	defer rig.close()
	if o.useQPair {
		qa, qb := transport.ConnectQPair(rig.Local.EP, rig.Donor.EP, transport.QPairConfig{})
		// The donor-side server handles each query in BDB's software
		// stack before touching its memory.
		workloads.ServeKV(rig.Eng, "bdb-server",
			&workloads.DataServer{H: rig.Donor.Mem, QP: qb, Think: 8 * sim.Microsecond})
		rig.run("bdb-"+config, func(pr *sim.Proc) {
			idx := workloads.BuildBTreeIndex(pr, rig.Local.Mem,
				workloads.NewArena(0, 256<<20), workloads.NewArena(0x1000_0000, 512<<20),
				bdbKeysFig5, bdbRecordSize, bdbFanout)
			rkv := &workloads.RemoteKV{Index: idx, QP: qa}
			rng := sim.NewRNG(88)
			rkv.OLTPMix(pr, rng, 40)
			t0 := pr.Now()
			// BerkeleyDB transactions are dependent, so the asynchronous
			// rewrite gains nothing (§4.2.1) — both run synchronously.
			rkv.OLTPMix(pr, rng, bdbTxnsFig5)
			elapsed = pr.Now().Sub(t0)
			rkv.Close(pr)
		})
		return elapsed
	}
	// CRMA: records in the mapped window, index local.
	rig.run("bdb-"+config, func(pr *sim.Proc) {
		win := mountWindow(rig, recordsBytes+(64<<20))
		kv := workloads.BuildBTree(pr, rig.Local.Mem,
			workloads.NewArena(0, 256<<20), workloads.NewArena(win, recordsBytes+(64<<20)),
			bdbKeysFig5, bdbRecordSize, bdbFanout)
		rng := sim.NewRNG(88)
		kv.OLTPMix(pr, rng, 40)
		t0 := pr.Now()
		kv.OLTPMix(pr, rng, bdbTxnsFig5)
		rig.Local.Mem.Flush(pr)
		elapsed = pr.Now().Sub(t0)
	})
	return elapsed
}

// fig5PR measures PageRank under one configuration (empty = all-local).
// The edge array lives on the remote node; row offsets and ranks stay
// local.
func fig5PR(config string, router bool, seed uint64) sim.Dur {
	var elapsed sim.Dur
	buildGraph := func() *workloads.Graph {
		return workloads.GenUniform(sim.NewRNG(4), prVertices, prDegree)
	}
	if config == "" {
		rig := fig5Rig(fig5Opts{}, seed)
		defer rig.close()
		g := buildGraph()
		g.Place(workloads.NewArena(0, 16<<20), workloads.NewArena(16<<20, 64<<20),
			workloads.NewArena(96<<20, 16<<20))
		rig.run("pr-local", func(pr *sim.Proc) {
			workloads.PageRank(pr, rig.Local.Mem, g, 1) // warm
			t0 := pr.Now()
			workloads.PageRank(pr, rig.Local.Mem, g, prIters)
			rig.Local.Mem.Flush(pr)
			elapsed = pr.Now().Sub(t0)
		})
		return elapsed
	}
	o := optsFor(config, router)
	rig := fig5Rig(o, seed)
	defer rig.close()
	g := buildGraph()
	if o.useQPair {
		g.Place(workloads.NewArena(0, 16<<20), workloads.NewArena(0x1000_0000, 64<<20),
			workloads.NewArena(96<<20, 16<<20))
		qa, qb := transport.ConnectQPair(rig.Local.EP, rig.Donor.EP, transport.QPairConfig{})
		workloads.ServeKV(rig.Eng, "edge-server",
			&workloads.DataServer{H: rig.Donor.Mem, QP: qb, Think: 500 * sim.Nanosecond})
		rig.run("pr-"+config, func(pr *sim.Proc) {
			workloads.PageRankQPair(pr, rig.Local.Mem, g, qa, 1, o.window) // warm
			t0 := pr.Now()
			workloads.PageRankQPair(pr, rig.Local.Mem, g, qa, prIters, o.window)
			elapsed = pr.Now().Sub(t0)
			workloads.CloseServer(pr, qa)
		})
		return elapsed
	}
	rig.run("pr-"+config, func(pr *sim.Proc) {
		win := mountWindow(rig, 256<<20)
		g.Place(workloads.NewArena(0, 16<<20), workloads.NewArena(win, 256<<20),
			workloads.NewArena(96<<20, 16<<20))
		workloads.PageRank(pr, rig.Local.Mem, g, 1) // warm
		t0 := pr.Now()
		workloads.PageRank(pr, rig.Local.Mem, g, prIters)
		rig.Local.Mem.Flush(pr)
		elapsed = pr.Now().Sub(t0)
	})
	return elapsed
}

// Seeds for the two workloads' rig streams, unchanged from the
// sequential code so the calibrated results are bit-identical.
const (
	fig5SeedBDB = 55
	fig5SeedPR  = 56
)

// fig5Trial builds the trial for one workload × config × routing cell.
func fig5Trial(id, config string, router bool, pagerank bool) harness.Trial {
	if pagerank {
		return harness.Trial{ID: id, Seed: fig5SeedPR,
			Run: durTrial(func(seed uint64) sim.Dur { return fig5PR(config, router, seed) })}
	}
	return harness.Trial{ID: id, Seed: fig5SeedBDB,
		Run: durTrial(func(seed uint64) sim.Dur { return fig5BDB(config, router, seed) })}
}

// fig5Spec decomposes the figure: an all-local baseline per workload
// plus one trial per configuration × workload.
func fig5Spec() harness.Spec {
	trials := []harness.Trial{
		fig5Trial("pagerank/all-local", "", false, true),
		fig5Trial("bdb/all-local", "", false, false),
	}
	for _, c := range fig5Configs {
		trials = append(trials,
			fig5Trial("pagerank/"+c, c, false, true),
			fig5Trial("bdb/"+c, c, false, false))
	}
	return harness.Spec{
		Title:    "Fig. 5 — remote-memory access designs vs all-local",
		Trials:   trials,
		Assemble: assembleFig5,
	}
}

// assembleFig5 normalizes each configuration to its workload's
// all-local baseline.
func assembleFig5(r *harness.Result) (harness.Artifact, error) {
	prBase := trialDur(r, "pagerank/all-local")
	bdbBase := trialDur(r, "bdb/all-local")
	res := &Fig5Result{
		Configs: fig5Configs,
		Table: Table{
			Title:   "Fig. 5 — exec time normalized to all-local memory (lower is better)",
			Columns: []string{"config", "PageRank", "paper", "BerkeleyDB", "paper"},
		},
	}
	paperPR := []string{"7.69", "5.96", "3.12", "3.01", "2.12"}
	paperBDB := []string{"11.92", "10.91", "10.83", "3.43", "2.48"}
	for i, c := range fig5Configs {
		pr := float64(trialDur(r, "pagerank/"+c)) / float64(prBase)
		bdb := float64(trialDur(r, "bdb/"+c)) / float64(bdbBase)
		res.PageRank = append(res.PageRank, pr)
		res.BerkeleyDB = append(res.BerkeleyDB, bdb)
		res.Table.AddRow(c, f2(pr), paperPR[i], f2(bdb), paperBDB[i])
	}
	return res, nil
}

// String renders the figure's table.
func (r *Fig5Result) String() string { return r.Table.String() }

// Fig5 runs the five configurations for both workloads, normalized to
// all-local execution.
func Fig5() *Fig5Result { return runSpec("fig5", fig5Spec()).(*Fig5Result) }

// Fig6Result reproduces Fig. 6: the added overhead of a one-level
// external router between the two nodes, per configuration.
type Fig6Result struct {
	Configs    []string
	PageRank   []float64 // percent overhead
	BerkeleyDB []float64
	Table      Table
}

// fig6Paper maps each configuration to the paper's reported overheads.
var fig6Paper = map[string][2]string{
	"off-chip qpair":      {"11.70%", "7.66%"},
	"on-chip qpair":       {"13.42%", "7.33%"},
	"async on-chip qpair": {"2.02%", "7.39%"},
	"off-chip crma":       {"13.92%", "11.08%"},
	"on-chip crma":        {"22.72%", "16.13%"},
}

// fig6Spec decomposes the router study: direct and routed trials per
// configuration × workload. A subset of configurations may be selected
// (the short-mode matrix).
func fig6Spec(configs []string) harness.Spec {
	var trials []harness.Trial
	for _, c := range configs {
		trials = append(trials,
			fig5Trial("pagerank/"+c+"/direct", c, false, true),
			fig5Trial("pagerank/"+c+"/router", c, true, true),
			fig5Trial("bdb/"+c+"/direct", c, false, false),
			fig5Trial("bdb/"+c+"/router", c, true, false))
	}
	return harness.Spec{
		Title:  "Fig. 6 — one-level external router overhead",
		Trials: trials,
		Assemble: func(r *harness.Result) (harness.Artifact, error) {
			return assembleFig6(r, configs)
		},
	}
}

// assembleFig6 computes each configuration's routed-vs-direct overhead.
func assembleFig6(r *harness.Result, configs []string) (harness.Artifact, error) {
	res := &Fig6Result{
		Configs: configs,
		Table: Table{
			Title:   "Fig. 6 — performance overhead with a one-level router",
			Columns: []string{"config", "PageRank", "paper", "BerkeleyDB", "paper"},
		},
	}
	for _, c := range configs {
		prDirect := trialDur(r, "pagerank/"+c+"/direct")
		prRouted := trialDur(r, "pagerank/"+c+"/router")
		bdbDirect := trialDur(r, "bdb/"+c+"/direct")
		bdbRouted := trialDur(r, "bdb/"+c+"/router")
		prOv := 100 * (float64(prRouted) - float64(prDirect)) / float64(prDirect)
		bdbOv := 100 * (float64(bdbRouted) - float64(bdbDirect)) / float64(bdbDirect)
		res.PageRank = append(res.PageRank, prOv)
		res.BerkeleyDB = append(res.BerkeleyDB, bdbOv)
		paper := fig6Paper[c]
		res.Table.AddRow(c, pct(prOv), paper[0], pct(bdbOv), paper[1])
	}
	return res, nil
}

// String renders the figure's table.
func (r *Fig6Result) String() string { return r.Table.String() }

// Fig6 measures each configuration with and without the router.
func Fig6() *Fig6Result { return Fig6Of(fig5Configs...) }

// Fig6Of runs the router study over a subset of the configurations (the
// reduced short-mode matrix keeps the cells the paper's finding needs).
func Fig6Of(configs ...string) *Fig6Result {
	return runSpec("fig6", fig6Spec(configs)).(*Fig6Result)
}
