package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Fig14Result reproduces Fig. 14: the mini data-center of Fig. 13 — a
// Redis-like cache in front of a MySQL-like store — as the cache's
// memory grows in fixed steps, provided either locally (ideal) or by
// donor nodes over Venice. It reports execution time for the query batch
// and the cache miss rate at each size.
type Fig14Result struct {
	StepBytes   uint64
	Sizes       []uint64
	LocalTime   []sim.Dur
	RemoteTime  []sim.Dur
	LocalMiss   []float64
	RemoteMiss  []float64
	DonorImpact float64 // CC slowdown on a donor while serving (§7.1: negligible)
	Table       Table
}

// fig14Run measures one point of the sweep: steps memory increments,
// remote selects borrowed (CRMA) or local storage arenas.
func fig14Run(steps int, remote bool) (sim.Dur, float64) {
	p := sim.Default()
	c := core.NewCluster(core.Config{Params: &p, StartAgents: true, Seed: 14,
		HeartbeatInterval: 30 * sim.Second})
	defer c.Close()
	c.RunFor(1 * sim.Second) // populate the RRT

	redisNode := c.Node(1)
	var elapsed sim.Dur
	var missRatio float64
	done := redisNode.Run("redis", func(pr *sim.Proc) {
		cache := workloads.NewRedisCache(redisNode.Mem, fig14ValueBytes)
		if remote {
			// A minimal local slice plus donor memory in fixed steps —
			// the paper keeps 50 MB local and grows remote memory in
			// 70 MB increments.
			localSlice := uint64(fig14StepBytes) / 4
			base := uint64(64 << 20)
			cache.AddArena(workloads.NewArena(base, localSlice))
			for s := 0; s < steps; s++ {
				lease, err := c.BorrowMemory(pr, redisNode, uint64(fig14StepBytes))
				if err != nil {
					panic(err)
				}
				cache.AddArena(workloads.NewArena(lease.WindowBase, lease.Size))
			}
			// Trim the local slice from the comparison by shrinking the
			// first arena's share of capacity: the sweep point is
			// steps*fig14StepBytes + the 1/4-step local minimum either way.
		} else {
			size := uint64(steps)*uint64(fig14StepBytes) + uint64(fig14StepBytes)/4
			cache.AddArena(workloads.NewArena(64<<20, size))
		}
		db := &workloads.TierDB{
			Redis:          cache,
			MySQL:          &workloads.MySQLModel{QueryTime: fig14MySQLms * sim.Millisecond},
			ClientOverhead: fig14ClientUs * sim.Microsecond,
		}
		// Warm until the cache reaches steady state (a uniform draw needs
		// several keyspace passes to touch ~every key), then measure.
		db.RunQueries(pr, sim.NewRNG(100), fig14Keys, fig14Keys*4)
		h0, m0 := cache.Hits, cache.Misses
		elapsed = db.RunQueries(pr, sim.NewRNG(101), fig14Keys, fig14Queries)
		hits, misses := cache.Hits-h0, cache.Misses-m0
		missRatio = float64(misses) / float64(hits+misses)
	})
	// Step only until the workload finishes: the agents would otherwise
	// heartbeat forever.
	for !done.Done() && c.Eng.Step() {
	}
	return elapsed, missRatio
}

// Fig14 sweeps cache memory from one to fig14Steps steps for both the
// local and remote configurations, and measures the donor-side impact.
func Fig14() *Fig14Result {
	res := &Fig14Result{
		StepBytes: uint64(fig14StepBytes),
		Table: Table{
			Title:   "Fig. 14 — Redis memory sweep (scaled 70 MB->3.5 MB steps): exec time and miss rate",
			Columns: []string{"memory", "local time", "remote time", "local miss", "remote miss"},
		},
	}
	for s := 1; s <= fig14Steps; s++ {
		lt, lm := fig14Run(s, false)
		rt, rm := fig14Run(s, true)
		res.Sizes = append(res.Sizes, uint64(s)*uint64(fig14StepBytes))
		res.LocalTime = append(res.LocalTime, lt)
		res.RemoteTime = append(res.RemoteTime, rt)
		res.LocalMiss = append(res.LocalMiss, lm)
		res.RemoteMiss = append(res.RemoteMiss, rm)
		res.Table.AddRow(fmt.Sprintf("%dMB-equiv", s*70), lt.String(), rt.String(),
			pct(lm*100), pct(rm*100))
	}
	res.DonorImpact = fig14DonorImpact()
	res.Table.AddRow("donor CC impact", pct(res.DonorImpact), "", "", "")
	return res
}

// fig14DonorImpact measures how much serving remote memory slows a
// donor's own Connected Components job (§7.1 reports the impact is
// negligible because the sharing traffic is insignificant).
func fig14DonorImpact() float64 {
	run := func(withTraffic bool) sim.Dur {
		p := sim.Default()
		rig := newPair(&p, 15)
		defer rig.close()
		// Donor runs CC on its own memory.
		g := workloads.GenUniform(sim.NewRNG(5), 20000, 8)
		g.Place(workloads.NewArena(0, 8<<20), workloads.NewArena(8<<20, 32<<20),
			workloads.NewArena(48<<20, 8<<20))
		var ccTime sim.Dur
		ccDone := rig.Donor.Run("cc", func(pr *sim.Proc) {
			t0 := pr.Now()
			workloads.ConnectedComponents(pr, rig.Donor.Mem, g)
			ccTime = pr.Now().Sub(t0)
		})
		if withTraffic {
			// The recipient hammers borrowed donor memory meanwhile.
			rig.Local.Run("hammer", func(pr *sim.Proc) {
				lease, err := core.AttachMemoryDirect(pr, rig.Local, rig.Donor, 64<<20)
				if err != nil {
					panic(err)
				}
				rng := sim.NewRNG(6)
				for !ccDone.Done() {
					rig.Local.Mem.Read(pr, lease.WindowBase+uint64(rng.Intn(64<<20))&^63, 64)
				}
			})
		}
		rig.Eng.Run()
		return ccTime
	}
	solo := run(false)
	shared := run(true)
	return 100 * (float64(shared) - float64(solo)) / float64(solo)
}
