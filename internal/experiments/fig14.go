package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Fig14Result reproduces Fig. 14: the mini data-center of Fig. 13 — a
// Redis-like cache in front of a MySQL-like store — as the cache's
// memory grows in fixed steps, provided either locally (ideal) or by
// donor nodes over Venice. It reports execution time for the query batch
// and the cache miss rate at each size.
type Fig14Result struct {
	StepBytes   uint64
	Sizes       []uint64
	LocalTime   []sim.Dur
	RemoteTime  []sim.Dur
	LocalMiss   []float64
	RemoteMiss  []float64
	DonorImpact float64 // CC slowdown on a donor while serving (§7.1: negligible)
	Table       Table
}

// fig14Run measures one point of the sweep: steps memory increments,
// remote selects borrowed (CRMA) or local storage arenas.
func fig14Run(steps int, remote bool, seed uint64) (sim.Dur, float64) {
	p := sim.Default()
	c := core.NewCluster(core.Config{Params: &p, StartAgents: true, Seed: seed,
		HeartbeatInterval: 30 * sim.Second})
	defer c.Close()
	c.RunFor(1 * sim.Second) // populate the RRT

	redisNode := c.Node(1)
	var elapsed sim.Dur
	var missRatio float64
	done := redisNode.Run("redis", func(pr *sim.Proc) {
		cache := workloads.NewRedisCache(redisNode.Mem, fig14ValueBytes)
		if remote {
			// A minimal local slice plus donor memory in fixed steps —
			// the paper keeps 50 MB local and grows remote memory in
			// 70 MB increments.
			localSlice := uint64(fig14StepBytes) / 4
			base := uint64(64 << 20)
			cache.AddArena(workloads.NewArena(base, localSlice))
			for s := 0; s < steps; s++ {
				lease, err := c.Acquire(pr, core.NewRequest(core.Memory, redisNode, uint64(fig14StepBytes)))
				if err != nil {
					panic(err)
				}
				cache.AddArena(workloads.NewArena(lease.Window()))
			}
			// Trim the local slice from the comparison by shrinking the
			// first arena's share of capacity: the sweep point is
			// steps*fig14StepBytes + the 1/4-step local minimum either way.
		} else {
			size := uint64(steps)*uint64(fig14StepBytes) + uint64(fig14StepBytes)/4
			cache.AddArena(workloads.NewArena(64<<20, size))
		}
		db := &workloads.TierDB{
			Redis:          cache,
			MySQL:          &workloads.MySQLModel{QueryTime: fig14MySQLms * sim.Millisecond},
			ClientOverhead: fig14ClientUs * sim.Microsecond,
		}
		// Warm until the cache reaches steady state (a uniform draw needs
		// several keyspace passes to touch ~every key), then measure.
		db.RunQueries(pr, sim.NewRNG(100), fig14Keys, fig14Keys*4)
		h0, m0 := cache.Hits, cache.Misses
		elapsed = db.RunQueries(pr, sim.NewRNG(101), fig14Keys, fig14Queries)
		hits, misses := cache.Hits-h0, cache.Misses-m0
		missRatio = float64(misses) / float64(hits+misses)
	})
	// Step only until the workload finishes: the agents would otherwise
	// heartbeat forever.
	for !done.Done() && c.Eng.Step() {
	}
	return elapsed, missRatio
}

// Seeds for the sweep cluster and the donor-impact rig, unchanged from
// the sequential code.
const (
	fig14SeedCluster = 14
	fig14SeedDonor   = 15
)

// fig14Spec decomposes the sweep into one trial per memory-size ×
// placement cell plus the two donor-impact runs.
func fig14Spec() harness.Spec {
	var trials []harness.Trial
	for s := 1; s <= fig14Steps; s++ {
		for _, remote := range []bool{false, true} {
			placement := "local"
			if remote {
				placement = "remote"
			}
			trials = append(trials, harness.Trial{
				ID: fmt.Sprintf("%s/%d", placement, s), Seed: fig14SeedCluster,
				Run: func(seed uint64) (harness.Values, error) {
					d, miss := fig14Run(s, remote, seed)
					return harness.Values{"ns": float64(d), "miss": miss}, nil
				},
			})
		}
	}
	for _, traffic := range []bool{false, true} {
		id := "donor/solo"
		if traffic {
			id = "donor/traffic"
		}
		trials = append(trials, harness.Trial{
			ID: id, Seed: fig14SeedDonor,
			Run: durTrial(func(seed uint64) sim.Dur { return fig14Donor(traffic, seed) }),
		})
	}
	return harness.Spec{
		Title:    "Fig. 14 — mini data-center Redis memory sweep",
		Trials:   trials,
		Assemble: assembleFig14,
	}
}

// assembleFig14 folds the sweep cells back into the sweep table.
func assembleFig14(r *harness.Result) (harness.Artifact, error) {
	res := &Fig14Result{
		StepBytes: uint64(fig14StepBytes),
		Table: Table{
			Title:   "Fig. 14 — Redis memory sweep (scaled 70 MB->3.5 MB steps): exec time and miss rate",
			Columns: []string{"memory", "local time", "remote time", "local miss", "remote miss"},
		},
	}
	for s := 1; s <= fig14Steps; s++ {
		lt := trialDur(r, fmt.Sprintf("local/%d", s))
		lm := r.Val(fmt.Sprintf("local/%d", s), "miss")
		rt := trialDur(r, fmt.Sprintf("remote/%d", s))
		rm := r.Val(fmt.Sprintf("remote/%d", s), "miss")
		res.Sizes = append(res.Sizes, uint64(s)*uint64(fig14StepBytes))
		res.LocalTime = append(res.LocalTime, lt)
		res.RemoteTime = append(res.RemoteTime, rt)
		res.LocalMiss = append(res.LocalMiss, lm)
		res.RemoteMiss = append(res.RemoteMiss, rm)
		res.Table.AddRow(fmt.Sprintf("%dMB-equiv", s*70), lt.String(), rt.String(),
			pct(lm*100), pct(rm*100))
	}
	solo := trialDur(r, "donor/solo")
	shared := trialDur(r, "donor/traffic")
	res.DonorImpact = 100 * (float64(shared) - float64(solo)) / float64(solo)
	res.Table.AddRow("donor CC impact", pct(res.DonorImpact), "", "", "")
	return res, nil
}

// String renders the figure's table.
func (r *Fig14Result) String() string { return r.Table.String() }

// Fig14 sweeps cache memory from one to fig14Steps steps for both the
// local and remote configurations, and measures the donor-side impact.
func Fig14() *Fig14Result { return runSpec("fig14", fig14Spec()).(*Fig14Result) }

// fig14Donor measures a donor's own Connected Components job with or
// without a recipient hammering borrowed memory (§7.1 reports the
// serving impact is negligible because the sharing traffic is
// insignificant). The hammer attaches through the plane's DirectMemory
// kind — the MN-less §4.2 configuration, on the same Acquire surface
// (and lifecycle event stream) as every brokered lease.
func fig14Donor(withTraffic bool, seed uint64) sim.Dur {
	run := func(withTraffic bool) sim.Dur {
		p := sim.Default()
		topo := fabric.Pair()
		c := core.NewCluster(core.Config{Params: &p, Topology: &topo,
			NodeMemBytes: 4 << 30, Seed: seed})
		defer c.Close()
		local, donor := c.Node(0), c.Node(1)
		// Donor runs CC on its own memory.
		g := workloads.GenUniform(sim.NewRNG(5), 20000, 8)
		g.Place(workloads.NewArena(0, 8<<20), workloads.NewArena(8<<20, 32<<20),
			workloads.NewArena(48<<20, 8<<20))
		var ccTime sim.Dur
		ccDone := donor.Run("cc", func(pr *sim.Proc) {
			t0 := pr.Now()
			workloads.ConnectedComponents(pr, donor.Mem, g)
			ccTime = pr.Now().Sub(t0)
		})
		if withTraffic {
			// The recipient hammers borrowed donor memory meanwhile.
			local.Run("hammer", func(pr *sim.Proc) {
				lease, err := c.Acquire(pr, core.NewRequest(core.DirectMemory, local, 64<<20,
					core.WithDonor(donor)))
				if err != nil {
					panic(err)
				}
				win, _ := lease.Window()
				rng := sim.NewRNG(6)
				for !ccDone.Done() {
					local.Mem.Read(pr, win+uint64(rng.Intn(64<<20))&^63, 64)
				}
			})
		}
		c.Run()
		return ccTime
	}
	return run(withTraffic)
}
