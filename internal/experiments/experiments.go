// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is decomposed into independent trials —
// one per configuration × workload cell, each building its own
// simulator from an explicit seed — registered with internal/harness
// and executed on its worker pool; the assembly functions fold the
// per-trial measurements back into the same rows/series the paper
// reports, formatted for terminal output. Absolute values come from our
// calibrated simulator rather than the authors' FPGA testbed;
// EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/node"
	"repro/internal/sim"
)

// Table is a printable result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", width[i], c)
	}
	b.WriteString("\n")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", width[i]) + "  ")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) {
				fmt.Fprintf(&b, "%-*s  ", width[i], c)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// f2 formats a float at 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f1 formats a float at 1 decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// pct formats a percentage at 1 decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// pair builds a two-node rig (requester node 0, donor node 1) with the
// given parameters and a deterministic seed.
type pairRig struct {
	Eng   *sim.Engine
	P     *sim.Params
	Net   *fabric.Network
	Local *node.Node
	Donor *node.Node
}

func newPair(p *sim.Params, seed uint64) *pairRig {
	eng := sim.New()
	net := fabric.NewNetwork(eng, p, fabric.Pair(), sim.NewRNG(seed))
	return &pairRig{
		Eng:   eng,
		P:     p,
		Net:   net,
		Local: node.New(eng, p, net, 0, 4<<30),
		Donor: node.New(eng, p, net, 1, 4<<30),
	}
}

// run executes fn as the requester's workload and drains the engine.
func (r *pairRig) run(name string, fn func(p *sim.Proc)) {
	r.Local.Run(name, fn)
	r.Eng.Run()
}

// close releases the rig.
func (r *pairRig) close() { r.Eng.Close() }

// durTrial adapts a virtual-duration measurement into a harness trial
// body: the duration is carried as exact nanoseconds.
func durTrial(f func(seed uint64) sim.Dur) func(uint64) (harness.Values, error) {
	return func(seed uint64) (harness.Values, error) {
		return harness.Values{"ns": float64(f(seed))}, nil
	}
}

// trialDur reads a duration metric back out of an executed trial.
func trialDur(r *harness.Result, trial string) sim.Dur {
	return sim.Dur(int64(r.Val(trial, "ns")))
}

// runSpec executes a spec on the default worker pool and returns its
// assembled artifact; experiment entry points wrap it with a type
// assertion. Trial failures are programming errors here (the specs ship
// with the package), so they panic rather than burden every caller.
func runSpec(id string, spec harness.Spec) harness.Artifact {
	art, _, err := harness.Run(id, spec, harness.Options{})
	if err != nil {
		panic(err)
	}
	return art
}
