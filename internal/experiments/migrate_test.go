package experiments

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestMigrateFindings asserts the experiment's two acceptance claims at
// the qualitative level: telemetry + migration beats frozen distance
// placement on the pressured tier's tail, and spare pools collapse
// recovery latency on the churn cell.
func TestMigrateFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("full migrate-smoke cells are the acceptance run; skipped under -short")
	}
	r := MigrateSmoke()
	base, hot := r.Serving.Cell("tier/distance/n8/u0.90"), r.Serving.Cell("tier/telemetry/n8/u0.90")
	if base == nil || hot == nil {
		t.Fatal("serving comparison cells missing")
	}
	if hot.P99 >= base.P99 {
		t.Fatalf("telemetry+migration p99 %v not below distance p99 %v", hot.P99, base.P99)
	}
	cold, warm := r.Churn.Cell("churn/cold/n4/fast"), r.Churn.Cell("churn/spares/n4/fast")
	if cold == nil || warm == nil {
		t.Fatal("churn comparison cells missing")
	}
	if warm.RecoverMeanNS >= cold.RecoverMeanNS/10 {
		t.Fatalf("spare-pool recovery mean %vns not an order of magnitude under cold %vns",
			warm.RecoverMeanNS, cold.RecoverMeanNS)
	}
	if warm.GoodputRPS <= cold.GoodputRPS {
		t.Fatalf("spare pools did not recover goodput: %v vs %v", warm.GoodputRPS, cold.GoodputRPS)
	}
	t.Logf("\n%s", r.String())
}

// TestMigrateParallelismByteIdentical is the harness contract applied to
// the migrate-smoke pairing: the telemetry plane, the migration loop,
// and the spare pools all run inside the per-trial engines, so any
// -parallel value renders the same bytes. The CI race job runs this test
// under the detector.
func TestMigrateParallelismByteIdentical(t *testing.T) {
	spec := migrateSmokeSpec()
	sequential, _, err := harness.Run("migrate-ident", spec, harness.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := harness.Run("migrate-ident", spec, harness.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sequential.String() != parallel.String() {
		t.Fatalf("migrate-smoke renders differently under -parallel 4:\n%s\nvs\n%s",
			sequential, parallel)
	}
	if !strings.Contains(sequential.String(), "recov mean") || !strings.Contains(sequential.String(), "p999") {
		t.Fatalf("migrate tables lost their columns:\n%s", sequential)
	}
}
