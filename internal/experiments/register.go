package experiments

import "repro/internal/harness"

// The registration order is the paper's presentation order (what
// venice-bench runs with no arguments), followed by the exploratory
// ablations.
func init() {
	harness.Register("table1", table1Spec())
	harness.Register("fig3", fig3Spec())
	harness.Register("fig5", fig5Spec())
	harness.Register("fig6", fig6Spec(fig5Configs))
	harness.Register("fig14", fig14Spec())
	harness.Register("fig15", fig15Spec(fig15Workloads))
	harness.Register("fig16a", fig16aSpec())
	harness.Register("fig16b", fig16bSpec())
	harness.Register("fig17", fig17Spec())
	harness.Register("fig18", fig18Spec())
	harness.Register("cost", costSpec())
	harness.Register("validation", validationSpec())
	harness.Register("serving", servingSweepSpec())
	harness.Register("serving-smoke", servingSmokeSpec())
	harness.Register("serving-scale", servingScaleSpec())
	harness.Register("scale-smoke", scaleSmokeSpec())
	harness.Register("serving-churn", churnSweepSpec())
	harness.Register("churn-smoke", churnSmokeSpec())
	harness.Register("serving-inference", inferSweepSpec())
	harness.Register("inference-smoke", inferSmokeSpec())
	harness.Register("migrate-smoke", migrateSmokeSpec())
	harness.Register("engine-smoke", engineSmokeSpec())
	harness.Register("serving-tenancy", tenancySweepSpec())
	harness.Register("tenancy-smoke", tenancySmokeSpec())
	harness.Register("ablation-mshr", ablationMSHRSpec(ablationMSHRs))
	harness.Register("ablation-readahead", ablationReadaheadSpec())
	harness.Register("ablation-window", ablationWindowSpec())
	harness.Register("ablation-granularity", ablationGranularitySpec())
}
